// Deterministic fault injection for control-plane transports.
//
// FaultyTransport decorates an endpoint and perturbs its *outbound*
// sends: drop, delay, duplicate, truncate or hard-disconnect, each an
// independent Bernoulli roll from an explicitly seeded Rng, so a soak
// run is reproducible from its seed. Faults model a flaky underlying
// link without TCP's reliability: a dropped or truncated send corrupts
// the byte stream, and the session layer is expected to detect that
// (decoder error or request timeout), tear the connection down and
// recover via reconnect + resync.
#pragma once

#include <memory>

#include "controlplane/transport.h"
#include "util/rng.h"

namespace eden::controlplane {

struct FaultProfile {
  double drop_prob = 0;        // discard the send entirely
  double delay_prob = 0;       // hold the bytes back delay_steps events
  double duplicate_prob = 0;   // send the bytes twice
  double truncate_prob = 0;    // cut the send short at a random byte
  double disconnect_prob = 0;  // hard-close the connection instead
  std::uint32_t delay_steps = 3;
  std::uint64_t seed = 1;
};

class FaultyTransport : public Transport {
 public:
  struct Stats {
    std::uint64_t sends = 0;
    std::uint64_t dropped = 0;
    std::uint64_t delayed = 0;
    std::uint64_t duplicated = 0;
    std::uint64_t truncated = 0;
    std::uint64_t forced_disconnects = 0;
  };

  // `pump` schedules delayed forwards; it must be the pump driving the
  // inner endpoint so delayed bytes stay ordered with everything else.
  FaultyTransport(std::unique_ptr<Transport> inner, PipePump& pump,
                  FaultProfile profile);
  ~FaultyTransport() override;

  bool send(std::span<const std::uint8_t> data) override;
  void close() override { inner_->close(); }
  bool connected() const override { return inner_->connected(); }

  const Stats& stats() const { return stats_; }

 private:
  // Outbound FIFO shared with pump tasks: delayed sends must not be
  // overtaken by later ones (a byte stream cannot reorder), so every
  // forward pops the queue head regardless of which task fires.
  struct Fifo {
    std::deque<std::vector<std::uint8_t>> queue;
    Transport* inner = nullptr;  // nulled when the decorator dies
  };

  void enqueue(std::vector<std::uint8_t> bytes, std::uint32_t delay_steps);

  std::unique_ptr<Transport> inner_;
  PipePump& pump_;
  FaultProfile profile_;
  util::Rng rng_;
  std::shared_ptr<Fifo> fifo_;
  Stats stats_;
};

}  // namespace eden::controlplane
