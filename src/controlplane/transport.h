// Byte-stream transports for the control-plane session layer.
//
// The wire codec (core/wire.h) defines what a command looks like; this
// module defines how command frames travel: over an ordered,
// connection-oriented byte stream that can stall, die and come back.
// Tests and single-process deployments use the in-memory duplex pipe
// below, driven by a PipePump whose scheduling is fully under the
// caller's control — every delivery is an explicit step, so reorderings,
// delays and disconnects are reproducible.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <utility>
#include <vector>

namespace eden::controlplane {

// One endpoint of a bidirectional ordered byte stream. Delivery is
// asynchronous: bytes handed to send() surface at the peer's on_bytes
// callback when the owning pump delivers them. A transport endpoint and
// the pump that drives it must be used from one thread; cross-thread
// concerns live entirely inside the Enclave the agent programs.
class Transport {
 public:
  using BytesFn = std::function<void(std::span<const std::uint8_t>)>;
  using DisconnectFn = std::function<void()>;

  virtual ~Transport() = default;

  // Queues bytes toward the peer. Returns false when the connection is
  // already down (the bytes are discarded).
  virtual bool send(std::span<const std::uint8_t> data) = 0;
  // Tears the connection down; the peer observes on_disconnect after
  // any bytes already in flight.
  virtual void close() = 0;
  virtual bool connected() const = 0;

  void set_on_bytes(BytesFn fn) { on_bytes_ = std::move(fn); }
  void set_on_disconnect(DisconnectFn fn) { on_disconnect_ = std::move(fn); }

 protected:
  BytesFn on_bytes_;
  DisconnectFn on_disconnect_;
};

// Virtual-time event loop for pipe traffic. step() delivers the oldest
// due event; run() drains everything currently pending. Events are
// ordered by (due step, enqueue sequence), so two sends at the same
// virtual time deliver in send order and the schedule is deterministic.
class PipePump {
 public:
  // Runs one due event. Returns false when nothing is pending.
  bool step();
  // Runs events until none are pending (or `max` were delivered).
  std::size_t run(std::size_t max = ~static_cast<std::size_t>(0));
  std::size_t pending() const { return tasks_.size(); }
  std::uint64_t now() const { return now_; }

  // Schedules `fn` to run after `delay_steps` further steps (0 = next).
  void post(std::function<void()> fn) { post_after(0, std::move(fn)); }
  void post_after(std::uint32_t delay_steps, std::function<void()> fn);

 private:
  struct Task {
    std::uint64_t due;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  std::uint64_t now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::deque<Task> tasks_;  // kept sorted by (due, seq)
};

// Creates a connected in-memory duplex pipe driven by `pump`. With
// `chunk_bytes` > 0 every send is split into chunks delivered as
// separate events, exercising the frame decoder's reassembly. Closing
// either end disconnects both, after in-flight bytes drain.
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>> make_pipe(
    PipePump& pump, std::size_t chunk_bytes = 0);

}  // namespace eden::controlplane
