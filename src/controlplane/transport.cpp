#include "controlplane/transport.h"

#include <algorithm>

namespace eden::controlplane {

void PipePump::post_after(std::uint32_t delay_steps,
                          std::function<void()> fn) {
  Task task{now_ + delay_steps, next_seq_++, std::move(fn)};
  // Insert keeping (due, seq) order; most posts land at the back.
  auto it = std::upper_bound(tasks_.begin(), tasks_.end(), task,
                             [](const Task& a, const Task& b) {
                               return a.due != b.due ? a.due < b.due
                                                    : a.seq < b.seq;
                             });
  tasks_.insert(it, std::move(task));
}

bool PipePump::step() {
  if (tasks_.empty()) return false;
  Task task = std::move(tasks_.front());
  tasks_.pop_front();
  // Virtual time jumps forward to the task's due step, so a delayed
  // event still runs when nothing earlier is pending.
  now_ = std::max(now_ + 1, task.due);
  task.fn();
  return true;
}

std::size_t PipePump::run(std::size_t max) {
  std::size_t n = 0;
  while (n < max && step()) ++n;
  return n;
}

namespace {

class PipeEnd;

// State shared by both endpoints of one pipe. Endpoints register raw
// pointers here and unregister in their destructors; delivery tasks
// capture the shared state, so a task that outlives an endpoint finds a
// null slot instead of a dangling pointer.
struct PipeShared {
  PipePump* pump = nullptr;
  std::size_t chunk_bytes = 0;
  PipeEnd* ends[2] = {nullptr, nullptr};
};

class PipeEnd : public Transport {
 public:
  PipeEnd(std::shared_ptr<PipeShared> shared, int side)
      : shared_(std::move(shared)), side_(side) {
    shared_->ends[side_] = this;
  }

  ~PipeEnd() override { shared_->ends[side_] = nullptr; }

  bool send(std::span<const std::uint8_t> data) override {
    if (!connected_) return false;
    const std::size_t chunk =
        shared_->chunk_bytes == 0 ? data.size() : shared_->chunk_bytes;
    for (std::size_t off = 0; off < data.size(); off += chunk) {
      const std::size_t n = std::min(chunk, data.size() - off);
      std::vector<std::uint8_t> bytes(data.begin() + static_cast<long>(off),
                                      data.begin() +
                                          static_cast<long>(off + n));
      shared_->pump->post(
          [shared = shared_, peer = 1 - side_, bytes = std::move(bytes)]() {
            PipeEnd* end = shared->ends[peer];
            if (end != nullptr && end->connected_ &&
                end->on_bytes_ != nullptr) {
              end->on_bytes_(bytes);
            }
          });
    }
    // Zero-length sends still count as delivered (no event needed).
    return true;
  }

  void close() override {
    if (!connected_) return;
    connected_ = false;
    // The peer learns about the teardown in order, after any bytes that
    // were already queued toward it.
    shared_->pump->post([shared = shared_, peer = 1 - side_]() {
      PipeEnd* end = shared->ends[peer];
      if (end == nullptr || !end->connected_) return;
      end->connected_ = false;
      if (end->on_disconnect_ != nullptr) end->on_disconnect_();
    });
  }

  bool connected() const override { return connected_; }

 private:
  std::shared_ptr<PipeShared> shared_;
  int side_;
  bool connected_ = true;
};

}  // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>> make_pipe(
    PipePump& pump, std::size_t chunk_bytes) {
  auto shared = std::make_shared<PipeShared>();
  shared->pump = &pump;
  shared->chunk_bytes = chunk_bytes;
  auto a = std::make_unique<PipeEnd>(shared, 0);
  auto b = std::make_unique<PipeEnd>(shared, 1);
  return {std::move(a), std::move(b)};
}

}  // namespace eden::controlplane
