#include "controlplane/session.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "controlplane/trace_context.h"
#include "telemetry/flight_recorder.h"

namespace eden::controlplane {

using core::wire::Response;
using core::wire::Status;
using telemetry::FlightEventType;
using telemetry::FlightRecorder;
using telemetry::Hop;

// --- EnclaveAgent -------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_next_boot_id{1};

telemetry::SpanCollector& spans() {
  return telemetry::SpanCollector::instance();
}
}  // namespace

EnclaveAgent::EnclaveAgent(core::Enclave& enclave)
    : enclave_(enclave),
      boot_id_(g_next_boot_id.fetch_add(1, std::memory_order_relaxed)) {}

void EnclaveAgent::attach(std::unique_ptr<Transport> transport) {
  // A transaction left open by the previous connection is a dead
  // controller's half-staged update; it must never commit.
  abort_stale_txn();
  if (transport_ != nullptr) transport_->close();
  transport_ = std::move(transport);
  decoder_.reset();
  expected_request_id_ = 1;
  transport_->set_on_bytes(
      [this](std::span<const std::uint8_t> data) { on_bytes(data); });
  transport_->set_on_disconnect([this]() { on_disconnect(); });
}

void EnclaveAgent::detach() {
  if (transport_ == nullptr) return;
  abort_stale_txn();
  transport_->close();
  transport_.reset();
}

void EnclaveAgent::abort_stale_txn() {
  if (!enclave_.txn_open()) return;
  enclave_.abort_txn();
  ++stats_.stale_txn_aborts;
}

std::vector<std::uint8_t> EnclaveAgent::greeting_payload() const {
  return encode_greeting({boot_id_, enclave_.ruleset_version()});
}

void EnclaveAgent::on_bytes(std::span<const std::uint8_t> data) {
  if (transport_ == nullptr || !transport_->connected()) return;
  std::vector<Frame> frames;
  const bool ok = decoder_.feed(data, frames);
  for (Frame& frame : frames) {
    ++stats_.frames;
    switch (frame.type) {
      case FrameType::hello:
      case FrameType::heartbeat: {
        ++stats_.heartbeats;
        const FrameType ack = frame.type == FrameType::hello
                                  ? FrameType::hello_ack
                                  : FrameType::heartbeat_ack;
        transport_->send(
            encode_frame({ack, frame.id, greeting_payload()}));
        break;
      }
      case FrameType::request: {
        if (frame.id != expected_request_id_) {
          // A command was lost (id gap) or replayed (id repeat). Either
          // way, applying this frame could split a batch the controller
          // staged as one transaction: treat it as a broken stream.
          ++stats_.corrupt_streams;
          abort_stale_txn();
          transport_->close();
          return;
        }
        ++expected_request_id_;
        ++stats_.requests;
        // Untraced requests pay exactly this branch; traced ones time
        // the apply and link it under the controller's cp_send span.
        std::int64_t apply_span = 0;
        if (frame.trace_id != 0) {
          const std::int64_t t0 = spans().now_ns();
          const Response response =
              core::wire::apply(enclave_, frame.payload, &telemetry_cursor_);
          const std::optional<core::wire::Command> op =
              core::wire::peek_command(frame.payload);
          const std::int64_t opcode =
              op.has_value() ? static_cast<std::int64_t>(*op) : 0;
          apply_span = spans().record_linked(
              frame.trace_id, Hop::cp_agent_apply, frame.parent_span,
              spans().now_ns(), spans().now_ns() - t0, opcode);
          if (op == core::wire::Command::commit_txn &&
              response.status == core::wire::Status::ok) {
            spans().record_linked(
                frame.trace_id, Hop::cp_agent_publish, apply_span,
                spans().now_ns(), 0,
                static_cast<std::int64_t>(enclave_.ruleset_version()));
          }
          transport_->send(
              encode_frame({FrameType::response, frame.id,
                            core::wire::encode_response(response),
                            frame.trace_id, apply_span}));
        } else {
          const Response response =
              core::wire::apply(enclave_, frame.payload, &telemetry_cursor_);
          transport_->send(encode_frame(
              {FrameType::response, frame.id,
               core::wire::encode_response(response)}));
        }
        break;
      }
      default:
        // Controller-bound frames arriving here mean the peer is
        // confused; drop them, the decoder stays in sync.
        break;
    }
    if (!transport_->connected()) return;  // a send forced a close
  }
  if (!ok) {
    // Framing is lost for good: close and wait for a fresh attach.
    // The transport object itself is torn down by the next attach() or
    // detach() — never here, we are inside its callback.
    ++stats_.corrupt_streams;
    abort_stale_txn();
    transport_->close();
  }
}

void EnclaveAgent::on_disconnect() { abort_stale_txn(); }

// --- EnclaveSession -----------------------------------------------------

EnclaveSession::EnclaveSession(std::string name, Connector connector,
                               ClockFn clock, SessionConfig config)
    : name_(std::move(name)),
      connector_(std::move(connector)),
      clock_(std::move(clock)),
      config_(config),
      rng_(config.seed) {}

std::uint64_t EnclaveSession::journal_size() const {
  std::uint64_t n = 3;  // begin_txn + reset_state + commit_txn
  for (const auto& action : journal_.actions) {
    n += 1 + action.scalars.size() + action.arrays.size();
  }
  for (const auto& table : journal_.tables) n += 1 + table.rules.size();
  n += journal_.flow_rules.size();
  return n;
}

void EnclaveSession::tick() {
  const std::uint64_t now = clock_();
  if (state_ == State::disconnected) {
    if (now >= next_connect_ns_) try_connect();
    return;
  }
  if (transport_ == nullptr || !transport_->connected()) {
    teardown("transport closed");
    return;
  }
  if (now - last_rx_ns_ >= config_.liveness_timeout_ns) {
    ++stats_.liveness_timeouts;
    teardown("liveness timeout");
    return;
  }
  if (!inflight_.empty() &&
      now - inflight_.front().sent_at_ns >= config_.request_timeout_ns) {
    ++stats_.request_timeouts;
    const Pending& head = inflight_.front();
    if (head.trace_id != 0) {
      spans().record_linked(head.trace_id, Hop::cp_timeout, head.span_id,
                            spans().now_ns(), 0,
                            static_cast<std::int64_t>(head.id));
    }
    teardown("request timeout");
    return;
  }
  if (now - last_heartbeat_ns_ >= config_.heartbeat_interval_ns) {
    // Until the hello_ack arrives the pacing slot re-sends the hello: a
    // heartbeat here would keep liveness fresh (the agent acks it) while
    // a dropped hello wedged the greeting forever.
    if (state_ == State::greeting) {
      send_hello();
    } else {
      send_heartbeat();
    }
  }
}

void EnclaveSession::try_connect() {
  // Outside any transport callback (tick context), so destroying the
  // previous transport object is safe here.
  transport_.reset();
  std::unique_ptr<Transport> fresh = connector_ ? connector_() : nullptr;
  if (fresh == nullptr || !fresh->connected()) {
    ++stats_.connect_failures;
    if (backoff_attempts_ < 32) ++backoff_attempts_;
    schedule_reconnect();
    return;
  }
  transport_ = std::move(fresh);
  decoder_.reset();
  transport_->set_on_bytes(
      [this](std::span<const std::uint8_t> data) { on_bytes(data); });
  transport_->set_on_disconnect([this]() { on_disconnect(); });
  ++stats_.connects;
  FlightRecorder::instance().record(FlightEventType::session_connect, name_,
                                    static_cast<std::int64_t>(stats_.connects));
  next_request_id_ = 1;
  last_rx_ns_ = clock_();
  state_ = State::greeting;
  send_hello();
}

void EnclaveSession::schedule_reconnect() {
  std::uint64_t nominal = config_.backoff_initial_ns;
  for (std::uint32_t i = 1; i < backoff_attempts_; ++i) {
    if (nominal >= config_.backoff_max_ns / 2) {
      nominal = config_.backoff_max_ns;
      break;
    }
    nominal *= 2;
  }
  nominal = std::min(nominal, config_.backoff_max_ns);
  // Jitter de-synchronizes a controller reconnecting to many enclaves
  // after a shared outage.
  const double factor =
      1.0 + config_.backoff_jitter * (2.0 * rng_.uniform() - 1.0);
  const auto delay = static_cast<std::uint64_t>(
      static_cast<double>(nominal) * std::max(0.0, factor));
  next_connect_ns_ = clock_() + delay;
  FlightRecorder::instance().record(FlightEventType::session_backoff, name_,
                                    static_cast<std::int64_t>(delay),
                                    backoff_attempts_);
  if (trace_.id != 0) {
    spans().record_linked(trace_.id, Hop::cp_backoff, trace_.root,
                          spans().now_ns(), 0,
                          static_cast<std::int64_t>(delay));
  }
}

void EnclaveSession::teardown(const char* reason) {
  ++stats_.teardowns;
  FlightRecorder::instance().record(FlightEventType::session_teardown,
                                    name_ + ": " + reason);
  if (trace_.id != 0) {
    spans().record_linked(trace_.id, Hop::cp_teardown, trace_.root,
                          spans().now_ns());
    // A resync/poll trace dies with its connection; a transaction's
    // survives into the folded resync on the next connect.
    if (trace_.owner != TraceOwner::txn) trace_ = ActiveTrace{};
  }
  if (transport_ != nullptr && transport_->connected()) transport_->close();
  // The transport object is destroyed on the next try_connect(): this
  // method runs from inside transport callbacks, where deleting the
  // transport would free the std::function we are executing.
  state_ = State::disconnected;
  inflight_.clear();
  outbox_.clear();
  heartbeat_sent_at_.clear();
  deferred_removes_.clear();
  decoder_.reset();
  if (backoff_attempts_ < 32) ++backoff_attempts_;
  schedule_reconnect();
}

void EnclaveSession::on_disconnect() {
  if (state_ != State::disconnected) teardown("peer closed");
}

void EnclaveSession::on_bytes(std::span<const std::uint8_t> data) {
  if (state_ == State::disconnected) return;
  last_rx_ns_ = clock_();
  std::vector<Frame> frames;
  const bool ok = decoder_.feed(data, frames);
  for (Frame& frame : frames) {
    handle_frame(frame);
    if (state_ == State::disconnected) return;  // a frame tore us down
  }
  if (!ok) {
    ++stats_.corrupt_streams;
    teardown(decoder_.error().c_str());
  }
}

void EnclaveSession::handle_frame(const Frame& frame) {
  const std::uint64_t now = clock_();
  switch (frame.type) {
    case FrameType::hello_ack: {
      if (state_ != State::greeting) return;
      const std::optional<AgentGreeting> greeting =
          decode_greeting(frame.payload);
      if (!greeting.has_value()) {
        ++stats_.corrupt_streams;
        teardown("bad greeting");
        return;
      }
      if (seen_agent_ && greeting->boot_id != agent_boot_id_) {
        ++stats_.agent_restarts_seen;
      }
      agent_boot_id_ = greeting->boot_id;
      seen_agent_ = true;
      backoff_attempts_ = 0;
      start_resync(*greeting);
      return;
    }
    case FrameType::heartbeat_ack: {
      auto it = heartbeat_sent_at_.find(frame.id);
      if (it != heartbeat_sent_at_.end()) {
        rtt_.record(now - it->second);
        heartbeat_sent_at_.erase(it);
        ++stats_.heartbeats_acked;
      }
      const std::optional<AgentGreeting> greeting =
          decode_greeting(frame.payload);
      if (greeting.has_value() && seen_agent_ &&
          greeting->boot_id != agent_boot_id_) {
        // The enclave restarted between heartbeats: its state is gone.
        // Reconnect and resync from the journal.
        ++stats_.agent_restarts_seen;
        agent_boot_id_ = greeting->boot_id;
        teardown("agent restarted");
      }
      return;
    }
    case FrameType::response: {
      if (inflight_.empty() || inflight_.front().id != frame.id) {
        // FIFO correlation broke: either a response was lost or
        // invented. Indistinguishable from corruption — resync.
        ++stats_.corrupt_streams;
        teardown("response id mismatch");
        return;
      }
      Pending pending = std::move(inflight_.front());
      inflight_.pop_front();
      rtt_.record(now - pending.sent_at_ns);
      if (pending.trace_id != 0) {
        // Round-trip slice under the cp_send span; agent-side spans for
        // the same request hang off that same parent, so the tree reads
        // send -> {apply, response}.
        const std::int64_t t = spans().now_ns();
        spans().record_linked(pending.trace_id, Hop::cp_response,
                              pending.span_id, t, t - pending.sent_span_ns,
                              static_cast<std::int64_t>(frame.id));
      }
      const Response response = core::wire::decode_response(frame.payload);
      if (response.status == Status::ok) {
        ++stats_.responses_ok;
      } else {
        ++stats_.responses_error;
      }
      if (pending.done) pending.done(response);
      pump_outbox();
      return;
    }
    default:
      // Enclave-bound frame types are never valid here; ignore.
      return;
  }
}

void EnclaveSession::send_request(std::vector<std::uint8_t> command,
                                  Completion done) {
  if (transport_ == nullptr || !transport_->connected()) return;
  outbox_.push_back(
      {std::move(command), std::move(done), trace_.id, trace_.root});
  pump_outbox();
}

void EnclaveSession::pump_outbox() {
  while (transport_ != nullptr && transport_->connected() &&
         inflight_.size() < config_.max_inflight && !outbox_.empty()) {
    Outgoing out = std::move(outbox_.front());
    outbox_.pop_front();
    const std::uint64_t id = next_request_id_++;
    ++stats_.requests_sent;
    if (out.trace_id != 0) {
      const std::int64_t send_span = spans().record_linked(
          out.trace_id, Hop::cp_send, out.parent_span, spans().now_ns(), 0,
          static_cast<std::int64_t>(id));
      inflight_.push_back({id, clock_(), std::move(out.done), out.trace_id,
                           send_span, spans().now_ns()});
      Frame frame{FrameType::request, id, std::move(out.command)};
      frame.trace_id = out.trace_id;
      frame.parent_span = send_span;
      // Publish the context for the layers under the session (the
      // fault injector) for the duration of this send.
      ScopedWireTrace wire_trace(out.trace_id, send_span);
      transport_->send(encode_frame(frame));
    } else {
      // Untraced commands pay exactly this branch.
      inflight_.push_back({id, clock_(), std::move(out.done)});
      transport_->send(
          encode_frame({FrameType::request, id, std::move(out.command)}));
    }
  }
}

void EnclaveSession::send_hello() {
  // Shares the heartbeat pacing slot, so a lost hello is retried every
  // heartbeat_interval until the greeting completes.
  last_heartbeat_ns_ = clock_();
  transport_->send(encode_frame({FrameType::hello, next_id_++, {}}));
}

void EnclaveSession::send_heartbeat() {
  const std::uint64_t now = clock_();
  // A probe this old could only be acked after the liveness window; on
  // a link that drops acks while response traffic sustains liveness the
  // map would otherwise grow without bound.
  std::erase_if(heartbeat_sent_at_, [&](const auto& kv) {
    return now - kv.second >= config_.liveness_timeout_ns;
  });
  const std::uint64_t id = next_id_++;
  heartbeat_sent_at_[id] = now;
  last_heartbeat_ns_ = now;
  ++stats_.heartbeats_sent;
  transport_->send(encode_frame({FrameType::heartbeat, id, {}}));
}

void EnclaveSession::start_resync(const AgentGreeting& /*greeting*/) {
  // Always resync on connect: even a same-boot reconnect may have lost
  // an in-flight commit, and replaying the journal into one transaction
  // is idempotent — reset_state then rebuild, published in one swap, so
  // the data path sees the old committed set until the new one lands.
  ++stats_.resyncs;
  state_ = State::ready;
  // A resync continues the transaction's trace when one is open across
  // the reconnect; otherwise it may start its own (sampled) trace. The
  // cp_resync span id is allocated up front so the replayed commands'
  // cp_send spans parent under it, and the event itself is recorded
  // after the replay, once the command count is known.
  if (trace_.id == 0) {
    const std::int64_t id = spans().maybe_start_trace();
    if (id != 0) trace_ = ActiveTrace{id, 0, TraceOwner::resync};
  }
  const std::int64_t resync_parent = trace_.root;
  std::int64_t resync_span = 0;
  if (trace_.id != 0) {
    resync_span = spans().next_span_id();
    trace_.root = resync_span;
  }
  deferred_removes_.clear();
  for (auto& table : journal_.tables) {
    for (auto& rule : table.rules) rule.remote_id = 0;
  }
  if (txn_snapshot_ != nullptr) {
    for (auto& table : txn_snapshot_->tables) {
      for (auto& rule : table.rules) rule.remote_id = 0;
    }
  }

  std::uint64_t commands = 0;
  const std::function<void(std::vector<std::uint8_t>, Completion)> push =
      [&](std::vector<std::uint8_t> frame, Completion done) {
        ++commands;
        send_request(std::move(frame), std::move(done));
      };

  // The committed state the enclave converges to: the whole journal, or
  // — with a client transaction open across the reconnect — only its
  // pre-transaction snapshot, so the staged mutations stay invisible.
  const bool txn_open = txn_snapshot_ != nullptr;
  const Journal& base = txn_open ? *txn_snapshot_ : journal_;
  push(core::wire::encode_begin_txn(), {});
  push(core::wire::encode_reset_state(), {});
  replay_journal(base, /*snapshot_rules=*/txn_open, push);
  push(core::wire::encode_commit_txn(), [this](const Response& response) {
    if (response.status == Status::ok) ++stats_.txns_committed;
    // Terminal hop of a resync trace — and of a txn trace whose commit
    // was folded into this resync across a reconnect.
    finish_trace_unless_txn_open();
  });

  if (txn_open) {
    // Re-open the interrupted transaction on the fresh connection and
    // re-stage its effects by replaying the full desired journal on
    // top of a staged wipe; the client's eventual commit_txn/abort_txn
    // finishes it, so the transaction still lands (or vanishes)
    // atomically despite the disconnect.
    push(core::wire::encode_begin_txn(), {});
    push(core::wire::encode_reset_state(), {});
    replay_journal(journal_, /*snapshot_rules=*/false, push);
  }

  stats_.last_resync_commands = commands;
  resync_sizes_.record(commands);
  FlightRecorder::instance().record(FlightEventType::resync, name_,
                                    static_cast<std::int64_t>(commands),
                                    txn_open ? 1 : 0);
  if (trace_.id != 0) {
    spans().record(trace_.id, Hop::cp_resync, spans().now_ns(), 0,
                   static_cast<std::int64_t>(commands), resync_span,
                   resync_parent);
    // Later client commands on a reopened transaction parent under the
    // transaction root again, not under this resync.
    if (trace_.owner == TraceOwner::txn) trace_.root = resync_parent;
  }
}

void EnclaveSession::replay_journal(
    const Journal& journal, bool snapshot_rules,
    const std::function<void(std::vector<std::uint8_t>, Completion)>& push) {
  for (const auto& action : journal.actions) {
    push(core::wire::encode_install_action(action.name, action.program,
                                           action.globals),
         {});
    for (const auto& [field, value] : action.scalars) {
      push(core::wire::encode_set_global_scalar(action.name, field, value),
           {});
    }
    for (const auto& [field, data] : action.arrays) {
      push(core::wire::encode_set_global_array(action.name, field, data), {});
    }
  }
  // Rule ids from a replay staged inside an open transaction are
  // discarded if the client aborts; the epoch check keeps them from
  // overwriting the ids the restored (snapshot) journal already has.
  const bool staged = !snapshot_rules && txn_snapshot_ != nullptr;
  const std::uint64_t epoch = txn_epoch_;
  for (const auto& table : journal.tables) {
    push(core::wire::encode_create_table(table.name), {});
    for (const auto& rule : table.rules) {
      push(core::wire::encode_add_rule_named(table.name, rule.pattern,
                                             rule.action),
           [this, handle = rule.handle, table_name = table.name,
            snapshot_rules, staged, epoch](const Response& response) {
             if (response.status != Status::ok) return;
             if (staged && epoch != txn_epoch_) return;
             // Snapshot rules record into the open transaction's
             // snapshot — the journal the client falls back to on
             // abort; once the transaction is finished the snapshot is
             // gone and the live journal is the only target left.
             Journal* target = snapshot_rules && txn_snapshot_ != nullptr
                                   ? txn_snapshot_.get()
                                   : &journal_;
             for (auto& t : target->tables) {
               if (t.name != table_name) continue;
               for (auto& r : t.rules) {
                 if (r.handle == handle) {
                   r.remote_id =
                       static_cast<core::MatchRuleId>(response.value);
                   return;
                 }
               }
             }
           });
    }
  }
  for (const auto& [rule, class_name] : journal.flow_rules) {
    push(core::wire::encode_add_flow_rule(rule, class_name), {});
  }
}

EnclaveSession::Journal::ActionDef* EnclaveSession::find_action(
    const std::string& name) {
  for (auto& action : journal_.actions) {
    if (action.name == name) return &action;
  }
  return nullptr;
}

EnclaveSession::Journal::TableDef* EnclaveSession::find_table(
    const std::string& name) {
  for (auto& table : journal_.tables) {
    if (table.name == name) return &table;
  }
  return nullptr;
}

void EnclaveSession::install_action(const std::string& name,
                                    const lang::CompiledProgram& program,
                                    std::vector<lang::FieldDef> global_fields) {
  Journal::ActionDef* def = find_action(name);
  if (def == nullptr) {
    def = &journal_.actions.emplace_back();
    def->name = name;
  }
  def->program = program;
  def->globals = std::move(global_fields);
  // Reinstalling resets globals to schema defaults; stale writes must
  // not be replayed over the new program.
  def->scalars.clear();
  def->arrays.clear();
  if (state_ == State::ready) {
    send_request(
        core::wire::encode_install_action(name, program, def->globals), {});
  }
}

void EnclaveSession::remove_action(const std::string& name) {
  std::erase_if(journal_.actions,
                [&](const Journal::ActionDef& a) { return a.name == name; });
  // Desired state: rules pointing at a removed action are gone too (the
  // live enclave leaves them as harmless no-ops until the next resync).
  for (auto& table : journal_.tables) {
    std::erase_if(table.rules,
                  [&](const Journal::RuleDef& r) { return r.action == name; });
  }
  if (state_ == State::ready) {
    send_request(core::wire::encode_remove_action(name), {});
  }
}

void EnclaveSession::create_table(const std::string& name) {
  if (find_table(name) != nullptr) return;
  journal_.tables.emplace_back().name = name;
  if (state_ == State::ready) {
    send_request(core::wire::encode_create_table(name), {});
  }
}

EnclaveSession::RuleHandle EnclaveSession::add_rule(const std::string& table,
                                                    const std::string& pattern,
                                                    const std::string& action) {
  create_table(table);  // implicit, like a filesystem mkdir -p
  Journal::TableDef* t = find_table(table);
  Journal::RuleDef rule;
  rule.handle = next_handle_++;
  rule.pattern = pattern;
  rule.action = action;
  t->rules.push_back(rule);
  if (state_ == State::ready) {
    send_request(
        core::wire::encode_add_rule_named(table, pattern, action),
        [this, handle = rule.handle, table_name = table](
            const Response& response) {
          if (response.status != Status::ok) return;
          const auto rid = static_cast<core::MatchRuleId>(response.value);
          if (Journal::TableDef* td = find_table(table_name)) {
            for (auto& r : td->rules) {
              if (r.handle == handle) {
                r.remote_id = rid;
                return;
              }
            }
          }
          // The rule was removed before this response arrived: finish
          // the remove now that the remote id is known.
          auto it = deferred_removes_.find(handle);
          if (it != deferred_removes_.end()) {
            send_request(core::wire::encode_remove_rule_named(it->second, rid),
                         {});
            deferred_removes_.erase(it);
          }
        });
  }
  return rule.handle;
}

void EnclaveSession::remove_rule(const std::string& table, RuleHandle handle) {
  Journal::TableDef* t = find_table(table);
  if (t == nullptr) return;
  core::MatchRuleId remote_id = 0;
  bool found = false;
  std::erase_if(t->rules, [&](const Journal::RuleDef& r) {
    if (r.handle != handle) return false;
    remote_id = r.remote_id;
    found = true;
    return true;
  });
  if (!found || state_ != State::ready) return;
  if (remote_id != 0) {
    send_request(core::wire::encode_remove_rule_named(table, remote_id), {});
  } else {
    deferred_removes_[handle] = table;
  }
}

void EnclaveSession::set_global_scalar(const std::string& action,
                                       const std::string& field,
                                       std::int64_t value) {
  // The journal is the source of truth: a write to an action it does
  // not know would land on the enclave but silently revert on the next
  // resync, so it must not be sent either.
  Journal::ActionDef* def = find_action(action);
  if (def == nullptr) return;
  def->scalars[field] = value;
  if (state_ == State::ready) {
    send_request(core::wire::encode_set_global_scalar(action, field, value),
                 {});
  }
}

void EnclaveSession::set_global_array(const std::string& action,
                                      const std::string& field,
                                      std::vector<std::int64_t> data) {
  Journal::ActionDef* def = find_action(action);
  if (def == nullptr) return;
  if (state_ == State::ready) {
    send_request(core::wire::encode_set_global_array(action, field, data), {});
  }
  def->arrays[field] = std::move(data);
}

void EnclaveSession::add_flow_rule(const core::FlowClassifierRule& rule,
                                   const std::string& class_name) {
  journal_.flow_rules.emplace_back(rule, class_name);
  if (state_ == State::ready) {
    send_request(core::wire::encode_add_flow_rule(rule, class_name), {});
  }
}

void EnclaveSession::clear_flow_rules() {
  journal_.flow_rules.clear();
  if (state_ == State::ready) {
    send_request(core::wire::encode_clear_flow_rules(), {});
  }
}

void EnclaveSession::begin_txn() {
  if (txn_snapshot_ != nullptr) return;  // one open transaction at a time
  txn_snapshot_ = std::make_unique<Journal>(journal_);
  FlightRecorder::instance().record(FlightEventType::txn_begin, name_);
  if (trace_.owner == TraceOwner::none) {
    const std::int64_t id = spans().maybe_start_trace();
    if (id != 0) {
      trace_.id = id;
      trace_.owner = TraceOwner::txn;
      trace_.root =
          spans().record_linked(id, Hop::cp_txn_begin, 0, spans().now_ns());
    }
  }
  if (state_ == State::ready) {
    send_request(core::wire::encode_begin_txn(), {});
  }
}

void EnclaveSession::commit_txn() {
  if (txn_snapshot_ == nullptr) return;
  txn_snapshot_.reset();
  FlightRecorder::instance().record(FlightEventType::txn_commit, name_);
  const bool owned = trace_.owner == TraceOwner::txn;
  if (owned) {
    spans().record_linked(trace_.id, Hop::cp_txn_commit, trace_.root,
                          spans().now_ns());
  }
  if (state_ == State::ready) {
    send_request(core::wire::encode_commit_txn(),
                 [this, owned](const Response& response) {
                   if (response.status == Status::ok) ++stats_.txns_committed;
                   if (owned) trace_ = ActiveTrace{};
                 });
  } else if (owned) {
    // Disconnected commit: the next resync folds it in, so hand the
    // trace to the resync — its commit completion is the terminal hop
    // of the retry -> reconnect -> resync -> commit chain.
    trace_.owner = TraceOwner::resync;
  }
  // Disconnected commits are folded into the next resync, which itself
  // commits as one transaction.
}

void EnclaveSession::abort_txn() {
  if (txn_snapshot_ == nullptr) return;
  journal_ = std::move(*txn_snapshot_);
  txn_snapshot_.reset();
  ++txn_epoch_;  // in-flight staged rule ids are now meaningless
  ++stats_.txns_aborted;
  FlightRecorder::instance().record(FlightEventType::txn_abort, name_);
  const bool owned = trace_.owner == TraceOwner::txn;
  if (owned) {
    spans().record_linked(trace_.id, Hop::cp_txn_abort, trace_.root,
                          spans().now_ns());
  }
  if (state_ == State::ready) {
    send_request(core::wire::encode_abort_txn(),
                 [this, owned](const Response&) {
                   if (owned) trace_ = ActiveTrace{};
                 });
  } else if (owned) {
    trace_ = ActiveTrace{};
  }
}

std::string EnclaveSession::fetch_payload(PipePump& pump,
                                          std::vector<std::uint8_t> command) {
  if (state_ != State::ready) return {};
  // Shared cell rather than stack references: if the response never
  // arrives (dropped by a faulty link) the completion outlives this
  // frame and must not dangle.
  auto cell = std::make_shared<std::pair<bool, std::string>>();
  send_request(std::move(command), [cell](const Response& response) {
    cell->first = true;
    if (response.status == Status::ok) {
      cell->second.assign(response.payload.begin(), response.payload.end());
    }
  });
  while (!cell->first && pump.step()) {
  }
  return cell->first ? cell->second : std::string{};
}

telemetry::SessionTelemetry EnclaveSession::telemetry() const {
  telemetry::SessionTelemetry t;
  t.name = name_;
  t.connected = connected();
  t.ready = ready();
  t.agent_boot_id = agent_boot_id_;
  t.connects = stats_.connects;
  t.connect_failures = stats_.connect_failures;
  t.teardowns = stats_.teardowns;
  t.resyncs = stats_.resyncs;
  t.last_resync_commands = stats_.last_resync_commands;
  t.requests_sent = stats_.requests_sent;
  t.responses_ok = stats_.responses_ok;
  t.responses_error = stats_.responses_error;
  t.request_timeouts = stats_.request_timeouts;
  t.heartbeats_sent = stats_.heartbeats_sent;
  t.heartbeats_acked = stats_.heartbeats_acked;
  t.liveness_timeouts = stats_.liveness_timeouts;
  t.corrupt_streams = stats_.corrupt_streams;
  t.txns_committed = stats_.txns_committed;
  t.txns_aborted = stats_.txns_aborted;
  t.agent_restarts_seen = stats_.agent_restarts_seen;
  t.rtt_ns = rtt_.snapshot();
  t.resync_commands = resync_sizes_.snapshot();
  return t;
}

std::string EnclaveSession::fetch_telemetry_json(PipePump& pump) {
  return fetch_payload(pump, core::wire::encode_get_telemetry());
}

std::string EnclaveSession::fetch_spans_json(PipePump& pump) {
  return fetch_payload(pump, core::wire::encode_get_spans());
}

std::string EnclaveSession::fetch_telemetry_delta_json(PipePump& pump,
                                                       std::uint64_t epoch,
                                                       std::uint64_t seq) {
  // A delta poll is its own (sampled) trace when no operation already
  // owns one: cp_poll root -> cp_send -> agent apply -> response.
  if (state_ == State::ready && trace_.owner == TraceOwner::none) {
    const std::int64_t id = spans().maybe_start_trace();
    if (id != 0) {
      trace_.id = id;
      trace_.owner = TraceOwner::poll;
      trace_.root =
          spans().record_linked(id, Hop::cp_poll, 0, spans().now_ns(), 0,
                                static_cast<std::int64_t>(epoch));
    }
  }
  std::string out =
      fetch_payload(pump, core::wire::encode_get_telemetry_delta(epoch, seq));
  if (trace_.owner == TraceOwner::poll) trace_ = ActiveTrace{};
  return out;
}

}  // namespace eden::controlplane
