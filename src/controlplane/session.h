// Resilient controller <-> enclave session layer.
//
// The paper's controller programs enclaves through the enclave API
// (Section 3.4.5); this module makes that control channel survive an
// unreliable substrate. Two halves:
//
//  * EnclaveAgent — enclave-side endpoint. Decodes frames from an
//    attached Transport, applies wire commands to its Enclave in
//    arrival order, answers hello/heartbeat with an AgentGreeting
//    carrying its boot id and committed rule-set version, and aborts
//    any open transaction when the connection drops or a new
//    controller attaches.
//
//  * EnclaveSession — controller-side endpoint. Pipelines requests
//    (FIFO response correlation), paces heartbeats, detects dead peers
//    by liveness and request timeouts, reconnects with capped
//    exponential backoff + jitter, and keeps a *desired-state journal*
//    of every mutation so a restarted (or blank) enclave converges: on
//    every (re)connect it replays the journal as one transaction, so
//    the data path never observes a half-restored rule set.
//
// Mutations issued while disconnected are journaled and folded into
// the next resync; the journal is the source of truth, the enclave is
// the replica. All time comes from an injectable clock and all
// randomness from a seeded Rng, so tests run the whole protocol —
// disconnects, timeouts, backoff — deterministically in virtual time.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "controlplane/frame.h"
#include "controlplane/transport.h"
#include "core/wire.h"
#include "telemetry/metrics.h"
#include "telemetry/snapshot.h"
#include "telemetry/span.h"
#include "util/rng.h"

namespace eden::controlplane {

// Enclave-side session endpoint. One agent serves one enclave; a new
// agent instance gets a fresh boot id, so constructing one models an
// enclave host restart as far as the controller can tell.
class EnclaveAgent {
 public:
  explicit EnclaveAgent(core::Enclave& enclave);

  // Takes ownership of the connection. An already-attached transport is
  // closed first; in both cases any transaction the previous connection
  // left open is aborted, so a half-staged update from a dead
  // controller can never commit.
  void attach(std::unique_ptr<Transport> transport);
  void detach();
  bool attached() const { return transport_ != nullptr; }

  std::uint64_t boot_id() const { return boot_id_; }

  // Host-series hook for get_telemetry_delta polls: fills
  // EnclaveTelemetry::host_series with host-level gauges the enclave
  // cannot see (data-plane ring depth, pool exhaustion, ...). The
  // cursor — and with it the delta epoch — is per-agent, so a new
  // agent (= restarted host) always resyncs the controller in full.
  void set_host_series(core::wire::TelemetryCursor::HostSeriesFn fn) {
    telemetry_cursor_.set_host_series(std::move(fn));
  }
  const core::wire::TelemetryCursor& telemetry_cursor() const {
    return telemetry_cursor_;
  }

  struct Stats {
    std::uint64_t frames = 0;
    std::uint64_t requests = 0;
    std::uint64_t heartbeats = 0;
    std::uint64_t corrupt_streams = 0;
    std::uint64_t stale_txn_aborts = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  void on_bytes(std::span<const std::uint8_t> data);
  void on_disconnect();
  void abort_stale_txn();
  std::vector<std::uint8_t> greeting_payload() const;

  core::Enclave& enclave_;
  std::uint64_t boot_id_;
  std::unique_ptr<Transport> transport_;
  FrameDecoder decoder_;
  // Request frames must arrive with consecutive ids (1, 2, 3, ... per
  // connection). A gap means the lossy substrate swallowed a command —
  // applying the survivors would tear apart batches the controller
  // meant atomically — and a repeat means a duplicated delivery; both
  // are stream corruption: close and let the controller resync.
  std::uint64_t expected_request_id_ = 1;
  core::wire::TelemetryCursor telemetry_cursor_;
  Stats stats_;
};

struct SessionConfig {
  std::uint64_t heartbeat_interval_ns = 50'000'000;   // 50 ms
  std::uint64_t liveness_timeout_ns = 200'000'000;    // 200 ms
  std::uint64_t request_timeout_ns = 250'000'000;     // 250 ms
  std::uint64_t backoff_initial_ns = 10'000'000;      // 10 ms
  std::uint64_t backoff_max_ns = 1'000'000'000;       // 1 s
  double backoff_jitter = 0.2;  // +-20% around the nominal delay
  std::uint64_t seed = 1;       // jitter rng
  std::size_t max_inflight = 64;  // pipelining window
};

// Point-in-time counters for one session; the raw material for the
// telemetry export (telemetry/snapshot.h) and eden-stat's session
// table.
struct SessionStats {
  std::uint64_t connects = 0;          // successful transport opens
  std::uint64_t connect_failures = 0;  // connector returned nothing
  std::uint64_t teardowns = 0;         // liveness/timeout/corruption
  std::uint64_t resyncs = 0;
  std::uint64_t last_resync_commands = 0;  // journal replay size
  std::uint64_t requests_sent = 0;
  std::uint64_t responses_ok = 0;
  std::uint64_t responses_error = 0;
  std::uint64_t request_timeouts = 0;
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t heartbeats_acked = 0;
  std::uint64_t liveness_timeouts = 0;
  std::uint64_t corrupt_streams = 0;
  std::uint64_t txns_committed = 0;
  std::uint64_t txns_aborted = 0;
  std::uint64_t agent_restarts_seen = 0;  // boot id changed under us
};

// Controller-side session endpoint. Not thread-safe: the session, its
// pump and its clock belong to the controller's control thread; only
// the enclave on the far side is concurrent.
class EnclaveSession {
 public:
  // Returns a fresh connected transport, or nullptr if the dial failed
  // (the session backs off and retries).
  using Connector = std::function<std::unique_ptr<Transport>()>;
  // Monotonic nanoseconds. Injectable so tests drive virtual time.
  using ClockFn = std::function<std::uint64_t()>;

  // Session-local stable rule identity; survives resyncs (the remote
  // MatchRuleId does not).
  using RuleHandle = std::uint64_t;

  EnclaveSession(std::string name, Connector connector, ClockFn clock,
                 SessionConfig config = {});

  const std::string& name() const { return name_; }

  // Drives the protocol clock: reconnects when backoff expires, paces
  // heartbeats, fires liveness and request timeouts. Call regularly
  // (each virtual-time step in tests; a timer wheel in a real
  // controller).
  void tick();

  bool connected() const { return transport_ != nullptr; }
  // Connected, greeted and resync issued: requests flow.
  bool ready() const { return state_ == State::ready; }

  // --- Desired-state mutations (journaled; sent when ready) ---------
  void install_action(const std::string& name,
                      const lang::CompiledProgram& program,
                      std::vector<lang::FieldDef> global_fields);
  void remove_action(const std::string& name);
  void create_table(const std::string& name);
  RuleHandle add_rule(const std::string& table, const std::string& pattern,
                      const std::string& action);
  void remove_rule(const std::string& table, RuleHandle handle);
  void set_global_scalar(const std::string& action, const std::string& field,
                         std::int64_t value);
  void set_global_array(const std::string& action, const std::string& field,
                        std::vector<std::int64_t> data);
  void add_flow_rule(const core::FlowClassifierRule& rule,
                     const std::string& class_name);
  void clear_flow_rules();

  // --- Transactions -------------------------------------------------
  // Mutations between begin_txn and commit_txn are staged on the
  // enclave and published in one atomic rule-set swap. abort_txn rolls
  // the journal back to the begin_txn snapshot. A transaction
  // interrupted by a disconnect is aborted enclave-side; the next
  // resync commits the pre-transaction snapshot as the converged base
  // state, then re-opens the transaction on the fresh connection and
  // re-stages its effects, so the client's eventual commit_txn /
  // abort_txn keeps its atomic meaning across the reconnect.
  void begin_txn();
  void commit_txn();
  void abort_txn();
  bool txn_open() const { return txn_snapshot_ != nullptr; }

  // --- Reads --------------------------------------------------------
  // Issues the query and drives `pump` until the response arrives (or
  // the event queue drains without one). Empty string when the session
  // is not ready or the reply never came — callers treat that as
  // "unreachable".
  std::string fetch_telemetry_json(PipePump& pump);
  std::string fetch_spans_json(PipePump& pump);
  // Delta poll: echoes (epoch, seq) — normally a DeltaDecoder's
  // epoch()/seq() — and returns the agent's telemetry::DeltaPayload
  // JSON (empty on not-ready/timeout, like the fetches above).
  std::string fetch_telemetry_delta_json(PipePump& pump, std::uint64_t epoch,
                                         std::uint64_t seq);

  const SessionStats& stats() const { return stats_; }
  telemetry::HistogramSnapshot rtt() const { return rtt_.snapshot(); }
  // Snapshot for the controller's aggregate export (eden-stat's session
  // table, the Prometheus eden_session_* series).
  telemetry::SessionTelemetry telemetry() const;
  std::uint64_t agent_boot_id() const { return agent_boot_id_; }
  // Commands currently awaiting a response.
  std::size_t inflight() const { return inflight_.size(); }
  std::uint64_t journal_size() const;

 private:
  enum class State : std::uint8_t {
    disconnected,  // waiting out backoff
    greeting,      // hello sent, awaiting hello_ack
    ready,         // resync issued; requests flow
  };

  struct Journal {
    struct ActionDef {
      std::string name;
      lang::CompiledProgram program;
      std::vector<lang::FieldDef> globals;
      // Last write wins; replay restores the final value of each field.
      std::map<std::string, std::int64_t> scalars;
      std::map<std::string, std::vector<std::int64_t>> arrays;
    };
    struct RuleDef {
      RuleHandle handle = 0;
      std::string pattern;
      std::string action;
      core::MatchRuleId remote_id = 0;  // 0 until the add response lands
    };
    struct TableDef {
      std::string name;
      std::vector<RuleDef> rules;
    };
    std::vector<ActionDef> actions;
    std::vector<TableDef> tables;
    std::vector<std::pair<core::FlowClassifierRule, std::string>> flow_rules;
  };

  using Completion = std::function<void(const core::wire::Response&)>;
  struct Pending {
    std::uint64_t id = 0;
    std::uint64_t sent_at_ns = 0;
    Completion done;  // may be empty
    // Trace context of the request (0 = untraced): the cp_send span the
    // response/timeout events parent under, and the collector-clock
    // send time the round-trip slice is measured against.
    std::int64_t trace_id = 0;
    std::int64_t span_id = 0;
    std::int64_t sent_span_ns = 0;
  };

  // The active controller-side trace. One logical operation at a time
  // owns it: a client transaction (begin→commit/abort, surviving
  // reconnects via the folded resync), a connect-triggered resync, or
  // a telemetry delta poll. Every frame sent while a trace is active
  // carries its id, so agent-side spans land in the same causal tree.
  enum class TraceOwner : std::uint8_t { none, txn, resync, poll };
  struct ActiveTrace {
    std::int64_t id = 0;    // 0 = no active trace
    std::int64_t root = 0;  // span new sends parent under
    TraceOwner owner = TraceOwner::none;
  };

  void on_bytes(std::span<const std::uint8_t> data);
  void on_disconnect();
  void handle_frame(const Frame& frame);
  void teardown(const char* reason);
  void schedule_reconnect();
  void try_connect();
  void start_resync(const AgentGreeting& greeting);
  // Queues one command for sending; frames leave the outbox as the
  // pipelining window (max_inflight) allows, FIFO. Only valid while
  // connected.
  void send_request(std::vector<std::uint8_t> command, Completion done);
  void pump_outbox();
  void send_hello();
  void send_heartbeat();
  // Pushes one install/set/create/add command per journal fact through
  // `push`. With `snapshot_rules` set the rule-add completions record
  // remote ids into the open transaction's snapshot (the journal the
  // client falls back to on abort) instead of the live journal.
  void replay_journal(
      const Journal& journal, bool snapshot_rules,
      const std::function<void(std::vector<std::uint8_t>, Completion)>& push);
  Journal::ActionDef* find_action(const std::string& name);
  Journal::TableDef* find_table(const std::string& name);
  std::string fetch_payload(PipePump& pump,
                            std::vector<std::uint8_t> command);

  std::string name_;
  Connector connector_;
  ClockFn clock_;
  SessionConfig config_;
  util::Rng rng_;

  State state_ = State::disconnected;
  std::unique_ptr<Transport> transport_;
  FrameDecoder decoder_;
  std::uint64_t next_id_ = 1;
  // Requests use their own consecutive per-connection id space (reset
  // on every connect) so the agent can detect lost or duplicated
  // commands by sequence; hello/heartbeat ids come from next_id_.
  std::uint64_t next_request_id_ = 1;
  struct Outgoing {
    std::vector<std::uint8_t> command;
    Completion done;
    // Captured at enqueue time so a command queued while a trace was
    // active keeps its context even if the trace ends before the
    // pipelining window lets it out.
    std::int64_t trace_id = 0;
    std::int64_t parent_span = 0;
  };
  std::deque<Outgoing> outbox_;
  std::deque<Pending> inflight_;
  std::map<std::uint64_t, std::uint64_t> heartbeat_sent_at_;
  std::uint64_t last_rx_ns_ = 0;
  std::uint64_t last_heartbeat_ns_ = 0;
  std::uint64_t next_connect_ns_ = 0;  // backoff deadline
  std::uint32_t backoff_attempts_ = 0;
  std::uint64_t agent_boot_id_ = 0;
  bool seen_agent_ = false;

  Journal journal_;
  RuleHandle next_handle_ = 1;
  // Rules removed before their add response delivered a remote id; the
  // remove is sent as soon as the id is known.
  std::map<RuleHandle, std::string> deferred_removes_;  // handle -> table
  std::unique_ptr<Journal> txn_snapshot_;
  // Bumped on every abort_txn: rule-add completions staged for the
  // aborted transaction check it and drop their (discarded) remote ids
  // instead of corrupting the restored journal.
  std::uint64_t txn_epoch_ = 0;

  // Clears the trace unless a client transaction still owns it — the
  // terminal hop of resync/poll traces and of txn traces whose commit
  // was folded across a reconnect.
  void finish_trace_unless_txn_open() {
    if (txn_snapshot_ == nullptr) trace_ = ActiveTrace{};
  }

  ActiveTrace trace_;
  SessionStats stats_;
  telemetry::Histogram rtt_;
  telemetry::Histogram resync_sizes_;
};

}  // namespace eden::controlplane
