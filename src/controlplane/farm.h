// In-process agent farm: N controller->enclave session stacks for
// fleet-scale tests and benches.
//
// Each slot is the full PR4 control-plane stack — an Enclave, an
// EnclaveAgent, an in-memory pipe (optionally wrapped in a seeded
// FaultyTransport) and an EnclaveSession — driven by its own PipePump
// and virtual clock, so a thousand agents fit in one process and every
// fault schedule replays from its seed. The farm exposes the fleet as
// telemetry::CollectorSource entries whose delta fetch drives the
// slot's pump; a source only ever touches its own slot, so the
// TelemetryCollector's chunked fan-out needs no additional locking as
// long as kill/restart/drive happen between polls.
//
// Ground truth: drive(i, n) pushes n packets through slot i's enclave
// and counts them farm-side. Enclave packet counters survive
// clear_all() (resyncs and restarts), so a collector whose last poll
// of every live slot succeeded must report exactly driven_total()
// packets — the invariant the fleet soak asserts.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "controlplane/fault.h"
#include "controlplane/session.h"
#include "telemetry/collector.h"

namespace eden::controlplane {

struct FarmConfig {
  std::size_t agents = 16;
  std::uint64_t seed = 1;
  bool chaos = false;   // wrap pipes in FaultyTransport
  FaultProfile fault;   // profile used when chaos is on (seed is mixed
                        // per slot and per dial)
  SessionConfig session;  // overridden to ms-scale virtual timeouts in
                          // the ctor unless already customized
  std::uint64_t step_ns = 1'000'000;  // virtual time per step()
};

class AgentFarm {
 public:
  explicit AgentFarm(FarmConfig config);
  ~AgentFarm();
  AgentFarm(const AgentFarm&) = delete;
  AgentFarm& operator=(const AgentFarm&) = delete;

  std::size_t size() const { return slots_.size(); }

  // Installs a minimal mark-action + table + catch-all rule on every
  // slot through the session journal, so restarts and resyncs rebuild
  // it. Call converge() afterwards to let the installs land.
  void install_program();

  // Advances slot i's virtual clock, ticks its session and runs its
  // pump. step_all() does every live slot once.
  void step(std::size_t i);
  void step_all();
  // Steps everything until every non-killed session is ready with an
  // empty pipeline; false if max_rounds elapse first.
  bool converge(std::size_t max_rounds = 20000);

  // Ground-truth packet injection (farm-side counter + enclave stats).
  void drive(std::size_t i, std::size_t packets);
  std::uint64_t driven(std::size_t i) const;
  std::uint64_t driven_total() const;

  // Fault controls — only between collector polls.
  void set_chaos(std::size_t i, bool chaos);
  // Kill: the connector stops answering, the running connection drops.
  // The slot's enclave (and its counters) stay put; revive() lets the
  // session dial again.
  void kill(std::size_t i);
  void revive(std::size_t i);
  bool killed(std::size_t i) const;
  // Agent restart: fresh EnclaveAgent (new boot id, new telemetry
  // cursor), so the next delta poll is a full resync under a fresh
  // epoch and the session records agent_restarts_seen.
  void restart(std::size_t i);

  // Host-series values the slot's agent reports on telemetry polls
  // (pool exhaustion, ring depth, ... in the real stack).
  void set_host_series_value(std::size_t i, const std::string& name,
                             double value);

  // One CollectorSource per slot; fetch_delta drives the slot's pump
  // until the reply lands or the pipe drains (never blocks).
  std::vector<telemetry::CollectorSource> sources();

  core::Enclave& enclave(std::size_t i);
  EnclaveSession& session(std::size_t i);

 private:
  struct Slot;
  Slot& slot(std::size_t i);
  const Slot& slot(std::size_t i) const;
  void attach_agent(Slot& s);

  FarmConfig config_;
  std::unique_ptr<core::ClassRegistry> registry_;
  std::vector<std::unique_ptr<Slot>> slots_;
};

}  // namespace eden::controlplane
