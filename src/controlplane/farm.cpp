#include "controlplane/farm.h"

#include <utility>

#include "core/controller.h"
#include "telemetry/flight_recorder.h"

namespace eden::controlplane {

struct AgentFarm::Slot {
  std::size_t index = 0;
  std::string name;
  std::unique_ptr<core::Enclave> enclave;
  PipePump pump;
  std::unique_ptr<EnclaveAgent> agent;
  std::unique_ptr<EnclaveSession> session;
  std::uint64_t now_ns = 0;
  bool chaos = false;
  bool killed = false;
  std::uint64_t dials = 0;
  std::uint64_t driven = 0;
  std::map<std::string, double> host_series;
};

AgentFarm::AgentFarm(FarmConfig config)
    : config_(config),
      registry_(std::make_unique<core::ClassRegistry>()) {
  // Virtual time runs in 1 ms steps; the stock SessionConfig assumes
  // wall-clock pacing, so unless the caller tuned it, shrink the
  // timeouts to the same ms scale the PR4 soak uses.
  const SessionConfig stock;
  if (config_.session.heartbeat_interval_ns == stock.heartbeat_interval_ns) {
    config_.session.heartbeat_interval_ns = 2'000'000;   // 2 ms
    config_.session.liveness_timeout_ns = 10'000'000;    // 10 ms
    config_.session.request_timeout_ns = 12'000'000;     // 12 ms
    config_.session.backoff_initial_ns = 1'000'000;      // 1 ms
    config_.session.backoff_max_ns = 20'000'000;         // 20 ms
  }
  const FaultProfile no_faults;
  if (config_.fault.drop_prob == no_faults.drop_prob &&
      config_.fault.delay_prob == no_faults.delay_prob &&
      config_.fault.duplicate_prob == no_faults.duplicate_prob &&
      config_.fault.truncate_prob == no_faults.truncate_prob &&
      config_.fault.disconnect_prob == no_faults.disconnect_prob) {
    config_.fault.drop_prob = 0.03;
    config_.fault.delay_prob = 0.08;
    config_.fault.duplicate_prob = 0.03;
    config_.fault.truncate_prob = 0.02;
    config_.fault.disconnect_prob = 0.005;
  }

  slots_.reserve(config_.agents);
  for (std::size_t i = 0; i < config_.agents; ++i) {
    auto s = std::make_unique<Slot>();
    s->index = i;
    s->name = "agent" + std::to_string(i);
    s->chaos = config_.chaos;
    s->enclave = std::make_unique<core::Enclave>(s->name, *registry_);
    attach_agent(*s);

    Slot* sp = s.get();
    auto connector = [this, sp]() -> std::unique_ptr<Transport> {
      if (sp->killed) return nullptr;
      auto [near, far] = make_pipe(sp->pump, 32);
      sp->agent->attach(std::move(far));
      if (!sp->chaos) return std::move(near);
      FaultProfile profile = config_.fault;
      // Fresh rolls per slot and per dial, all derived from the farm
      // seed so a run replays exactly.
      profile.seed =
          config_.seed * 1'000'003 + sp->index * 1'009 + ++sp->dials;
      return std::make_unique<FaultyTransport>(std::move(near), sp->pump,
                                               profile);
    };
    SessionConfig session_config = config_.session;
    session_config.seed = config_.seed * 7919 + i;
    s->session = std::make_unique<EnclaveSession>(
        s->name, std::move(connector), [sp]() { return sp->now_ns; },
        session_config);
    slots_.push_back(std::move(s));
  }
}

AgentFarm::~AgentFarm() = default;

AgentFarm::Slot& AgentFarm::slot(std::size_t i) { return *slots_.at(i); }
const AgentFarm::Slot& AgentFarm::slot(std::size_t i) const {
  return *slots_.at(i);
}

void AgentFarm::attach_agent(Slot& s) {
  s.agent = std::make_unique<EnclaveAgent>(*s.enclave);
  s.agent->set_host_series([sp = &s]() {
    return std::vector<std::pair<std::string, double>>(
        sp->host_series.begin(), sp->host_series.end());
  });
}

void AgentFarm::install_program() {
  // One shared compile; every session journals its own install so a
  // restarted slot rebuilds the program from its journal.
  core::Controller controller{*registry_};
  const lang::CompiledProgram program =
      controller.compile("mark_fn", "fun(p, m, g) -> p.path <- 7", {});
  for (auto& s : slots_) {
    s->session->install_action("mark", program, {});
    s->session->create_table("t");
    s->session->add_rule("t", "*", "mark");
  }
}

void AgentFarm::step(std::size_t i) {
  Slot& s = slot(i);
  s.now_ns += config_.step_ns;
  s.session->tick();
  s.pump.run();
}

void AgentFarm::step_all() {
  for (std::size_t i = 0; i < slots_.size(); ++i) step(i);
}

bool AgentFarm::converge(std::size_t max_rounds) {
  // Per-slot sticky convergence: once a slot has drained — ready, no
  // inflight requests, empty pump — its journaled state has landed,
  // and a later chaos-induced disconnect does not un-land it. Without
  // stickiness a thousand faulty sessions would almost never all be
  // quiet in the same round.
  std::vector<bool> done(slots_.size(), false);
  for (std::size_t round = 0; round < max_rounds; ++round) {
    step_all();
    bool all = true;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (done[i]) continue;
      const Slot& s = *slots_[i];
      if (s.killed ||
          (s.session->ready() && s.session->inflight() == 0 &&
           s.pump.pending() == 0 && !s.enclave->txn_open())) {
        done[i] = true;
      } else {
        all = false;
      }
    }
    if (all) return true;
  }
  return false;
}

void AgentFarm::drive(std::size_t i, std::size_t packets) {
  Slot& s = slot(i);
  for (std::size_t k = 0; k < packets; ++k) {
    netsim::Packet packet;
    packet.size_bytes = 100;
    s.enclave->process(packet);
  }
  s.driven += packets;
}

std::uint64_t AgentFarm::driven(std::size_t i) const {
  return slot(i).driven;
}

std::uint64_t AgentFarm::driven_total() const {
  std::uint64_t total = 0;
  for (const auto& s : slots_) total += s->driven;
  return total;
}

void AgentFarm::set_chaos(std::size_t i, bool chaos) {
  slot(i).chaos = chaos;
}

void AgentFarm::kill(std::size_t i) {
  Slot& s = slot(i);
  s.killed = true;
  s.agent->detach();
  telemetry::FlightRecorder::instance().record(
      telemetry::FlightEventType::agent_kill, s.name,
      static_cast<std::int64_t>(i));
}

void AgentFarm::revive(std::size_t i) {
  slot(i).killed = false;
  telemetry::FlightRecorder::instance().record(
      telemetry::FlightEventType::agent_revive, slot(i).name,
      static_cast<std::int64_t>(i));
}

bool AgentFarm::killed(std::size_t i) const { return slot(i).killed; }

void AgentFarm::restart(std::size_t i) {
  Slot& s = slot(i);
  s.agent->detach();
  attach_agent(s);  // new boot id, new telemetry cursor
  telemetry::FlightRecorder::instance().record(
      telemetry::FlightEventType::agent_restart, s.name,
      static_cast<std::int64_t>(i),
      static_cast<std::int64_t>(s.agent->boot_id()));
}

void AgentFarm::set_host_series_value(std::size_t i, const std::string& name,
                                      double value) {
  slot(i).host_series[name] = value;
}

std::vector<telemetry::CollectorSource> AgentFarm::sources() {
  std::vector<telemetry::CollectorSource> out;
  out.reserve(slots_.size());
  for (auto& owned : slots_) {
    Slot* sp = owned.get();
    telemetry::CollectorSource src;
    src.name = sp->name;
    src.fetch_delta = [sp](std::uint64_t epoch, std::uint64_t seq) {
      return sp->session->fetch_telemetry_delta_json(sp->pump, epoch, seq);
    };
    src.session = [sp]() { return sp->session->telemetry(); };
    out.push_back(std::move(src));
  }
  return out;
}

core::Enclave& AgentFarm::enclave(std::size_t i) { return *slot(i).enclave; }

EnclaveSession& AgentFarm::session(std::size_t i) {
  return *slot(i).session;
}

}  // namespace eden::controlplane
