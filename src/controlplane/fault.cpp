#include "controlplane/fault.h"

#include "controlplane/trace_context.h"
#include "telemetry/span.h"

namespace eden::controlplane {

namespace {
// The injector sits below the frame codec and sees only bytes; the
// session publishes the active trace thread-locally around each send,
// so fault decisions can be pinned to the command they mangled. One
// load when untraced.
void record_fault(telemetry::Hop hop, std::int64_t aux = 0) {
  const TraceContext& ctx = current_wire_trace();
  if (ctx.trace_id == 0) return;
  auto& spans = telemetry::SpanCollector::instance();
  spans.record_linked(ctx.trace_id, hop, ctx.parent_span, spans.now_ns(), 0,
                      aux);
}
}  // namespace

FaultyTransport::FaultyTransport(std::unique_ptr<Transport> inner,
                                 PipePump& pump, FaultProfile profile)
    : inner_(std::move(inner)),
      pump_(pump),
      profile_(profile),
      rng_(profile.seed),
      fifo_(std::make_shared<Fifo>()) {
  fifo_->inner = inner_.get();
  // Inbound traffic passes through untouched; faulting both directions
  // is done by decorating both endpoints with their own seeds.
  inner_->set_on_bytes([this](std::span<const std::uint8_t> data) {
    if (on_bytes_ != nullptr) on_bytes_(data);
  });
  inner_->set_on_disconnect([this]() {
    if (on_disconnect_ != nullptr) on_disconnect_();
  });
}

FaultyTransport::~FaultyTransport() { fifo_->inner = nullptr; }

void FaultyTransport::enqueue(std::vector<std::uint8_t> bytes,
                              std::uint32_t delay_steps) {
  fifo_->queue.push_back(std::move(bytes));
  pump_.post_after(delay_steps, [fifo = fifo_]() {
    if (fifo->queue.empty()) return;
    std::vector<std::uint8_t> head = std::move(fifo->queue.front());
    fifo->queue.pop_front();
    if (fifo->inner != nullptr && fifo->inner->connected()) {
      fifo->inner->send(head);
    }
  });
}

bool FaultyTransport::send(std::span<const std::uint8_t> data) {
  if (!inner_->connected()) return false;
  ++stats_.sends;
  if (profile_.disconnect_prob > 0 && rng_.chance(profile_.disconnect_prob)) {
    ++stats_.forced_disconnects;
    record_fault(telemetry::Hop::cp_fault_disconnect);
    inner_->close();
    return false;
  }
  if (profile_.drop_prob > 0 && rng_.chance(profile_.drop_prob)) {
    ++stats_.dropped;
    record_fault(telemetry::Hop::cp_fault_drop,
                 static_cast<std::int64_t>(data.size()));
    return true;  // silently lost, as a link would
  }
  std::vector<std::uint8_t> bytes(data.begin(), data.end());
  if (bytes.size() > 1 && profile_.truncate_prob > 0 &&
      rng_.chance(profile_.truncate_prob)) {
    bytes.resize(1 + rng_.below(bytes.size() - 1));
    ++stats_.truncated;
    record_fault(telemetry::Hop::cp_fault_truncate,
                 static_cast<std::int64_t>(bytes.size()));
  }
  std::uint32_t delay = 0;
  if (profile_.delay_prob > 0 && rng_.chance(profile_.delay_prob)) {
    delay = profile_.delay_steps;
    ++stats_.delayed;
    record_fault(telemetry::Hop::cp_fault_delay,
                 static_cast<std::int64_t>(delay));
  }
  const bool dup =
      profile_.duplicate_prob > 0 && rng_.chance(profile_.duplicate_prob);
  if (dup) {
    ++stats_.duplicated;
    record_fault(telemetry::Hop::cp_fault_dup);
    enqueue(bytes, delay);
  }
  enqueue(std::move(bytes), delay);
  return true;
}

}  // namespace eden::controlplane
