// Thread-local wire trace context.
//
// The session stamps the active trace into the frame it is encoding,
// but the layers *under* the session — today FaultyTransport, tomorrow
// a real socket — see only bytes. This header gives them the same
// piggyback channel the data plane gets from `PacketMeta::trace_id`:
// the session publishes {trace_id, parent_span} here for the duration
// of a `Transport::send`, and any hop the bytes take underneath
// (fault-injector drop/delay/dup/...) records against it. Thread-local
// because a send is synchronous on the calling thread; zeroed context
// means "untraced", keeping the off-path cost at one load per fault
// decision.
#pragma once

#include <cstdint>

namespace eden::controlplane {

struct TraceContext {
  std::int64_t trace_id = 0;
  std::int64_t parent_span = 0;
};

inline TraceContext& current_wire_trace() {
  thread_local TraceContext ctx;
  return ctx;
}

// RAII publish/clear around one send.
class ScopedWireTrace {
 public:
  ScopedWireTrace(std::int64_t trace_id, std::int64_t parent_span) {
    current_wire_trace() = TraceContext{trace_id, parent_span};
  }
  ~ScopedWireTrace() { current_wire_trace() = TraceContext{}; }
  ScopedWireTrace(const ScopedWireTrace&) = delete;
  ScopedWireTrace& operator=(const ScopedWireTrace&) = delete;
};

}  // namespace eden::controlplane
