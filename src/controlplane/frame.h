// Length-prefixed frames for the controller <-> enclave session.
//
// Wire layout (little-endian):
//
//   u32 length   — bytes after this field (header remainder + payload)
//   u32 magic    — "EDSN"
//   u8  version  — kFrameVersion
//   u8  type     — FrameType
//   u64 id       — request correlation / heartbeat nonce
//   i64 trace    — trace id (0 = untraced; v2)
//   i64 parent   — parent span id in that trace (v2)
//   ...payload   — length - 30 bytes
//
// v2 grew the trace context: every frame carries the controller-side
// trace id and the span that caused it, so agent-side work records
// into the same causal tree the session started. Untraced frames
// carry zeros — sixteen constant bytes, no extra branches.
//
// request/response payloads are exactly the command/response frames of
// core/wire.h, so the session layer adds correlation and transport
// framing without re-encoding the enclave API. The decoder is
// incremental (bytes can arrive in arbitrary chunks) and treats any
// malformed header as unrecoverable stream corruption: once framing is
// lost there is no way to find the next boundary, so the session must
// tear the connection down and resync.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace eden::controlplane {

inline constexpr std::uint32_t kFrameMagic = 0x4e534445;  // "EDSN"
inline constexpr std::uint8_t kFrameVersion = 2;
inline constexpr std::size_t kFrameHeaderBytes = 30;  // after the length
inline constexpr std::size_t kMaxFramePayload = 16u << 20;

enum class FrameType : std::uint8_t {
  hello = 1,      // controller -> enclave, opens a session
  hello_ack,      // enclave -> controller, carries AgentGreeting
  heartbeat,      // controller -> enclave, id = nonce
  heartbeat_ack,  // enclave -> controller, echoes id + AgentGreeting
  request,        // controller -> enclave, payload = wire command
  response,       // enclave -> controller, payload = wire response
};

struct Frame {
  FrameType type = FrameType::request;
  std::uint64_t id = 0;
  std::vector<std::uint8_t> payload;
  // Trace context (v2): 0/0 on untraced frames. `parent_span` is the
  // sender-side span that emitted this frame (the cp_send span on
  // requests), so receiver-side spans parent directly under it.
  // Declared after `payload` so the ubiquitous {type, id, payload}
  // aggregate init keeps meaning what it says.
  std::int64_t trace_id = 0;
  std::int64_t parent_span = 0;
};

// hello_ack / heartbeat_ack payload: which enclave incarnation is
// answering and what rule-set version it has committed. A boot id the
// controller has not seen before means the enclave lost its state and
// needs a resync.
struct AgentGreeting {
  std::uint64_t boot_id = 0;
  std::uint64_t ruleset_version = 0;
};

std::vector<std::uint8_t> encode_frame(const Frame& frame);
std::vector<std::uint8_t> encode_greeting(const AgentGreeting& greeting);
std::optional<AgentGreeting> decode_greeting(
    std::span<const std::uint8_t> payload);

class FrameDecoder {
 public:
  // Consumes a chunk of stream bytes and appends every completed frame
  // to `out`. Returns false on unrecoverable corruption (bad magic,
  // version, type or an oversized length); the decoder then stays in
  // the corrupt state until reset().
  bool feed(std::span<const std::uint8_t> data, std::vector<Frame>& out);

  bool corrupt() const { return corrupt_; }
  const std::string& error() const { return error_; }
  void reset();

 private:
  std::vector<std::uint8_t> buf_;
  std::string error_;
  bool corrupt_ = false;
};

}  // namespace eden::controlplane
