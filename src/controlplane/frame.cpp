#include "controlplane/frame.h"

#include "util/bytes.h"

namespace eden::controlplane {

std::vector<std::uint8_t> encode_frame(const Frame& frame) {
  util::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(kFrameHeaderBytes +
                                   frame.payload.size()));
  w.u32(kFrameMagic);
  w.u8(kFrameVersion);
  w.u8(static_cast<std::uint8_t>(frame.type));
  w.u64(frame.id);
  w.u64(static_cast<std::uint64_t>(frame.trace_id));
  w.u64(static_cast<std::uint64_t>(frame.parent_span));
  std::vector<std::uint8_t> out = w.take();
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  return out;
}

std::vector<std::uint8_t> encode_greeting(const AgentGreeting& greeting) {
  util::ByteWriter w;
  w.u64(greeting.boot_id);
  w.u64(greeting.ruleset_version);
  return w.take();
}

std::optional<AgentGreeting> decode_greeting(
    std::span<const std::uint8_t> payload) {
  try {
    util::ByteReader r(payload);
    AgentGreeting g;
    g.boot_id = r.u64();
    g.ruleset_version = r.u64();
    return g;
  } catch (const util::ByteStreamError&) {
    return std::nullopt;
  }
}

bool FrameDecoder::feed(std::span<const std::uint8_t> data,
                        std::vector<Frame>& out) {
  if (corrupt_) return false;
  buf_.insert(buf_.end(), data.begin(), data.end());

  std::size_t off = 0;
  while (buf_.size() - off >= 4) {
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(buf_[off + static_cast<std::size_t>(i)])
             << (8 * i);
    }
    if (len < kFrameHeaderBytes ||
        len - kFrameHeaderBytes > kMaxFramePayload) {
      corrupt_ = true;
      error_ = "frame length out of range";
      buf_.clear();
      return false;
    }
    if (buf_.size() - off < 4 + static_cast<std::size_t>(len)) break;

    util::ByteReader r(std::span<const std::uint8_t>(buf_.data() + off + 4,
                                                     len));
    Frame frame;
    try {
      if (r.u32() != kFrameMagic) {
        corrupt_ = true;
        error_ = "bad frame magic";
      } else if (r.u8() != kFrameVersion) {
        corrupt_ = true;
        error_ = "unsupported frame version";
      } else {
        const std::uint8_t type = r.u8();
        if (type < static_cast<std::uint8_t>(FrameType::hello) ||
            type > static_cast<std::uint8_t>(FrameType::response)) {
          corrupt_ = true;
          error_ = "unknown frame type";
        } else {
          frame.type = static_cast<FrameType>(type);
          frame.id = r.u64();
          frame.trace_id = static_cast<std::int64_t>(r.u64());
          frame.parent_span = static_cast<std::int64_t>(r.u64());
          frame.payload.assign(buf_.begin() + static_cast<long>(off + 4 +
                                                                kFrameHeaderBytes),
                               buf_.begin() + static_cast<long>(off + 4 + len));
        }
      }
    } catch (const util::ByteStreamError&) {
      corrupt_ = true;
      error_ = "short frame header";
    }
    if (corrupt_) {
      buf_.clear();
      return false;
    }
    out.push_back(std::move(frame));
    off += 4 + static_cast<std::size_t>(len);
  }
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<long>(off));
  return true;
}

void FrameDecoder::reset() {
  buf_.clear();
  error_.clear();
  corrupt_ = false;
}

}  // namespace eden::controlplane
