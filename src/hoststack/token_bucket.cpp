#include "hoststack/token_bucket.h"

#include <algorithm>

#include "telemetry/span.h"

namespace eden::hoststack {

TokenBucket::TokenBucket(netsim::Scheduler& scheduler, std::uint64_t rate_bps,
                         std::uint64_t burst_bytes, ReleaseFn release)
    : scheduler_(scheduler),
      rate_bps_(rate_bps),
      burst_bytes_(burst_bytes),
      release_(std::move(release)),
      tokens_(static_cast<double>(burst_bytes)),
      last_refill_(scheduler.now()) {}

void TokenBucket::set_rate(std::uint64_t rate_bps) {
  refill();
  rate_bps_ = rate_bps;
  // Any pending wake-up was computed at the old rate; reschedule.
  scheduler_.cancel(pending_drain_);
  pending_drain_ = netsim::kInvalidEvent;
  drain();
}

void TokenBucket::refill() {
  const netsim::SimTime now = scheduler_.now();
  if (now > last_refill_) {
    tokens_ += static_cast<double>(rate_bps_) / 8.0 *
               netsim::to_seconds(now - last_refill_);
    tokens_ = std::min(tokens_, static_cast<double>(burst_bytes_));
    last_refill_ = now;
  }
}

void TokenBucket::submit(netsim::PacketPtr packet) {
  submit_deferred(std::move(packet));
  drain();
}

void TokenBucket::submit_deferred(netsim::PacketPtr packet) {
  std::int64_t enq_ns = 0;
  if (packet->meta.trace_id != 0) {
    enq_ns = telemetry::SpanCollector::instance().now_ns();
  }
  backlog_.push_back(Queued{std::move(packet), enq_ns});
}

void TokenBucket::drain() {
  refill();
  while (!backlog_.empty()) {
    const std::uint64_t cost = charge_of(*backlog_.front().packet);
    // A charge larger than the bucket depth could never conform (refill
    // caps at burst_bytes), so conformance requires min(cost, burst)
    // while the full cost is deducted — the bucket goes into deficit and
    // recovers at the fill rate, preserving the long-term rate even for
    // oversized charges (e.g. Pulsar charging a 64KB operation to a
    // small bucket).
    const double required = static_cast<double>(
        cost < burst_bytes_ ? cost : burst_bytes_);
    if (tokens_ < required) break;
    tokens_ -= static_cast<double>(cost);
    Queued q = std::move(backlog_.front());
    backlog_.pop_front();
    ++released_packets_;
    released_bytes_ += q.packet->size_bytes;
    if (q.packet->meta.trace_id != 0) {
      auto& spans = telemetry::SpanCollector::instance();
      const std::int64_t now = spans.now_ns();
      spans.record(q.packet->meta.trace_id, telemetry::Hop::tb_wait, now,
                   now - q.enq_ns, static_cast<std::int64_t>(cost));
    }
    release_(std::move(q.packet));
  }
  if (backlog_.empty() || rate_bps_ == 0) return;

  // Schedule a wake-up for when enough tokens accumulate for the head
  // packet. (A rate of zero stalls the queue until set_rate.)
  if (pending_drain_ != netsim::kInvalidEvent) return;
  const std::uint64_t head_cost = charge_of(*backlog_.front().packet);
  const double required = static_cast<double>(
      head_cost < burst_bytes_ ? head_cost : burst_bytes_);
  const double deficit = required - tokens_;
  const auto wait = static_cast<netsim::SimTime>(
      deficit * 8.0 / static_cast<double>(rate_bps_) * 1e9) + 1;
  pending_drain_ = scheduler_.after(wait, [this] {
    pending_drain_ = netsim::kInvalidEvent;
    drain();
  });
}

}  // namespace eden::hoststack
