// Single-producer / single-consumer bounded ring: the per-worker packet
// queue of the sharded data plane (dataplane.h). One cache line per
// cursor, acquire/release hand-off only — no locks, no CAS — so an
// enqueue costs one load + one store on the steady path.
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <utility>
#include <vector>

namespace eden::hoststack {

// Wait-free bounded FIFO for exactly one producer thread and one
// consumer thread. Capacity is rounded up to a power of two. size() and
// empty() are approximate under concurrency (exact once one side is
// quiescent).
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t min_capacity)
      : slots_(std::bit_ceil(min_capacity < 2 ? std::size_t{2}
                                              : min_capacity)),
        mask_(slots_.size() - 1) {}

  std::size_t capacity() const { return slots_.size(); }

  // Producer side. On failure (ring full) `item` is left untouched so
  // the caller can retry or reroute it.
  bool push(T&& item) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_.load(std::memory_order_acquire) == slots_.size()) {
      return false;
    }
    slots_[tail & mask_] = std::move(item);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Producer side, burst variant: moves up to `count` items from
  // `items` into the ring under ONE release store, returning how many
  // fit. Consumed sources are reset to T{} so the caller's buffer holds
  // no stale owners; items beyond the returned count are untouched.
  std::size_t push_bulk(T* items, std::size_t count) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t free_slots =
        slots_.size() - (tail - head_.load(std::memory_order_acquire));
    const std::size_t n = free_slots < count ? free_slots : count;
    for (std::size_t i = 0; i < n; ++i) {
      slots_[(tail + i) & mask_] = std::move(items[i]);
      items[i] = T{};
    }
    if (n != 0) tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  // Consumer side: moves up to `max` items into `out`; returns how
  // many. Drained slots are reset to T{} — a moved-from shared_ptr is
  // not guaranteed empty, and a stale owner parked in the ring would
  // pin a pooled buffer until the slot happens to be overwritten.
  std::size_t pop_bulk(T* out, std::size_t max) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t avail =
        tail_.load(std::memory_order_acquire) - head;
    const std::size_t n = avail < max ? avail : max;
    for (std::size_t i = 0; i < n; ++i) {
      T& slot = slots_[(head + i) & mask_];
      out[i] = std::move(slot);
      slot = T{};
    }
    if (n != 0) head_.store(head + n, std::memory_order_release);
    return n;
  }

  bool empty() const { return size() == 0; }
  std::size_t size() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer cursor
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer cursor
};

}  // namespace eden::hoststack
