// The Eden host stack: the glue between applications (stages), the
// transport, the enclave and the NIC (Figure 5 of the paper).
//
// Egress path:  app/transport -> [stage classification already stamped]
//               -> enclave match-action -> NIC rate-limited queues -> wire.
// Ingress path: wire -> flow demux -> TCP endpoints / raw handlers.
//
// The message-oriented send API (Section 4.2's extended socket) is
// send_message(): the application passes a stage, the message attributes
// and the payload size; the stack classifies the message once and stamps
// the resulting classes and metadata on every packet of the message's
// flow.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/enclave.h"
#include "core/stage.h"
#include "hoststack/dataplane.h"
#include "hoststack/nic.h"
#include "netsim/network.h"
#include "transport/tcp.h"

namespace eden::hoststack {

struct HostStackConfig {
  transport::TcpConfig tcp;
  // Models the enclave's per-packet processing latency (e.g. a slower
  // NIC-resident interpreter). 0 = instantaneous, the default.
  // Ignored when the sharded data plane is on (queueing delay is then
  // real, not modelled).
  netsim::SimTime enclave_delay = 0;
  // Run the enclave on received packets too (off by default; the paper's
  // case studies act on egress).
  bool process_ingress = false;
  // Applied after the enclave, before the NIC. The paper's "Baseline
  // (Eden)" runs classification and the action function but ignores the
  // interpreter output before transmission (Section 5.1) — the harness
  // models that by squashing the fields the enclave wrote.
  std::function<void(netsim::Packet&)> post_enclave;
  // Sharded egress data plane (dataplane.h). workers == 0 (the default)
  // keeps the deterministic inline path: enclave runs synchronously
  // inside transmit() on the simulator thread, bit-identical to the
  // pre-data-plane stack. workers > 0 steers egress packets to that many
  // enclave worker threads; completions re-enter the simulator via a
  // polling event (below), so packet-to-NIC timing becomes real-time
  // dependent — use for scaling/stress runs, not figure reproduction.
  DataPlaneConfig dataplane;
  // How often (sim time) the stack polls the data plane for completions
  // while packets are in flight.
  netsim::SimTime dataplane_poll_ns = 1000;
};

struct FlowInfo {
  netsim::FlowId flow_id = 0;
  netsim::HostId peer = 0;
  std::uint16_t peer_port = 0;
  std::uint16_t local_port = 0;
  netsim::PacketMeta meta;
};

class HostStack {
 public:
  // Callback when the first data packet of an unknown inbound flow hits
  // a listening port: configure the receiver (expected size, completion
  // hooks) here.
  using AcceptFn = std::function<void(transport::TcpReceiver&, const FlowInfo&)>;
  using RawFn = std::function<void(netsim::PacketPtr)>;

  HostStack(netsim::Network& network, netsim::HostNode& host,
            core::Enclave& enclave, HostStackConfig config = {});
  ~HostStack();

  // --- Egress ------------------------------------------------------------

  // The transmit hook used by transports: runs the enclave and hands the
  // packet to the NIC (or drops it if the enclave says so).
  void transmit(netsim::PacketPtr packet);

  // Opens a sender for one message/flow. Classes and metadata are
  // stamped on all its packets; the sender is owned by the stack.
  transport::TcpSender& open_flow(netsim::HostId dst, std::uint16_t dst_port,
                                  const netsim::PacketMeta& meta = {},
                                  const netsim::ClassList& classes = {});

  // The Eden message API: classify `attrs` through `stage`, open a flow
  // to dst and send `bytes`. The PacketMeta fields not produced by the
  // stage are taken from `base`.
  transport::TcpSender& send_message(core::Stage& stage,
                                     const core::MessageAttrs& attrs,
                                     const netsim::PacketMeta& base,
                                     netsim::HostId dst,
                                     std::uint16_t dst_port,
                                     std::uint64_t bytes);

  // Sends a raw (non-TCP) packet through the enclave/NIC path.
  void send_raw(netsim::PacketPtr packet) { transmit(std::move(packet)); }

  // --- Ingress -------------------------------------------------------------

  void listen(std::uint16_t port, AcceptFn accept);
  void set_raw_handler(RawFn handler) { raw_handler_ = std::move(handler); }

  // --- Flow management -------------------------------------------------------

  // Destroys a finished flow's endpoints (senders are kept until closed
  // so callers can read their stats).
  void close_flow(netsim::FlowId flow_id);
  std::size_t open_flow_count() const {
    return senders_.size() + receivers_.size();
  }

  core::Enclave& enclave() { return enclave_; }
  Nic& nic() { return nic_; }
  netsim::HostNode& host() { return host_; }
  netsim::HostId id() const { return host_.id(); }
  std::uint64_t enclave_drops() const { return enclave_drops_; }

  // The sharded data plane, or nullptr when config.dataplane.workers == 0.
  DataPlane* dataplane() { return dataplane_.get(); }

 private:
  void deliver(netsim::PacketPtr packet);
  void forward_to_nic(netsim::PacketPtr packet);
  // Completion path shared by the inline and data-plane routes: drop
  // accounting, post_enclave, NIC hand-off.
  void complete_egress(netsim::PacketPtr packet);
  // Burst completion path: drains the data plane into a reusable
  // scratch, applies the per-packet completion steps, then hands the
  // survivors to the NIC as one tx burst.
  void pump_dataplane();
  void arm_dataplane_poll();

  netsim::Network& network_;
  netsim::HostNode& host_;
  core::Enclave& enclave_;
  HostStackConfig config_;
  Nic nic_;

  std::unordered_map<netsim::FlowId, std::unique_ptr<transport::TcpSender>>
      senders_;
  std::unordered_map<netsim::FlowId, std::unique_ptr<transport::TcpReceiver>>
      receivers_;
  std::unordered_map<std::uint16_t, AcceptFn> listeners_;
  RawFn raw_handler_;

  std::uint32_t next_flow_seq_ = 1;
  std::uint16_t next_src_port_ = 10000;
  std::uint64_t enclave_drops_ = 0;

  std::unique_ptr<DataPlane> dataplane_;
  bool dataplane_poll_armed_ = false;
  // pump_dataplane burst staging; keeps its capacity across pumps.
  std::vector<netsim::PacketPtr> completions_scratch_;
};

}  // namespace eden::hoststack
