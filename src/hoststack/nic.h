// The host NIC layer: a set of controller-created rate-limited queues in
// front of the wire. The enclave steers packets to a queue by writing
// packet.queue (Pulsar sends each tenant's traffic to that tenant's
// rate-limited queue); packets with queue -1 bypass the limiters.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "hoststack/token_bucket.h"
#include "netsim/host_node.h"
#include "telemetry/metrics.h"

namespace eden::hoststack {

class Nic {
 public:
  Nic(netsim::Scheduler& scheduler, netsim::HostNode& host)
      : scheduler_(scheduler), host_(host) {}

  // Creates a rate-limited queue; returns its id (what action functions
  // write into packet.queue).
  int create_queue(std::uint64_t rate_bps, std::uint64_t burst_bytes);

  void set_queue_rate(int queue, std::uint64_t rate_bps);

  // Sends via the selected queue (packet.queue in [0, queue_count)),
  // straight to the wire for the explicit bypass value -1, or — for any
  // other queue id — drops the packet. An action that steers to a queue
  // the controller never created must not silently skip its rate
  // limiter; the drop is counted in bad_queue_drops() /
  // eden_nic_bad_queue_total and recorded as a nic_drop span hop.
  void send(netsim::PacketPtr packet);

  // Tx burst: routes every packet of `burst` exactly as send() would
  // (null entries skipped), but rate-limited queues are drained once
  // per touched queue instead of once per packet, so a 64-packet burst
  // to one Pulsar queue costs one refill/wake-up computation. Entries
  // are consumed (reset to nullptr).
  void send_burst(std::span<netsim::PacketPtr> burst);

  // Backlog of `queue`, or 0 for ids that name no queue.
  std::size_t queue_backlog(int queue) const {
    const auto idx = static_cast<std::size_t>(queue);
    if (queue < 0 || idx >= queues_.size()) return 0;
    return queues_[idx]->backlog();
  }
  int queue_count() const { return static_cast<int>(queues_.size()); }

  std::uint64_t bad_queue_drops() const { return bad_queue_drops_; }

  // Exposes the bad-queue drop counter as eden_nic_bad_queue_total in
  // `registry` (the HostStack binds the data plane's registry here).
  void bind_metrics(telemetry::MetricsRegistry& registry);

 private:
  netsim::Scheduler& scheduler_;
  netsim::HostNode& host_;
  std::vector<std::unique_ptr<TokenBucket>> queues_;
  std::uint64_t bad_queue_drops_ = 0;
  telemetry::Counter* bad_queue_ctr_ = nullptr;
  // send_burst scratch: per-queue touched flags plus the list of
  // touched ids (kept alongside queues_ by create_queue).
  std::vector<std::uint8_t> queue_touched_;
  std::vector<int> touched_queues_;
};

}  // namespace eden::hoststack
