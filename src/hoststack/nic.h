// The host NIC layer: a set of controller-created rate-limited queues in
// front of the wire. The enclave steers packets to a queue by writing
// packet.queue (Pulsar sends each tenant's traffic to that tenant's
// rate-limited queue); packets with queue -1 bypass the limiters.
#pragma once

#include <memory>
#include <vector>

#include "hoststack/token_bucket.h"
#include "netsim/host_node.h"

namespace eden::hoststack {

class Nic {
 public:
  Nic(netsim::Scheduler& scheduler, netsim::HostNode& host)
      : scheduler_(scheduler), host_(host) {}

  // Creates a rate-limited queue; returns its id (what action functions
  // write into packet.queue).
  int create_queue(std::uint64_t rate_bps, std::uint64_t burst_bytes);

  void set_queue_rate(int queue, std::uint64_t rate_bps);

  // Sends via the selected queue, or straight to the wire.
  void send(netsim::PacketPtr packet);

  std::size_t queue_backlog(int queue) const {
    return queues_[static_cast<std::size_t>(queue)]->backlog();
  }
  int queue_count() const { return static_cast<int>(queues_.size()); }

 private:
  netsim::Scheduler& scheduler_;
  netsim::HostNode& host_;
  std::vector<std::unique_ptr<TokenBucket>> queues_;
};

}  // namespace eden::hoststack
