#include "hoststack/dataplane.h"

#include <string>
#include <thread>

#include "telemetry/flight_recorder.h"
#include "util/hash.h"
#include "util/prefetch.h"

#if defined(__linux__)
#include <ctime>
#endif
#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace eden::hoststack {

namespace {

// CPU time of the calling thread: the denominator of a worker's
// contention-free packet rate. Preemption while another thread holds
// the core does not inflate it, which is what makes the scaling
// benchmark meaningful even on an oversubscribed machine.
std::uint64_t thread_cpu_ns() {
#if defined(__linux__)
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

inline void cpu_pause() {
#if defined(__x86_64__) || defined(_M_X64)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

}  // namespace

struct DataPlane::Worker {
  Worker(const DataPlaneConfig& config)
      : in(config.ring_capacity),
        // Egress holds a full ingress ring plus one in-flight batch, so
        // a worker only stalls on completion push when the producer has
        // stopped draining entirely.
        out(config.ring_capacity + config.max_batch) {}

  SpscRing<netsim::PacketPtr> in;
  SpscRing<netsim::PacketPtr> out;
  std::thread thread;
  std::size_t id = 0;

  std::atomic<std::uint64_t> enqueued{0};  // producer writes
  std::atomic<std::uint64_t> processed{0};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> busy_ns{0};
  std::atomic<std::uint64_t> max_depth{0};

  telemetry::Counter* enqueued_ctr = nullptr;
  telemetry::Counter* processed_ctr = nullptr;
  telemetry::Counter* dropped_ctr = nullptr;
  telemetry::Gauge* depth_gauge = nullptr;
  telemetry::Histogram* batch_hist = nullptr;
};

DataPlane::DataPlane(core::Enclave& enclave, DataPlaneConfig config)
    : enclave_(enclave), config_(config) {
  if (config_.workers == 0) config_.workers = 1;
  if (config_.max_batch == 0) config_.max_batch = 1;
  pool_ = config_.pool != nullptr ? config_.pool
                                  : &netsim::default_packet_pool();
  backpressure_ctr_ =
      &metrics_.counter("eden_dataplane_submit_backpressure_total");
  pool_slots_gauge_ = &metrics_.gauge("eden_pool_slots");
  pool_in_use_gauge_ = &metrics_.gauge("eden_pool_in_use");
  pool_exhausted_ctr_ = &metrics_.counter("eden_pool_exhausted_total");
  pool_heap_fallback_ctr_ =
      &metrics_.counter("eden_pool_heap_fallback_total");
  pool_refills_ctr_ = &metrics_.counter("eden_pool_magazine_refills_total");
  pool_flushes_ctr_ = &metrics_.counter("eden_pool_magazine_flushes_total");
  burst_scratch_.resize(config_.workers);
  burst_index_.resize(config_.workers);
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    auto w = std::make_unique<Worker>(config_);
    w->id = i;
    const telemetry::Labels labels{{"worker", std::to_string(i)}};
    w->enqueued_ctr =
        &metrics_.counter("eden_dataplane_enqueued_total", labels);
    w->processed_ctr =
        &metrics_.counter("eden_dataplane_processed_total", labels);
    w->dropped_ctr =
        &metrics_.counter("eden_dataplane_dropped_total", labels);
    w->depth_gauge = &metrics_.gauge("eden_dataplane_ring_depth", labels);
    w->batch_hist = &metrics_.histogram("eden_dataplane_batch_size", labels);
    workers_.push_back(std::move(w));
  }
  for (auto& w : workers_) {
    w->thread = std::thread([this, worker = w.get()] { worker_main(*worker); });
  }
}

DataPlane::~DataPlane() { stop(nullptr); }

std::size_t DataPlane::shard_of(std::uint64_t key, std::size_t workers) {
  // Message keys are often sequential counters, so the raw key is
  // whitened (util::mix64, the same finalizer the FlowStore shards on)
  // before the reduction or adjacent messages would stripe instead of
  // spread.
  return workers < 2 ? 0
                     : static_cast<std::size_t>(util::mix64(key) % workers);
}

std::size_t DataPlane::shard_for(const netsim::Packet& p) const {
  return shard_of(core::Enclave::steering_key(p), workers_.size());
}

bool DataPlane::submit(netsim::PacketPtr& packet) {
  Worker& w = *workers_[shard_for(*packet)];
  if (!w.in.push(std::move(packet))) {
    ++submit_backpressure_;
    backpressure_ctr_->inc();
    return false;
  }
  ++submitted_;
  w.enqueued.fetch_add(1, std::memory_order_relaxed);
  w.enqueued_ctr->inc();
  return true;
}

std::size_t DataPlane::submit_burst(std::span<netsim::PacketPtr> burst) {
  // Stage per shard in burst order, then one bulk transfer per touched
  // ring. The staging vectors keep their capacity across calls, so the
  // steady state allocates nothing.
  for (std::size_t i = 0; i < burst.size(); ++i) {
    if (!burst[i]) continue;
    const std::size_t shard = shard_for(*burst[i]);
    burst_scratch_[shard].push_back(std::move(burst[i]));
    burst_index_[shard].push_back(i);
  }
  std::size_t consumed = 0;
  for (std::size_t shard = 0; shard < workers_.size(); ++shard) {
    auto& staged = burst_scratch_[shard];
    if (staged.empty()) continue;
    Worker& w = *workers_[shard];
    const std::size_t pushed = w.in.push_bulk(staged.data(), staged.size());
    if (pushed != 0) {
      consumed += pushed;
      submitted_ += pushed;
      w.enqueued.fetch_add(pushed, std::memory_order_relaxed);
      w.enqueued_ctr->inc(pushed);
    }
    const std::size_t rejected = staged.size() - pushed;
    if (rejected != 0) {
      submit_backpressure_ += rejected;
      backpressure_ctr_->inc(rejected);
      // Hand the leftovers back to their original burst slots.
      for (std::size_t j = pushed; j < staged.size(); ++j) {
        burst[burst_index_[shard][j]] = std::move(staged[j]);
      }
    }
    staged.clear();
    burst_index_[shard].clear();
  }
  return consumed;
}

std::size_t DataPlane::drain_completions(const CompletionFn& fn) {
  if (drain_scratch_.size() < config_.max_batch) {
    drain_scratch_.resize(config_.max_batch);
  }
  std::size_t total = 0;
  for (auto& w : workers_) {
    for (;;) {
      const std::size_t n =
          w->out.pop_bulk(drain_scratch_.data(), config_.max_batch);
      if (n == 0) break;
      total += n;
      for (std::size_t i = 0; i < n; ++i) {
        if (fn) fn(std::move(drain_scratch_[i]));
        drain_scratch_[i].reset();
      }
    }
  }
  drained_ += total;
  return total;
}

void DataPlane::flush(const CompletionFn& fn) {
  while (pending() > 0) {
    if (drain_completions(fn) == 0) {
      cpu_pause();
      std::this_thread::yield();
    }
  }
}

void DataPlane::stop(const CompletionFn& fn) {
  if (stopped_) return;
  stop_.store(true, std::memory_order_release);
  for (auto& w : workers_) {
    // A worker blocked pushing a completion needs the egress ring
    // drained to exit; keep pumping until its thread joins.
    while (true) {
      drain_completions(fn);
      if (w->in.empty() && w->out.empty()) break;
      std::this_thread::yield();
    }
    if (w->thread.joinable()) w->thread.join();
    drain_completions(fn);  // anything pushed between the checks
  }
  stopped_ = true;
}

void DataPlane::worker_main(Worker& w) {
  std::vector<netsim::PacketPtr> batch(config_.max_batch);
  std::uint32_t idle = 0;
  std::uint32_t batches_since_expiry = 0;
  // Each worker owns stripe w.id of every message store's timer wheels:
  // the stripe count equals the worker count, so the whole wheel is
  // covered with no two workers contending on a shard.
  const auto advance_expiry = [&] {
    if (config_.expiry_every_batches == 0) return;
    enclave_.advance_message_expiry(w.id, workers_.size());
    batches_since_expiry = 0;
  };
  for (;;) {
    const std::size_t n = w.in.pop_bulk(batch.data(), config_.max_batch);
    if (n == 0) {
      if (stop_.load(std::memory_order_acquire) && w.in.empty()) break;
      if (++idle >= config_.idle_spins) {
        idle = 0;
        advance_expiry();  // quiet shards still age their messages out
        std::this_thread::yield();
      } else {
        cpu_pause();
      }
      continue;
    }
    idle = 0;
    if (++batches_since_expiry >= config_.expiry_every_batches &&
        config_.expiry_every_batches != 0) {
      advance_expiry();
    }

    // Warm the front of the batch before process_batch touches it; the
    // enclave's own loop prefetches the rest ahead of itself.
    const std::size_t warm = n < static_cast<std::size_t>(util::kPrefetchAhead)
                                 ? n
                                 : static_cast<std::size_t>(util::kPrefetchAhead);
    for (std::size_t i = 0; i < warm; ++i) {
      util::prefetch_write(batch[i].get());
    }

    const std::uint64_t depth = w.in.size() + n;  // at the drain point
    if (depth > w.max_depth.load(std::memory_order_relaxed)) {
      w.max_depth.store(depth, std::memory_order_relaxed);
    }
    w.depth_gauge->set(static_cast<std::int64_t>(depth));
    w.batch_hist->record(n);

    const std::uint64_t t0 = thread_cpu_ns();
    const std::size_t kept =
        enclave_.process_batch(std::span(batch.data(), n));
    w.busy_ns.fetch_add(thread_cpu_ns() - t0, std::memory_order_relaxed);

    w.batches.fetch_add(1, std::memory_order_relaxed);
    w.processed.fetch_add(n, std::memory_order_relaxed);
    w.dropped.fetch_add(n - kept, std::memory_order_relaxed);
    w.processed_ctr->inc(n);
    if (n != kept) w.dropped_ctr->inc(n - kept);

    // Dropped packets travel the completion ring too (drop_mark set) so
    // the producer's accounting — and the HostStack's drop counter —
    // never depends on racing a worker counter. One bulk transfer per
    // batch; the egress ring is sized to make a stall here rare.
    std::size_t pushed = 0;
    while (pushed < n) {
      pushed += w.out.push_bulk(batch.data() + pushed, n - pushed);
      if (pushed < n) {
        cpu_pause();
        std::this_thread::yield();
      }
    }
  }
}

DataPlaneStats DataPlane::stats() const {
  DataPlaneStats s;
  s.submitted = submitted_;
  s.drained = drained_;
  s.submit_backpressure = submit_backpressure_;
  std::uint64_t total = 0;
  std::uint64_t max_enq = 0;
  for (const auto& w : workers_) {
    DataPlaneWorkerStats ws;
    ws.enqueued = w->enqueued.load(std::memory_order_relaxed);
    ws.processed = w->processed.load(std::memory_order_relaxed);
    ws.dropped = w->dropped.load(std::memory_order_relaxed);
    ws.batches = w->batches.load(std::memory_order_relaxed);
    ws.busy_ns = w->busy_ns.load(std::memory_order_relaxed);
    ws.max_ring_depth = w->max_depth.load(std::memory_order_relaxed);
    total += ws.enqueued;
    if (ws.enqueued > max_enq) max_enq = ws.enqueued;
    s.workers.push_back(ws);
  }
  if (total > 0 && !workers_.empty()) {
    const double mean =
        static_cast<double>(total) / static_cast<double>(workers_.size());
    s.imbalance = static_cast<double>(max_enq) / mean;
  }
  s.pool = pool_->stats();
  sync_pool_metrics(s.pool);
  return s;
}

void DataPlane::sync_pool_metrics(const netsim::PacketPoolStats& ps) const {
  std::lock_guard<std::mutex> lock(pool_sync_mu_);
  pool_slots_gauge_->set(static_cast<std::int64_t>(ps.slots_materialized));
  pool_in_use_gauge_->set(static_cast<std::int64_t>(ps.in_use));
  const auto bump = [](telemetry::Counter* ctr, std::uint64_t now,
                       std::uint64_t& last) {
    if (now > last) ctr->inc(now - last);
    last = now;
  };
  // Pool exhaustion is rare enough (and serious enough) to journal:
  // the flight recorder gets one event per sync that saw new
  // exhaustions, carrying the delta and the running total.
  if (ps.exhausted_total > pool_synced_.exhausted_total) {
    telemetry::FlightRecorder::instance().record(
        telemetry::FlightEventType::pool_exhausted, "dataplane",
        static_cast<std::int64_t>(ps.exhausted_total -
                                  pool_synced_.exhausted_total),
        static_cast<std::int64_t>(ps.exhausted_total));
  }
  bump(pool_exhausted_ctr_, ps.exhausted_total, pool_synced_.exhausted_total);
  bump(pool_heap_fallback_ctr_, ps.heap_fallback_total,
       pool_synced_.heap_fallback_total);
  bump(pool_refills_ctr_, ps.magazine_refills, pool_synced_.magazine_refills);
  bump(pool_flushes_ctr_, ps.magazine_flushes, pool_synced_.magazine_flushes);
}

}  // namespace eden::hoststack
