// The sharded, batched egress data plane: Eden's enclave sits on every
// packet of every host (Section 3.4, Figure 5), so serving heavy
// traffic means running it on every core, not just making it fast on
// one. The DataPlane owns N worker threads; each worker owns one SPSC
// ingress ring and one SPSC completion ring. Packets are steered to a
// worker by an RSS-style hash of the flow/message key
// (core::Enclave::steering_key), so every packet of one message lands
// on one worker and per-message ordering — required by process()'s
// message-lifetime state contract — is preserved end to end:
//
//   submit() FIFO  ->  worker ring FIFO  ->  process_batch() (order-
//   preserving within a message)  ->  completion ring FIFO.
//
// Workers drain their ring in batches through Enclave::process_batch,
// which acquires the RCU rule-state snapshot once per batch and
// amortizes message locking, state copies and telemetry pacing across
// it. Completions (dropped packets included, with drop_mark set) are
// handed back to the submitting thread via drain_completions(), keeping
// the NIC/scheduler side single-threaded.
//
// Threading contract: submit(), drain_completions(), flush(), pending()
// and stop() must all be called from one thread (the producer); the
// workers are internal. stats() and metrics() may be called from any
// thread (counters are relaxed atomics).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/enclave.h"
#include "hoststack/spsc_ring.h"
#include "netsim/packet.h"
#include "netsim/packet_pool.h"
#include "telemetry/metrics.h"

namespace eden::hoststack {

struct DataPlaneConfig {
  // Worker thread count. 0 means "no data plane" to embedders such as
  // HostStack (which then keeps its deterministic inline path); the
  // DataPlane constructor itself clamps it to at least 1.
  std::size_t workers = 0;
  // Per-worker ingress ring capacity (rounded up to a power of two).
  // submit() reports backpressure when a shard's ring is full.
  std::size_t ring_capacity = 1024;
  // Upper bound on packets per process_batch drain.
  std::size_t max_batch = 64;
  // Empty-ring polls before a worker yields the core (keeps latency low
  // on dedicated cores without starving oversubscribed ones).
  std::uint32_t idle_spins = 256;
  // Packet pool whose eden_pool_* stats this data plane mirrors into
  // its metrics registry (stats() syncs them). nullptr = the process-
  // wide default pool behind make_packet().
  netsim::PacketPool* pool = nullptr;
  // Worker i advances stripe i of every message store's timer wheels
  // (Enclave::advance_message_expiry(i, workers)) once per this many
  // batches, and on every idle yield — so idle-message expiry makes
  // progress even when that worker's shard of the traffic goes quiet.
  // 0 disables the per-worker advance (the enclave's own per-thread
  // packet pacing still runs). Only meaningful when the enclave's
  // message_idle_timeout_ns is set.
  std::uint32_t expiry_every_batches = 64;
};

struct DataPlaneWorkerStats {
  std::uint64_t enqueued = 0;   // packets steered to this worker
  std::uint64_t processed = 0;  // packets through process_batch
  std::uint64_t dropped = 0;    // of those, dropped by an action
  std::uint64_t batches = 0;    // process_batch invocations
  // CPU time (CLOCK_THREAD_CPUTIME_ID) spent inside process_batch.
  // processed / busy_ns is the worker's contention-free packet rate,
  // which is what the scaling benchmark sums across workers.
  std::uint64_t busy_ns = 0;
  std::uint64_t max_ring_depth = 0;
};

struct DataPlaneStats {
  std::vector<DataPlaneWorkerStats> workers;
  std::uint64_t submitted = 0;  // accepted by submit()
  std::uint64_t drained = 0;    // handed back via drain_completions()
  std::uint64_t submit_backpressure = 0;  // submit() full-ring rejections
  // max / mean per-worker enqueued count; 1.0 = perfectly even steering.
  double imbalance = 0.0;
  // Snapshot of the packet pool feeding this data plane.
  netsim::PacketPoolStats pool;
};

class DataPlane {
 public:
  using CompletionFn = std::function<void(netsim::PacketPtr)>;

  DataPlane(core::Enclave& enclave, DataPlaneConfig config);
  ~DataPlane();
  DataPlane(const DataPlane&) = delete;
  DataPlane& operator=(const DataPlane&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  // The steering function, exposed so tests can craft adversarial key
  // distributions: splitmix64 finalizer over the steering key, reduced
  // to a shard.
  static std::size_t shard_of(std::uint64_t key, std::size_t workers);
  std::size_t shard_for(const netsim::Packet& p) const;

  // Steers the packet to its shard's ring. On success the pointer is
  // consumed and true is returned. On backpressure (that shard's ring
  // is full) `packet` is left intact and false is returned — the caller
  // should drain_completions() and retry.
  bool submit(netsim::PacketPtr& packet);

  // Burst submit: steers every packet of `burst` to its shard and
  // enqueues per shard with one bulk ring transfer (one release store
  // per touched ring instead of one per packet). Consumed entries are
  // reset to nullptr; entries whose shard ring was full are left intact
  // in place (counted as backpressure) so the caller can drain
  // completions and resubmit exactly those. Per-shard FIFO order — the
  // ordering contract's currency — is the burst's own order. Returns
  // how many were consumed.
  std::size_t submit_burst(std::span<netsim::PacketPtr> burst);

  // Hands every completed packet (drop_mark set on enclave drops) to
  // `fn`, in per-worker FIFO order. Returns how many were delivered.
  std::size_t drain_completions(const CompletionFn& fn);

  // Packets accepted by submit() and not yet handed back.
  std::uint64_t pending() const { return submitted_ - drained_; }

  // Drains until every submitted packet has been handed back.
  void flush(const CompletionFn& fn);

  // Stops the workers: each finishes whatever is left in its ingress
  // ring first. Residual completions are delivered to `fn` (or
  // discarded when null). Idempotent; the destructor calls stop({}).
  void stop(const CompletionFn& fn = nullptr);

  DataPlaneStats stats() const;

  // eden_dataplane_* series (per-worker counters, ring-depth gauges,
  // batch-size histograms) plus anything embedders bind into the same
  // registry (e.g. the NIC's eden_nic_bad_queue_total).
  telemetry::MetricsRegistry& metrics() { return metrics_; }

 private:
  struct Worker;

  void worker_main(Worker& w);

  void sync_pool_metrics(const netsim::PacketPoolStats& ps) const;

  core::Enclave& enclave_;
  DataPlaneConfig config_;
  netsim::PacketPool* pool_ = nullptr;
  telemetry::MetricsRegistry metrics_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_{false};
  bool stopped_ = false;
  // Producer-side accounting (single-threaded by contract).
  std::uint64_t submitted_ = 0;
  std::uint64_t drained_ = 0;
  std::uint64_t submit_backpressure_ = 0;
  telemetry::Counter* backpressure_ctr_ = nullptr;
  std::vector<netsim::PacketPtr> drain_scratch_;
  // submit_burst per-shard staging (packet + original burst index).
  std::vector<std::vector<netsim::PacketPtr>> burst_scratch_;
  std::vector<std::vector<std::size_t>> burst_index_;
  // eden_pool_* mirroring: counters are monotonic, so stats() bumps
  // them by the delta since the last sync. Mutex because stats() is
  // any-thread by contract.
  mutable std::mutex pool_sync_mu_;
  mutable netsim::PacketPoolStats pool_synced_;
  telemetry::Gauge* pool_slots_gauge_ = nullptr;
  telemetry::Gauge* pool_in_use_gauge_ = nullptr;
  telemetry::Counter* pool_exhausted_ctr_ = nullptr;
  telemetry::Counter* pool_heap_fallback_ctr_ = nullptr;
  telemetry::Counter* pool_refills_ctr_ = nullptr;
  telemetry::Counter* pool_flushes_ctr_ = nullptr;
};

}  // namespace eden::hoststack
