// Token-bucket rate limiter with a FIFO backlog, the building block of
// the NIC's rate-limited queues (Pulsar's enforcement point in case
// study 3). The *charge* of a packet may differ from its wire size —
// that asymmetry is exactly what Pulsar's action function exploits by
// charging READ requests their operation size (Figure 3).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "netsim/event_queue.h"
#include "netsim/packet.h"

namespace eden::hoststack {

class TokenBucket {
 public:
  using ReleaseFn = std::function<void(netsim::PacketPtr)>;

  // rate_bps: token fill rate (bits/s); burst_bytes: bucket depth.
  TokenBucket(netsim::Scheduler& scheduler, std::uint64_t rate_bps,
              std::uint64_t burst_bytes, ReleaseFn release);

  // Submits a packet; released (in order) once tokens cover its charge.
  // charge_bytes of 0 means "charge the wire size".
  void submit(netsim::PacketPtr packet);

  // Burst variant, split in two: submit_deferred() only appends to the
  // backlog; pump() runs one drain (refill arithmetic, releases, wake-up
  // scheduling) for the whole burst. The NIC's tx path queues every
  // packet of a burst bound for this queue, then pumps once.
  void submit_deferred(netsim::PacketPtr packet);
  void pump() { drain(); }

  void set_rate(std::uint64_t rate_bps);
  std::uint64_t rate_bps() const { return rate_bps_; }
  std::size_t backlog() const { return backlog_.size(); }
  std::uint64_t released_packets() const { return released_packets_; }
  std::uint64_t released_bytes() const { return released_bytes_; }

 private:
  void refill();
  void drain();
  static std::uint64_t charge_of(const netsim::Packet& p) {
    return p.charge_bytes > 0 ? p.charge_bytes : p.size_bytes;
  }

  netsim::Scheduler& scheduler_;
  std::uint64_t rate_bps_;
  std::uint64_t burst_bytes_;
  ReleaseFn release_;

  // Backlog entries carry the submit timestamp of span-traced packets
  // (0 otherwise) so the release can emit a tb_wait span with the real
  // queueing duration.
  struct Queued {
    netsim::PacketPtr packet;
    std::int64_t enq_ns = 0;
  };

  double tokens_;  // bytes
  netsim::SimTime last_refill_ = 0;
  std::deque<Queued> backlog_;
  netsim::EventId pending_drain_ = netsim::kInvalidEvent;
  std::uint64_t released_packets_ = 0;
  std::uint64_t released_bytes_ = 0;
};

}  // namespace eden::hoststack
