#include "hoststack/host_stack.h"

#include <span>
#include <thread>

#include "telemetry/span.h"

namespace eden::hoststack {

namespace {

std::int64_t scheduler_clock(void* ctx) {
  return static_cast<netsim::Scheduler*>(ctx)->now();
}

}  // namespace

HostStack::HostStack(netsim::Network& network, netsim::HostNode& host,
                     core::Enclave& enclave, HostStackConfig config)
    : network_(network),
      host_(host),
      enclave_(enclave),
      config_(config),
      nic_(network.scheduler(), host) {
  enclave_.set_clock(&scheduler_clock, &network_.scheduler());
  // Lifecycle spans carry simulator timestamps, same as every other
  // clock consumer in a testbed.
  telemetry::SpanCollector::instance().set_clock(&scheduler_clock,
                                                 &network_.scheduler());
  host_.set_deliver([this](netsim::PacketPtr p) { deliver(std::move(p)); });
  if (config_.dataplane.workers > 0) {
    dataplane_ = std::make_unique<DataPlane>(enclave_, config_.dataplane);
    nic_.bind_metrics(dataplane_->metrics());
  }
}

HostStack::~HostStack() {
  if (dataplane_ != nullptr) {
    // Finish in-flight packets through the normal completion path while
    // every downstream object (NIC, scheduler) is still alive.
    dataplane_->stop(
        [this](netsim::PacketPtr p) { complete_egress(std::move(p)); });
  }
}

void HostStack::transmit(netsim::PacketPtr packet) {
  if (packet->meta.trace_id != 0) {
    telemetry::SpanCollector::instance().record_now(
        packet->meta.trace_id, telemetry::Hop::host_enqueue,
        static_cast<std::int64_t>(packet->size_bytes));
  }
  if (dataplane_ != nullptr) {
    // Sharded path: steer to the shard's ring; on backpressure, drain
    // completions (which frees ring slots as the workers catch up) and
    // retry. Completions come back via the poll event armed below.
    while (!dataplane_->submit(packet)) {
      pump_dataplane();
      std::this_thread::yield();
    }
    arm_dataplane_poll();
    return;
  }
  if (!enclave_.process(*packet)) {
    ++enclave_drops_;
    return;
  }
  if (config_.post_enclave) config_.post_enclave(*packet);
  if (config_.enclave_delay > 0) {
    network_.scheduler().after(
        config_.enclave_delay,
        [this, packet = std::move(packet)]() mutable {
          forward_to_nic(std::move(packet));
        });
    return;
  }
  forward_to_nic(std::move(packet));
}

void HostStack::complete_egress(netsim::PacketPtr packet) {
  if (packet->drop_mark) {
    ++enclave_drops_;
    return;
  }
  if (config_.post_enclave) config_.post_enclave(*packet);
  forward_to_nic(std::move(packet));
}

void HostStack::pump_dataplane() {
  // Collect the whole drain first, then complete it as one burst: the
  // per-packet steps (drop accounting, post_enclave, span hop) run in
  // completion order, and the survivors reach the NIC via send_burst so
  // each rate-limited queue drains once per pump instead of once per
  // packet.
  completions_scratch_.clear();
  dataplane_->drain_completions([this](netsim::PacketPtr p) {
    completions_scratch_.push_back(std::move(p));
  });
  if (completions_scratch_.empty()) return;
  for (netsim::PacketPtr& p : completions_scratch_) {
    if (p->drop_mark) {
      ++enclave_drops_;
      p.reset();
      continue;
    }
    if (config_.post_enclave) config_.post_enclave(*p);
    if (p->meta.trace_id != 0) {
      telemetry::SpanCollector::instance().record_now(
          p->meta.trace_id, telemetry::Hop::host_dequeue,
          static_cast<std::int64_t>(p->rl_queue));
    }
  }
  nic_.send_burst(std::span(completions_scratch_));
  completions_scratch_.clear();
}

// Keeps a zero-weight event circulating while packets are in the data
// plane: each firing drains completions and re-arms itself if work is
// still outstanding, so Scheduler::run() cannot terminate with packets
// stranded in worker rings.
void HostStack::arm_dataplane_poll() {
  if (dataplane_poll_armed_ || dataplane_->pending() == 0) return;
  dataplane_poll_armed_ = true;
  const netsim::SimTime delay =
      config_.dataplane_poll_ns > 0 ? config_.dataplane_poll_ns : 1;
  network_.scheduler().after(delay, [this] {
    dataplane_poll_armed_ = false;
    const std::uint64_t before = dataplane_->pending();
    pump_dataplane();
    // An empty poll means the workers have not had the core yet (the
    // simulator thread outruns them on small machines): give it up
    // rather than burning sim time on empty polls.
    if (dataplane_->pending() == before) std::this_thread::yield();
    arm_dataplane_poll();
  });
}

void HostStack::forward_to_nic(netsim::PacketPtr packet) {
  if (packet->meta.trace_id != 0) {
    telemetry::SpanCollector::instance().record_now(
        packet->meta.trace_id, telemetry::Hop::host_dequeue,
        static_cast<std::int64_t>(packet->rl_queue));
  }
  nic_.send(std::move(packet));
}

transport::TcpSender& HostStack::open_flow(netsim::HostId dst,
                                           std::uint16_t dst_port,
                                           const netsim::PacketMeta& meta,
                                           const netsim::ClassList& classes) {
  const netsim::FlowId flow_id =
      (static_cast<netsim::FlowId>(host_.id()) << 32) | next_flow_seq_++;
  const std::uint16_t src_port = next_src_port_++;
  if (next_src_port_ < 10000) next_src_port_ = 10000;  // wrap into range

  auto sender = std::make_unique<transport::TcpSender>(
      network_.scheduler(), config_.tcp, flow_id, host_.id(), dst, src_port,
      dst_port);
  sender->set_transmit(
      [this](netsim::PacketPtr p) { transmit(std::move(p)); });
  sender->set_meta(meta);
  sender->set_classes(classes);
  transport::TcpSender& ref = *sender;
  senders_.emplace(flow_id, std::move(sender));
  return ref;
}

transport::TcpSender& HostStack::send_message(core::Stage& stage,
                                              const core::MessageAttrs& attrs,
                                              const netsim::PacketMeta& base,
                                              netsim::HostId dst,
                                              std::uint16_t dst_port,
                                              std::uint64_t bytes) {
  netsim::PacketMeta available = base;
  if (available.msg_size == 0) {
    available.msg_size = static_cast<std::int64_t>(bytes);
  }
  const core::Classification cls = stage.classify(attrs, available);
  netsim::PacketMeta meta = cls.meta;
  // The application priority travels even when the rule masks it out —
  // it is transport-level, not stage-level, information.
  meta.app_priority = base.app_priority;
  transport::TcpSender& sender = open_flow(dst, dst_port, meta, cls.classes);
  sender.start(bytes);
  return sender;
}

void HostStack::listen(std::uint16_t port, AcceptFn accept) {
  listeners_[port] = std::move(accept);
}

void HostStack::deliver(netsim::PacketPtr packet) {
  if (config_.process_ingress) {
    if (!enclave_.process(*packet)) {
      ++enclave_drops_;
      return;
    }
  }

  if (packet->protocol == netsim::Protocol::tcp) {
    if (packet->payload_bytes > 0) {
      auto it = receivers_.find(packet->flow_id);
      if (it == receivers_.end()) {
        const auto listener = listeners_.find(packet->dst_port);
        if (listener == listeners_.end()) return;  // no one listening
        auto receiver = std::make_unique<transport::TcpReceiver>(
            packet->flow_id, host_.id(), packet->src, packet->dst_port,
            packet->src_port, config_.tcp.ack_bytes);
        receiver->set_transmit(
            [this](netsim::PacketPtr p) { transmit(std::move(p)); });
        FlowInfo info;
        info.flow_id = packet->flow_id;
        info.peer = packet->src;
        info.peer_port = packet->src_port;
        info.local_port = packet->dst_port;
        info.meta = packet->meta;
        it = receivers_.emplace(packet->flow_id, std::move(receiver)).first;
        listener->second(*it->second, info);
      }
      it->second->on_data(*packet);
      return;
    }
    // Pure ACK.
    const auto sender = senders_.find(packet->flow_id);
    if (sender != senders_.end()) sender->second->on_ack(*packet);
    return;
  }

  if (raw_handler_) raw_handler_(std::move(packet));
}

void HostStack::close_flow(netsim::FlowId flow_id) {
  // close_flow is routinely called from a flow's own completion callback
  // (i.e. from inside a TcpSender/TcpReceiver member function), so the
  // endpoints are torn down in a follow-up zero-delay event after the
  // current call stack unwinds.
  network_.scheduler().after(0, [this, flow_id] {
    senders_.erase(flow_id);
    receivers_.erase(flow_id);
  });
}

}  // namespace eden::hoststack
