#include "hoststack/nic.h"

namespace eden::hoststack {

int Nic::create_queue(std::uint64_t rate_bps, std::uint64_t burst_bytes) {
  queues_.push_back(std::make_unique<TokenBucket>(
      scheduler_, rate_bps, burst_bytes,
      [this](netsim::PacketPtr p) { host_.transmit(std::move(p)); }));
  return static_cast<int>(queues_.size()) - 1;
}

void Nic::set_queue_rate(int queue, std::uint64_t rate_bps) {
  queues_.at(static_cast<std::size_t>(queue))->set_rate(rate_bps);
}

void Nic::send(netsim::PacketPtr packet) {
  const int queue = packet->rl_queue;
  if (queue >= 0 && queue < static_cast<int>(queues_.size())) {
    queues_[static_cast<std::size_t>(queue)]->submit(std::move(packet));
  } else {
    host_.transmit(std::move(packet));
  }
}

}  // namespace eden::hoststack
