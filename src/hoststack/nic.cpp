#include "hoststack/nic.h"

#include "telemetry/span.h"

namespace eden::hoststack {

namespace {

// nic_tx marks the hand-off to the wire — the last hop of a lifecycle
// trace on the sending host.
void record_tx(const netsim::Packet& p) {
  if (p.meta.trace_id != 0) {
    telemetry::SpanCollector::instance().record_now(
        p.meta.trace_id, telemetry::Hop::nic_tx,
        static_cast<std::int64_t>(p.size_bytes));
  }
}

}  // namespace

int Nic::create_queue(std::uint64_t rate_bps, std::uint64_t burst_bytes) {
  queues_.push_back(std::make_unique<TokenBucket>(
      scheduler_, rate_bps, burst_bytes, [this](netsim::PacketPtr p) {
        record_tx(*p);
        host_.transmit(std::move(p));
      }));
  queue_touched_.push_back(0);
  touched_queues_.reserve(queues_.size());
  return static_cast<int>(queues_.size()) - 1;
}

void Nic::set_queue_rate(int queue, std::uint64_t rate_bps) {
  queues_.at(static_cast<std::size_t>(queue))->set_rate(rate_bps);
}

void Nic::send(netsim::PacketPtr packet) {
  const int queue = packet->rl_queue;
  if (queue >= 0 && queue < static_cast<int>(queues_.size())) {
    queues_[static_cast<std::size_t>(queue)]->submit(std::move(packet));
    return;
  }
  if (queue == -1) {
    // The explicit bypass value: straight to the wire.
    record_tx(*packet);
    host_.transmit(std::move(packet));
    return;
  }
  // Any other id names no queue. Forwarding here would skip the rate
  // limiter the action asked for, so the packet is dropped instead.
  ++bad_queue_drops_;
  if (bad_queue_ctr_ != nullptr) bad_queue_ctr_->inc();
  if (packet->meta.trace_id != 0) {
    telemetry::SpanCollector::instance().record_now(
        packet->meta.trace_id, telemetry::Hop::nic_drop, queue);
  }
}

void Nic::send_burst(std::span<netsim::PacketPtr> burst) {
  for (netsim::PacketPtr& packet : burst) {
    if (!packet) continue;
    const int queue = packet->rl_queue;
    if (queue >= 0 && queue < static_cast<int>(queues_.size())) {
      const auto idx = static_cast<std::size_t>(queue);
      queues_[idx]->submit_deferred(std::move(packet));
      if (queue_touched_[idx] == 0) {
        queue_touched_[idx] = 1;
        touched_queues_.push_back(queue);
      }
      continue;
    }
    if (queue == -1) {
      record_tx(*packet);
      host_.transmit(std::move(packet));
      continue;
    }
    ++bad_queue_drops_;
    if (bad_queue_ctr_ != nullptr) bad_queue_ctr_->inc();
    if (packet->meta.trace_id != 0) {
      telemetry::SpanCollector::instance().record_now(
          packet->meta.trace_id, telemetry::Hop::nic_drop, queue);
    }
    packet.reset();
  }
  // One drain per touched queue: the burst's whole backlog sees a
  // single refill and at most one wake-up reschedule.
  for (const int queue : touched_queues_) {
    const auto idx = static_cast<std::size_t>(queue);
    queue_touched_[idx] = 0;
    queues_[idx]->pump();
  }
  touched_queues_.clear();
}

void Nic::bind_metrics(telemetry::MetricsRegistry& registry) {
  bad_queue_ctr_ = &registry.counter("eden_nic_bad_queue_total");
  if (bad_queue_drops_ != 0) bad_queue_ctr_->inc(bad_queue_drops_);
}

}  // namespace eden::hoststack
