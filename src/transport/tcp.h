// A Reno-style TCP over netsim.
//
// Deliberately classic: slow start, AIMD congestion avoidance, duplicate-
// ack fast retransmit and RTO with exponential backoff — and no SACK/DSACK
// reordering tolerance. The WCMP case study (Figure 10) depends on this
// behavior: per-packet load balancing across unequal paths reorders
// segments, dup-acks trigger spurious retransmissions, and throughput
// lands below the topology min-cut exactly as the paper reports.
//
// Senders and receivers are wired to the host stack through a transmit
// callback; the stack demuxes inbound packets back to them by flow id.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "netsim/event_queue.h"
#include "netsim/packet.h"

namespace eden::transport {

using netsim::FlowId;
using netsim::HostId;
using netsim::Packet;
using netsim::PacketMeta;
using netsim::PacketPtr;
using netsim::Scheduler;
using netsim::SimTime;

struct TcpConfig {
  std::uint32_t mss = netsim::kMssBytes;
  std::uint32_t header_bytes = netsim::kHeaderBytes;
  std::uint32_t initial_cwnd_segments = 10;
  std::uint32_t dupack_threshold = 3;
  std::uint64_t max_cwnd_bytes = 5 * 1024 * 1024;
  SimTime min_rto = 2 * netsim::kMillisecond;  // datacenter-tuned floor
  SimTime initial_rto = 10 * netsim::kMillisecond;
  std::uint32_t ack_bytes = 64;  // on-wire size of a pure ACK
};

struct TcpSenderStats {
  std::uint64_t data_packets_sent = 0;
  std::uint64_t bytes_sent = 0;  // payload, including retransmissions
  std::uint64_t fast_retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t dup_acks = 0;
  SimTime first_send_time = -1;
  SimTime completion_time = -1;  // when every byte was cumulatively acked
};

// Sending endpoint of one flow. `start(bytes)` queues application data;
// more data may be queued later (long-running flows call it repeatedly).
class TcpSender {
 public:
  using TransmitFn = std::function<void(PacketPtr)>;

  TcpSender(Scheduler& scheduler, TcpConfig config, FlowId flow_id,
            HostId src, HostId dst, std::uint16_t src_port,
            std::uint16_t dst_port);
  ~TcpSender();
  TcpSender(const TcpSender&) = delete;
  TcpSender& operator=(const TcpSender&) = delete;

  void set_transmit(TransmitFn fn) { transmit_ = std::move(fn); }
  // Metadata template stamped on every outgoing packet (stage-assigned
  // class and message information travels with the flow's packets).
  void set_meta(const PacketMeta& meta) { meta_ = meta; }
  // Stage-assigned classes stamped on every outgoing packet.
  void set_classes(const netsim::ClassList& classes) { classes_ = classes; }
  void set_priority(std::uint8_t priority) { priority_ = priority; }

  // Queues `bytes` of application data for transmission.
  void start(std::uint64_t bytes);
  // Handles an inbound ACK for this flow.
  void on_ack(const Packet& packet);

  bool complete() const {
    return total_bytes_ > 0 && snd_una_ >= total_bytes_;
  }
  const TcpSenderStats& stats() const { return stats_; }
  FlowId flow_id() const { return flow_id_; }
  std::uint64_t total_bytes() const { return total_bytes_; }
  double cwnd_segments() const {
    return static_cast<double>(cwnd_) / config_.mss;
  }

  // Invoked once when the last byte is cumulatively acked.
  std::function<void()> on_complete;

 private:
  void try_send();
  void send_segment(std::uint64_t seq, std::uint32_t len);
  void arm_rto();
  void on_rto();
  void enter_fast_retransmit();

  Scheduler& scheduler_;
  TcpConfig config_;
  FlowId flow_id_;
  HostId src_, dst_;
  std::uint16_t src_port_, dst_port_;
  TransmitFn transmit_;
  PacketMeta meta_;
  netsim::ClassList classes_;
  std::uint8_t priority_ = 0;

  std::uint64_t total_bytes_ = 0;   // application bytes queued
  std::uint64_t snd_una_ = 0;       // lowest unacked byte
  std::uint64_t snd_next_ = 0;      // next byte to transmit
  std::uint64_t highest_sent_ = 0;  // high-water mark of sent data

  std::uint64_t cwnd_ = 0;         // bytes
  std::uint64_t ssthresh_ = 0;     // bytes
  std::uint32_t dupack_count_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recovery_point_ = 0;

  // RTT estimation (Jacobson/Karels).
  bool rtt_seeded_ = false;
  double srtt_ns_ = 0.0;
  double rttvar_ns_ = 0.0;
  SimTime rto_ = 0;
  std::uint32_t backoff_ = 0;
  netsim::EventId rto_timer_ = netsim::kInvalidEvent;
  // Karn's algorithm: time and sequence of one unretransmitted probe.
  std::uint64_t timed_seq_ = 0;
  SimTime timed_sent_at_ = -1;

  TcpSenderStats stats_;
};

// Receiving endpoint: cumulative acks, out-of-order buffering, delivery
// notifications.
class TcpReceiver {
 public:
  using TransmitFn = std::function<void(PacketPtr)>;

  TcpReceiver(FlowId flow_id, HostId self, HostId peer,
              std::uint16_t self_port, std::uint16_t peer_port,
              std::uint32_t ack_bytes = 64);

  void set_transmit(TransmitFn fn) { transmit_ = std::move(fn); }
  // Sets how many bytes this flow is expected to deliver; on_complete
  // fires when the contiguous stream reaches that size.
  void expect(std::uint64_t bytes) { expected_bytes_ = bytes; }

  void on_data(const Packet& packet);

  std::uint64_t delivered_bytes() const { return rcv_next_; }
  std::uint64_t ooo_segments() const { return ooo_total_; }

  std::function<void(std::uint64_t contiguous_bytes)> on_deliver;
  std::function<void()> on_complete;

 private:
  FlowId flow_id_;
  HostId self_, peer_;
  std::uint16_t self_port_, peer_port_;
  std::uint32_t ack_bytes_;
  TransmitFn transmit_;

  std::uint64_t rcv_next_ = 0;
  std::map<std::uint64_t, std::uint64_t> ooo_;  // seq -> end (exclusive)
  std::uint64_t ooo_total_ = 0;
  std::uint64_t expected_bytes_ = 0;
  bool completed_ = false;
};

}  // namespace eden::transport
