#include "transport/tcp.h"

#include <algorithm>

namespace eden::transport {

TcpSender::TcpSender(Scheduler& scheduler, TcpConfig config, FlowId flow_id,
                     HostId src, HostId dst, std::uint16_t src_port,
                     std::uint16_t dst_port)
    : scheduler_(scheduler),
      config_(config),
      flow_id_(flow_id),
      src_(src),
      dst_(dst),
      src_port_(src_port),
      dst_port_(dst_port) {
  cwnd_ = static_cast<std::uint64_t>(config_.initial_cwnd_segments) *
          config_.mss;
  ssthresh_ = config_.max_cwnd_bytes;
  rto_ = config_.initial_rto;
}

TcpSender::~TcpSender() { scheduler_.cancel(rto_timer_); }

void TcpSender::start(std::uint64_t bytes) {
  total_bytes_ += bytes;
  if (stats_.first_send_time < 0) {
    stats_.first_send_time = scheduler_.now();
  }
  try_send();
}

void TcpSender::try_send() {
  while (snd_next_ < total_bytes_) {
    const std::uint64_t in_flight = snd_next_ - snd_una_;
    if (in_flight >= cwnd_) break;
    const auto len = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(config_.mss, total_bytes_ - snd_next_));
    // Avoid runt segments: wait for a full MSS of window unless nothing
    // is in flight (so progress is always possible).
    if (in_flight > 0 && cwnd_ - in_flight < len) break;
    send_segment(snd_next_, len);
    snd_next_ += len;
  }
  if (snd_next_ > snd_una_) arm_rto();
}

void TcpSender::send_segment(std::uint64_t seq, std::uint32_t len) {
  if (!transmit_) return;
  PacketPtr packet = netsim::make_packet();
  packet->src = src_;
  packet->dst = dst_;
  packet->src_port = src_port_;
  packet->dst_port = dst_port_;
  packet->protocol = netsim::Protocol::tcp;
  packet->flow_id = flow_id_;
  packet->seq = seq;
  packet->payload_bytes = len;
  packet->size_bytes = len + config_.header_bytes;
  packet->priority = priority_;
  packet->meta = meta_;
  packet->classes = classes_;
  packet->sent_at = scheduler_.now();

  // RTT sampling per Karn: time one segment at a time and only segments
  // carrying never-before-sent data (an RTO rewinds snd_next_, so compare
  // against the high-water mark rather than snd_next_).
  if (timed_sent_at_ < 0 && seq >= highest_sent_) {
    timed_seq_ = seq + len;
    timed_sent_at_ = scheduler_.now();
  }
  highest_sent_ = std::max(highest_sent_, seq + len);

  ++stats_.data_packets_sent;
  stats_.bytes_sent += len;
  transmit_(std::move(packet));
}

void TcpSender::on_ack(const Packet& packet) {
  const std::uint64_t ack = packet.ack;

  if (ack > snd_una_) {
    // New data acknowledged.
    snd_una_ = ack;
    dupack_count_ = 0;
    backoff_ = 0;

    // RTT sample.
    if (timed_sent_at_ >= 0 && ack >= timed_seq_) {
      const double sample =
          static_cast<double>(scheduler_.now() - timed_sent_at_);
      if (!rtt_seeded_) {
        srtt_ns_ = sample;
        rttvar_ns_ = sample / 2;
        rtt_seeded_ = true;
      } else {
        const double err = sample - srtt_ns_;
        srtt_ns_ += 0.125 * err;
        rttvar_ns_ += 0.25 * (std::abs(err) - rttvar_ns_);
      }
      rto_ = std::max<SimTime>(
          config_.min_rto,
          static_cast<SimTime>(srtt_ns_ + 4.0 * rttvar_ns_));
      timed_sent_at_ = -1;
    }

    if (in_recovery_ && ack >= recovery_point_) {
      in_recovery_ = false;
      cwnd_ = ssthresh_;
    } else if (in_recovery_) {
      // NewReno partial ACK: the ack advanced but not past the recovery
      // point, so another segment from the same window was lost —
      // retransmit the new hole immediately instead of waiting for an
      // RTO.
      const auto len = static_cast<std::uint32_t>(std::min<std::uint64_t>(
          config_.mss, total_bytes_ - snd_una_));
      if (len > 0) send_segment(snd_una_, len);
    } else if (!in_recovery_) {
      if (cwnd_ < ssthresh_) {
        cwnd_ += config_.mss;  // slow start
      } else {
        cwnd_ += static_cast<std::uint64_t>(config_.mss) * config_.mss /
                 std::max<std::uint64_t>(cwnd_, 1);  // congestion avoidance
      }
      cwnd_ = std::min(cwnd_, config_.max_cwnd_bytes);
    }

    if (complete()) {
      scheduler_.cancel(rto_timer_);
      rto_timer_ = netsim::kInvalidEvent;
      if (stats_.completion_time < 0) {
        stats_.completion_time = scheduler_.now();
        if (on_complete) on_complete();
      }
      return;
    }
    arm_rto();
    try_send();
    return;
  }

  // Duplicate ACK.
  if (snd_next_ > snd_una_) {
    ++stats_.dup_acks;
    ++dupack_count_;
    if (!in_recovery_ && dupack_count_ >= config_.dupack_threshold) {
      enter_fast_retransmit();
    }
  }
}

void TcpSender::enter_fast_retransmit() {
  in_recovery_ = true;
  recovery_point_ = snd_next_;
  ssthresh_ = std::max<std::uint64_t>(cwnd_ / 2,
                                      2ULL * config_.mss);
  cwnd_ = ssthresh_;
  ++stats_.fast_retransmits;
  timed_sent_at_ = -1;  // Karn: do not time retransmissions
  const std::uint32_t len = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(config_.mss, total_bytes_ - snd_una_));
  if (len > 0) send_segment(snd_una_, len);
  arm_rto();
}

void TcpSender::arm_rto() {
  scheduler_.cancel(rto_timer_);
  const SimTime timeout = rto_ << std::min(backoff_, 10u);
  rto_timer_ = scheduler_.after(timeout, [this] { on_rto(); });
}

void TcpSender::on_rto() {
  rto_timer_ = netsim::kInvalidEvent;
  if (complete()) return;
  ++stats_.timeouts;
  ++backoff_;
  ssthresh_ = std::max<std::uint64_t>(cwnd_ / 2, 2ULL * config_.mss);
  cwnd_ = config_.mss;  // back to slow start
  in_recovery_ = false;
  dupack_count_ = 0;
  timed_sent_at_ = -1;
  // Go-back-N: retransmit from the first unacked byte.
  snd_next_ = snd_una_;
  try_send();
  arm_rto();
}

// ---------------------------------------------------------------------
// Receiver

TcpReceiver::TcpReceiver(FlowId flow_id, HostId self, HostId peer,
                         std::uint16_t self_port, std::uint16_t peer_port,
                         std::uint32_t ack_bytes)
    : flow_id_(flow_id),
      self_(self),
      peer_(peer),
      self_port_(self_port),
      peer_port_(peer_port),
      ack_bytes_(ack_bytes) {}

void TcpReceiver::on_data(const Packet& packet) {
  const std::uint64_t seg_start = packet.seq;
  const std::uint64_t seg_end = packet.seq + packet.payload_bytes;

  if (seg_end > rcv_next_) {
    if (seg_start <= rcv_next_) {
      rcv_next_ = seg_end;
      // Pull any previously buffered contiguous segments.
      auto it = ooo_.begin();
      while (it != ooo_.end() && it->first <= rcv_next_) {
        rcv_next_ = std::max(rcv_next_, it->second);
        it = ooo_.erase(it);
      }
    } else {
      // Out of order: buffer (coalescing is unnecessary for stats).
      ++ooo_total_;
      auto [it, inserted] = ooo_.emplace(seg_start, seg_end);
      if (!inserted && seg_end > it->second) it->second = seg_end;
    }
  }

  // Cumulative ACK for every data packet (no delayed acks), inheriting
  // the data packet's priority so acks are not starved in prioritized
  // experiments.
  if (transmit_) {
    PacketPtr ackp = netsim::make_packet();
    ackp->src = self_;
    ackp->dst = peer_;
    ackp->src_port = self_port_;
    ackp->dst_port = peer_port_;
    ackp->protocol = netsim::Protocol::tcp;
    ackp->flow_id = flow_id_;
    ackp->tcp_flags = netsim::kTcpAck;
    ackp->ack = rcv_next_;
    ackp->size_bytes = ack_bytes_;
    ackp->priority = packet.priority;
    ackp->meta = packet.meta;
    transmit_(std::move(ackp));
  }

  if (on_deliver) on_deliver(rcv_next_);
  if (!completed_ && expected_bytes_ > 0 && rcv_next_ >= expected_bytes_) {
    completed_ = true;
    if (on_complete) on_complete();
  }
}

}  // namespace eden::transport
