// Storage substrate for the Pulsar case study (Figure 11).
//
// A StorageServer fronts a RAM-disk-like backend behind its host's link:
// a bounded FIFO request queue served at the backend's byte rate. READ
// requests are tiny packets whose responses are bulk TCP flows back to
// the client; WRITE requests are bulk TCP flows whose acks are tiny
// packets — the IO asymmetry the case study turns on. When the request
// queue is full the server rejects, and clients retry: a READ-heavy
// tenant can therefore flood the shared queue with cheap requests and
// starve WRITEs, unless Pulsar's rate control charges READ requests by
// their operation size at the client enclave.
//
// StorageClient runs a closed-loop tenant workload: `window` outstanding
// IOs of one kind, retrying rejected requests.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "hoststack/host_stack.h"

namespace eden::storage {

// PacketMeta.msg_type values (shared with functions::kIoRead/kIoWrite).
inline constexpr std::int64_t kIoRead = 1;
inline constexpr std::int64_t kIoWrite = 2;
inline constexpr std::int64_t kIoReject = 3;
inline constexpr std::int64_t kIoWriteAck = 4;

inline constexpr std::uint16_t kStoragePort = 9000;     // WRITE data flows
inline constexpr std::uint16_t kStorageCtrlPort = 9001; // READ requests/acks
inline constexpr std::uint16_t kClientDataPort = 9100;  // READ responses

struct StorageServerConfig {
  std::uint64_t disk_rate_bps = 1200 * 1000 * 1000ULL;  // ~150 MB/s backend
  std::size_t queue_limit = 64;  // outstanding IOs admitted
  std::uint32_t request_bytes = 200;  // wire size of a READ request / ack
};

class StorageServer {
 public:
  StorageServer(netsim::Network& network, hoststack::HostStack& stack,
                StorageServerConfig config = {});

  std::uint64_t served_reads() const { return served_reads_; }
  std::uint64_t served_writes() const { return served_writes_; }
  std::uint64_t rejected() const { return rejected_; }
  std::size_t queue_depth() const { return queue_.size(); }

 private:
  struct PendingIo {
    std::int64_t tenant;
    std::int64_t io_id;
    std::int64_t kind;
    std::int64_t size;
    netsim::HostId client;
  };

  void on_read_request(const netsim::Packet& request);
  void on_write_complete(const PendingIo& io);
  bool admit(PendingIo io);
  void service_next();
  void send_ctrl(netsim::HostId client, std::int64_t tenant,
                 std::int64_t io_id, std::int64_t type);

  netsim::Network& network_;
  hoststack::HostStack& stack_;
  StorageServerConfig config_;
  std::deque<PendingIo> queue_;
  bool disk_busy_ = false;
  std::uint64_t served_reads_ = 0;
  std::uint64_t served_writes_ = 0;
  std::uint64_t rejected_ = 0;
};

struct StorageClientConfig {
  std::int64_t tenant = 0;
  std::int64_t kind = kIoRead;      // all IOs of this tenant
  std::int64_t io_bytes = 64 * 1024;
  int window = 16;                  // outstanding IOs
  netsim::SimTime retry_delay = 500 * netsim::kMicrosecond;
  netsim::HostId server = 0;
};

class StorageClient {
 public:
  StorageClient(netsim::Network& network, hoststack::HostStack& stack,
                StorageClientConfig config);

  // The client's Eden stage: classifies IO requests on <op> into the
  // classes storage.ops.READ / storage.ops.WRITE, so enclave rules (e.g.
  // Pulsar's) match only IO requests — not, say, the TCP acks of
  // response flows.
  core::Stage& stage() { return stage_; }

  void start();
  void stop() { running_ = false; }

  std::uint64_t completed_ios() const { return completed_; }
  std::uint64_t completed_bytes() const {
    return completed_ * static_cast<std::uint64_t>(config_.io_bytes);
  }
  std::uint64_t rejections_seen() const { return rejections_; }

  // Throughput in MB/s over the window [from, to].
  double throughput_mbps(netsim::SimTime from, netsim::SimTime to) const;

 private:
  void issue_one();
  void on_ctrl(const netsim::Packet& packet);
  void complete_one();

  netsim::Network& network_;
  hoststack::HostStack& stack_;
  StorageClientConfig config_;
  core::Stage stage_;
  netsim::ClassList read_classes_;
  netsim::ClassList write_classes_;
  bool running_ = false;
  int outstanding_ = 0;
  std::int64_t next_io_id_ = 1;
  std::uint64_t completed_ = 0;
  std::uint64_t rejections_ = 0;
  std::vector<netsim::SimTime> completions_;
};

}  // namespace eden::storage
