#include "storage/storage.h"

#include <algorithm>

namespace eden::storage {

using netsim::PacketPtr;

// ---------------------------------------------------------------------
// Server

StorageServer::StorageServer(netsim::Network& network,
                             hoststack::HostStack& stack,
                             StorageServerConfig config)
    : network_(network), stack_(stack), config_(config) {
  // WRITE data arrives as TCP flows on the storage port.
  stack_.listen(kStoragePort, [this](transport::TcpReceiver& receiver,
                                     const hoststack::FlowInfo& info) {
    receiver.expect(static_cast<std::uint64_t>(info.meta.msg_size));
    const PendingIo io{info.meta.tenant, info.meta.msg_id, kIoWrite,
                       info.meta.msg_size, info.peer};
    receiver.on_complete = [this, io] { on_write_complete(io); };
  });
  // READ requests and retries arrive as raw packets on the control port.
  stack_.set_raw_handler([this](PacketPtr packet) {
    if (packet->dst_port == kStorageCtrlPort) on_read_request(*packet);
  });
}

void StorageServer::on_read_request(const netsim::Packet& request) {
  PendingIo io{request.meta.tenant, request.meta.msg_id,
               request.meta.msg_type, request.meta.msg_size, request.src};
  if (io.kind == kIoWrite) {
    // A write-retry: the data is already buffered; only admission is
    // being retried.
  }
  if (!admit(std::move(io))) {
    ++rejected_;
    send_ctrl(request.src, request.meta.tenant, request.meta.msg_id,
              kIoReject);
  }
}

void StorageServer::on_write_complete(const PendingIo& io) {
  if (!admit(io)) {
    ++rejected_;
    send_ctrl(io.client, io.tenant, io.io_id, kIoReject);
  }
}

bool StorageServer::admit(PendingIo io) {
  if (queue_.size() >= config_.queue_limit) return false;
  queue_.push_back(std::move(io));
  service_next();
  return true;
}

void StorageServer::service_next() {
  if (disk_busy_ || queue_.empty()) return;
  const PendingIo io = queue_.front();
  queue_.pop_front();
  disk_busy_ = true;
  const netsim::SimTime service = netsim::transmit_time(
      static_cast<std::uint64_t>(io.size), config_.disk_rate_bps);
  network_.scheduler().after(service, [this, io] {
    disk_busy_ = false;
    if (io.kind == kIoRead) {
      ++served_reads_;
      // Bulk response back to the client as a TCP flow.
      netsim::PacketMeta meta;
      meta.tenant = io.tenant;
      meta.msg_type = kIoRead;
      meta.msg_size = io.size;
      meta.msg_id = io.io_id;
      transport::TcpSender& sender =
          stack_.open_flow(io.client, kClientDataPort, meta);
      sender.start(static_cast<std::uint64_t>(io.size));
      const netsim::FlowId fid = sender.flow_id();
      sender.on_complete = [this, fid] { stack_.close_flow(fid); };
    } else {
      ++served_writes_;
      send_ctrl(io.client, io.tenant, io.io_id, kIoWriteAck);
    }
    service_next();
  });
}

void StorageServer::send_ctrl(netsim::HostId client, std::int64_t tenant,
                              std::int64_t io_id, std::int64_t type) {
  PacketPtr packet = netsim::make_packet();
  packet->src = stack_.id();
  packet->dst = client;
  packet->dst_port = kStorageCtrlPort;
  packet->protocol = netsim::Protocol::storage;
  packet->size_bytes = config_.request_bytes;
  packet->meta.tenant = tenant;
  packet->meta.msg_id = io_id;
  packet->meta.msg_type = type;
  stack_.send_raw(std::move(packet));
}

// ---------------------------------------------------------------------
// Client

StorageClient::StorageClient(netsim::Network& network,
                             hoststack::HostStack& stack,
                             StorageClientConfig config)
    : network_(network),
      stack_(stack),
      config_(config),
      stage_("storage", {"op"}, {"msg_id", "msg_type", "msg_size", "tenant"},
             stack.enclave().registry()) {
  // Default classification rules (the controller may add more).
  stage_.create_rule("ops", {core::FieldPattern::exact("READ")}, "READ",
                     core::kMetaAll);
  stage_.create_rule("ops", {core::FieldPattern::exact("WRITE")}, "WRITE",
                     core::kMetaAll);
  read_classes_ = stage_.classify({"READ"}, {}).classes;
  write_classes_ = stage_.classify({"WRITE"}, {}).classes;
  // READ responses arrive as TCP flows on the client data port.
  stack_.listen(kClientDataPort, [this](transport::TcpReceiver& receiver,
                                        const hoststack::FlowInfo& info) {
    receiver.expect(static_cast<std::uint64_t>(info.meta.msg_size));
    const netsim::FlowId fid = info.flow_id;
    receiver.on_complete = [this, fid] {
      stack_.close_flow(fid);
      complete_one();
    };
  });
  // Control packets: rejections and write acks.
  stack_.set_raw_handler([this](PacketPtr packet) {
    if (packet->dst_port == kStorageCtrlPort) on_ctrl(*packet);
  });
}

void StorageClient::start() {
  running_ = true;
  for (int i = 0; i < config_.window; ++i) issue_one();
}

void StorageClient::issue_one() {
  if (!running_ || outstanding_ >= config_.window) return;
  ++outstanding_;
  const std::int64_t io_id = next_io_id_++;

  if (config_.kind == kIoRead) {
    // Tiny request packet; the response carries the bytes.
    PacketPtr packet = netsim::make_packet();
    packet->src = stack_.id();
    packet->dst = config_.server;
    packet->dst_port = kStorageCtrlPort;
    packet->protocol = netsim::Protocol::storage;
    packet->size_bytes = 200;
    packet->meta.tenant = config_.tenant;
    packet->meta.msg_id = io_id;
    packet->meta.msg_type = kIoRead;
    packet->meta.msg_size = config_.io_bytes;
    packet->classes = read_classes_;
    stack_.send_raw(std::move(packet));
  } else {
    // Bulk write: the data itself is the request.
    netsim::PacketMeta meta;
    meta.tenant = config_.tenant;
    meta.msg_type = kIoWrite;
    meta.msg_size = config_.io_bytes;
    meta.msg_id = io_id;
    transport::TcpSender& sender =
        stack_.open_flow(config_.server, kStoragePort, meta, write_classes_);
    sender.start(static_cast<std::uint64_t>(config_.io_bytes));
    const netsim::FlowId fid = sender.flow_id();
    sender.on_complete = [this, fid] { stack_.close_flow(fid); };
  }
}

void StorageClient::on_ctrl(const netsim::Packet& packet) {
  if (packet.meta.msg_type == kIoWriteAck) {
    complete_one();
    return;
  }
  if (packet.meta.msg_type != kIoReject) return;
  ++rejections_;
  // Retry admission after a beat. Reads resend the whole (tiny) request;
  // writes only retry admission — the server already has the data.
  const std::int64_t io_id = packet.meta.msg_id;
  network_.scheduler().after(config_.retry_delay, [this, io_id] {
    if (!running_) return;
    PacketPtr retry = netsim::make_packet();
    retry->src = stack_.id();
    retry->dst = config_.server;
    retry->dst_port = kStorageCtrlPort;
    retry->protocol = netsim::Protocol::storage;
    retry->size_bytes = 200;
    retry->meta.tenant = config_.tenant;
    retry->meta.msg_id = io_id;
    retry->meta.msg_type = config_.kind;
    retry->meta.msg_size = config_.io_bytes;
    retry->classes =
        config_.kind == kIoRead ? read_classes_ : write_classes_;
    stack_.send_raw(std::move(retry));
  });
}

void StorageClient::complete_one() {
  ++completed_;
  completions_.push_back(network_.now());
  --outstanding_;
  issue_one();
}

double StorageClient::throughput_mbps(netsim::SimTime from,
                                      netsim::SimTime to) const {
  if (to <= from) return 0.0;
  const auto in_window = static_cast<double>(std::count_if(
      completions_.begin(), completions_.end(),
      [from, to](netsim::SimTime t) { return t >= from && t <= to; }));
  const double bytes = in_window * static_cast<double>(config_.io_bytes);
  return bytes / 1e6 / netsim::to_seconds(to - from);
}

}  // namespace eden::storage
