// Bytecode hot-spot profile: per-pc execution counts and sampled cycle
// attribution for one compiled action function.
//
// The interpreter's profiled dispatch mode (an explicit template
// instantiation, so the normal mode pays nothing) bumps `counts[pc]` on
// every fetch and, every `cycle_sample_every` fetches, attributes the
// ticks elapsed since the previous sample to the pc observed now —
// classic statistical profiling, so `ticks` is an estimate whose
// resolution improves with run count while the common-case profiling
// cost stays one decrement + one add per instruction.
//
// Everything the interpreter touches is inline in this header and free
// of lang/ includes: eden_telemetry links eden_lang (for snapshot
// structs), so the dependency must not point back. Ticks stay raw here;
// conversion to nanoseconds happens at render time (profile.cpp, linked
// only by telemetry consumers).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace eden::telemetry {

struct ProgramProfile {
  std::vector<std::uint64_t> counts;  // executions per pc
  std::vector<std::uint64_t> ticks;   // sampled raw ticks per pc
  std::uint64_t runs = 0;             // completed execute() calls

  void ensure(std::size_t code_size) {
    if (counts.size() < code_size) {
      counts.resize(code_size, 0);
      ticks.resize(code_size, 0);
    }
  }

  void merge(const ProgramProfile& other) {
    ensure(other.counts.size());
    for (std::size_t i = 0; i < other.counts.size(); ++i) {
      counts[i] += other.counts[i];
      ticks[i] += other.ticks[i];
    }
    runs += other.runs;
  }

  std::uint64_t total_count() const {
    std::uint64_t total = 0;
    for (const std::uint64_t c : counts) total += c;
    return total;
  }

  std::uint64_t total_ticks() const {
    std::uint64_t total = 0;
    for (const std::uint64_t t : ticks) total += t;
    return total;
  }

  bool empty() const { return total_count() == 0; }
};

// One row of a rendered hot-spot table: a pc with its share of the
// action's executed instructions and sampled cycles. `text` is the
// disassembled instruction (filled by whoever holds the program).
struct HotSpot {
  std::uint32_t pc = 0;
  std::uint64_t count = 0;
  std::uint64_t ticks = 0;
  double count_pct = 0.0;  // of the profile's total executed instructions
  double ticks_pct = 0.0;  // of the profile's total sampled ticks
  std::string text;
};

// The `max_rows` hottest pcs by execution count (ties broken by pc),
// with percentages filled in; pcs that never executed are skipped.
std::vector<HotSpot> hottest(const ProgramProfile& profile,
                             std::size_t max_rows = 8);

}  // namespace eden::telemetry
