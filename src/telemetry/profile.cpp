#include "telemetry/profile.h"

#include <algorithm>

namespace eden::telemetry {

std::vector<HotSpot> hottest(const ProgramProfile& profile,
                             std::size_t max_rows) {
  const std::uint64_t total_count = profile.total_count();
  const std::uint64_t total_ticks = profile.total_ticks();
  std::vector<HotSpot> rows;
  for (std::size_t pc = 0; pc < profile.counts.size(); ++pc) {
    if (profile.counts[pc] == 0) continue;
    HotSpot h;
    h.pc = static_cast<std::uint32_t>(pc);
    h.count = profile.counts[pc];
    h.ticks = profile.ticks[pc];
    if (total_count > 0) {
      h.count_pct = 100.0 * static_cast<double>(h.count) /
                    static_cast<double>(total_count);
    }
    if (total_ticks > 0) {
      h.ticks_pct = 100.0 * static_cast<double>(h.ticks) /
                    static_cast<double>(total_ticks);
    }
    rows.push_back(h);
  }
  std::sort(rows.begin(), rows.end(), [](const HotSpot& a, const HotSpot& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.pc < b.pc;
  });
  if (rows.size() > max_rows) rows.resize(max_rows);
  return rows;
}

}  // namespace eden::telemetry
