// Low-overhead metrics primitives for the Eden data path.
//
// The enclave hot path (Section 3.4) executes an action in tens of
// nanoseconds at -O1, so anything recorded per packet has to be cheaper
// than the work it measures. Three rules keep it that way:
//  * no locks on increment — counters and histograms are sharded across
//    cache-line-aligned relaxed atomics indexed by a stable per-thread
//    slot, and reads reconcile the shards;
//  * latency is timed with the cheapest monotonic source the platform
//    has (TSC on x86-64, the virtual counter on AArch64), calibrated
//    once per process against the steady clock;
//  * distributions use fixed log2 buckets (64 of them), so recording is
//    one bit_width and two relaxed adds, and p50/p95/p99 come from the
//    bucket counts at snapshot time (util::log2_bucket_quantile).
//
// The registry hands out named, labeled instruments and renders them in
// Prometheus text exposition format. Instruments are stable-addressed:
// once created they are never moved or freed, so the hot path can hold
// raw pointers.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace eden::telemetry {

// --- Tick clock --------------------------------------------------------

// Raw monotonic ticks (TSC-class counter; falls back to the steady
// clock in nanoseconds on other platforms). Inline so a sampled timing
// region pays the counter read, not a function call around it.
inline std::uint64_t now_ticks() {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#elif defined(__aarch64__)
  std::uint64_t v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

// Nanoseconds per tick. Calibrated against std::chrono::steady_clock on
// first use (a ~2 ms busy wait); call warm_clock() at setup time so the
// calibration never lands inside a timed region.
double ns_per_tick();
void warm_clock();

inline std::uint64_t ticks_to_ns(std::uint64_t ticks) {
  return static_cast<std::uint64_t>(static_cast<double>(ticks) *
                                    ns_per_tick());
}

// Per-thread 1-in-n sampling decision: true on every n-th call from
// this thread (never for n = 0). A plain thread_local countdown — no
// atomics and no division — so the not-sampled path costs a decrement
// and a branch.
inline bool sample_1_in(std::uint32_t n) {
  thread_local std::uint32_t countdown = 1;
  if (n == 0) return false;
  if (--countdown != 0) return false;
  countdown = n;
  return true;
}

namespace internal {

// Stable small index for the calling thread, assigned on first use.
inline std::size_t thread_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

inline constexpr std::size_t kCounterShards = 8;  // power of two

struct alignas(64) CounterShard {
  std::atomic<std::uint64_t> value{0};
};

}  // namespace internal

// Monotonic counter. inc() is a single relaxed fetch_add on a shard
// that threads (mostly) do not share; value() sums the shards, so it is
// eventually consistent with concurrent increments.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) {
    shards_[internal::thread_slot() & (internal::kCounterShards - 1)]
        .value.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  std::array<internal::CounterShard, internal::kCounterShards> shards_;
};

// Last-writer-wins gauge (also supports add() for up/down counts).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

inline constexpr std::size_t kHistogramBuckets = 64;

// Upper bound of log2 bucket k: bucket 0 holds only the value 0, bucket
// k >= 1 holds [2^(k-1), 2^k - 1].
inline constexpr std::uint64_t bucket_upper_bound(std::size_t k) {
  return k == 0 ? 0 : (std::uint64_t{1} << k) - 1;
}

// Point-in-time view of a histogram; mergeable across shards, actions
// and enclaves.
struct HistogramSnapshot {
  std::array<std::uint64_t, kHistogramBuckets> counts{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  // Quantile estimate from the bucket counts (linear interpolation
  // inside the winning bucket); exact to within one bucket width.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  void merge(const HistogramSnapshot& other);
};

// Fixed-bucket log2 histogram. record() is bucket_of (a bit_width) plus
// two relaxed adds on a per-thread shard; no allocation, no locks.
class Histogram {
 public:
  static constexpr std::size_t bucket_of(std::uint64_t v) {
    const int w = std::bit_width(v);
    return w < static_cast<int>(kHistogramBuckets)
               ? static_cast<std::size_t>(w)
               : kHistogramBuckets - 1;
  }

  void record(std::uint64_t v) {
    Shard& s = shards_[internal::thread_slot() % kShards];
    s.counts[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const;

 private:
  static constexpr std::size_t kShards = 4;
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> counts{};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<Shard, kShards> shards_;
};

// --- Registry ----------------------------------------------------------

// Label set rendered as {k="v",...}; order is preserved.
using Labels = std::vector<std::pair<std::string, std::string>>;

// Renders labels in exposition form, escaping backslash, quote and
// newline in values. Empty labels render as an empty string.
std::string render_labels(const Labels& labels);

// Named, labeled instruments. Creation takes a mutex (control path);
// returned references stay valid for the registry's lifetime, so data
// paths resolve an instrument once at install time and keep the
// pointer.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, const Labels& labels = {});

  // Prometheus text exposition of every registered instrument.
  std::string text_exposition() const;

 private:
  using Series = std::pair<std::string, std::string>;  // (name, labels)

  mutable std::mutex mutex_;
  std::map<Series, std::unique_ptr<Counter>> counters_;
  std::map<Series, std::unique_ptr<Gauge>> gauges_;
  std::map<Series, std::unique_ptr<Histogram>> histograms_;
};

// Appends one histogram in exposition form (_bucket/_sum/_count series
// with cumulative le= bounds). Shared by MetricsRegistry and the
// enclave snapshot exporter.
void append_histogram_exposition(std::string& out, std::string_view name,
                                 std::string_view labels,
                                 const HistogramSnapshot& h);

}  // namespace eden::telemetry
