#include "telemetry/span.h"

#include <algorithm>
#include <cstdio>

#include "telemetry/metrics.h"

namespace eden::telemetry {

const char* hop_name(Hop hop) {
  switch (hop) {
    case Hop::stage_classify: return "stage_classify";
    case Hop::host_enqueue: return "host_enqueue";
    case Hop::host_dequeue: return "host_dequeue";
    case Hop::tb_wait: return "tb_wait";
    case Hop::enclave_match: return "enclave_match";
    case Hop::action_exec: return "action_exec";
    case Hop::enclave_drop: return "enclave_drop";
    case Hop::nic_tx: return "nic_tx";
    case Hop::nic_drop: return "nic_drop";
    case Hop::cp_txn_begin: return "cp_txn_begin";
    case Hop::cp_txn_commit: return "cp_txn_commit";
    case Hop::cp_txn_abort: return "cp_txn_abort";
    case Hop::cp_send: return "cp_send";
    case Hop::cp_response: return "cp_response";
    case Hop::cp_timeout: return "cp_timeout";
    case Hop::cp_teardown: return "cp_teardown";
    case Hop::cp_backoff: return "cp_backoff";
    case Hop::cp_resync: return "cp_resync";
    case Hop::cp_poll: return "cp_poll";
    case Hop::cp_agent_apply: return "cp_agent_apply";
    case Hop::cp_agent_publish: return "cp_agent_publish";
    case Hop::cp_fault_drop: return "cp_fault_drop";
    case Hop::cp_fault_delay: return "cp_fault_delay";
    case Hop::cp_fault_dup: return "cp_fault_dup";
    case Hop::cp_fault_truncate: return "cp_fault_truncate";
    case Hop::cp_fault_disconnect: return "cp_fault_disconnect";
  }
  return "unknown";
}

SpanCollector::SpanCollector() = default;

SpanCollector& SpanCollector::instance() {
  static SpanCollector collector;
  return collector;
}

void SpanCollector::enable(std::uint32_t sample_every,
                           std::size_t lane_capacity) {
  {
    std::lock_guard<std::mutex> lock(lanes_mutex_);
    if (lane_capacity != 0 && lane_capacity != lane_capacity_) {
      lane_capacity_ = lane_capacity;
      for (auto& lane : lanes_) {
        lane->ring.assign(lane_capacity_, SpanEvent{});
        lane->count.store(0, std::memory_order_relaxed);
      }
    }
  }
  sample_every_.store(sample_every, std::memory_order_relaxed);
}

void SpanCollector::set_clock(ClockFn fn, void* ctx) {
  clock_ctx_.store(ctx, std::memory_order_relaxed);
  clock_fn_.store(fn, std::memory_order_relaxed);
}

std::int64_t SpanCollector::now_ns() const {
  const ClockFn fn = clock_fn_.load(std::memory_order_relaxed);
  if (fn != nullptr) {
    return fn(clock_ctx_.load(std::memory_order_relaxed));
  }
  return static_cast<std::int64_t>(ticks_to_ns(now_ticks()));
}

SpanCollector::Lane& SpanCollector::lane_for_this_thread() {
  thread_local Lane* lane = nullptr;
  if (lane == nullptr) {
    std::lock_guard<std::mutex> lock(lanes_mutex_);
    lanes_.push_back(std::make_unique<Lane>());
    lanes_.back()->ring.assign(lane_capacity_, SpanEvent{});
    lane = lanes_.back().get();
  }
  return *lane;
}

void SpanCollector::record(std::int64_t trace_id, Hop hop,
                           std::int64_t ts_ns, std::int64_t dur_ns,
                           std::int64_t aux, std::int64_t span_id,
                           std::int64_t parent_id) {
  if (trace_id == 0) return;
  Lane& lane = lane_for_this_thread();
  const std::uint64_t n = lane.count.load(std::memory_order_relaxed);
  SpanEvent& slot = lane.ring[n % lane.ring.size()];
  slot.trace_id = trace_id;
  slot.ts_ns = ts_ns;
  slot.dur_ns = dur_ns;
  slot.aux = aux;
  slot.span_id = span_id;
  slot.parent_id = parent_id;
  slot.hop = hop;
  slot.lane = static_cast<std::uint8_t>(
      std::min<std::size_t>(internal::thread_slot(), 255));
  lane.count.store(n + 1, std::memory_order_release);
}

std::vector<SpanEvent> SpanCollector::snapshot() const {
  std::vector<SpanEvent> out;
  std::lock_guard<std::mutex> lock(lanes_mutex_);
  for (const auto& lane : lanes_) {
    const std::uint64_t n = lane->count.load(std::memory_order_acquire);
    const std::uint64_t cap = lane->ring.size();
    const std::uint64_t keep = std::min(n, cap);
    for (std::uint64_t i = n - keep; i < n; ++i) {
      out.push_back(lane->ring[i % cap]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                     return a.trace_id < b.trace_id;
                   });
  return out;
}

std::uint64_t SpanCollector::total_recorded() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(lanes_mutex_);
  for (const auto& lane : lanes_) {
    total += lane->count.load(std::memory_order_acquire);
  }
  return total;
}

std::uint64_t SpanCollector::overwritten() const {
  std::uint64_t total = 0;
  std::lock_guard<std::mutex> lock(lanes_mutex_);
  for (const auto& lane : lanes_) {
    const std::uint64_t n = lane->count.load(std::memory_order_acquire);
    const std::uint64_t cap = lane->ring.size();
    if (n > cap) total += n - cap;
  }
  return total;
}

void SpanCollector::reset() {
  std::lock_guard<std::mutex> lock(lanes_mutex_);
  for (auto& lane : lanes_) {
    lane->ring.assign(lane_capacity_, SpanEvent{});
    lane->count.store(0, std::memory_order_relaxed);
  }
  next_id_.store(1, std::memory_order_relaxed);
}

std::string to_trace_event_json(const std::vector<SpanEvent>& events) {
  std::string out = "{\"traceEvents\":[\n";
  char buf[384];
  char links[96];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const SpanEvent& e = events[i];
    // Causal links only appear when set, so data-plane dumps look
    // exactly as they did before the control plane learned to trace.
    links[0] = '\0';
    if (e.span_id != 0) {
      std::snprintf(links, sizeof links, ",\"span\":%lld,\"parent\":%lld",
                    static_cast<long long>(e.span_id),
                    static_cast<long long>(e.parent_id));
    }
    // Chrome trace timestamps are microseconds (doubles, so sub-us
    // resolution survives). Duration slices end at ts_ns; rewind.
    const double dur_us = static_cast<double>(e.dur_ns) / 1000.0;
    const double ts_us =
        static_cast<double>(e.ts_ns) / 1000.0 - (e.dur_ns > 0 ? dur_us : 0.0);
    if (e.dur_ns > 0) {
      std::snprintf(buf, sizeof buf,
                    "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
                    "\"dur\":%.3f,\"pid\":1,\"tid\":%lld,"
                    "\"args\":{\"trace_id\":%lld,\"aux\":%lld%s}}",
                    hop_name(e.hop), ts_us, dur_us,
                    static_cast<long long>(e.trace_id),
                    static_cast<long long>(e.trace_id),
                    static_cast<long long>(e.aux), links);
    } else {
      std::snprintf(buf, sizeof buf,
                    "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,"
                    "\"pid\":1,\"tid\":%lld,"
                    "\"args\":{\"trace_id\":%lld,\"aux\":%lld%s}}",
                    hop_name(e.hop), ts_us,
                    static_cast<long long>(e.trace_id),
                    static_cast<long long>(e.trace_id),
                    static_cast<long long>(e.aux), links);
    }
    out += buf;
    out += i + 1 < events.size() ? ",\n" : "\n";
  }
  // schema_version trails the array: Controller::collect_spans_json
  // splices remote dumps by the first '[' / last ']', so new top-level
  // fields must not introduce brackets or precede the array.
  out += "],\"displayTimeUnit\":\"ns\",\"schema_version\":";
  out += std::to_string(kSpanSchemaVersion);
  out += "}\n";
  return out;
}

}  // namespace eden::telemetry
