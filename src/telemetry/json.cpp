#include "telemetry/json.h"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "lang/interpreter.h"

namespace eden::telemetry {

const Json* Json::get(const std::string& key) const {
  for (const auto& [k, v] : fields) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::uint64_t Json::u64(const std::string& key, std::uint64_t dflt) const {
  const Json* v = get(key);
  return v != nullptr && v->kind == Kind::number
             ? std::strtoull(v->text.c_str(), nullptr, 10)
             : dflt;
}

std::int64_t Json::i64(const std::string& key, std::int64_t dflt) const {
  const Json* v = get(key);
  return v != nullptr && v->kind == Kind::number
             ? std::strtoll(v->text.c_str(), nullptr, 10)
             : dflt;
}

double Json::num(const std::string& key, double dflt) const {
  const Json* v = get(key);
  return v != nullptr && v->kind == Kind::number
             ? std::strtod(v->text.c_str(), nullptr)
             : dflt;
}

std::string Json::str(const std::string& key) const {
  const Json* v = get(key);
  return v != nullptr && v->kind == Kind::string ? v->text : std::string();
}

bool Json::flag(const std::string& key) const {
  const Json* v = get(key);
  return v != nullptr && v->kind == Kind::boolean && v->boolean;
}

void JsonParser::fail(const char* what) {
  throw std::runtime_error("JSON parse error at byte " + std::to_string(i_) +
                           ": " + what);
}

void JsonParser::skip_ws() {
  while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' ||
                            s_[i_] == '\n' || s_[i_] == '\r')) {
    ++i_;
  }
}

char JsonParser::peek() {
  skip_ws();
  if (i_ >= s_.size()) fail("unexpected end of input");
  return s_[i_];
}

void JsonParser::expect(char c) {
  if (peek() != c) fail("unexpected character");
  ++i_;
}

std::string JsonParser::string_body() {
  expect('"');
  std::string out;
  while (true) {
    if (i_ >= s_.size()) fail("unterminated string");
    const char c = s_[i_++];
    if (c == '"') return out;
    if (c != '\\') {
      out += c;
      continue;
    }
    if (i_ >= s_.size()) fail("unterminated escape");
    const char e = s_[i_++];
    switch (e) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (i_ + 4 > s_.size()) fail("bad \\u escape");
        const unsigned long cp =
            std::strtoul(s_.substr(i_, 4).c_str(), nullptr, 16);
        i_ += 4;
        // The emitter only escapes control characters, so the code
        // point always fits one byte.
        out += static_cast<char>(cp & 0xff);
        break;
      }
      default: fail("unknown escape");
    }
  }
}

Json JsonParser::parse() {
  Json v = value();
  skip_ws();
  if (i_ != s_.size()) fail("trailing data");
  return v;
}

Json JsonParser::value() {
  const char c = peek();
  Json v;
  if (c == '{') {
    v.kind = Json::Kind::object;
    ++i_;
    if (peek() == '}') {
      ++i_;
      return v;
    }
    while (true) {
      std::string key = string_body();
      expect(':');
      v.fields.emplace_back(std::move(key), value());
      const char n = peek();
      ++i_;
      if (n == '}') return v;
      if (n != ',') fail("expected , or }");
      skip_ws();
    }
  }
  if (c == '[') {
    v.kind = Json::Kind::array;
    ++i_;
    if (peek() == ']') {
      ++i_;
      return v;
    }
    while (true) {
      v.items.push_back(value());
      const char n = peek();
      ++i_;
      if (n == ']') return v;
      if (n != ',') fail("expected , or ]");
    }
  }
  if (c == '"') {
    v.kind = Json::Kind::string;
    v.text = string_body();
    return v;
  }
  if (c == 't' || c == 'f' || c == 'n') {
    const char* word = c == 't' ? "true" : c == 'f' ? "false" : "null";
    const std::size_t len = std::strlen(word);
    if (s_.compare(i_, len, word) != 0) fail("bad literal");
    i_ += len;
    v.kind = c == 'n' ? Json::Kind::null : Json::Kind::boolean;
    v.boolean = c == 't';
    return v;
  }
  // Number: keep the raw text.
  v.kind = Json::Kind::number;
  const std::size_t start = i_;
  while (i_ < s_.size() &&
         (std::isdigit(static_cast<unsigned char>(s_[i_])) != 0 ||
          s_[i_] == '-' || s_[i_] == '+' || s_[i_] == '.' || s_[i_] == 'e' ||
          s_[i_] == 'E')) {
    ++i_;
  }
  if (i_ == start) fail("expected value");
  v.text = s_.substr(start, i_ - start);
  return v;
}

// --- Snapshot loaders --------------------------------------------------

HistogramSnapshot histogram_from_json(const Json& j) {
  HistogramSnapshot h;
  h.count = j.u64("count");
  h.sum = j.u64("sum");
  if (const Json* buckets = j.get("buckets")) {
    for (const Json& pair : buckets->items) {
      if (pair.items.size() != 2) continue;
      const std::uint64_t upper =
          std::strtoull(pair.items[0].text.c_str(), nullptr, 10);
      for (std::size_t k = 0; k < kHistogramBuckets; ++k) {
        if (bucket_upper_bound(k) == upper) {
          h.counts[k] = std::strtoull(pair.items[1].text.c_str(), nullptr, 10);
          break;
        }
      }
    }
  }
  return h;
}

ActionTelemetry action_from_json(const Json& j) {
  ActionTelemetry a;
  a.name = j.str("name");
  a.native = j.flag("native");
  a.executions = j.u64("executions");
  a.errors = j.u64("errors");
  a.steps = j.u64("steps");
  if (const Json* errs = j.get("errors_by_status")) {
    for (const auto& [status, count] : errs->fields) {
      for (std::size_t i = 0; i < lang::kNumExecStatus; ++i) {
        if (status ==
            lang::exec_status_name(static_cast<lang::ExecStatus>(i))) {
          a.errors_by_status[i] = std::strtoull(count.text.c_str(), nullptr, 10);
          break;
        }
      }
    }
  }
  if (const Json* lat = j.get("latency_ns")) {
    a.has_histograms = true;
    a.latency_ns = histogram_from_json(*lat);
    if (const Json* steps = j.get("steps_hist")) {
      a.steps_hist = histogram_from_json(*steps);
    }
  }
  if (const Json* prof = j.get("profile")) {
    a.has_profile = true;
    a.profile_runs = prof->u64("runs");
    a.profile_instructions = prof->u64("instructions");
    if (const Json* hot = prof->get("hotspots")) {
      for (const Json& hj : hot->items) {
        HotSpot h;
        h.pc = static_cast<std::uint32_t>(hj.u64("pc"));
        h.count = hj.u64("count");
        h.ticks = hj.u64("ticks");
        h.count_pct = hj.num("count_pct");
        h.ticks_pct = hj.num("ticks_pct");
        h.text = hj.str("text");
        a.hotspots.push_back(std::move(h));
      }
    }
  }
  return a;
}

TraceEntry trace_entry_from_json(const Json& j) {
  TraceEntry t;
  t.ts_ns = j.i64("ts_ns");
  t.class_name = j.str("class");
  t.action = j.str("action");
  t.status = j.str("status");
  t.steps = j.u64("steps");
  if (const Json* m = j.get("meta")) {
    t.meta.msg_id = m->i64("msg_id");
    t.meta.msg_type = m->i64("msg_type");
    t.meta.msg_size = m->i64("msg_size");
    t.meta.tenant = m->i64("tenant");
    t.meta.key_hash = m->i64("key_hash");
    t.meta.flow_size = m->i64("flow_size");
    t.meta.app_priority = m->i64("app_priority");
    t.meta.trace_id = m->i64("trace_id");
  }
  return t;
}

EnclaveTelemetry enclave_from_json(const Json& j) {
  EnclaveTelemetry e;
  e.enclave = j.str("name");
  e.telemetry_enabled = j.flag("telemetry_enabled");
  e.packets = j.u64("packets");
  e.matched = j.u64("matched");
  e.dropped_by_action = j.u64("dropped_by_action");
  e.message_entries_created = j.u64("message_entries_created");
  e.message_entries_evicted = j.u64("message_entries_evicted");
  e.message_entries_expired = j.u64("message_entries_expired");
  if (const Json* st = j.get("state")) {
    e.state.present = true;
    e.state.live = st->u64("live");
    e.state.created = st->u64("created");
    e.state.expired = st->u64("expired");
    e.state.evicted = st->u64("evicted");
    e.state.resizes = st->u64("resizes");
    if (const Json* pl = st->get("probe_len")) {
      e.state.probe_len = histogram_from_json(*pl);
    }
  }
  if (const Json* actions = j.get("actions")) {
    for (const Json& aj : actions->items) {
      e.actions.push_back(action_from_json(aj));
    }
  }
  if (const Json* classes = j.get("classes")) {
    for (const Json& cj : classes->items) {
      ClassTelemetry c;
      c.name = cj.str("class");
      c.matched = cj.u64("matched");
      c.dropped = cj.u64("dropped");
      e.classes.push_back(std::move(c));
    }
  }
  if (const Json* host = j.get("host_series")) {
    for (const auto& [name, value] : host->fields) {
      if (value.kind != Json::Kind::number) continue;
      e.host_series.emplace_back(name, std::strtod(value.text.c_str(),
                                                   nullptr));
    }
  }
  e.trace_sampled = j.u64("trace_sampled");
  e.trace_sample_every = static_cast<std::uint32_t>(j.u64("trace_sample_every"));
  if (const Json* trace = j.get("trace")) {
    for (const Json& tj : trace->items) {
      e.trace.push_back(trace_entry_from_json(tj));
    }
  }
  return e;
}

SessionTelemetry session_from_json(const Json& j) {
  SessionTelemetry s;
  s.name = j.str("name");
  s.connected = j.flag("connected");
  s.ready = j.flag("ready");
  s.agent_boot_id = j.u64("agent_boot_id");
  s.connects = j.u64("connects");
  s.connect_failures = j.u64("connect_failures");
  s.teardowns = j.u64("teardowns");
  s.resyncs = j.u64("resyncs");
  s.last_resync_commands = j.u64("last_resync_commands");
  s.requests_sent = j.u64("requests_sent");
  s.responses_ok = j.u64("responses_ok");
  s.responses_error = j.u64("responses_error");
  s.request_timeouts = j.u64("request_timeouts");
  s.heartbeats_sent = j.u64("heartbeats_sent");
  s.heartbeats_acked = j.u64("heartbeats_acked");
  s.liveness_timeouts = j.u64("liveness_timeouts");
  s.corrupt_streams = j.u64("corrupt_streams");
  s.txns_committed = j.u64("txns_committed");
  s.txns_aborted = j.u64("txns_aborted");
  s.agent_restarts_seen = j.u64("agent_restarts_seen");
  if (const Json* rtt = j.get("rtt_ns")) s.rtt_ns = histogram_from_json(*rtt);
  if (const Json* rs = j.get("resync_commands")) {
    s.resync_commands = histogram_from_json(*rs);
  }
  return s;
}

ParsedDump parse_telemetry_json(const std::string& text) {
  const Json root = JsonParser(text).parse();
  const Json* enclaves = root.get("enclaves");
  if (enclaves == nullptr) {
    throw std::runtime_error("telemetry dump has no \"enclaves\" array");
  }
  ParsedDump dump;
  for (const Json& ej : enclaves->items) {
    dump.enclaves.push_back(enclave_from_json(ej));
  }
  if (const Json* sessions = root.get("sessions")) {
    for (const Json& sj : sessions->items) {
      dump.sessions.push_back(session_from_json(sj));
    }
  }
  return dump;
}

}  // namespace eden::telemetry
