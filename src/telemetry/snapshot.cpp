#include "telemetry/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string_view>
#include <thread>
#include <utility>

namespace eden::telemetry {

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Adds `a`'s counts into `t` (same action name). Shared by the
// map-based aggregate() and the sorted-vector merge_aggregates().
void accumulate_action(ActionTelemetry& t, const ActionTelemetry& a) {
  t.executions += a.executions;
  t.errors += a.errors;
  t.steps += a.steps;
  for (std::size_t i = 0; i < t.errors_by_status.size(); ++i) {
    t.errors_by_status[i] += a.errors_by_status[i];
  }
  if (a.has_histograms) {
    t.has_histograms = true;
    t.latency_ns.merge(a.latency_ns);
    t.steps_hist.merge(a.steps_hist);
  }
  if (a.has_profile) {
    // Same action name = same program (the controller ships identical
    // bytecode), so hot-spot rows merge by pc. Percentages are
    // recomputed against the merged totals.
    t.has_profile = true;
    t.profile_runs += a.profile_runs;
    t.profile_instructions += a.profile_instructions;
    for (const HotSpot& h : a.hotspots) {
      auto it = std::find_if(t.hotspots.begin(), t.hotspots.end(),
                             [&](const HotSpot& x) { return x.pc == h.pc; });
      if (it == t.hotspots.end()) {
        t.hotspots.push_back(h);
      } else {
        it->count += h.count;
        it->ticks += h.ticks;
      }
    }
    std::sort(t.hotspots.begin(), t.hotspots.end(),
              [](const HotSpot& x, const HotSpot& y) {
                return x.count != y.count ? x.count > y.count : x.pc < y.pc;
              });
    std::uint64_t tick_total = 0;
    for (const HotSpot& h : t.hotspots) tick_total += h.ticks;
    for (HotSpot& h : t.hotspots) {
      h.count_pct = t.profile_instructions > 0
                        ? 100.0 * static_cast<double>(h.count) /
                              static_cast<double>(t.profile_instructions)
                        : 0.0;
      h.ticks_pct = tick_total > 0 ? 100.0 * static_cast<double>(h.ticks) /
                                         static_cast<double>(tick_total)
                                   : 0.0;
    }
  }
}

void merge_action(std::map<std::string, ActionTelemetry>& into,
                  const ActionTelemetry& a) {
  auto [it, fresh] = into.try_emplace(a.name, a);
  if (!fresh) accumulate_action(it->second, a);
}

void merge_class(std::map<std::string, ClassTelemetry>& into,
                 const ClassTelemetry& c) {
  ClassTelemetry& t = into.try_emplace(c.name).first->second;
  t.name = c.name;
  t.matched += c.matched;
  t.dropped += c.dropped;
}

// Merges two name-sorted telemetry vectors, accumulating entries whose
// names collide. Both inputs come out of aggregate()'s std::map walk,
// so they are already sorted and the merge is linear.
template <typename T, typename Fn>
std::vector<T> merge_sorted(std::vector<T> a, std::vector<T> b,
                            Fn&& accumulate) {
  std::vector<T> out;
  out.reserve(a.size() + b.size());
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i].name < b[j].name) {
      out.push_back(std::move(a[i++]));
    } else if (b[j].name < a[i].name) {
      out.push_back(std::move(b[j++]));
    } else {
      accumulate(a[i], b[j]);
      out.push_back(std::move(a[i]));
      ++i;
      ++j;
    }
  }
  for (; i < a.size(); ++i) out.push_back(std::move(a[i]));
  for (; j < b.size(); ++j) out.push_back(std::move(b[j]));
  return out;
}

void append_histogram_json(std::string& out, const char* key,
                           const HistogramSnapshot& h) {
  out += '"';
  out += key;
  out += "\":{\"count\":";
  out += std::to_string(h.count);
  out += ",\"sum\":";
  out += std::to_string(h.sum);
  out += ",\"mean\":";
  out += std::to_string(h.mean());
  out += ",\"p50\":";
  out += std::to_string(h.p50());
  out += ",\"p95\":";
  out += std::to_string(h.p95());
  out += ",\"p99\":";
  out += std::to_string(h.p99());
  out += ",\"buckets\":[";
  bool first = true;
  for (std::size_t k = 0; k < kHistogramBuckets; ++k) {
    if (h.counts[k] == 0) continue;
    if (!first) out += ',';
    first = false;
    out += "[";
    out += std::to_string(bucket_upper_bound(k));
    out += ',';
    out += std::to_string(h.counts[k]);
    out += ']';
  }
  out += "]}";
}

void append_action_json(std::string& out, const ActionTelemetry& a) {
  out += "{\"name\":\"";
  out += json_escape(a.name);
  out += "\",\"native\":";
  out += a.native ? "true" : "false";
  out += ",\"executions\":";
  out += std::to_string(a.executions);
  out += ",\"errors\":";
  out += std::to_string(a.errors);
  out += ",\"steps\":";
  out += std::to_string(a.steps);
  out += ",\"errors_by_status\":{";
  bool first = true;
  for (std::size_t i = 0; i < a.errors_by_status.size(); ++i) {
    if (a.errors_by_status[i] == 0) continue;
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(
        lang::exec_status_name(static_cast<lang::ExecStatus>(i)));
    out += "\":";
    out += std::to_string(a.errors_by_status[i]);
  }
  out += '}';
  if (a.has_histograms) {
    out += ',';
    append_histogram_json(out, "latency_ns", a.latency_ns);
    if (!a.native) {
      out += ',';
      append_histogram_json(out, "steps_hist", a.steps_hist);
    }
  }
  if (a.has_profile) {
    out += ",\"profile\":{\"runs\":";
    out += std::to_string(a.profile_runs);
    out += ",\"instructions\":";
    out += std::to_string(a.profile_instructions);
    out += ",\"hotspots\":[";
    for (std::size_t i = 0; i < a.hotspots.size(); ++i) {
      const HotSpot& h = a.hotspots[i];
      if (i != 0) out += ',';
      out += "{\"pc\":";
      out += std::to_string(h.pc);
      out += ",\"count\":";
      out += std::to_string(h.count);
      out += ",\"ticks\":";
      out += std::to_string(h.ticks);
      out += ",\"count_pct\":";
      out += std::to_string(h.count_pct);
      out += ",\"ticks_pct\":";
      out += std::to_string(h.ticks_pct);
      out += ",\"text\":\"";
      out += json_escape(h.text);
      out += "\"}";
    }
    out += "]}";
  }
  out += '}';
}

void append_class_json(std::string& out, const ClassTelemetry& c) {
  out += "{\"class\":\"";
  out += json_escape(c.name);
  out += "\",\"matched\":";
  out += std::to_string(c.matched);
  out += ",\"dropped\":";
  out += std::to_string(c.dropped);
  out += '}';
}

void append_trace_json(std::string& out, const TraceEntry& t) {
  out += "{\"ts_ns\":";
  out += std::to_string(t.ts_ns);
  out += ",\"class\":\"";
  out += json_escape(t.class_name);
  out += "\",\"action\":\"";
  out += json_escape(t.action);
  out += "\",\"status\":\"";
  out += json_escape(t.status);
  out += "\",\"steps\":";
  out += std::to_string(t.steps);
  out += ",\"meta\":{\"msg_id\":";
  out += std::to_string(t.meta.msg_id);
  out += ",\"msg_type\":";
  out += std::to_string(t.meta.msg_type);
  out += ",\"msg_size\":";
  out += std::to_string(t.meta.msg_size);
  out += ",\"tenant\":";
  out += std::to_string(t.meta.tenant);
  out += ",\"key_hash\":";
  out += std::to_string(t.meta.key_hash);
  out += ",\"flow_size\":";
  out += std::to_string(t.meta.flow_size);
  out += ",\"app_priority\":";
  out += std::to_string(t.meta.app_priority);
  out += ",\"trace_id\":";
  out += std::to_string(t.meta.trace_id);
  out += "}}";
}

void append_session_json(std::string& out, const SessionTelemetry& s) {
  out += "{\"name\":\"";
  out += json_escape(s.name);
  out += "\",\"connected\":";
  out += s.connected ? "true" : "false";
  out += ",\"ready\":";
  out += s.ready ? "true" : "false";
  out += ",\"agent_boot_id\":";
  out += std::to_string(s.agent_boot_id);
  auto field = [&](const char* key, std::uint64_t value) {
    out += ",\"";
    out += key;
    out += "\":";
    out += std::to_string(value);
  };
  field("connects", s.connects);
  field("connect_failures", s.connect_failures);
  field("teardowns", s.teardowns);
  field("resyncs", s.resyncs);
  field("last_resync_commands", s.last_resync_commands);
  field("requests_sent", s.requests_sent);
  field("responses_ok", s.responses_ok);
  field("responses_error", s.responses_error);
  field("request_timeouts", s.request_timeouts);
  field("heartbeats_sent", s.heartbeats_sent);
  field("heartbeats_acked", s.heartbeats_acked);
  field("liveness_timeouts", s.liveness_timeouts);
  field("corrupt_streams", s.corrupt_streams);
  field("txns_committed", s.txns_committed);
  field("txns_aborted", s.txns_aborted);
  field("agent_restarts_seen", s.agent_restarts_seen);
  out += ',';
  append_histogram_json(out, "rtt_ns", s.rtt_ns);
  out += ',';
  append_histogram_json(out, "resync_commands", s.resync_commands);
  out += '}';
}

template <typename T, typename Fn>
void append_array(std::string& out, const std::vector<T>& items, Fn&& fn) {
  out += '[';
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += ',';
    fn(out, items[i]);
  }
  out += ']';
}

// Shortest round-trippable rendering of a host-series value (%.17g —
// the parser keeps number text, so 64-bit-ish counters survive).
void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

AggregateTelemetry aggregate(std::vector<EnclaveTelemetry> enclaves) {
  AggregateTelemetry agg;
  std::map<std::string, ActionTelemetry> actions;
  std::map<std::string, ClassTelemetry> classes;
  for (const EnclaveTelemetry& e : enclaves) {
    agg.packets += e.packets;
    agg.matched += e.matched;
    agg.dropped_by_action += e.dropped_by_action;
    for (const ActionTelemetry& a : e.actions) merge_action(actions, a);
    for (const ClassTelemetry& c : e.classes) merge_class(classes, c);
  }
  for (auto& [name, a] : actions) agg.actions.push_back(std::move(a));
  for (auto& [name, c] : classes) agg.classes.push_back(std::move(c));
  agg.enclaves = std::move(enclaves);
  return agg;
}

AggregateTelemetry merge_aggregates(AggregateTelemetry a,
                                    AggregateTelemetry b) {
  AggregateTelemetry out = std::move(a);
  out.packets += b.packets;
  out.matched += b.matched;
  out.dropped_by_action += b.dropped_by_action;
  out.enclaves.insert(out.enclaves.end(),
                      std::make_move_iterator(b.enclaves.begin()),
                      std::make_move_iterator(b.enclaves.end()));
  out.sessions.insert(out.sessions.end(),
                      std::make_move_iterator(b.sessions.begin()),
                      std::make_move_iterator(b.sessions.end()));
  out.actions = merge_sorted(
      std::move(out.actions), std::move(b.actions),
      [](ActionTelemetry& t, const ActionTelemetry& x) {
        accumulate_action(t, x);
      });
  out.classes = merge_sorted(std::move(out.classes), std::move(b.classes),
                             [](ClassTelemetry& t, const ClassTelemetry& x) {
                               t.matched += x.matched;
                               t.dropped += x.dropped;
                             });
  return out;
}

AggregateTelemetry aggregate_tree(std::vector<EnclaveTelemetry> enclaves,
                                  std::size_t threads) {
  const std::size_t chunks =
      std::min(threads == 0 ? std::size_t{1} : threads, enclaves.size());
  if (chunks <= 1) return aggregate(std::move(enclaves));

  // Contiguous slices keep the concatenated enclave order identical to
  // the serial walk.
  std::vector<AggregateTelemetry> partials(chunks);
  std::vector<std::thread> workers;
  workers.reserve(chunks);
  const std::size_t per = (enclaves.size() + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = std::min(c * per, enclaves.size());
    const std::size_t hi = std::min(lo + per, enclaves.size());
    workers.emplace_back([&enclaves, &partials, c, lo, hi]() {
      std::vector<EnclaveTelemetry> chunk(
          std::make_move_iterator(enclaves.begin() +
                                  static_cast<std::ptrdiff_t>(lo)),
          std::make_move_iterator(enclaves.begin() +
                                  static_cast<std::ptrdiff_t>(hi)));
      partials[c] = aggregate(std::move(chunk));
    });
  }
  for (std::thread& w : workers) w.join();

  // Pairwise fold, log2(chunks) levels. The partials are few (one per
  // thread), so this tail is cheap relative to the leaf aggregation.
  for (std::size_t stride = 1; stride < partials.size(); stride *= 2) {
    for (std::size_t i = 0; i + stride < partials.size(); i += 2 * stride) {
      partials[i] = merge_aggregates(std::move(partials[i]),
                                     std::move(partials[i + stride]));
    }
  }
  return std::move(partials[0]);
}

void append_enclave_json(std::string& out, const EnclaveTelemetry& e) {
  out += "{\"name\":\"";
  out += json_escape(e.enclave);
  out += "\",\"telemetry_enabled\":";
  out += e.telemetry_enabled ? "true" : "false";
  out += ",\"packets\":";
  out += std::to_string(e.packets);
  out += ",\"matched\":";
  out += std::to_string(e.matched);
  out += ",\"dropped_by_action\":";
  out += std::to_string(e.dropped_by_action);
  out += ",\"message_entries_created\":";
  out += std::to_string(e.message_entries_created);
  out += ",\"message_entries_evicted\":";
  out += std::to_string(e.message_entries_evicted);
  out += ",\"message_entries_expired\":";
  out += std::to_string(e.message_entries_expired);
  if (e.state.present) {
    out += ",\"state\":{\"live\":";
    out += std::to_string(e.state.live);
    out += ",\"created\":";
    out += std::to_string(e.state.created);
    out += ",\"expired\":";
    out += std::to_string(e.state.expired);
    out += ",\"evicted\":";
    out += std::to_string(e.state.evicted);
    out += ",\"resizes\":";
    out += std::to_string(e.state.resizes);
    out += ',';
    append_histogram_json(out, "probe_len", e.state.probe_len);
    out += '}';
  }
  out += ",\"actions\":";
  append_array(out, e.actions, [](std::string& o, const ActionTelemetry& a) {
    append_action_json(o, a);
  });
  out += ",\"classes\":";
  append_array(out, e.classes, [](std::string& o, const ClassTelemetry& c) {
    append_class_json(o, c);
  });
  if (!e.host_series.empty()) {
    out += ",\"host_series\":{";
    bool first = true;
    for (const auto& [name, value] : e.host_series) {
      if (!first) out += ',';
      first = false;
      out += '"';
      out += json_escape(name);
      out += "\":";
      append_double(out, value);
    }
    out += '}';
  }
  out += ",\"trace_sampled\":";
  out += std::to_string(e.trace_sampled);
  out += ",\"trace_sample_every\":";
  out += std::to_string(e.trace_sample_every);
  out += ",\"trace\":";
  append_array(out, e.trace, [](std::string& o, const TraceEntry& t) {
    append_trace_json(o, t);
  });
  out += '}';
}

std::string to_json(const AggregateTelemetry& agg) {
  std::string out = "{\"schema_version\":";
  out += std::to_string(kTelemetrySchemaVersion);
  out += ",\"enclaves\":[";
  for (std::size_t i = 0; i < agg.enclaves.size(); ++i) {
    if (i != 0) out += ',';
    append_enclave_json(out, agg.enclaves[i]);
  }
  out += "],\"sessions\":";
  append_array(out, agg.sessions, [](std::string& o, const SessionTelemetry& s) {
    append_session_json(o, s);
  });
  out += ",\"total\":{\"packets\":";
  out += std::to_string(agg.packets);
  out += ",\"matched\":";
  out += std::to_string(agg.matched);
  out += ",\"dropped_by_action\":";
  out += std::to_string(agg.dropped_by_action);
  out += ",\"actions\":";
  append_array(out, agg.actions, [](std::string& o, const ActionTelemetry& a) {
    append_action_json(o, a);
  });
  out += ",\"classes\":";
  append_array(out, agg.classes, [](std::string& o, const ClassTelemetry& c) {
    append_class_json(o, c);
  });
  out += "}}";
  return out;
}

std::string to_prometheus(const AggregateTelemetry& agg) {
  std::string out;
  auto series = [&](const char* name, const Labels& labels,
                    std::uint64_t value) {
    out += name;
    out += render_labels(labels);
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  };

  out += "# TYPE eden_enclave_packets_total counter\n";
  for (const EnclaveTelemetry& e : agg.enclaves) {
    series("eden_enclave_packets_total", {{"enclave", e.enclave}}, e.packets);
  }
  out += "# TYPE eden_enclave_matched_total counter\n";
  for (const EnclaveTelemetry& e : agg.enclaves) {
    series("eden_enclave_matched_total", {{"enclave", e.enclave}}, e.matched);
  }
  out += "# TYPE eden_enclave_dropped_total counter\n";
  for (const EnclaveTelemetry& e : agg.enclaves) {
    series("eden_enclave_dropped_total", {{"enclave", e.enclave}},
           e.dropped_by_action);
  }
  out += "# TYPE eden_enclave_message_entries_created_total counter\n";
  for (const EnclaveTelemetry& e : agg.enclaves) {
    series("eden_enclave_message_entries_created_total",
           {{"enclave", e.enclave}}, e.message_entries_created);
  }
  out += "# TYPE eden_enclave_message_entries_evicted_total counter\n";
  for (const EnclaveTelemetry& e : agg.enclaves) {
    series("eden_enclave_message_entries_evicted_total",
           {{"enclave", e.enclave}}, e.message_entries_evicted);
  }
  out += "# TYPE eden_enclave_message_entries_expired_total counter\n";
  for (const EnclaveTelemetry& e : agg.enclaves) {
    series("eden_enclave_message_entries_expired_total",
           {{"enclave", e.enclave}}, e.message_entries_expired);
  }

  // Message-state store section (FlowStore), one row set per enclave
  // that holds message state.
  out += "# TYPE eden_state_live gauge\n";
  for (const EnclaveTelemetry& e : agg.enclaves) {
    if (e.state.present) {
      series("eden_state_live", {{"enclave", e.enclave}}, e.state.live);
    }
  }
  out += "# TYPE eden_state_created_total counter\n";
  for (const EnclaveTelemetry& e : agg.enclaves) {
    if (e.state.present) {
      series("eden_state_created_total", {{"enclave", e.enclave}},
             e.state.created);
    }
  }
  out += "# TYPE eden_state_expired_total counter\n";
  for (const EnclaveTelemetry& e : agg.enclaves) {
    if (e.state.present) {
      series("eden_state_expired_total", {{"enclave", e.enclave}},
             e.state.expired);
    }
  }
  out += "# TYPE eden_state_evicted_total counter\n";
  for (const EnclaveTelemetry& e : agg.enclaves) {
    if (e.state.present) {
      series("eden_state_evicted_total", {{"enclave", e.enclave}},
             e.state.evicted);
    }
  }
  out += "# TYPE eden_state_resizes_total counter\n";
  for (const EnclaveTelemetry& e : agg.enclaves) {
    if (e.state.present) {
      series("eden_state_resizes_total", {{"enclave", e.enclave}},
             e.state.resizes);
    }
  }
  {
    bool state_hist_header = false;
    for (const EnclaveTelemetry& e : agg.enclaves) {
      if (!e.state.present || e.state.probe_len.count == 0) continue;
      if (!state_hist_header) {
        out += "# TYPE eden_state_probe_len histogram\n";
        state_hist_header = true;
      }
      append_histogram_exposition(out, "eden_state_probe_len",
                                  render_labels({{"enclave", e.enclave}}),
                                  e.state.probe_len);
    }
  }

  out += "# TYPE eden_class_matched_total counter\n";
  for (const EnclaveTelemetry& e : agg.enclaves) {
    for (const ClassTelemetry& c : e.classes) {
      series("eden_class_matched_total",
             {{"enclave", e.enclave}, {"class", c.name}}, c.matched);
    }
  }
  out += "# TYPE eden_class_dropped_total counter\n";
  for (const EnclaveTelemetry& e : agg.enclaves) {
    for (const ClassTelemetry& c : e.classes) {
      series("eden_class_dropped_total",
             {{"enclave", e.enclave}, {"class", c.name}}, c.dropped);
    }
  }

  out += "# TYPE eden_action_executions_total counter\n";
  for (const EnclaveTelemetry& e : agg.enclaves) {
    for (const ActionTelemetry& a : e.actions) {
      series("eden_action_executions_total",
             {{"enclave", e.enclave}, {"action", a.name}}, a.executions);
    }
  }
  out += "# TYPE eden_action_steps_total counter\n";
  for (const EnclaveTelemetry& e : agg.enclaves) {
    for (const ActionTelemetry& a : e.actions) {
      if (a.native) continue;
      series("eden_action_steps_total",
             {{"enclave", e.enclave}, {"action", a.name}}, a.steps);
    }
  }
  out += "# TYPE eden_action_errors_total counter\n";
  for (const EnclaveTelemetry& e : agg.enclaves) {
    for (const ActionTelemetry& a : e.actions) {
      for (std::size_t i = 0; i < a.errors_by_status.size(); ++i) {
        if (a.errors_by_status[i] == 0) continue;
        series("eden_action_errors_total",
               {{"enclave", e.enclave},
                {"action", a.name},
                {"status",
                 std::string(lang::exec_status_name(
                     static_cast<lang::ExecStatus>(i)))}},
               a.errors_by_status[i]);
      }
    }
  }

  bool histogram_header = false;
  for (const EnclaveTelemetry& e : agg.enclaves) {
    for (const ActionTelemetry& a : e.actions) {
      if (!a.has_histograms) continue;
      if (!histogram_header) {
        out += "# TYPE eden_action_latency_ns histogram\n";
        histogram_header = true;
      }
      append_histogram_exposition(
          out, "eden_action_latency_ns",
          render_labels({{"enclave", e.enclave}, {"action", a.name}}),
          a.latency_ns);
    }
  }
  histogram_header = false;
  for (const EnclaveTelemetry& e : agg.enclaves) {
    for (const ActionTelemetry& a : e.actions) {
      if (!a.has_histograms || a.native) continue;
      if (!histogram_header) {
        out += "# TYPE eden_action_steps histogram\n";
        histogram_header = true;
      }
      append_histogram_exposition(
          out, "eden_action_steps",
          render_labels({{"enclave", e.enclave}, {"action", a.name}}),
          a.steps_hist);
    }
  }

  if (!agg.sessions.empty()) {
    struct CounterSeries {
      const char* name;
      std::uint64_t SessionTelemetry::* member;
    };
    static constexpr CounterSeries kSessionCounters[] = {
        {"eden_session_connects_total", &SessionTelemetry::connects},
        {"eden_session_connect_failures_total",
         &SessionTelemetry::connect_failures},
        {"eden_session_teardowns_total", &SessionTelemetry::teardowns},
        {"eden_session_resyncs_total", &SessionTelemetry::resyncs},
        {"eden_session_requests_total", &SessionTelemetry::requests_sent},
        {"eden_session_responses_ok_total", &SessionTelemetry::responses_ok},
        {"eden_session_responses_error_total",
         &SessionTelemetry::responses_error},
        {"eden_session_request_timeouts_total",
         &SessionTelemetry::request_timeouts},
        {"eden_session_heartbeats_sent_total",
         &SessionTelemetry::heartbeats_sent},
        {"eden_session_heartbeats_acked_total",
         &SessionTelemetry::heartbeats_acked},
        {"eden_session_liveness_timeouts_total",
         &SessionTelemetry::liveness_timeouts},
        {"eden_session_corrupt_streams_total",
         &SessionTelemetry::corrupt_streams},
        {"eden_session_txns_committed_total",
         &SessionTelemetry::txns_committed},
        {"eden_session_txns_aborted_total", &SessionTelemetry::txns_aborted},
        {"eden_session_agent_restarts_total",
         &SessionTelemetry::agent_restarts_seen},
    };
    for (const CounterSeries& cs : kSessionCounters) {
      out += "# TYPE ";
      out += cs.name;
      out += " counter\n";
      for (const SessionTelemetry& s : agg.sessions) {
        series(cs.name, {{"session", s.name}}, s.*cs.member);
      }
    }
    out += "# TYPE eden_session_connected gauge\n";
    for (const SessionTelemetry& s : agg.sessions) {
      series("eden_session_connected", {{"session", s.name}},
             s.ready ? 1 : 0);
    }
    out += "# TYPE eden_session_rtt_ns histogram\n";
    for (const SessionTelemetry& s : agg.sessions) {
      append_histogram_exposition(out, "eden_session_rtt_ns",
                                  render_labels({{"session", s.name}}),
                                  s.rtt_ns);
    }
    out += "# TYPE eden_session_resync_commands histogram\n";
    for (const SessionTelemetry& s : agg.sessions) {
      append_histogram_exposition(out, "eden_session_resync_commands",
                                  render_labels({{"session", s.name}}),
                                  s.resync_commands);
    }
  }
  return out;
}

}  // namespace eden::telemetry
