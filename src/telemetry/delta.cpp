#include "telemetry/delta.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "telemetry/json.h"

namespace eden::telemetry {

namespace {

// Bucket-wise histogram diff; nullopt when any bucket (or count/sum)
// went backwards, which means the underlying histogram was replaced
// and the caller must fall back to a full snapshot.
std::optional<HistogramSnapshot> hist_diff(const HistogramSnapshot& prev,
                                           const HistogramSnapshot& now) {
  if (now.count < prev.count || now.sum < prev.sum) return std::nullopt;
  HistogramSnapshot d;
  d.count = now.count - prev.count;
  d.sum = now.sum - prev.sum;
  for (std::size_t k = 0; k < kHistogramBuckets; ++k) {
    if (now.counts[k] < prev.counts[k]) return std::nullopt;
    d.counts[k] = now.counts[k] - prev.counts[k];
  }
  return d;
}

bool hist_empty(const HistogramSnapshot& h) {
  return h.count == 0 && h.sum == 0;
}

// Diff of one action against its previous report. nullopt(regressed)
// signals the whole delta attempt is void; an engaged optional holding
// nullopt-like "no change" is modeled by the `changed` flag instead.
struct ActionDiff {
  bool regressed = false;
  bool changed = false;
  ActionTelemetry delta;
};

ActionDiff diff_action(const ActionTelemetry& prev,
                       const ActionTelemetry& now) {
  ActionDiff out;
  if (now.executions < prev.executions || now.errors < prev.errors ||
      now.steps < prev.steps) {
    out.regressed = true;
    return out;
  }
  ActionTelemetry d;
  d.name = now.name;
  d.native = now.native;
  d.executions = now.executions - prev.executions;
  d.errors = now.errors - prev.errors;
  d.steps = now.steps - prev.steps;
  for (std::size_t i = 0; i < d.errors_by_status.size(); ++i) {
    if (now.errors_by_status[i] < prev.errors_by_status[i]) {
      out.regressed = true;
      return out;
    }
    d.errors_by_status[i] = now.errors_by_status[i] - prev.errors_by_status[i];
  }
  bool hist_changed = false;
  if (now.has_histograms) {
    if (!prev.has_histograms) {
      d.latency_ns = now.latency_ns;
      d.steps_hist = now.steps_hist;
      hist_changed = !hist_empty(d.latency_ns) || !hist_empty(d.steps_hist);
      d.has_histograms = hist_changed;
    } else {
      auto lat = hist_diff(prev.latency_ns, now.latency_ns);
      auto steps = hist_diff(prev.steps_hist, now.steps_hist);
      if (!lat || !steps) {
        out.regressed = true;
        return out;
      }
      d.latency_ns = *lat;
      d.steps_hist = *steps;
      hist_changed = !hist_empty(d.latency_ns) || !hist_empty(d.steps_hist);
      // Unchanged histograms stay off the wire: an action whose counters
      // moved but whose samples did not would otherwise ship two empty
      // bucket tables per poll. apply_delta skips absent histograms, so
      // this is pure payload savings.
      d.has_histograms = hist_changed;
    }
  }
  // Profiles ride only on full snapshots; the decoder keeps the last
  // full's hotspot tables for this action.
  out.changed = d.executions != 0 || d.errors != 0 || d.steps != 0 ||
                hist_changed || now.native != prev.native;
  out.delta = std::move(d);
  return out;
}

template <typename T>
const T* find_by_name(const std::vector<T>& v, const std::string& name) {
  for (const T& t : v) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

template <typename T>
T* find_by_name(std::vector<T>& v, const std::string& name) {
  for (T& t : v) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

}  // namespace

std::optional<EnclaveTelemetry> delta_between(const EnclaveTelemetry& prev,
                                              const EnclaveTelemetry& now) {
  if (now.packets < prev.packets || now.matched < prev.matched ||
      now.dropped_by_action < prev.dropped_by_action ||
      now.message_entries_created < prev.message_entries_created ||
      now.message_entries_evicted < prev.message_entries_evicted ||
      now.message_entries_expired < prev.message_entries_expired ||
      now.trace_sampled < prev.trace_sampled) {
    return std::nullopt;
  }
  EnclaveTelemetry d;
  d.enclave = now.enclave;
  d.telemetry_enabled = now.telemetry_enabled;
  d.packets = now.packets - prev.packets;
  d.matched = now.matched - prev.matched;
  d.dropped_by_action = now.dropped_by_action - prev.dropped_by_action;
  d.message_entries_created =
      now.message_entries_created - prev.message_entries_created;
  d.message_entries_evicted =
      now.message_entries_evicted - prev.message_entries_evicted;
  d.message_entries_expired =
      now.message_entries_expired - prev.message_entries_expired;
  d.trace_sampled = now.trace_sampled - prev.trace_sampled;
  d.trace_sample_every = now.trace_sample_every;

  // State section: counters diff, `live` is a gauge and ships absolute.
  // A probe histogram going backwards means the stores were replaced —
  // void the delta like any other regression.
  if (now.state.present) {
    if (prev.state.present &&
        (now.state.created < prev.state.created ||
         now.state.expired < prev.state.expired ||
         now.state.evicted < prev.state.evicted ||
         now.state.resizes < prev.state.resizes)) {
      return std::nullopt;
    }
    const StateTelemetry base = prev.state.present ? prev.state
                                                   : StateTelemetry{};
    auto probe = hist_diff(base.probe_len, now.state.probe_len);
    if (!probe) return std::nullopt;
    StateTelemetry sd;
    sd.live = now.state.live;
    sd.created = now.state.created - base.created;
    sd.expired = now.state.expired - base.expired;
    sd.evicted = now.state.evicted - base.evicted;
    sd.resizes = now.state.resizes - base.resizes;
    sd.probe_len = *probe;
    // An untouched section stays off the wire (and out of
    // delta_is_empty's way).
    sd.present = !prev.state.present || sd.created != 0 || sd.expired != 0 ||
                 sd.evicted != 0 || sd.resizes != 0 ||
                 now.state.live != base.live || !hist_empty(sd.probe_len);
    if (sd.present) d.state = std::move(sd);
  }

  for (const ActionTelemetry& a : now.actions) {
    const ActionTelemetry* p = find_by_name(prev.actions, a.name);
    if (p == nullptr) {
      // New action: ships whole (it diffs against zero), minus the
      // profile, which waits for the next full snapshot.
      ActionTelemetry whole = a;
      whole.has_profile = false;
      whole.profile_runs = 0;
      whole.profile_instructions = 0;
      whole.hotspots.clear();
      d.actions.push_back(std::move(whole));
      continue;
    }
    ActionDiff ad = diff_action(*p, a);
    if (ad.regressed) return std::nullopt;
    if (ad.changed) d.actions.push_back(std::move(ad.delta));
  }

  for (const ClassTelemetry& c : now.classes) {
    const ClassTelemetry* p = find_by_name(prev.classes, c.name);
    if (p == nullptr) {
      if (c.matched != 0 || c.dropped != 0) d.classes.push_back(c);
      continue;
    }
    if (c.matched < p->matched || c.dropped < p->dropped) return std::nullopt;
    ClassTelemetry cd;
    cd.name = c.name;
    cd.matched = c.matched - p->matched;
    cd.dropped = c.dropped - p->dropped;
    if (cd.matched != 0 || cd.dropped != 0) d.classes.push_back(std::move(cd));
  }

  // Host series carry absolute values (gauges move both ways); only
  // keys whose value changed — or appeared — are shipped. Keys that
  // vanish keep their last value at the decoder, which is the right
  // call for *_total counters and harmless for gauges.
  for (const auto& [name, value] : now.host_series) {
    const auto it = std::find_if(
        prev.host_series.begin(), prev.host_series.end(),
        [&name = name](const auto& kv) { return kv.first == name; });
    if (it == prev.host_series.end() || it->second != value) {
      d.host_series.emplace_back(name, value);
    }
  }
  return d;
}

bool delta_is_empty(const EnclaveTelemetry& d) {
  return d.packets == 0 && d.matched == 0 && d.dropped_by_action == 0 &&
         d.message_entries_created == 0 && d.message_entries_evicted == 0 &&
         d.message_entries_expired == 0 && !d.state.present &&
         d.trace_sampled == 0 && d.actions.empty() && d.classes.empty() &&
         d.host_series.empty();
}

void apply_delta(EnclaveTelemetry& base, const EnclaveTelemetry& delta) {
  base.telemetry_enabled = delta.telemetry_enabled;
  base.packets += delta.packets;
  base.matched += delta.matched;
  base.dropped_by_action += delta.dropped_by_action;
  base.message_entries_created += delta.message_entries_created;
  base.message_entries_evicted += delta.message_entries_evicted;
  base.message_entries_expired += delta.message_entries_expired;
  if (delta.state.present) {
    base.state.present = true;
    base.state.live = delta.state.live;  // gauge: absolute
    base.state.created += delta.state.created;
    base.state.expired += delta.state.expired;
    base.state.evicted += delta.state.evicted;
    base.state.resizes += delta.state.resizes;
    base.state.probe_len.merge(delta.state.probe_len);
  }
  base.trace_sampled += delta.trace_sampled;
  if (delta.trace_sample_every != 0) {
    base.trace_sample_every = delta.trace_sample_every;
  }
  for (const ActionTelemetry& a : delta.actions) {
    ActionTelemetry* t = find_by_name(base.actions, a.name);
    if (t == nullptr) {
      base.actions.push_back(a);
      continue;
    }
    t->native = a.native;
    t->executions += a.executions;
    t->errors += a.errors;
    t->steps += a.steps;
    for (std::size_t i = 0; i < t->errors_by_status.size(); ++i) {
      t->errors_by_status[i] += a.errors_by_status[i];
    }
    if (a.has_histograms) {
      t->has_histograms = true;
      t->latency_ns.merge(a.latency_ns);
      t->steps_hist.merge(a.steps_hist);
    }
    // Profile state stays — deltas never carry it.
  }
  for (const ClassTelemetry& c : delta.classes) {
    ClassTelemetry* t = find_by_name(base.classes, c.name);
    if (t == nullptr) {
      base.classes.push_back(c);
      continue;
    }
    t->matched += c.matched;
    t->dropped += c.dropped;
  }
  for (const auto& [name, value] : delta.host_series) {
    auto it = std::find_if(base.host_series.begin(), base.host_series.end(),
                           [&name = name](const auto& kv) {
                             return kv.first == name;
                           });
    if (it == base.host_series.end()) {
      base.host_series.emplace_back(name, value);
    } else {
      it->second = value;
    }
  }
}

std::string encode_delta_payload(const DeltaPayload& p) {
  std::string out = "{\"schema_version\":";
  out += std::to_string(p.schema_version);
  out += ",\"epoch\":";
  out += std::to_string(p.epoch);
  out += ",\"seq\":";
  out += std::to_string(p.seq);
  out += ",\"full\":";
  out += p.full ? "true" : "false";
  out += ",\"enclaves\":[";
  for (std::size_t i = 0; i < p.enclaves.size(); ++i) {
    if (i != 0) out += ',';
    append_enclave_json(out, p.enclaves[i]);
  }
  out += "]}";
  return out;
}

DeltaPayload parse_delta_payload(const std::string& text) {
  const Json root = JsonParser(text).parse();
  DeltaPayload p;
  p.schema_version = static_cast<int>(root.u64("schema_version", 1));
  p.epoch = root.u64("epoch");
  p.seq = root.u64("seq");
  p.full = root.flag("full");
  if (const Json* enclaves = root.get("enclaves")) {
    for (const Json& ej : enclaves->items) {
      p.enclaves.push_back(enclave_from_json(ej));
    }
  }
  return p;
}

bool DeltaDecoder::apply(const DeltaPayload& p) {
  if (p.full) {
    snapshots_ = p.enclaves;
    epoch_ = p.epoch;
    seq_ = p.seq;
    synced_ = true;
    ++stats_.full_resyncs;
    return true;
  }
  if (!synced_ || p.epoch != epoch_ || p.seq != seq_ + 1) {
    ++stats_.rejected;
    return false;
  }
  for (const EnclaveTelemetry& d : p.enclaves) {
    auto it = std::find_if(snapshots_.begin(), snapshots_.end(),
                           [&](const EnclaveTelemetry& e) {
                             return e.enclave == d.enclave;
                           });
    if (it == snapshots_.end()) {
      // An enclave we have never seen whole: adopt the delta as its
      // baseline (it diffs against zero on the agent, so this is the
      // true cumulative state minus trace/profile detail).
      snapshots_.push_back(d);
    } else {
      apply_delta(*it, d);
    }
  }
  seq_ = p.seq;
  ++stats_.deltas_applied;
  return true;
}

bool DeltaDecoder::apply_json(const std::string& text) {
  try {
    return apply(parse_delta_payload(text));
  } catch (const std::runtime_error&) {
    ++stats_.rejected;
    return false;
  }
}

}  // namespace eden::telemetry
