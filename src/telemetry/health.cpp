#include "telemetry/health.h"

#include <algorithm>
#include <cstdio>
#include <string_view>

#include "telemetry/flight_recorder.h"

namespace eden::telemetry {

namespace {

bool compare(HealthRule::Op op, double value, double threshold) {
  switch (op) {
    case HealthRule::Op::gt: return value > threshold;
    case HealthRule::Op::ge: return value >= threshold;
    case HealthRule::Op::lt: return value < threshold;
    case HealthRule::Op::le: return value <= threshold;
  }
  return false;
}

// Resolves a rule's series for one agent: ":rate" asks the retention
// ring for a per-second rate, anything else reads the latest value.
std::optional<double> resolve(const TelemetryCollector& c, std::size_t i,
                              const std::string& series) {
  constexpr std::string_view kRate = ":rate";
  if (series.size() > kRate.size() &&
      series.compare(series.size() - kRate.size(), kRate.size(),
                     kRate.data()) == 0) {
    return c.rate_per_sec(i, series.substr(0, series.size() - kRate.size()));
  }
  return c.latest_value(i, series);
}

std::string format_value(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

const char* health_state_name(HealthState s) {
  switch (s) {
    case HealthState::ok: return "ok";
    case HealthState::degraded: return "degraded";
    case HealthState::critical: return "critical";
  }
  return "?";
}

std::vector<HealthRule> default_health_rules() {
  using Op = HealthRule::Op;
  return {
      // Host/data-plane pressure (host_series keys, see the agent's
      // set_host_series hook).
      {"pool-exhaustion", "pool_exhausted_total:rate", Op::gt, 1000.0,
       HealthState::degraded, false},
      {"dataplane-backpressure", "dataplane_backpressure_total:rate", Op::gt,
       1000.0, HealthState::degraded, false},
      {"dataplane-ring-depth", "dataplane_ring_depth", Op::gt, 768.0,
       HealthState::degraded, false},
      // Control-plane liveness.
      {"session-liveness", "session.liveness_timeouts:rate", Op::gt, 0.1,
       HealthState::degraded, false},
      // Action error budget: a trickle degrades, a flood is critical.
      {"action-errors", "action_errors:rate", Op::gt, 100.0,
       HealthState::degraded, false},
      {"action-errors-critical", "action_errors:rate", Op::gt, 10000.0,
       HealthState::critical, false},
      // Collector-observed poll health.
      {"agent-stale", "collector.stale", Op::ge, 1.0, HealthState::degraded,
       false},
      {"agent-unreachable", "collector.consecutive_failures", Op::ge, 8.0,
       HealthState::critical, false},
      // Fleet-wide drop budget over the summed series.
      {"fleet-drop-rate", "dropped_by_action:rate", Op::gt, 1e6,
       HealthState::degraded, true},
  };
}

HealthWatchdog::HealthWatchdog(std::vector<HealthRule> rules)
    : rules_(std::move(rules)) {}

void HealthWatchdog::push_event(HealthEvent e) {
  ++events_total_;
  events_.push_back(std::move(e));
  while (events_.size() > kMaxEvents) {
    events_.pop_front();
    ++events_dropped_;
  }
}

void HealthWatchdog::transition(std::uint64_t now_ns,
                                const std::string& agent, HealthState& slot,
                                HealthState to, const Tripped* worst) {
  if (slot == to) return;
  HealthEvent e;
  e.t_ns = now_ns;
  e.agent = agent;
  e.from = slot;
  e.to = to;
  if (worst != nullptr && worst->rule != nullptr) {
    e.rule = worst->rule->name;
    e.value = worst->value;
  }
  FlightRecorder::instance().record(
      FlightEventType::health_transition,
      (agent.empty() ? std::string("fleet") : agent) +
          (e.rule.empty() ? "" : ": " + e.rule),
      static_cast<std::int64_t>(e.from), static_cast<std::int64_t>(to));
  if (to == HealthState::critical && !critical_dump_path_.empty()) {
    FlightRecorder::instance().dump_to_file(critical_dump_path_.c_str());
  }
  push_event(std::move(e));
  slot = to;
}

void HealthWatchdog::evaluate(std::uint64_t now_ns,
                              const TelemetryCollector& collector) {
  ++evaluations_;
  const std::size_t n = collector.source_count();
  agents_.resize(n);
  prev_agent_states_.resize(n, HealthState::ok);

  HealthState fleet = HealthState::ok;
  Tripped fleet_worst;
  for (std::size_t i = 0; i < n; ++i) {
    AgentHealth& a = agents_[i];
    a.name = collector.status(i).name;
    a.tripped.clear();
    HealthState state = HealthState::ok;
    Tripped worst;
    struct Hit {
      HealthState severity;
      std::string text;
    };
    std::vector<Hit> hits;
    for (const HealthRule& rule : rules_) {
      if (rule.fleet) continue;
      const std::optional<double> value = resolve(collector, i, rule.series);
      if (!value || !compare(rule.op, *value, rule.threshold)) continue;
      hits.push_back({rule.severity, rule.name + "(" + format_value(*value) +
                                         ")"});
      if (worst.rule == nullptr || rule.severity > worst.rule->severity) {
        worst.rule = &rule;
        worst.value = *value;
      }
      state = std::max(state, rule.severity);
    }
    std::stable_sort(hits.begin(), hits.end(),
                     [](const Hit& x, const Hit& y) {
                       return x.severity > y.severity;
                     });
    for (Hit& h : hits) a.tripped.push_back(std::move(h.text));
    a.state = state;
    transition(now_ns, a.name, prev_agent_states_[i], state,
               worst.rule != nullptr ? &worst : nullptr);
    if (state > fleet) {
      fleet = state;
      if (worst.rule != nullptr) fleet_worst = worst;
    }
  }

  for (const HealthRule& rule : rules_) {
    if (!rule.fleet) continue;
    double sum = 0;
    bool present = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (const std::optional<double> v = resolve(collector, i, rule.series)) {
        sum += *v;
        present = true;
      }
    }
    if (!present || !compare(rule.op, sum, rule.threshold)) continue;
    if (rule.severity > fleet ||
        (rule.severity == fleet && fleet_worst.rule == nullptr)) {
      fleet_worst.rule = &rule;
      fleet_worst.value = sum;
    }
    fleet = std::max(fleet, rule.severity);
  }
  transition(now_ns, {}, fleet_state_, fleet,
             fleet_worst.rule != nullptr ? &fleet_worst : nullptr);
}

std::string HealthWatchdog::events_json() const {
  std::string out = "[";
  bool first = true;
  for (const HealthEvent& e : events_) {
    if (!first) out += ',';
    first = false;
    out += "{\"t_ns\":";
    out += std::to_string(e.t_ns);
    out += ",\"scope\":\"";
    out += e.agent.empty() ? "fleet" : "agent";
    out += "\",\"agent\":\"";
    out += e.agent;
    out += "\",\"rule\":\"";
    out += e.rule;
    out += "\",\"from\":\"";
    out += health_state_name(e.from);
    out += "\",\"to\":\"";
    out += health_state_name(e.to);
    out += "\",\"value\":";
    out += format_value(e.value);
    out += '}';
  }
  out += ']';
  return out;
}

void HealthWatchdog::append_prometheus(std::string& out) const {
  out += "# TYPE eden_health_fleet gauge\n";
  out += "eden_health_fleet ";
  out += std::to_string(static_cast<int>(fleet_state_));
  out += '\n';
  out += "# TYPE eden_health_agent gauge\n";
  for (const AgentHealth& a : agents_) {
    out += "eden_health_agent{agent=\"";
    out += a.name;
    out += "\"} ";
    out += std::to_string(static_cast<int>(a.state));
    out += '\n';
  }
  bool header = false;
  for (const AgentHealth& a : agents_) {
    for (const std::string& t : a.tripped) {
      if (!header) {
        out += "# TYPE eden_health_rule_tripped gauge\n";
        header = true;
      }
      // `t` is "rule(value)"; strip the value for the label.
      const std::size_t paren = t.find('(');
      out += "eden_health_rule_tripped{agent=\"";
      out += a.name;
      out += "\",rule=\"";
      out += paren == std::string::npos ? t : t.substr(0, paren);
      out += "\"} 1\n";
    }
  }
  out += "# TYPE eden_health_events_total counter\n";
  out += "eden_health_events_total ";
  out += std::to_string(events_total_);
  out += '\n';
  out += "# TYPE eden_health_events_dropped_total counter\n";
  out += "eden_health_events_dropped_total ";
  out += std::to_string(events_dropped_);
  out += '\n';
}

}  // namespace eden::telemetry
