// Health watchdog: declarative threshold rules over collected series.
//
// The collector (telemetry/collector.h) turns a thousand agents into
// per-agent series rings and staleness flags; the watchdog turns those
// into something an operator can alarm on. Each rule names a series —
// a host series key ("pool_exhausted_total"), a session counter
// ("session.liveness_timeouts"), an enclave total ("action_errors")
// or a collector pseudo-series ("collector.stale") — an optional
// ":rate" suffix (evaluate the per-second rate over the retention
// ring instead of the latest value), a comparison and a severity.
// evaluate() runs every rule against every agent (fleet rules against
// the summed series), takes the max tripped severity per agent, and
// the fleet state is max(per-agent states, fleet-rule states).
//
// Transitions are appended to a bounded event log, exportable as a
// JSON array; current states export as eden_health_* exposition rows.
// Like the collector, the watchdog belongs to the control thread.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "telemetry/collector.h"

namespace eden::telemetry {

enum class HealthState : std::uint8_t { ok = 0, degraded = 1, critical = 2 };

const char* health_state_name(HealthState s);

struct HealthRule {
  std::string name;    // stable rule id, shown in events and tables
  std::string series;  // collector series name; ":rate" suffix allowed
  enum class Op : std::uint8_t { gt, ge, lt, le } op = Op::gt;
  double threshold = 0;
  HealthState severity = HealthState::degraded;
  bool fleet = false;  // evaluate over the fleet-summed series
};

// The default rule set the ISSUE's deployment watches: pool exhaustion
// rate, data-plane backpressure rate, ring-depth gauge, session
// liveness misses, action error rate, and the collector's own
// staleness/unreachability flags. Thresholds are starting points —
// operators tune them per deployment.
std::vector<HealthRule> default_health_rules();

struct HealthEvent {
  std::uint64_t t_ns = 0;
  std::string agent;  // empty for fleet-scope transitions
  std::string rule;   // rule that dominated the new state ("" on clear)
  HealthState from = HealthState::ok;
  HealthState to = HealthState::ok;
  double value = 0;  // observed value of the dominating rule's series
};

class HealthWatchdog {
 public:
  explicit HealthWatchdog(
      std::vector<HealthRule> rules = default_health_rules());

  // Evaluates every rule against the collector's current series and
  // statuses. Call once per poll cycle, after TelemetryCollector::poll.
  void evaluate(std::uint64_t now_ns, const TelemetryCollector& collector);

  struct AgentHealth {
    std::string name;
    HealthState state = HealthState::ok;
    // "rule(value)" strings for every tripped rule, worst first.
    std::vector<std::string> tripped;
  };

  HealthState fleet_state() const { return fleet_state_; }
  const std::vector<AgentHealth>& agents() const { return agents_; }
  const std::deque<HealthEvent>& events() const { return events_; }
  std::uint64_t evaluations() const { return evaluations_; }
  // Monotonic transition count and how many of those the bounded log
  // has already shed (events() holds total - dropped, newest last).
  std::uint64_t events_total() const { return events_total_; }
  std::uint64_t events_dropped() const { return events_dropped_; }

  // When set, any transition *into* critical dumps the process flight
  // recorder to this path — the postmortem is written at the moment
  // the fleet goes red, not when someone remembers to ask for it.
  void set_critical_dump_path(std::string path) {
    critical_dump_path_ = std::move(path);
  }

  // Event log as a JSON array (oldest first).
  std::string events_json() const;
  // eden_health_* exposition rows appended to `out`:
  // eden_health_fleet, eden_health_agent{agent=...},
  // eden_health_rule_tripped{agent=...,rule=...}.
  void append_prometheus(std::string& out) const;

 private:
  struct Tripped {
    const HealthRule* rule = nullptr;
    double value = 0;
  };
  void transition(std::uint64_t now_ns, const std::string& agent,
                  HealthState& slot, HealthState to, const Tripped* worst);
  void push_event(HealthEvent e);

  std::vector<HealthRule> rules_;
  std::vector<AgentHealth> agents_;
  std::vector<HealthState> prev_agent_states_;
  HealthState fleet_state_ = HealthState::ok;
  std::deque<HealthEvent> events_;
  std::uint64_t evaluations_ = 0;
  std::uint64_t events_total_ = 0;
  std::uint64_t events_dropped_ = 0;
  std::string critical_dump_path_;
  static constexpr std::size_t kMaxEvents = 4096;
};

}  // namespace eden::telemetry
