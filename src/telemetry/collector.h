// Fleet-scale telemetry collection for the controller.
//
// Controller::collect_telemetry serializes over sessions — fetch,
// parse, merge, one at a time — which is fine for a handful of
// enclaves and hopeless for a thousand. The TelemetryCollector is the
// scale-out replacement: sources are split into contiguous chunks,
// one per pool worker, and each worker fetches + decodes its chunk
// and builds a chunk-local partial aggregate; the main thread then
// folds the partials pairwise (merge_aggregates), so no snapshot ever
// funnels through a single per-session map. Fetches use the delta
// protocol (telemetry/delta.h) by default — each source owns a
// DeltaDecoder whose (epoch, seq) is echoed in the next request — so
// a steady-state poll moves O(changed series) bytes per agent.
//
// A source that stops answering never blocks the cycle: its fetch
// returns empty, the collector keeps its last-known snapshot in the
// aggregate, bumps consecutive_failures and flags it stale once
// stale_after_ns passes without a success. The health watchdog
// (telemetry/health.h) turns those flags plus per-series threshold
// rules into ok/degraded/critical states.
//
// Threading contract: poll() is driven by one control thread; the
// worker pool only runs inside poll(), and a given source is always
// handled by the same chunk, so per-source state (decoder, status,
// retention rings) needs no locks. Everything else (statuses(),
// latest(), rate_per_sec(), append_prometheus()) must be called from
// the control thread between polls.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/delta.h"
#include "telemetry/snapshot.h"

namespace eden::telemetry {

// One polled agent. The fetch callbacks return the payload text, empty
// on unreachable; they are invoked from a pool worker, but always the
// same worker per cycle, so a closure over a single-threaded session
// (controlplane::EnclaveSession + its pump) is safe.
struct CollectorSource {
  std::string name;
  // Delta poll: echoes (epoch, seq), returns DeltaPayload JSON.
  std::function<std::string(std::uint64_t epoch, std::uint64_t seq)>
      fetch_delta;
  // Fallback full-snapshot poll (to_json dump); used when fetch_delta
  // is absent (the payload is parsed with parse_telemetry_json and
  // adopted wholesale).
  std::function<std::string()> fetch_full;
  // Optional session-health hook, sampled once per cycle on the
  // source's worker.
  std::function<SessionTelemetry()> session;
};

struct CollectorConfig {
  std::size_t threads = 4;         // pool width == number of chunks
  std::size_t retention_depth = 16;  // points kept per (agent, series)
  // No successful poll for this long => AgentStatus::stale.
  std::uint64_t stale_after_ns = 5'000'000'000;
};

// Per-agent poll health, refreshed every cycle.
struct AgentStatus {
  std::string name;
  bool reachable = false;  // last poll returned a payload
  bool stale = false;      // no success within stale_after_ns
  std::uint64_t last_success_ns = 0;
  std::uint64_t last_attempt_ns = 0;
  std::uint64_t consecutive_failures = 0;
  std::uint64_t polls = 0;
  std::uint64_t failures = 0;
  std::uint64_t full_resyncs = 0;      // DeltaDecoder stats mirror
  std::uint64_t deltas_applied = 0;
  std::uint64_t rejected_payloads = 0;
  std::uint64_t last_payload_bytes = 0;
  std::uint64_t payload_bytes_total = 0;
};

struct SeriesPoint {
  std::uint64_t t_ns = 0;
  double value = 0;
};

class TelemetryCollector {
 public:
  using ClockFn = std::function<std::uint64_t()>;

  TelemetryCollector(CollectorConfig config, ClockFn clock);
  ~TelemetryCollector();
  TelemetryCollector(const TelemetryCollector&) = delete;
  TelemetryCollector& operator=(const TelemetryCollector&) = delete;

  // Registration happens before polling starts; returns the source
  // index used by the per-source accessors below.
  std::size_t add_source(CollectorSource source);
  std::size_t source_count() const { return sources_.size(); }

  // One collection cycle: fan out, decode, refresh statuses and
  // retention rings, tree-merge the partials. Returns the merged view
  // (also available as latest() until the next poll). Unreachable
  // agents contribute their last-known snapshots.
  const AggregateTelemetry& poll();

  const AggregateTelemetry& latest() const { return latest_; }
  std::uint64_t last_poll_ns() const { return last_poll_ns_; }
  std::uint64_t polls() const { return polls_; }

  const AgentStatus& status(std::size_t i) const;
  std::vector<AgentStatus> statuses() const;

  // Per-agent series read-back for the watchdog and eden-stat --watch.
  // Series names: enclave totals ("packets", "matched",
  // "dropped_by_action", "action_errors"), host series keys verbatim,
  // session counters ("session.liveness_timeouts", ...), and
  // collector pseudo-series resolved from AgentStatus
  // ("collector.stale", "collector.consecutive_failures").
  std::optional<double> latest_value(std::size_t i,
                                     const std::string& series) const;
  // Rate per second across the retention ring (first to last point);
  // nullopt with fewer than two points or no elapsed time.
  std::optional<double> rate_per_sec(std::size_t i,
                                     const std::string& series) const;
  const std::deque<SeriesPoint>* series_history(
      std::size_t i, const std::string& series) const;

  // eden_collector_* exposition rows, appended to `out`.
  void append_prometheus(std::string& out) const;

 private:
  struct SourceState {
    CollectorSource source;
    DeltaDecoder decoder;
    AgentStatus status;
    // Snapshots currently contributing to the aggregate: the decoder's
    // materialized view, or the last parsed full dump for
    // fetch_full-only sources.
    std::vector<EnclaveTelemetry> snapshots;
    bool has_session = false;
    SessionTelemetry session;
    std::map<std::string, std::deque<SeriesPoint>> rings;
  };

  void poll_source(SourceState& s, std::uint64_t now);
  void record_point(SourceState& s, const std::string& series, double value,
                    std::uint64_t now);
  void record_series(SourceState& s, std::uint64_t now);
  void run_chunks(std::size_t chunks);
  void worker_loop(std::size_t worker);

  CollectorConfig config_;
  ClockFn clock_;
  std::vector<std::unique_ptr<SourceState>> sources_;
  AggregateTelemetry latest_;
  std::uint64_t last_poll_ns_ = 0;
  std::uint64_t polls_ = 0;
  std::uint64_t last_poll_duration_ns_ = 0;

  // Worker pool. Workers sleep between cycles; run_chunks() stores the
  // per-chunk closures, bumps the generation and waits for all chunks
  // to report done.
  std::vector<std::thread> pool_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  std::size_t pending_ = 0;
  bool stop_ = false;
  std::vector<std::function<void()>> chunk_tasks_;
};

}  // namespace eden::telemetry
