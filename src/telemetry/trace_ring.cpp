#include "telemetry/trace_ring.h"

namespace eden::telemetry {

void TraceRing::push(const TraceRecord& record) {
  std::lock_guard lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(record);
  } else {
    ring_[next_] = record;
    next_ = (next_ + 1) % capacity_;
  }
  recorded_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<TraceRecord> TraceRing::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  // Once full, `next_` points at the oldest record.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

}  // namespace eden::telemetry
