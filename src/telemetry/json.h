// Reader for the JSON that telemetry::to_json emits.
//
// A minimal recursive-descent parser plus loaders that rebuild the
// snapshot structs from a parsed tree. Deliberately scoped to the
// subset our own emitter produces (it is the inverse of snapshot.cpp,
// not a general JSON library); numbers keep their source text so
// 64-bit counters round-trip without double precision loss. Shared by
// eden-stat's file mode and the controller's remote-session read-back,
// which both consume machine-written dumps.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/snapshot.h"

namespace eden::telemetry {

struct Json {
  enum class Kind { null, boolean, number, string, array, object };
  Kind kind = Kind::null;
  bool boolean = false;
  std::string text;  // number source text or string value
  std::vector<Json> items;
  std::vector<std::pair<std::string, Json>> fields;

  const Json* get(const std::string& key) const;
  std::uint64_t u64(const std::string& key, std::uint64_t dflt = 0) const;
  std::int64_t i64(const std::string& key, std::int64_t dflt = 0) const;
  double num(const std::string& key, double dflt = 0.0) const;
  std::string str(const std::string& key) const;
  bool flag(const std::string& key) const;
};

// Throws std::runtime_error (with a byte offset) on malformed input.
class JsonParser {
 public:
  explicit JsonParser(std::string text) : s_(std::move(text)) {}
  Json parse();

 private:
  [[noreturn]] void fail(const char* what);
  void skip_ws();
  char peek();
  void expect(char c);
  std::string string_body();
  Json value();

  std::string s_;
  std::size_t i_ = 0;
};

// --- Snapshot loaders (inverse of snapshot.cpp's emitters) -------------

HistogramSnapshot histogram_from_json(const Json& j);
ActionTelemetry action_from_json(const Json& j);
TraceEntry trace_entry_from_json(const Json& j);
EnclaveTelemetry enclave_from_json(const Json& j);
SessionTelemetry session_from_json(const Json& j);

// One to_json() dump pulled apart. Totals are not read back: callers
// recompute them with aggregate(), the same path a live snapshot takes.
struct ParsedDump {
  std::vector<EnclaveTelemetry> enclaves;
  std::vector<SessionTelemetry> sessions;
};

// Parses a single dump object (must contain an "enclaves" array).
// Throws std::runtime_error on parse errors or a missing array.
ParsedDump parse_telemetry_json(const std::string& text);

}  // namespace eden::telemetry
