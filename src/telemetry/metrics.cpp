#include "telemetry/metrics.h"

#include <chrono>

#include "util/stats.h"

namespace eden::telemetry {

double ns_per_tick() {
  // Calibrated once; the static-local guard after initialization is a
  // load, cheap enough for snapshot-time conversions.
  static const double rate = [] {
    const auto wall0 = std::chrono::steady_clock::now();
    const std::uint64_t t0 = now_ticks();
    // Busy wait so the tick source actually advances (sleeping can park
    // the core and skew TSC-vs-wall on some virtualized hosts).
    while (std::chrono::steady_clock::now() - wall0 <
           std::chrono::milliseconds(2)) {
    }
    const std::uint64_t t1 = now_ticks();
    const auto wall1 = std::chrono::steady_clock::now();
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        wall1 - wall0)
                        .count();
    return t1 > t0 ? static_cast<double>(ns) / static_cast<double>(t1 - t0)
                   : 1.0;
  }();
  return rate;
}

void warm_clock() { (void)ns_per_tick(); }

double HistogramSnapshot::quantile(double q) const {
  return util::log2_bucket_quantile(counts, q);
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    counts[i] += other.counts[i];
  }
  count += other.count;
  sum += other.sum;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  for (const Shard& s : shards_) {
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      const std::uint64_t c = s.counts[i].load(std::memory_order_relaxed);
      snap.counts[i] += c;
      snap.count += c;
    }
    snap.sum += s.sum.load(std::memory_order_relaxed);
  }
  return snap;
}

std::string render_labels(const Labels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    for (char c : v) {
      switch (c) {
        case '\\': out += "\\\\"; break;
        case '"': out += "\\\""; break;
        case '\n': out += "\\n"; break;
        default: out += c;
      }
    }
    out += '"';
  }
  out += '}';
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[{name, render_labels(labels)}];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[{name, render_labels(labels)}];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      const Labels& labels) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[{name, render_labels(labels)}];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void append_histogram_exposition(std::string& out, std::string_view name,
                                 std::string_view labels,
                                 const HistogramSnapshot& h) {
  // Prometheus histograms are cumulative and end with an +Inf bucket.
  // Empty log2 buckets are elided (their cumulative value is implied by
  // the next emitted bound), except that +Inf is always present.
  const std::string base =
      labels.empty() ? std::string() : std::string(labels.substr(1));
  auto bucket_line = [&](const std::string& le, std::uint64_t cum) {
    out += name;
    out += "_bucket{";
    if (!base.empty()) {
      out += base.substr(0, base.size() - 1);  // sans '}'
      out += ',';
    }
    out += "le=\"";
    out += le;
    out += "\"} ";
    out += std::to_string(cum);
    out += '\n';
  };
  std::uint64_t cum = 0;
  for (std::size_t k = 0; k < kHistogramBuckets; ++k) {
    if (h.counts[k] == 0) continue;
    cum += h.counts[k];
    bucket_line(std::to_string(bucket_upper_bound(k)), cum);
  }
  bucket_line("+Inf", h.count);
  out += name;
  out += "_sum";
  out += labels;
  out += ' ';
  out += std::to_string(h.sum);
  out += '\n';
  out += name;
  out += "_count";
  out += labels;
  out += ' ';
  out += std::to_string(h.count);
  out += '\n';
}

std::string MetricsRegistry::text_exposition() const {
  std::lock_guard lock(mutex_);
  std::string out;
  std::string last_type_for;
  auto type_line = [&](const std::string& name, const char* type) {
    if (name == last_type_for) return;
    last_type_for = name;
    out += "# TYPE ";
    out += name;
    out += ' ';
    out += type;
    out += '\n';
  };
  for (const auto& [series, c] : counters_) {
    type_line(series.first, "counter");
    out += series.first;
    out += series.second;
    out += ' ';
    out += std::to_string(c->value());
    out += '\n';
  }
  last_type_for.clear();
  for (const auto& [series, g] : gauges_) {
    type_line(series.first, "gauge");
    out += series.first;
    out += series.second;
    out += ' ';
    out += std::to_string(g->value());
    out += '\n';
  }
  last_type_for.clear();
  for (const auto& [series, h] : histograms_) {
    type_line(series.first, "histogram");
    append_histogram_exposition(out, series.first, series.second,
                                h->snapshot());
  }
  return out;
}

}  // namespace eden::telemetry
