// Always-on flight recorder for fleet postmortems.
//
// Spans answer "how long did this operation take"; the flight recorder
// answers "what was the control plane doing when it died". It is a
// bounded, lock-free, process-global journal of *rare, structured*
// events — session state changes, transaction lifecycle, resync
// causes, agent kills/restarts, health transitions, pool exhaustion —
// that is always recording (no enable switch: the event rate is
// control-plane scale, not packet scale) and can be dumped as JSON
//
//  * on demand (tests, CLIs, CI artifacts),
//  * when the HealthWatchdog crosses into `critical`, and
//  * from a crash/abort signal handler.
//
// The storage discipline is the SpanCollector's: every writer thread
// owns a bounded single-writer ring and publishes its cursor with a
// release store. Unlike the span lanes, the lane table here is a fixed
// array of atomic pointers — no mutex anywhere on the read side — so
// the crash handler can walk every published event without taking a
// lock that the crashing thread might already hold. Lanes are never
// freed; a thread that dies leaves its tail of events readable, which
// is exactly what a postmortem wants.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace eden::telemetry {

enum class FlightEventType : std::uint8_t {
  session_connect = 0,  // transport dialed successfully
  session_teardown,     // connection torn down (detail = reason)
  session_backoff,      // reconnect scheduled (a = delay ns)
  resync,               // journal replay issued (a = command count)
  txn_begin,            // client opened a rule-set transaction
  txn_commit,           // client asked for the atomic publish
  txn_abort,            // client rolled the transaction back
  agent_kill,           // farm killed an agent's connectivity
  agent_revive,         // farm let the agent dial again
  agent_restart,        // fresh agent incarnation (new boot id)
  health_transition,    // watchdog state change (a = from, b = to)
  pool_exhausted,       // packet pool ran dry (a = new exhaustions)
  crash,                // crash handler fired (a = signal number)
};
inline constexpr std::size_t kNumFlightEventTypes = 13;

const char* flight_event_name(FlightEventType type);

// Fixed-size so a lane is one flat allocation and the signal-handler
// read path never touches the heap. `detail` is truncated to fit and
// sanitized at record time (quotes/control bytes become '_'), so both
// dump paths can emit it into JSON verbatim.
struct FlightEvent {
  std::int64_t t_ns = 0;
  std::int64_t a = 0;  // event-specific (delay, counts, from-state, ...)
  std::int64_t b = 0;
  char detail[40] = {};
  FlightEventType type = FlightEventType::session_connect;
  std::uint8_t lane = 0;
};

class FlightRecorder {
 public:
  using ClockFn = std::int64_t (*)(void* ctx);

  static FlightRecorder& instance();

  // Records one event on the calling thread's lane. Lock-free after
  // the lane's one-time allocation; safe from any thread.
  void record(FlightEventType type, const char* detail, std::int64_t a = 0,
              std::int64_t b = 0);
  void record(FlightEventType type, const std::string& detail,
              std::int64_t a = 0, std::int64_t b = 0) {
    record(type, detail.c_str(), a, b);
  }

  // Injectable clock, same contract as SpanCollector: sim runs stamp
  // sim time, everything else the calibrated tick clock.
  void set_clock(ClockFn fn, void* ctx);
  std::int64_t now_ns() const;

  // Merged, timestamp-sorted view of every lane (most recent
  // kLaneCapacity events per lane survive wraparound).
  std::vector<FlightEvent> snapshot() const;
  std::uint64_t total_recorded() const;
  std::uint64_t overwritten() const;
  // Events lost because more than kMaxLanes threads recorded.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  // JSON dump: {"schema_version":1,"total":N,...,"events":[...]}.
  std::string dump_json() const;
  // Best-effort async-signal-safe dump: formats each event with
  // snprintf into a stack buffer and write(2)s it to `fd`. No heap, no
  // locks — the crash-handler path.
  void dump_to_fd(int fd) const;
  bool dump_to_file(const char* path) const;

  // Installs SIGABRT/SIGSEGV handlers that dump the journal to `path`
  // (with a trailing crash event) and then re-raise the default
  // disposition. Idempotent; the path is copied into static storage.
  static void install_crash_handler(const char* path);

  // eden_flightrec_* exposition rows appended to `out`.
  void append_prometheus(std::string& out) const;

  // Clears every lane's events (the lanes themselves persist). Test
  // scaffolding only.
  void reset();

  static constexpr std::size_t kLaneCapacity = 1024;
  static constexpr std::size_t kMaxLanes = 256;

 private:
  struct Lane {
    FlightEvent ring[kLaneCapacity];
    std::atomic<std::uint64_t> count{0};
  };

  FlightRecorder() = default;
  Lane* lane_for_this_thread();

  std::atomic<Lane*> lanes_[kMaxLanes] = {};
  std::atomic<std::size_t> lane_count_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<ClockFn> clock_fn_{nullptr};
  std::atomic<void*> clock_ctx_{nullptr};
};

}  // namespace eden::telemetry
