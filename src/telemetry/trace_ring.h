// Bounded sampling packet trace.
//
// The enclave records one-in-N action executions into a fixed-size
// ring: timestamp, the packet's class, the action, the metadata the
// stage attached (Table 2), the execution status and the weighted step
// count. The ring answers "why did this class start dropping?" without
// per-packet logging: the hot path pays a thread-local counter check
// per execution, and only sampled packets take the ring's mutex (a
// 1-in-N cold path by construction).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "netsim/packet.h"

namespace eden::telemetry {

struct TraceRecord {
  std::int64_t ts_ns = 0;              // enclave clock (sim time if injected)
  std::uint32_t class_id = 0xffffffffu;  // interned class; invalid = none
  std::uint32_t action_id = 0;
  std::uint8_t status = 0;             // lang::ExecStatus value
  std::uint64_t steps = 0;             // weighted interpreter steps
  netsim::PacketMeta meta;             // metadata snapshot at execution
};

class TraceRing {
 public:
  // Records one in `sample_every` offered executions (0 disables
  // sampling entirely), keeping the most recent `capacity` records.
  TraceRing(std::size_t capacity, std::uint32_t sample_every)
      : capacity_(capacity == 0 ? 1 : capacity),
        sample_every_(sample_every) {}

  // Sampling decision for the next offered execution. Lock-free; the
  // global ticket keeps the 1-in-N spacing across threads. The enclave
  // hot path does not call this — it paces per thread with a plain
  // countdown against sample_every() to avoid the shared atomic — but
  // it remains the sampling primitive for callers without thread-local
  // state of their own.
  bool should_sample() {
    return sample_every_ != 0 &&
           ticket_.fetch_add(1, std::memory_order_relaxed) % sample_every_ ==
               0;
  }

  void push(const TraceRecord& record);

  // Records oldest-to-newest. Takes the ring mutex; concurrent pushes
  // land before or after the copy, never mid-record.
  std::vector<TraceRecord> snapshot() const;

  // Total records ever pushed (>= capacity() means the ring wrapped).
  std::uint64_t total_recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  std::size_t capacity() const { return capacity_; }
  std::uint32_t sample_every() const { return sample_every_; }

 private:
  const std::size_t capacity_;
  const std::uint32_t sample_every_;
  std::atomic<std::uint64_t> ticket_{0};
  std::atomic<std::uint64_t> recorded_{0};
  mutable std::mutex mutex_;
  std::vector<TraceRecord> ring_;  // grows to capacity_, then wraps
  std::size_t next_ = 0;           // overwrite position once full
};

}  // namespace eden::telemetry
