// Streaming delta telemetry: the wire format behind get_telemetry_delta.
//
// A full telemetry snapshot for a busy enclave is dominated by series
// that never change between polls. The delta protocol ships only what
// moved: the agent keeps the previous snapshot it reported on this
// connection (core/wire.h TelemetryCursor), diffs the fresh snapshot
// against it, and replies with counter increments, bucket-wise
// histogram increments and changed host-series values. The controller
// side (DeltaDecoder) folds each delta into its last-known snapshot,
// so aggregate()/aggregate_tree() run over materialized snapshots and
// never need to know deltas exist.
//
// Epoch/seq handshake — the request echoes the (epoch, seq) the
// controller last decoded; the agent compares it against its cursor:
//
//   match    -> delta against the cursor's snapshot, seq advances by 1
//   mismatch -> full snapshot stamped with a fresh process-global
//               epoch; the controller adopts it wholesale
//
// Any divergence — dropped response, duplicated request, agent restart
// (a new agent means a new cursor), counter regression after a
// clear_all + reinstall — lands in the mismatch arm on the next poll,
// so the protocol self-heals with one full resync and needs no acks.
// Deltas never carry trace rings or bytecode profiles; those refresh
// only on full snapshots (they are bounded and sampled, not
// per-series counters, so diffing them buys nothing).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "telemetry/snapshot.h"

namespace eden::telemetry {

// One get_telemetry_delta reply. `full` distinguishes a complete
// snapshot (replace everything, adopt epoch/seq) from an incremental
// one (enclave entries hold increments; absent enclaves are
// unchanged). JSON shape: {"schema_version":N,"epoch":E,"seq":S,
// "full":bool,"enclaves":[...]} with enclaves in the exact
// append_enclave_json element format.
struct DeltaPayload {
  int schema_version = kTelemetrySchemaVersion;
  std::uint64_t epoch = 0;
  std::uint64_t seq = 0;
  bool full = true;
  std::vector<EnclaveTelemetry> enclaves;
};

// Diff of two snapshots of the same enclave: counter and bucket-wise
// histogram increments, actions/classes present only when they moved
// (new entries ride along whole — they diff against zero), host_series
// restricted to changed keys but carrying ABSOLUTE values (gauges can
// go down). Returns nullopt when any counter or bucket regressed —
// e.g. an action was reinstalled after clear_all — which the caller
// must answer with a full resync. An empty optional'd EnclaveTelemetry
// with everything zero means "unchanged"; use delta_is_empty() to
// decide whether to omit it from the payload.
std::optional<EnclaveTelemetry> delta_between(const EnclaveTelemetry& prev,
                                              const EnclaveTelemetry& now);

// True when a delta produced by delta_between carries no change worth
// shipping (all counter diffs zero, no action/class/host entries).
bool delta_is_empty(const EnclaveTelemetry& delta);

// Folds a delta (as produced by delta_between) into the last-known
// snapshot: counters add, histograms merge bucket-wise, actions and
// classes accumulate by name (new names append), host_series values
// replace. Trace ring and profiles keep the base's contents.
void apply_delta(EnclaveTelemetry& base, const EnclaveTelemetry& delta);

std::string encode_delta_payload(const DeltaPayload& p);

// Parses an encoded payload. Throws std::runtime_error on malformed
// JSON (same contract as parse_telemetry_json).
DeltaPayload parse_delta_payload(const std::string& text);

// Controller-side reassembly: one DeltaDecoder per agent connection.
// Feed every get_telemetry_delta reply through apply(); snapshots()
// is always the materialized full view (possibly stale if the last
// apply was rejected). epoch()/seq() are what the next request must
// echo.
class DeltaDecoder {
 public:
  struct Stats {
    std::uint64_t full_resyncs = 0;   // full payloads adopted
    std::uint64_t deltas_applied = 0; // in-sequence deltas folded in
    std::uint64_t rejected = 0;       // out-of-sequence deltas dropped
  };

  // Returns true when the payload advanced the decoder (full snapshot
  // adopted, or in-sequence delta folded in). A false return means the
  // delta did not match (epoch_, seq_ + 1); the decoder keeps its
  // previous state and the next request's stale echo forces the agent
  // into the full-resync arm.
  bool apply(const DeltaPayload& p);

  // Parse + apply. Returns false on malformed JSON as well.
  bool apply_json(const std::string& text);

  std::uint64_t epoch() const { return epoch_; }
  std::uint64_t seq() const { return seq_; }
  bool synced() const { return synced_; }
  const std::vector<EnclaveTelemetry>& snapshots() const { return snapshots_; }
  const Stats& stats() const { return stats_; }

 private:
  std::uint64_t epoch_ = 0;
  std::uint64_t seq_ = 0;
  bool synced_ = false;  // have we ever adopted a full snapshot?
  std::vector<EnclaveTelemetry> snapshots_;
  Stats stats_;
};

}  // namespace eden::telemetry
