#include "telemetry/collector.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "telemetry/json.h"

namespace eden::telemetry {

TelemetryCollector::TelemetryCollector(CollectorConfig config, ClockFn clock)
    : config_(config), clock_(std::move(clock)) {
  if (config_.threads == 0) config_.threads = 1;
  if (config_.retention_depth < 2) config_.retention_depth = 2;
  if (config_.threads > 1) {
    pool_.reserve(config_.threads);
    for (std::size_t w = 0; w < config_.threads; ++w) {
      pool_.emplace_back([this, w]() { worker_loop(w); });
    }
  }
}

TelemetryCollector::~TelemetryCollector() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : pool_) t.join();
}

std::size_t TelemetryCollector::add_source(CollectorSource source) {
  auto state = std::make_unique<SourceState>();
  state->source = std::move(source);
  state->status.name = state->source.name;
  sources_.push_back(std::move(state));
  return sources_.size() - 1;
}

const AgentStatus& TelemetryCollector::status(std::size_t i) const {
  return sources_.at(i)->status;
}

std::vector<AgentStatus> TelemetryCollector::statuses() const {
  std::vector<AgentStatus> out;
  out.reserve(sources_.size());
  for (const auto& s : sources_) out.push_back(s->status);
  return out;
}

void TelemetryCollector::record_point(SourceState& s,
                                      const std::string& series, double value,
                                      std::uint64_t now) {
  std::deque<SeriesPoint>& ring = s.rings[series];
  ring.push_back({now, value});
  while (ring.size() > config_.retention_depth) ring.pop_front();
}

void TelemetryCollector::record_series(SourceState& s, std::uint64_t now) {
  std::uint64_t packets = 0;
  std::uint64_t matched = 0;
  std::uint64_t dropped = 0;
  std::uint64_t errors = 0;
  for (const EnclaveTelemetry& e : s.snapshots) {
    packets += e.packets;
    matched += e.matched;
    dropped += e.dropped_by_action;
    for (const ActionTelemetry& a : e.actions) errors += a.errors;
  }
  record_point(s, "packets", static_cast<double>(packets), now);
  record_point(s, "matched", static_cast<double>(matched), now);
  record_point(s, "dropped_by_action", static_cast<double>(dropped), now);
  record_point(s, "action_errors", static_cast<double>(errors), now);
  for (const EnclaveTelemetry& e : s.snapshots) {
    for (const auto& [name, value] : e.host_series) {
      record_point(s, name, value, now);
    }
  }
  if (s.has_session) {
    record_point(s, "session.connected", s.session.ready ? 1.0 : 0.0, now);
    record_point(s, "session.liveness_timeouts",
                 static_cast<double>(s.session.liveness_timeouts), now);
    record_point(s, "session.request_timeouts",
                 static_cast<double>(s.session.request_timeouts), now);
    record_point(s, "session.responses_error",
                 static_cast<double>(s.session.responses_error), now);
    record_point(s, "session.corrupt_streams",
                 static_cast<double>(s.session.corrupt_streams), now);
    record_point(s, "session.resyncs",
                 static_cast<double>(s.session.resyncs), now);
  }
}

void TelemetryCollector::poll_source(SourceState& s, std::uint64_t now) {
  s.status.last_attempt_ns = now;
  ++s.status.polls;
  std::string payload;
  bool advanced = false;
  bool got_payload = false;
  if (s.source.fetch_delta) {
    payload = s.source.fetch_delta(s.decoder.epoch(), s.decoder.seq());
    got_payload = !payload.empty();
    if (got_payload) {
      advanced = s.decoder.apply_json(payload);
      if (advanced) s.snapshots = s.decoder.snapshots();
    }
    const DeltaDecoder::Stats& ds = s.decoder.stats();
    s.status.full_resyncs = ds.full_resyncs;
    s.status.deltas_applied = ds.deltas_applied;
    s.status.rejected_payloads = ds.rejected;
  } else if (s.source.fetch_full) {
    payload = s.source.fetch_full();
    got_payload = !payload.empty();
    if (got_payload) {
      try {
        ParsedDump dump = parse_telemetry_json(payload);
        s.snapshots = std::move(dump.enclaves);
        ++s.status.full_resyncs;
        advanced = true;
      } catch (const std::runtime_error&) {
        ++s.status.rejected_payloads;
      }
    }
  }
  s.status.last_payload_bytes = payload.size();
  s.status.payload_bytes_total += payload.size();
  if (advanced) {
    s.status.reachable = true;
    s.status.consecutive_failures = 0;
    s.status.last_success_ns = now;
  } else {
    // Either unreachable, or a payload that could not be folded in
    // (out-of-sequence delta after a dropped reply) — the stale echo
    // forces the agent into the full-resync arm next poll. Both keep
    // the last-known snapshots in the aggregate.
    s.status.reachable = got_payload;
    ++s.status.failures;
    ++s.status.consecutive_failures;
  }
  s.status.stale =
      now - s.status.last_success_ns >= config_.stale_after_ns;
  if (s.source.session) {
    s.session = s.source.session();
    s.has_session = true;
  }
}

const AggregateTelemetry& TelemetryCollector::poll() {
  const std::uint64_t now = clock_();
  const std::size_t n = sources_.size();
  if (n == 0) {
    latest_ = {};
    last_poll_ns_ = now;
    ++polls_;
    return latest_;
  }
  const std::size_t chunks = std::min(config_.threads, n);
  const std::size_t per = (n + chunks - 1) / chunks;
  std::vector<AggregateTelemetry> partials(chunks);

  auto run_chunk = [this, now, n, per, &partials](std::size_t c) {
    const std::size_t lo = std::min(c * per, n);
    const std::size_t hi = std::min(lo + per, n);
    std::vector<EnclaveTelemetry> snaps;
    std::vector<SessionTelemetry> sessions;
    for (std::size_t i = lo; i < hi; ++i) {
      SourceState& s = *sources_[i];
      poll_source(s, now);
      record_series(s, now);
      snaps.insert(snaps.end(), s.snapshots.begin(), s.snapshots.end());
      if (s.has_session) sessions.push_back(s.session);
    }
    partials[c] = aggregate(std::move(snaps));
    partials[c].sessions = std::move(sessions);
  };

  if (chunks <= 1 || pool_.empty()) {
    for (std::size_t c = 0; c < chunks; ++c) run_chunk(c);
  } else {
    {
      std::lock_guard<std::mutex> lock(mu_);
      chunk_tasks_.assign(chunks, {});
      for (std::size_t c = 0; c < chunks; ++c) {
        chunk_tasks_[c] = [&run_chunk, c]() { run_chunk(c); };
      }
    }
    run_chunks(chunks);
  }

  for (std::size_t stride = 1; stride < partials.size(); stride *= 2) {
    for (std::size_t i = 0; i + stride < partials.size(); i += 2 * stride) {
      partials[i] = merge_aggregates(std::move(partials[i]),
                                     std::move(partials[i + stride]));
    }
  }
  latest_ = std::move(partials[0]);
  last_poll_ns_ = now;
  ++polls_;
  last_poll_duration_ns_ = clock_() - now;
  return latest_;
}

void TelemetryCollector::run_chunks(std::size_t /*chunks*/) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending_ = pool_.size();  // every worker checks in, tasked or not
    ++generation_;
  }
  cv_work_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this]() { return pending_ == 0; });
  chunk_tasks_.clear();
}

void TelemetryCollector::worker_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock,
                    [&]() { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      if (worker < chunk_tasks_.size()) task = chunk_tasks_[worker];
    }
    if (task) task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_;
    }
    cv_done_.notify_one();
  }
}

std::optional<double> TelemetryCollector::latest_value(
    std::size_t i, const std::string& series) const {
  const SourceState& s = *sources_.at(i);
  if (series == "collector.stale") return s.status.stale ? 1.0 : 0.0;
  if (series == "collector.consecutive_failures") {
    return static_cast<double>(s.status.consecutive_failures);
  }
  auto it = s.rings.find(series);
  if (it == s.rings.end() || it->second.empty()) return std::nullopt;
  return it->second.back().value;
}

std::optional<double> TelemetryCollector::rate_per_sec(
    std::size_t i, const std::string& series) const {
  const SourceState& s = *sources_.at(i);
  auto it = s.rings.find(series);
  if (it == s.rings.end() || it->second.size() < 2) return std::nullopt;
  const SeriesPoint& first = it->second.front();
  const SeriesPoint& last = it->second.back();
  if (last.t_ns <= first.t_ns) return std::nullopt;
  return (last.value - first.value) * 1e9 /
         static_cast<double>(last.t_ns - first.t_ns);
}

const std::deque<SeriesPoint>* TelemetryCollector::series_history(
    std::size_t i, const std::string& series) const {
  const SourceState& s = *sources_.at(i);
  auto it = s.rings.find(series);
  return it == s.rings.end() ? nullptr : &it->second;
}

void TelemetryCollector::append_prometheus(std::string& out) const {
  auto row = [&out](const char* name, const std::string& agent,
                    std::uint64_t value) {
    out += name;
    if (!agent.empty()) {
      out += "{agent=\"";
      out += agent;
      out += "\"}";
    }
    out += ' ';
    out += std::to_string(value);
    out += '\n';
  };
  out += "# TYPE eden_collector_agents gauge\n";
  row("eden_collector_agents", {}, sources_.size());
  out += "# TYPE eden_collector_polls_total counter\n";
  row("eden_collector_polls_total", {}, polls_);
  out += "# TYPE eden_collector_last_poll_duration_ns gauge\n";
  row("eden_collector_last_poll_duration_ns", {}, last_poll_duration_ns_);
  out += "# TYPE eden_collector_agent_up gauge\n";
  for (const auto& s : sources_) {
    row("eden_collector_agent_up", s->status.name,
        s->status.reachable ? 1 : 0);
  }
  out += "# TYPE eden_collector_agent_stale gauge\n";
  for (const auto& s : sources_) {
    row("eden_collector_agent_stale", s->status.name,
        s->status.stale ? 1 : 0);
  }
  out += "# TYPE eden_collector_consecutive_failures gauge\n";
  for (const auto& s : sources_) {
    row("eden_collector_consecutive_failures", s->status.name,
        s->status.consecutive_failures);
  }
  out += "# TYPE eden_collector_full_resyncs_total counter\n";
  for (const auto& s : sources_) {
    row("eden_collector_full_resyncs_total", s->status.name,
        s->status.full_resyncs);
  }
  out += "# TYPE eden_collector_deltas_applied_total counter\n";
  for (const auto& s : sources_) {
    row("eden_collector_deltas_applied_total", s->status.name,
        s->status.deltas_applied);
  }
  out += "# TYPE eden_collector_rejected_payloads_total counter\n";
  for (const auto& s : sources_) {
    row("eden_collector_rejected_payloads_total", s->status.name,
        s->status.rejected_payloads);
  }
  out += "# TYPE eden_collector_payload_bytes_total counter\n";
  for (const auto& s : sources_) {
    row("eden_collector_payload_bytes_total", s->status.name,
        s->status.payload_bytes_total);
  }
}

}  // namespace eden::telemetry
