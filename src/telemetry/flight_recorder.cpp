#include "telemetry/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "telemetry/metrics.h"

namespace eden::telemetry {

const char* flight_event_name(FlightEventType type) {
  switch (type) {
    case FlightEventType::session_connect: return "session_connect";
    case FlightEventType::session_teardown: return "session_teardown";
    case FlightEventType::session_backoff: return "session_backoff";
    case FlightEventType::resync: return "resync";
    case FlightEventType::txn_begin: return "txn_begin";
    case FlightEventType::txn_commit: return "txn_commit";
    case FlightEventType::txn_abort: return "txn_abort";
    case FlightEventType::agent_kill: return "agent_kill";
    case FlightEventType::agent_revive: return "agent_revive";
    case FlightEventType::agent_restart: return "agent_restart";
    case FlightEventType::health_transition: return "health_transition";
    case FlightEventType::pool_exhausted: return "pool_exhausted";
    case FlightEventType::crash: return "crash";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::set_clock(ClockFn fn, void* ctx) {
  clock_ctx_.store(ctx, std::memory_order_relaxed);
  clock_fn_.store(fn, std::memory_order_relaxed);
}

std::int64_t FlightRecorder::now_ns() const {
  const ClockFn fn = clock_fn_.load(std::memory_order_relaxed);
  if (fn != nullptr) {
    return fn(clock_ctx_.load(std::memory_order_relaxed));
  }
  return static_cast<std::int64_t>(ticks_to_ns(now_ticks()));
}

FlightRecorder::Lane* FlightRecorder::lane_for_this_thread() {
  thread_local Lane* lane = nullptr;
  thread_local bool exhausted = false;
  if (lane == nullptr && !exhausted) {
    const std::size_t idx =
        lane_count_.fetch_add(1, std::memory_order_relaxed);
    if (idx >= kMaxLanes) {
      // More writer threads than lanes: shed this thread's events
      // rather than sharing a ring (which would break the single-writer
      // invariant the lock-free publish depends on).
      exhausted = true;
      return nullptr;
    }
    Lane* fresh = new Lane();
    lanes_[idx].store(fresh, std::memory_order_release);
    lane = fresh;
  }
  return lane;
}

void FlightRecorder::record(FlightEventType type, const char* detail,
                            std::int64_t a, std::int64_t b) {
  Lane* lane = lane_for_this_thread();
  if (lane == nullptr) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t n = lane->count.load(std::memory_order_relaxed);
  FlightEvent& slot = lane->ring[n % kLaneCapacity];
  slot.t_ns = now_ns();
  slot.a = a;
  slot.b = b;
  slot.type = type;
  slot.lane = static_cast<std::uint8_t>(
      std::min<std::size_t>(internal::thread_slot(), 255));
  // Copy + sanitize in one pass so the JSON emitters never need to
  // escape: quotes, backslashes and control bytes become '_'.
  std::size_t i = 0;
  if (detail != nullptr) {
    for (; i + 1 < sizeof slot.detail && detail[i] != '\0'; ++i) {
      const char c = detail[i];
      slot.detail[i] =
          (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20)
              ? '_'
              : c;
    }
  }
  slot.detail[i] = '\0';
  lane->count.store(n + 1, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> out;
  for (std::size_t l = 0; l < kMaxLanes; ++l) {
    const Lane* lane = lanes_[l].load(std::memory_order_acquire);
    if (lane == nullptr) continue;
    const std::uint64_t n = lane->count.load(std::memory_order_acquire);
    const std::uint64_t keep = std::min<std::uint64_t>(n, kLaneCapacity);
    for (std::uint64_t i = n - keep; i < n; ++i) {
      out.push_back(lane->ring[i % kLaneCapacity]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const FlightEvent& x, const FlightEvent& y) {
                     return x.t_ns < y.t_ns;
                   });
  return out;
}

std::uint64_t FlightRecorder::total_recorded() const {
  std::uint64_t total = 0;
  for (std::size_t l = 0; l < kMaxLanes; ++l) {
    const Lane* lane = lanes_[l].load(std::memory_order_acquire);
    if (lane != nullptr) {
      total += lane->count.load(std::memory_order_acquire);
    }
  }
  return total;
}

std::uint64_t FlightRecorder::overwritten() const {
  std::uint64_t total = 0;
  for (std::size_t l = 0; l < kMaxLanes; ++l) {
    const Lane* lane = lanes_[l].load(std::memory_order_acquire);
    if (lane == nullptr) continue;
    const std::uint64_t n = lane->count.load(std::memory_order_acquire);
    if (n > kLaneCapacity) total += n - kLaneCapacity;
  }
  return total;
}

void FlightRecorder::reset() {
  for (std::size_t l = 0; l < kMaxLanes; ++l) {
    Lane* lane = lanes_[l].load(std::memory_order_acquire);
    if (lane == nullptr) continue;
    for (auto& slot : lane->ring) slot = FlightEvent{};
    lane->count.store(0, std::memory_order_release);
  }
  dropped_.store(0, std::memory_order_relaxed);
}

namespace {

// Shared row formatter so the heap path and the signal path emit
// byte-identical events. Returns bytes written (no trailing comma).
int format_event(char* buf, std::size_t cap, const FlightEvent& e) {
  return std::snprintf(
      buf, cap,
      "{\"t_ns\":%lld,\"type\":\"%s\",\"detail\":\"%s\","
      "\"a\":%lld,\"b\":%lld,\"lane\":%u}",
      static_cast<long long>(e.t_ns), flight_event_name(e.type), e.detail,
      static_cast<long long>(e.a), static_cast<long long>(e.b),
      static_cast<unsigned>(e.lane));
}

int format_header(char* buf, std::size_t cap, std::uint64_t total,
                  std::uint64_t overwritten, std::uint64_t dropped) {
  return std::snprintf(
      buf, cap,
      "{\"schema_version\":1,\"total\":%llu,\"overwritten\":%llu,"
      "\"dropped\":%llu,\"events\":[\n",
      static_cast<unsigned long long>(total),
      static_cast<unsigned long long>(overwritten),
      static_cast<unsigned long long>(dropped));
}

void write_all(int fd, const char* buf, std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, buf + off, len - off);
    if (n <= 0) return;  // best effort — nothing sane to do on error
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

std::string FlightRecorder::dump_json() const {
  const std::vector<FlightEvent> events = snapshot();
  char buf[256];
  std::string out;
  out.reserve(events.size() * 96 + 128);
  format_header(buf, sizeof buf, total_recorded(), overwritten(), dropped());
  out += buf;
  for (std::size_t i = 0; i < events.size(); ++i) {
    format_event(buf, sizeof buf, events[i]);
    out += buf;
    out += i + 1 < events.size() ? ",\n" : "\n";
  }
  out += "]}\n";
  return out;
}

void FlightRecorder::dump_to_fd(int fd) const {
  char buf[256];
  int n = format_header(buf, sizeof buf, total_recorded(), overwritten(),
                        dropped());
  write_all(fd, buf, static_cast<std::size_t>(n));
  // Walk lanes directly — snapshot() allocates, which the signal path
  // must not. Lanes dump in table order instead of merged time order;
  // every event carries t_ns, so readers (and eden-trace) re-sort.
  bool first = true;
  for (std::size_t l = 0; l < kMaxLanes; ++l) {
    const Lane* lane = lanes_[l].load(std::memory_order_acquire);
    if (lane == nullptr) continue;
    const std::uint64_t cnt = lane->count.load(std::memory_order_acquire);
    const std::uint64_t keep = std::min<std::uint64_t>(cnt, kLaneCapacity);
    for (std::uint64_t i = cnt - keep; i < cnt; ++i) {
      if (!first) write_all(fd, ",\n", 2);
      first = false;
      n = format_event(buf, sizeof buf, lane->ring[i % kLaneCapacity]);
      write_all(fd, buf, static_cast<std::size_t>(n));
    }
  }
  write_all(fd, "\n]}\n", 4);
}

bool FlightRecorder::dump_to_file(const char* path) const {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  dump_to_fd(fd);
  ::close(fd);
  return true;
}

namespace {

char g_crash_dump_path[512] = {};

void crash_handler(int sig) {
  FlightRecorder& rec = FlightRecorder::instance();
  const int fd =
      ::open(g_crash_dump_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    // The crash event itself is stamped via record() only if this
    // thread already owns a lane (lane allocation would call new, which
    // is off-limits here). A standalone trailer line carries the signal
    // number either way.
    rec.dump_to_fd(fd);
    char buf[96];
    const int n = std::snprintf(
        buf, sizeof buf, "{\"crash_signal\":%d,\"t_ns\":%lld}\n", sig,
        static_cast<long long>(rec.now_ns()));
    write_all(fd, buf, static_cast<std::size_t>(n));
    ::close(fd);
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

void FlightRecorder::install_crash_handler(const char* path) {
  std::snprintf(g_crash_dump_path, sizeof g_crash_dump_path, "%s", path);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = crash_handler;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGABRT, &sa, nullptr);
  ::sigaction(SIGSEGV, &sa, nullptr);
}

void FlightRecorder::append_prometheus(std::string& out) const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "eden_flightrec_events_total %llu\n"
                "eden_flightrec_overwritten_total %llu\n"
                "eden_flightrec_dropped_total %llu\n",
                static_cast<unsigned long long>(total_recorded()),
                static_cast<unsigned long long>(overwritten()),
                static_cast<unsigned long long>(dropped()));
  out += buf;
}

}  // namespace eden::telemetry
