// Cross-layer message lifecycle tracing.
//
// The paper's central mechanism is metadata travelling with a message
// down the whole host stack (stage -> host stack -> enclave -> NIC,
// Section 3.3). Spans piggyback on exactly that channel: a 64-bit trace
// id is allocated at stage classification time (sampled 1-in-N with the
// same per-thread countdown pacing the PR 2 instruments use), stored in
// `PacketMeta::trace_id`, and every layer that already touches the
// packet records a timestamped hop event when — and only when — the id
// is non-zero. The off cost is therefore one predictable branch per
// hop; with tracing disabled entirely no branch changes outcome and no
// shared state is touched.
//
// Events land in lock-free per-thread lanes: each writer thread owns a
// bounded ring (single writer, no CAS, no locks) and publishes its
// write cursor with a release store. snapshot() merges the lanes into
// one timestamp-sorted vector; under concurrent writers it is a
// best-effort read of everything published so far (exact once writers
// are quiescent, which is how the exporters use it).
//
// Export is Chrome/Perfetto `trace_event` JSON (catapult format): each
// traced message becomes its own track (tid = trace id), queueing waits
// render as duration slices, point hops as instants. Load the output of
// `tools/eden-trace` (or the `get_spans` wire command) in
// https://ui.perfetto.dev.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace eden::telemetry {

// One hop of a message's journey down (or off) the host stack.
enum class Hop : std::uint8_t {
  stage_classify = 0,  // stage assigned classes/metadata to the message
  host_enqueue,        // packet entered the host stack's transmit path
  host_dequeue,        // packet left the post-enclave stack for the NIC
  tb_wait,             // time spent queued in a NIC token bucket
  enclave_match,       // enclave classified + matched the packet
  action_exec,         // action function ran (aux = action id)
  enclave_drop,        // action asked for the packet to be dropped
  nic_tx,              // packet handed to the wire
  nic_drop,            // packet dropped at the NIC layer
};
inline constexpr std::size_t kNumHops = 9;

const char* hop_name(Hop hop);

// One recorded event. dur_ns == 0 means a point event; dur_ns > 0 means
// a completed slice that *ended* at ts_ns (the renderer rewinds the
// start so waits display with their real extent).
struct SpanEvent {
  std::int64_t trace_id = 0;
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = 0;
  std::int64_t aux = 0;  // hop-specific: bytes, action id, queue id, ...
  Hop hop = Hop::stage_classify;
  std::uint8_t lane = 0;  // writer lane (diagnostic)
};

// Process-global span sink. Global on purpose: a trace crosses layers
// (stage, stack, enclave, NIC) that share nothing but the packet, so
// the collector is the one rendezvous point, exactly like a kernel
// trace buffer. All hot-path methods are safe to call from any thread.
class SpanCollector {
 public:
  using ClockFn = std::int64_t (*)(void* ctx);

  static SpanCollector& instance();

  // Turns tracing on at 1-in-`sample_every` message sampling (0 turns
  // it off). Lanes are (re)sized to `lane_capacity` events only when it
  // changes, so repeated enable() calls from multiple enclaves are
  // cheap and idempotent.
  void enable(std::uint32_t sample_every,
              std::size_t lane_capacity = kDefaultLaneCapacity);
  void disable() { sample_every_.store(0, std::memory_order_relaxed); }
  bool enabled() const {
    return sample_every_.load(std::memory_order_relaxed) != 0;
  }
  std::uint32_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }

  // Timestamps come from this clock; inject the simulator clock so sim
  // runs emit sim-time spans (defaults to the calibrated tick clock).
  void set_clock(ClockFn fn, void* ctx);
  std::int64_t now_ns() const;

  // Unconditionally allocates a fresh trace id (never 0, never reused).
  std::int64_t start_trace() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  // Paced allocation: every `sample_every()`-th call from each thread
  // returns a fresh id, all others return 0. This is the stage-side
  // sampling decision. Inline — the enclave calls it per packet, so the
  // common not-sampled path must stay a load, a TLS decrement and a
  // branch. Owns its countdown rather than using sample_1_in(): that
  // helper's per-thread state is shared across every call site, and the
  // enclave already paces its instruments with it.
  std::int64_t maybe_start_trace() {
    const std::uint32_t n = sample_every_.load(std::memory_order_relaxed);
    if (n == 0) return 0;
    thread_local std::uint32_t countdown = 1;
    if (--countdown != 0) return 0;
    countdown = n;
    return start_trace();
  }

  // Records one event on the calling thread's lane. Callers gate on
  // `trace_id != 0` themselves — that branch is the entire per-hop cost
  // for untraced packets.
  void record(std::int64_t trace_id, Hop hop, std::int64_t ts_ns,
              std::int64_t dur_ns = 0, std::int64_t aux = 0);
  void record_now(std::int64_t trace_id, Hop hop, std::int64_t aux = 0) {
    record(trace_id, hop, now_ns(), 0, aux);
  }

  // Merged, timestamp-sorted view of every lane (most recent
  // `lane_capacity` events per lane survive wraparound).
  std::vector<SpanEvent> snapshot() const;
  std::uint64_t total_recorded() const;
  // Events overwritten by ring wraparound.
  std::uint64_t overwritten() const;

  // Drops all recorded events and resets the id allocator; keeps the
  // sampling/clock configuration. Test and bench scaffolding only.
  void reset();

  static constexpr std::size_t kDefaultLaneCapacity = 16384;

 private:
  // Single-writer bounded ring. The owning thread writes the slot, then
  // publishes with a release store of the cursor; readers acquire the
  // cursor and walk back at most `ring.size()` slots.
  struct Lane {
    std::vector<SpanEvent> ring;
    std::atomic<std::uint64_t> count{0};
  };

  SpanCollector();
  Lane& lane_for_this_thread();

  std::atomic<std::uint32_t> sample_every_{0};
  std::atomic<std::int64_t> next_id_{1};
  std::atomic<ClockFn> clock_fn_{nullptr};
  std::atomic<void*> clock_ctx_{nullptr};

  // Lane list: stable addresses (unique_ptr), appended under the mutex
  // on first use per thread, then never moved or freed.
  mutable std::mutex lanes_mutex_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::size_t lane_capacity_ = kDefaultLaneCapacity;
};

// Renders events as Chrome `trace_event` JSON ({"traceEvents": [...]}).
// pid is 1 ("eden"), tid is the trace id, so Perfetto shows one track
// per traced message. Events with dur_ns > 0 become "X" complete slices
// (ts rewound to the start), others "i" instants.
std::string to_trace_event_json(const std::vector<SpanEvent>& events);

}  // namespace eden::telemetry
