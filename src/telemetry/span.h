// Cross-layer message lifecycle tracing.
//
// The paper's central mechanism is metadata travelling with a message
// down the whole host stack (stage -> host stack -> enclave -> NIC,
// Section 3.3). Spans piggyback on exactly that channel: a 64-bit trace
// id is allocated at stage classification time (sampled 1-in-N with the
// same per-thread countdown pacing the PR 2 instruments use), stored in
// `PacketMeta::trace_id`, and every layer that already touches the
// packet records a timestamped hop event when — and only when — the id
// is non-zero. The off cost is therefore one predictable branch per
// hop; with tracing disabled entirely no branch changes outcome and no
// shared state is touched.
//
// Events land in lock-free per-thread lanes: each writer thread owns a
// bounded ring (single writer, no CAS, no locks) and publishes its
// write cursor with a release store. snapshot() merges the lanes into
// one timestamp-sorted vector; under concurrent writers it is a
// best-effort read of everything published so far (exact once writers
// are quiescent, which is how the exporters use it).
//
// Export is Chrome/Perfetto `trace_event` JSON (catapult format): each
// traced message becomes its own track (tid = trace id), queueing waits
// render as duration slices, point hops as instants. Load the output of
// `tools/eden-trace` (or the `get_spans` wire command) in
// https://ui.perfetto.dev.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace eden::telemetry {

// One hop of a message's journey down (or off) the host stack — or,
// since the control plane learned to trace itself, one hop of a wire
// command's journey through the session layer. The cp_* values follow
// a controller-side operation (txn, resync, delta poll) across
// EnclaveSession, FaultyTransport and EnclaveAgent; they ride the same
// collector as the data-plane hops so one snapshot holds both worlds.
enum class Hop : std::uint8_t {
  stage_classify = 0,  // stage assigned classes/metadata to the message
  host_enqueue,        // packet entered the host stack's transmit path
  host_dequeue,        // packet left the post-enclave stack for the NIC
  tb_wait,             // time spent queued in a NIC token bucket
  enclave_match,       // enclave classified + matched the packet
  action_exec,         // action function ran (aux = action id)
  enclave_drop,        // action asked for the packet to be dropped
  nic_tx,              // packet handed to the wire
  nic_drop,            // packet dropped at the NIC layer
  // --- Control-plane hops (PR 8) -----------------------------------
  cp_txn_begin,        // controller opened a rule-set transaction
  cp_txn_commit,       // controller asked for the atomic publish
  cp_txn_abort,        // controller rolled the transaction back
  cp_send,             // request frame left the session (aux = req id)
  cp_response,         // response correlated; dur = request round trip
  cp_timeout,          // request timeout fired at the pipeline head
  cp_teardown,         // session tore the connection down
  cp_backoff,          // reconnect scheduled (aux = delay ns)
  cp_resync,           // journal replay issued (aux = command count)
  cp_poll,             // telemetry delta poll issued (aux = epoch)
  cp_agent_apply,      // agent decoded + applied (aux = wire opcode)
  cp_agent_publish,    // agent-side commit published an RCU snapshot
  cp_fault_drop,       // fault injector discarded the send
  cp_fault_delay,      // fault injector held the send back
  cp_fault_dup,        // fault injector duplicated the send
  cp_fault_truncate,   // fault injector cut the send short
  cp_fault_disconnect, // fault injector hard-closed the link
};
inline constexpr std::size_t kNumHops = 26;

// Version stamp of the span export format. 2 added span_id/parent_id
// causal links and the top-level field itself; consumers warn (never
// crash) on anything newer.
inline constexpr int kSpanSchemaVersion = 2;

const char* hop_name(Hop hop);

// One recorded event. dur_ns == 0 means a point event; dur_ns > 0 means
// a completed slice that *ended* at ts_ns (the renderer rewinds the
// start so waits display with their real extent). span_id/parent_id
// carry the causal tree within a trace: 0 means "unlinked" (data-plane
// hops, which are totally ordered by timestamp, never set them).
struct SpanEvent {
  std::int64_t trace_id = 0;
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = 0;
  std::int64_t aux = 0;  // hop-specific: bytes, action id, queue id, ...
  std::int64_t span_id = 0;    // this event's node in the causal tree
  std::int64_t parent_id = 0;  // span_id of the causing event (0 = root)
  Hop hop = Hop::stage_classify;
  std::uint8_t lane = 0;  // writer lane (diagnostic)
};

// Process-global span sink. Global on purpose: a trace crosses layers
// (stage, stack, enclave, NIC) that share nothing but the packet, so
// the collector is the one rendezvous point, exactly like a kernel
// trace buffer. All hot-path methods are safe to call from any thread.
class SpanCollector {
 public:
  using ClockFn = std::int64_t (*)(void* ctx);

  static SpanCollector& instance();

  // Turns tracing on at 1-in-`sample_every` message sampling (0 turns
  // it off). Lanes are (re)sized to `lane_capacity` events only when it
  // changes, so repeated enable() calls from multiple enclaves are
  // cheap and idempotent.
  void enable(std::uint32_t sample_every,
              std::size_t lane_capacity = kDefaultLaneCapacity);
  void disable() { sample_every_.store(0, std::memory_order_relaxed); }
  bool enabled() const {
    return sample_every_.load(std::memory_order_relaxed) != 0;
  }
  std::uint32_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }

  // Timestamps come from this clock; inject the simulator clock so sim
  // runs emit sim-time spans (defaults to the calibrated tick clock).
  void set_clock(ClockFn fn, void* ctx);
  std::int64_t now_ns() const;

  // Unconditionally allocates a fresh trace id (never 0, never reused).
  std::int64_t start_trace() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  // Span ids share the trace-id allocator: both only need process-wide
  // uniqueness, and one counter means a controller-side dump and an
  // agent-side dump merged by eden-trace can never collide on either.
  std::int64_t next_span_id() {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  // Paced allocation: every `sample_every()`-th call from each thread
  // returns a fresh id, all others return 0. This is the stage-side
  // sampling decision. Inline — the enclave calls it per packet, so the
  // common not-sampled path must stay a load, a TLS decrement and a
  // branch. Owns its countdown rather than using sample_1_in(): that
  // helper's per-thread state is shared across every call site, and the
  // enclave already paces its instruments with it.
  std::int64_t maybe_start_trace() {
    const std::uint32_t n = sample_every_.load(std::memory_order_relaxed);
    if (n == 0) return 0;
    thread_local std::uint32_t countdown = 1;
    if (--countdown != 0) return 0;
    countdown = n;
    return start_trace();
  }

  // Records one event on the calling thread's lane. Callers gate on
  // `trace_id != 0` themselves — that branch is the entire per-hop cost
  // for untraced packets.
  void record(std::int64_t trace_id, Hop hop, std::int64_t ts_ns,
              std::int64_t dur_ns = 0, std::int64_t aux = 0,
              std::int64_t span_id = 0, std::int64_t parent_id = 0);
  void record_now(std::int64_t trace_id, Hop hop, std::int64_t aux = 0) {
    record(trace_id, hop, now_ns(), 0, aux);
  }
  // Linked variant: allocates a span id, records the event as a child
  // of `parent_id` and returns the new span id (0 when untraced).
  std::int64_t record_linked(std::int64_t trace_id, Hop hop,
                             std::int64_t parent_id, std::int64_t ts_ns,
                             std::int64_t dur_ns = 0, std::int64_t aux = 0) {
    if (trace_id == 0) return 0;
    const std::int64_t span = next_span_id();
    record(trace_id, hop, ts_ns, dur_ns, aux, span, parent_id);
    return span;
  }

  // Merged, timestamp-sorted view of every lane (most recent
  // `lane_capacity` events per lane survive wraparound).
  std::vector<SpanEvent> snapshot() const;
  std::uint64_t total_recorded() const;
  // Events overwritten by ring wraparound.
  std::uint64_t overwritten() const;

  // Drops all recorded events and resets the id allocator; keeps the
  // sampling/clock configuration. Test and bench scaffolding only.
  void reset();

  static constexpr std::size_t kDefaultLaneCapacity = 16384;

 private:
  // Single-writer bounded ring. The owning thread writes the slot, then
  // publishes with a release store of the cursor; readers acquire the
  // cursor and walk back at most `ring.size()` slots.
  struct Lane {
    std::vector<SpanEvent> ring;
    std::atomic<std::uint64_t> count{0};
  };

  SpanCollector();
  Lane& lane_for_this_thread();

  std::atomic<std::uint32_t> sample_every_{0};
  std::atomic<std::int64_t> next_id_{1};
  std::atomic<ClockFn> clock_fn_{nullptr};
  std::atomic<void*> clock_ctx_{nullptr};

  // Lane list: stable addresses (unique_ptr), appended under the mutex
  // on first use per thread, then never moved or freed.
  mutable std::mutex lanes_mutex_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::size_t lane_capacity_ = kDefaultLaneCapacity;
};

// Renders events as Chrome `trace_event` JSON ({"traceEvents": [...]}).
// pid is 1 ("eden"), tid is the trace id, so Perfetto shows one track
// per traced message. Events with dur_ns > 0 become "X" complete slices
// (ts rewound to the start), others "i" instants. Causally-linked
// events carry "span"/"parent" args; the dump ends with a top-level
// "schema_version" so older readers of newer dumps warn instead of
// silently misparsing.
std::string to_trace_event_json(const std::vector<SpanEvent>& events);

}  // namespace eden::telemetry
