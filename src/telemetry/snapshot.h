// Structured telemetry snapshots and their exposition formats.
//
// The enclave serializes its counters, histograms and trace ring into
// an EnclaveTelemetry value (names already resolved — class ids become
// "stage.ruleset.class" strings, statuses become their lang names), the
// controller pulls one from every registered enclave, and aggregate()
// merges them by action and class name so a deployment-wide view needs
// no shared state. Two renderings: Prometheus text exposition for
// scraping, and a JSON dump the benches write next to their results.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "lang/interpreter.h"
#include "netsim/packet.h"
#include "telemetry/metrics.h"
#include "telemetry/profile.h"

namespace eden::telemetry {

// Version stamp written into every JSON dump ("schema_version"). v1 is
// the unversioned format of the first telemetry PRs (readers treat a
// missing stamp as v1); v2 added the stamp itself, per-enclave host
// series and the delta-payload format (telemetry/delta.h); v3 added the
// per-enclave message-state section (eden_state_* series: live /
// created / expired / evicted / resizes and the probe-length
// histogram). Bump on any change a reader could misparse; eden-stat
// warns on versions it does not know instead of guessing silently.
inline constexpr int kTelemetrySchemaVersion = 3;

// Per-enclave message-state (FlowStore) section: totals across the
// enclave's per-action stores. `probe_len` is the sampled
// open-addressing probe-length histogram — its tail widening is the
// early signal that a store needs a resize or the hash is clustering.
struct StateTelemetry {
  bool present = false;  // any action holds message state
  std::uint64_t live = 0;
  std::uint64_t created = 0;
  std::uint64_t expired = 0;
  std::uint64_t evicted = 0;
  std::uint64_t resizes = 0;
  HistogramSnapshot probe_len;
};

struct ActionTelemetry {
  std::string name;
  bool native = false;
  std::uint64_t executions = 0;
  std::uint64_t errors = 0;
  std::uint64_t steps = 0;  // weighted interpreter steps (bytecode only)
  // errors split by lang::ExecStatus (the ok slot stays zero).
  std::array<std::uint64_t, lang::kNumExecStatus> errors_by_status{};
  // Histograms are present only when the enclave ran with them enabled;
  // counts reflect the sampled executions, not `executions`.
  bool has_histograms = false;
  HistogramSnapshot latency_ns;
  HistogramSnapshot steps_hist;
  // Bytecode hot spots, present when the enclave ran with
  // profile_actions on: the top rows of the per-pc execution profile,
  // with `text` already resolved to the disassembled instruction.
  bool has_profile = false;
  std::uint64_t profile_runs = 0;
  std::uint64_t profile_instructions = 0;
  std::vector<HotSpot> hotspots;
};

struct ClassTelemetry {
  std::string name;  // fully qualified "stage.ruleset.class"
  std::uint64_t matched = 0;
  std::uint64_t dropped = 0;
};

// One trace-ring record with ids resolved to names.
struct TraceEntry {
  std::int64_t ts_ns = 0;
  std::string class_name;
  std::string action;
  std::string status;
  std::uint64_t steps = 0;
  netsim::PacketMeta meta;
};

// Control-plane session health, exported by the session layer
// (src/controlplane). One entry per controller->enclave session;
// counters mirror controlplane::SessionStats.
struct SessionTelemetry {
  std::string name;
  bool connected = false;
  bool ready = false;
  std::uint64_t agent_boot_id = 0;
  std::uint64_t connects = 0;
  std::uint64_t connect_failures = 0;
  std::uint64_t teardowns = 0;
  std::uint64_t resyncs = 0;
  std::uint64_t last_resync_commands = 0;
  std::uint64_t requests_sent = 0;
  std::uint64_t responses_ok = 0;
  std::uint64_t responses_error = 0;
  std::uint64_t request_timeouts = 0;
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t heartbeats_acked = 0;
  std::uint64_t liveness_timeouts = 0;
  std::uint64_t corrupt_streams = 0;
  std::uint64_t txns_committed = 0;
  std::uint64_t txns_aborted = 0;
  std::uint64_t agent_restarts_seen = 0;
  HistogramSnapshot rtt_ns;           // request + heartbeat round trips
  HistogramSnapshot resync_commands;  // journal replay sizes
};

struct EnclaveTelemetry {
  std::string enclave;
  bool telemetry_enabled = false;

  // EnclaveStats mirror.
  std::uint64_t packets = 0;
  std::uint64_t matched = 0;
  std::uint64_t dropped_by_action = 0;
  std::uint64_t message_entries_created = 0;
  std::uint64_t message_entries_evicted = 0;
  std::uint64_t message_entries_expired = 0;

  // Message-state store section (schema v3).
  StateTelemetry state;

  std::vector<ActionTelemetry> actions;
  std::vector<ClassTelemetry> classes;

  // Host-level series riding along with the enclave snapshot: gauges
  // and counters the enclave itself cannot see (data-plane ring depth,
  // backpressure, pool exhaustion, ...), filled by the agent's
  // host-series hook (core/wire.h TelemetryCursor). Name -> value;
  // *_total names are counters, everything else is a gauge. The health
  // watchdog evaluates threshold rules over these per agent.
  std::vector<std::pair<std::string, double>> host_series;

  std::vector<TraceEntry> trace;       // oldest to newest
  std::uint64_t trace_sampled = 0;     // records ever pushed to the ring
  std::uint32_t trace_sample_every = 0;
};

// Deployment-wide view: the per-enclave snapshots plus cross-enclave
// merges keyed by action / class name (histogram counts add bucket-wise;
// the controller ships identical programs everywhere, so same-named
// actions are the same function).
struct AggregateTelemetry {
  std::vector<EnclaveTelemetry> enclaves;
  // Session health rides along with the data-path snapshots; callers
  // that run the session layer fill this in (aggregate() leaves it
  // empty).
  std::vector<SessionTelemetry> sessions;
  std::vector<ActionTelemetry> actions;
  std::vector<ClassTelemetry> classes;
  std::uint64_t packets = 0;
  std::uint64_t matched = 0;
  std::uint64_t dropped_by_action = 0;
};

AggregateTelemetry aggregate(std::vector<EnclaveTelemetry> enclaves);

// Pairwise merge of two partial aggregates: enclave and session lists
// concatenate, totals add, per-action and per-class merges combine by
// name. aggregate(all) == fold(merge_aggregates, map(aggregate, any
// partition of all)), which is what lets the collector merge partials
// in a tree instead of serializing every snapshot through one map.
AggregateTelemetry merge_aggregates(AggregateTelemetry a,
                                    AggregateTelemetry b);

// Parallel tree aggregation: splits the snapshots into up to `threads`
// chunks, aggregates each chunk on its own thread, then folds the
// partials pairwise. Equivalent to aggregate() (enclave order and the
// name-sorted merges are preserved); threads <= 1 degrades to it.
AggregateTelemetry aggregate_tree(std::vector<EnclaveTelemetry> enclaves,
                                  std::size_t threads);

// Prometheus text exposition (per-enclave series; histograms with
// cumulative le= buckets).
std::string to_prometheus(const AggregateTelemetry& agg);

// JSON dump: {"schema_version": N, "enclaves": [...], "total": {...}}.
std::string to_json(const AggregateTelemetry& agg);

// One enclave snapshot as a JSON object — the element format of
// to_json's "enclaves" array, exposed for the delta payload encoder
// (telemetry/delta.h), which emits the same shape with diffed values.
void append_enclave_json(std::string& out, const EnclaveTelemetry& e);

}  // namespace eden::telemetry
