// An Eden-compliant HTTP library stage: classifies on <msg_type, url>
// and emits {msg_id, msg_type, url, msg_size} (Table 2, second row).
// classify() additionally stamps a lifecycle trace id on sampled
// messages when the process-wide SpanCollector is enabled (see
// telemetry/span.h), like every core::Stage.
#pragma once

#include <string_view>

#include "core/stage.h"

namespace eden::apps {

inline constexpr std::int64_t kHttpRequest = 1;
inline constexpr std::int64_t kHttpResponse = 2;

class HttpStage : public core::Stage {
 public:
  explicit HttpStage(core::ClassRegistry& registry)
      : Stage("http", {"msg_type", "url"},
              {"msg_id", "msg_type", "url", "msg_size"}, registry) {}

  static core::MessageAttrs request_attrs(std::string_view url) {
    return {"REQ", std::string(url)};
  }
  static core::MessageAttrs response_attrs(std::string_view url) {
    return {"RESP", std::string(url)};
  }
};

}  // namespace eden::apps
