#include "apps/memcached_stage.h"

namespace eden::apps {

std::int64_t MemcachedStage::key_hash(std::string_view key) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return static_cast<std::int64_t>(h >> 1);  // keep it non-negative
}

netsim::PacketMeta MemcachedStage::request_meta(bool is_get,
                                                std::string_view key,
                                                std::int64_t size) {
  netsim::PacketMeta meta;
  meta.msg_type = is_get ? kMemcachedGet : kMemcachedPut;
  meta.key_hash = key_hash(key);
  meta.msg_size = size;
  return meta;
}

}  // namespace eden::apps
