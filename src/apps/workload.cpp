#include "apps/workload.h"

#include <cmath>
#include <stdexcept>

namespace eden::apps {

FlowSizeDistribution::FlowSizeDistribution(std::vector<Point> points)
    : points_(std::move(points)) {
  if (points_.empty()) {
    throw std::invalid_argument("flow size distribution needs points");
  }
  double prev = 0.0;
  for (const Point& p : points_) {
    if (p.cdf <= prev || p.cdf > 1.0) {
      throw std::invalid_argument(
          "flow size CDF must be strictly increasing and end at 1.0");
    }
    prev = p.cdf;
  }
  if (points_.back().cdf != 1.0) {
    throw std::invalid_argument("flow size CDF must end at 1.0");
  }
}

FlowSizeDistribution FlowSizeDistribution::web_search() {
  // Approximation of the DCTCP web-search workload as used by PIAS:
  // sizes in KB at the given cumulative probabilities.
  return FlowSizeDistribution({
      {0.15, 6 * 1024},
      {0.20, 13 * 1024},
      {0.30, 19 * 1024},
      {0.40, 33 * 1024},
      {0.53, 53 * 1024},
      {0.60, 133 * 1024},
      {0.70, 667 * 1024},
      {0.80, 1467 * 1024},
      {0.90, 2107 * 1024},
      {0.95, 6667 * 1024},
      {0.98, 20000 * 1024},
      {1.00, 30000 * 1024},
  });
}

FlowSizeDistribution FlowSizeDistribution::data_mining() {
  return FlowSizeDistribution({
      {0.50, 1 * 1024},
      {0.60, 2 * 1024},
      {0.70, 3 * 1024},
      {0.80, 7 * 1024},
      {0.90, 267 * 1024},
      {0.95, 2107 * 1024},
      {0.98, 66667 * 1024},
      {1.00, 666667 * 1024},
  });
}

FlowSizeDistribution FlowSizeDistribution::fixed(std::uint64_t size) {
  return FlowSizeDistribution({{1.0, size}});
}

std::uint64_t FlowSizeDistribution::sample(util::Rng& rng) const {
  const double u = rng.uniform();
  double prev_cdf = 0.0;
  std::uint64_t prev_size = 0;
  for (const Point& p : points_) {
    if (u <= p.cdf) {
      // Linear interpolation within the segment.
      const double frac = (u - prev_cdf) / (p.cdf - prev_cdf);
      const double size =
          static_cast<double>(prev_size) +
          frac * (static_cast<double>(p.size) - static_cast<double>(prev_size));
      return std::max<std::uint64_t>(1, static_cast<std::uint64_t>(size));
    }
    prev_cdf = p.cdf;
    prev_size = p.size;
  }
  return points_.back().size;
}

double FlowSizeDistribution::mean() const {
  double mean = 0.0;
  double prev_cdf = 0.0;
  std::uint64_t prev_size = 0;
  for (const Point& p : points_) {
    // Each linear segment contributes its midpoint mass.
    mean += (p.cdf - prev_cdf) *
            (static_cast<double>(prev_size) + static_cast<double>(p.size)) /
            2.0;
    prev_cdf = p.cdf;
    prev_size = p.size;
  }
  return mean;
}

PoissonArrivals::PoissonArrivals(double load, std::uint64_t link_bps,
                                 double mean_flow_bytes) {
  if (load <= 0.0 || mean_flow_bytes <= 0.0 || link_bps == 0) {
    throw std::invalid_argument("invalid Poisson arrival parameters");
  }
  rate_per_sec_ =
      load * static_cast<double>(link_bps) / 8.0 / mean_flow_bytes;
}

std::int64_t PoissonArrivals::next_gap(util::Rng& rng) const {
  return static_cast<std::int64_t>(rng.exponential(1e9 / rate_per_sec_));
}

}  // namespace eden::apps
