// Workload generation for the evaluation harnesses.
//
// Case study 1 uses "a realistic request-response workload, with
// responses reflecting the flow size distribution found in search
// applications" (Section 5.1, citing DCTCP [2] and PIAS [8]): mostly
// small flows, a heavy tail, high flow churn. FlowSizeDistribution
// encodes that CDF; PoissonArrivals turns a target load into arrival
// times.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.h"

namespace eden::apps {

// Piecewise-linear inverse-CDF sampler over flow sizes in bytes.
class FlowSizeDistribution {
 public:
  struct Point {
    double cdf;          // cumulative probability in (0, 1]
    std::uint64_t size;  // flow size in bytes
  };

  // Points must be strictly increasing in cdf, ending at 1.0. Throws
  // std::invalid_argument otherwise.
  explicit FlowSizeDistribution(std::vector<Point> points);

  // The web-search distribution of DCTCP/PIAS: ~50% of flows under
  // 100KB (dominated by small request/response traffic) with a tail of
  // multi-MB background flows that carry most of the bytes.
  static FlowSizeDistribution web_search();
  // Data-mining style: even more extreme small/large split.
  static FlowSizeDistribution data_mining();
  // Degenerate distribution (all flows the same size) for tests.
  static FlowSizeDistribution fixed(std::uint64_t size);

  std::uint64_t sample(util::Rng& rng) const;
  double mean() const;

  const std::vector<Point>& points() const { return points_; }

 private:
  std::vector<Point> points_;
};

// Poisson arrival process hitting a target utilization of a link.
class PoissonArrivals {
 public:
  // load in (0, 1]: fraction of link_bps consumed on average by flows of
  // the given mean size (payload bytes; header overhead is ignored, as
  // in the papers this emulates).
  PoissonArrivals(double load, std::uint64_t link_bps,
                  double mean_flow_bytes);

  // Nanoseconds until the next arrival.
  std::int64_t next_gap(util::Rng& rng) const;
  double rate_per_sec() const { return rate_per_sec_; }

 private:
  double rate_per_sec_;
};

}  // namespace eden::apps
