// An Eden-compliant memcached client library (the running example of
// Sections 1-3): classifies messages on <msg_type, key> and emits
// {msg_id, msg_type, key, msg_size} metadata (Table 2, first row).
//
// Like every core::Stage, classify() also stamps a lifecycle trace id
// into the returned metadata for sampled messages when the process-wide
// SpanCollector is enabled, so memcached requests show up end-to-end in
// eden-trace output.
#pragma once

#include <string_view>

#include "core/stage.h"

namespace eden::apps {

// msg_type values used by the stage.
inline constexpr std::int64_t kMemcachedGet = 1;
inline constexpr std::int64_t kMemcachedPut = 2;

class MemcachedStage : public core::Stage {
 public:
  explicit MemcachedStage(core::ClassRegistry& registry)
      : Stage("memcached", {"msg_type", "key"},
              {"msg_id", "msg_type", "key", "msg_size"}, registry) {}

  // Builds the classification attributes for a GET/PUT on `key`.
  static core::MessageAttrs get_attrs(std::string_view key) {
    return {"GET", std::string(key)};
  }
  static core::MessageAttrs put_attrs(std::string_view key) {
    return {"PUT", std::string(key)};
  }

  // Metadata skeleton for a request: type + key hash + operation size.
  static netsim::PacketMeta request_meta(bool is_get, std::string_view key,
                                         std::int64_t size);

  // Stable non-negative key hash, shared with the replica_select action.
  static std::int64_t key_hash(std::string_view key);
};

}  // namespace eden::apps
