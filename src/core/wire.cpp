#include "core/wire.h"

#include <atomic>

#include "lang/source_loc.h"
#include "telemetry/delta.h"
#include "telemetry/span.h"
#include "util/bytes.h"

namespace eden::core::wire {

using util::ByteReader;
using util::ByteWriter;

namespace {

constexpr std::uint32_t kMagic = 0x4e444557;  // "WEDN"

ByteWriter header(Command cmd) {
  ByteWriter w;
  w.u32(kMagic);
  w.u8(static_cast<std::uint8_t>(cmd));
  return w;
}

void write_field_def(ByteWriter& w, const lang::FieldDef& f) {
  w.str(f.name);
  w.u8(static_cast<std::uint8_t>(f.access));
  w.u8(static_cast<std::uint8_t>(f.kind));
  w.u32(static_cast<std::uint32_t>(f.record_fields.size()));
  for (const auto& rf : f.record_fields) w.str(rf);
  w.str(f.header_map);
  w.i64(f.default_value);
  w.u8(f.key_partitioned ? 1 : 0);
}

lang::FieldDef read_field_def(ByteReader& r) {
  lang::FieldDef f;
  f.name = r.str();
  const std::uint8_t access = r.u8();
  const std::uint8_t kind = r.u8();
  if (access > 1 || kind > 2) {
    throw util::ByteStreamError("invalid field definition");
  }
  f.access = static_cast<lang::Access>(access);
  f.kind = static_cast<lang::FieldKind>(kind);
  const std::uint32_t nrec = r.u32();
  // Each record field costs at least a 4-byte length on the wire; a
  // count beyond that is a hostile header, not a short frame.
  if (nrec > r.remaining() / 4) {
    throw util::ByteStreamError("field definition record count exceeds frame");
  }
  for (std::uint32_t i = 0; i < nrec; ++i) f.record_fields.push_back(r.str());
  f.header_map = r.str();
  f.default_value = r.i64();
  f.key_partitioned = r.u8() != 0;
  return f;
}

}  // namespace

std::optional<Command> peek_command(std::span<const std::uint8_t> frame) {
  if (frame.size() < 5) return std::nullopt;
  std::uint32_t magic = 0;
  for (int i = 0; i < 4; ++i) {
    magic |= static_cast<std::uint32_t>(frame[static_cast<std::size_t>(i)])
             << (8 * i);
  }
  if (magic != kMagic) return std::nullopt;
  const std::uint8_t op = frame[4];
  if (op < static_cast<std::uint8_t>(Command::install_action) ||
      op > static_cast<std::uint8_t>(Command::get_telemetry_delta)) {
    return std::nullopt;
  }
  return static_cast<Command>(op);
}

// --- Encoders ---------------------------------------------------------------

std::vector<std::uint8_t> encode_install_action(
    const std::string& name, const lang::CompiledProgram& program,
    std::span<const lang::FieldDef> global_fields) {
  ByteWriter w = header(Command::install_action);
  w.str(name);
  w.bytes(program.serialize());
  w.u32(static_cast<std::uint32_t>(global_fields.size()));
  for (const auto& f : global_fields) write_field_def(w, f);
  return w.take();
}

std::vector<std::uint8_t> encode_remove_action(const std::string& name) {
  ByteWriter w = header(Command::remove_action);
  w.str(name);
  return w.take();
}

std::vector<std::uint8_t> encode_create_table(const std::string& name) {
  ByteWriter w = header(Command::create_table);
  w.str(name);
  return w.take();
}

std::vector<std::uint8_t> encode_delete_table(TableId table) {
  ByteWriter w = header(Command::delete_table);
  w.u32(table);
  return w.take();
}

std::vector<std::uint8_t> encode_add_rule(TableId table,
                                          const std::string& pattern,
                                          const std::string& action_name) {
  ByteWriter w = header(Command::add_rule);
  w.u32(table);
  w.str(pattern);
  w.str(action_name);
  return w.take();
}

std::vector<std::uint8_t> encode_remove_rule(TableId table,
                                             MatchRuleId rule) {
  ByteWriter w = header(Command::remove_rule);
  w.u32(table);
  w.u64(rule);
  return w.take();
}

std::vector<std::uint8_t> encode_set_global_scalar(
    const std::string& action_name, const std::string& field,
    std::int64_t value) {
  ByteWriter w = header(Command::set_global_scalar);
  w.str(action_name);
  w.str(field);
  w.i64(value);
  return w.take();
}

std::vector<std::uint8_t> encode_set_global_array(
    const std::string& action_name, const std::string& field,
    std::span<const std::int64_t> data) {
  ByteWriter w = header(Command::set_global_array);
  w.str(action_name);
  w.str(field);
  w.u32(static_cast<std::uint32_t>(data.size()));
  for (const std::int64_t v : data) w.i64(v);
  return w.take();
}

std::vector<std::uint8_t> encode_add_flow_rule(const FlowClassifierRule& rule,
                                               const std::string& class_name) {
  ByteWriter w = header(Command::add_flow_rule);
  w.i64(rule.src);
  w.i64(rule.dst);
  w.i64(rule.src_port);
  w.i64(rule.dst_port);
  w.i64(rule.proto);
  w.str(class_name);
  return w.take();
}

std::vector<std::uint8_t> encode_clear_flow_rules() {
  return header(Command::clear_flow_rules).take();
}

std::vector<std::uint8_t> encode_read_global_scalar(
    const std::string& action_name, const std::string& field) {
  ByteWriter w = header(Command::read_global_scalar);
  w.str(action_name);
  w.str(field);
  return w.take();
}

std::vector<std::uint8_t> encode_get_telemetry() {
  return header(Command::get_telemetry).take();
}

std::vector<std::uint8_t> encode_get_spans() {
  return header(Command::get_spans).take();
}

std::vector<std::uint8_t> encode_begin_txn() {
  return header(Command::begin_txn).take();
}

std::vector<std::uint8_t> encode_commit_txn() {
  return header(Command::commit_txn).take();
}

std::vector<std::uint8_t> encode_abort_txn() {
  return header(Command::abort_txn).take();
}

std::vector<std::uint8_t> encode_reset_state() {
  return header(Command::reset_state).take();
}

std::vector<std::uint8_t> encode_add_rule_named(
    const std::string& table_name, const std::string& pattern,
    const std::string& action_name) {
  ByteWriter w = header(Command::add_rule_named);
  w.str(table_name);
  w.str(pattern);
  w.str(action_name);
  return w.take();
}

std::vector<std::uint8_t> encode_remove_rule_named(
    const std::string& table_name, MatchRuleId rule) {
  ByteWriter w = header(Command::remove_rule_named);
  w.str(table_name);
  w.u64(rule);
  return w.take();
}

std::vector<std::uint8_t> encode_get_ruleset_version() {
  return header(Command::get_ruleset_version).take();
}

std::vector<std::uint8_t> encode_get_telemetry_delta(std::uint64_t epoch,
                                                     std::uint64_t seq) {
  ByteWriter w = header(Command::get_telemetry_delta);
  w.u64(epoch);
  w.u64(seq);
  return w.take();
}

std::vector<std::uint8_t> encode_get_stage_info() {
  return header(Command::get_stage_info).take();
}

std::vector<std::uint8_t> encode_create_stage_rule(
    const std::string& rule_set, const Classifier& classifier,
    const std::string& class_name, MetaFieldMask meta_mask) {
  ByteWriter w = header(Command::create_stage_rule);
  w.str(rule_set);
  w.u32(static_cast<std::uint32_t>(classifier.size()));
  for (const FieldPattern& p : classifier) {
    w.u8(p.wildcard ? 1 : 0);
    w.str(p.value);
  }
  w.str(class_name);
  w.u32(meta_mask);
  return w.take();
}

std::vector<std::uint8_t> encode_remove_stage_rule(const std::string& rule_set,
                                                   RuleId rule) {
  ByteWriter w = header(Command::remove_stage_rule);
  w.str(rule_set);
  w.u64(rule);
  return w.take();
}

// --- Responses ----------------------------------------------------------------

std::vector<std::uint8_t> encode_response(const Response& response) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(response.status));
  w.u64(response.value);
  w.str(response.error);
  w.bytes(response.payload);
  return w.take();
}

Response decode_response(std::span<const std::uint8_t> frame) {
  try {
    ByteReader r(frame);
    Response resp;
    const std::uint8_t status = r.u8();
    if (status > static_cast<std::uint8_t>(Status::rejected)) {
      throw util::ByteStreamError("invalid status");
    }
    resp.status = static_cast<Status>(status);
    resp.value = r.u64();
    resp.error = r.str();
    resp.payload = r.bytes();
    return resp;
  } catch (const util::ByteStreamError& e) {
    Response resp;
    resp.status = Status::bad_request;
    resp.error = e.what();
    return resp;
  }
}

std::optional<StageInfo> decode_stage_info(
    std::span<const std::uint8_t> payload) {
  try {
    ByteReader r(payload);
    StageInfo info;
    info.name = r.str();
    const std::uint32_t nclassify = r.u32();
    for (std::uint32_t i = 0; i < nclassify; ++i) {
      info.classifier_fields.push_back(r.str());
    }
    const std::uint32_t nmeta = r.u32();
    for (std::uint32_t i = 0; i < nmeta; ++i) {
      info.meta_fields.push_back(r.str());
    }
    return info;
  } catch (const util::ByteStreamError&) {
    return std::nullopt;
  }
}

// --- Agent ------------------------------------------------------------------

namespace {

Response fail(Status status, std::string error) {
  Response r;
  r.status = status;
  r.error = std::move(error);
  return r;
}

Response ok(std::uint64_t value = 0) {
  Response r;
  r.value = value;
  return r;
}

Response apply_checked(Enclave& enclave, std::span<const std::uint8_t> frame,
                       TelemetryCursor* cursor) {
  ByteReader r(frame);
  if (r.u32() != kMagic) return fail(Status::bad_request, "bad magic");
  const std::uint8_t raw_cmd = r.u8();
  // Enclave commands are the contiguous [install_action, get_telemetry]
  // range plus everything from get_spans on (the stage commands in the
  // middle belong to apply_stage).
  if ((raw_cmd < 1 ||
       raw_cmd > static_cast<std::uint8_t>(Command::get_telemetry)) &&
      (raw_cmd < static_cast<std::uint8_t>(Command::get_spans) ||
       raw_cmd > static_cast<std::uint8_t>(Command::get_telemetry_delta))) {
    return fail(Status::bad_request, "unknown command");
  }
  const auto cmd = static_cast<Command>(raw_cmd);

  auto resolve_action = [&](const std::string& name)
      -> std::optional<ActionId> { return enclave.find_action(name); };

  switch (cmd) {
    case Command::install_action: {
      const std::string name = r.str();
      const std::vector<std::uint8_t> bytecode = r.bytes();
      const std::uint32_t nfields = r.u32();
      // A serialized field definition is > 20 bytes; one byte each is a
      // conservative bound that still rejects absurd counts before the
      // reserve below could throw bad_alloc.
      if (nfields > r.remaining()) {
        return fail(Status::bad_request, "field count exceeds frame");
      }
      std::vector<lang::FieldDef> fields;
      fields.reserve(nfields);
      for (std::uint32_t i = 0; i < nfields; ++i) {
        fields.push_back(read_field_def(r));
      }
      lang::CompiledProgram program;
      try {
        program = lang::CompiledProgram::deserialize(bytecode);
        // install_action re-verifies the deserialized program against
        // the enclave's schema and limits; a malformed one is rejected
        // here instead of trapping per-packet.
        return ok(enclave.install_action(name, std::move(program),
                                         std::move(fields)));
      } catch (const lang::LangError& e) {
        return fail(Status::rejected, e.what());
      }
    }
    case Command::remove_action: {
      const auto id = resolve_action(r.str());
      if (!id) return fail(Status::unknown_action, "no such action");
      enclave.remove_action(*id);
      return ok();
    }
    case Command::create_table:
      return ok(enclave.create_table(r.str()));
    case Command::delete_table:
      enclave.delete_table(r.u32());
      return ok();
    case Command::add_rule: {
      const TableId table = r.u32();
      const std::string pattern = r.str();
      const auto id = resolve_action(r.str());
      if (!id) return fail(Status::unknown_action, "no such action");
      try {
        return ok(enclave.add_rule(table, ClassPattern(pattern), *id));
      } catch (const std::invalid_argument& e) {
        return fail(Status::unknown_table, e.what());
      }
    }
    case Command::remove_rule: {
      const TableId table = r.u32();
      const MatchRuleId rule = r.u64();
      return enclave.remove_rule(table, rule)
                 ? ok()
                 : fail(Status::unknown_table, "no such rule");
    }
    case Command::set_global_scalar: {
      const auto id = resolve_action(r.str());
      const std::string field = r.str();
      const std::int64_t value = r.i64();
      if (!id) return fail(Status::unknown_action, "no such action");
      try {
        enclave.set_global_scalar(*id, field, value);
        return ok();
      } catch (const std::invalid_argument& e) {
        return fail(Status::rejected, e.what());
      }
    }
    case Command::set_global_array: {
      const auto id = resolve_action(r.str());
      const std::string field = r.str();
      const std::uint32_t n = r.u32();
      if (n > r.remaining() / 8) {
        return fail(Status::bad_request, "array length exceeds frame");
      }
      std::vector<std::int64_t> data;
      data.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) data.push_back(r.i64());
      if (!id) return fail(Status::unknown_action, "no such action");
      try {
        enclave.set_global_array(*id, field, std::move(data));
        return ok();
      } catch (const std::invalid_argument& e) {
        return fail(Status::rejected, e.what());
      }
    }
    case Command::add_flow_rule: {
      FlowClassifierRule rule;
      rule.src = r.i64();
      rule.dst = r.i64();
      rule.src_port = r.i64();
      rule.dst_port = r.i64();
      rule.proto = r.i64();
      const std::string class_name = r.str();
      try {
        rule.class_id = enclave.registry().intern(class_name);
      } catch (const std::invalid_argument& e) {
        return fail(Status::rejected, e.what());
      }
      enclave.add_flow_rule(rule);
      return ok(rule.class_id);
    }
    case Command::clear_flow_rules:
      enclave.clear_flow_rules();
      return ok();
    case Command::read_global_scalar: {
      const auto id = resolve_action(r.str());
      const std::string field = r.str();
      if (!id) return fail(Status::unknown_action, "no such action");
      try {
        return ok(static_cast<std::uint64_t>(
            enclave.read_global_scalar(*id, field)));
      } catch (const std::invalid_argument& e) {
        return fail(Status::rejected, e.what());
      }
    }
    case Command::get_telemetry: {
      const std::string json = telemetry::to_json(
          telemetry::aggregate({enclave.telemetry_snapshot()}));
      Response resp;
      resp.payload.assign(json.begin(), json.end());
      return resp;
    }
    case Command::get_spans: {
      const std::string json = telemetry::to_trace_event_json(
          telemetry::SpanCollector::instance().snapshot());
      Response resp;
      resp.payload.assign(json.begin(), json.end());
      return resp;
    }
    case Command::begin_txn:
      try {
        return ok(enclave.begin_txn());
      } catch (const std::invalid_argument& e) {
        return fail(Status::rejected, e.what());
      }
    case Command::commit_txn:
      try {
        return ok(enclave.commit_txn());
      } catch (const std::invalid_argument& e) {
        return fail(Status::rejected, e.what());
      }
    case Command::abort_txn:
      enclave.abort_txn();
      return ok();
    case Command::reset_state:
      enclave.clear_all();
      return ok();
    case Command::add_rule_named: {
      const std::string table_name = r.str();
      const std::string pattern = r.str();
      const auto id = resolve_action(r.str());
      if (!id) return fail(Status::unknown_action, "no such action");
      const auto table = enclave.find_table_id(table_name);
      if (!table) return fail(Status::unknown_table, "no such table");
      try {
        return ok(enclave.add_rule(*table, ClassPattern(pattern), *id));
      } catch (const std::invalid_argument& e) {
        return fail(Status::unknown_table, e.what());
      }
    }
    case Command::remove_rule_named: {
      const std::string table_name = r.str();
      const MatchRuleId rule = r.u64();
      const auto table = enclave.find_table_id(table_name);
      if (!table) return fail(Status::unknown_table, "no such table");
      return enclave.remove_rule(*table, rule)
                 ? ok()
                 : fail(Status::unknown_table, "no such rule");
    }
    case Command::get_ruleset_version:
      return ok(enclave.ruleset_version());
    case Command::get_telemetry_delta: {
      const std::uint64_t epoch = r.u64();
      const std::uint64_t seq = r.u64();
      std::string json;
      if (cursor != nullptr) {
        json = cursor->handle(enclave, epoch, seq);
      } else {
        // No per-connection state: degrade to a stateless full payload
        // under epoch 0 (the decoder adopts fulls unconditionally).
        telemetry::DeltaPayload p;
        p.enclaves.push_back(enclave.telemetry_snapshot());
        json = telemetry::encode_delta_payload(p);
      }
      Response resp;
      resp.payload.assign(json.begin(), json.end());
      return resp;
    }
  }
  return fail(Status::bad_request, "unhandled command");
}

// Process-global epoch allocator: every full resync — from any cursor
// in the process — gets a distinct stamp, so a controller that decoded
// a pre-restart full can never mistake a post-restart delta stream for
// its own.
std::uint64_t next_telemetry_epoch() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

std::string TelemetryCursor::handle(Enclave& enclave, std::uint64_t epoch,
                                    std::uint64_t seq) {
  telemetry::EnclaveTelemetry now = enclave.telemetry_snapshot();
  if (host_series_) now.host_series = host_series_();
  telemetry::DeltaPayload p;
  if (primed_ && epoch == epoch_ && seq == seq_) {
    if (auto d = telemetry::delta_between(prev_, now)) {
      ++seq_;
      p.full = false;
      p.epoch = epoch_;
      p.seq = seq_;
      if (!telemetry::delta_is_empty(*d)) {
        p.enclaves.push_back(*std::move(d));
      }
      prev_ = std::move(now);
      return telemetry::encode_delta_payload(p);
    }
    // A counter went backwards (action reinstalled after a reset, ...):
    // fall through to the full-resync arm.
  }
  epoch_ = next_telemetry_epoch();
  seq_ = 1;
  primed_ = true;
  p.full = true;
  p.epoch = epoch_;
  p.seq = seq_;
  p.enclaves.push_back(now);
  prev_ = std::move(now);
  return telemetry::encode_delta_payload(p);
}

Response apply(Enclave& enclave, std::span<const std::uint8_t> frame,
               TelemetryCursor* cursor) {
  try {
    return apply_checked(enclave, frame, cursor);
  } catch (const util::ByteStreamError& e) {
    return fail(Status::bad_request, e.what());
  } catch (const std::invalid_argument& e) {
    return fail(Status::rejected, e.what());
  } catch (const std::length_error&) {
    // A hostile element count slipped past the frame-size guards and hit
    // a container limit; the frame is garbage, not a server fault.
    return fail(Status::bad_request, "frame implies oversized allocation");
  } catch (const std::bad_alloc&) {
    return fail(Status::bad_request, "frame implies oversized allocation");
  }
}

Response apply(Enclave& enclave, std::span<const std::uint8_t> frame) {
  return apply(enclave, frame, nullptr);
}

namespace {

Response apply_stage_checked(Stage& stage,
                             std::span<const std::uint8_t> frame) {
  ByteReader r(frame);
  if (r.u32() != kMagic) return fail(Status::bad_request, "bad magic");
  const std::uint8_t raw_cmd = r.u8();
  const auto cmd = static_cast<Command>(raw_cmd);
  switch (cmd) {
    case Command::get_stage_info: {
      const StageInfo info = stage.get_stage_info();
      ByteWriter w;
      w.str(info.name);
      w.u32(static_cast<std::uint32_t>(info.classifier_fields.size()));
      for (const auto& f : info.classifier_fields) w.str(f);
      w.u32(static_cast<std::uint32_t>(info.meta_fields.size()));
      for (const auto& f : info.meta_fields) w.str(f);
      Response resp = ok();
      resp.payload = w.take();
      return resp;
    }
    case Command::create_stage_rule: {
      const std::string rule_set = r.str();
      const std::uint32_t npatterns = r.u32();
      // Each pattern costs at least 5 bytes (wildcard flag + length).
      if (npatterns > r.remaining() / 5) {
        return fail(Status::bad_request, "pattern count exceeds frame");
      }
      Classifier classifier;
      classifier.reserve(npatterns);
      for (std::uint32_t i = 0; i < npatterns; ++i) {
        FieldPattern p;
        p.wildcard = r.u8() != 0;
        p.value = r.str();
        classifier.push_back(std::move(p));
      }
      const std::string class_name = r.str();
      const MetaFieldMask mask = r.u32();
      try {
        return ok(stage.create_rule(rule_set, std::move(classifier),
                                    class_name, mask));
      } catch (const std::invalid_argument& e) {
        return fail(Status::rejected, e.what());
      }
    }
    case Command::remove_stage_rule: {
      const std::string rule_set = r.str();
      const RuleId rule = r.u64();
      return stage.remove_rule(rule_set, rule)
                 ? ok()
                 : fail(Status::rejected, "no such rule");
    }
    default:
      return fail(Status::bad_request, "not a stage command");
  }
}

}  // namespace

Response apply_stage(Stage& stage, std::span<const std::uint8_t> frame) {
  try {
    return apply_stage_checked(stage, frame);
  } catch (const util::ByteStreamError& e) {
    return fail(Status::bad_request, e.what());
  } catch (const std::invalid_argument& e) {
    return fail(Status::rejected, e.what());
  } catch (const std::length_error&) {
    return fail(Status::bad_request, "frame implies oversized allocation");
  } catch (const std::bad_alloc&) {
    return fail(Status::bad_request, "frame implies oversized allocation");
  }
}

// --- RemoteEnclave -------------------------------------------------------------

Response RemoteEnclave::roundtrip(std::vector<std::uint8_t> frame) {
  return decode_response(transport_(std::move(frame)));
}

Response RemoteEnclave::install_action(
    const std::string& name, const lang::CompiledProgram& program,
    std::span<const lang::FieldDef> global_fields) {
  return roundtrip(encode_install_action(name, program, global_fields));
}
Response RemoteEnclave::remove_action(const std::string& name) {
  return roundtrip(encode_remove_action(name));
}
Response RemoteEnclave::create_table(const std::string& name) {
  return roundtrip(encode_create_table(name));
}
Response RemoteEnclave::delete_table(TableId table) {
  return roundtrip(encode_delete_table(table));
}
Response RemoteEnclave::add_rule(TableId table, const std::string& pattern,
                                 const std::string& action_name) {
  return roundtrip(encode_add_rule(table, pattern, action_name));
}
Response RemoteEnclave::remove_rule(TableId table, MatchRuleId rule) {
  return roundtrip(encode_remove_rule(table, rule));
}
Response RemoteEnclave::set_global_scalar(const std::string& action_name,
                                          const std::string& field,
                                          std::int64_t value) {
  return roundtrip(encode_set_global_scalar(action_name, field, value));
}
Response RemoteEnclave::set_global_array(const std::string& action_name,
                                         const std::string& field,
                                         std::span<const std::int64_t> data) {
  return roundtrip(encode_set_global_array(action_name, field, data));
}
Response RemoteEnclave::add_flow_rule(const FlowClassifierRule& rule,
                                      const std::string& class_name) {
  return roundtrip(encode_add_flow_rule(rule, class_name));
}
Response RemoteEnclave::read_global_scalar(const std::string& action_name,
                                           const std::string& field) {
  return roundtrip(encode_read_global_scalar(action_name, field));
}

Response RemoteEnclave::get_telemetry() {
  return roundtrip(encode_get_telemetry());
}

std::string RemoteEnclave::get_telemetry_json() {
  const Response r = get_telemetry();
  if (r.status != Status::ok) return {};
  return std::string(r.payload.begin(), r.payload.end());
}

Response RemoteEnclave::get_telemetry_delta(std::uint64_t epoch,
                                            std::uint64_t seq) {
  return roundtrip(encode_get_telemetry_delta(epoch, seq));
}

std::string RemoteEnclave::get_telemetry_delta_json(std::uint64_t epoch,
                                                    std::uint64_t seq) {
  const Response r = get_telemetry_delta(epoch, seq);
  if (r.status != Status::ok) return {};
  return std::string(r.payload.begin(), r.payload.end());
}

Response RemoteEnclave::get_spans() { return roundtrip(encode_get_spans()); }

Response RemoteEnclave::begin_txn() { return roundtrip(encode_begin_txn()); }
Response RemoteEnclave::commit_txn() { return roundtrip(encode_commit_txn()); }
Response RemoteEnclave::abort_txn() { return roundtrip(encode_abort_txn()); }
Response RemoteEnclave::reset_state() {
  return roundtrip(encode_reset_state());
}
Response RemoteEnclave::add_rule_named(const std::string& table_name,
                                       const std::string& pattern,
                                       const std::string& action_name) {
  return roundtrip(encode_add_rule_named(table_name, pattern, action_name));
}
Response RemoteEnclave::remove_rule_named(const std::string& table_name,
                                          MatchRuleId rule) {
  return roundtrip(encode_remove_rule_named(table_name, rule));
}
Response RemoteEnclave::get_ruleset_version() {
  return roundtrip(encode_get_ruleset_version());
}

std::string RemoteEnclave::get_spans_json() {
  const Response r = get_spans();
  if (r.status != Status::ok) return {};
  return std::string(r.payload.begin(), r.payload.end());
}

std::optional<StageInfo> RemoteStage::get_stage_info() {
  const Response r = decode_response(transport_(encode_get_stage_info()));
  if (r.status != Status::ok) return std::nullopt;
  return decode_stage_info(r.payload);
}

Response RemoteStage::create_rule(const std::string& rule_set,
                                  const Classifier& classifier,
                                  const std::string& class_name,
                                  MetaFieldMask meta_mask) {
  return decode_response(transport_(
      encode_create_stage_rule(rule_set, classifier, class_name, meta_mask)));
}

Response RemoteStage::remove_rule(const std::string& rule_set, RuleId rule) {
  return decode_response(transport_(encode_remove_stage_rule(rule_set, rule)));
}

RemoteEnclave::Transport loopback_transport(Enclave& enclave) {
  return [&enclave](std::vector<std::uint8_t> frame) {
    // Qualified: ADL on std::vector would otherwise drag in std::apply.
    return encode_response(eden::core::wire::apply(enclave, frame));
  };
}

RemoteEnclave::Transport loopback_transport(Enclave& enclave,
                                            TelemetryCursor& cursor) {
  return [&enclave, &cursor](std::vector<std::uint8_t> frame) {
    return encode_response(eden::core::wire::apply(enclave, frame, &cursor));
  };
}

RemoteStage::Transport loopback_stage_transport(Stage& stage) {
  return [&stage](std::vector<std::uint8_t> frame) {
    return encode_response(eden::core::wire::apply_stage(stage, frame));
  };
}

}  // namespace eden::core::wire
