// The Eden controller (Section 3.2): the logically centralized
// coordination point. Anything needing global visibility lives here —
// compiling action functions against the enclave schema, distributing
// programs and match-action rules to enclaves, programming stages with
// classification rules, and the control-plane computations of the case
// studies (path weights from topology, PIAS priority thresholds from the
// observed flow-size distribution).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "core/enclave.h"
#include "core/stage.h"
#include "netsim/routing.h"
#include "telemetry/collector.h"

namespace eden::core {

// One (label, weight) pair of a path set, as pushed into WCMP-style
// action functions. Weights are normalized to parts-per-kWeightScale.
struct WeightedPath {
  std::int32_t label = -1;
  std::int64_t weight = 0;
};
inline constexpr std::int64_t kWeightScale = 1000;

class Controller {
 public:
  explicit Controller(ClassRegistry& registry) : registry_(registry) {}

  // --- Component registration -------------------------------------------

  void register_stage(Stage& stage) { stages_.push_back(&stage); }
  void register_enclave(Enclave& enclave) { enclaves_.push_back(&enclave); }

  // An enclave reached over a control-plane session rather than a
  // local pointer. The fetchers return the remote's JSON dump, or an
  // empty string when the session is down / the reply never came
  // (e.g. controlplane::EnclaveSession::fetch_telemetry_json). Kept as
  // std::function so core does not depend on the session layer.
  struct RemoteEnclaveSource {
    std::string name;
    std::function<std::string()> fetch_telemetry_json;
    std::function<std::string()> fetch_spans_json;  // optional
    // Optional delta poll (controlplane::EnclaveSession::
    // fetch_telemetry_delta_json): echoes (epoch, seq), returns a
    // telemetry::DeltaPayload JSON. When set, telemetry_sources()
    // builds delta-polling collector sources from this.
    std::function<std::string(std::uint64_t, std::uint64_t)>
        fetch_telemetry_delta_json;
    // Optional controller-side session health sample.
    std::function<telemetry::SessionTelemetry()> session;
  };
  void register_remote(RemoteEnclaveSource source) {
    remotes_.push_back(std::move(source));
  }

  Stage* stage(const std::string& name) const;
  const std::vector<Enclave*>& enclaves() const { return enclaves_; }

  // --- Program management --------------------------------------------------

  // Compiles EAL source against the enclave schema extended with
  // `global_fields`. Throws lang::LangError on bad programs.
  lang::CompiledProgram compile(const std::string& name,
                                std::string_view source,
                                std::span<const lang::FieldDef> global_fields)
      const;

  // Installs the program in every registered enclave (the controller
  // ships the same bytecode to OS and NIC enclaves alike). Returns the
  // action id, which Eden keeps identical across enclaves by
  // construction (install order is controller-driven).
  std::vector<ActionId> install_everywhere(
      const lang::CompiledProgram& program,
      std::span<const lang::FieldDef> global_fields) const;

  ClassRegistry& registry() { return registry_; }

  // --- Telemetry ----------------------------------------------------------

  // Pulls a telemetry snapshot from every registered enclave and merges
  // them by action / class name: the stats read-back half of the
  // enclave API, giving the controller the global visibility the paper
  // assumes (Section 3.2). Remote enclaves whose session is down are
  // skipped — a dead host must not block the deployment-wide view —
  // and their names are appended to `unreachable` when given. Render
  // with telemetry::to_json / telemetry::to_prometheus.
  telemetry::AggregateTelemetry collect_telemetry(
      std::vector<std::string>* unreachable = nullptr) const;

  // Lifecycle spans (telemetry/span.h) rendered as Chrome trace_event
  // JSON — load the result in Perfetto / chrome://tracing. The span
  // collector is process-global, so this covers every traced local
  // hop; remote sources' events are spliced in, and unreachable
  // remotes are skipped and reported like collect_telemetry does.
  // `max_spans_per_agent` bounds the events spliced from each remote
  // (0 = unlimited) so a thousand-agent sweep cannot build an
  // unbounded string; if anything was cut the dump carries a
  // top-level "truncated": true marker.
  std::string collect_spans_json(std::vector<std::string>* unreachable =
                                     nullptr,
                                 std::size_t max_spans_per_agent = 0) const;

  // The registered enclaves — local and remote alike — as collector
  // sources (telemetry/collector.h). Remote sources poll with the
  // delta protocol when fetch_telemetry_delta_json is set, falling
  // back to full-snapshot fetches; local enclaves snapshot in-process.
  // This is the scale-out replacement for collect_telemetry: feed the
  // result to a TelemetryCollector and poll.
  std::vector<telemetry::CollectorSource> telemetry_sources() const;

  // --- Control-plane computations -----------------------------------------

  // Weighted paths between two hosts: weight proportional to the path's
  // bottleneck capacity (the WCMP control function of Section 2.1.1),
  // normalized so weights sum to kWeightScale.
  static std::vector<WeightedPath> weighted_paths(
      const netsim::Routing& routing, netsim::HostId src,
      netsim::HostId dst);

  // PIAS-style demotion thresholds: given sampled flow sizes and the
  // number of priority levels, returns level-1 descending thresholds
  // at evenly spaced quantiles. Result[i] is the upper size bound for
  // priority (levels-1-i).
  static std::vector<std::int64_t> priority_thresholds(
      std::span<const std::uint64_t> flow_sizes, int levels);

 private:
  ClassRegistry& registry_;
  std::vector<Stage*> stages_;
  std::vector<Enclave*> enclaves_;
  std::vector<RemoteEnclaveSource> remotes_;
};

}  // namespace eden::core
