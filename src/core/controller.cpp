#include "core/controller.h"

#include <algorithm>

#include "lang/compiler.h"

namespace eden::core {

Stage* Controller::stage(const std::string& name) const {
  for (Stage* s : stages_) {
    if (s->name() == name) return s;
  }
  return nullptr;
}

lang::CompiledProgram Controller::compile(
    const std::string& name, std::string_view source,
    std::span<const lang::FieldDef> global_fields) const {
  const lang::StateSchema schema = make_enclave_schema(
      std::vector<lang::FieldDef>(global_fields.begin(),
                                  global_fields.end()));
  return lang::compile_source(source, schema, {}, name);
}

std::vector<ActionId> Controller::install_everywhere(
    const lang::CompiledProgram& program,
    std::span<const lang::FieldDef> global_fields) const {
  std::vector<ActionId> ids;
  ids.reserve(enclaves_.size());
  for (Enclave* enclave : enclaves_) {
    // Each enclave receives the serialized bytecode, as it would over
    // the wire, exercising the cross-platform encode/decode path.
    lang::CompiledProgram shipped =
        lang::CompiledProgram::deserialize(program.serialize());
    ids.push_back(enclave->install_action(
        program.source_name, std::move(shipped),
        std::vector<lang::FieldDef>(global_fields.begin(),
                                    global_fields.end())));
  }
  return ids;
}

std::vector<WeightedPath> Controller::weighted_paths(
    const netsim::Routing& routing, netsim::HostId src, netsim::HostId dst) {
  const auto& paths = routing.paths(src, dst);
  std::vector<WeightedPath> result;
  if (paths.empty()) return result;

  long double total = 0;
  for (const auto& p : paths) total += static_cast<long double>(p.bottleneck_bps);
  if (total <= 0) return result;

  std::int64_t assigned = 0;
  for (const auto& p : paths) {
    WeightedPath wp;
    wp.label = p.label;
    wp.weight = static_cast<std::int64_t>(
        static_cast<long double>(p.bottleneck_bps) / total * kWeightScale);
    assigned += wp.weight;
    result.push_back(wp);
  }
  // Give rounding residue to the widest path so weights always sum to
  // kWeightScale (action functions rely on this for rand(kWeightScale)).
  if (!result.empty() && assigned != kWeightScale) {
    auto widest = std::max_element(
        result.begin(), result.end(),
        [](const WeightedPath& a, const WeightedPath& b) {
          return a.weight < b.weight;
        });
    widest->weight += kWeightScale - assigned;
  }
  return result;
}

std::vector<std::int64_t> Controller::priority_thresholds(
    std::span<const std::uint64_t> flow_sizes, int levels) {
  std::vector<std::int64_t> thresholds;
  if (levels < 2 || flow_sizes.empty()) return thresholds;
  std::vector<std::uint64_t> sorted(flow_sizes.begin(), flow_sizes.end());
  std::sort(sorted.begin(), sorted.end());
  // levels-1 thresholds at evenly spaced quantiles; flows larger than
  // the last threshold fall to the lowest priority.
  for (int i = 1; i < levels; ++i) {
    const double q = static_cast<double>(i) / levels;
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1));
    thresholds.push_back(static_cast<std::int64_t>(sorted[idx]));
  }
  // Strictly increasing (duplicate quantiles collapse in heavy-tailed
  // distributions).
  for (std::size_t i = 1; i < thresholds.size(); ++i) {
    thresholds[i] = std::max(thresholds[i], thresholds[i - 1] + 1);
  }
  return thresholds;
}

telemetry::AggregateTelemetry Controller::collect_telemetry() const {
  std::vector<telemetry::EnclaveTelemetry> snapshots;
  snapshots.reserve(enclaves_.size());
  for (const Enclave* enclave : enclaves_) {
    snapshots.push_back(enclave->telemetry_snapshot());
  }
  return telemetry::aggregate(std::move(snapshots));
}

std::string Controller::collect_spans_json() const {
  return telemetry::to_trace_event_json(
      telemetry::SpanCollector::instance().snapshot());
}

}  // namespace eden::core
