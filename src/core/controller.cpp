#include "core/controller.h"

#include <algorithm>
#include <stdexcept>

#include "lang/compiler.h"
#include "telemetry/json.h"

namespace eden::core {

Stage* Controller::stage(const std::string& name) const {
  for (Stage* s : stages_) {
    if (s->name() == name) return s;
  }
  return nullptr;
}

lang::CompiledProgram Controller::compile(
    const std::string& name, std::string_view source,
    std::span<const lang::FieldDef> global_fields) const {
  const lang::StateSchema schema = make_enclave_schema(
      std::vector<lang::FieldDef>(global_fields.begin(),
                                  global_fields.end()));
  return lang::compile_source(source, schema, {}, name);
}

std::vector<ActionId> Controller::install_everywhere(
    const lang::CompiledProgram& program,
    std::span<const lang::FieldDef> global_fields) const {
  std::vector<ActionId> ids;
  ids.reserve(enclaves_.size());
  for (Enclave* enclave : enclaves_) {
    // Each enclave receives the serialized bytecode, as it would over
    // the wire, exercising the cross-platform encode/decode path.
    lang::CompiledProgram shipped =
        lang::CompiledProgram::deserialize(program.serialize());
    ids.push_back(enclave->install_action(
        program.source_name, std::move(shipped),
        std::vector<lang::FieldDef>(global_fields.begin(),
                                    global_fields.end())));
  }
  return ids;
}

std::vector<WeightedPath> Controller::weighted_paths(
    const netsim::Routing& routing, netsim::HostId src, netsim::HostId dst) {
  const auto& paths = routing.paths(src, dst);
  std::vector<WeightedPath> result;
  if (paths.empty()) return result;

  long double total = 0;
  for (const auto& p : paths) total += static_cast<long double>(p.bottleneck_bps);
  if (total <= 0) return result;

  std::int64_t assigned = 0;
  for (const auto& p : paths) {
    WeightedPath wp;
    wp.label = p.label;
    wp.weight = static_cast<std::int64_t>(
        static_cast<long double>(p.bottleneck_bps) / total * kWeightScale);
    assigned += wp.weight;
    result.push_back(wp);
  }
  // Give rounding residue to the widest path so weights always sum to
  // kWeightScale (action functions rely on this for rand(kWeightScale)).
  if (!result.empty() && assigned != kWeightScale) {
    auto widest = std::max_element(
        result.begin(), result.end(),
        [](const WeightedPath& a, const WeightedPath& b) {
          return a.weight < b.weight;
        });
    widest->weight += kWeightScale - assigned;
  }
  return result;
}

std::vector<std::int64_t> Controller::priority_thresholds(
    std::span<const std::uint64_t> flow_sizes, int levels) {
  std::vector<std::int64_t> thresholds;
  if (levels < 2 || flow_sizes.empty()) return thresholds;
  std::vector<std::uint64_t> sorted(flow_sizes.begin(), flow_sizes.end());
  std::sort(sorted.begin(), sorted.end());
  // levels-1 thresholds at evenly spaced quantiles; flows larger than
  // the last threshold fall to the lowest priority.
  for (int i = 1; i < levels; ++i) {
    const double q = static_cast<double>(i) / levels;
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1));
    thresholds.push_back(static_cast<std::int64_t>(sorted[idx]));
  }
  // Strictly increasing (duplicate quantiles collapse in heavy-tailed
  // distributions).
  for (std::size_t i = 1; i < thresholds.size(); ++i) {
    thresholds[i] = std::max(thresholds[i], thresholds[i - 1] + 1);
  }
  return thresholds;
}

telemetry::AggregateTelemetry Controller::collect_telemetry(
    std::vector<std::string>* unreachable) const {
  std::vector<telemetry::EnclaveTelemetry> snapshots;
  snapshots.reserve(enclaves_.size());
  for (const Enclave* enclave : enclaves_) {
    snapshots.push_back(enclave->telemetry_snapshot());
  }
  std::vector<telemetry::SessionTelemetry> sessions;
  for (const RemoteEnclaveSource& remote : remotes_) {
    const std::string json =
        remote.fetch_telemetry_json ? remote.fetch_telemetry_json() : "";
    if (json.empty()) {
      if (unreachable != nullptr) unreachable->push_back(remote.name);
      continue;
    }
    try {
      telemetry::ParsedDump dump = telemetry::parse_telemetry_json(json);
      for (telemetry::EnclaveTelemetry& e : dump.enclaves) {
        snapshots.push_back(std::move(e));
      }
      for (telemetry::SessionTelemetry& s : dump.sessions) {
        sessions.push_back(std::move(s));
      }
    } catch (const std::runtime_error&) {
      // A reply that does not parse is as useless as no reply.
      if (unreachable != nullptr) unreachable->push_back(remote.name);
    }
  }
  telemetry::AggregateTelemetry agg =
      telemetry::aggregate(std::move(snapshots));
  agg.sessions = std::move(sessions);
  return agg;
}

namespace {

// Cuts `events` — the comma-joined contents of a traceEvents array —
// after `max` top-level objects (string-aware brace scan, so braces
// inside event labels cannot fool it). Returns true when event text
// was actually dropped.
bool truncate_events(std::string& events, std::size_t max) {
  if (max == 0) return false;
  std::size_t count = 0;
  int depth = 0;
  bool in_str = false;
  bool esc = false;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const char c = events[i];
    if (in_str) {
      if (esc) {
        esc = false;
      } else if (c == '\\') {
        esc = true;
      } else if (c == '"') {
        in_str = false;
      }
      continue;
    }
    if (c == '"') {
      in_str = true;
    } else if (c == '{') {
      ++depth;
    } else if (c == '}' && --depth == 0 && ++count == max) {
      if (events.find_first_not_of(" \n\r\t,", i + 1) == std::string::npos) {
        return false;  // nothing but trailing separators past the cap
      }
      events.erase(i + 1);
      return true;
    }
  }
  return false;
}

}  // namespace

std::string Controller::collect_spans_json(
    std::vector<std::string>* unreachable,
    std::size_t max_spans_per_agent) const {
  std::string out = telemetry::to_trace_event_json(
      telemetry::SpanCollector::instance().snapshot());
  bool truncated = false;
  for (const RemoteEnclaveSource& remote : remotes_) {
    if (!remote.fetch_spans_json) continue;
    const std::string json = remote.fetch_spans_json();
    // Splice the remote's traceEvents into ours. The format is
    // machine-written ({"traceEvents":[...]}), so bracket positions
    // are reliable.
    const std::size_t open = json.find('[');
    const std::size_t close = json.rfind(']');
    if (json.empty() || open == std::string::npos || close <= open) {
      if (unreachable != nullptr) unreachable->push_back(remote.name);
      continue;
    }
    std::string events = json.substr(open + 1, close - open - 1);
    if (events.find_first_not_of(" \n\r\t") == std::string::npos) continue;
    truncated = truncate_events(events, max_spans_per_agent) || truncated;
    const std::size_t local_close = out.rfind(']');
    if (local_close == std::string::npos) continue;
    const std::size_t last_nonspace =
        out.find_last_not_of(" \n\r\t", local_close - 1);
    const bool local_empty = last_nonspace == std::string::npos ||
                             out[last_nonspace] == '[';
    out.insert(local_close, (local_empty ? "" : ",\n") + events);
  }
  if (truncated) {
    // Explicit marker so consumers know the dump is bounded, not
    // complete.
    const std::size_t end = out.rfind('}');
    if (end != std::string::npos) out.insert(end, ",\"truncated\":true");
  }
  return out;
}

std::vector<telemetry::CollectorSource> Controller::telemetry_sources()
    const {
  std::vector<telemetry::CollectorSource> sources;
  sources.reserve(enclaves_.size() + remotes_.size());
  for (Enclave* enclave : enclaves_) {
    telemetry::CollectorSource s;
    s.name = "local" + std::to_string(sources.size());
    s.fetch_full = [enclave]() {
      return telemetry::to_json(
          telemetry::aggregate({enclave->telemetry_snapshot()}));
    };
    sources.push_back(std::move(s));
  }
  for (const RemoteEnclaveSource& remote : remotes_) {
    telemetry::CollectorSource s;
    s.name = remote.name;
    if (remote.fetch_telemetry_delta_json) {
      s.fetch_delta = remote.fetch_telemetry_delta_json;
    } else {
      s.fetch_full = remote.fetch_telemetry_json;
    }
    s.session = remote.session;
    sources.push_back(std::move(s));
  }
  return sources;
}

}  // namespace eden::core
