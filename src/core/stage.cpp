#include "core/stage.h"

#include <stdexcept>

#include "telemetry/span.h"

namespace eden::core {

Stage::Stage(std::string name, std::vector<std::string> classifier_fields,
             std::vector<std::string> meta_fields, ClassRegistry& registry)
    : name_(std::move(name)),
      classifier_fields_(std::move(classifier_fields)),
      meta_fields_(std::move(meta_fields)),
      registry_(registry) {}

StageInfo Stage::get_stage_info() const {
  return StageInfo{name_, classifier_fields_, meta_fields_};
}

RuleId Stage::create_rule(const std::string& rule_set, Classifier classifier,
                          const std::string& class_name,
                          MetaFieldMask meta_mask) {
  if (classifier.size() != classifier_fields_.size()) {
    throw std::invalid_argument(
        "classifier for stage '" + name_ + "' needs " +
        std::to_string(classifier_fields_.size()) + " field pattern(s)");
  }
  ClassificationRule rule;
  rule.id = next_rule_id_++;
  rule.classifier = std::move(classifier);
  rule.class_name = class_name;
  rule.class_id =
      registry_.intern(QualifiedClassName{name_, rule_set, class_name});
  rule.meta_mask = meta_mask;
  rule_sets_[rule_set].push_back(std::move(rule));
  return rule_sets_[rule_set].back().id;
}

bool Stage::remove_rule(const std::string& rule_set, RuleId id) {
  const auto set_it = rule_sets_.find(rule_set);
  if (set_it == rule_sets_.end()) return false;
  auto& rules = set_it->second;
  for (auto it = rules.begin(); it != rules.end(); ++it) {
    if (it->id == id) {
      rules.erase(it);
      if (rules.empty()) rule_sets_.erase(set_it);
      return true;
    }
  }
  return false;
}

std::size_t Stage::rule_count() const {
  std::size_t n = 0;
  for (const auto& [_, rules] : rule_sets_) n += rules.size();
  return n;
}

Classification Stage::classify(const MessageAttrs& attrs,
                               const netsim::PacketMeta& available) {
  Classification result;
  bool need_msg_id = false;
  MetaFieldMask merged_mask = 0;

  for (const auto& [set_name, rules] : rule_sets_) {
    (void)set_name;
    for (const ClassificationRule& rule : rules) {
      bool match = attrs.size() == rule.classifier.size();
      for (std::size_t i = 0; match && i < rule.classifier.size(); ++i) {
        match = rule.classifier[i].matches(attrs[i]);
      }
      if (!match) continue;
      result.classes.add(rule.class_id);
      merged_mask |= rule.meta_mask;
      if (rule.meta_mask & meta_bit(MetaField::msg_id)) need_msg_id = true;
      break;  // a message matches at most one rule per rule-set
    }
  }

  auto want = [merged_mask](MetaField f) {
    return (merged_mask & meta_bit(f)) != 0;
  };
  if (need_msg_id) {
    result.meta.msg_id =
        available.msg_id != 0 ? available.msg_id : next_msg_id();
  }
  if (want(MetaField::msg_type)) result.meta.msg_type = available.msg_type;
  if (want(MetaField::msg_size)) result.meta.msg_size = available.msg_size;
  if (want(MetaField::tenant)) result.meta.tenant = available.tenant;
  if (want(MetaField::key_hash)) result.meta.key_hash = available.key_hash;
  if (want(MetaField::flow_size)) result.meta.flow_size = available.flow_size;
  if (want(MetaField::app_priority)) {
    result.meta.app_priority = available.app_priority;
  }

  // Lifecycle tracing starts at classification — the first hop a message
  // takes through the stack. Sampled messages get a trace id stamped
  // into their metadata unconditionally of the rules' meta masks; every
  // later layer keys off it.
  auto& spans = telemetry::SpanCollector::instance();
  if (spans.enabled()) {
    result.meta.trace_id = spans.maybe_start_trace();
    if (result.meta.trace_id != 0) {
      spans.record_now(result.meta.trace_id, telemetry::Hop::stage_classify,
                       static_cast<std::int64_t>(result.classes.size()));
    }
  }
  return result;
}

}  // namespace eden::core
