#include "core/enclave.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "lang/disasm.h"
#include "lang/optimizer.h"
#include "util/hash.h"
#include "util/prefetch.h"

namespace eden::core {

// The immutable rule-set snapshot the data path runs against. Mutators
// copy the current snapshot, edit the copy and publish it with a single
// pointer swap; ActionEntry objects are *shared* between snapshots, so
// an action's global/message state, counters and locks survive rule
// churn, and snapshots only pay for the vector copies. A removed action
// stays alive until the last reader drops the snapshot referencing it.
struct Enclave::RuleState {
  std::uint64_t version = 0;
  std::vector<Table> tables;
  std::vector<FlowClassifierRule> flow_rules;
  std::vector<std::shared_ptr<ActionEntry>> actions;
};

// One staged transaction: mutations land in `state` (a shadow copy of
// the committed snapshot) and become visible only at commit_txn.
// Global-state writes to actions that pre-date the transaction cannot
// go to the shared entry directly (they would be visible immediately),
// so they are buffered here and applied at commit.
struct Enclave::Txn {
  std::uint64_t id = 0;
  std::shared_ptr<RuleState> state;
  // Actions with index >= base_actions were installed inside this
  // transaction: they are invisible to the data path until commit, so
  // their global state may be written in place.
  std::size_t base_actions = 0;
  struct GlobalWrite {
    std::shared_ptr<ActionEntry> entry;
    std::uint16_t slot = 0;
    bool is_array = false;
    std::int64_t scalar = 0;
    std::vector<std::int64_t> data;
    std::uint16_t stride = 1;
  };
  std::vector<GlobalWrite> writes;
};

namespace detail {

// Per-thread execution resources for one enclave instance: the
// interpreter (operand stack, heap, rng) plus a scratch packet-scope
// state block. Reused across packets so the steady-state data path does
// not allocate. Also caches the last rule-set snapshot this thread saw,
// keyed by its version, so the per-packet snapshot check is one atomic
// load and a compare.
struct ThreadState {
  lang::Interpreter interp;
  lang::StateBlock packet_block;
  lang::StateBlock message_block;       // scratch copy; committed on success
  lang::StateBlock message_checkpoint;  // last good state within a batch
  util::Rng rng;
  // Per-thread trace and histogram pacing (1-in-N executions); plain
  // countdowns here are cheaper than the ring's shared atomic ticket or
  // a thread_local on the per-packet path — ThreadState is already hot.
  std::uint32_t trace_countdown = 1;
  std::uint32_t hist_countdown = 1;
  // Paces the data path's opportunistic timer-wheel advance (idle
  // expiry + epoch reclaim) to one sweep per ~kExpiryPacePackets
  // packets per thread.
  std::uint32_t expiry_countdown = 1;
  std::shared_ptr<const Enclave::RuleState> cached_rules;
  std::uint64_t cached_epoch = ~0ull;

  // process_batch scratch, reused so a steady-state batch allocates
  // nothing: matched packets tagged with their (action, message) group
  // plus their arrival index (the sort tiebreak that keeps per-message
  // order), one contiguous per-group packet list, and the matched
  // per-class counter slots for post-run drop attribution.
  struct BatchItem {
    Enclave::ActionEntry* entry;
    std::int64_t key;
    std::uint32_t order;
    netsim::Packet* pkt;
  };
  std::vector<BatchItem> batch_items;
  std::vector<netsim::Packet*> batch_group;
  std::vector<std::pair<netsim::Packet*, Enclave::ClassCounters*>>
      batch_classes;

  ThreadState(const EnclaveConfig& config, const lang::StateSchema& schema)
      : interp(config.exec_limits, config.rng_seed),
        packet_block(
            lang::StateBlock::from_schema(schema, lang::Scope::packet)),
        rng(config.rng_seed ^ 0x517cc1b727220a95ULL) {}
};

}  // namespace detail

using detail::ThreadState;

namespace {

std::atomic<std::uint64_t> g_enclave_instance_counter{1};

// One opportunistic expiry/reclaim sweep per this many packets per
// thread. A sweep with nothing due is a handful of loads per shard, so
// the amortized data-path cost is negligible.
constexpr std::uint32_t kExpiryPacePackets = 1024;

// Key-sharded global serialization is sound exactly when the schema
// proves every global write disjoint by message key: all read_write
// global fields are key_partitioned arrays (a writable scalar or an
// unpartitioned array forces full serialization). Requires at least
// one writable field — otherwise the action would not be serialized on
// globals' account in the first place.
bool global_writes_key_disjoint(const lang::StateSchema& schema) {
  bool any_writable = false;
  for (const lang::FieldDef& f : schema.fields(lang::Scope::global)) {
    if (f.access != lang::Access::read_write) continue;
    if (f.kind == lang::FieldKind::scalar || !f.key_partitioned) return false;
    any_writable = true;
  }
  return any_writable;
}

// Re-initializes a (possibly recycled) FlowStore block to the schema's
// message-scope defaults, reusing the vectors' capacity. Must leave the
// block bit-identical to StateBlock::from_schema(schema, message).
void reset_message_block(const lang::StateSchema& schema,
                         lang::StateBlock& block) {
  block.scalars.assign(schema.scalar_count(lang::Scope::message), 0);
  block.arrays.resize(schema.array_count(lang::Scope::message));
  for (const lang::FieldDef& f : schema.fields(lang::Scope::message)) {
    const auto slot = schema.find(lang::Scope::message, f.name);
    if (!slot) continue;
    if (slot->kind == lang::FieldKind::scalar) {
      block.scalars[slot->slot] = f.default_value;
    } else {
      lang::ArrayValue& a = block.arrays[slot->slot];
      a.stride = slot->stride;
      a.data.clear();
    }
  }
}

std::uint64_t flow_hash(const netsim::Packet& p) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
    h ^= h >> 31;
  };
  mix(p.src);
  mix(p.dst);
  mix(p.src_port);
  mix(p.dst_port);
  mix(static_cast<std::uint64_t>(p.protocol));
  return h;
}

// Direction-insensitive connection hash: both (a -> b) and (b -> a)
// packets of one connection map to the same value.
std::uint64_t symmetric_flow_hash(const netsim::Packet& p) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
    h ^= h >> 31;
  };
  const std::uint64_t ep_a =
      (static_cast<std::uint64_t>(p.src) << 16) | p.src_port;
  const std::uint64_t ep_b =
      (static_cast<std::uint64_t>(p.dst) << 16) | p.dst_port;
  mix(ep_a < ep_b ? ep_a : ep_b);
  mix(ep_a < ep_b ? ep_b : ep_a);
  mix(static_cast<std::uint64_t>(p.protocol));
  return h;
}

}  // namespace

// Keyed by a unique instance id (not `this`) so a recycled address never
// aliases another enclave's thread state.
//
// Lifetime: each thread owns its ThreadState blocks, but a destroyed
// enclave's blocks must not accumulate (a long-lived worker thread that
// outlives many short-lived enclaves would otherwise leak one
// ThreadState per dead enclave forever). Enclave construction and
// destruction maintain a process-wide live-id set plus a death
// generation counter; get() compares the generation against the last
// one this thread saw and sweeps dead ids lazily. The sweep only runs
// on threads that keep using *some* enclave — an entirely idle thread
// frees its map at thread exit as before.
struct EnclaveThreadRegistry {
  using Map = std::unordered_map<std::uint64_t, std::unique_ptr<ThreadState>>;

  static std::mutex& live_mutex() {
    static std::mutex m;
    return m;
  }
  static std::unordered_set<std::uint64_t>& live_ids() {
    static std::unordered_set<std::uint64_t> ids;
    return ids;
  }
  static std::atomic<std::uint64_t>& death_generation() {
    static std::atomic<std::uint64_t> gen{0};
    return gen;
  }

  static Map& tls_map() {
    static thread_local Map map;
    return map;
  }

  static void note_created(std::uint64_t instance_id) {
    std::lock_guard lock(live_mutex());
    live_ids().insert(instance_id);
  }

  static void note_destroyed(std::uint64_t instance_id) {
    {
      std::lock_guard lock(live_mutex());
      live_ids().erase(instance_id);
    }
    death_generation().fetch_add(1, std::memory_order_release);
  }

  static ThreadState& get(std::uint64_t instance_id,
                          const EnclaveConfig& config,
                          const lang::StateSchema& schema) {
    Map& map = tls_map();
    static thread_local std::uint64_t seen_generation = 0;
    const std::uint64_t gen =
        death_generation().load(std::memory_order_acquire);
    if (gen != seen_generation) [[unlikely]] {
      seen_generation = gen;
      std::lock_guard lock(live_mutex());
      std::erase_if(map, [](const auto& kv) {
        return live_ids().count(kv.first) == 0;
      });
    }
    auto& slot = map[instance_id];
    if (!slot) slot = std::make_unique<ThreadState>(config, schema);
    return *slot;
  }
};

std::size_t enclave_thread_state_count() {
  return EnclaveThreadRegistry::tls_map().size();
}

Enclave::Enclave(std::string name, ClassRegistry& registry,
                 EnclaveConfig config)
    : name_(std::move(name)),
      registry_(registry),
      config_(config),
      base_schema_(make_enclave_schema()),
      instance_id_(g_enclave_instance_counter.fetch_add(1)),
      rules_(std::make_shared<RuleState>()) {
  if (config_.telemetry.enabled) {
    if (config_.telemetry.max_classes > 0) {
      // +2: an "unclassified" slot and an overflow slot past max_classes.
      class_counters_ = std::make_unique<ClassCounters[]>(
          config_.telemetry.max_classes + 2);
    }
    if (config_.telemetry.trace_sample_every > 0) {
      trace_ = std::make_unique<telemetry::TraceRing>(
          config_.telemetry.trace_capacity,
          config_.telemetry.trace_sample_every);
    }
    // Calibrate the latency tick clock now, not inside a timed region.
    if (config_.telemetry.histograms) telemetry::warm_clock();
  }
  // Lifecycle span tracing rendezvouses in the process-global collector;
  // enabling is idempotent, so every enclave configured for spans just
  // (re)arms it with its sampling rate.
  if (config_.telemetry.span_sample_every > 0) {
    spans_.enable(config_.telemetry.span_sample_every);
  }
  EnclaveThreadRegistry::note_created(instance_id_);
}

Enclave::~Enclave() {
  EnclaveThreadRegistry::note_destroyed(instance_id_);
}

// --- Snapshot plumbing ----------------------------------------------------

ThreadState& Enclave::thread_state() const {
  return EnclaveThreadRegistry::get(instance_id_, config_, base_schema_);
}

const Enclave::RuleState& Enclave::data_snapshot(ThreadState& ts) const {
  const std::uint64_t epoch = rules_epoch_.load(std::memory_order_acquire);
  if (ts.cached_epoch != epoch) [[unlikely]] {
    std::lock_guard lock(publish_mutex_);
    ts.cached_rules = rules_;
    // The snapshot read under the lock may already be newer than the
    // epoch that triggered the refresh; key the cache off what was
    // actually read.
    ts.cached_epoch = ts.cached_rules->version;
  }
  return *ts.cached_rules;
}

std::shared_ptr<const Enclave::RuleState> Enclave::committed() const {
  std::lock_guard lock(publish_mutex_);
  return rules_;
}

const Enclave::RuleState& Enclave::control_view_locked() const {
  if (txn_ != nullptr) return *txn_->state;
  // control_mutex_ is held, so no publish can race this read.
  return *rules_;
}

// Returns the state a mutation should edit: the transaction's shadow
// copy when one is open (changes stay staged), or a fresh copy of the
// committed snapshot otherwise.
std::shared_ptr<Enclave::RuleState> Enclave::begin_mutation_locked() {
  if (txn_ != nullptr) return txn_->state;
  return std::make_shared<RuleState>(*committed());
}

void Enclave::end_mutation_locked(std::shared_ptr<RuleState> next) {
  if (txn_ != nullptr) return;  // staged; published by commit_txn
  publish_locked(std::move(next));
}

std::uint64_t Enclave::publish_locked(std::shared_ptr<RuleState> next) {
  next->version = next_version_++;
  std::shared_ptr<const RuleState> published = std::move(next);
  const std::uint64_t version = published->version;
  {
    std::lock_guard lock(publish_mutex_);
    rules_ = std::move(published);
  }
  rules_epoch_.store(version, std::memory_order_release);
  return version;
}

// --- Transactions ---------------------------------------------------------

std::uint64_t Enclave::begin_txn() {
  std::lock_guard lock(control_mutex_);
  if (txn_ != nullptr) throw std::invalid_argument("transaction already open");
  txn_ = std::make_unique<Txn>();
  txn_->id = next_txn_id_++;
  txn_->state = std::make_shared<RuleState>(*committed());
  txn_->base_actions = txn_->state->actions.size();
  return txn_->id;
}

std::uint64_t Enclave::commit_txn() {
  std::lock_guard lock(control_mutex_);
  if (txn_ == nullptr) throw std::invalid_argument("no open transaction");
  // Apply the buffered global writes first, grouped so each action's
  // lock is taken once: the data path sees every pre-existing action
  // flip its globals atomically, and any *new* rules referencing those
  // actions only appear with the snapshot swap below, i.e. after their
  // state is in place.
  auto& writes = txn_->writes;
  std::stable_sort(writes.begin(), writes.end(),
                   [](const Txn::GlobalWrite& a, const Txn::GlobalWrite& b) {
                     return a.entry.get() < b.entry.get();
                   });
  for (std::size_t i = 0; i < writes.size();) {
    ActionEntry* entry = writes[i].entry.get();
    std::unique_lock glock(entry->global_mutex);
    for (; i < writes.size() && writes[i].entry.get() == entry; ++i) {
      Txn::GlobalWrite& w = writes[i];
      if (w.is_array) {
        entry->global_state.arrays[w.slot].stride = w.stride;
        entry->global_state.arrays[w.slot].data = std::move(w.data);
      } else {
        entry->global_state.scalars[w.slot] = w.scalar;
      }
    }
  }
  std::shared_ptr<RuleState> next = std::move(txn_->state);
  txn_.reset();
  return publish_locked(std::move(next));
}

void Enclave::abort_txn() {
  std::lock_guard lock(control_mutex_);
  txn_.reset();
}

bool Enclave::txn_open() const {
  std::lock_guard lock(control_mutex_);
  return txn_ != nullptr;
}

std::uint64_t Enclave::ruleset_version() const {
  return rules_epoch_.load(std::memory_order_acquire);
}

void Enclave::clear_all() {
  std::lock_guard lock(control_mutex_);
  auto state = begin_mutation_locked();
  state->actions.clear();
  state->tables.clear();
  state->flow_rules.clear();
  if (txn_ != nullptr) {
    // Everything installed from here on is transaction-fresh, and any
    // buffered writes targeted state that just got wiped.
    txn_->base_actions = 0;
    txn_->writes.clear();
  }
  end_mutation_locked(std::move(state));
}

// --- Enclave API (controller side) ----------------------------------------

ActionId Enclave::install_entry(std::shared_ptr<ActionEntry> entry) {
  // Runtime state machinery, shared by both install paths. The
  // FlowStore mirrors its created/expired/evicted counts into the
  // enclave counters, so enclave-lifetime accounting survives the
  // store being torn down with its action.
  if (entry->touches_message && entry->messages == nullptr) {
    state::FlowStoreConfig fc;
    fc.shards = config_.message_store_shards;
    fc.max_entries = config_.max_messages_per_action;
    fc.idle_timeout_ns = config_.message_idle_timeout_ns;
    fc.wheel_tick_ns = config_.message_wheel_tick_ns;
    fc.sink.created = &counters_.message_entries_created;
    fc.sink.expired = &counters_.message_entries_expired;
    fc.sink.evicted = &counters_.message_entries_evicted;
    entry->messages = std::make_unique<state::FlowStore>(fc);
  }
  if (entry->mode == lang::ConcurrencyMode::serialized &&
      global_writes_key_disjoint(entry->schema)) {
    entry->global_sharded = true;
    entry->global_stripes =
        std::make_unique<std::array<std::mutex, ActionEntry::kGlobalStripes>>();
  }
  std::lock_guard lock(control_mutex_);
  auto state = begin_mutation_locked();
  // Reinstalling a live name replaces the entry in its slot: the id —
  // and every rule addressing it — survives, so the data path flips to
  // the new program at the snapshot swap and name lookups can never
  // resolve to a stale duplicate. Snapshots still holding the old entry
  // keep it alive until their readers drain.
  std::shared_ptr<ActionEntry> replaced;
  std::size_t slot = state->actions.size();
  for (std::size_t i = 0; i < state->actions.size(); ++i) {
    if (state->actions[i] != nullptr &&
        state->actions[i]->name == entry->name) {
      replaced = state->actions[i];
      slot = i;
      break;
    }
  }
  entry->id = static_cast<ActionId>(slot);
  attach_instruments(*entry);
  const ActionId id = entry->id;
  if (slot == state->actions.size()) {
    state->actions.push_back(std::move(entry));
  } else {
    state->actions[slot] = std::move(entry);
    if (txn_ != nullptr) {
      // Writes staged against the replaced entry would land on a dead
      // object at commit; the new program starts from schema defaults.
      std::erase_if(txn_->writes, [&](const Txn::GlobalWrite& w) {
        return w.entry == replaced;
      });
    }
  }
  end_mutation_locked(std::move(state));
  return id;
}

ActionId Enclave::install_action(const std::string& name,
                                 lang::CompiledProgram program,
                                 std::vector<lang::FieldDef> global_fields) {
  auto entry = std::make_shared<ActionEntry>();
  entry->name = name;
  entry->native = false;
  entry->mode = program.concurrency;
  entry->touches_message =
      program.usage.touches_scope(lang::Scope::message);
  entry->schema = make_enclave_schema(std::move(global_fields));
  // Install-time lowering: reject malformed bytecode up front (it may
  // have arrived over the wire), optimize, and verify the result so the
  // data path can take the pre-verified dispatch. The second verify
  // doubles as a regression guard on the optimizer itself.
  lang::verify_program(program, entry->schema, config_.exec_limits);
  program = lang::optimize(std::move(program), config_.opt_level);
  lang::verify_program(program, entry->schema, config_.exec_limits);
  program.preverified = true;
  entry->program = std::move(program);
  entry->global_state =
      lang::StateBlock::from_schema(entry->schema, lang::Scope::global);
  if (config_.telemetry.profile_actions) {
    entry->profile = std::make_unique<telemetry::ProgramProfile>();
  }
  return install_entry(std::move(entry));
}

ActionId Enclave::install_native_action(
    const std::string& name, NativeActionFn fn, lang::ConcurrencyMode mode,
    bool touches_message, std::vector<lang::FieldDef> global_fields) {
  auto entry = std::make_shared<ActionEntry>();
  entry->name = name;
  entry->native = true;
  entry->native_fn = std::move(fn);
  entry->mode = mode;
  entry->touches_message = touches_message;
  entry->schema = make_enclave_schema(std::move(global_fields));
  entry->global_state =
      lang::StateBlock::from_schema(entry->schema, lang::Scope::global);
  return install_entry(std::move(entry));
}

// Resolves the action's histogram instruments once at install time, so
// the data path records through raw pointers (null = histograms off).
// Reinstalling an action under the same name reuses its series.
void Enclave::attach_instruments(ActionEntry& entry) {
  if (!config_.telemetry.enabled || !config_.telemetry.histograms) return;
  const telemetry::Labels labels{{"enclave", name_}, {"action", entry.name}};
  entry.latency_hist = &metrics_.histogram("eden_action_latency_ns", labels);
  if (!entry.native) {
    entry.steps_hist = &metrics_.histogram("eden_action_steps", labels);
  }
}

void Enclave::remove_action(ActionId id) {
  std::lock_guard lock(control_mutex_);
  const RuleState& view = control_view_locked();
  if (id >= view.actions.size() || view.actions[id] == nullptr) return;
  auto state = begin_mutation_locked();
  // Remove any rules pointing at the action, then drop it. The slot is
  // left as a hole so action ids stay stable.
  for (Table& table : state->tables) {
    std::erase_if(table.rules,
                  [id](const MatchRule& r) { return r.action == id; });
  }
  state->actions[id] = nullptr;
  end_mutation_locked(std::move(state));
}

std::optional<ActionId> Enclave::find_action(const std::string& name) const {
  std::lock_guard lock(control_mutex_);
  for (const auto& entry : control_view_locked().actions) {
    if (entry != nullptr && entry->name == name) return entry->id;
  }
  return std::nullopt;
}

TableId Enclave::create_table(const std::string& name) {
  std::lock_guard lock(control_mutex_);
  auto state = begin_mutation_locked();
  const TableId id = next_table_id_++;
  state->tables.push_back(Table{id, name, {}});
  end_mutation_locked(std::move(state));
  return id;
}

void Enclave::delete_table(TableId table) {
  std::lock_guard lock(control_mutex_);
  auto state = begin_mutation_locked();
  std::erase_if(state->tables,
                [table](const Table& t) { return t.id == table; });
  end_mutation_locked(std::move(state));
}

std::optional<TableId> Enclave::find_table_id(const std::string& name) const {
  std::lock_guard lock(control_mutex_);
  for (const Table& t : control_view_locked().tables) {
    if (t.name == name) return t.id;
  }
  return std::nullopt;
}

MatchRuleId Enclave::add_rule(TableId table, ClassPattern pattern,
                              ActionId action) {
  std::lock_guard lock(control_mutex_);
  auto state = begin_mutation_locked();
  Table* t = nullptr;
  for (Table& candidate : state->tables) {
    if (candidate.id == table) {
      t = &candidate;
      break;
    }
  }
  if (t == nullptr) throw std::invalid_argument("no such table");
  if (action >= state->actions.size() ||
      state->actions[action] == nullptr) {
    throw std::invalid_argument("no such action");
  }
  const MatchRuleId id = next_rule_id_++;
  t->rules.push_back(MatchRule{id, std::move(pattern), action});
  end_mutation_locked(std::move(state));
  return id;
}

bool Enclave::remove_rule(TableId table, MatchRuleId rule) {
  std::lock_guard lock(control_mutex_);
  auto state = begin_mutation_locked();
  bool removed = false;
  for (Table& t : state->tables) {
    if (t.id != table) continue;
    const auto before = t.rules.size();
    std::erase_if(t.rules,
                  [rule](const MatchRule& r) { return r.id == rule; });
    removed = t.rules.size() != before;
    break;
  }
  if (removed) end_mutation_locked(std::move(state));
  return removed;
}

std::size_t Enclave::rule_count(TableId table) const {
  std::lock_guard lock(control_mutex_);
  for (const Table& t : control_view_locked().tables) {
    if (t.id == table) return t.rules.size();
  }
  return 0;
}

void Enclave::add_flow_rule(FlowClassifierRule rule) {
  std::lock_guard lock(control_mutex_);
  auto state = begin_mutation_locked();
  state->flow_rules.push_back(rule);
  end_mutation_locked(std::move(state));
}

void Enclave::clear_flow_rules() {
  std::lock_guard lock(control_mutex_);
  auto state = begin_mutation_locked();
  state->flow_rules.clear();
  end_mutation_locked(std::move(state));
}

void Enclave::set_global_scalar(ActionId id, const std::string& field,
                                std::int64_t value) {
  std::lock_guard lock(control_mutex_);
  const RuleState& view = control_view_locked();
  if (id >= view.actions.size() || view.actions[id] == nullptr) {
    throw std::invalid_argument("no such action");
  }
  const std::shared_ptr<ActionEntry>& entry = view.actions[id];
  const auto slot = entry->schema.find(lang::Scope::global, field);
  if (!slot || slot->kind != lang::FieldKind::scalar) {
    throw std::invalid_argument("no global scalar '" + field + "'");
  }
  if (txn_ != nullptr && id < txn_->base_actions) {
    // Pre-existing action: stage the write; commit applies it.
    txn_->writes.push_back(
        Txn::GlobalWrite{entry, slot->slot, false, value, {}, 1});
    return;
  }
  std::unique_lock glock(entry->global_mutex);
  entry->global_state.scalars[slot->slot] = value;
}

void Enclave::set_global_array(ActionId id, const std::string& field,
                               std::vector<std::int64_t> data) {
  std::lock_guard lock(control_mutex_);
  const RuleState& view = control_view_locked();
  if (id >= view.actions.size() || view.actions[id] == nullptr) {
    throw std::invalid_argument("no such action");
  }
  const std::shared_ptr<ActionEntry>& entry = view.actions[id];
  const auto slot = entry->schema.find(lang::Scope::global, field);
  if (!slot || slot->kind == lang::FieldKind::scalar) {
    throw std::invalid_argument("no global array '" + field + "'");
  }
  if (data.size() % slot->stride != 0) {
    throw std::invalid_argument("array data for '" + field +
                                "' is not a whole number of records");
  }
  if (txn_ != nullptr && id < txn_->base_actions) {
    txn_->writes.push_back(Txn::GlobalWrite{entry, slot->slot, true, 0,
                                            std::move(data), slot->stride});
    return;
  }
  std::unique_lock glock(entry->global_mutex);
  entry->global_state.arrays[slot->slot].stride = slot->stride;
  entry->global_state.arrays[slot->slot].data = std::move(data);
}

std::int64_t Enclave::read_global_scalar(ActionId id,
                                         const std::string& field) const {
  const std::shared_ptr<ActionEntry> entry = checked_entry(id);
  const auto slot = entry->schema.find(lang::Scope::global, field);
  if (!slot || slot->kind != lang::FieldKind::scalar) {
    throw std::invalid_argument("no global scalar '" + field + "'");
  }
  std::shared_lock glock(entry->global_mutex);
  return entry->global_state.scalars[slot->slot];
}

std::shared_ptr<Enclave::ActionEntry> Enclave::checked_entry(
    ActionId id) const {
  std::lock_guard lock(control_mutex_);
  const RuleState& view = control_view_locked();
  if (id >= view.actions.size() || view.actions[id] == nullptr) {
    throw std::invalid_argument("no such action");
  }
  return view.actions[id];
}

std::int64_t Enclave::message_key(const netsim::Packet& p) {
  if (p.meta.msg_id != 0) return p.meta.msg_id;
  // Flow-granularity fallback: high bit set so flow keys never collide
  // with stage-assigned message ids (positive counters).
  return static_cast<std::int64_t>(flow_hash(p) | 0x8000000000000000ULL);
}

std::int64_t Enclave::symmetric_message_key(const netsim::Packet& p) {
  if (p.meta.msg_id != 0) return p.meta.msg_id;
  return static_cast<std::int64_t>(symmetric_flow_hash(p) |
                                   0x8000000000000000ULL);
}

std::uint64_t Enclave::steering_key(const netsim::Packet& p) {
  // Unstamped packets get their message identity assigned inside the
  // enclave from the five-tuple (classify_flow), so steering by a
  // five-tuple hash keeps every packet of that future message on one
  // shard; the symmetric variant also co-shards both directions of a
  // connection, which symmetric flow rules require.
  if (p.meta.msg_id != 0) return static_cast<std::uint64_t>(p.meta.msg_id);
  return symmetric_flow_hash(p);
}

std::int64_t Enclave::now_ns() const {
  // The injected clock (simulators) wins; otherwise the monotonic
  // clock, which is all the idleness machinery needs.
  if (clock_fn_ != nullptr) return clock_fn_(clock_ctx_);
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace {
// FlowStore init callback: runs under the shard lock for a freshly
// created (possibly recycled) entry.
struct MessageInitCtx {
  const lang::StateSchema* schema;
  const netsim::Packet* packet;
};

void init_message_block(void* vctx, lang::StateBlock& block) {
  auto* ctx = static_cast<MessageInitCtx*>(vctx);
  reset_message_block(*ctx->schema, block);
  init_message_state(*ctx->packet, block);
}
}  // namespace

state::FlowStore::Entry* Enclave::message_entry(
    const state::EpochDomain::Guard& guard, ActionEntry& entry,
    const netsim::Packet& p) {
  MessageInitCtx ctx{&entry.schema, &p};
  return entry.messages->acquire(guard, message_key(p), now_ns(),
                                 &init_message_block, &ctx);
}

// Opportunistic idle expiry: every thread on the data path advances the
// timer wheels (and reclaims epoch-retired memory) once per
// kExpiryPacePackets packets. Workers that want tighter expiry latency
// or stripe partitioning call advance_message_expiry() themselves.
void Enclave::maybe_advance_expiry(detail::ThreadState& ts,
                                   const RuleState& rules) {
  if (--ts.expiry_countdown != 0) [[likely]] {
    return;
  }
  ts.expiry_countdown = kExpiryPacePackets;
  const std::int64_t now = now_ns();
  for (const auto& entry : rules.actions) {
    if (entry != nullptr && entry->messages != nullptr) {
      entry->messages->advance(now);
    }
  }
}

void Enclave::advance_message_expiry(std::size_t stripe,
                                     std::size_t stripes) {
  if (stripes == 0) stripes = 1;
  const std::shared_ptr<const RuleState> rules = committed();
  const std::int64_t now = now_ns();
  for (const auto& entry : rules->actions) {
    if (entry != nullptr && entry->messages != nullptr) {
      entry->messages->advance_stripe(stripe, stripes, now);
    }
  }
}

void Enclave::classify_flow(const RuleState& rules,
                            netsim::Packet& packet) const {
  // Enclave-stage classification (Table 2, last row): five-tuple rules
  // assign a class and a flow-granularity message id.
  for (const FlowClassifierRule& rule : rules.flow_rules) {
    if (rule.matches(packet)) {
      packet.classes.add(rule.class_id);
      if (packet.meta.msg_id == 0) {
        packet.meta.msg_id = rule.symmetric ? symmetric_message_key(packet)
                                            : message_key(packet);
      }
      break;
    }
  }
}

Enclave::TableMatch Enclave::match_in_table(
    const Table& table, const netsim::Packet& packet) const {
  for (const MatchRule& rule : table.rules) {
    if (rule.pattern.match_any()) {
      // Attribute a match-any hit to the packet's primary class, if the
      // packet carries one.
      return {&rule,
              packet.classes.size() > 0 ? packet.classes[0] : kInvalidClass};
    }
    for (std::size_t i = 0; i < packet.classes.size(); ++i) {
      if (rule.pattern.matches(packet.classes[i], registry_)) {
        return {&rule, packet.classes[i]};
      }
    }
  }
  return {};
}

// Per-class counter slot, or null when per-class telemetry is off.
// Classes interned past max_classes share the overflow slot.
Enclave::ClassCounters* Enclave::class_counter(ClassId cls) {
  if (class_counters_ == nullptr) return nullptr;
  const std::size_t n = config_.telemetry.max_classes;
  const std::size_t idx = cls == kInvalidClass ? n : (cls < n ? cls : n + 1);
  return &class_counters_[idx];
}

bool Enclave::process(netsim::Packet& packet) {
  ThreadState& ts = thread_state();
  const RuleState& rules = data_snapshot(ts);
  counters_.packets.fetch_add(1, std::memory_order_relaxed);
  if (config_.message_idle_timeout_ns > 0) maybe_advance_expiry(ts, rules);
  return process_one(ts, rules, packet);
}

// One packet against an already-acquired snapshot. Shared by process()
// and the multi-table fallback of process_batch(), so a batch always
// pays for exactly one epoch check however it executes. Does not touch
// the packets counter (the entry points account for it).
bool Enclave::process_one(detail::ThreadState& ts, const RuleState& rules,
                          netsim::Packet& packet) {
  // Packets that arrive unstamped (direct callers without a stage in
  // front) start a lifecycle trace here, paced by the collector's own
  // 1-in-N countdown. Everything downstream keys off meta.trace_id, so
  // an untraced packet costs one branch per hop.
  if (config_.telemetry.span_sample_every != 0 && packet.meta.trace_id == 0) {
    packet.meta.trace_id = spans_.maybe_start_trace();
  }
  classify_flow(rules, packet);

  const std::int64_t trace_id = packet.meta.trace_id;
  std::int64_t span_t0 = 0;
  if (trace_id != 0) span_t0 = spans_.now_ns();

  for (const Table& table : rules.tables) {
    const TableMatch hit = match_in_table(table, packet);
    if (hit.rule == nullptr) continue;
    ActionEntry* entry = hit.rule->action < rules.actions.size()
                             ? rules.actions[hit.rule->action].get()
                             : nullptr;
    if (entry == nullptr) continue;
    if (trace_id != 0) {
      const std::int64_t now = spans_.now_ns();
      spans_.record(trace_id, telemetry::Hop::enclave_match, now,
                    now - span_t0, entry->id);
    }
    // With per-class telemetry on, the class slot is the sole counter
    // for this packet and stats() folds the slots back into the totals;
    // matching costs the same single fetch_add either way.
    ClassCounters* cls = class_counter(hit.cls);
    if (cls != nullptr) {
      cls->matched.fetch_add(1, std::memory_order_relaxed);
    } else {
      counters_.matched.fetch_add(1, std::memory_order_relaxed);
    }
    run_action(ts, *entry, packet);
    if (packet.drop_mark) {
      if (cls != nullptr) {
        cls->dropped.fetch_add(1, std::memory_order_relaxed);
      } else {
        counters_.dropped_by_action.fetch_add(1, std::memory_order_relaxed);
      }
      if (trace_id != 0) {
        spans_.record_now(trace_id, telemetry::Hop::enclave_drop, entry->id);
      }
      return false;
    }
  }
  return true;
}

std::size_t Enclave::process_batch(std::span<netsim::PacketPtr> batch) {
  ThreadState& ts = thread_state();
  const RuleState& rules = data_snapshot(ts);
  counters_.packets.fetch_add(batch.size(), std::memory_order_relaxed);
  if (config_.message_idle_timeout_ns > 0) maybe_advance_expiry(ts, rules);
  // Multiple tables compose per packet; run the per-packet path, still
  // against the batch's one snapshot acquisition.
  if (rules.tables.size() > 1) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (i + util::kPrefetchAhead < batch.size()) {
        util::prefetch_write(batch[i + util::kPrefetchAhead].get());
      }
      if (process_one(ts, rules, *batch[i])) ++kept;
    }
    return kept;
  }

  const Table* table = rules.tables.empty() ? nullptr : &rules.tables.front();

  // Pre-process: classify, match, and split by (action, message) so the
  // lock and state copy are taken once per message rather than once per
  // packet. Grouping reuses the thread's scratch vectors — a sort of
  // (entry, key, arrival index) triples — so a steady-state batch costs
  // no allocation; the arrival-index tiebreak preserves order within
  // each message.
  ts.batch_items.clear();
  ts.batch_classes.clear();
  const bool span_start = config_.telemetry.span_sample_every != 0;
  std::uint32_t order = 0;
  for (std::size_t bi = 0; bi < batch.size(); ++bi) {
    // Prefetch-ahead: packet bi+k's header/meta lines are on their way
    // while bi classifies and matches, hiding the pointer-chase miss
    // that otherwise dominates a cold batch.
    if (bi + util::kPrefetchAhead < batch.size()) {
      util::prefetch_write(batch[bi + util::kPrefetchAhead].get());
    }
    const netsim::PacketPtr& p = batch[bi];
    if (span_start && p->meta.trace_id == 0) {
      p->meta.trace_id = spans_.maybe_start_trace();
    }
    classify_flow(rules, *p);
    if (table == nullptr) continue;
    const TableMatch hit = match_in_table(*table, *p);
    if (hit.rule == nullptr) continue;
    ActionEntry* entry = hit.rule->action < rules.actions.size()
                             ? rules.actions[hit.rule->action].get()
                             : nullptr;
    if (entry == nullptr) continue;
    if (p->meta.trace_id != 0) {
      // Match duration is folded into the pre-process pass here; record
      // the hop as an instant so the batched and per-packet paths emit
      // the same sequence.
      spans_.record_now(p->meta.trace_id, telemetry::Hop::enclave_match,
                        entry->id);
    }
    // Sole matched/dropped accounting when per-class telemetry is on
    // (stats() folds the slots back into the totals).
    if (ClassCounters* cls = class_counter(hit.cls); cls != nullptr) {
      cls->matched.fetch_add(1, std::memory_order_relaxed);
      ts.batch_classes.emplace_back(p.get(), cls);
    } else {
      counters_.matched.fetch_add(1, std::memory_order_relaxed);
    }
    // global_sharded actions group by key even without message state:
    // the stripe lock is per message key, so batching same-key packets
    // amortizes it exactly like the message lock.
    const std::int64_t key = entry->touches_message || entry->global_sharded
                                 ? message_key(*p)
                                 : 0;
    ts.batch_items.push_back({entry, key, order++, p.get()});
  }
  std::sort(ts.batch_items.begin(), ts.batch_items.end(),
            [](const ThreadState::BatchItem& a,
               const ThreadState::BatchItem& b) {
              if (a.entry != b.entry) return a.entry < b.entry;
              if (a.key != b.key) return a.key < b.key;
              return a.order < b.order;
            });
  if (!ts.batch_items.empty()) {
    // Overlap the message-store misses across the whole batch: the
    // first wave warms each group's table lines, the second chases the
    // slot pointers and pulls the entry lines write-intent, so the
    // acquire inside run_action_batch hits cache even at millions of
    // live messages. Group heads only — the groups share entries.
    state::EpochDomain::Guard guard(state::EpochDomain::instance());
    const auto is_head = [&](std::size_t i) {
      const ThreadState::BatchItem& it = ts.batch_items[i];
      if (!it.entry->touches_message || it.entry->messages == nullptr) {
        return false;
      }
      return i == 0 || it.entry != ts.batch_items[i - 1].entry ||
             it.key != ts.batch_items[i - 1].key;
    };
    for (std::size_t i = 0; i < ts.batch_items.size(); ++i) {
      if (is_head(i)) {
        const ThreadState::BatchItem& it = ts.batch_items[i];
        it.entry->messages->prefetch(guard, it.key);
      }
    }
    for (std::size_t i = 0; i < ts.batch_items.size(); ++i) {
      if (is_head(i)) {
        const ThreadState::BatchItem& it = ts.batch_items[i];
        it.entry->messages->prefetch_entry(guard, it.key);
      }
    }
    for (std::size_t i = 0; i < ts.batch_items.size(); ++i) {
      if (is_head(i)) {
        const ThreadState::BatchItem& it = ts.batch_items[i];
        it.entry->messages->prefetch_payload(guard, it.key);
      }
    }
  }
  for (std::size_t i = 0; i < ts.batch_items.size();) {
    const ThreadState::BatchItem& head = ts.batch_items[i];
    ts.batch_group.clear();
    std::size_t j = i;
    for (; j < ts.batch_items.size() &&
           ts.batch_items[j].entry == head.entry &&
           ts.batch_items[j].key == head.key;
         ++j) {
      ts.batch_group.push_back(ts.batch_items[j].pkt);
    }
    // Warm the next group's head while this group executes.
    if (j < ts.batch_items.size()) {
      util::prefetch_write(ts.batch_items[j].pkt);
    }
    run_action_batch(ts, *head.entry, ts.batch_group);
    i = j;
  }

  std::size_t kept = 0;
  for (const netsim::PacketPtr& p : batch) {
    if (!p->drop_mark) {
      ++kept;
    } else {
      if (class_counters_ == nullptr) {
        counters_.dropped_by_action.fetch_add(1, std::memory_order_relaxed);
      }
      if (p->meta.trace_id != 0) {
        spans_.record_now(p->meta.trace_id, telemetry::Hop::enclave_drop);
      }
    }
  }
  for (const auto& [p, cls] : ts.batch_classes) {
    if (p->drop_mark) cls->dropped.fetch_add(1, std::memory_order_relaxed);
  }
  return kept;
}

void Enclave::run_action(detail::ThreadState& ts, ActionEntry& entry,
                         netsim::Packet& packet) {
  netsim::Packet* one = &packet;
  run_action_batch(ts, entry, std::span<netsim::Packet* const>(&one, 1));
}

// Executes the action for every packet of one message (all packets in
// `packets` share the message key, or the action does not touch message
// state). Locking and the message-state copy happen once for the whole
// group; each packet still commits or rolls back independently.
void Enclave::run_action_batch(detail::ThreadState& ts, ActionEntry& entry,
                               std::span<netsim::Packet* const> packets) {
  if (packets.empty()) return;

  // Message-state entries are epoch-protected: the guard keeps
  // msg_entry (and the table it was probed through) alive for the
  // whole group even if concurrent expiry, capacity eviction or a
  // shard resize unlinks it mid-run.
  state::EpochDomain::Guard guard(state::EpochDomain::instance());
  state::FlowStore::Entry* msg_entry = nullptr;
  if (entry.touches_message) {
    msg_entry = message_entry(guard, entry, *packets[0]);
  }

  // Concurrency model of Section 3.4.4: writable global state fully
  // serializes; writable message state serializes per message; otherwise
  // executions proceed in parallel. Readers always take the global lock
  // shared so controller updates stay atomic with respect to a run.
  //
  // Refinement: when the schema proves global writes disjoint by
  // message key (global_sharded), "fully serialized" degrades to
  // "serialized per key stripe" — the group takes its key's stripe
  // exclusively plus the global lock SHARED, so different-key groups
  // run concurrently while whole-state controller writers (which take
  // the global lock exclusively) still exclude every execution.
  std::shared_lock<std::shared_mutex> global_shared;
  std::unique_lock<std::shared_mutex> global_unique;
  std::unique_lock<std::mutex> stripe_lock;
  std::unique_lock<std::mutex> msg_lock;
  if (entry.mode == lang::ConcurrencyMode::serialized) {
    if (entry.global_sharded) {
      const auto key = static_cast<std::uint64_t>(message_key(*packets[0]));
      stripe_lock = std::unique_lock(
          (*entry.global_stripes)[util::mix64(key) &
                                  (ActionEntry::kGlobalStripes - 1)]);
      global_shared = std::shared_lock(entry.global_mutex);
    } else {
      global_unique = std::unique_lock(entry.global_mutex);
    }
  } else {
    global_shared = std::shared_lock(entry.global_mutex);
    if (entry.mode == lang::ConcurrencyMode::per_message &&
        msg_entry != nullptr) {
      msg_lock = std::unique_lock(msg_entry->lock);
    }
  }

  // The function runs against a consistent *copy* of the message state
  // (Section 3.4.4); the authoritative entry is updated only from
  // successful executions, so a faulty action never leaves partial
  // message-state writes behind.
  lang::StateBlock* msg_block = nullptr;
  const bool writes_message =
      entry.native ? entry.touches_message
                   : entry.program.usage.writes_scope(lang::Scope::message);
  if (msg_entry != nullptr) {
    ts.message_block = msg_entry->block;
    msg_block = &ts.message_block;
    if (writes_message) ts.message_checkpoint = ts.message_block;
  }

  if (!entry.native) ts.interp.set_clock(clock_fn_, clock_ctx_);
  // Hot-spot profiling (opt-in diagnostics): the profile's cells are
  // plain counters, so profiled executions of this action serialize on
  // the profile mutex for the whole group.
  std::unique_lock<std::mutex> profile_lock;
  if (!entry.native && entry.profile != nullptr) {
    profile_lock = std::unique_lock(entry.profile_mutex);
    ts.interp.set_profile(entry.profile.get(),
                          config_.telemetry.profile_cycle_sample_every);
  }
  bool msg_dirty = false;

  // Telemetry is pay-for-what-you-enable: with histograms off the
  // per-packet cost is the relaxed counter adds; with them on, the
  // not-sampled packets add a thread-local counter check and only every
  // histogram_sample_every-th execution is actually timed.
  const std::uint32_t hist_every =
      entry.latency_hist != nullptr ? config_.telemetry.histogram_sample_every
                                    : 0;
  telemetry::TraceRing* ring = trace_.get();

  for (std::size_t pi = 0; pi < packets.size(); ++pi) {
    netsim::Packet* packet = packets[pi];
    // Overlap the next packet's state-load miss with this execution.
    if (pi + 1 < packets.size()) util::prefetch_write(packets[pi + 1]);
    load_packet_state(*packet, ts.packet_block);

    bool sampled = false;
    if (hist_every != 0 && --ts.hist_countdown == 0) {
      ts.hist_countdown = hist_every;
      sampled = true;
    }
    const std::uint64_t t0 = sampled ? telemetry::now_ticks() : 0;
    const std::int64_t span_id = packet->meta.trace_id;
    std::int64_t span_t0 = 0;
    if (span_id != 0) span_t0 = spans_.now_ns();

    lang::ExecStatus status;
    std::uint64_t steps = 0;
    if (entry.native) {
      NativeCtx ctx{ts.rng,
                    clock_fn_ != nullptr ? clock_fn_(clock_ctx_) : 0};
      status = entry.native_fn(ts.packet_block, msg_block,
                               &entry.global_state, ctx);
    } else {
      const lang::ExecResult result = ts.interp.execute(
          entry.program, &ts.packet_block, msg_block, &entry.global_state);
      status = result.status;
      steps = result.steps;
      entry.counters.steps.fetch_add(steps, std::memory_order_relaxed);
    }

    if (sampled) {
      entry.latency_hist->record(
          telemetry::ticks_to_ns(telemetry::now_ticks() - t0));
      if (entry.steps_hist != nullptr) entry.steps_hist->record(steps);
    }
    if (span_id != 0) {
      const std::int64_t now = spans_.now_ns();
      spans_.record(span_id, telemetry::Hop::action_exec, now, now - span_t0,
                    entry.id);
    }
    entry.counters.executions.fetch_add(1, std::memory_order_relaxed);

    if (ring != nullptr && --ts.trace_countdown == 0) {
      ts.trace_countdown = ring->sample_every();
      telemetry::TraceRecord rec;
      rec.ts_ns = clock_fn_ != nullptr
                      ? clock_fn_(clock_ctx_)
                      : static_cast<std::int64_t>(
                            telemetry::ticks_to_ns(telemetry::now_ticks()));
      rec.class_id =
          packet->classes.size() > 0 ? packet->classes[0] : kInvalidClass;
      rec.action_id = entry.id;
      rec.status = static_cast<std::uint8_t>(status);
      rec.steps = steps;
      rec.meta = packet->meta;
      ring->push(rec);
    }

    if (status != lang::ExecStatus::ok) {
      // A faulty execution terminates without touching the packet or
      // the message state (Section 3.4.3): rewind to the last good
      // checkpoint so the next packet of the batch starts clean.
      entry.counters.errors.fetch_add(1, std::memory_order_relaxed);
      entry.counters.by_status[static_cast<std::size_t>(status)].fetch_add(
          1, std::memory_order_relaxed);
      if (msg_entry != nullptr && writes_message) {
        ts.message_block = ts.message_checkpoint;
      }
      continue;
    }
    store_packet_state(ts.packet_block, *packet);
    if (msg_entry != nullptr && writes_message) {
      ts.message_checkpoint = ts.message_block;
      msg_dirty = true;
    }
  }

  if (profile_lock.owns_lock()) ts.interp.set_profile(nullptr);

  if (msg_entry != nullptr && msg_dirty) {
    msg_entry->block = ts.message_block;
  }
}

EnclaveStats Enclave::stats() const {
  EnclaveStats s;
  s.packets = counters_.packets.load(std::memory_order_relaxed);
  s.matched = counters_.matched.load(std::memory_order_relaxed);
  s.dropped_by_action =
      counters_.dropped_by_action.load(std::memory_order_relaxed);
  // With per-class telemetry on, matched/dropped live in the class
  // slots (the data path increments exactly one counter per packet
  // either way); fold them back into the totals here.
  if (class_counters_ != nullptr) {
    const std::size_t n = config_.telemetry.max_classes;
    for (std::size_t i = 0; i < n + 2; ++i) {
      s.matched += class_counters_[i].matched.load(std::memory_order_relaxed);
      s.dropped_by_action +=
          class_counters_[i].dropped.load(std::memory_order_relaxed);
    }
  }
  s.message_entries_created =
      counters_.message_entries_created.load(std::memory_order_relaxed);
  s.message_entries_evicted =
      counters_.message_entries_evicted.load(std::memory_order_relaxed);
  s.message_entries_expired =
      counters_.message_entries_expired.load(std::memory_order_relaxed);
  // Live entries are per-store state, not a monotonic counter: sum the
  // currently installed actions' stores.
  const std::shared_ptr<const RuleState> rules = committed();
  for (const auto& entry : rules->actions) {
    if (entry != nullptr && entry->messages != nullptr) {
      s.message_entries_live += entry->messages->live();
    }
  }
  return s;
}

bool Enclave::action_global_sharded(ActionId id) const {
  return checked_entry(id)->global_sharded;
}

state::FlowStoreStats Enclave::message_store_stats(ActionId id) const {
  const std::shared_ptr<ActionEntry> entry = checked_entry(id);
  if (entry->messages == nullptr) return {};
  return entry->messages->stats();
}

ActionStats Enclave::action_stats(ActionId id) const {
  const std::shared_ptr<ActionEntry> entry = checked_entry(id);
  ActionStats s;
  s.executions = entry->counters.executions.load(std::memory_order_relaxed);
  s.errors = entry->counters.errors.load(std::memory_order_relaxed);
  s.steps = entry->counters.steps.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < s.errors_by_status.size(); ++i) {
    s.errors_by_status[i] =
        entry->counters.by_status[i].load(std::memory_order_relaxed);
  }
  return s;
}

std::string Enclave::class_display_name(ClassId cls) const {
  if (cls == kInvalidClass) return "(unclassified)";
  if (cls >= registry_.size()) return "(unknown)";
  return registry_.name(cls).full();
}

telemetry::EnclaveTelemetry Enclave::telemetry_snapshot() const {
  telemetry::EnclaveTelemetry t;
  t.enclave = name_;
  t.telemetry_enabled = config_.telemetry.enabled;

  const EnclaveStats s = stats();
  t.packets = s.packets;
  t.matched = s.matched;
  t.dropped_by_action = s.dropped_by_action;
  t.message_entries_created = s.message_entries_created;
  t.message_entries_evicted = s.message_entries_evicted;
  t.message_entries_expired = s.message_entries_expired;

  const std::shared_ptr<const RuleState> rules = committed();
  // Message-state store section: totals across the installed actions'
  // FlowStores (eden_state_* series).
  for (const auto& entry : rules->actions) {
    if (entry == nullptr || entry->messages == nullptr) continue;
    const state::FlowStoreStats fs = entry->messages->stats();
    t.state.present = true;
    t.state.live += fs.live;
    t.state.created += fs.created;
    t.state.expired += fs.expired;
    t.state.evicted += fs.evicted;
    t.state.resizes += fs.resizes;
    t.state.probe_len.merge(fs.probe_len);
  }
  for (const auto& entry : rules->actions) {
    if (entry == nullptr) continue;
    telemetry::ActionTelemetry a;
    a.name = entry->name;
    a.native = entry->native;
    a.executions = entry->counters.executions.load(std::memory_order_relaxed);
    a.errors = entry->counters.errors.load(std::memory_order_relaxed);
    a.steps = entry->counters.steps.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < a.errors_by_status.size(); ++i) {
      a.errors_by_status[i] =
          entry->counters.by_status[i].load(std::memory_order_relaxed);
    }
    if (entry->latency_hist != nullptr) {
      a.has_histograms = true;
      a.latency_ns = entry->latency_hist->snapshot();
      if (entry->steps_hist != nullptr) {
        a.steps_hist = entry->steps_hist->snapshot();
      }
    }
    if (entry->profile != nullptr) {
      telemetry::ProgramProfile prof;
      {
        std::lock_guard plock(entry->profile_mutex);
        prof = *entry->profile;
      }
      if (!prof.empty()) {
        a.has_profile = true;
        a.profile_runs = prof.runs;
        a.profile_instructions = prof.total_count();
        a.hotspots = telemetry::hottest(prof);
        for (telemetry::HotSpot& h : a.hotspots) {
          h.text = lang::disassemble_instr(entry->program, h.pc);
        }
      }
    }
    t.actions.push_back(std::move(a));
  }

  if (class_counters_ != nullptr) {
    const std::size_t n = config_.telemetry.max_classes;
    for (std::size_t i = 0; i < n + 2; ++i) {
      const std::uint64_t matched =
          class_counters_[i].matched.load(std::memory_order_relaxed);
      const std::uint64_t dropped =
          class_counters_[i].dropped.load(std::memory_order_relaxed);
      if (matched == 0 && dropped == 0) continue;
      telemetry::ClassTelemetry c;
      c.matched = matched;
      c.dropped = dropped;
      if (i == n) {
        c.name = "(unclassified)";
      } else if (i == n + 1) {
        c.name = "(overflow)";
      } else {
        c.name = class_display_name(static_cast<ClassId>(i));
      }
      t.classes.push_back(std::move(c));
    }
  }

  if (trace_ != nullptr) {
    t.trace_sampled = trace_->total_recorded();
    t.trace_sample_every = trace_->sample_every();
    for (const telemetry::TraceRecord& r : trace_->snapshot()) {
      telemetry::TraceEntry e;
      e.ts_ns = r.ts_ns;
      e.class_name = class_display_name(r.class_id);
      const bool live = r.action_id < rules->actions.size() &&
                        rules->actions[r.action_id] != nullptr;
      e.action = live ? rules->actions[r.action_id]->name
                      : "#" + std::to_string(r.action_id);
      e.status = std::string(
          lang::exec_status_name(static_cast<lang::ExecStatus>(r.status)));
      e.steps = r.steps;
      e.meta = r.meta;
      t.trace.push_back(std::move(e));
    }
  }
  return t;
}

telemetry::ProgramProfile Enclave::action_profile(ActionId id) const {
  const std::shared_ptr<ActionEntry> entry = checked_entry(id);
  telemetry::ProgramProfile out;
  if (entry->profile != nullptr) {
    std::lock_guard lock(entry->profile_mutex);
    out = *entry->profile;
  }
  return out;
}

std::optional<std::int64_t> Enclave::peek_message_state(
    ActionId id, std::int64_t msg_key, std::uint16_t slot) const {
  const std::shared_ptr<ActionEntry> entry = checked_entry(id);
  if (entry->messages == nullptr) return std::nullopt;
  // Peek semantics: find() does not stamp last_touch, so peeking never
  // keeps an idle entry alive. The guard pins the entry; its lock
  // orders the read against per-message writers.
  state::EpochDomain::Guard guard(entry->messages->domain());
  state::FlowStore::Entry* e = entry->messages->find(guard, msg_key);
  if (e == nullptr) return std::nullopt;
  std::lock_guard elock(e->lock);
  if (slot >= e->block.scalars.size()) return std::nullopt;
  return e->block.scalars[slot];
}

}  // namespace eden::core
