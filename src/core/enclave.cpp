#include "core/enclave.h"

#include <map>
#include <stdexcept>

#include "lang/optimizer.h"

namespace eden::core {

namespace {

std::atomic<std::uint64_t> g_enclave_instance_counter{1};

// Per-thread execution resources for one enclave instance: the
// interpreter (operand stack, heap, rng) plus a scratch packet-scope
// state block. Reused across packets so the steady-state data path does
// not allocate.
struct ThreadState {
  lang::Interpreter interp;
  lang::StateBlock packet_block;
  lang::StateBlock message_block;       // scratch copy; committed on success
  lang::StateBlock message_checkpoint;  // last good state within a batch
  util::Rng rng;

  ThreadState(const EnclaveConfig& config, const lang::StateSchema& schema)
      : interp(config.exec_limits, config.rng_seed),
        packet_block(
            lang::StateBlock::from_schema(schema, lang::Scope::packet)),
        rng(config.rng_seed ^ 0x517cc1b727220a95ULL) {}
};

std::uint64_t flow_hash(const netsim::Packet& p) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
    h ^= h >> 31;
  };
  mix(p.src);
  mix(p.dst);
  mix(p.src_port);
  mix(p.dst_port);
  mix(static_cast<std::uint64_t>(p.protocol));
  return h;
}

// Direction-insensitive connection hash: both (a -> b) and (b -> a)
// packets of one connection map to the same value.
std::uint64_t symmetric_flow_hash(const netsim::Packet& p) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
    h ^= h >> 31;
  };
  const std::uint64_t ep_a =
      (static_cast<std::uint64_t>(p.src) << 16) | p.src_port;
  const std::uint64_t ep_b =
      (static_cast<std::uint64_t>(p.dst) << 16) | p.dst_port;
  mix(ep_a < ep_b ? ep_a : ep_b);
  mix(ep_a < ep_b ? ep_b : ep_a);
  mix(static_cast<std::uint64_t>(p.protocol));
  return h;
}

}  // namespace

// Keyed by a unique instance id (not `this`) so a recycled address never
// aliases another enclave's thread state.
struct EnclaveThreadRegistry {
  static ThreadState& get(std::uint64_t instance_id,
                          const EnclaveConfig& config,
                          const lang::StateSchema& schema) {
    static thread_local std::unordered_map<std::uint64_t,
                                           std::unique_ptr<ThreadState>>
        map;
    auto& slot = map[instance_id];
    if (!slot) slot = std::make_unique<ThreadState>(config, schema);
    return *slot;
  }
};

Enclave::Enclave(std::string name, ClassRegistry& registry,
                 EnclaveConfig config)
    : name_(std::move(name)),
      registry_(registry),
      config_(config),
      base_schema_(make_enclave_schema()),
      instance_id_(g_enclave_instance_counter.fetch_add(1)) {}

Enclave::~Enclave() = default;

ActionId Enclave::install_action(const std::string& name,
                                 lang::CompiledProgram program,
                                 std::vector<lang::FieldDef> global_fields) {
  auto entry = std::make_unique<ActionEntry>();
  entry->id = static_cast<ActionId>(actions_.size());
  entry->name = name;
  entry->native = false;
  entry->mode = program.concurrency;
  entry->touches_message =
      program.usage.touches_scope(lang::Scope::message);
  entry->schema = make_enclave_schema(std::move(global_fields));
  // Install-time lowering: reject malformed bytecode up front (it may
  // have arrived over the wire), optimize, and verify the result so the
  // data path can take the pre-verified dispatch. The second verify
  // doubles as a regression guard on the optimizer itself.
  lang::verify_program(program, entry->schema, config_.exec_limits);
  program = lang::optimize(std::move(program), config_.opt_level);
  lang::verify_program(program, entry->schema, config_.exec_limits);
  program.preverified = true;
  entry->program = std::move(program);
  entry->global_state =
      lang::StateBlock::from_schema(entry->schema, lang::Scope::global);
  const ActionId id = entry->id;
  actions_.push_back(std::move(entry));
  return id;
}

ActionId Enclave::install_native_action(
    const std::string& name, NativeActionFn fn, lang::ConcurrencyMode mode,
    bool touches_message, std::vector<lang::FieldDef> global_fields) {
  auto entry = std::make_unique<ActionEntry>();
  entry->id = static_cast<ActionId>(actions_.size());
  entry->name = name;
  entry->native = true;
  entry->native_fn = std::move(fn);
  entry->mode = mode;
  entry->touches_message = touches_message;
  entry->schema = make_enclave_schema(std::move(global_fields));
  entry->global_state =
      lang::StateBlock::from_schema(entry->schema, lang::Scope::global);
  const ActionId id = entry->id;
  actions_.push_back(std::move(entry));
  return id;
}

void Enclave::remove_action(ActionId id) {
  if (id >= actions_.size() || actions_[id] == nullptr) return;
  // Remove any rules pointing at the action, then drop it.
  for (Table& table : tables_) {
    std::erase_if(table.rules,
                  [id](const MatchRule& r) { return r.action == id; });
  }
  actions_[id] = nullptr;
}

std::optional<ActionId> Enclave::find_action(const std::string& name) const {
  for (const auto& entry : actions_) {
    if (entry != nullptr && entry->name == name) return entry->id;
  }
  return std::nullopt;
}

TableId Enclave::create_table(const std::string& name) {
  tables_.push_back(Table{next_table_id_++, name, {}});
  return tables_.back().id;
}

void Enclave::delete_table(TableId table) {
  std::erase_if(tables_, [table](const Table& t) { return t.id == table; });
}

Enclave::Table* Enclave::find_table(TableId id) {
  for (Table& t : tables_) {
    if (t.id == id) return &t;
  }
  return nullptr;
}

MatchRuleId Enclave::add_rule(TableId table, ClassPattern pattern,
                              ActionId action) {
  Table* t = find_table(table);
  if (t == nullptr) throw std::invalid_argument("no such table");
  if (action >= actions_.size() || actions_[action] == nullptr) {
    throw std::invalid_argument("no such action");
  }
  const MatchRuleId id = next_rule_id_++;
  t->rules.push_back(MatchRule{id, std::move(pattern), action});
  return id;
}

bool Enclave::remove_rule(TableId table, MatchRuleId rule) {
  Table* t = find_table(table);
  if (t == nullptr) return false;
  const auto before = t->rules.size();
  std::erase_if(t->rules,
                [rule](const MatchRule& r) { return r.id == rule; });
  return t->rules.size() != before;
}

std::size_t Enclave::rule_count(TableId table) const {
  for (const Table& t : tables_) {
    if (t.id == table) return t.rules.size();
  }
  return 0;
}

void Enclave::set_global_scalar(ActionId id, const std::string& field,
                                std::int64_t value) {
  ActionEntry& entry = checked_action(id);
  const auto slot = entry.schema.find(lang::Scope::global, field);
  if (!slot || slot->kind != lang::FieldKind::scalar) {
    throw std::invalid_argument("no global scalar '" + field + "'");
  }
  std::unique_lock lock(entry.global_mutex);
  entry.global_state.scalars[slot->slot] = value;
}

void Enclave::set_global_array(ActionId id, const std::string& field,
                               std::vector<std::int64_t> data) {
  ActionEntry& entry = checked_action(id);
  const auto slot = entry.schema.find(lang::Scope::global, field);
  if (!slot || slot->kind == lang::FieldKind::scalar) {
    throw std::invalid_argument("no global array '" + field + "'");
  }
  if (data.size() % slot->stride != 0) {
    throw std::invalid_argument("array data for '" + field +
                                "' is not a whole number of records");
  }
  std::unique_lock lock(entry.global_mutex);
  entry.global_state.arrays[slot->slot].stride = slot->stride;
  entry.global_state.arrays[slot->slot].data = std::move(data);
}

std::int64_t Enclave::read_global_scalar(ActionId id,
                                         const std::string& field) const {
  const ActionEntry& entry = checked_action(id);
  const auto slot = entry.schema.find(lang::Scope::global, field);
  if (!slot || slot->kind != lang::FieldKind::scalar) {
    throw std::invalid_argument("no global scalar '" + field + "'");
  }
  std::shared_lock lock(entry.global_mutex);
  return entry.global_state.scalars[slot->slot];
}

Enclave::ActionEntry& Enclave::checked_action(ActionId id) {
  if (id >= actions_.size() || actions_[id] == nullptr) {
    throw std::invalid_argument("no such action");
  }
  return *actions_[id];
}

const Enclave::ActionEntry& Enclave::checked_action(ActionId id) const {
  if (id >= actions_.size() || actions_[id] == nullptr) {
    throw std::invalid_argument("no such action");
  }
  return *actions_[id];
}

std::int64_t Enclave::message_key(const netsim::Packet& p) {
  if (p.meta.msg_id != 0) return p.meta.msg_id;
  // Flow-granularity fallback: high bit set so flow keys never collide
  // with stage-assigned message ids (positive counters).
  return static_cast<std::int64_t>(flow_hash(p) | 0x8000000000000000ULL);
}

std::int64_t Enclave::symmetric_message_key(const netsim::Packet& p) {
  if (p.meta.msg_id != 0) return p.meta.msg_id;
  return static_cast<std::int64_t>(symmetric_flow_hash(p) |
                                   0x8000000000000000ULL);
}

std::shared_ptr<Enclave::MessageEntry> Enclave::message_entry(
    ActionEntry& entry, const netsim::Packet& p) {
  const std::int64_t key = message_key(p);
  {
    std::shared_lock lock(entry.messages_mutex);
    const auto it = entry.messages.find(key);
    if (it != entry.messages.end()) return it->second;
  }
  std::unique_lock lock(entry.messages_mutex);
  auto& slot = entry.messages[key];
  if (slot == nullptr) {
    slot = std::make_shared<MessageEntry>();
    slot->block =
        lang::StateBlock::from_schema(entry.schema, lang::Scope::message);
    init_message_state(p, slot->block);
    entry.creation_order.push_back(key);
    ++stats_.message_entries_created;
    // Insertion-order eviction keeps the store bounded; shared_ptr keeps
    // an evicted entry alive until any in-flight execution finishes.
    while (entry.messages.size() > config_.max_messages_per_action &&
           !entry.creation_order.empty()) {
      entry.messages.erase(entry.creation_order.front());
      entry.creation_order.pop_front();
      ++stats_.message_entries_evicted;
    }
  }
  return slot;
}

void Enclave::classify_flow(netsim::Packet& packet) const {
  // Enclave-stage classification (Table 2, last row): five-tuple rules
  // assign a class and a flow-granularity message id.
  for (const FlowClassifierRule& rule : flow_rules_) {
    if (rule.matches(packet)) {
      packet.classes.add(rule.class_id);
      if (packet.meta.msg_id == 0) {
        packet.meta.msg_id = rule.symmetric ? symmetric_message_key(packet)
                                            : message_key(packet);
      }
      break;
    }
  }
}

const Enclave::MatchRule* Enclave::match_in_table(
    Table& table, const netsim::Packet& packet) const {
  for (const MatchRule& rule : table.rules) {
    if (rule.pattern.match_any()) return &rule;
    for (std::size_t i = 0; i < packet.classes.size(); ++i) {
      if (rule.pattern.matches(packet.classes[i], registry_)) return &rule;
    }
  }
  return nullptr;
}

bool Enclave::process(netsim::Packet& packet) {
  ++stats_.packets;
  classify_flow(packet);

  for (Table& table : tables_) {
    const MatchRule* hit = match_in_table(table, packet);
    if (hit == nullptr) continue;
    ActionEntry* entry = actions_[hit->action].get();
    if (entry == nullptr) continue;
    ++stats_.matched;
    run_action(*entry, packet);
    if (packet.drop_mark) {
      ++stats_.dropped_by_action;
      return false;
    }
  }
  return true;
}

std::size_t Enclave::process_batch(std::span<netsim::PacketPtr> batch) {
  // Multiple tables compose per packet; keep that path simple.
  if (tables_.size() > 1) {
    std::size_t kept = 0;
    for (const netsim::PacketPtr& p : batch) {
      if (process(*p)) ++kept;
    }
    return kept;
  }

  stats_.packets += batch.size();
  Table* table = tables_.empty() ? nullptr : &tables_.front();

  // Pre-process: classify, match, and split by (action, message) so the
  // lock and state copy are taken once per message rather than once per
  // packet. Order within each message is preserved.
  std::map<std::pair<ActionEntry*, std::int64_t>,
           std::vector<netsim::Packet*>>
      groups;
  for (const netsim::PacketPtr& p : batch) {
    classify_flow(*p);
    if (table == nullptr) continue;
    const MatchRule* hit = match_in_table(*table, *p);
    if (hit == nullptr) continue;
    ActionEntry* entry = actions_[hit->action].get();
    if (entry == nullptr) continue;
    ++stats_.matched;
    const std::int64_t key =
        entry->touches_message ? message_key(*p) : 0;
    groups[{entry, key}].push_back(p.get());
  }
  for (auto& [key, packets] : groups) {
    run_action_batch(*key.first, packets);
  }

  std::size_t kept = 0;
  for (const netsim::PacketPtr& p : batch) {
    if (p->drop_mark) {
      ++stats_.dropped_by_action;
    } else {
      ++kept;
    }
  }
  return kept;
}

void Enclave::run_action(ActionEntry& entry, netsim::Packet& packet) {
  netsim::Packet* one = &packet;
  run_action_batch(entry, std::span<netsim::Packet* const>(&one, 1));
}

// Executes the action for every packet of one message (all packets in
// `packets` share the message key, or the action does not touch message
// state). Locking and the message-state copy happen once for the whole
// group; each packet still commits or rolls back independently.
void Enclave::run_action_batch(ActionEntry& entry,
                               std::span<netsim::Packet* const> packets) {
  if (packets.empty()) return;
  ThreadState& ts =
      EnclaveThreadRegistry::get(instance_id_, config_, base_schema_);

  std::shared_ptr<MessageEntry> msg_entry;
  if (entry.touches_message) msg_entry = message_entry(entry, *packets[0]);

  // Concurrency model of Section 3.4.4: writable global state fully
  // serializes; writable message state serializes per message; otherwise
  // executions proceed in parallel. Readers always take the global lock
  // shared so controller updates stay atomic with respect to a run.
  std::shared_lock<std::shared_mutex> global_shared;
  std::unique_lock<std::shared_mutex> global_unique;
  std::unique_lock<std::mutex> msg_lock;
  if (entry.mode == lang::ConcurrencyMode::serialized) {
    global_unique = std::unique_lock(entry.global_mutex);
  } else {
    global_shared = std::shared_lock(entry.global_mutex);
    if (entry.mode == lang::ConcurrencyMode::per_message &&
        msg_entry != nullptr) {
      msg_lock = std::unique_lock(msg_entry->mutex);
    }
  }

  // The function runs against a consistent *copy* of the message state
  // (Section 3.4.4); the authoritative entry is updated only from
  // successful executions, so a faulty action never leaves partial
  // message-state writes behind.
  lang::StateBlock* msg_block = nullptr;
  const bool writes_message =
      entry.native ? entry.touches_message
                   : entry.program.usage.writes_scope(lang::Scope::message);
  if (msg_entry != nullptr) {
    ts.message_block = msg_entry->block;
    msg_block = &ts.message_block;
    if (writes_message) ts.message_checkpoint = ts.message_block;
  }

  if (!entry.native) ts.interp.set_clock(clock_fn_, clock_ctx_);
  bool msg_dirty = false;

  for (netsim::Packet* packet : packets) {
    load_packet_state(*packet, ts.packet_block);

    lang::ExecStatus status;
    if (entry.native) {
      NativeCtx ctx{ts.rng,
                    clock_fn_ != nullptr ? clock_fn_(clock_ctx_) : 0};
      status = entry.native_fn(ts.packet_block, msg_block,
                               &entry.global_state, ctx);
    } else {
      const lang::ExecResult result = ts.interp.execute(
          entry.program, &ts.packet_block, msg_block, &entry.global_state);
      status = result.status;
      entry.stats.steps += result.steps;
    }

    ++entry.stats.executions;
    if (status != lang::ExecStatus::ok) {
      // A faulty execution terminates without touching the packet or
      // the message state (Section 3.4.3): rewind to the last good
      // checkpoint so the next packet of the batch starts clean.
      ++entry.stats.errors;
      if (msg_entry != nullptr && writes_message) {
        ts.message_block = ts.message_checkpoint;
      }
      continue;
    }
    store_packet_state(ts.packet_block, *packet);
    if (msg_entry != nullptr && writes_message) {
      ts.message_checkpoint = ts.message_block;
      msg_dirty = true;
    }
  }

  if (msg_entry != nullptr && msg_dirty) {
    msg_entry->block = ts.message_block;
  }
}

ActionStats Enclave::action_stats(ActionId id) const {
  const ActionEntry& entry = checked_action(id);
  return entry.stats;
}

std::optional<std::int64_t> Enclave::peek_message_state(
    ActionId id, std::int64_t msg_key, std::uint16_t slot) const {
  const ActionEntry& entry = checked_action(id);
  std::shared_lock lock(entry.messages_mutex);
  const auto it = entry.messages.find(msg_key);
  if (it == entry.messages.end()) return std::nullopt;
  if (slot >= it->second->block.scalars.size()) return std::nullopt;
  return it->second->block.scalars[slot];
}

}  // namespace eden::core
