// Stages: Eden-compliant applications and libraries (Section 3.3).
//
// A stage declares which application-specific fields it can classify on
// (Table 2) and which metadata it can emit. The controller programs it
// through the stage API of Table 3:
//   S0 get_stage_info()
//   S1 create_rule(rule_set, classifier, class_name, metadata)
//   S2 remove_rule(rule_set, rule_id)
// At run time the application hands each message's attribute values to
// classify(), which evaluates every rule-set and returns the classes and
// metadata to attach to the message's packets.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/class_name.h"
#include "netsim/packet.h"

namespace eden::core {

// Which PacketMeta fields a classification rule attaches (the
// "{meta-data}" part of Figure 6's rules).
enum class MetaField : std::uint8_t {
  msg_id = 0,
  msg_type,
  msg_size,
  tenant,
  key_hash,
  flow_size,
  app_priority,
};

using MetaFieldMask = std::uint32_t;
inline constexpr MetaFieldMask meta_bit(MetaField f) {
  return MetaFieldMask{1} << static_cast<int>(f);
}
// The common case: a unique message identifier plus the message size.
inline constexpr MetaFieldMask kMetaIdAndSize =
    meta_bit(MetaField::msg_id) | meta_bit(MetaField::msg_size);
inline constexpr MetaFieldMask kMetaAll = 0x7f;

// One component of a classifier: exact value or wildcard. Values are
// strings; numeric message attributes are matched by decimal spelling.
struct FieldPattern {
  bool wildcard = true;
  std::string value;

  static FieldPattern any() { return FieldPattern{}; }
  static FieldPattern exact(std::string v) {
    return FieldPattern{false, std::move(v)};
  }
  bool matches(const std::string& attr) const {
    return wildcard || value == attr;
  }
};

// A classifier is one pattern per stage classifier field, e.g. for the
// memcached stage <msg_type, key>: <GET, *>, <*, "a">, <*, *>.
using Classifier = std::vector<FieldPattern>;

// Attribute values of one message, aligned with the stage's classifier
// fields.
using MessageAttrs = std::vector<std::string>;

struct StageInfo {
  std::string name;
  std::vector<std::string> classifier_fields;
  std::vector<std::string> meta_fields;
};

using RuleId = std::uint64_t;

struct ClassificationRule {
  RuleId id = 0;
  Classifier classifier;
  std::string class_name;  // local class name within the rule-set
  ClassId class_id = kInvalidClass;
  MetaFieldMask meta_mask = kMetaIdAndSize;
};

// Result of classifying one message: the interned classes (at most one
// per rule-set) plus the metadata to carry on the message's packets.
struct Classification {
  netsim::ClassList classes;
  netsim::PacketMeta meta;
};

class Stage {
 public:
  // `classifier_fields`: the application fields this stage can classify
  // on; `meta_fields`: metadata it can generate (for get_stage_info).
  Stage(std::string name, std::vector<std::string> classifier_fields,
        std::vector<std::string> meta_fields, ClassRegistry& registry);
  virtual ~Stage() = default;

  // --- Stage API (Table 3), used by the controller ---------------------

  StageInfo get_stage_info() const;

  // Creates <classifier> -> [class_name, {meta}] in `rule_set`; the rule
  // is appended (first match wins within a rule-set). Throws
  // std::invalid_argument if the classifier arity does not match the
  // stage's classifier fields.
  RuleId create_rule(const std::string& rule_set, Classifier classifier,
                     const std::string& class_name,
                     MetaFieldMask meta_mask = kMetaIdAndSize);

  // Removes a rule; returns false if it does not exist.
  bool remove_rule(const std::string& rule_set, RuleId id);

  std::size_t rule_count() const;

  // --- Data path --------------------------------------------------------

  // Classifies one message: evaluates every rule-set (first matching
  // rule per set, per Section 3.3) and merges the requested metadata
  // from `available`. Assigns a fresh msg_id if the rule requests one.
  Classification classify(const MessageAttrs& attrs,
                          const netsim::PacketMeta& available);

  const std::string& name() const { return name_; }

 protected:
  std::int64_t next_msg_id() { return ++msg_id_counter_; }

 private:
  std::string name_;
  std::vector<std::string> classifier_fields_;
  std::vector<std::string> meta_fields_;
  ClassRegistry& registry_;
  std::map<std::string, std::vector<ClassificationRule>> rule_sets_;
  RuleId next_rule_id_ = 1;
  std::int64_t msg_id_counter_ = 0;
};

}  // namespace eden::core
