#include "core/enclave_schema.h"

namespace eden::core {

using lang::Access;
using lang::FieldDef;
using lang::Scope;
using lang::StateBlock;
using lang::StateSchema;

StateSchema make_enclave_schema(std::vector<FieldDef> global_fields) {
  StateSchema schema;
  // Packet scope — order must match PacketSlot.
  schema.scalar(Scope::packet, "size", Access::read_only,
                "ipv4.total_length");
  schema.scalar(Scope::packet, "payload", Access::read_only);
  schema.scalar(Scope::packet, "priority", Access::read_write, "802.1q.pcp");
  schema.scalar(Scope::packet, "path", Access::read_write, "802.1q.vid", -1);
  schema.scalar(Scope::packet, "queue", Access::read_write, "", -1);
  schema.scalar(Scope::packet, "drop", Access::read_write);
  schema.scalar(Scope::packet, "charge", Access::read_write);
  schema.scalar(Scope::packet, "src", Access::read_only, "ipv4.src");
  schema.scalar(Scope::packet, "dst", Access::read_only, "ipv4.dst");
  schema.scalar(Scope::packet, "src_port", Access::read_only, "tcp.src_port");
  schema.scalar(Scope::packet, "dst_port", Access::read_only, "tcp.dst_port");
  schema.scalar(Scope::packet, "proto", Access::read_only, "ipv4.protocol");
  schema.scalar(Scope::packet, "seq", Access::read_only, "tcp.seq");
  schema.scalar(Scope::packet, "msg_id", Access::read_only);
  schema.scalar(Scope::packet, "msg_type", Access::read_only);
  schema.scalar(Scope::packet, "msg_size", Access::read_only);
  schema.scalar(Scope::packet, "tenant", Access::read_only);
  schema.scalar(Scope::packet, "key_hash", Access::read_only);
  schema.scalar(Scope::packet, "flow_size", Access::read_only);
  schema.scalar(Scope::packet, "app_priority", Access::read_only, "", 1);

  // Message scope — order must match MessageSlot.
  schema.scalar(Scope::message, "size", Access::read_write);
  schema.scalar(Scope::message, "priority", Access::read_write, "", 1);
  schema.scalar(Scope::message, "path", Access::read_write, "", -1);
  schema.scalar(Scope::message, "packets", Access::read_write);
  schema.scalar(Scope::message, "state0", Access::read_write);
  schema.scalar(Scope::message, "state1", Access::read_write);
  schema.scalar(Scope::message, "state2", Access::read_write);
  schema.scalar(Scope::message, "state3", Access::read_write);

  for (auto& field : global_fields) {
    schema.add(Scope::global, std::move(field));
  }
  return schema;
}

void load_packet_state(const netsim::Packet& p, StateBlock& block) {
  auto& s = block.scalars;
  s[PacketSlot::size] = p.size_bytes;
  s[PacketSlot::payload] = p.payload_bytes;
  s[PacketSlot::priority] = p.priority;
  s[PacketSlot::path] = p.path_label;
  s[PacketSlot::queue] = p.rl_queue;
  s[PacketSlot::drop] = p.drop_mark ? 1 : 0;
  s[PacketSlot::charge] = p.charge_bytes;
  s[PacketSlot::src] = p.src;
  s[PacketSlot::dst] = p.dst;
  s[PacketSlot::src_port] = p.src_port;
  s[PacketSlot::dst_port] = p.dst_port;
  s[PacketSlot::proto] = static_cast<std::int64_t>(p.protocol);
  s[PacketSlot::seq] = static_cast<std::int64_t>(p.seq);
  s[PacketSlot::msg_id] = p.meta.msg_id;
  s[PacketSlot::msg_type] = p.meta.msg_type;
  s[PacketSlot::msg_size] = p.meta.msg_size;
  s[PacketSlot::tenant] = p.meta.tenant;
  s[PacketSlot::key_hash] = p.meta.key_hash;
  s[PacketSlot::flow_size] = p.meta.flow_size;
  s[PacketSlot::app_priority] = p.meta.app_priority;
}

void store_packet_state(const StateBlock& block, netsim::Packet& p) {
  const auto& s = block.scalars;
  const std::int64_t prio = s[PacketSlot::priority];
  p.priority = static_cast<std::uint8_t>(
      prio < 0 ? 0
               : (prio >= netsim::kMaxPriorities ? netsim::kMaxPriorities - 1
                                                 : prio));
  p.path_label = static_cast<std::int32_t>(s[PacketSlot::path]);
  p.rl_queue = static_cast<std::int32_t>(s[PacketSlot::queue]);
  p.drop_mark = s[PacketSlot::drop] != 0;
  const std::int64_t charge = s[PacketSlot::charge];
  p.charge_bytes = charge <= 0 ? 0 : static_cast<std::uint32_t>(charge);
}

void init_message_state(const netsim::Packet& p, StateBlock& block) {
  auto& s = block.scalars;
  s[MessageSlot::size] = 0;
  s[MessageSlot::priority] = p.meta.app_priority;
  s[MessageSlot::path] = -1;
  s[MessageSlot::packets] = 0;
  s[MessageSlot::state0] = 0;
  s[MessageSlot::state1] = 0;
  s[MessageSlot::state2] = 0;
  s[MessageSlot::state3] = 0;
}

}  // namespace eden::core
