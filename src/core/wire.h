// The controller <-> enclave wire protocol.
//
// The paper's controller is logically centralized and programs enclaves
// remotely through the enclave API (Section 3.4.5). This module gives
// that API a concrete wire form: each API call encodes to a compact
// binary command, the enclave-side agent applies decoded commands to a
// local Enclave, and a RemoteEnclave client mirrors the Enclave API over
// any byte transport (in tests and examples, a simple in-process
// channel).
//
// Commands carry the action-function bytecode exactly as
// CompiledProgram::serialize() emits it, so the same artifact the
// compiler produces is what crosses the wire to OS and NIC enclaves.
#pragma once

#include <functional>
#include <optional>

#include "core/enclave.h"
#include "core/stage.h"

namespace eden::core::wire {

enum class Command : std::uint8_t {
  install_action = 1,
  remove_action,
  create_table,
  delete_table,
  add_rule,
  remove_rule,
  set_global_scalar,
  set_global_array,
  add_flow_rule,
  clear_flow_rules,
  read_global_scalar,
  // Stats read-back: the enclave returns its telemetry snapshot as
  // JSON in Response::payload.
  get_telemetry,
  // Stage API (Table 3).
  get_stage_info,
  create_stage_rule,
  remove_stage_rule,
  // Lifecycle-span read-back: the enclave host returns the process-wide
  // SpanCollector contents as Chrome trace_event JSON in
  // Response::payload. Appended after the stage commands so existing
  // frames keep their numbering.
  get_spans,
  // Control-plane session commands (src/controlplane): transactional
  // rule-set updates and the resync protocol. Appended last so every
  // existing frame keeps its numbering.
  begin_txn,    // value = transaction id
  commit_txn,   // value = committed rule-set version
  abort_txn,
  // Wipes actions, tables, rules and flow rules (staged when a
  // transaction is open). Resync replays the journal on a blank slate.
  reset_state,
  // Rule management addressed by *table name* instead of TableId, so a
  // resync replay can pipeline table creation and rule installs without
  // waiting for create_table responses.
  add_rule_named,     // value = MatchRuleId
  remove_rule_named,
  get_ruleset_version,  // value = committed rule-set version
  // Incremental stats read-back: the request echoes the (epoch, seq)
  // the controller last decoded; the agent's TelemetryCursor answers
  // with a telemetry::DeltaPayload JSON — a delta when the echo matches
  // its cursor, a full snapshot under a fresh epoch otherwise. Appended
  // last so every existing frame keeps its numbering.
  get_telemetry_delta,
};

enum class Status : std::uint8_t {
  ok = 0,
  bad_request,     // malformed frame
  unknown_action,  // named action not installed
  unknown_table,
  rejected,        // enclave-side validation failed (bad field, ...)
};

struct Response {
  Status status = Status::ok;
  std::uint64_t value = 0;  // ids / read results
  std::string error;        // human-readable detail on failure
  std::vector<std::uint8_t> payload;  // structured results (stage info)
};

// --- Command encoders (controller side) --------------------------------

std::vector<std::uint8_t> encode_install_action(
    const std::string& name, const lang::CompiledProgram& program,
    std::span<const lang::FieldDef> global_fields);
std::vector<std::uint8_t> encode_remove_action(const std::string& name);
std::vector<std::uint8_t> encode_create_table(const std::string& name);
std::vector<std::uint8_t> encode_delete_table(TableId table);
std::vector<std::uint8_t> encode_add_rule(TableId table,
                                          const std::string& pattern,
                                          const std::string& action_name);
std::vector<std::uint8_t> encode_remove_rule(TableId table, MatchRuleId rule);
std::vector<std::uint8_t> encode_set_global_scalar(
    const std::string& action_name, const std::string& field,
    std::int64_t value);
std::vector<std::uint8_t> encode_set_global_array(
    const std::string& action_name, const std::string& field,
    std::span<const std::int64_t> data);
std::vector<std::uint8_t> encode_add_flow_rule(const FlowClassifierRule& rule,
                                               const std::string& class_name);
std::vector<std::uint8_t> encode_clear_flow_rules();
std::vector<std::uint8_t> encode_read_global_scalar(
    const std::string& action_name, const std::string& field);
std::vector<std::uint8_t> encode_get_telemetry();
std::vector<std::uint8_t> encode_get_spans();
std::vector<std::uint8_t> encode_begin_txn();
std::vector<std::uint8_t> encode_commit_txn();
std::vector<std::uint8_t> encode_abort_txn();
std::vector<std::uint8_t> encode_reset_state();
std::vector<std::uint8_t> encode_add_rule_named(const std::string& table_name,
                                                const std::string& pattern,
                                                const std::string& action_name);
std::vector<std::uint8_t> encode_remove_rule_named(
    const std::string& table_name, MatchRuleId rule);
std::vector<std::uint8_t> encode_get_ruleset_version();
std::vector<std::uint8_t> encode_get_telemetry_delta(std::uint64_t epoch,
                                                     std::uint64_t seq);

// Stage API command encoders (Table 3: S0 get_stage_info,
// S1 create_rule, S2 remove_rule).
std::vector<std::uint8_t> encode_get_stage_info();
std::vector<std::uint8_t> encode_create_stage_rule(
    const std::string& rule_set, const Classifier& classifier,
    const std::string& class_name, MetaFieldMask meta_mask);
std::vector<std::uint8_t> encode_remove_stage_rule(const std::string& rule_set,
                                                   RuleId rule);

// --- Agents ------------------------------------------------------------------

// Agent-side state behind get_telemetry_delta: the snapshot as last
// reported on this connection plus the (epoch, seq) stamp the
// controller must echo to earn a delta. One cursor per connection —
// the control-plane agent owns one and a reconnect or agent restart
// gets a new cursor, whose first reply is necessarily a full snapshot
// under a fresh process-global epoch (so a stale controller echo can
// never alias a new cursor's stamps). Epoch/seq semantics and the
// payload format live in telemetry/delta.h.
class TelemetryCursor {
 public:
  // Optional hook filling EnclaveTelemetry::host_series with
  // host-level gauges/counters the enclave cannot see (data-plane ring
  // depth, pool exhaustion, ...). Called once per poll, before
  // diffing, so host series ride the same delta machinery.
  using HostSeriesFn =
      std::function<std::vector<std::pair<std::string, double>>()>;
  void set_host_series(HostSeriesFn fn) { host_series_ = std::move(fn); }

  // Answers one get_telemetry_delta request: takes a fresh snapshot,
  // replies with a delta when (epoch, seq) matches the cursor (and no
  // counter regressed), else a full snapshot under a fresh epoch.
  // Returns the encoded telemetry::DeltaPayload JSON.
  std::string handle(Enclave& enclave, std::uint64_t epoch,
                     std::uint64_t seq);

  std::uint64_t epoch() const { return epoch_; }
  std::uint64_t seq() const { return seq_; }

 private:
  std::uint64_t epoch_ = 0;
  std::uint64_t seq_ = 0;
  bool primed_ = false;  // prev_ holds the last reported snapshot
  telemetry::EnclaveTelemetry prev_;
  HostSeriesFn host_series_;
};

// Reads the opcode off an encoded command frame without decoding the
// rest (the opcode sits right after the magic). nullopt on frames too
// short, with a bad magic, or with an out-of-range opcode. Tracing uses
// this to label agent-side spans with the command they applied.
std::optional<Command> peek_command(std::span<const std::uint8_t> frame);

// Decodes one command frame and applies it to `enclave`. Never throws:
// malformed frames and failed validations come back as a Response.
// `cursor` (may be null) answers get_telemetry_delta; without one the
// command degrades to stateless full snapshots.
Response apply(Enclave& enclave, std::span<const std::uint8_t> frame,
               TelemetryCursor* cursor);
Response apply(Enclave& enclave, std::span<const std::uint8_t> frame);

// Stage-side agent: applies stage commands to an application's stage.
Response apply_stage(Stage& stage, std::span<const std::uint8_t> frame);

std::vector<std::uint8_t> encode_response(const Response& response);
Response decode_response(std::span<const std::uint8_t> frame);

// Decodes the payload of a get_stage_info response.
std::optional<StageInfo> decode_stage_info(
    std::span<const std::uint8_t> payload);

// --- Controller-side client ---------------------------------------------

// Mirrors the Enclave API over a request/response byte transport.
class RemoteEnclave {
 public:
  // The transport sends one command frame and returns the response
  // frame (e.g. wire over TCP; in tests, a direct call to apply()).
  using Transport =
      std::function<std::vector<std::uint8_t>(std::vector<std::uint8_t>)>;

  explicit RemoteEnclave(Transport transport)
      : transport_(std::move(transport)) {}

  Response install_action(const std::string& name,
                          const lang::CompiledProgram& program,
                          std::span<const lang::FieldDef> global_fields);
  Response remove_action(const std::string& name);
  Response create_table(const std::string& name);
  Response delete_table(TableId table);
  Response add_rule(TableId table, const std::string& pattern,
                    const std::string& action_name);
  Response remove_rule(TableId table, MatchRuleId rule);
  Response set_global_scalar(const std::string& action_name,
                             const std::string& field, std::int64_t value);
  Response set_global_array(const std::string& action_name,
                            const std::string& field,
                            std::span<const std::int64_t> data);
  Response add_flow_rule(const FlowClassifierRule& rule,
                         const std::string& class_name);
  Response read_global_scalar(const std::string& action_name,
                              const std::string& field);
  // Stats read-back (the telemetry half of the enclave API): the
  // enclave's telemetry snapshot as JSON in Response::payload. The
  // string overload returns the JSON directly, empty on failure.
  Response get_telemetry();
  std::string get_telemetry_json();
  // Incremental read-back: the telemetry::DeltaPayload JSON for the
  // echoed (epoch, seq) — empty string on failure. Feed the result to
  // a telemetry::DeltaDecoder and echo its epoch()/seq() next poll.
  Response get_telemetry_delta(std::uint64_t epoch, std::uint64_t seq);
  std::string get_telemetry_delta_json(std::uint64_t epoch,
                                       std::uint64_t seq);
  // Lifecycle spans as Chrome trace_event JSON (empty on failure). The
  // collector is process-global on the enclave side, so one query per
  // host suffices regardless of how many enclaves it runs.
  Response get_spans();
  std::string get_spans_json();
  // Transactions and resync (the control-plane session layer drives
  // these; exposed here so tests and single-process controllers can use
  // the same commands over a synchronous transport).
  Response begin_txn();
  Response commit_txn();
  Response abort_txn();
  Response reset_state();
  Response add_rule_named(const std::string& table_name,
                          const std::string& pattern,
                          const std::string& action_name);
  Response remove_rule_named(const std::string& table_name, MatchRuleId rule);
  Response get_ruleset_version();

 private:
  Response roundtrip(std::vector<std::uint8_t> frame);
  Transport transport_;
};

// Controller-side client for a remote stage (the Table 3 API).
class RemoteStage {
 public:
  using Transport = RemoteEnclave::Transport;

  explicit RemoteStage(Transport transport)
      : transport_(std::move(transport)) {}

  // S0: returns nullopt if the remote side failed.
  std::optional<StageInfo> get_stage_info();
  // S1: returns the rule id in Response::value.
  Response create_rule(const std::string& rule_set,
                       const Classifier& classifier,
                       const std::string& class_name,
                       MetaFieldMask meta_mask = kMetaIdAndSize);
  // S2.
  Response remove_rule(const std::string& rule_set, RuleId rule);

 private:
  Transport transport_;
};

// Convenience: transports bound directly to local components (tests,
// single-process deployments).
RemoteEnclave::Transport loopback_transport(Enclave& enclave);
// Loopback with delta support: the referenced cursor must outlive the
// transport (it plays the role of the agent's per-connection state).
RemoteEnclave::Transport loopback_transport(Enclave& enclave,
                                            TelemetryCursor& cursor);
RemoteStage::Transport loopback_stage_transport(Stage& stage);

}  // namespace eden::core::wire
