// The Eden enclave (Section 3.4): the programmable data plane that sits
// in the end-host stack.
//
// An enclave holds
//  * match-action tables whose rules match on *class names* (not packet
//    headers) and whose action part is a real program;
//  * installed actions: bytecode executed by the interpreter, or native
//    C++ twins used as the paper's "native" baseline;
//  * the runtime state machinery: per-action global state, per-message
//    state keyed by the packet's message identifier, marshalling between
//    packets and state blocks, and the concurrency model derived from
//    the access annotations (Section 3.4.4);
//  * its own packet-granularity classification (last row of Table 2):
//    five-tuple rules that let the enclave classify traffic of
//    unmodified applications into flow-level messages.
//
// process() is the data path: thread-compatible, lock-free for
// `parallel` actions, per-message locked for `per_message`, fully locked
// for `serialized` — exactly the model of Section 3.4.4.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/class_name.h"
#include "core/enclave_schema.h"
#include "lang/interpreter.h"
#include "util/rng.h"

namespace eden::core {

using ActionId = std::uint32_t;
using TableId = std::uint32_t;
using MatchRuleId = std::uint64_t;
inline constexpr ActionId kInvalidAction = 0xffffffffu;

// Context handed to native twin actions so they can mirror builtins.
struct NativeCtx {
  util::Rng& rng;
  std::int64_t now_ns;
};

// A native action operates on the same state blocks as interpreted
// bytecode, so both variants share marshalling and state management and
// the native-vs-Eden comparison isolates pure interpretation cost.
using NativeActionFn = std::function<lang::ExecStatus(
    lang::StateBlock& packet, lang::StateBlock* message,
    lang::StateBlock* global, NativeCtx& ctx)>;

struct ActionStats {
  std::uint64_t executions = 0;
  std::uint64_t errors = 0;
  std::uint64_t steps = 0;  // interpreted instructions (bytecode only)
};

struct EnclaveStats {
  std::uint64_t packets = 0;
  std::uint64_t matched = 0;
  std::uint64_t dropped_by_action = 0;
  std::uint64_t message_entries_created = 0;
  std::uint64_t message_entries_evicted = 0;
};

struct EnclaveConfig {
  // Bound on per-action message-state entries (LRU eviction beyond it).
  std::size_t max_messages_per_action = 65536;
  lang::ExecLimits exec_limits;
  std::uint64_t rng_seed = 42;
  // Installed bytecode is optimized to this level (lang/optimizer.h)
  // and statically pre-verified against the action's schema, letting
  // the data path run the interpreter's pre-verified fast dispatch.
  lang::OptLevel opt_level = lang::OptLevel::O1;

  // The OS-resident enclave: ample resources, no cycle cap — the paper
  // deliberately leaves the budget to the administrator (Section 6).
  static EnclaveConfig os_default() { return EnclaveConfig{}; }

  // A programmable-NIC enclave: the same bytecode but a hard per-packet
  // instruction budget and tighter memory, reflecting firmware limits.
  static EnclaveConfig nic_default() {
    EnclaveConfig config;
    config.max_messages_per_action = 8192;
    config.exec_limits.max_steps = 4096;
    config.exec_limits.max_operand_stack = 64;
    config.exec_limits.max_locals = 256;
    config.exec_limits.max_call_depth = 16;
    return config;
  }
};

// Five-tuple classification rule for the enclave's own stage. Value -1
// means wildcard.
struct FlowClassifierRule {
  std::int64_t src = -1;
  std::int64_t dst = -1;
  std::int64_t src_port = -1;
  std::int64_t dst_port = -1;
  std::int64_t proto = -1;
  ClassId class_id = kInvalidClass;
  // Direction-symmetric message keys: both directions of a connection
  // map to the same message (required by stateful functions such as
  // connection tracking).
  bool symmetric = false;

  bool matches(const netsim::Packet& p) const {
    return (src < 0 || p.src == static_cast<netsim::HostId>(src)) &&
           (dst < 0 || p.dst == static_cast<netsim::HostId>(dst)) &&
           (src_port < 0 || p.src_port == src_port) &&
           (dst_port < 0 || p.dst_port == dst_port) &&
           (proto < 0 || static_cast<std::int64_t>(p.protocol) == proto);
  }
};

class Enclave {
 public:
  Enclave(std::string name, ClassRegistry& registry,
          EnclaveConfig config = {});
  ~Enclave();
  Enclave(const Enclave&) = delete;
  Enclave& operator=(const Enclave&) = delete;

  // --- Enclave API (controller side) ------------------------------------

  // Installs a compiled action. `global_fields` must be the fields the
  // program was compiled against (they size the global state block).
  // Runs the bytecode optimizer at config.opt_level and statically
  // verifies the result against the action schema and this enclave's
  // execution limits (install-time verification, so the per-packet path
  // skips the structural checks). Throws lang::LangError if the program
  // fails verification.
  ActionId install_action(const std::string& name,
                          lang::CompiledProgram program,
                          std::vector<lang::FieldDef> global_fields = {});

  // Installs a native twin. `touches_message` tells the runtime whether
  // to materialize message state for it; `global_fields` sizes its
  // global state block (same layout the interpreted twin compiles
  // against).
  ActionId install_native_action(const std::string& name, NativeActionFn fn,
                                 lang::ConcurrencyMode mode,
                                 bool touches_message,
                                 std::vector<lang::FieldDef> global_fields = {});

  void remove_action(ActionId id);
  std::optional<ActionId> find_action(const std::string& name) const;

  // Tables are evaluated in creation order; within a table the first
  // matching rule fires.
  TableId create_table(const std::string& name);
  void delete_table(TableId table);
  MatchRuleId add_rule(TableId table, ClassPattern pattern, ActionId action);
  bool remove_rule(TableId table, MatchRuleId rule);
  std::size_t rule_count(TableId table) const;

  // Global state of an action, addressed by schema field name. Writes
  // take the action's global lock, so they are safe against the data
  // path mid-run.
  void set_global_scalar(ActionId id, const std::string& field,
                         std::int64_t value);
  void set_global_array(ActionId id, const std::string& field,
                        std::vector<std::int64_t> data);
  std::int64_t read_global_scalar(ActionId id, const std::string& field) const;

  // Enclave-stage classification (five-tuple rules).
  void add_flow_rule(FlowClassifierRule rule) {
    flow_rules_.push_back(rule);
  }
  void clear_flow_rules() { flow_rules_.clear(); }

  // Clock source for the clock() builtin and native ctx (the simulator
  // injects virtual time).
  void set_clock(lang::ClockFn fn, void* ctx) {
    clock_fn_ = fn;
    clock_ctx_ = ctx;
  }

  // --- Data path ---------------------------------------------------------

  // Runs the packet through flow classification and every table. Returns
  // false if an action asked for the packet to be dropped.
  bool process(netsim::Packet& packet);

  // Batched execution (Section 6): the enclave pre-processes the batch,
  // splits it by message, and runs each message's packets under a single
  // lock acquisition and state copy. Semantically identical to calling
  // process() per packet (packet order inside each message is
  // preserved; a faulty execution still rolls back only its own
  // packet). Falls back to per-packet processing when more than one
  // table is installed. Sets drop_mark on dropped packets and returns
  // the number of surviving packets.
  std::size_t process_batch(std::span<netsim::PacketPtr> batch);

  // --- Introspection -------------------------------------------------------

  const EnclaveStats& stats() const { return stats_; }
  ActionStats action_stats(ActionId id) const;
  const std::string& name() const { return name_; }
  ClassRegistry& registry() { return registry_; }
  const lang::StateSchema& base_schema() const { return base_schema_; }

  // Peeks at a message-state scalar (tests / debugging).
  std::optional<std::int64_t> peek_message_state(ActionId id,
                                                 std::int64_t msg_key,
                                                 std::uint16_t slot) const;

 private:
  struct MessageEntry {
    lang::StateBlock block;
    std::mutex mutex;
  };

  struct ActionEntry {
    ActionId id = kInvalidAction;
    std::string name;
    bool native = false;
    lang::CompiledProgram program;
    NativeActionFn native_fn;
    lang::ConcurrencyMode mode = lang::ConcurrencyMode::parallel;
    bool touches_message = false;
    lang::StateSchema schema;  // base + action-specific global fields
    lang::StateBlock global_state;
    mutable std::shared_mutex global_mutex;
    // Message store, bounded by insertion-order eviction.
    mutable std::shared_mutex messages_mutex;
    std::unordered_map<std::int64_t, std::shared_ptr<MessageEntry>> messages;
    std::deque<std::int64_t> creation_order;
    ActionStats stats;
  };

  struct MatchRule {
    MatchRuleId id;
    ClassPattern pattern;
    ActionId action;
  };

  struct Table {
    TableId id;
    std::string name;
    std::vector<MatchRule> rules;
  };

  void run_action(ActionEntry& entry, netsim::Packet& packet);
  void run_action_batch(ActionEntry& entry,
                        std::span<netsim::Packet* const> packets);
  const MatchRule* match_in_table(Table& table,
                                  const netsim::Packet& packet) const;
  void classify_flow(netsim::Packet& packet) const;
  std::shared_ptr<MessageEntry> message_entry(ActionEntry& entry,
                                              const netsim::Packet& p);
  static std::int64_t message_key(const netsim::Packet& p);
  static std::int64_t symmetric_message_key(const netsim::Packet& p);
  Table* find_table(TableId id);
  ActionEntry& checked_action(ActionId id);
  const ActionEntry& checked_action(ActionId id) const;

  std::string name_;
  ClassRegistry& registry_;
  EnclaveConfig config_;
  lang::StateSchema base_schema_;
  std::uint64_t instance_id_;
  lang::ClockFn clock_fn_ = nullptr;
  void* clock_ctx_ = nullptr;

  std::vector<std::unique_ptr<ActionEntry>> actions_;
  std::vector<Table> tables_;
  std::vector<FlowClassifierRule> flow_rules_;
  MatchRuleId next_rule_id_ = 1;
  TableId next_table_id_ = 0;

  EnclaveStats stats_;
};

}  // namespace eden::core
