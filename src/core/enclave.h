// The Eden enclave (Section 3.4): the programmable data plane that sits
// in the end-host stack.
//
// An enclave holds
//  * match-action tables whose rules match on *class names* (not packet
//    headers) and whose action part is a real program;
//  * installed actions: bytecode executed by the interpreter, or native
//    C++ twins used as the paper's "native" baseline;
//  * the runtime state machinery: per-action global state, per-message
//    state keyed by the packet's message identifier, marshalling between
//    packets and state blocks, and the concurrency model derived from
//    the access annotations (Section 3.4.4);
//  * its own packet-granularity classification (last row of Table 2):
//    five-tuple rules that let the enclave classify traffic of
//    unmodified applications into flow-level messages.
//
// process() is the data path: thread-compatible, lock-free for
// `parallel` actions, per-message locked for `per_message`, fully locked
// for `serialized` — exactly the model of Section 3.4.4.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "core/class_name.h"
#include "core/enclave_schema.h"
#include "lang/interpreter.h"
#include "state/flow_store.h"
#include "telemetry/metrics.h"
#include "telemetry/profile.h"
#include "telemetry/snapshot.h"
#include "telemetry/span.h"
#include "telemetry/trace_ring.h"
#include "util/rng.h"

namespace eden::core {

namespace detail {
struct ThreadState;  // per-thread execution resources (enclave.cpp)
}

using ActionId = std::uint32_t;
using TableId = std::uint32_t;
using MatchRuleId = std::uint64_t;
inline constexpr ActionId kInvalidAction = 0xffffffffu;

// Context handed to native twin actions so they can mirror builtins.
struct NativeCtx {
  util::Rng& rng;
  std::int64_t now_ns;
};

// A native action operates on the same state blocks as interpreted
// bytecode, so both variants share marshalling and state management and
// the native-vs-Eden comparison isolates pure interpretation cost.
using NativeActionFn = std::function<lang::ExecStatus(
    lang::StateBlock& packet, lang::StateBlock* message,
    lang::StateBlock* global, NativeCtx& ctx)>;

struct ActionStats {
  std::uint64_t executions = 0;
  std::uint64_t errors = 0;
  // Weighted interpreter steps (bytecode actions only): each executed
  // opcode bills the number of base instructions it stands for
  // (lang::kOpStepCost), so an -O1 superinstruction adds the full cost
  // of the -O0 sequence it fused. Totals are therefore comparable
  // across opt levels — the Fig. 12 overhead numbers mean the same
  // thing at -O0 and -O1.
  std::uint64_t steps = 0;
  // `errors` split by lang::ExecStatus (the ok slot stays zero), so
  // traps, fuel exhaustion and stack overflows are distinguishable.
  std::array<std::uint64_t, lang::kNumExecStatus> errors_by_status{};
};

struct EnclaveStats {
  std::uint64_t packets = 0;
  std::uint64_t matched = 0;
  std::uint64_t dropped_by_action = 0;
  std::uint64_t message_entries_created = 0;
  // Removed because the store hit capacity (max_messages_per_action).
  std::uint64_t message_entries_evicted = 0;
  // Removed because the entry sat idle past message_idle_timeout_ns.
  std::uint64_t message_entries_expired = 0;
  // Currently resident entries, summed over installed actions.
  std::uint64_t message_entries_live = 0;
};

// Hot-path telemetry knobs (src/telemetry). Off by default: the
// always-on ActionStats / EnclaveStats counters are separate and cost a
// relaxed atomic add each. With `enabled` set, the enclave keeps
// per-class match/drop counters, per-action latency and steps
// histograms (sampled), and optionally a bounded sampling packet trace.
struct TelemetryConfig {
  bool enabled = false;
  // Per-action execution-latency and weighted-steps histograms,
  // recorded for one in `histogram_sample_every` executions (1 = every
  // execution). Sampling keeps the hot-path cost to a per-thread
  // countdown for the packets that are not timed; the default keeps the
  // measured overhead of histograms-on under 5% of enclave ns/packet
  // even for the cheapest Table-1 functions (see bench/micro_interpreter
  // and the BM_Process_Telemetry cost ladder in bench/micro_enclave).
  bool histograms = true;
  std::uint32_t histogram_sample_every = 64;
  // Sampling packet trace: record one in `trace_sample_every` action
  // executions into a bounded ring (0 = tracing off).
  std::uint32_t trace_sample_every = 0;
  std::size_t trace_capacity = 1024;
  // Cross-layer lifecycle span tracing (telemetry/span.h): a non-zero
  // value enables the process-global SpanCollector at 1-in-N message
  // sampling and makes this enclave record match/exec/drop hops for
  // packets whose meta carries a trace id — starting a trace itself for
  // packets that arrive unstamped (direct process() callers without a
  // stage in front). Works independently of `enabled`: spans are paced
  // by their own countdown and cost one branch per hop when a packet is
  // untraced.
  std::uint32_t span_sample_every = 0;
  // Per-action bytecode hot-spot profiles (telemetry/profile.h):
  // per-pc execution counts plus cycle attribution sampled every
  // `profile_cycle_sample_every` fetches. Opt-in diagnostics — profiled
  // executions of the same action serialize on the profile, so leave
  // this off on production data paths.
  bool profile_actions = false;
  std::uint32_t profile_cycle_sample_every = 64;
  // Slots for per-class match/drop counters; classes interned past this
  // bound land in a shared overflow slot.
  std::size_t max_classes = 1024;
};

struct EnclaveConfig {
  // Bound on per-action message-state entries; 0 = unlimited. Beyond
  // the bound the store evicts the idlest entry (minimum last-touch
  // within the timer wheel's oldest cohort), so hot long-lived
  // messages survive churn that pure creation-order eviction would
  // kill them under.
  std::size_t max_messages_per_action = 65536;
  // Idle expiry for message-state entries: an entry untouched for this
  // long is expired by the per-shard timer wheel (0 = disabled).
  // Advance happens opportunistically on the data path (paced) and on
  // explicit advance_message_expiry() calls from worker loops.
  std::int64_t message_idle_timeout_ns = 0;
  // Shards of each action's FlowStore (rounded up to a power of two).
  // Shard selection uses the same splitmix64-whitened key the
  // dataplane steers on, so per-worker traffic stays shard-local.
  // 1 shard gives deterministic single-queue eviction order.
  std::size_t message_store_shards = 8;
  // Timer-wheel granularity for idle expiry.
  std::int64_t message_wheel_tick_ns = 1'000'000;  // 1 ms
  lang::ExecLimits exec_limits;
  std::uint64_t rng_seed = 42;
  // Installed bytecode is optimized to this level (lang/optimizer.h)
  // and statically pre-verified against the action's schema, letting
  // the data path run the interpreter's pre-verified fast dispatch.
  lang::OptLevel opt_level = lang::OptLevel::O1;
  TelemetryConfig telemetry;

  // The OS-resident enclave: ample resources, no cycle cap — the paper
  // deliberately leaves the budget to the administrator (Section 6).
  static EnclaveConfig os_default() { return EnclaveConfig{}; }

  // A programmable-NIC enclave: the same bytecode but a hard per-packet
  // instruction budget and tighter memory, reflecting firmware limits.
  static EnclaveConfig nic_default() {
    EnclaveConfig config;
    config.max_messages_per_action = 8192;
    config.exec_limits.max_steps = 4096;
    config.exec_limits.max_operand_stack = 64;
    config.exec_limits.max_locals = 256;
    config.exec_limits.max_call_depth = 16;
    return config;
  }
};

// Five-tuple classification rule for the enclave's own stage. Value -1
// means wildcard.
struct FlowClassifierRule {
  std::int64_t src = -1;
  std::int64_t dst = -1;
  std::int64_t src_port = -1;
  std::int64_t dst_port = -1;
  std::int64_t proto = -1;
  ClassId class_id = kInvalidClass;
  // Direction-symmetric message keys: both directions of a connection
  // map to the same message (required by stateful functions such as
  // connection tracking).
  bool symmetric = false;

  bool matches(const netsim::Packet& p) const {
    return (src < 0 || p.src == static_cast<netsim::HostId>(src)) &&
           (dst < 0 || p.dst == static_cast<netsim::HostId>(dst)) &&
           (src_port < 0 || p.src_port == src_port) &&
           (dst_port < 0 || p.dst_port == dst_port) &&
           (proto < 0 || static_cast<std::int64_t>(p.protocol) == proto);
  }
};

class Enclave {
 public:
  Enclave(std::string name, ClassRegistry& registry,
          EnclaveConfig config = {});
  ~Enclave();
  Enclave(const Enclave&) = delete;
  Enclave& operator=(const Enclave&) = delete;

  // --- Enclave API (controller side) ------------------------------------

  // Installs a compiled action. `global_fields` must be the fields the
  // program was compiled against (they size the global state block).
  // Runs the bytecode optimizer at config.opt_level and statically
  // verifies the result against the action schema and this enclave's
  // execution limits (install-time verification, so the per-packet path
  // skips the structural checks). Throws lang::LangError if the program
  // fails verification.
  ActionId install_action(const std::string& name,
                          lang::CompiledProgram program,
                          std::vector<lang::FieldDef> global_fields = {});

  // Installs a native twin. `touches_message` tells the runtime whether
  // to materialize message state for it; `global_fields` sizes its
  // global state block (same layout the interpreted twin compiles
  // against).
  ActionId install_native_action(const std::string& name, NativeActionFn fn,
                                 lang::ConcurrencyMode mode,
                                 bool touches_message,
                                 std::vector<lang::FieldDef> global_fields = {});

  void remove_action(ActionId id);
  std::optional<ActionId> find_action(const std::string& name) const;

  // Tables are evaluated in creation order; within a table the first
  // matching rule fires.
  TableId create_table(const std::string& name);
  void delete_table(TableId table);
  std::optional<TableId> find_table_id(const std::string& name) const;
  MatchRuleId add_rule(TableId table, ClassPattern pattern, ActionId action);
  bool remove_rule(TableId table, MatchRuleId rule);
  std::size_t rule_count(TableId table) const;

  // --- Transactions -------------------------------------------------------
  //
  // Control-plane mutations normally publish a fresh rule-set snapshot
  // one by one. A transaction stages every mutation between begin and
  // commit in a shadow copy and publishes them with one atomic swap, so
  // the data path never observes a partial rule batch or a half-updated
  // action set (the controller's WCMP weight or rule updates land
  // all-or-nothing). One transaction may be open at a time; begin_txn
  // throws std::invalid_argument when one already is. abort_txn is
  // idempotent. Global-state writes to actions that existed before the
  // transaction are buffered and applied at commit under the action's
  // global lock, so each action's view also flips atomically.
  std::uint64_t begin_txn();
  std::uint64_t commit_txn();  // returns the committed rule-set version
  void abort_txn();
  bool txn_open() const;
  // Version of the currently published (committed) rule-set snapshot.
  // Starts at 0 for the empty state; every publish increments it.
  std::uint64_t ruleset_version() const;
  // Drops every action, table, rule and flow rule (inside a transaction:
  // stages the wipe). Used by the control-plane resync protocol to bring
  // an enclave of unknown state back to a blank slate before replay.
  void clear_all();

  // Global state of an action, addressed by schema field name. Writes
  // take the action's global lock, so they are safe against the data
  // path mid-run.
  void set_global_scalar(ActionId id, const std::string& field,
                         std::int64_t value);
  void set_global_array(ActionId id, const std::string& field,
                        std::vector<std::int64_t> data);
  std::int64_t read_global_scalar(ActionId id, const std::string& field) const;

  // Enclave-stage classification (five-tuple rules).
  void add_flow_rule(FlowClassifierRule rule);
  void clear_flow_rules();

  // Clock source for the clock() builtin and native ctx (the simulator
  // injects virtual time).
  void set_clock(lang::ClockFn fn, void* ctx) {
    clock_fn_ = fn;
    clock_ctx_ = ctx;
  }

  // --- Data path ---------------------------------------------------------

  // Runs the packet through flow classification and every table. Returns
  // false if an action asked for the packet to be dropped.
  bool process(netsim::Packet& packet);

  // Shard-steering key for multi-core data planes (hoststack/dataplane):
  // every packet of one message maps to the same key, so hashing it to a
  // shard preserves the per-message ordering that process()'s
  // message-lifetime state contract requires. Stage-stamped msg_id when
  // present; otherwise a direction-insensitive connection hash, so both
  // directions of a symmetric-keyed flow co-shard.
  static std::uint64_t steering_key(const netsim::Packet& packet);

  // Batched execution (Section 6): the enclave pre-processes the batch,
  // splits it by message, and runs each message's packets under a single
  // lock acquisition and state copy. Semantically identical to calling
  // process() per packet (packet order inside each message is
  // preserved; a faulty execution still rolls back only its own
  // packet). Falls back to per-packet processing when more than one
  // table is installed. Sets drop_mark on dropped packets and returns
  // the number of surviving packets.
  std::size_t process_batch(std::span<netsim::PacketPtr> batch);

  // Expires idle message-state entries (config.message_idle_timeout_ns)
  // and reclaims epoch-retired memory across every installed action.
  // Stripe-partitioned so N workers can split the shard space
  // (worker i of N passes (i, N)); (0, 1) covers everything. Safe to
  // call concurrently with the data path. The data path also paces
  // this internally, so calling it is an optimization, not a
  // correctness requirement.
  void advance_message_expiry(std::size_t stripe = 0, std::size_t stripes = 1);

  // --- Introspection -------------------------------------------------------

  // Counter snapshots. Internally counters are relaxed atomics (the
  // data path is concurrent), so reads reconcile to a plain struct.
  EnclaveStats stats() const;
  ActionStats action_stats(ActionId id) const;

  // True when the action runs with key-sharded global serialization
  // (mode == serialized, and every writable global field is a
  // key_partitioned array — see lang::FieldDef::key_partitioned).
  bool action_global_sharded(ActionId id) const;

  // Per-action FlowStore statistics (live/created/expired/evicted/
  // resizes + probe-length histogram); zeros when the action holds no
  // message state.
  state::FlowStoreStats message_store_stats(ActionId id) const;

  // Full telemetry snapshot (counters, per-class match/drop, sampled
  // latency/steps histograms, trace ring) with ids resolved to names.
  // Always valid; histogram/trace/class sections are empty unless
  // config.telemetry enabled them.
  telemetry::EnclaveTelemetry telemetry_snapshot() const;

  const EnclaveConfig& config() const { return config_; }
  const std::string& name() const { return name_; }
  ClassRegistry& registry() { return registry_; }
  const lang::StateSchema& base_schema() const { return base_schema_; }

  // Peeks at a message-state scalar (tests / debugging).
  std::optional<std::int64_t> peek_message_state(ActionId id,
                                                 std::int64_t msg_key,
                                                 std::uint16_t slot) const;

  // Merged hot-spot profile of a bytecode action (copy, so the caller
  // can render it without racing the data path). Empty profile when
  // config.telemetry.profile_actions is off or the action is native.
  telemetry::ProgramProfile action_profile(ActionId id) const;

 private:
  // Always-on per-action counters; relaxed atomics because `parallel`
  // actions execute concurrently. Snapshotted into ActionStats on read.
  struct ActionCounters {
    std::atomic<std::uint64_t> executions{0};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> steps{0};
    std::array<std::atomic<std::uint64_t>, lang::kNumExecStatus> by_status{};
  };

  // Per-class match/drop counters, indexed by dense ClassId. One cache
  // line each so parallel executions of different classes do not false-
  // share.
  struct alignas(64) ClassCounters {
    std::atomic<std::uint64_t> matched{0};
    std::atomic<std::uint64_t> dropped{0};
  };

  struct EnclaveCounters {
    std::atomic<std::uint64_t> packets{0};
    std::atomic<std::uint64_t> matched{0};
    std::atomic<std::uint64_t> dropped_by_action{0};
    std::atomic<std::uint64_t> message_entries_created{0};
    std::atomic<std::uint64_t> message_entries_evicted{0};
    std::atomic<std::uint64_t> message_entries_expired{0};
  };

  struct ActionEntry {
    ActionId id = kInvalidAction;
    std::string name;
    bool native = false;
    lang::CompiledProgram program;
    NativeActionFn native_fn;
    lang::ConcurrencyMode mode = lang::ConcurrencyMode::parallel;
    bool touches_message = false;
    lang::StateSchema schema;  // base + action-specific global fields
    lang::StateBlock global_state;
    mutable std::shared_mutex global_mutex;
    // Per-message state: sharded open-addressing FlowStore with
    // epoch-reclaimed entries and timer-wheel idle expiry
    // (src/state/flow_store.h). Created at install time when the
    // action touches message state, null otherwise.
    std::unique_ptr<state::FlowStore> messages;
    // Key-sharded global writes (Section 3.4.4 refinement): when every
    // writable global field is a key_partitioned array, "fully
    // serialized" degrades to "serialized per message-key stripe".
    // Executions then take their stripe exclusively plus global_mutex
    // SHARED (excluding whole-state controller writers, which keep
    // taking global_mutex exclusively); different stripes run
    // concurrently because the schema promises their write sets are
    // disjoint by message key.
    bool global_sharded = false;
    static constexpr std::size_t kGlobalStripes = 16;
    std::unique_ptr<std::array<std::mutex, kGlobalStripes>> global_stripes;
    ActionCounters counters;
    // Set at install time when config.telemetry histograms are on;
    // instruments live in metrics_, so raw pointers stay valid.
    telemetry::Histogram* latency_hist = nullptr;
    telemetry::Histogram* steps_hist = nullptr;
    // Hot-spot profile (config.telemetry.profile_actions, bytecode
    // actions only). Guarded by profile_mutex: plain uint64 cells, so
    // concurrent profiled executions serialize on it.
    std::unique_ptr<telemetry::ProgramProfile> profile;
    mutable std::mutex profile_mutex;
  };

  struct MatchRule {
    MatchRuleId id;
    ClassPattern pattern;
    ActionId action;
  };

  struct Table {
    TableId id;
    std::string name;
    std::vector<MatchRule> rules;
  };

  // A table hit plus the class that matched (kInvalidClass when a
  // match-any rule fired on an unclassified packet), so per-class
  // counters can attribute the execution.
  struct TableMatch {
    const MatchRule* rule = nullptr;
    ClassId cls = kInvalidClass;
  };

  // The published rule-set: an immutable snapshot of tables, flow rules
  // and the action vector, swapped in wholesale on every control-plane
  // publish (RCU style). Defined in enclave.cpp; the header only ever
  // holds it through a shared_ptr.
  struct RuleState;
  struct Txn;
  friend struct detail::ThreadState;

  bool process_one(detail::ThreadState& ts, const RuleState& rules,
                   netsim::Packet& packet);
  void run_action(detail::ThreadState& ts, ActionEntry& entry,
                  netsim::Packet& packet);
  void run_action_batch(detail::ThreadState& ts, ActionEntry& entry,
                        std::span<netsim::Packet* const> packets);
  TableMatch match_in_table(const Table& table,
                            const netsim::Packet& packet) const;
  ClassCounters* class_counter(ClassId cls);
  std::string class_display_name(ClassId cls) const;
  void attach_instruments(ActionEntry& entry);
  void classify_flow(const RuleState& rules, netsim::Packet& packet) const;
  // Find-or-create the FlowStore entry for p's message key. The caller
  // must hold `guard` (and keep it alive while using the entry): the
  // pointer stays valid under concurrent expiry/eviction/resize until
  // the guard drops.
  state::FlowStore::Entry* message_entry(const state::EpochDomain::Guard& guard,
                                         ActionEntry& entry,
                                         const netsim::Packet& p);
  std::int64_t now_ns() const;
  void maybe_advance_expiry(detail::ThreadState& ts, const RuleState& rules);
  static std::int64_t message_key(const netsim::Packet& p);
  static std::int64_t symmetric_message_key(const netsim::Packet& p);

  // Data-path snapshot access: one acquire load of the publish epoch per
  // call; the shared_ptr itself is refetched (under publish_mutex_) only
  // when the epoch moved, so steady-state reads touch no reference
  // count and take no lock.
  detail::ThreadState& thread_state() const;
  const RuleState& data_snapshot(detail::ThreadState& ts) const;

  // Control-plane helpers. _locked variants require control_mutex_.
  std::shared_ptr<const RuleState> committed() const;
  const RuleState& control_view_locked() const;
  std::shared_ptr<RuleState> begin_mutation_locked();
  void end_mutation_locked(std::shared_ptr<RuleState> next);
  std::uint64_t publish_locked(std::shared_ptr<RuleState> next);
  std::shared_ptr<ActionEntry> checked_entry(ActionId id) const;
  ActionId install_entry(std::shared_ptr<ActionEntry> entry);

  std::string name_;
  ClassRegistry& registry_;
  EnclaveConfig config_;
  lang::StateSchema base_schema_;
  std::uint64_t instance_id_;
  lang::ClockFn clock_fn_ = nullptr;
  void* clock_ctx_ = nullptr;
  // Cached once: instance() is out of line and guarded by the magic
  // static check, which is too much for a per-packet call site.
  telemetry::SpanCollector& spans_ = telemetry::SpanCollector::instance();

  // rules_ is the committed snapshot; readers cache it per thread and
  // revalidate against rules_epoch_ (the snapshot's version) on every
  // packet. control_mutex_ serializes mutators; publish_mutex_ only
  // guards the pointer hand-off between a publish and a reader refresh.
  mutable std::mutex control_mutex_;
  mutable std::mutex publish_mutex_;
  std::shared_ptr<const RuleState> rules_;
  std::atomic<std::uint64_t> rules_epoch_{0};
  std::uint64_t next_version_ = 1;
  std::unique_ptr<Txn> txn_;
  std::uint64_t next_txn_id_ = 1;
  MatchRuleId next_rule_id_ = 1;
  TableId next_table_id_ = 0;

  EnclaveCounters counters_;
  // Allocated in the constructor when config.telemetry.enabled: slots
  // [0, max_classes) by ClassId, then one "unclassified" and one
  // overflow slot.
  std::unique_ptr<ClassCounters[]> class_counters_;
  telemetry::MetricsRegistry metrics_;
  std::unique_ptr<telemetry::TraceRing> trace_;
};

// Number of per-enclave ThreadState blocks the calling thread currently
// retains (test hook for the registry-leak fix: destroyed enclaves'
// blocks are swept on this thread's next enclave interaction).
std::size_t enclave_thread_state_count();

}  // namespace eden::core
