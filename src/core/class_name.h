// Class names and the class registry.
//
// A class is "the set of messages (and consequent network packets) to
// which the same network function should be applied" (Section 1).
// Externally a class is referred to by its fully qualified name
// `stage.ruleset.class_name` (Section 3.3); internally names are interned
// to dense 32-bit ids that packets carry in their ClassList.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace eden::core {

using ClassId = std::uint32_t;
inline constexpr ClassId kInvalidClass = 0xffffffffu;

struct QualifiedClassName {
  std::string stage;
  std::string rule_set;
  std::string class_name;

  std::string full() const {
    return stage + "." + rule_set + "." + class_name;
  }
  bool operator==(const QualifiedClassName&) const = default;
};

// Parses "stage.ruleset.class"; nullopt if not exactly three non-empty
// dot-separated components.
std::optional<QualifiedClassName> parse_class_name(std::string_view full);

// Interns fully qualified class names. Shared by stages, enclaves and the
// controller of one deployment; thread-compatible (external sync if
// stages register concurrently — in Eden only the controller mutates it).
class ClassRegistry {
 public:
  // Returns the id for the name, interning it if new.
  ClassId intern(const QualifiedClassName& name);
  ClassId intern(std::string_view full);

  // Lookup without interning; kInvalidClass if unknown.
  ClassId find(std::string_view full) const;

  const QualifiedClassName& name(ClassId id) const { return names_.at(id); }
  std::size_t size() const { return names_.size(); }

 private:
  std::vector<QualifiedClassName> names_;
  std::unordered_map<std::string, ClassId> by_full_;
};

// A match pattern over class names: each of the three components is an
// exact string or "*". "memcached.r1.*" matches every class of rule-set
// r1; "*" alone (match_any) matches every packet including unclassified
// ones.
class ClassPattern {
 public:
  // Patterns: "*", "a.b.c", "a.*.c", "a.b.*", ... Throws
  // std::invalid_argument on malformed patterns.
  explicit ClassPattern(std::string_view pattern);

  bool match_any() const { return match_any_; }
  // True if the class with this id matches (registry resolves the name).
  bool matches(ClassId id, const ClassRegistry& registry) const;
  const std::string& pattern() const { return pattern_; }

 private:
  std::string pattern_;
  bool match_any_ = false;
  bool stage_wild_ = false, ruleset_wild_ = false, class_wild_ = false;
  std::string stage_, ruleset_, class_;
};

}  // namespace eden::core
