#include "core/class_name.h"

#include <stdexcept>

namespace eden::core {

std::optional<QualifiedClassName> parse_class_name(std::string_view full) {
  const std::size_t first = full.find('.');
  if (first == std::string_view::npos) return std::nullopt;
  const std::size_t second = full.find('.', first + 1);
  if (second == std::string_view::npos) return std::nullopt;
  if (full.find('.', second + 1) != std::string_view::npos) {
    return std::nullopt;
  }
  QualifiedClassName name;
  name.stage = std::string(full.substr(0, first));
  name.rule_set = std::string(full.substr(first + 1, second - first - 1));
  name.class_name = std::string(full.substr(second + 1));
  if (name.stage.empty() || name.rule_set.empty() ||
      name.class_name.empty()) {
    return std::nullopt;
  }
  return name;
}

ClassId ClassRegistry::intern(const QualifiedClassName& name) {
  const std::string full = name.full();
  const auto it = by_full_.find(full);
  if (it != by_full_.end()) return it->second;
  const auto id = static_cast<ClassId>(names_.size());
  names_.push_back(name);
  by_full_.emplace(full, id);
  return id;
}

ClassId ClassRegistry::intern(std::string_view full) {
  const auto parsed = parse_class_name(full);
  if (!parsed) {
    throw std::invalid_argument("malformed class name: " + std::string(full));
  }
  return intern(*parsed);
}

ClassId ClassRegistry::find(std::string_view full) const {
  const auto it = by_full_.find(std::string(full));
  return it == by_full_.end() ? kInvalidClass : it->second;
}

ClassPattern::ClassPattern(std::string_view pattern) : pattern_(pattern) {
  if (pattern == "*") {
    match_any_ = true;
    return;
  }
  const auto parsed = parse_class_name(pattern);
  if (!parsed) {
    throw std::invalid_argument("malformed class pattern: " + pattern_);
  }
  stage_ = parsed->stage;
  ruleset_ = parsed->rule_set;
  class_ = parsed->class_name;
  stage_wild_ = stage_ == "*";
  ruleset_wild_ = ruleset_ == "*";
  class_wild_ = class_ == "*";
}

bool ClassPattern::matches(ClassId id, const ClassRegistry& registry) const {
  if (match_any_) return true;
  if (id >= registry.size()) return false;
  const QualifiedClassName& name = registry.name(id);
  if (!stage_wild_ && name.stage != stage_) return false;
  if (!ruleset_wild_ && name.rule_set != ruleset_) return false;
  if (!class_wild_ && name.class_name != class_) return false;
  return true;
}

}  // namespace eden::core
