// The enclave's canonical state schema.
//
// Action functions see three scopes (Section 3.4.2):
//  * packet  — fields of the packet in flight, marshalled in/out by the
//              enclave per the header mappings (Figure 8);
//  * message — state the runtime persists per message across packets;
//  * global  — per-action state installed/updated by the controller.
//
// The packet and message scopes are fixed (every action shares them);
// the global scope is supplied per action when it is installed. Slot
// constants below let the marshalling code and native "twin" actions
// address fields without string lookups.
#pragma once

#include "lang/state_schema.h"
#include "netsim/packet.h"

namespace eden::core {

// Packet-scope scalar slots, in schema declaration order.
struct PacketSlot {
  enum : std::uint16_t {
    size = 0,       // RO  on-wire bytes (ipv4.total_length)
    payload,        // RO  payload bytes
    priority,       // RW  802.1q.pcp
    path,           // RW  802.1q.vid — source-route label
    queue,          // RW  NIC rate-limiter queue (-1 = default queue)
    drop,           // RW  nonzero = drop the packet
    charge,         // RW  bytes to charge the rate limiter (0 = size)
    src,            // RO
    dst,            // RO
    src_port,       // RO
    dst_port,       // RO
    proto,          // RO
    seq,            // RO  transport sequence number
    msg_id,         // RO  stage metadata ...
    msg_type,       // RO
    msg_size,       // RO
    tenant,         // RO
    key_hash,       // RO
    flow_size,      // RO
    app_priority,   // RO
    count_          // number of packet scalar slots
  };
};

// Message-scope scalar slots (persistent per message id).
struct MessageSlot {
  enum : std::uint16_t {
    size = 0,   // RW  bytes of the message seen so far
    priority,   // RW  initialized from the first packet's app_priority
    path,       // RW  cached route label (message-level WCMP), -1 = none
    packets,    // RW  packets of the message seen so far
    state0,     // RW  generic scratch (e.g. port-knocking progress)
    state1,     // RW
    state2,     // RW
    state3,     // RW
    count_
  };
};

// Builds the enclave schema: fixed packet + message scopes, plus the
// given action-specific global fields.
lang::StateSchema make_enclave_schema(
    std::vector<lang::FieldDef> global_fields = {});

// Marshalling between the simulator packet and the packet-scope state
// block. `load` fills every packet slot; `store` writes back only the
// writable fields (priority, path, queue, drop, charge).
void load_packet_state(const netsim::Packet& packet, lang::StateBlock& block);
void store_packet_state(const lang::StateBlock& block, netsim::Packet& packet);

// Initializes a fresh message-scope block from the first packet of the
// message.
void init_message_state(const netsim::Packet& packet, lang::StateBlock& block);

}  // namespace eden::core
