// Pulsar's rate-control function (case study 3, Figure 3).
//
// Steers each tenant's traffic to that tenant's rate-limited NIC queue
// and charges READ requests their *operation* size instead of their
// packet size, so a guarantee spanning storage holds even though READ
// requests are tiny on the forward path.
#pragma once

#include <span>

#include "functions/function.h"

namespace eden::functions {

// Message types stamped by the storage stage.
inline constexpr std::int64_t kIoRead = 1;
inline constexpr std::int64_t kIoWrite = 2;

class PulsarFunction : public NetworkFunction {
 public:
  const char* name() const override { return "pulsar"; }
  const char* source() const override;
  std::vector<lang::FieldDef> global_fields() const override;
  core::NativeActionFn native() const override;
  Table1Info table1() const override;
};

// Installs the tenant -> NIC queue map.
void push_queue_map(core::Enclave& enclave, core::ActionId action,
                    std::span<const std::pair<std::int64_t, std::int64_t>>
                        tenant_queue_pairs);

}  // namespace eden::functions
