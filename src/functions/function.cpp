#include "functions/function.h"

#include "lang/compiler.h"

namespace eden::functions {

lang::CompiledProgram NetworkFunction::compile() const {
  const lang::StateSchema schema =
      core::make_enclave_schema(global_fields());
  return lang::compile_source(source(), schema, {}, name());
}

core::ActionId NetworkFunction::install(core::Enclave& enclave,
                                        bool use_native) const {
  if (use_native) {
    const lang::CompiledProgram program = compile();  // for mode/usage
    return enclave.install_native_action(
        std::string(name()) + ".native", native(), program.concurrency,
        program.usage.touches_scope(lang::Scope::message), global_fields());
  }
  return enclave.install_action(name(), compile(), global_fields());
}

}  // namespace eden::functions
