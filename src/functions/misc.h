// Smaller library functions rounding out Table 1:
//  * QjumpFunction        — QJump-style class-to-priority mapping plus a
//                           per-level rate-limited NIC queue.
//  * ReplicaSelectFunction— mcrouter-style key-based routing: pick the
//                           path label of the replica that owns the key.
//  * CounterFunction      — global packet/byte counters (read-write
//                           global state => fully serialized; used by the
//                           concurrency ablation).
#pragma once

#include "functions/function.h"

namespace eden::functions {

class QjumpFunction : public NetworkFunction {
 public:
  const char* name() const override { return "qjump"; }
  const char* source() const override;
  std::vector<lang::FieldDef> global_fields() const override;
  core::NativeActionFn native() const override;
  Table1Info table1() const override;
};

class ReplicaSelectFunction : public NetworkFunction {
 public:
  const char* name() const override { return "replica_select"; }
  const char* source() const override;
  std::vector<lang::FieldDef> global_fields() const override;
  core::NativeActionFn native() const override;
  Table1Info table1() const override;
};

class CounterFunction : public NetworkFunction {
 public:
  const char* name() const override { return "counter"; }
  const char* source() const override;
  std::vector<lang::FieldDef> global_fields() const override;
  core::NativeActionFn native() const override;
  Table1Info table1() const override;
};

}  // namespace eden::functions
