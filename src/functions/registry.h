// Registry of implemented network functions plus the non-implemented
// rows of Table 1 (functions that need network support beyond commodity
// features, which Eden deliberately does not provide).
#pragma once

#include <memory>
#include <vector>

#include "functions/function.h"

namespace eden::functions {

// All functions implemented in this library, in Table 1 order.
const std::vector<std::unique_ptr<NetworkFunction>>& all_functions();

// Rows of Table 1 that are taxonomy-only (need network support; not
// implementable out of the box at end hosts).
struct Table1Row {
  std::string category;
  std::string example;
  bool data_plane_state;
  bool data_plane_compute;
  bool app_semantics;
  bool network_support;
  bool eden_out_of_box;
  bool implemented;  // true if backed by a NetworkFunction here
};

std::vector<Table1Row> table1_rows();

}  // namespace eden::functions
