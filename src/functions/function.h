// Common shape of a network function in the library.
//
// Every function ships two equivalent data-plane implementations:
//  * `source`     — the EAL action function (what the controller compiles
//                   and ships as bytecode, the paper's "Eden" variant);
//  * `native`     — a hard-coded C++ twin operating on the same state
//                   blocks (the paper's "native" baseline, Section 5.1).
// plus the global-state schema both compile/run against and Table 1
// metadata for the taxonomy harness.
#pragma once

#include <string>
#include <vector>

#include "core/controller.h"
#include "core/enclave.h"

namespace eden::functions {

struct Table1Info {
  std::string category;      // e.g. "Load Balancing"
  std::string example;       // the paper's cited example system
  bool data_plane_state = false;
  bool data_plane_compute = false;
  bool app_semantics = false;
  bool network_support = false;  // beyond commodity priorities/labels
  bool eden_out_of_box = false;
};

class NetworkFunction {
 public:
  virtual ~NetworkFunction() = default;

  virtual const char* name() const = 0;
  virtual const char* source() const = 0;  // EAL action function
  virtual std::vector<lang::FieldDef> global_fields() const = 0;
  virtual core::NativeActionFn native() const = 0;
  virtual Table1Info table1() const = 0;

  // Compiles the EAL source against the enclave schema.
  lang::CompiledProgram compile() const;

  // Installs the interpreted (Eden) or native variant into an enclave.
  core::ActionId install(core::Enclave& enclave, bool use_native) const;
};

}  // namespace eden::functions
