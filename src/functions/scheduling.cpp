#include "functions/scheduling.h"

#include <stdexcept>

#include "core/enclave_schema.h"

namespace eden::functions {

using core::MessageSlot;
using core::PacketSlot;
using lang::Access;
using lang::ExecStatus;
using lang::StateBlock;

namespace {

constexpr int kLimit = 0, kPriority = 1, kStride = 2;

std::int64_t threshold_priority(const lang::ArrayValue& priorities,
                                std::int64_t size) {
  const std::size_t n = priorities.data.size() / kStride;
  for (std::size_t i = 0; i < n; ++i) {
    if (size <= priorities.data[i * kStride + kLimit]) {
      return priorities.data[i * kStride + kPriority];
    }
  }
  return 0;
}

lang::FieldDef priorities_field() {
  lang::FieldDef f;
  f.name = "priorities";
  f.access = Access::read_only;
  f.kind = lang::FieldKind::record_array;
  f.record_fields = {"limit", "priority"};
  return f;
}

}  // namespace

const char* PiasFunction::source() const {
  return R"(
// PIAS (Figure 7): demote a message's priority as its size grows.
fun(packet : Packet, msg : Message, global : Global) ->
  let msg_size = msg.size + packet.size in
  msg.size <- msg_size;
  let priorities = global.priorities in
  let rec search(index) =
    if index >= priorities.length then 0
    elif msg_size <= priorities.[index].limit then priorities.[index].priority
    else search(index + 1)
  in
  packet.priority <-
    (let desired = msg.priority in
     if desired < 1 then desired else search(0))
)";
}

std::vector<lang::FieldDef> PiasFunction::global_fields() const {
  return {priorities_field()};
}

core::NativeActionFn PiasFunction::native() const {
  return [](StateBlock& pkt, StateBlock* msg, StateBlock* global,
            core::NativeCtx&) {
    if (global == nullptr || global->arrays.empty() || msg == nullptr) {
      return ExecStatus::bad_state_slot;
    }
    const std::int64_t msg_size =
        msg->scalars[MessageSlot::size] + pkt.scalars[PacketSlot::size];
    msg->scalars[MessageSlot::size] = msg_size;
    const std::int64_t desired = msg->scalars[MessageSlot::priority];
    pkt.scalars[PacketSlot::priority] =
        desired < 1 ? desired
                    : threshold_priority(global->arrays[0], msg_size);
    return ExecStatus::ok;
  };
}

Table1Info PiasFunction::table1() const {
  return Table1Info{"Flow scheduling", "PIAS [8]", true, true, false, false,
                    true};
}

const char* SffFunction::source() const {
  return R"(
// Shortest flow first: the application supplies the flow size, so the
// priority is decided at flow start and never changes.
fun(packet : Packet, msg : Message, global : Global) ->
  let priorities = global.priorities in
  let rec search(index) =
    if index >= priorities.length then 0
    elif packet.flow_size <= priorities.[index].limit then
      priorities.[index].priority
    else search(index + 1)
  in
  packet.priority <-
    (if packet.app_priority < 1 then packet.app_priority else search(0))
)";
}

std::vector<lang::FieldDef> SffFunction::global_fields() const {
  return {priorities_field()};
}

core::NativeActionFn SffFunction::native() const {
  return [](StateBlock& pkt, StateBlock*, StateBlock* global,
            core::NativeCtx&) {
    if (global == nullptr || global->arrays.empty()) {
      return ExecStatus::bad_state_slot;
    }
    const std::int64_t desired = pkt.scalars[PacketSlot::app_priority];
    pkt.scalars[PacketSlot::priority] =
        desired < 1
            ? desired
            : threshold_priority(global->arrays[0],
                                 pkt.scalars[PacketSlot::flow_size]);
    return ExecStatus::ok;
  };
}

Table1Info SffFunction::table1() const {
  return Table1Info{"Flow scheduling", "SFF (app-informed)", false, true,
                    true, false, true};
}

void push_priority_thresholds(core::Enclave& enclave, core::ActionId action,
                              std::span<const std::int64_t> limits,
                              std::span<const std::int64_t> priorities) {
  if (limits.size() != priorities.size()) {
    throw std::invalid_argument("limits and priorities must align");
  }
  std::vector<std::int64_t> flat;
  flat.reserve(limits.size() * 2);
  for (std::size_t i = 0; i < limits.size(); ++i) {
    flat.push_back(limits[i]);
    flat.push_back(priorities[i]);
  }
  enclave.set_global_array(action, "priorities", std::move(flat));
}

}  // namespace eden::functions
