#include "functions/misc.h"

#include "core/enclave_schema.h"

namespace eden::functions {

using core::PacketSlot;
using lang::Access;
using lang::ExecStatus;
using lang::StateBlock;

// --- QJump ---------------------------------------------------------------

const char* QjumpFunction::source() const {
  return R"(
// QJump-style enforcement: the application's latency level becomes the
// 802.1q priority, and each level's traffic goes through that level's
// rate-limited queue.
fun(packet : Packet, msg : Message, global : Global) ->
  let level =
    (if packet.app_priority < 0 then 0
     elif packet.app_priority > 7 then 7
     else packet.app_priority) in
  packet.priority <- level;
  packet.queue <- global.level_queues[level]
)";
}

std::vector<lang::FieldDef> QjumpFunction::global_fields() const {
  lang::FieldDef f;
  f.name = "level_queues";
  f.access = Access::read_only;
  f.kind = lang::FieldKind::array;
  return {f};
}

core::NativeActionFn QjumpFunction::native() const {
  return [](StateBlock& pkt, StateBlock*, StateBlock* global,
            core::NativeCtx&) {
    if (global == nullptr || global->arrays.empty()) {
      return ExecStatus::bad_state_slot;
    }
    std::int64_t level = pkt.scalars[PacketSlot::app_priority];
    level = level < 0 ? 0 : (level > 7 ? 7 : level);
    const auto& queues = global->arrays[0].data;
    if (static_cast<std::size_t>(level) >= queues.size()) {
      return ExecStatus::out_of_bounds;
    }
    pkt.scalars[PacketSlot::priority] = level;
    pkt.scalars[PacketSlot::queue] = queues[static_cast<std::size_t>(level)];
    return ExecStatus::ok;
  };
}

Table1Info QjumpFunction::table1() const {
  return Table1Info{"Flow scheduling", "QJump [28]", false, true, true,
                    false, true};
}

// --- Replica selection ------------------------------------------------------

const char* ReplicaSelectFunction::source() const {
  return R"(
// mcrouter-style replica selection: requests for a key follow the path
// label of the replica owning that key's hash slot.
fun(packet : Packet, msg : Message, global : Global) ->
  let labels = global.replica_labels in
  let n = len(labels) in
  (if n > 0 then packet.path <- labels[abs(packet.key_hash) % n] else 0)
)";
}

std::vector<lang::FieldDef> ReplicaSelectFunction::global_fields() const {
  lang::FieldDef f;
  f.name = "replica_labels";
  f.access = Access::read_only;
  f.kind = lang::FieldKind::array;
  return {f};
}

core::NativeActionFn ReplicaSelectFunction::native() const {
  return [](StateBlock& pkt, StateBlock*, StateBlock* global,
            core::NativeCtx&) {
    if (global == nullptr || global->arrays.empty()) {
      return ExecStatus::bad_state_slot;
    }
    const auto& labels = global->arrays[0].data;
    if (labels.empty()) return ExecStatus::ok;
    std::int64_t key = pkt.scalars[PacketSlot::key_hash];
    if (key < 0) key = -key;
    pkt.scalars[PacketSlot::path] =
        labels[static_cast<std::size_t>(key) % labels.size()];
    return ExecStatus::ok;
  };
}

Table1Info ReplicaSelectFunction::table1() const {
  return Table1Info{"Replica Selection", "mcrouter [40]", true, true, true,
                    false, true};
}

// --- Counters -----------------------------------------------------------------

const char* CounterFunction::source() const {
  return R"(
// Global packet/byte counters. Writing global state forces serialized
// execution (Section 3.4.4) - the ablation benchmark measures the cost.
fun(packet : Packet, msg : Message, global : Global) ->
  global.packets <- global.packets + 1;
  global.bytes <- global.bytes + packet.size
)";
}

std::vector<lang::FieldDef> CounterFunction::global_fields() const {
  lang::FieldDef packets;
  packets.name = "packets";
  packets.access = Access::read_write;
  lang::FieldDef bytes;
  bytes.name = "bytes";
  bytes.access = Access::read_write;
  return {packets, bytes};
}

core::NativeActionFn CounterFunction::native() const {
  return [](StateBlock& pkt, StateBlock*, StateBlock* global,
            core::NativeCtx&) {
    if (global == nullptr || global->scalars.size() < 2) {
      return ExecStatus::bad_state_slot;
    }
    global->scalars[0] += 1;
    global->scalars[1] += pkt.scalars[PacketSlot::size];
    return ExecStatus::ok;
  };
}

Table1Info CounterFunction::table1() const {
  return Table1Info{"Monitoring", "flow counters", true, true, false, false,
                    true};
}

}  // namespace eden::functions
