// Stateful firewall: port knocking (Table 1, cf. OpenState [13]).
//
// A source must hit the secret knock ports in order before the protected
// port opens for it. Knock progress lives in message state; the harness
// keys messages by source (the stage sets msg_id to the source id), so
// progress survives across the knocker's flows.
#pragma once

#include <span>

#include "functions/function.h"

namespace eden::functions {

class PortKnockFunction : public NetworkFunction {
 public:
  const char* name() const override { return "port_knock"; }
  const char* source() const override;
  std::vector<lang::FieldDef> global_fields() const override;
  core::NativeActionFn native() const override;
  Table1Info table1() const override;
};

// Installs the knock sequence, the protected port and strict mode
// (strict = a wrong knock resets progress).
void push_knock_config(core::Enclave& enclave, core::ActionId action,
                       std::span<const std::int64_t> knock_sequence,
                       std::int64_t open_port, bool strict);

// Stateful connection-tracking firewall: inbound packets pass only on
// connections this host initiated, or on explicitly opened ports.
// Requires the message key to be direction-symmetric (install the
// enclave flow-classifier rule with `symmetric = true`), so the
// outbound packet that establishes the connection and the inbound
// replies share message state.
class ConntrackFunction : public NetworkFunction {
 public:
  const char* name() const override { return "conntrack"; }
  const char* source() const override;
  std::vector<lang::FieldDef> global_fields() const override;
  core::NativeActionFn native() const override;
  Table1Info table1() const override;
};

// Installs the protected host id and the publicly open ports.
void push_conntrack_config(core::Enclave& enclave, core::ActionId action,
                           std::int64_t self_host,
                           std::span<const std::int64_t> open_ports);

}  // namespace eden::functions
