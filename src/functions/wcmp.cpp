#include "functions/wcmp.h"

#include "core/enclave_schema.h"

namespace eden::functions {

using core::PacketSlot;
using core::MessageSlot;
using lang::Access;
using lang::ExecStatus;
using lang::Scope;
using lang::StateBlock;

namespace {

// Record layout of the global `paths` table.
constexpr int kDst = 0, kLabel = 1, kWeight = 2, kStride = 3;

// Weighted pick shared by both native twins. Returns -1 when the table
// has no entry for dst (falls back to destination routing).
std::int64_t native_pick(const lang::ArrayValue& paths, std::int64_t dst,
                         util::Rng& rng) {
  const std::int64_t r =
      static_cast<std::int64_t>(rng.below(core::kWeightScale));
  std::int64_t acc = 0;
  const std::size_t n = paths.data.size() / kStride;
  for (std::size_t i = 0; i < n; ++i) {
    if (paths.data[i * kStride + kDst] != dst) continue;
    acc += paths.data[i * kStride + kWeight];
    if (r < acc) return paths.data[i * kStride + kLabel];
  }
  return -1;
}

}  // namespace

const char* WcmpFunction::source() const {
  return R"(
// Per-packet WCMP (Figure 2, top): choose a path label in a weighted
// random fashion from the controller-installed path table.
fun(packet : Packet, msg : Message, global : Global) ->
  let paths = global.paths in
  let n = len(paths) in
  let r = rand(1000) in
  let rec pick(i, acc) =
    if i >= n then 0 - 1
    elif paths[i].dst <> packet.dst then pick(i + 1, acc)
    else (
      let acc2 = acc + paths[i].weight in
      (if r < acc2 then paths[i].label else pick(i + 1, acc2))
    )
  in
  packet.path <- pick(0, 0)
)";
}

std::vector<lang::FieldDef> WcmpFunction::global_fields() const {
  lang::FieldDef paths;
  paths.name = "paths";
  paths.access = Access::read_only;
  paths.kind = lang::FieldKind::record_array;
  paths.record_fields = {"dst", "label", "weight"};
  return {paths};
}

core::NativeActionFn WcmpFunction::native() const {
  return [](StateBlock& pkt, StateBlock*, StateBlock* global,
            core::NativeCtx& ctx) {
    if (global == nullptr || global->arrays.empty()) {
      return ExecStatus::bad_state_slot;
    }
    pkt.scalars[PacketSlot::path] =
        native_pick(global->arrays[0], pkt.scalars[PacketSlot::dst], ctx.rng);
    return ExecStatus::ok;
  };
}

Table1Info WcmpFunction::table1() const {
  return Table1Info{"Load Balancing", "WCMP [65]", true, true, false, false,
                    true};
}

const char* MessageWcmpFunction::source() const {
  return R"(
// Message-level WCMP (Figure 2, bottom): pick once per message and cache
// the label in message state, so one message never reorders.
fun(packet : Packet, msg : Message, global : Global) ->
  (if msg.path < 0 then
    let paths = global.paths in
    let n = len(paths) in
    let r = rand(1000) in
    let rec pick(i, acc) =
      if i >= n then 0 - 1
      elif paths[i].dst <> packet.dst then pick(i + 1, acc)
      else (
        let acc2 = acc + paths[i].weight in
        (if r < acc2 then paths[i].label else pick(i + 1, acc2))
      )
    in
    msg.path <- pick(0, 0)
  else 0);
  packet.path <- msg.path
)";
}

std::vector<lang::FieldDef> MessageWcmpFunction::global_fields() const {
  return WcmpFunction{}.global_fields();
}

core::NativeActionFn MessageWcmpFunction::native() const {
  return [](StateBlock& pkt, StateBlock* msg, StateBlock* global,
            core::NativeCtx& ctx) {
    if (global == nullptr || global->arrays.empty() || msg == nullptr) {
      return ExecStatus::bad_state_slot;
    }
    if (msg->scalars[MessageSlot::path] < 0) {
      msg->scalars[MessageSlot::path] = native_pick(
          global->arrays[0], pkt.scalars[PacketSlot::dst], ctx.rng);
    }
    pkt.scalars[PacketSlot::path] = msg->scalars[MessageSlot::path];
    return ExecStatus::ok;
  };
}

Table1Info MessageWcmpFunction::table1() const {
  return Table1Info{"Load Balancing", "Message-based WCMP", true, true, true,
                    false, true};
}

const char* VipLbFunction::source() const {
  return R"(
// Ananta-style VIP load balancing: the first packet of a connection to
// the VIP picks a backend uniformly; message state pins the connection
// there (msg.state0 = backend index + 1).
fun(packet : Packet, msg : Message, global : Global) ->
  (if msg.state0 = 0 && packet.dst = global.vip then
    let n = len(global.backend_labels) in
    (if n > 0 then msg.state0 <- 1 + rand(n) else 0)
  else 0);
  (if msg.state0 > 0 then
    packet.path <- global.backend_labels[msg.state0 - 1]
  else 0)
)";
}

std::vector<lang::FieldDef> VipLbFunction::global_fields() const {
  lang::FieldDef vip;
  vip.name = "vip";
  vip.access = Access::read_only;

  lang::FieldDef backends;
  backends.name = "backend_labels";
  backends.access = Access::read_only;
  backends.kind = lang::FieldKind::array;
  return {vip, backends};
}

core::NativeActionFn VipLbFunction::native() const {
  // Global scalar slot 0 = vip; array slot 0 = backend_labels.
  return [](StateBlock& pkt, StateBlock* msg, StateBlock* global,
            core::NativeCtx& ctx) {
    if (global == nullptr || global->scalars.empty() ||
        global->arrays.empty() || msg == nullptr) {
      return ExecStatus::bad_state_slot;
    }
    std::int64_t& pinned = msg->scalars[MessageSlot::state0];
    const auto& labels = global->arrays[0].data;
    if (pinned == 0 && pkt.scalars[PacketSlot::dst] == global->scalars[0] &&
        !labels.empty()) {
      pinned = 1 + static_cast<std::int64_t>(ctx.rng.below(labels.size()));
    }
    if (pinned > 0) {
      if (static_cast<std::size_t>(pinned - 1) >= labels.size()) {
        return ExecStatus::out_of_bounds;
      }
      pkt.scalars[PacketSlot::path] =
          labels[static_cast<std::size_t>(pinned - 1)];
    }
    return ExecStatus::ok;
  };
}

Table1Info VipLbFunction::table1() const {
  return Table1Info{"Load Balancing", "Ananta [47]", true, true, false,
                    false, true};
}

void push_vip_config(core::Enclave& enclave, core::ActionId action,
                     std::int64_t vip,
                     std::span<const std::int64_t> backend_labels) {
  enclave.set_global_scalar(action, "vip", vip);
  enclave.set_global_array(action, "backend_labels",
                           std::vector<std::int64_t>(backend_labels.begin(),
                                                     backend_labels.end()));
}

std::vector<std::int64_t> flatten_path_table(
    const std::vector<std::pair<netsim::HostId,
                                std::vector<core::WeightedPath>>>& by_dst) {
  std::vector<std::int64_t> flat;
  for (const auto& [dst, paths] : by_dst) {
    for (const core::WeightedPath& p : paths) {
      flat.push_back(static_cast<std::int64_t>(dst));
      flat.push_back(p.label);
      flat.push_back(p.weight);
    }
  }
  return flat;
}

void push_path_table(
    core::Enclave& enclave, core::ActionId action,
    const std::vector<std::pair<netsim::HostId,
                                std::vector<core::WeightedPath>>>& by_dst) {
  enclave.set_global_array(action, "paths", flatten_path_table(by_dst));
}

}  // namespace eden::functions
