#include "functions/registry.h"

#include "functions/firewall.h"
#include "functions/misc.h"
#include "functions/pulsar.h"
#include "functions/scheduling.h"
#include "functions/wcmp.h"

namespace eden::functions {

const std::vector<std::unique_ptr<NetworkFunction>>& all_functions() {
  static const auto* functions = [] {
    auto* v = new std::vector<std::unique_ptr<NetworkFunction>>();
    v->push_back(std::make_unique<WcmpFunction>());
    v->push_back(std::make_unique<MessageWcmpFunction>());
    v->push_back(std::make_unique<VipLbFunction>());
    v->push_back(std::make_unique<ReplicaSelectFunction>());
    v->push_back(std::make_unique<PulsarFunction>());
    v->push_back(std::make_unique<PiasFunction>());
    v->push_back(std::make_unique<SffFunction>());
    v->push_back(std::make_unique<QjumpFunction>());
    v->push_back(std::make_unique<PortKnockFunction>());
    v->push_back(std::make_unique<ConntrackFunction>());
    v->push_back(std::make_unique<CounterFunction>());
    return v;
  }();
  return *functions;
}

std::vector<Table1Row> table1_rows() {
  std::vector<Table1Row> rows;
  for (const auto& fn : all_functions()) {
    const Table1Info info = fn->table1();
    rows.push_back(Table1Row{info.category, info.example,
                             info.data_plane_state, info.data_plane_compute,
                             info.app_semantics, info.network_support,
                             info.eden_out_of_box, true});
  }
  // Taxonomy-only rows from Table 1: functions needing switch support
  // beyond priorities + labels (Eden does not claim them out of the box).
  rows.push_back(Table1Row{"Load Balancing", "Conga [1] / Duet [26]", true,
                           true, true, true, false, false});
  rows.push_back(Table1Row{"Replica Selection", "SINBAD [17]", true, true,
                           true, false, true, false});
  rows.push_back(Table1Row{"Datacenter QoS", "Storage QoS [61, 58]", true,
                           true, true, false, true, false});
  rows.push_back(Table1Row{"Datacenter QoS", "Network QoS [9, 51, 38, 33]",
                           true, true, true, false, true, false});
  rows.push_back(Table1Row{"Congestion control",
                           "Explicit rate control (D3 [64], PDQ [30])", true,
                           true, true, true, false, false});
  rows.push_back(Table1Row{"Congestion control",
                           "Centralized congestion control [48, 27]", true,
                           true, true, true, false, false});
  rows.push_back(Table1Row{"Stateful firewall", "IDS (e.g. Snort [19])",
                           true, true, true, false, false, false});
  return rows;
}

}  // namespace eden::functions
