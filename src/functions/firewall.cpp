#include "functions/firewall.h"

#include "core/enclave_schema.h"

namespace eden::functions {

using core::MessageSlot;
using core::PacketSlot;
using lang::Access;
using lang::ExecStatus;
using lang::StateBlock;

const char* PortKnockFunction::source() const {
  return R"(
// Port knocking: msg.state0 counts correct knocks so far. The protected
// port drops until the whole sequence was seen; in strict mode a wrong
// knock resets progress.
fun(packet : Packet, msg : Message, global : Global) ->
  let n = len(global.knock_seq) in
  if packet.dst_port = global.open_port then
    (if msg.state0 < n then packet.drop <- 1 else 0)
  elif msg.state0 < n && packet.dst_port = global.knock_seq[msg.state0] then
    msg.state0 <- msg.state0 + 1
  elif global.strict = 1 && msg.state0 < n then
    msg.state0 <- 0
  else 0
)";
}

std::vector<lang::FieldDef> PortKnockFunction::global_fields() const {
  lang::FieldDef seq;
  seq.name = "knock_seq";
  seq.access = Access::read_only;
  seq.kind = lang::FieldKind::array;

  lang::FieldDef open_port;
  open_port.name = "open_port";
  open_port.access = Access::read_only;

  lang::FieldDef strict;
  strict.name = "strict";
  strict.access = Access::read_only;
  return {seq, open_port, strict};
}

core::NativeActionFn PortKnockFunction::native() const {
  // Global scalar slots: open_port = 0, strict = 1 (declaration order);
  // array slot 0 = knock_seq.
  return [](StateBlock& pkt, StateBlock* msg, StateBlock* global,
            core::NativeCtx&) {
    if (global == nullptr || global->arrays.empty() ||
        global->scalars.size() < 2 || msg == nullptr) {
      return ExecStatus::bad_state_slot;
    }
    const auto& seq = global->arrays[0].data;
    const auto n = static_cast<std::int64_t>(seq.size());
    const std::int64_t open_port = global->scalars[0];
    const std::int64_t strict = global->scalars[1];
    std::int64_t& progress = msg->scalars[MessageSlot::state0];
    const std::int64_t port = pkt.scalars[PacketSlot::dst_port];

    if (port == open_port) {
      if (progress < n) pkt.scalars[PacketSlot::drop] = 1;
    } else if (progress < n &&
               port == seq[static_cast<std::size_t>(progress)]) {
      ++progress;
    } else if (strict == 1 && progress < n) {
      progress = 0;
    }
    return ExecStatus::ok;
  };
}

Table1Info PortKnockFunction::table1() const {
  return Table1Info{"Stateful firewall", "Port knocking [13]", true, true,
                    false, false, true};
}

const char* ConntrackFunction::source() const {
  return R"(
// Connection tracking: msg.state0 = 1 once this host has sent traffic
// on the connection. Inbound packets pass on established connections
// and on the open-port allowlist; everything else drops.
fun(packet : Packet, msg : Message, global : Global) ->
  if packet.src = global.self then
    msg.state0 <- 1
  elif msg.state0 = 1 then
    0
  else (
    let ports = global.open_ports in
    let n = len(ports) in
    let rec find(i) =
      if i >= n then 0
      elif ports[i] = packet.dst_port then 1
      else find(i + 1)
    in
    (if find(0) = 0 then packet.drop <- 1 else msg.state0 <- 1)
  )
)";
}

std::vector<lang::FieldDef> ConntrackFunction::global_fields() const {
  lang::FieldDef self;
  self.name = "self";
  self.access = Access::read_only;

  lang::FieldDef ports;
  ports.name = "open_ports";
  ports.access = Access::read_only;
  ports.kind = lang::FieldKind::array;
  return {self, ports};
}

core::NativeActionFn ConntrackFunction::native() const {
  // Global scalar slot 0 = self; array slot 0 = open_ports.
  return [](StateBlock& pkt, StateBlock* msg, StateBlock* global,
            core::NativeCtx&) {
    if (global == nullptr || global->scalars.empty() ||
        global->arrays.empty() || msg == nullptr) {
      return ExecStatus::bad_state_slot;
    }
    std::int64_t& established = msg->scalars[MessageSlot::state0];
    if (pkt.scalars[PacketSlot::src] == global->scalars[0]) {
      established = 1;
      return ExecStatus::ok;
    }
    if (established == 1) return ExecStatus::ok;
    const auto& ports = global->arrays[0].data;
    const std::int64_t port = pkt.scalars[PacketSlot::dst_port];
    for (const std::int64_t open : ports) {
      if (open == port) {
        established = 1;
        return ExecStatus::ok;
      }
    }
    pkt.scalars[PacketSlot::drop] = 1;
    return ExecStatus::ok;
  };
}

Table1Info ConntrackFunction::table1() const {
  return Table1Info{"Stateful firewall", "Connection tracking", true, true,
                    false, false, true};
}

void push_conntrack_config(core::Enclave& enclave, core::ActionId action,
                           std::int64_t self_host,
                           std::span<const std::int64_t> open_ports) {
  enclave.set_global_scalar(action, "self", self_host);
  enclave.set_global_array(
      action, "open_ports",
      std::vector<std::int64_t>(open_ports.begin(), open_ports.end()));
}

void push_knock_config(core::Enclave& enclave, core::ActionId action,
                       std::span<const std::int64_t> knock_sequence,
                       std::int64_t open_port, bool strict) {
  enclave.set_global_array(
      action, "knock_seq",
      std::vector<std::int64_t>(knock_sequence.begin(),
                                knock_sequence.end()));
  enclave.set_global_scalar(action, "open_port", open_port);
  enclave.set_global_scalar(action, "strict", strict ? 1 : 0);
}

}  // namespace eden::functions
