// Flow-scheduling functions (case study 1).
//
// PiasFunction — the paper's Figure 7: track each message's bytes in
// message state and demote its priority through controller-installed
// thresholds as it grows (PIAS [8], application-agnostic).
//
// SffFunction — shortest-flow-first: the application provides the flow
// size up front (packet.flow_size metadata), so the priority is fixed at
// flow start; no message state needed. This is the "application
// information increases accuracy" variant of Section 5.1.
//
// Both use the global `priorities` table of {limit, priority} records,
// ordered by ascending limit; sizes beyond the last limit fall to
// priority 0 (background). A message/flow whose app_priority is < 1 has
// pinned itself to that (background) priority.
#pragma once

#include <span>

#include "functions/function.h"

namespace eden::functions {

class PiasFunction : public NetworkFunction {
 public:
  const char* name() const override { return "pias"; }
  const char* source() const override;
  std::vector<lang::FieldDef> global_fields() const override;
  core::NativeActionFn native() const override;
  Table1Info table1() const override;
};

class SffFunction : public NetworkFunction {
 public:
  const char* name() const override { return "sff"; }
  const char* source() const override;
  std::vector<lang::FieldDef> global_fields() const override;
  core::NativeActionFn native() const override;
  Table1Info table1() const override;
};

// Installs a {limit, priority} threshold table. `limits` ascending;
// priorities descend from `levels-1`... 1, with overflow to 0.
// E.g. limits {10KB, 1MB} -> <=10KB: prio 7 ... using explicit
// priority values passed in `priorities` (same length as limits).
void push_priority_thresholds(core::Enclave& enclave, core::ActionId action,
                              std::span<const std::int64_t> limits,
                              std::span<const std::int64_t> priorities);

}  // namespace eden::functions
