#include "functions/pulsar.h"

#include "core/enclave_schema.h"

namespace eden::functions {

using core::PacketSlot;
using lang::Access;
using lang::ExecStatus;
using lang::StateBlock;

namespace {
constexpr int kTenant = 0, kQueue = 1, kStride = 2;
}  // namespace

const char* PulsarFunction::source() const {
  return R"(
// Pulsar rate control (Figure 3): queue by tenant; charge READs by the
// operation size (msg_type 1 = READ), everything else by packet size.
fun(packet : Packet, msg : Message, global : Global) ->
  let queues = global.queue_map in
  let n = len(queues) in
  let rec find(i) =
    if i >= n then 0 - 1
    elif queues[i].tenant = packet.tenant then queues[i].queue
    else find(i + 1)
  in
  packet.queue <- find(0);
  packet.charge <-
    (if packet.msg_type = 1 then packet.msg_size else packet.size)
)";
}

std::vector<lang::FieldDef> PulsarFunction::global_fields() const {
  lang::FieldDef f;
  f.name = "queue_map";
  f.access = Access::read_only;
  f.kind = lang::FieldKind::record_array;
  f.record_fields = {"tenant", "queue"};
  return {f};
}

core::NativeActionFn PulsarFunction::native() const {
  return [](StateBlock& pkt, StateBlock*, StateBlock* global,
            core::NativeCtx&) {
    if (global == nullptr || global->arrays.empty()) {
      return ExecStatus::bad_state_slot;
    }
    const lang::ArrayValue& queues = global->arrays[0];
    const std::int64_t tenant = pkt.scalars[PacketSlot::tenant];
    std::int64_t queue = -1;
    const std::size_t n = queues.data.size() / kStride;
    for (std::size_t i = 0; i < n; ++i) {
      if (queues.data[i * kStride + kTenant] == tenant) {
        queue = queues.data[i * kStride + kQueue];
        break;
      }
    }
    pkt.scalars[PacketSlot::queue] = queue;
    pkt.scalars[PacketSlot::charge] =
        pkt.scalars[PacketSlot::msg_type] == kIoRead
            ? pkt.scalars[PacketSlot::msg_size]
            : pkt.scalars[PacketSlot::size];
    return ExecStatus::ok;
  };
}

Table1Info PulsarFunction::table1() const {
  return Table1Info{"Datacenter QoS", "Pulsar [6]", true, true, true, false,
                    true};
}

void push_queue_map(core::Enclave& enclave, core::ActionId action,
                    std::span<const std::pair<std::int64_t, std::int64_t>>
                        tenant_queue_pairs) {
  std::vector<std::int64_t> flat;
  flat.reserve(tenant_queue_pairs.size() * 2);
  for (const auto& [tenant, queue] : tenant_queue_pairs) {
    flat.push_back(tenant);
    flat.push_back(queue);
  }
  enclave.set_global_array(action, "queue_map", std::move(flat));
}

}  // namespace eden::functions
