// Weighted-cost multipath load balancing (case study 2, Figure 2).
//
// The controller computes per-destination weighted path sets from the
// topology (Controller::weighted_paths) and pushes them into the
// function's global `paths` table as {dst, label, weight} records with
// weights summing to core::kWeightScale per destination.
//
// WcmpFunction picks a label per *packet* (the paper's per-packet WCMP,
// which reorders TCP); MessageWcmpFunction caches the choice in message
// state so all packets of one message ride the same path ("message-level
// load balancing", Section 2.1.1).
#pragma once

#include "functions/function.h"
#include "netsim/routing.h"

namespace eden::functions {

class WcmpFunction : public NetworkFunction {
 public:
  const char* name() const override { return "wcmp"; }
  const char* source() const override;
  std::vector<lang::FieldDef> global_fields() const override;
  core::NativeActionFn native() const override;
  Table1Info table1() const override;
};

class MessageWcmpFunction : public NetworkFunction {
 public:
  const char* name() const override { return "message_wcmp"; }
  const char* source() const override;
  std::vector<lang::FieldDef> global_fields() const override;
  core::NativeActionFn native() const override;
  Table1Info table1() const override;
};

// Ananta-style VIP load balancing at the sender: connections addressed
// to the virtual IP are pinned to one of the backend path labels, with
// per-connection affinity kept in message state (the flow is the
// message).
class VipLbFunction : public NetworkFunction {
 public:
  const char* name() const override { return "vip_lb"; }
  const char* source() const override;
  std::vector<lang::FieldDef> global_fields() const override;
  core::NativeActionFn native() const override;
  Table1Info table1() const override;
};

// Installs the virtual IP (a host id here) and the backends' path labels.
void push_vip_config(core::Enclave& enclave, core::ActionId action,
                     std::int64_t vip,
                     std::span<const std::int64_t> backend_labels);

// Flattens the controller's weighted paths for `dst` pairs into the
// {dst, label, weight} records the functions consume.
std::vector<std::int64_t> flatten_path_table(
    const std::vector<std::pair<netsim::HostId,
                                std::vector<core::WeightedPath>>>& by_dst);

// Pushes a path table into an installed wcmp/message_wcmp action.
void push_path_table(
    core::Enclave& enclave, core::ActionId action,
    const std::vector<std::pair<netsim::HostId,
                                std::vector<core::WeightedPath>>>& by_dst);

}  // namespace eden::functions
