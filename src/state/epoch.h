// Epoch-based reclamation for the flow-state engine.
//
// The FlowStore hit path probes its hash table WITHOUT the shard lock:
// a reader loads the published table pointer, walks control bytes and
// slot pointers, and hands a raw Entry* to the action runtime. Writers
// (insert / resize / expiry / eviction) run under the shard lock and
// may unlink entries or swap whole tables while readers are mid-probe.
// Nothing unlinked may be FREED until every reader that could have
// observed it is gone — that is this domain's job, extending the RCU
// idiom the enclave already uses for rule snapshots (per-thread
// epoch-cached shared_ptr) down to individual table entries, where a
// shared_ptr per probe would defeat the point of the exercise.
//
// Protocol
//   * Readers wrap each traversal in a Guard. Enter pins the thread's
//     slot to the current global epoch (seq_cst store + fence); exit
//     clears it. Guards nest.
//   * Writers unlink an object under their shard lock, then stamp it
//     with `stamp_retire()` — the global epoch read under the domain
//     mutex — and park it on their own retire list.
//   * `reclaim_horizon()` bumps the global epoch (under the same
//     mutex) and returns min(pinned epochs); items stamped strictly
//     below the horizon are unreachable and may be freed.
//
// Why this is safe (sketch): suppose a reader still holds object X
// stamped at epoch e. If the reader's pin is ≥ e+1, its seq_cst load
// of the global epoch read a value stored by an advance that — being
// serialized behind the same mutex as X's stamping — happened after
// X was unlinked; the load synchronizes with that store, so the
// reader's probe would have seen the unlink and could not hold X.
// Hence any reader holding X is pinned at ≤ e, and `min(pinned) > e`
// proves X is free. Laggard readers simply hold the horizon down;
// they never cause a use-after-free.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace eden::state {

class EpochDomain {
 public:
  // One process-wide domain: pins are per-thread, not per-store, so a
  // single guard covers every store an action execution touches.
  static EpochDomain& instance();

  EpochDomain();
  ~EpochDomain();
  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  // RAII read-side critical section. Cheap: one seq_cst load + store
  // + fence on enter, a release store on exit. Re-entrant.
  class Guard {
   public:
    explicit Guard(EpochDomain& domain) : domain_(domain) {
      domain_.enter();
    }
    ~Guard() { domain_.exit(); }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    EpochDomain& domain_;
  };

  // Stamps a just-unlinked object with the current epoch. The caller
  // keeps the object on its own retire list; the domain only hands
  // out epochs and horizons. Serialized with epoch advances.
  std::uint64_t stamp_retire();

  // Advances the global epoch and returns the reclamation horizon:
  // every object stamped with an epoch < horizon is unreachable from
  // any present or future guard and may be freed.
  std::uint64_t reclaim_horizon();

  // True if the calling thread currently holds a guard (diagnostics).
  bool pinned_here() const;

  // Number of thread slots ever handed out (test / telemetry aid).
  std::size_t slot_high_water() const;

  // Implementation details, public only so the thread-exit cleanup
  // record (file-local in epoch.cpp) can release slots.
  struct Slot;
  struct Impl;

 private:
  void enter();
  void exit();
  Slot* slot_for_thread();

  Impl* impl_;
};

}  // namespace eden::state
