// Hierarchical timer wheel for idle-entry expiry.
//
// Four levels of 64 slots each cover 64 / 4k / 256k / 16M ticks of
// horizon (about 16M ticks total wrap; with the default 1 ms tick that
// is ~4.6 hours, far beyond any idle timeout we care about — deadlines
// past the horizon clamp into the top level and simply fire a few
// cascades early, which the lazy re-arm check absorbs).
//
// Design points, matching the "touch-on-access, lazy cascade" contract
// in ISSUE 9:
//   * Scheduling and advancing are O(1) amortized; a node is placed by
//     the distance of its deadline from the current tick, and higher
//     levels cascade one slot at a time as the cursor wraps a lower
//     level — nothing is rehashed on the fast path.
//   * Touch-on-access never moves a node. The store just stamps the
//     entry's last_touch; when the node's original slot fires, the
//     owner decides (from the fresh timestamp) whether the node is
//     really idle or should be lazily re-armed at its new deadline.
//   * The wheel is intrusive: TimerNode lives inside the FlowStore
//     entry, so scheduling allocates nothing.
//
// Not thread-safe; the owning FlowStore shard serializes access under
// its shard lock.
#pragma once

#include <cstddef>
#include <cstdint>

namespace eden::state {

struct TimerNode {
  TimerNode* prev = nullptr;
  TimerNode* next = nullptr;
  std::int64_t deadline_ns = 0;  // as of the last (re)schedule

  bool scheduled() const { return prev != nullptr; }
};

class TimerWheel {
 public:
  static constexpr int kSlotBits = 6;
  static constexpr int kLevels = 4;
  static constexpr std::size_t kSlots = std::size_t{1} << kSlotBits;  // 64

  // `tick_ns` is the level-0 granularity; `start_ns` anchors tick 0 so
  // the first schedule lands near the cursor.
  explicit TimerWheel(std::int64_t tick_ns, std::int64_t start_ns = 0);

  // Inserts or moves `node` so it fires no earlier than `deadline_ns`
  // (quantized down to a tick, never into the past of the cursor).
  void schedule(TimerNode& node, std::int64_t deadline_ns);

  void cancel(TimerNode& node);

  // Moves the cursor to `now_ns` while the wheel is empty (cheap way
  // to skip an idle gap before the first schedule). No-op otherwise.
  void reanchor(std::int64_t now_ns) {
    if (scheduled_ == 0) current_tick_ = tick_of(now_ns);
  }

  // Advances the cursor to `now_ns`, cascading higher levels as slots
  // wrap, and calls `fn(node)` for every node whose slot fires. The
  // callback owns the node's fate: re-schedule it (lazy re-arm) or
  // leave it unlinked (expired). `fn` may schedule/cancel freely.
  template <typename Fn>
  void advance(std::int64_t now_ns, Fn&& fn) {
    const std::int64_t target = tick_of(now_ns);
    while (current_tick_ < target) {
      // Empty wheel: nothing can fire, so teleport the cursor instead
      // of stepping through a potentially hours-long idle gap.
      if (scheduled_ == 0) {
        current_tick_ = target;
        break;
      }
      step_one_tick(fn);
    }
  }

  // Collects up to `max` nodes from the earliest non-empty slot in
  // firing order (the coarse "oldest" cohort) for capacity eviction.
  // Returns the number written to `out`.
  std::size_t collect_oldest(TimerNode** out, std::size_t max) const;

  std::size_t scheduled_count() const { return scheduled_; }
  std::int64_t tick_ns() const { return tick_ns_; }
  std::int64_t current_tick() const { return current_tick_; }

 private:
  std::int64_t tick_of(std::int64_t ns) const { return ns / tick_ns_; }
  void place(TimerNode& node, std::int64_t deadline_tick);
  static void unlink(TimerNode& node);
  void push_back(TimerNode& list, TimerNode& node);

  template <typename Fn>
  void step_one_tick(Fn& fn) {
    ++current_tick_;
    cascade_due_levels();
    // Detach the firing list first: the callback may re-schedule the
    // node into this same slot (deadline in the current tick), which
    // must wait for the NEXT lap, not loop forever now.
    TimerNode* head = detach_slot(0, slot_index(0, current_tick_));
    while (head != nullptr) {
      TimerNode* next = head->next;
      head->prev = head->next = nullptr;
      --scheduled_;
      fn(head);
      head = next;
    }
  }

  std::size_t slot_index(int level, std::int64_t tick) const {
    return static_cast<std::size_t>(tick >> (kSlotBits * level)) & (kSlots - 1);
  }

  void cascade_due_levels();
  void cascade(int level, std::size_t slot);
  TimerNode* detach_slot(int level, std::size_t slot);

  std::int64_t tick_ns_;
  std::int64_t current_tick_;
  std::size_t scheduled_ = 0;
  // Sentinel-headed circular lists.
  TimerNode slots_[kLevels][kSlots];
};

}  // namespace eden::state
