// FlowStore — the million-flow state engine (ISSUE 9 tentpole).
//
// A sharded, cache-friendly open-addressing table for per-message
// state. Replaces the enclave's per-action
// `shared_mutex + unordered_map<int64, shared_ptr<MessageEntry>>`:
//
//   * Shards are selected by the same splitmix64-whitened key the
//     dataplane steers on (`util::mix64`), so under RSS a shard is
//     effectively owned by one worker and its slots stay cache-hot.
//   * Within a shard, a Swiss-table-style layout: a control-byte array
//     (7-bit tag per slot, probed in groups of 16) in front of a slot
//     array of Entry pointers. Entries live in a stable slab arena and
//     NEVER move, so resize just rebuilds the index arrays — the
//     StateBlock payload, the per-entry mutex the action runtime locks,
//     and the intrusive timer node all keep their addresses.
//   * The hit path takes NO shard lock: readers probe the published
//     table under an EpochDomain guard; insert/resize/expiry/eviction
//     serialize on the shard mutex and retire unlinked memory through
//     the epoch protocol (see epoch.h) so nothing is freed or reused
//     while an in-flight execution can still touch it.
//   * A per-shard hierarchical TimerWheel orders entries by idleness:
//     every acquire stamps last_touch (touch-on-access, no wheel
//     movement); advance() lazily cascades and either expires a fired
//     entry (last_touch + idle_timeout <= now) or re-arms it at its
//     fresh deadline. Capacity eviction picks its victim from the
//     wheel's oldest cohort by minimum last_touch — idle flows go
//     first, hot long-lived flows survive. Expiry and capacity
//     eviction are accounted separately.
//
// Concurrency contract: find/acquire may run from any thread with a
// live EpochDomain::Guard; the returned Entry* (and everything hanging
// off it) stays valid until the guard is released, even if the entry
// is concurrently expired, evicted or the table resized. Mutating an
// entry's block requires holding entry->lock (per-message exclusivity,
// unchanged from the old MessageEntry).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "lang/state_schema.h"
#include "state/epoch.h"
#include "state/timer_wheel.h"
#include "telemetry/metrics.h"

namespace eden::state {

// Optional mirror counters (e.g. the enclave's stats block) bumped in
// addition to the store's own, so enclave-lifetime accounting survives
// individual stores being torn down with their actions.
struct FlowStoreSink {
  std::atomic<std::uint64_t>* created = nullptr;
  std::atomic<std::uint64_t>* expired = nullptr;
  std::atomic<std::uint64_t>* evicted = nullptr;
};

struct FlowStoreConfig {
  std::size_t shards = 8;             // rounded up to a power of two
  std::size_t initial_capacity = 64;  // slots per shard, power of two
  std::size_t max_entries = 0;        // total live cap; 0 = unlimited
  std::int64_t idle_timeout_ns = 0;   // 0 = idle expiry disabled
  std::int64_t wheel_tick_ns = 1'000'000;  // 1 ms
  std::uint32_t probe_sample_every = 64;   // find-path histogram sampling
  FlowStoreSink sink;
};

struct FlowStoreStats {
  std::uint64_t live = 0;
  std::uint64_t created = 0;
  std::uint64_t expired = 0;   // idle-timeout removals
  std::uint64_t evicted = 0;   // capacity removals
  std::uint64_t resizes = 0;
  telemetry::HistogramSnapshot probe_len;
};

class FlowStore {
 public:
  struct Entry {
    // First member: the wheel hands back TimerNode*, and entry_of()
    // relies on the node sitting at offset 0.
    TimerNode timer;
    std::int64_t key = 0;
    std::atomic<std::int64_t> last_touch_ns{0};
    std::mutex lock;  // per-message exclusivity, as MessageEntry had
    lang::StateBlock block;
    Entry* free_next = nullptr;
  };

  // Runs under the shard lock for a freshly created entry. The block
  // may hold a recycled predecessor's contents (capacity is reused);
  // the callback must fully re-initialize it.
  using InitFn = void (*)(void* ctx, lang::StateBlock& block);

  explicit FlowStore(FlowStoreConfig config,
                     EpochDomain& domain = EpochDomain::instance());
  ~FlowStore();
  FlowStore(const FlowStore&) = delete;
  FlowStore& operator=(const FlowStore&) = delete;

  // Lock-free lookup; does NOT touch (peek semantics).
  Entry* find(const EpochDomain::Guard& guard, std::int64_t key) const;

  // Find-or-create; stamps last_touch either way. `init`/`ctx` run only
  // on creation. Sets *created when the entry is new.
  Entry* acquire(const EpochDomain::Guard& guard, std::int64_t key,
                 std::int64_t now_ns, InitFn init, void* ctx,
                 bool* created = nullptr);

  // Removes `key` if present (controller/test path). Bumps neither the
  // expired nor the evicted counter: the caller asked for the removal
  // and accounts for it.
  bool erase(std::int64_t key);

  // Batch warm-up for the hit path. Lookups at large populations pay
  // up to three dependent cache misses (ctrl byte, slot pointer, entry
  // line); issuing `prefetch` for every key in a batch and then
  // `prefetch_entry` for the same keys overlaps those misses across
  // the whole batch instead of serializing them per lookup. Both are
  // hints: they never fault, never touch stats, and are safe for keys
  // that are absent. `prefetch_entry` assumes the table lines are
  // already warm (i.e. `prefetch` ran earlier in the same batch).
  void prefetch(const EpochDomain::Guard& guard, std::int64_t key) const;
  void prefetch_entry(const EpochDomain::Guard& guard,
                      std::int64_t key) const;
  // Third wave: pulls the entry's out-of-line payload storage (the
  // StateBlock vectors' heap lines). Assumes the entry line itself is
  // warm, i.e. `prefetch_entry` ran earlier in the same batch.
  void prefetch_payload(const EpochDomain::Guard& guard,
                        std::int64_t key) const;

  // Batched peek: looks up `n` keys (n <= kMaxFindBatch) and writes
  // out[i] = entry or nullptr. Equivalent to n find() calls but runs
  // the prefetch waves internally, hashing and probing each key once:
  // wave 1 issues the table-line prefetches for every key, wave 2
  // probes (now-warm lines) and prefetches each candidate entry, wave
  // 3 validates candidates against the (now-warm) entry lines. At
  // large populations this overlaps the dependent misses of the whole
  // batch instead of serializing three per lookup.
  static constexpr std::size_t kMaxFindBatch = 256;
  void find_batch(const EpochDomain::Guard& guard,
                  const std::int64_t* keys, std::size_t n,
                  Entry** out) const;

  // Expires idle entries whose shard index falls in the given stripe
  // and reclaims retired memory. `advance` covers every shard.
  void advance(std::int64_t now_ns) { advance_stripe(0, 1, now_ns); }
  void advance_stripe(std::size_t stripe, std::size_t stripes,
                      std::int64_t now_ns);

  FlowStoreStats stats() const;
  std::uint64_t live() const {
    return live_.load(std::memory_order_relaxed);
  }
  std::size_t shard_count() const { return shards_count_; }
  EpochDomain& domain() const { return domain_; }
  const FlowStoreConfig& config() const { return config_; }

 private:
  struct Table;
  struct Shard;

  static Entry* entry_of(TimerNode* node) {
    return reinterpret_cast<Entry*>(node);
  }

  Shard& shard_for(std::uint64_t hash) const;
  Entry* probe_find(const Table& t, std::uint64_t hash, std::int64_t key,
                    std::size_t* probe_out = nullptr) const;
  Entry* insert_locked(Shard& sh, std::uint64_t hash, std::int64_t key,
                       std::int64_t now_ns, InitFn init, void* ctx);
  // How an entry left the table: kErased is a caller-requested removal
  // and bumps no counter (callers account for it); kExpired/kEvicted
  // feed the matching stat and sink.
  enum class RemoveKind { kErased, kExpired, kEvicted };
  void remove_locked(Shard& sh, Entry* e, RemoveKind kind);
  void resize_locked(Shard& sh, std::size_t new_capacity);
  void ensure_capacity(std::size_t preferred_shard, std::int64_t now_ns);
  bool evict_one(std::size_t preferred_shard, std::int64_t now_ns);
  Entry* alloc_entry(Shard& sh);
  void maybe_reclaim(Shard& sh, bool force);

  FlowStoreConfig config_;
  EpochDomain& domain_;
  std::size_t shards_count_;
  std::uint64_t shard_mask_;
  int shard_bits_;
  std::unique_ptr<Shard[]> shards_;

  std::atomic<std::uint64_t> live_{0};
  std::atomic<std::uint64_t> created_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> evicted_{0};
  std::atomic<std::uint64_t> resizes_{0};
  telemetry::Histogram probe_hist_;
};

}  // namespace eden::state
