#include "state/epoch.h"

#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace eden::state {

namespace {
constexpr std::size_t kSlotsPerChunk = 64;
}  // namespace

// Pin record for one thread. `pinned == 0` means inactive; otherwise it
// holds the epoch the thread observed on guard entry. `depth` is only
// touched by the owning thread (guards nest). Padded so concurrent
// pin/unpin by different threads never share a line.
struct alignas(64) EpochDomain::Slot {
  std::atomic<std::uint64_t> pinned{0};
  std::uint32_t depth = 0;
};

struct EpochDomain::Impl {
  std::mutex mu;  // serializes epoch advances with retire stamping
  std::atomic<std::uint64_t> global_epoch{1};

  // Slots are allocated in chunks and never move or shrink, so the
  // horizon scan can walk `all` without the mutex held by readers.
  std::vector<std::unique_ptr<Slot[]>> chunks;
  std::vector<Slot*> all;       // guarded by mu for growth; stable entries
  std::vector<Slot*> free;      // guarded by mu
  std::atomic<std::size_t> slot_count{0};

  // Intrusive refcount: one ref for the domain itself plus one per
  // thread-local registration, so a thread that outlives the domain
  // can still release its slot safely.
  std::atomic<std::size_t> refs{1};

  Slot* grab_slot() {
    std::lock_guard<std::mutex> lock(mu);
    if (!free.empty()) {
      Slot* s = free.back();
      free.pop_back();
      return s;
    }
    if (all.size() % kSlotsPerChunk == 0) {
      chunks.push_back(std::make_unique<Slot[]>(kSlotsPerChunk));
    }
    Slot* s = &chunks.back()[all.size() % kSlotsPerChunk];
    all.push_back(s);
    slot_count.store(all.size(), std::memory_order_release);
    return s;
  }

  void release_slot(Slot* s) {
    s->depth = 0;
    s->pinned.store(0, std::memory_order_release);
    std::lock_guard<std::mutex> lock(mu);
    free.push_back(s);
  }

  void ref() { refs.fetch_add(1, std::memory_order_relaxed); }
  void unref() {
    if (refs.fetch_sub(1, std::memory_order_acq_rel) == 1) delete this;
  }
};

namespace {

// Per-thread slot registrations. A thread typically touches exactly one
// domain (the process singleton), so linear scan is fine. Each entry
// holds a ref on the Impl, which both keeps the slot memory alive past
// domain destruction and makes the pointer-identity lookup ABA-safe.
struct ThreadRegs {
  struct Reg {
    EpochDomain::Impl* impl;
    EpochDomain::Slot* slot;
  };
  std::vector<Reg> regs;

  ~ThreadRegs() {
    for (Reg& r : regs) {
      r.impl->release_slot(r.slot);
      r.impl->unref();
    }
  }
};

thread_local ThreadRegs t_regs;

}  // namespace

EpochDomain& EpochDomain::instance() {
  static EpochDomain domain;
  return domain;
}

EpochDomain::EpochDomain() : impl_(new Impl) {}

EpochDomain::~EpochDomain() { impl_->unref(); }

EpochDomain::Slot* EpochDomain::slot_for_thread() {
  for (const auto& r : t_regs.regs) {
    if (r.impl == impl_) return r.slot;
  }
  Slot* s = impl_->grab_slot();
  impl_->ref();
  t_regs.regs.push_back({impl_, s});
  return s;
}

void EpochDomain::enter() {
  Slot* s = slot_for_thread();
  if (s->depth++ != 0) return;
  const std::uint64_t e = impl_->global_epoch.load(std::memory_order_seq_cst);
  s->pinned.store(e, std::memory_order_seq_cst);
  // Pairs with the fence in reclaim_horizon(): either the horizon scan
  // observes this pin, or this thread's subsequent probe observes every
  // unlink that preceded the scan.
  std::atomic_thread_fence(std::memory_order_seq_cst);
}

void EpochDomain::exit() {
  Slot* s = slot_for_thread();
  if (--s->depth != 0) return;
  s->pinned.store(0, std::memory_order_release);
}

bool EpochDomain::pinned_here() const {
  for (const auto& r : t_regs.regs) {
    if (r.impl == impl_) return r.slot->depth != 0;
  }
  return false;
}

std::uint64_t EpochDomain::stamp_retire() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->global_epoch.load(std::memory_order_relaxed);
}

std::uint64_t EpochDomain::reclaim_horizon() {
  // The mutex is held across the scan so `all` cannot reallocate under
  // us; readers never take it, so this only contends with other
  // writers' stamping, which is the point of the serialization.
  std::lock_guard<std::mutex> lock(impl_->mu);
  const std::uint64_t g =
      impl_->global_epoch.load(std::memory_order_relaxed) + 1;
  impl_->global_epoch.store(g, std::memory_order_seq_cst);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  std::uint64_t horizon = g;
  for (Slot* s : impl_->all) {
    const std::uint64_t p = s->pinned.load(std::memory_order_acquire);
    if (p != 0 && p < horizon) horizon = p;
  }
  return horizon;
}

std::size_t EpochDomain::slot_high_water() const {
  return impl_->slot_count.load(std::memory_order_acquire);
}

}  // namespace eden::state
