#include "state/flow_store.h"

#include <bit>
#include <cassert>
#include <cstring>

#include "util/hash.h"

namespace eden::state {

namespace {

// Control bytes: 0x00 empty, 0x01 tombstone, 0x80|tag7 occupied. Tags
// come from the top 7 hash bits, which never overlap the slot-index
// bits, so a one-byte compare rejects almost every non-matching slot
// without touching the entry line.
constexpr std::uint8_t kEmpty = 0x00;
constexpr std::uint8_t kTombstone = 0x01;
constexpr std::size_t kGroup = 16;       // slots probed per group
constexpr std::size_t kSlabEntries = 256;
constexpr std::size_t kReclaimBatch = 64;
constexpr std::size_t kEvictScan = 32;   // oldest-cohort sample size

std::uint8_t tag_of(std::uint64_t h) {
  return static_cast<std::uint8_t>(0x80u | (h >> 57));
}

std::size_t ceil_pow2(std::size_t v) {
  return v < 2 ? 2 : std::bit_ceil(v);
}

}  // namespace

struct FlowStore::Table {
  explicit Table(std::size_t capacity)
      : mask(capacity - 1),
        ctrl(new std::atomic<std::uint8_t>[capacity]),
        slots(new std::atomic<Entry*>[capacity]) {
    for (std::size_t i = 0; i < capacity; ++i) {
      ctrl[i].store(kEmpty, std::memory_order_relaxed);
      slots[i].store(nullptr, std::memory_order_relaxed);
    }
  }
  std::size_t capacity() const { return mask + 1; }

  const std::size_t mask;
  std::unique_ptr<std::atomic<std::uint8_t>[]> ctrl;
  std::unique_ptr<std::atomic<Entry*>[]> slots;
};

struct alignas(64) FlowStore::Shard {
  std::mutex lock;
  std::atomic<Table*> table{nullptr};
  std::unique_ptr<TimerWheel> wheel;
  std::size_t size = 0;        // live entries, under lock
  std::size_t tombstones = 0;  // under lock

  Entry* free_head = nullptr;
  std::vector<std::unique_ptr<std::byte[]>> slabs;

  struct Retired {
    void* ptr;
    std::uint64_t epoch;
    bool is_table;
  };
  std::vector<Retired> retired;  // under lock
};

FlowStore::FlowStore(FlowStoreConfig config, EpochDomain& domain)
    : config_(config), domain_(domain) {
  shards_count_ = ceil_pow2(config_.shards == 0 ? 1 : config_.shards);
  shard_mask_ = shards_count_ - 1;
  shard_bits_ = std::countr_zero(shards_count_);
  config_.initial_capacity = ceil_pow2(
      config_.initial_capacity < kGroup ? kGroup : config_.initial_capacity);
  shards_ = std::make_unique<Shard[]>(shards_count_);
  for (std::size_t i = 0; i < shards_count_; ++i) {
    shards_[i].wheel = std::make_unique<TimerWheel>(config_.wheel_tick_ns);
  }
}

FlowStore::~FlowStore() {
  // Contract: no guard still references this store's entries when the
  // destructor runs (the enclave guarantees it via the rule-snapshot
  // lifetime), so everything can be freed unconditionally.
  for (std::size_t s = 0; s < shards_count_; ++s) {
    Shard& sh = shards_[s];
    delete sh.table.load(std::memory_order_relaxed);
    for (const auto& r : sh.retired) {
      if (r.is_table) delete static_cast<Table*>(r.ptr);
      // Retired entries live in the slabs below; destroyed there.
    }
    for (auto& slab : sh.slabs) {
      Entry* entries = reinterpret_cast<Entry*>(slab.get());
      for (std::size_t i = 0; i < kSlabEntries; ++i) entries[i].~Entry();
    }
  }
}

FlowStore::Shard& FlowStore::shard_for(std::uint64_t hash) const {
  return shards_[hash & shard_mask_];
}

FlowStore::Entry* FlowStore::probe_find(const Table& t, std::uint64_t hash,
                                        std::int64_t key,
                                        std::size_t* probe_out) const {
  const std::uint8_t tag = tag_of(hash);
  const std::size_t mask = t.mask;
  std::size_t base = (hash >> shard_bits_) & mask;
  for (std::size_t probed = 0; probed <= mask;) {
    bool saw_empty = false;
    for (std::size_t j = 0; j < kGroup && probed <= mask; ++j, ++probed) {
      const std::size_t i = (base + j) & mask;
      const std::uint8_t c = t.ctrl[i].load(std::memory_order_acquire);
      if (c == tag) {
        Entry* e = t.slots[i].load(std::memory_order_acquire);
        if (e != nullptr && e->key == key) {
          if (probe_out != nullptr) *probe_out = probed + 1;
          return e;
        }
      } else if (c == kEmpty) {
        saw_empty = true;
      }
    }
    // An empty slot anywhere in the group terminates the probe chain:
    // inserts never skip an empty slot, so the key cannot be further.
    if (saw_empty) return nullptr;
    base = (base + kGroup) & mask;
  }
  return nullptr;
}

FlowStore::Entry* FlowStore::find(const EpochDomain::Guard&,
                                  std::int64_t key) const {
  const std::uint64_t h = util::mix64(static_cast<std::uint64_t>(key));
  const Shard& sh = shard_for(h);
  const Table* t = sh.table.load(std::memory_order_acquire);
  if (t == nullptr) return nullptr;
  return probe_find(*t, h, key);
}

void FlowStore::prefetch(const EpochDomain::Guard&,
                         std::int64_t key) const {
  const std::uint64_t h = util::mix64(static_cast<std::uint64_t>(key));
  const Shard& sh = shard_for(h);
  const Table* t = sh.table.load(std::memory_order_acquire);
  if (t == nullptr) return;
  const std::size_t base = (h >> shard_bits_) & t->mask;
  __builtin_prefetch(&t->ctrl[base], 0, 3);
  __builtin_prefetch(&t->slots[base], 0, 3);
}

void FlowStore::prefetch_entry(const EpochDomain::Guard&,
                               std::int64_t key) const {
  const std::uint64_t h = util::mix64(static_cast<std::uint64_t>(key));
  const Shard& sh = shard_for(h);
  const Table* t = sh.table.load(std::memory_order_acquire);
  if (t == nullptr) return;
  const std::uint8_t tag = tag_of(h);
  const std::size_t mask = t->mask;
  const std::size_t base = (h >> shard_bits_) & mask;
  // First probe group only: with the fill capped at 7/8 and tombstone
  // rehashing, nearly every present key resolves here. Prefetch every
  // tag-matching candidate; verifying the key would BE the miss this
  // call exists to overlap.
  for (std::size_t j = 0; j < kGroup; ++j) {
    const std::size_t i = (base + j) & mask;
    const std::uint8_t c = t->ctrl[i].load(std::memory_order_acquire);
    if (c == tag) {
      const Entry* e = t->slots[i].load(std::memory_order_acquire);
      // Write-intent: the acquire that follows stamps last_touch_ns,
      // so pull the line in exclusive state and skip the RFO upgrade.
      if (e != nullptr) __builtin_prefetch(e, 1, 3);
    } else if (c == kEmpty) {
      return;
    }
  }
}

void FlowStore::find_batch(const EpochDomain::Guard& guard,
                           const std::int64_t* keys, std::size_t n,
                           Entry** out) const {
  std::uint64_t hashes[kMaxFindBatch];
  const Table* tables[kMaxFindBatch];
  if (n > kMaxFindBatch) n = kMaxFindBatch;

  // Wave 1: one pass of independent prefetches — by the time the last
  // key's request is issued, the first key's lines are arriving.
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t h =
        util::mix64(static_cast<std::uint64_t>(keys[i]));
    hashes[i] = h;
    const Table* t = shard_for(h).table.load(std::memory_order_acquire);
    tables[i] = t;
    if (t == nullptr) continue;
    const std::size_t base = (h >> shard_bits_) & t->mask;
    __builtin_prefetch(&t->ctrl[base], 0, 3);
    __builtin_prefetch(&t->slots[base], 0, 3);
  }
  // Wave 2: probe the warm table lines; remember the first candidate
  // per key and start its entry line on its way. Tag collisions within
  // a group are rare enough that wave 3's fallback re-probe never
  // shows up in a profile.
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = nullptr;
    const Table* t = tables[i];
    if (t == nullptr) continue;
    const std::uint8_t tag = tag_of(hashes[i]);
    const std::size_t mask = t->mask;
    const std::size_t base = (hashes[i] >> shard_bits_) & mask;
    for (std::size_t j = 0; j < kGroup; ++j) {
      const std::size_t s = (base + j) & mask;
      const std::uint8_t c = t->ctrl[s].load(std::memory_order_acquire);
      if (c == tag) {
        Entry* e = t->slots[s].load(std::memory_order_acquire);
        if (e != nullptr) {
          __builtin_prefetch(e, 0, 3);
          out[i] = e;
          break;
        }
      } else if (c == kEmpty) {
        break;
      }
    }
  }
  // Wave 3: validate candidates against warm entry lines; fall back to
  // the full probe for tag collisions and overflow chains.
  for (std::size_t i = 0; i < n; ++i) {
    Entry* e = out[i];
    if (e != nullptr && e->key == keys[i]) continue;
    const Table* t = tables[i];
    out[i] = t == nullptr ? nullptr : probe_find(*t, hashes[i], keys[i]);
  }
  (void)guard;
}

void FlowStore::prefetch_payload(const EpochDomain::Guard& guard,
                                 std::int64_t key) const {
  const Entry* e = find(guard, key);
  if (e == nullptr) return;
  if (!e->block.scalars.empty()) {
    __builtin_prefetch(e->block.scalars.data(), 1, 3);
  }
  if (!e->block.arrays.empty()) {
    __builtin_prefetch(e->block.arrays.data(), 1, 3);
  }
}

FlowStore::Entry* FlowStore::acquire(const EpochDomain::Guard&,
                                     std::int64_t key, std::int64_t now_ns,
                                     InitFn init, void* ctx, bool* created) {
  if (created != nullptr) *created = false;
  const std::uint64_t h = util::mix64(static_cast<std::uint64_t>(key));
  Shard& sh = shard_for(h);
  Table* t = sh.table.load(std::memory_order_acquire);
  if (t != nullptr) {
    std::size_t probe_len = 0;
    Entry* e = probe_find(*t, h, key, &probe_len);
    if (e != nullptr) {
      e->last_touch_ns.store(now_ns, std::memory_order_relaxed);
      if (telemetry::sample_1_in(config_.probe_sample_every)) {
        probe_hist_.record(probe_len);
      }
      return e;
    }
  }
  // Probable miss: make room BEFORE taking our shard lock, so eviction
  // can lock sibling shards without ever holding two shard locks.
  if (config_.max_entries != 0) ensure_capacity(h & shard_mask_, now_ns);
  std::lock_guard<std::mutex> lock(sh.lock);
  t = sh.table.load(std::memory_order_relaxed);
  if (t != nullptr) {
    Entry* e = probe_find(*t, h, key);
    if (e != nullptr) {
      e->last_touch_ns.store(now_ns, std::memory_order_relaxed);
      return e;
    }
  }
  if (created != nullptr) *created = true;
  return insert_locked(sh, h, key, now_ns, init, ctx);
}

FlowStore::Entry* FlowStore::insert_locked(Shard& sh, std::uint64_t hash,
                                           std::int64_t key,
                                           std::int64_t now_ns, InitFn init,
                                           void* ctx) {
  Table* t = sh.table.load(std::memory_order_relaxed);
  if (t == nullptr) {
    // First entry in this shard: install the table and anchor the
    // wheel cursor at the current time so the first advance does not
    // walk an epoch-sized tick gap.
    t = new Table(config_.initial_capacity);
    sh.table.store(t, std::memory_order_release);
    sh.wheel->reanchor(now_ns);
  }
  if ((sh.size + sh.tombstones + 1) * 8 > t->capacity() * 7) {
    // Past 7/8 fill: grow when genuinely full, otherwise rehash in
    // place (same capacity) to flush tombstone litter.
    std::size_t new_capacity = t->capacity();
    if ((sh.size + 1) * 4 >= t->capacity() * 3) new_capacity *= 2;
    resize_locked(sh, new_capacity);
    t = sh.table.load(std::memory_order_relaxed);
  }

  const std::uint8_t tag = tag_of(hash);
  const std::size_t mask = t->mask;
  std::size_t base = (hash >> shard_bits_) & mask;
  std::size_t slot = mask + 1;  // sentinel: not found yet
  std::size_t probe_len = 0;
  for (std::size_t probed = 0; probed <= mask && slot > mask;) {
    for (std::size_t j = 0; j < kGroup && probed <= mask; ++j, ++probed) {
      const std::size_t i = (base + j) & mask;
      const std::uint8_t c = t->ctrl[i].load(std::memory_order_relaxed);
      if (c == kEmpty || c == kTombstone) {
        slot = i;
        probe_len = probed + 1;
        break;
      }
    }
    base = (base + kGroup) & mask;
  }
  assert(slot <= mask && "load factor keeps a free slot reachable");

  Entry* e = alloc_entry(sh);
  e->key = key;
  e->last_touch_ns.store(now_ns, std::memory_order_relaxed);
  init(ctx, e->block);
  if (t->ctrl[slot].load(std::memory_order_relaxed) == kTombstone) {
    --sh.tombstones;
  }
  // Publish order matters: slot pointer first, control byte last, so a
  // reader that sees the tag also sees the fully initialized entry.
  t->slots[slot].store(e, std::memory_order_release);
  t->ctrl[slot].store(tag, std::memory_order_release);
  ++sh.size;
  live_.fetch_add(1, std::memory_order_relaxed);
  created_.fetch_add(1, std::memory_order_relaxed);
  if (config_.sink.created != nullptr) {
    config_.sink.created->fetch_add(1, std::memory_order_relaxed);
  }
  probe_hist_.record(probe_len);

  const std::int64_t deadline =
      config_.idle_timeout_ns > 0 ? now_ns + config_.idle_timeout_ns : now_ns;
  sh.wheel->schedule(e->timer, deadline);
  return e;
}

void FlowStore::remove_locked(Shard& sh, Entry* e, RemoveKind kind) {
  const std::uint64_t h = util::mix64(static_cast<std::uint64_t>(e->key));
  Table* t = sh.table.load(std::memory_order_relaxed);
  const std::uint8_t tag = tag_of(h);
  const std::size_t mask = t->mask;
  std::size_t base = (h >> shard_bits_) & mask;
  for (std::size_t probed = 0; probed <= mask;) {
    for (std::size_t j = 0; j < kGroup && probed <= mask; ++j, ++probed) {
      const std::size_t i = (base + j) & mask;
      if (t->ctrl[i].load(std::memory_order_relaxed) == tag &&
          t->slots[i].load(std::memory_order_relaxed) == e) {
        t->slots[i].store(nullptr, std::memory_order_release);
        t->ctrl[i].store(kTombstone, std::memory_order_release);
        ++sh.tombstones;
        --sh.size;
        sh.wheel->cancel(e->timer);
        live_.fetch_sub(1, std::memory_order_relaxed);
        if (kind != RemoveKind::kErased) {
          const bool expired = kind == RemoveKind::kExpired;
          auto& counter = expired ? expired_ : evicted_;
          counter.fetch_add(1, std::memory_order_relaxed);
          auto* sink =
              expired ? config_.sink.expired : config_.sink.evicted;
          if (sink != nullptr) sink->fetch_add(1, std::memory_order_relaxed);
        }
        sh.retired.push_back({e, domain_.stamp_retire(), false});
        maybe_reclaim(sh, false);
        return;
      }
    }
    base = (base + kGroup) & mask;
  }
  assert(false && "remove_locked: entry not present in its shard");
}

void FlowStore::resize_locked(Shard& sh, std::size_t new_capacity) {
  Table* old = sh.table.load(std::memory_order_relaxed);
  Table* fresh = new Table(new_capacity);
  for (std::size_t i = 0; i <= old->mask; ++i) {
    if (old->ctrl[i].load(std::memory_order_relaxed) < 0x80u) continue;
    Entry* e = old->slots[i].load(std::memory_order_relaxed);
    const std::uint64_t h = util::mix64(static_cast<std::uint64_t>(e->key));
    const std::size_t mask = fresh->mask;
    std::size_t base = (h >> shard_bits_) & mask;
    for (;;) {
      bool placed = false;
      for (std::size_t j = 0; j < kGroup; ++j) {
        const std::size_t k = (base + j) & mask;
        if (fresh->ctrl[k].load(std::memory_order_relaxed) == kEmpty) {
          fresh->slots[k].store(e, std::memory_order_relaxed);
          fresh->ctrl[k].store(tag_of(h), std::memory_order_relaxed);
          placed = true;
          break;
        }
      }
      if (placed) break;
      base = (base + kGroup) & mask;
    }
  }
  // The release store publishes every slot written above; readers load
  // the table pointer with acquire.
  sh.table.store(fresh, std::memory_order_release);
  sh.tombstones = 0;
  resizes_.fetch_add(1, std::memory_order_relaxed);
  sh.retired.push_back({old, domain_.stamp_retire(), true});
  maybe_reclaim(sh, false);
}

void FlowStore::ensure_capacity(std::size_t preferred_shard,
                                std::int64_t now_ns) {
  while (live_.load(std::memory_order_acquire) >= config_.max_entries) {
    if (!evict_one(preferred_shard, now_ns)) break;
  }
}

bool FlowStore::evict_one(std::size_t preferred_shard, std::int64_t now_ns) {
  (void)now_ns;
  for (std::size_t k = 0; k < shards_count_; ++k) {
    Shard& sh = shards_[(preferred_shard + k) & shard_mask_];
    std::lock_guard<std::mutex> lock(sh.lock);
    if (sh.size == 0) continue;
    TimerNode* cohort[kEvictScan];
    const std::size_t n = sh.wheel->collect_oldest(cohort, kEvictScan);
    if (n == 0) continue;
    Entry* victim = entry_of(cohort[0]);
    std::int64_t victim_touch =
        victim->last_touch_ns.load(std::memory_order_relaxed);
    for (std::size_t i = 1; i < n; ++i) {
      Entry* e = entry_of(cohort[i]);
      const std::int64_t touch =
          e->last_touch_ns.load(std::memory_order_relaxed);
      if (touch < victim_touch) {
        victim = e;
        victim_touch = touch;
      }
    }
    remove_locked(sh, victim, RemoveKind::kEvicted);
    return true;
  }
  return false;
}

bool FlowStore::erase(std::int64_t key) {
  const std::uint64_t h = util::mix64(static_cast<std::uint64_t>(key));
  Shard& sh = shard_for(h);
  std::lock_guard<std::mutex> lock(sh.lock);
  Table* t = sh.table.load(std::memory_order_relaxed);
  if (t == nullptr) return false;
  Entry* e = probe_find(*t, h, key);
  if (e == nullptr) return false;
  remove_locked(sh, e, RemoveKind::kErased);
  return true;
}

void FlowStore::advance_stripe(std::size_t stripe, std::size_t stripes,
                               std::int64_t now_ns) {
  if (stripes == 0) stripes = 1;
  for (std::size_t i = stripe; i < shards_count_; i += stripes) {
    Shard& sh = shards_[i];
    std::lock_guard<std::mutex> lock(sh.lock);
    if (config_.idle_timeout_ns > 0 && sh.size > 0) {
      sh.wheel->advance(now_ns, [&](TimerNode* node) {
        Entry* e = entry_of(node);
        const std::int64_t deadline =
            e->last_touch_ns.load(std::memory_order_relaxed) +
            config_.idle_timeout_ns;
        if (deadline > now_ns) {
          // Touched since it was armed: lazily re-arm at the real
          // deadline instead of relocating the node on every access.
          sh.wheel->schedule(e->timer, deadline);
          return;
        }
        remove_locked(sh, e, RemoveKind::kExpired);
      });
    } else if (config_.idle_timeout_ns > 0) {
      sh.wheel->reanchor(now_ns);
    }
    maybe_reclaim(sh, !sh.retired.empty());
  }
}

FlowStore::Entry* FlowStore::alloc_entry(Shard& sh) {
  if (sh.free_head == nullptr) {
    auto slab = std::make_unique<std::byte[]>(sizeof(Entry) * kSlabEntries);
    Entry* entries = reinterpret_cast<Entry*>(slab.get());
    for (std::size_t i = 0; i < kSlabEntries; ++i) {
      Entry* e = new (&entries[i]) Entry();
      e->free_next = sh.free_head;
      sh.free_head = e;
    }
    sh.slabs.push_back(std::move(slab));
  }
  Entry* e = sh.free_head;
  sh.free_head = e->free_next;
  e->free_next = nullptr;
  return e;
}

void FlowStore::maybe_reclaim(Shard& sh, bool force) {
  if (!force && sh.retired.size() < kReclaimBatch) return;
  if (sh.retired.empty()) return;
  const std::uint64_t horizon = domain_.reclaim_horizon();
  std::size_t keep = 0;
  for (std::size_t i = 0; i < sh.retired.size(); ++i) {
    const Shard::Retired& r = sh.retired[i];
    if (r.epoch >= horizon) {
      sh.retired[keep++] = r;
      continue;
    }
    if (r.is_table) {
      delete static_cast<Table*>(r.ptr);
    } else {
      // Unreachable by every guard: recycle the slab slot. The block
      // keeps its vector capacity, so a later insert re-initializes
      // it without allocating.
      Entry* e = static_cast<Entry*>(r.ptr);
      e->free_next = sh.free_head;
      sh.free_head = e;
    }
  }
  sh.retired.resize(keep);
}

FlowStoreStats FlowStore::stats() const {
  FlowStoreStats s;
  s.live = live_.load(std::memory_order_relaxed);
  s.created = created_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.evicted = evicted_.load(std::memory_order_relaxed);
  s.resizes = resizes_.load(std::memory_order_relaxed);
  s.probe_len = probe_hist_.snapshot();
  return s;
}

}  // namespace eden::state
