#include "state/timer_wheel.h"

namespace eden::state {

TimerWheel::TimerWheel(std::int64_t tick_ns, std::int64_t start_ns)
    : tick_ns_(tick_ns > 0 ? tick_ns : 1), current_tick_(tick_of(start_ns)) {
  for (auto& level : slots_) {
    for (TimerNode& sentinel : level) {
      sentinel.prev = &sentinel;
      sentinel.next = &sentinel;
    }
  }
}

void TimerWheel::unlink(TimerNode& node) {
  node.prev->next = node.next;
  node.next->prev = node.prev;
  node.prev = nullptr;
  node.next = nullptr;
}

void TimerWheel::push_back(TimerNode& list, TimerNode& node) {
  node.prev = list.prev;
  node.next = &list;
  list.prev->next = &node;
  list.prev = &node;
}

void TimerWheel::schedule(TimerNode& node, std::int64_t deadline_ns) {
  if (node.scheduled()) {
    unlink(node);
    --scheduled_;
  }
  node.deadline_ns = deadline_ns;
  place(node, tick_of(deadline_ns));
  ++scheduled_;
}

void TimerWheel::cancel(TimerNode& node) {
  if (!node.scheduled()) return;
  unlink(node);
  --scheduled_;
}

void TimerWheel::place(TimerNode& node, std::int64_t deadline_tick) {
  // Never into the cursor's tick or the past: the current slot has
  // already fired (or is mid-fire), so a stale deadline waits one tick
  // and lets the lazy re-arm check sort it out.
  std::int64_t delta = deadline_tick - current_tick_;
  if (delta < 1) {
    delta = 1;
    deadline_tick = current_tick_ + 1;
  }
  // Past the horizon, clamp into the top level; the node cascades a
  // few laps early and re-arms from its real deadline each time.
  const std::int64_t horizon = std::int64_t{1} << (kSlotBits * kLevels);
  if (delta >= horizon) {
    deadline_tick = current_tick_ + horizon - 1;
    delta = horizon - 1;
  }
  int level = 0;
  while (delta >= (std::int64_t{1} << (kSlotBits * (level + 1)))) ++level;
  push_back(slots_[level][slot_index(level, deadline_tick)], node);
}

TimerNode* TimerWheel::detach_slot(int level, std::size_t slot) {
  TimerNode& sentinel = slots_[level][slot];
  if (sentinel.next == &sentinel) return nullptr;
  TimerNode* head = sentinel.next;
  sentinel.prev->next = nullptr;  // null-terminate the chain
  sentinel.prev = &sentinel;
  sentinel.next = &sentinel;
  return head;
}

void TimerWheel::cascade_due_levels() {
  for (int level = 1; level < kLevels; ++level) {
    const std::int64_t mask =
        (std::int64_t{1} << (kSlotBits * level)) - 1;
    if ((current_tick_ & mask) != 0) break;
    cascade(level, slot_index(level, current_tick_));
  }
}

void TimerWheel::cascade(int level, std::size_t slot) {
  TimerNode* head = detach_slot(level, slot);
  while (head != nullptr) {
    TimerNode* next = head->next;
    head->prev = nullptr;
    head->next = nullptr;
    place(*head, tick_of(head->deadline_ns));
    head = next;
  }
}

std::size_t TimerWheel::collect_oldest(TimerNode** out, std::size_t max) const {
  if (scheduled_ == 0 || max == 0) return 0;
  // Walk slots in (approximate) firing order: level 0 from the cursor
  // forward, then each higher level from its cursor position. The
  // first non-empty slot is the coarse oldest cohort.
  for (int level = 0; level < kLevels; ++level) {
    const std::size_t base = slot_index(level, current_tick_);
    for (std::size_t i = 1; i <= kSlots; ++i) {
      const std::size_t slot = (base + i) & (kSlots - 1);
      const TimerNode& sentinel = slots_[level][slot];
      if (sentinel.next == &sentinel) continue;
      std::size_t n = 0;
      for (TimerNode* node = sentinel.next; node != &sentinel && n < max;
           node = node->next) {
        out[n++] = node;
      }
      return n;
    }
  }
  return 0;
}

}  // namespace eden::state
