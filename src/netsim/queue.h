// Output queueing: eight 802.1q priority queues with strict-priority
// scheduling and per-queue byte caps (tail drop). This is the commodity
// switch feature set the paper assumes from the network (Section 3.5).
#pragma once

#include <array>
#include <cstdint>
#include <deque>

#include "netsim/packet.h"

namespace eden::netsim {

struct QueueConfig {
  // Per-priority-queue capacity in bytes. Chosen so that one port buffers
  // on the order of a few hundred KB, typical of shallow datacenter
  // switches.
  std::uint32_t per_queue_bytes = 128 * 1024;
};

struct QueueStats {
  std::uint64_t enqueued_packets = 0;
  std::uint64_t dropped_packets = 0;
  std::uint64_t dropped_bytes = 0;
  std::uint64_t dequeued_packets = 0;
  std::uint64_t dequeued_bytes = 0;
  std::array<std::uint64_t, kMaxPriorities> drops_per_priority{};
};

// Strict-priority queue set: higher priority value is served first.
class PriorityQueueSet {
 public:
  explicit PriorityQueueSet(QueueConfig config = {}) : config_(config) {}

  // Takes ownership; drops (frees) the packet when its queue is full.
  // Returns false on drop.
  bool enqueue(PacketPtr packet);

  // Highest-priority head packet, or null when idle.
  PacketPtr dequeue();

  bool empty() const { return total_packets_ == 0; }
  std::uint64_t total_bytes() const { return total_bytes_; }
  std::uint64_t queued_bytes(std::uint8_t priority) const {
    return bytes_[priority];
  }
  std::size_t total_packets() const { return total_packets_; }
  const QueueStats& stats() const { return stats_; }

 private:
  QueueConfig config_;
  std::array<std::deque<PacketPtr>, kMaxPriorities> queues_;
  std::array<std::uint64_t, kMaxPriorities> bytes_{};
  std::uint64_t total_bytes_ = 0;
  std::size_t total_packets_ = 0;
  QueueStats stats_;
};

}  // namespace eden::netsim
