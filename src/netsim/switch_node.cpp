#include "netsim/switch_node.h"

namespace eden::netsim {

namespace {

// 64-bit mix of the five-tuple; stable across runs so ECMP flow pinning
// is deterministic.
std::uint64_t five_tuple_hash(const Packet& p) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
    h ^= h >> 29;
  };
  mix(p.src);
  mix(p.dst);
  mix(p.src_port);
  mix(p.dst_port);
  mix(static_cast<std::uint64_t>(p.protocol));
  return h;
}

}  // namespace

void SwitchNode::receive(PacketPtr packet, int in_port) {
  (void)in_port;

  // Label-based source routing takes precedence (Section 3.5).
  if (packet->path_label >= 0) {
    const auto it = label_table_.find(packet->path_label);
    if (it != label_table_.end()) {
      ++stats_.forwarded;
      ++stats_.label_forwarded;
      if (!port(it->second).send(std::move(packet))) ++stats_.queue_drops;
      return;
    }
    // Unknown label: fall through to destination routing.
  }

  const auto route = dest_table_.find(packet->dst);
  if (route == dest_table_.end() || route->second.empty()) {
    ++stats_.no_route_drops;
    return;  // packet dropped
  }
  const int out_port = pick_port(*packet, route->second);
  ++stats_.forwarded;
  if (!port(out_port).send(std::move(packet))) ++stats_.queue_drops;
}

int SwitchNode::pick_port(const Packet& packet,
                          const std::vector<int>& ports) {
  if (ports.size() == 1) return ports[0];
  switch (ecmp_) {
    case EcmpMode::flow_hash:
      return ports[five_tuple_hash(packet) % ports.size()];
    case EcmpMode::per_packet_random:
      return ports[spray_counter_++ % ports.size()];
  }
  return ports[0];
}

}  // namespace eden::netsim
