#include "netsim/event_queue.h"

#include <utility>

namespace eden::netsim {

EventId Scheduler::at(SimTime when, std::function<void()> fn) {
  if (when < now_) when = now_;
  const EventId id = next_id_++;
  queue_.push(Event{when, id, std::move(fn)});
  pending_.insert(id);
  ++live_events_;
  return id;
}

void Scheduler::cancel(EventId id) {
  if (id == kInvalidEvent) return;
  if (pending_.erase(id) > 0) --live_events_;
}

bool Scheduler::pop_one() {
  while (!queue_.empty()) {
    // priority_queue::top is const; the closure must be moved out, so we
    // const_cast the function object (the element is removed right after).
    Event& top = const_cast<Event&>(queue_.top());
    const SimTime when = top.when;
    const EventId id = top.id;
    std::function<void()> fn = std::move(top.fn);
    queue_.pop();
    if (pending_.erase(id) == 0) continue;  // was cancelled
    --live_events_;
    now_ = when;
    ++dispatched_;
    fn();
    return true;
  }
  return false;
}

std::uint64_t Scheduler::run_until(SimTime until) {
  std::uint64_t n = 0;
  for (;;) {
    // Drop cancelled events from the head so the horizon check below
    // looks at a live event.
    while (!queue_.empty() && pending_.find(queue_.top().id) == pending_.end()) {
      queue_.pop();
    }
    if (queue_.empty() || queue_.top().when > until) break;
    if (pop_one()) ++n;
  }
  // Advance the clock to the horizon even if nothing fired at it.
  if (now_ < until) now_ = until;
  return n;
}

std::uint64_t Scheduler::run() {
  std::uint64_t n = 0;
  while (pop_one()) ++n;
  return n;
}

}  // namespace eden::netsim
