#include "netsim/routing.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <unordered_map>

namespace eden::netsim {

std::vector<Routing::Neighbor> Routing::neighbors(Node& node) const {
  std::vector<Neighbor> result;
  for (int i = 0; i < node.port_count(); ++i) {
    Port& port = node.port(i);
    if (port.peer() != nullptr) {
      result.push_back(Neighbor{port.peer(), i, port.rate_bps()});
    }
  }
  return result;
}

void Routing::install_all_paths(int max_hops) {
  for (HostNode* src : network_.hosts()) {
    for (HostNode* dst : network_.hosts()) {
      if (src == dst) continue;

      // Depth-first enumeration of simple paths src -> dst through
      // switches only (hosts cannot transit).
      std::vector<PathInfo>& out = matrix_[{src->id(), dst->id()}];
      struct StackFrame {
        Node* node;
        std::size_t next_neighbor;
      };
      std::vector<Node*> current{src};
      std::vector<std::uint64_t> bottleneck{
          std::numeric_limits<std::uint64_t>::max()};
      std::vector<StackFrame> stack{{src, 0}};

      while (!stack.empty()) {
        StackFrame& frame = stack.back();
        const auto nbrs = neighbors(*frame.node);
        if (frame.next_neighbor >= nbrs.size()) {
          stack.pop_back();
          current.pop_back();
          bottleneck.pop_back();
          continue;
        }
        const Neighbor nbr = nbrs[frame.next_neighbor++];
        if (nbr.node == dst) {
          PathInfo path;
          path.nodes = current;
          path.nodes.push_back(dst);
          path.bottleneck_bps = std::min(bottleneck.back(), nbr.rate_bps);
          out.push_back(std::move(path));
          continue;
        }
        // Only transit through switches, never other hosts.
        if (std::none_of(network_.switches().begin(),
                         network_.switches().end(),
                         [&](SwitchNode* s) { return s == nbr.node; })) {
          continue;
        }
        if (static_cast<int>(current.size()) >= max_hops) continue;
        if (std::find(current.begin(), current.end(), nbr.node) !=
            current.end()) {
          continue;  // simple paths only
        }
        current.push_back(nbr.node);
        bottleneck.push_back(std::min(bottleneck.back(), nbr.rate_bps));
        stack.push_back(StackFrame{nbr.node, 0});
      }

      // Deterministic ordering: shorter paths first, then by capacity.
      std::sort(out.begin(), out.end(),
                [](const PathInfo& a, const PathInfo& b) {
                  if (a.nodes.size() != b.nodes.size()) {
                    return a.nodes.size() < b.nodes.size();
                  }
                  return a.bottleneck_bps > b.bottleneck_bps;
                });

      // Assign labels and install them along each path.
      for (PathInfo& path : out) {
        path.label = next_label_++;
        for (std::size_t i = 1; i + 1 < path.nodes.size(); ++i) {
          auto* sw = static_cast<SwitchNode*>(path.nodes[i]);
          Node* next = path.nodes[i + 1];
          for (const Neighbor& nbr : neighbors(*sw)) {
            if (nbr.node == next) {
              sw->install_label(path.label, nbr.out_port);
              break;
            }
          }
        }
      }
    }
  }
}

void Routing::install_dest_routes() {
  for (HostNode* dst : network_.hosts()) {
    // BFS from the destination to get hop distances.
    std::unordered_map<Node*, int> dist;
    dist[dst] = 0;
    std::deque<Node*> frontier{dst};
    while (!frontier.empty()) {
      Node* node = frontier.front();
      frontier.pop_front();
      // Traffic cannot transit through other hosts.
      const bool is_transit = node == dst ||
                              std::any_of(network_.switches().begin(),
                                          network_.switches().end(),
                                          [&](SwitchNode* s) {
                                            return s == node;
                                          });
      if (!is_transit) continue;
      for (const Neighbor& nbr : neighbors(*node)) {
        if (!dist.contains(nbr.node)) {
          dist[nbr.node] = dist[node] + 1;
          frontier.push_back(nbr.node);
        }
      }
    }

    // Every switch forwards toward any neighbor strictly closer to dst.
    for (SwitchNode* sw : network_.switches()) {
      const auto it = dist.find(sw);
      if (it == dist.end()) continue;
      std::vector<int> ports;
      for (const Neighbor& nbr : neighbors(*sw)) {
        const auto nd = dist.find(nbr.node);
        if (nd != dist.end() && nd->second == it->second - 1) {
          ports.push_back(nbr.out_port);
        }
      }
      if (!ports.empty()) sw->install_route(dst->id(), std::move(ports));
    }
  }
}

const std::vector<PathInfo>& Routing::paths(HostId src, HostId dst) const {
  const auto it = matrix_.find({src, dst});
  return it == matrix_.end() ? empty_ : it->second;
}

}  // namespace eden::netsim
