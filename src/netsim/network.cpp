#include "netsim/network.h"

namespace eden::netsim {

HostNode& Network::add_host(const std::string& name) {
  if (by_name_.contains(name)) {
    throw std::invalid_argument("duplicate node name: " + name);
  }
  auto host = std::make_unique<HostNode>(name, next_id_++);
  HostNode& ref = *host;
  by_name_[name] = host.get();
  hosts_.push_back(host.get());
  nodes_.push_back(std::move(host));
  return ref;
}

SwitchNode& Network::add_switch(const std::string& name, EcmpMode ecmp) {
  if (by_name_.contains(name)) {
    throw std::invalid_argument("duplicate node name: " + name);
  }
  auto sw = std::make_unique<SwitchNode>(name, next_id_++, ecmp);
  SwitchNode& ref = *sw;
  by_name_[name] = sw.get();
  switches_.push_back(sw.get());
  nodes_.push_back(std::move(sw));
  return ref;
}

void Network::connect(Node& a, Node& b, std::uint64_t rate_bps,
                      SimTime prop_delay, QueueConfig queue_config) {
  const int pa = a.add_port(scheduler_, rate_bps, prop_delay, queue_config);
  const int pb = b.add_port(scheduler_, rate_bps, prop_delay, queue_config);
  a.port(pa).set_peer(&b, pb);
  b.port(pb).set_peer(&a, pa);
  edges_.push_back(Edge{&a, pa, &b, pb, rate_bps});
  edges_.push_back(Edge{&b, pb, &a, pa, rate_bps});
}

Node* Network::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

}  // namespace eden::netsim
