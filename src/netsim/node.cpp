#include "netsim/node.h"

namespace eden::netsim {

bool Port::send(PacketPtr packet) {
  if (!queue_.enqueue(std::move(packet))) return false;
  if (!busy_) start_transmission();
  return true;
}

void Port::start_transmission() {
  PacketPtr packet = queue_.dequeue();
  if (packet == nullptr) return;
  busy_ = true;
  const SimTime tx = transmit_time(packet->size_bytes, rate_bps_);
  ++tx_packets_;
  tx_bytes_ += packet->size_bytes;

  // When serialization completes, the packet departs onto the wire (its
  // arrival is a separate event after the propagation delay) and the
  // transmitter picks up the next queued packet.
  scheduler_.after(tx, [this, packet = std::move(packet)]() mutable {
    Node* peer = peer_;
    const int in_port = peer_in_port_;
    if (peer != nullptr) {
      scheduler_.after(prop_delay_,
                       [peer, in_port, packet = std::move(packet)]() mutable {
                         peer->receive(std::move(packet), in_port);
                       });
    }
    busy_ = false;
    start_transmission();
  });
}

}  // namespace eden::netsim
