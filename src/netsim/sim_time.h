// Simulated time. All of netsim runs on a virtual clock in integer
// nanoseconds — at 10 Gbps one 1500-byte packet serializes in exactly
// 1200 ns, so nanosecond resolution loses nothing at datacenter rates.
#pragma once

#include <cstdint>

namespace eden::netsim {

using SimTime = std::int64_t;  // nanoseconds since simulation start

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000;
inline constexpr SimTime kMillisecond = 1000 * 1000;
inline constexpr SimTime kSecond = 1000 * 1000 * 1000;

// Serialization delay of `bytes` at `rate_bps`, rounded up so a packet
// never takes zero time on a finite-rate link.
inline constexpr SimTime transmit_time(std::uint64_t bytes,
                                       std::uint64_t rate_bps) {
  if (rate_bps == 0) return 0;
  const std::uint64_t bits = bytes * 8;
  return static_cast<SimTime>((bits * 1000000000ULL + rate_bps - 1) /
                              rate_bps);
}

inline constexpr double to_seconds(SimTime t) {
  return static_cast<double>(t) / 1e9;
}
inline constexpr double to_micros(SimTime t) {
  return static_cast<double>(t) / 1e3;
}

}  // namespace eden::netsim
