// Discrete-event scheduler: the beating heart of the network simulator.
//
// Events are closures ordered by (time, insertion sequence); ties fire in
// scheduling order, which keeps runs deterministic. Cancellation is
// cooperative: cancel() marks the event and the dispatcher skips it.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "netsim/sim_time.h"

namespace eden::netsim {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

class Scheduler {
 public:
  SimTime now() const { return now_; }

  // Schedules `fn` at absolute time `when` (clamped to now). Returns an
  // id usable with cancel().
  EventId at(SimTime when, std::function<void()> fn);
  // Schedules `fn` `delay` nanoseconds from now.
  EventId after(SimTime delay, std::function<void()> fn) {
    return at(now_ + delay, std::move(fn));
  }

  // Marks an event so it will not fire. Safe to call with an id that
  // already fired or was already cancelled (both are no-ops).
  void cancel(EventId id);

  // Runs events until the queue empties or the virtual clock passes
  // `until` (inclusive). Returns the number of events dispatched.
  std::uint64_t run_until(SimTime until);
  // Runs until the queue is empty.
  std::uint64_t run();

  bool empty() const { return live_events_ == 0; }
  std::uint64_t dispatched() const { return dispatched_; }

 private:
  struct Event {
    SimTime when;
    EventId id;
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      if (when != other.when) return when > other.when;
      return id > other.id;  // FIFO among simultaneous events
    }
  };

  bool pop_one();

  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t dispatched_ = 0;
  std::uint64_t live_events_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  // Ids currently in the queue and not cancelled. Cancellation is lazy:
  // cancel() removes the id here; the dispatcher skips events whose id is
  // no longer pending.
  std::unordered_set<EventId> pending_;
};

}  // namespace eden::netsim
