#include "netsim/packet_pool.h"

#include <atomic>
#include <cassert>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <new>
#include <unordered_map>
#include <vector>

namespace eden::netsim {
namespace {

// Pool registry: release_slot and magazine flushes key pools by id
// (monotonic, never reused) instead of by pointer, so a release that
// outlives its PacketPool object still finds the right arena. A pool
// destroyed while slots are still out (live PacketPtrs, thread-local
// magazine caches) leaves its Impl here marked `dying`: the slabs stay
// mapped so those packets remain valid, and the last slot returned
// home deletes the Impl and frees them. All Impl access reached
// through the registry happens with reg.mu held, so that final delete
// cannot race another thread's flush. Function-local static:
// constructed before the first pool (the pool constructor registers
// itself) and therefore destroyed after the last function-local-static
// pool.
struct PoolRegistry {
  std::mutex mu;
  std::unordered_map<std::uint64_t, PacketPool::Impl*> live;
};

PoolRegistry& registry() {
  static PoolRegistry r;
  return r;
}

std::uint64_t next_pool_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

// Per-thread slot cache for one pool. Lives in a thread_local set; the
// destructor (thread exit) flushes surviving slots back through the
// registry.
struct PacketPool::Magazine {
  std::uint64_t pool_id = 0;
  std::size_t burst = 0;  // magazine_slots of the owning pool
  std::vector<void*> slots;
  std::uint64_t pending_acquired = 0;
  std::uint64_t pending_released = 0;

  ~Magazine();
};

// Slabs are over-aligned; pair the aligned operator new[] with its
// aligned delete.
struct SlabFree {
  void operator()(std::byte* p) const noexcept {
    ::operator delete[](p, std::align_val_t{PacketPool::kSlotAlign});
  }
};
using SlabPtr = std::unique_ptr<std::byte[], SlabFree>;

SlabPtr make_slab(std::size_t bytes) {
  return SlabPtr(static_cast<std::byte*>(
      ::operator new[](bytes, std::align_val_t{PacketPool::kSlotAlign})));
}

struct PacketPool::Impl {
  mutable std::mutex mu;
  PacketPoolConfig config;
  std::uint64_t id = 0;

  // Slabs own the memory; shared_free_ holds the exchangeable slots.
  std::vector<SlabPtr> slabs;
  std::vector<void*> shared_free;
  std::size_t slots_materialized = 0;

  // Folded stats (mu-protected)...
  std::uint64_t acquired_total = 0;
  std::uint64_t released_total = 0;
  std::uint64_t magazine_refills = 0;
  std::uint64_t magazine_flushes = 0;
  // ...and failure counters that must stay lock-free/noexcept.
  std::atomic<std::uint64_t> exhausted_total{0};
  std::atomic<std::uint64_t> heap_fallback_total{0};

  // Deferred reclamation: set by ~PacketPool when slots are still out.
  // A dying impl stops handing slots out but keeps its slabs mapped;
  // `outstanding` (mu-protected) counts the slots that must come home
  // before the impl — and the packet memory — may be freed.
  std::atomic<bool> dying{false};
  std::size_t outstanding = 0;

  // Materialize one more slab (up to capacity) into shared_free.
  // Returns false when the pool is at capacity.
  bool grow_locked() {
    if (slots_materialized >= config.capacity_slots) return false;
    std::size_t want = config.slab_slots;
    if (want > config.capacity_slots - slots_materialized) {
      want = config.capacity_slots - slots_materialized;
    }
    SlabPtr slab = make_slab(want * kSlotBytes);
    // Reserve up front so magazine flushes never reallocate under the
    // allocation gate.
    shared_free.reserve(slots_materialized + want);
    std::byte* base = slab.get();
    for (std::size_t i = 0; i < want; ++i) {
      shared_free.push_back(base + i * kSlotBytes);
    }
    slabs.push_back(std::move(slab));
    slots_materialized += want;
    return true;
  }

  // Move up to `burst` slots into the magazine; grows the arena on
  // demand. Returns the number transferred.
  std::size_t refill(Magazine& mag) {
    std::lock_guard<std::mutex> lock(mu);
    acquired_total += mag.pending_acquired;
    released_total += mag.pending_released;
    mag.pending_acquired = 0;
    mag.pending_released = 0;
    if (shared_free.empty() && !grow_locked()) return 0;
    std::size_t take = mag.burst;
    if (take > shared_free.size()) take = shared_free.size();
    for (std::size_t i = 0; i < take; ++i) {
      mag.slots.push_back(shared_free.back());
      shared_free.pop_back();
    }
    ++magazine_refills;
    return take;
  }

};

namespace {

// Hand `count` slots (or just their accounting — the pointers are
// implicit in the slabs) back to an impl found through the registry.
// reg.mu must be held. For a live impl the magazine's slots go back on
// the shared free list; for a dying impl the count is credited against
// `outstanding` and, when the last slot comes home, the impl — and
// with it every slab — is finally freed. Returns true if the impl was
// deleted (caller must also erase the registry entry).
bool return_slots_locked(PacketPool::Impl* impl, PacketPool::Magazine* mag,
                         std::size_t flush_burst) {
  bool dead = false;
  {
    std::lock_guard<std::mutex> lock(impl->mu);
    if (impl->dying.load(std::memory_order_relaxed)) {
      const std::size_t n = mag != nullptr ? mag->slots.size() : 1;
      impl->outstanding = impl->outstanding > n ? impl->outstanding - n : 0;
      if (mag != nullptr) {
        mag->slots.clear();
        mag->pending_acquired = 0;
        mag->pending_released = 0;
      }
      dead = impl->outstanding == 0;
    } else if (mag != nullptr) {
      impl->acquired_total += mag->pending_acquired;
      impl->released_total += mag->pending_released;
      mag->pending_acquired = 0;
      mag->pending_released = 0;
      for (std::size_t i = 0; i < flush_burst && !mag->slots.empty(); ++i) {
        impl->shared_free.push_back(mag->slots.back());
        mag->slots.pop_back();
      }
      ++impl->magazine_flushes;
    }
  }
  if (dead) delete impl;
  return dead;
}

}  // namespace

namespace {

// The thread's magazines, one per pool it has touched. Linear scan with
// a last-used cache: a thread touches one or two pools in practice.
struct MagazineSet {
  std::vector<std::unique_ptr<PacketPool::Magazine>> mags;
  PacketPool::Magazine* last = nullptr;

  PacketPool::Magazine* find(std::uint64_t pool_id) {
    if (last != nullptr && last->pool_id == pool_id) return last;
    for (auto& m : mags) {
      if (m->pool_id == pool_id) {
        last = m.get();
        return last;
      }
    }
    return nullptr;
  }

  // Creates a magazine for pool_id, or returns nullptr if the pool is
  // no longer live (release against a dying pool goes straight to the
  // outstanding-slot accounting instead of a fresh cache).
  PacketPool::Magazine* create(std::uint64_t pool_id) {
    std::size_t burst = 0;
    {
      auto& reg = registry();
      std::lock_guard<std::mutex> lock(reg.mu);
      auto it = reg.live.find(pool_id);
      if (it == reg.live.end()) return nullptr;
      if (it->second->dying.load(std::memory_order_relaxed)) return nullptr;
      burst = it->second->config.magazine_slots;
    }
    auto mag = std::make_unique<PacketPool::Magazine>();
    mag->pool_id = pool_id;
    mag->burst = burst;
    // 2*burst is the flush threshold; headroom so the threshold check
    // never observes a reallocation.
    mag->slots.reserve(2 * burst + 1);
    last = mag.get();
    mags.push_back(std::move(mag));
    return last;
  }
};

MagazineSet& thread_magazines() {
  thread_local MagazineSet set;
  return set;
}

}  // namespace

PacketPool::Magazine::~Magazine() {
  if (slots.empty() && pending_acquired == 0 && pending_released == 0) return;
  auto& reg = registry();
  std::lock_guard<std::mutex> reg_lock(reg.mu);
  auto it = reg.live.find(pool_id);
  if (it == reg.live.end()) return;  // fully reclaimed already
  if (return_slots_locked(it->second, this, slots.size())) {
    reg.live.erase(it);
  }
}

PacketPool::PacketPool(PacketPoolConfig config)
    : config_(config), id_(next_pool_id()) {
  if (config_.slab_slots == 0) config_.slab_slots = 1;
  if (config_.magazine_slots == 0) config_.magazine_slots = 1;
  if (config_.slab_slots > config_.capacity_slots) {
    config_.slab_slots = config_.capacity_slots;
  }
  impl_ = new Impl();
  impl_->config = config_;
  impl_->id = id_;
  auto& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.live.emplace(id_, impl_);
}

PacketPool::~PacketPool() {
  // Any slot still out (live PacketPtrs, thread-local magazine caches)
  // points into our slabs, so the slabs must survive the pool object:
  // mark the impl dying with the outstanding count and leave it in the
  // registry. The last slot returned deletes the impl and frees the
  // slabs; release paths see `dying` and credit `outstanding` instead
  // of recycling. Only when nothing is out can we reclaim immediately.
  auto& reg = registry();
  std::lock_guard<std::mutex> reg_lock(reg.mu);
  bool dead = false;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    const std::size_t out =
        impl_->slots_materialized - impl_->shared_free.size();
    if (out == 0) {
      dead = true;
    } else {
      impl_->dying.store(true, std::memory_order_relaxed);
      impl_->outstanding = out;
      impl_->shared_free.clear();
      impl_->shared_free.shrink_to_fit();
    }
  }
  if (dead) {
    reg.live.erase(id_);
    delete impl_;
  }
}

void* PacketPool::acquire_slot() {
  auto& set = thread_magazines();
  Magazine* mag = set.find(id_);
  if (mag == nullptr) mag = set.create(id_);
  if (mag == nullptr) return nullptr;  // pool already dead
  if (mag->slots.empty() && impl_->refill(*mag) == 0) {
    impl_->exhausted_total.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  void* slot = mag->slots.back();
  mag->slots.pop_back();
  ++mag->pending_acquired;
  return slot;
}

void PacketPool::release_slot(std::uint64_t pool_id, void* slot) noexcept {
  auto& set = thread_magazines();
  Magazine* mag = set.find(pool_id);
  if (mag == nullptr) {
    mag = set.create(pool_id);
    if (mag == nullptr) {
      // Dying (or fully reclaimed) pool: no cache — credit the slot
      // against the outstanding count directly.
      auto& reg = registry();
      std::lock_guard<std::mutex> lock(reg.mu);
      auto it = reg.live.find(pool_id);
      if (it != reg.live.end() &&
          return_slots_locked(it->second, nullptr, 0)) {
        reg.live.erase(it);
      }
      return;
    }
  }
  mag->slots.push_back(slot);
  ++mag->pending_released;
  if (mag->slots.size() > 2 * mag->burst) {
    auto& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    auto it = reg.live.find(pool_id);
    if (it == reg.live.end()) {
      // Fully reclaimed pool: these cached pointers are dangling by
      // now; forget them.
      mag->slots.clear();
      mag->pending_acquired = 0;
      mag->pending_released = 0;
      return;
    }
    if (return_slots_locked(it->second, mag, mag->burst)) {
      reg.live.erase(it);
    }
  }
}

namespace {

// Allocator handed to std::allocate_shared: one pool slot per packet,
// holding the control block and the Packet together. allocate() runs
// only while the pool is alive (packet creation); deallocate() may run
// on any thread at any later time and goes through the id-keyed static
// release path.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  PacketPool* pool;
  std::uint64_t pool_id;

  PoolAllocator(PacketPool* p, std::uint64_t id) : pool(p), pool_id(id) {}
  template <typename U>
  PoolAllocator(const PoolAllocator<U>& other)
      : pool(other.pool), pool_id(other.pool_id) {}

  T* allocate(std::size_t n) {
    static_assert(sizeof(T) <= PacketPool::kSlotBytes,
                  "pool slot too small for shared_ptr node; bump kSlotBytes");
    static_assert(alignof(T) <= PacketPool::kSlotAlign,
                  "pool slot under-aligned for shared_ptr node");
    if (n != 1) throw std::bad_alloc();
    void* slot = pool->acquire_slot();
    if (slot == nullptr) throw std::bad_alloc();
    return static_cast<T*>(slot);
  }

  void deallocate(T* p, std::size_t) noexcept {
    PacketPool::release_slot(pool_id, p);
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>& other) const {
    return pool_id == other.pool_id;
  }
};

}  // namespace

PacketPtr PacketPool::make() {
  try {
    return std::allocate_shared<Packet>(PoolAllocator<Packet>(this, id_));
  } catch (const std::bad_alloc&) {
    impl_->heap_fallback_total.fetch_add(1, std::memory_order_relaxed);
    return std::make_shared<Packet>();
  }
}

PacketPtr PacketPool::try_make() {
  try {
    return std::allocate_shared<Packet>(PoolAllocator<Packet>(this, id_));
  } catch (const std::bad_alloc&) {
    return nullptr;
  }
}

PacketPtr PacketPool::clone(const Packet& p) {
  try {
    return std::allocate_shared<Packet>(PoolAllocator<Packet>(this, id_), p);
  } catch (const std::bad_alloc&) {
    impl_->heap_fallback_total.fetch_add(1, std::memory_order_relaxed);
    return std::make_shared<Packet>(p);
  }
}

PacketPoolStats PacketPool::stats() const {
  PacketPoolStats s;
  std::lock_guard<std::mutex> lock(impl_->mu);
  s.capacity_slots = impl_->config.capacity_slots;
  s.slots_materialized = impl_->slots_materialized;
  s.acquired_total = impl_->acquired_total;
  s.released_total = impl_->released_total;
  s.in_use = impl_->acquired_total >= impl_->released_total
                 ? impl_->acquired_total - impl_->released_total
                 : 0;
  s.exhausted_total = impl_->exhausted_total.load(std::memory_order_relaxed);
  s.heap_fallback_total =
      impl_->heap_fallback_total.load(std::memory_order_relaxed);
  s.magazine_refills = impl_->magazine_refills;
  s.magazine_flushes = impl_->magazine_flushes;
  return s;
}

PacketPool& default_packet_pool() {
  static PacketPool pool;
  return pool;
}

PacketPtr make_packet() { return default_packet_pool().make(); }

PacketPtr try_make_packet() { return default_packet_pool().try_make(); }

PacketPtr clone_packet(const Packet& p) { return default_packet_pool().clone(p); }

}  // namespace eden::netsim
