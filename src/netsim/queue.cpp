#include "netsim/queue.h"

namespace eden::netsim {

bool PriorityQueueSet::enqueue(PacketPtr packet) {
  const std::uint8_t prio =
      packet->priority < kMaxPriorities ? packet->priority
                                        : kMaxPriorities - 1;
  if (bytes_[prio] + packet->size_bytes > config_.per_queue_bytes) {
    ++stats_.dropped_packets;
    stats_.dropped_bytes += packet->size_bytes;
    ++stats_.drops_per_priority[prio];
    return false;  // packet freed by unique_ptr going out of scope
  }
  bytes_[prio] += packet->size_bytes;
  total_bytes_ += packet->size_bytes;
  ++total_packets_;
  ++stats_.enqueued_packets;
  queues_[prio].push_back(std::move(packet));
  return true;
}

PacketPtr PriorityQueueSet::dequeue() {
  for (int prio = kMaxPriorities - 1; prio >= 0; --prio) {
    auto& q = queues_[static_cast<std::size_t>(prio)];
    if (q.empty()) continue;
    PacketPtr packet = std::move(q.front());
    q.pop_front();
    bytes_[static_cast<std::size_t>(prio)] -= packet->size_bytes;
    total_bytes_ -= packet->size_bytes;
    --total_packets_;
    ++stats_.dequeued_packets;
    stats_.dequeued_bytes += packet->size_bytes;
    return packet;
  }
  return nullptr;
}

}  // namespace eden::netsim
