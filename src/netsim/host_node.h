// End-host node: one uplink port plus a delivery callback. The Eden host
// stack (src/hoststack) sits on top of this: it owns the enclave and the
// NIC-side rate limiters and uses HostNode purely as the wire attachment.
#pragma once

#include <functional>

#include "netsim/node.h"

namespace eden::netsim {

class HostNode : public Node {
 public:
  using DeliverFn = std::function<void(PacketPtr)>;

  HostNode(std::string name, HostId id) : Node(std::move(name), id) {}

  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  void receive(PacketPtr packet, int in_port) override {
    (void)in_port;
    ++rx_packets_;
    rx_bytes_ += packet->size_bytes;
    if (deliver_) deliver_(std::move(packet));
  }

  // Transmits on the host's uplink (port 0 by convention).
  bool transmit(PacketPtr packet) { return port(0).send(std::move(packet)); }

  std::uint64_t rx_packets() const { return rx_packets_; }
  std::uint64_t rx_bytes() const { return rx_bytes_; }

 private:
  DeliverFn deliver_;
  std::uint64_t rx_packets_ = 0;
  std::uint64_t rx_bytes_ = 0;
};

}  // namespace eden::netsim
