// The packet pool arena: fixed slabs of pool slots with per-thread
// magazine caches, so steady-state packet allocation and free never
// touch the global heap.
//
// Eden's enclave sits on every packet's path (Section 3.4); at multi-
// core NIC rates a per-packet std::make_shared — one heap round-trip
// plus allocator lock traffic per packet — is the first thing that has
// to go (the same conclusion DPDK-style stacks reached with mbuf
// pools). The design here keeps the *type* unchanged: `PacketPtr` is
// still std::shared_ptr<Packet>, built by std::allocate_shared over a
// pool allocator, so the control block and the Packet live together in
// one pooled slot and every existing call site keeps compiling. The
// completion path needs no special handling either — whichever thread
// drops the last reference runs the pooled deallocate, which returns
// the slot to that thread's magazine.
//
// Ownership model:
//  * the pool owns slabs (64-byte-aligned arrays of kSlotBytes slots),
//    materialized lazily up to capacity_slots;
//  * a mutex-protected shared free list exchanges slots with per-thread
//    magazines in bursts of magazine_slots (refill on empty, flush of
//    one burst when a magazine exceeds twice that), so the steady-state
//    acquire/release path is a thread-local vector push/pop;
//  * release is keyed by a unique pool id, never by the pool pointer: a
//    magazine flushing after its pool died looks the id up in the live-
//    pool registry and, finding nothing, drops the slot pointers (the
//    memory died with the pool's slabs).
//
// Exhaustion is explicit, never blocking: try_make() returns nullptr
// (counted in exhausted_total) so data-path producers can drop-and-
// count; make() falls back to the heap (counted separately) so
// simulator-side callers keep their infallible contract.
#pragma once

#include <cstddef>
#include <cstdint>

#include "netsim/packet.h"

namespace eden::netsim {

struct PacketPoolConfig {
  // Hard cap on slots ever materialized. Slabs grow lazily toward it.
  std::size_t capacity_slots = 65536;
  // Slots per slab (one allocation per growth step).
  std::size_t slab_slots = 4096;
  // Burst size of the magazine <-> shared free-list exchange.
  std::size_t magazine_slots = 64;
};

struct PacketPoolStats {
  std::uint64_t capacity_slots = 0;
  std::uint64_t slots_materialized = 0;
  // Acquire/release totals folded from the magazines at exchange
  // points, so in_use is exact whenever the magazines are quiescent and
  // a close approximation under traffic.
  std::uint64_t acquired_total = 0;
  std::uint64_t released_total = 0;
  std::uint64_t in_use = 0;
  std::uint64_t exhausted_total = 0;      // try-path failures (arena dry)
  std::uint64_t heap_fallback_total = 0;  // make() heap fallbacks
  std::uint64_t magazine_refills = 0;
  std::uint64_t magazine_flushes = 0;
};

class PacketPool {
 public:
  // One slot holds the shared_ptr control block plus the Packet
  // (statically asserted at the allocate call); 384 = 6 cache lines,
  // so slots never share a line.
  static constexpr std::size_t kSlotBytes = 384;
  static constexpr std::size_t kSlotAlign = 64;

  explicit PacketPool(PacketPoolConfig config = {});
  ~PacketPool();
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  // Pooled packet; falls back to a plain heap make_shared when the
  // arena is dry (counted in heap_fallback_total), so it never fails.
  PacketPtr make();
  // Pooled packet or nullptr when the arena is dry (counted in
  // exhausted_total). Data-path producers use this to drop-and-count
  // instead of silently growing the heap.
  PacketPtr try_make();
  // Pooled deep copy.
  PacketPtr clone(const Packet& p);

  PacketPoolStats stats() const;
  const PacketPoolConfig& config() const { return config_; }

  // --- Slot plumbing (used by the allocator; not a user API) ------------
  void* acquire_slot();  // nullptr when dry
  static void release_slot(std::uint64_t pool_id, void* slot) noexcept;
  std::uint64_t id() const { return id_; }

  // Defined in packet_pool.cpp; public so the thread-local magazine set
  // can name them, but opaque to everyone else.
  struct Magazine;
  struct Impl;

 private:
  Impl* impl_;
  PacketPoolConfig config_;
  std::uint64_t id_;
};

// The process-wide pool behind make_packet()/clone_packet().
PacketPool& default_packet_pool();

}  // namespace eden::netsim
