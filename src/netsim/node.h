// Nodes and ports.
//
// A Port models one direction of a link attached to a node: a strict-
// priority output queue, a serializing transmitter (one packet at a time
// at the line rate) and a propagation delay to the peer. Bidirectional
// links are two ports, one on each node.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "netsim/event_queue.h"
#include "netsim/packet.h"
#include "netsim/queue.h"

namespace eden::netsim {

class Node;

class Port {
 public:
  Port(Scheduler& scheduler, std::uint64_t rate_bps, SimTime prop_delay,
       QueueConfig queue_config)
      : scheduler_(scheduler),
        rate_bps_(rate_bps),
        prop_delay_(prop_delay),
        queue_(queue_config) {}

  Port(const Port&) = delete;
  Port& operator=(const Port&) = delete;

  void set_peer(Node* peer, int peer_in_port) {
    peer_ = peer;
    peer_in_port_ = peer_in_port;
  }

  // Queues the packet for transmission; drops it if the priority queue
  // is full. Returns false on drop.
  bool send(PacketPtr packet);

  std::uint64_t rate_bps() const { return rate_bps_; }
  SimTime prop_delay() const { return prop_delay_; }
  Node* peer() const { return peer_; }
  const QueueStats& queue_stats() const { return queue_.stats(); }
  std::uint64_t queued_bytes() const { return queue_.total_bytes(); }
  std::uint64_t tx_bytes() const { return tx_bytes_; }
  std::uint64_t tx_packets() const { return tx_packets_; }

 private:
  void start_transmission();

  Scheduler& scheduler_;
  std::uint64_t rate_bps_;
  SimTime prop_delay_;
  PriorityQueueSet queue_;
  bool busy_ = false;
  Node* peer_ = nullptr;
  int peer_in_port_ = -1;
  std::uint64_t tx_bytes_ = 0;
  std::uint64_t tx_packets_ = 0;
};

class Node {
 public:
  Node(std::string name, HostId id) : name_(std::move(name)), id_(id) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // Called when a packet fully arrives at this node on `in_port`.
  virtual void receive(PacketPtr packet, int in_port) = 0;

  int add_port(Scheduler& scheduler, std::uint64_t rate_bps,
               SimTime prop_delay, QueueConfig queue_config) {
    ports_.push_back(std::make_unique<Port>(scheduler, rate_bps, prop_delay,
                                            queue_config));
    return static_cast<int>(ports_.size()) - 1;
  }

  Port& port(int index) { return *ports_[static_cast<std::size_t>(index)]; }
  const Port& port(int index) const {
    return *ports_[static_cast<std::size_t>(index)];
  }
  int port_count() const { return static_cast<int>(ports_.size()); }

  const std::string& name() const { return name_; }
  HostId id() const { return id_; }

 private:
  std::string name_;
  HostId id_;
  std::vector<std::unique_ptr<Port>> ports_;
};

}  // namespace eden::netsim
