// Path computation and route installation.
//
// Models the network support Eden assumes (Section 3.5): the controller
// computes paths with global topology visibility, assigns each a label
// (VLAN/MPLS as in SPAIN) and installs label-forwarding entries in the
// switches; end hosts then source-route by tagging packets with a label.
// Destination-based shortest-path ECMP tables are installed as the
// fallback for unlabeled traffic.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "netsim/network.h"

namespace eden::netsim {

struct PathInfo {
  std::int32_t label = -1;
  std::vector<Node*> nodes;  // src host, switches..., dst host
  std::uint64_t bottleneck_bps = 0;

  int hop_count() const { return static_cast<int>(nodes.size()) - 1; }
};

class Routing {
 public:
  explicit Routing(Network& network) : network_(network) {}

  // Enumerates all simple paths between every pair of hosts (bounded by
  // `max_hops`), assigns a unique label to each and installs the label
  // tables in the switches along the way.
  void install_all_paths(int max_hops = 8);

  // Installs shortest-path destination tables (hop-count metric) with
  // all equal-cost ports, enabling classic ECMP at the switches.
  void install_dest_routes();

  // Paths from src to dst; empty if install_all_paths was not run or no
  // path exists.
  const std::vector<PathInfo>& paths(HostId src, HostId dst) const;

 private:
  struct Neighbor {
    Node* node;
    int out_port;          // port on the *from* node
    std::uint64_t rate_bps;
  };
  std::vector<Neighbor> neighbors(Node& node) const;

  Network& network_;
  std::int32_t next_label_ = 1;
  std::map<std::pair<HostId, HostId>, std::vector<PathInfo>> matrix_;
  std::vector<PathInfo> empty_;
};

}  // namespace eden::netsim
