// The simulated network packet.
//
// Eden's central idea is that packets carry application-assigned class
// and metadata information down the host stack (Section 3.3), so the
// packet model bakes both in: `classes` holds interned class ids assigned
// by stages, and `meta` holds the per-message metadata the enclave's
// action functions consume (message id, type, size, tenant, ...).
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "netsim/sim_time.h"

namespace eden::netsim {

using HostId = std::uint32_t;
using FlowId = std::uint64_t;

inline constexpr std::uint32_t kMaxPriorities = 8;  // 802.1q PCP values
inline constexpr std::uint32_t kMtuBytes = 1500;
inline constexpr std::uint32_t kHeaderBytes = 54;  // Eth+802.1q+IP+TCP
inline constexpr std::uint32_t kMssBytes = kMtuBytes - 40;  // 1460

enum class Protocol : std::uint8_t { udp = 0, tcp = 1, storage = 2 };

// TCP flag bits (only the ones the simulator uses).
inline constexpr std::uint8_t kTcpSyn = 0x1;
inline constexpr std::uint8_t kTcpAck = 0x2;
inline constexpr std::uint8_t kTcpFin = 0x4;

// Metadata attached by stages and carried with the packet through the
// stack (Table 2 of the paper). Fixed-size by design: this models the
// bounded per-packet metadata budget of a real stack.
struct PacketMeta {
  std::int64_t msg_id = 0;     // unique message identifier
  std::int64_t msg_type = 0;   // stage-specific (e.g. GET/PUT, READ/WRITE)
  std::int64_t msg_size = 0;   // total message size in bytes, if known
  std::int64_t tenant = 0;     // tenant / VM owning the traffic
  std::int64_t key_hash = 0;   // e.g. memcached key hash
  std::int64_t flow_size = 0;  // app-provided flow size (SFF), 0 if unknown
  std::int64_t app_priority = 1;  // app-pinned priority; 1 = unset
  std::int64_t trace_id = 0;   // lifecycle span trace id; 0 = untraced
};

// Classes assigned by stages: small fixed vector of interned class ids.
class ClassList {
 public:
  static constexpr std::size_t kCapacity = 4;

  bool add(std::uint32_t class_id) {
    if (count_ >= kCapacity) return false;
    ids_[count_++] = class_id;
    return true;
  }
  void clear() { count_ = 0; }
  std::size_t size() const { return count_; }
  std::uint32_t operator[](std::size_t i) const { return ids_[i]; }
  bool contains(std::uint32_t class_id) const {
    for (std::size_t i = 0; i < count_; ++i) {
      if (ids_[i] == class_id) return true;
    }
    return false;
  }

 private:
  std::array<std::uint32_t, kCapacity> ids_{};
  std::size_t count_ = 0;
};

struct Packet {
  // Addressing (the "five-tuple").
  HostId src = 0;
  HostId dst = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  Protocol protocol = Protocol::udp;
  FlowId flow_id = 0;

  // Sizes. size_bytes is the on-wire size (headers included).
  std::uint32_t size_bytes = 0;
  std::uint32_t payload_bytes = 0;

  // Transport (TCP-like).
  std::uint64_t seq = 0;  // first payload byte
  std::uint64_t ack = 0;  // cumulative ack
  std::uint8_t tcp_flags = 0;

  // Network controls written by the Eden enclave.
  std::uint8_t priority = 0;    // 0..7; higher is served first
  std::int32_t path_label = -1; // VLAN/MPLS label; -1 = destination routing
  bool drop_mark = false;       // enclave asked for the packet to drop
  std::int32_t rl_queue = -1;   // NIC rate-limiter queue; -1 = bypass
  std::uint32_t charge_bytes = 0;  // rate-limiter charge; 0 = size_bytes

  // Eden class and metadata annotations.
  ClassList classes;
  PacketMeta meta;

  // Bookkeeping for experiments.
  SimTime sent_at = 0;
  std::uint64_t debug_id = 0;
};

// shared_ptr rather than unique_ptr: packets are captured by scheduler
// closures (std::function requires copyable callables). Ownership is
// still handed off linearly through the network.
using PacketPtr = std::shared_ptr<Packet>;

// Defined in packet_pool.cpp: packets come from the process-wide packet
// pool arena (control block and Packet share one pooled slot), so
// steady-state alloc/free never touches the global heap. make_packet
// falls back to the heap if the arena is dry; try_make_packet returns
// nullptr instead, for data-path producers that drop-and-count.
PacketPtr make_packet();
PacketPtr try_make_packet();

// Deep copy (ClassList and PacketMeta are value types, so default copy
// semantics suffice; the helper exists for call-site clarity).
PacketPtr clone_packet(const Packet& p);

}  // namespace eden::netsim
