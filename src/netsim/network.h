// Network container: owns the scheduler, the nodes and the wiring.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "netsim/event_queue.h"
#include "netsim/host_node.h"
#include "netsim/switch_node.h"

namespace eden::netsim {

// One direction of a link, for topology introspection.
struct Edge {
  Node* from = nullptr;
  int from_port = -1;
  Node* to = nullptr;
  int to_port = -1;
  std::uint64_t rate_bps = 0;
};

class Network {
 public:
  Scheduler& scheduler() { return scheduler_; }
  SimTime now() const { return scheduler_.now(); }

  HostNode& add_host(const std::string& name);
  SwitchNode& add_switch(const std::string& name,
                         EcmpMode ecmp = EcmpMode::flow_hash);

  // Creates a bidirectional link: one port on each node, both at
  // `rate_bps` with the given propagation delay and queue config.
  void connect(Node& a, Node& b, std::uint64_t rate_bps, SimTime prop_delay,
               QueueConfig queue_config = {});

  Node* find(const std::string& name) const;
  Node& node(HostId id) const { return *nodes_.at(id); }
  const std::vector<Edge>& edges() const { return edges_; }
  const std::vector<HostNode*>& hosts() const { return hosts_; }
  const std::vector<SwitchNode*>& switches() const { return switches_; }

 private:
  HostId next_id_ = 0;
  Scheduler scheduler_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unordered_map<std::string, Node*> by_name_;
  std::vector<Edge> edges_;
  std::vector<HostNode*> hosts_;
  std::vector<SwitchNode*> switches_;
};

}  // namespace eden::netsim
