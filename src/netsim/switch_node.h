// Commodity switch model.
//
// Eden requires only two things from switches (Section 3.5): 802.1q
// priority queueing (provided by Port/PriorityQueueSet) and label-based
// forwarding for source routing (VLAN/MPLS as in SPAIN). SwitchNode
// implements a label table plus conventional destination-based tables
// with ECMP hashing as the fallback for unlabeled traffic.
#pragma once

#include <unordered_map>
#include <vector>

#include "netsim/node.h"

namespace eden::netsim {

enum class EcmpMode : std::uint8_t {
  flow_hash,          // hash of the five-tuple (standard ECMP)
  per_packet_random,  // random spraying (used by reordering experiments)
};

struct SwitchStats {
  std::uint64_t forwarded = 0;
  std::uint64_t label_forwarded = 0;
  std::uint64_t no_route_drops = 0;
  std::uint64_t queue_drops = 0;
};

class SwitchNode : public Node {
 public:
  SwitchNode(std::string name, HostId id, EcmpMode ecmp = EcmpMode::flow_hash)
      : Node(std::move(name), id), ecmp_(ecmp) {}

  void receive(PacketPtr packet, int in_port) override;

  // Label forwarding: packets carrying `label` exit through `out_port`.
  void install_label(std::int32_t label, int out_port) {
    label_table_[label] = out_port;
  }
  void remove_label(std::int32_t label) { label_table_.erase(label); }

  // Destination routes: the set of equal-cost output ports toward `dst`.
  void install_route(HostId dst, std::vector<int> out_ports) {
    dest_table_[dst] = std::move(out_ports);
  }

  void set_ecmp_mode(EcmpMode mode) { ecmp_ = mode; }
  const SwitchStats& stats() const { return stats_; }
  std::size_t label_table_size() const { return label_table_.size(); }

 private:
  int pick_port(const Packet& packet, const std::vector<int>& ports);

  EcmpMode ecmp_;
  std::unordered_map<std::int32_t, int> label_table_;
  std::unordered_map<HostId, std::vector<int>> dest_table_;
  SwitchStats stats_;
  std::uint64_t spray_counter_ = 0;
};

}  // namespace eden::netsim
