// Little-endian byte stream writer/reader shared by the bytecode
// serializer and the controller wire protocol.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace eden::util {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
    }
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out_.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
    }
  }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  void bytes(std::span<const std::uint8_t> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    out_.insert(out_.end(), data.begin(), data.end());
  }

  std::vector<std::uint8_t> take() { return std::move(out_); }
  std::size_t size() const { return out_.size(); }

 private:
  std::vector<std::uint8_t> out_;
};

// Thrown on truncated or malformed streams.
class ByteStreamError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> bytes) : bytes_(bytes) {}

  std::uint8_t u8() {
    need(1);
    return bytes_[pos_++];
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(bytes_[pos_++]) << (8 * i);
    }
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(bytes_[pos_++]) << (8 * i);
    }
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  std::vector<std::uint8_t> bytes() {
    const std::uint32_t n = u32();
    need(n);
    std::vector<std::uint8_t> out(bytes_.begin() + static_cast<long>(pos_),
                                  bytes_.begin() + static_cast<long>(pos_ + n));
    pos_ += n;
    return out;
  }
  bool exhausted() const { return pos_ == bytes_.size(); }
  // Bytes left to read. Decoders use it to sanity-check element counts
  // before reserving: a count that implies more payload than the frame
  // holds is malformed, not a reason to allocate gigabytes.
  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  void need(std::size_t n) {
    if (pos_ + n > bytes_.size()) {
      throw ByteStreamError("truncated byte stream");
    }
  }
  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace eden::util
