#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace eden::util {

double log2_bucket_quantile(std::span<const std::uint64_t> counts, double q) {
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t k = 0; k < counts.size(); ++k) {
    if (counts[k] == 0) continue;
    const double next = cum + static_cast<double>(counts[k]);
    if (next >= target) {
      if (k == 0) return 0.0;
      const double lower = std::ldexp(1.0, static_cast<int>(k) - 1);
      const double upper = std::ldexp(1.0, static_cast<int>(k));
      const double frac = (target - cum) / static_cast<double>(counts[k]);
      return lower + frac * (upper - lower);
    }
    cum = next;
  }
  // Unreachable: the cumulative total always reaches target.
  return std::ldexp(1.0, static_cast<int>(counts.size()));
}

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Summary::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::ci95() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void Percentiles::ensure_sorted() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double Percentiles::quantile(double q) const {
  if (xs_.empty()) return 0.0;
  if (q <= 0.0) {
    ensure_sorted();
    return xs_.front();
  }
  if (q >= 1.0) {
    ensure_sorted();
    return xs_.back();
  }
  ensure_sorted();
  const double pos = q * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= xs_.size()) return xs_.back();
  return xs_[lo] * (1.0 - frac) + xs_[lo + 1] * frac;
}

double Percentiles::mean() const {
  if (xs_.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs_) sum += x;
  return sum / static_cast<double>(xs_.size());
}

}  // namespace eden::util
