#include "util/table.h"

#include <algorithm>
#include <cstdio>

namespace eden::util {

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  if (rows_.empty()) return {};
  std::size_t cols = 0;
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<std::size_t> width(cols, 0);
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string{};
      // Left-align the first column (labels), right-align numbers.
      if (c == 0) {
        out += cell;
        out.append(width[c] - cell.size(), ' ');
      } else {
        out.append(width[c] - cell.size(), ' ');
        out += cell;
      }
      out += (c + 1 < cols) ? " | " : "";
    }
    out += '\n';
  };
  emit_row(rows_.front());
  for (std::size_t c = 0; c < cols; ++c) {
    out.append(width[c], '-');
    out += (c + 1 < cols) ? "-+-" : "";
  }
  out += '\n';
  for (std::size_t i = 1; i < rows_.size(); ++i) emit_row(rows_[i]);
  return out;
}

std::string fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace eden::util
