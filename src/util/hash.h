// Shared integer hashing.
//
// Message keys are frequently sequential counters (stage metadata ids),
// so both the dataplane's RSS steering and the flow-state store whiten
// them with the splitmix64 finalizer before taking modulo / masking.
// Keeping the two on the SAME mix means a given message key always maps
// to one dataplane worker AND one FlowStore shard, so a shard's slot
// memory stays hot in exactly one core's cache.
#pragma once

#include <cstdint>

namespace eden::util {

// splitmix64 finalizer (Steele, Lea, Flood; public-domain constants).
// Bijective on 64-bit, avalanches low-entropy inputs.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

}  // namespace eden::util
