// Summary statistics helpers used by the experiment harnesses.
//
// The paper reports means with 95% confidence intervals and 95th
// percentiles (Figures 9-12); Summary and Percentiles provide exactly
// those quantities.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace eden::util {

// Quantile estimate from log2-bucketed counts (telemetry histograms):
// counts[0] holds the value 0, counts[k] holds values in
// [2^(k-1), 2^k). Linearly interpolates inside the winning bucket, so
// the estimate is exact to within one bucket width. q is clamped to
// [0, 1]; returns 0 for an all-zero count vector.
double log2_bucket_quantile(std::span<const std::uint64_t> counts, double q);

// Online mean/variance accumulator (Welford). Suitable for streaming
// per-packet or per-flow observations without storing them.
class Summary {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double variance() const;  // Sample variance (n-1 denominator).
  double stddev() const;
  // Half-width of the 95% confidence interval of the mean, using the
  // normal approximation (the paper runs >= 10 repetitions per point).
  double ci95() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Stores all observations to answer arbitrary quantile queries.
// Used for the 95th-percentile rows in Figures 9 and 12.
class Percentiles {
 public:
  void add(double x) {
    xs_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { xs_.reserve(n); }

  std::size_t count() const { return xs_.size(); }
  // Quantile in [0,1] with linear interpolation; q=0.5 is the median.
  double quantile(double q) const;
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }
  double mean() const;

  const std::vector<double>& values() const { return xs_; }
  void clear() { xs_.clear(); }

 private:
  // Sorted lazily on query; mutable so quantile() can stay const.
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

}  // namespace eden::util
