#include "util/rng.h"

#include <cmath>

namespace eden::util {

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  double u = uniform();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

std::size_t Rng::weighted_choice(std::span<const double> weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;  // Floating-point slack: fall back to last.
}

}  // namespace eden::util
