// Software prefetch hint for the batch loops: the data plane knows the
// next k packets of a batch before it touches them, so their cache
// misses can overlap the current packet's work (the standard DPDK burst
// idiom). A hint only — correctness never depends on it, and it
// compiles to nothing where the builtin is unavailable.
#pragma once

namespace eden::util {

inline void prefetch_read(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

inline void prefetch_write(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/1, /*locality=*/3);
#else
  (void)p;
#endif
}

// How far ahead the batch loops look. Far enough to cover an L2 miss
// under a per-packet action, near enough to stay inside a 64-packet
// batch.
inline constexpr int kPrefetchAhead = 4;

}  // namespace eden::util
