// Deterministic random number generation for simulations and workloads.
//
// All stochastic components in Eden's simulator draw from an explicitly
// seeded Rng so experiments are reproducible run-to-run; nothing in the
// library uses global random state.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>

namespace eden::util {

// SplitMix64/xoshiro256** generator. Small, fast and statistically strong
// enough for workload generation; not for cryptographic use.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 to spread a small seed over the full state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) {
    assert(n > 0);
    // Lemire's nearly-divisionless bounded generation (rejection-free for
    // most draws); bias is negligible for simulation purposes.
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next_u64()) * n;
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Exponentially distributed double with the given mean.
  double exponential(double mean);

  // Bernoulli trial with probability p of returning true.
  bool chance(double p) { return uniform() < p; }

  // Weighted choice: returns an index in [0, weights.size()) with
  // probability proportional to weights[i]. Weights must be non-negative
  // and sum to a positive value.
  std::size_t weighted_choice(std::span<const double> weights);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace eden::util
