// Minimal fixed-width text table printer for the figure/table harnesses.
//
// All bench binaries print the same rows/series the paper reports; this
// keeps their formatting uniform.
#pragma once

#include <string>
#include <vector>

namespace eden::util {

class TextTable {
 public:
  // The first added row is treated as the header.
  void add_row(std::vector<std::string> cells);

  // Renders with column widths fitted to content, e.g.:
  //   scheme     | FCT avg (us) | FCT p95 (us)
  //   -----------+--------------+-------------
  //   baseline   |        363.0 |       1600.0
  std::string render() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with the given number of decimals.
std::string fmt(double v, int decimals = 1);

}  // namespace eden::util
