// Figure 12: CPU overhead of Eden's components, measured on the real
// code (wall-clock, not simulated time).
//
// The paper decomposes the per-packet cost of running the SFF policy
// into three components on top of the vanilla stack:
//   API         — passing class/metadata information down the stack
//                 (stage classification + per-packet stamping);
//   enclave     — match-action lookup, state marshalling, message state;
//   interpreter — executing the action function as bytecode rather than
//                 native code.
// We measure each layer's per-packet nanoseconds over many batches and
// report average and 95th percentile, plus the overhead relative to the
// vanilla baseline, and the Section 5.4 footprint numbers (operand
// stack / heap bytes used by the program).
#pragma once

#include <cstdint>
#include <string>

#include "core/enclave.h"

namespace eden::experiments {

struct LayerCost {
  double avg_ns = 0.0;
  double p95_ns = 0.0;
};

struct Fig12Config {
  std::uint64_t packets = 200000;   // measured packets per layer
  std::uint64_t batch = 256;        // packets per timing sample
  std::uint64_t warmup_packets = 20000;
  bool use_pias = false;            // measure PIAS instead of SFF
  // Enclave telemetry knobs. Note: fig12 measures per-packet cost, so
  // enabling histograms perturbs the enclave/interpreter layers by the
  // (sampled) instrumentation cost — that cost is itself a Table-1
  // acceptance number, so the default stays off here.
  core::TelemetryConfig telemetry;
};

struct Fig12Result {
  LayerCost vanilla;      // packet construction + queueing, no Eden
  LayerCost api;          // vanilla + classification/metadata
  LayerCost enclave;      // api + match-action with a native no-op
  LayerCost interpreter;  // api + match-action with bytecode execution

  // Overheads relative to vanilla (e.g. 0.07 = 7%), paper-style.
  double api_overhead_avg = 0.0, api_overhead_p95 = 0.0;
  double enclave_overhead_avg = 0.0, enclave_overhead_p95 = 0.0;
  double interpreter_overhead_avg = 0.0, interpreter_overhead_p95 = 0.0;

  // Section 5.4 footprint of the measured action function.
  std::uint64_t operand_stack_bytes = 0;
  std::uint64_t locals_bytes = 0;
  std::uint64_t bytecode_instructions = 0;

  std::string telemetry_json;  // set when config.telemetry.enabled
};

Fig12Result run_fig12(const Fig12Config& config);

}  // namespace eden::experiments
