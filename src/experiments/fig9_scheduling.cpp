#include "experiments/fig9_scheduling.h"

#include <unordered_map>

#include "apps/workload.h"
#include "experiments/testbed.h"
#include "functions/scheduling.h"

namespace eden::experiments {

std::string to_string(SchedulingScheme scheme) {
  switch (scheme) {
    case SchedulingScheme::baseline: return "baseline";
    case SchedulingScheme::pias: return "PIAS";
    case SchedulingScheme::sff: return "SFF";
  }
  return "?";
}

std::string to_string(SchedulingVariant variant) {
  switch (variant) {
    case SchedulingVariant::native: return "native";
    case SchedulingVariant::eden: return "EDEN";
    case SchedulingVariant::eden_ignore_output: return "EDEN(no-op)";
  }
  return "?";
}

namespace {

constexpr std::uint16_t kResponsePort = 8000;
constexpr std::uint16_t kBackgroundPort = 8001;
constexpr std::uint64_t kGbps = 1000ULL * 1000 * 1000;

struct PendingFlow {
  netsim::SimTime start;
  std::uint64_t size;
};

// Installs the scheme's action function on a sender's enclave.
core::ActionId install_scheme(core::Enclave& enclave,
                              const Fig9Config& config) {
  const bool native = config.variant == SchedulingVariant::native;
  const functions::PiasFunction pias;
  const functions::SffFunction sff;
  const functions::NetworkFunction& fn =
      config.scheme == SchedulingScheme::sff
          ? static_cast<const functions::NetworkFunction&>(sff)
          : pias;  // baseline(eden) runs PIAS with its output ignored
  const core::ActionId action = fn.install(enclave, native);
  const std::int64_t limits[] = {config.small_limit,
                                 config.intermediate_limit};
  const std::int64_t priorities[] = {7, 5};
  functions::push_priority_thresholds(enclave, action, limits, priorities);
  const core::TableId table = enclave.create_table("sched");
  enclave.add_rule(table, core::ClassPattern("*"), action);
  return action;
}

}  // namespace

Fig9Result run_fig9(const Fig9Config& config) {
  hoststack::HostStackConfig stack_config;
  if (config.variant == SchedulingVariant::eden_ignore_output) {
    // The paper's Baseline(EDEN): classification and interpretation run,
    // but the output is discarded before transmission.
    stack_config.post_enclave = [](netsim::Packet& p) { p.priority = 0; };
  }

  Testbed bed(stack_config);
  auto& client = bed.add_host("client");
  auto& worker = bed.add_host("worker");
  std::vector<netsim::HostNode*> bg_hosts;
  for (int i = 0; i < config.background_sources; ++i) {
    bg_hosts.push_back(&bed.add_host("bg" + std::to_string(i)));
  }
  auto& sw = bed.add_switch("tor");

  const netsim::SimTime delay = 2 * netsim::kMicrosecond;
  netsim::QueueConfig qc;
  qc.per_queue_bytes = config.queue_bytes;
  bed.connect(client, sw, 10 * kGbps, delay, qc);
  bed.connect(worker, sw, 10 * kGbps, delay, qc);
  for (auto* bg : bg_hosts) bed.connect(*bg, sw, 10 * kGbps, delay, qc);
  bed.routing().install_dest_routes();

  core::EnclaveConfig ec;
  ec.rng_seed = config.rng_seed;
  ec.telemetry = config.telemetry;
  bed.finalize(ec);

  TestHost& client_host = *bed.host_by_name("client");
  TestHost& worker_host = *bed.host_by_name("worker");

  const bool scheduling_active =
      config.scheme != SchedulingScheme::baseline ||
      config.variant == SchedulingVariant::eden_ignore_output;
  std::vector<core::ActionId> sender_actions;
  if (scheduling_active) {
    sender_actions.push_back(
        install_scheme(*worker_host.enclave, config));
    for (auto* bg : bg_hosts) {
      sender_actions.push_back(
          install_scheme(*bed.host_by_name(bg->name())->enclave, config));
    }
  }

  // --- Measurement plumbing -------------------------------------------

  Fig9Result result;
  std::unordered_map<netsim::FlowId, PendingFlow> pending;
  const netsim::SimTime measure_from = config.warmup;
  std::uint64_t bg_delivered = 0;
  std::uint64_t bg_delivered_at_warmup = 0;

  client_host.stack->listen(
      kResponsePort,
      [&](transport::TcpReceiver& receiver, const hoststack::FlowInfo& info) {
        receiver.expect(static_cast<std::uint64_t>(info.meta.msg_size));
        const netsim::FlowId fid = info.flow_id;
        receiver.on_complete = [&, fid] {
          const auto it = pending.find(fid);
          if (it == pending.end()) return;
          const PendingFlow flow = it->second;
          pending.erase(it);
          client_host.stack->close_flow(fid);
          if (flow.start < measure_from) return;  // warmup flow
          const double fct_us =
              netsim::to_micros(bed.network().now() - flow.start);
          if (flow.size < static_cast<std::uint64_t>(config.small_limit)) {
            result.small_fct_us.add(fct_us);
          } else if (flow.size < static_cast<std::uint64_t>(
                                     config.intermediate_limit)) {
            result.intermediate_fct_us.add(fct_us);
          }
          ++result.completed_flows;
        };
      });

  client_host.stack->listen(
      kBackgroundPort,
      [&](transport::TcpReceiver& receiver, const hoststack::FlowInfo&) {
        receiver.on_deliver = [&bg_delivered, last = std::uint64_t{0}](
                                  std::uint64_t contiguous) mutable {
          bg_delivered += contiguous - last;
          last = contiguous;
        };
      });

  // --- Workload ----------------------------------------------------------

  util::Rng rng(config.rng_seed);
  const auto dist = config.workload == WorkloadKind::web_search
                        ? apps::FlowSizeDistribution::web_search()
                        : apps::FlowSizeDistribution::data_mining();
  const apps::PoissonArrivals arrivals(config.load, 10 * kGbps, dist.mean());
  std::int64_t next_msg_id = 1;

  // The worker is an Eden-compliant stage (Section 3.3): message
  // attributes go through classify(), which produces the classes and
  // metadata stamped on the flow's packets — and, with span tracing on,
  // starts the lifecycle trace at its first hop. The meta values are
  // identical to what the harness used to stamp by hand.
  core::Stage fig9_stage("fig9", {"kind"}, {"msg_id", "msg_size", "flow_size"},
                         bed.registry());
  bed.controller().register_stage(fig9_stage);
  const core::MetaFieldMask fig9_mask = core::meta_bit(core::MetaField::msg_id) |
                                        core::meta_bit(core::MetaField::msg_size) |
                                        core::meta_bit(core::MetaField::flow_size);
  fig9_stage.create_rule("flows", {core::FieldPattern::exact("response")},
                         "response", fig9_mask);
  fig9_stage.create_rule("flows", {core::FieldPattern::exact("background")},
                         "background", fig9_mask);

  // Worker request-response flows at Poisson arrivals.
  std::function<void()> schedule_next = [&] {
    const netsim::SimTime gap = arrivals.next_gap(rng);
    bed.network().scheduler().after(gap, [&] {
      const std::uint64_t size = dist.sample(rng);
      netsim::PacketMeta available;
      available.msg_id = next_msg_id++;
      available.msg_size = static_cast<std::int64_t>(size);
      available.flow_size = static_cast<std::int64_t>(size);  // SFF app info
      const core::Classification cls =
          fig9_stage.classify({"response"}, available);
      transport::TcpSender& sender = worker_host.stack->open_flow(
          client.id(), kResponsePort, cls.meta, cls.classes);
      pending.emplace(sender.flow_id(),
                      PendingFlow{bed.network().now(), size});
      const netsim::FlowId fid = sender.flow_id();
      sender.on_complete = [&, fid] { worker_host.stack->close_flow(fid); };
      sender.start(size);
      schedule_next();
    });
  };
  schedule_next();

  // Background bulk flows: restart as they finish so the link stays
  // saturated.
  constexpr std::uint64_t kBgFlowBytes = 50ULL * 1024 * 1024;
  std::function<void(TestHost&)> start_bg = [&](TestHost& src) {
    netsim::PacketMeta available;
    available.msg_id = next_msg_id++;
    available.msg_size = static_cast<std::int64_t>(kBgFlowBytes);
    available.flow_size = static_cast<std::int64_t>(kBgFlowBytes);
    const core::Classification cls =
        fig9_stage.classify({"background"}, available);
    transport::TcpSender& sender =
        src.stack->open_flow(client.id(), kBackgroundPort, cls.meta,
                             cls.classes);
    const netsim::FlowId fid = sender.flow_id();
    sender.on_complete = [&, fid, &src2 = src] {
      src2.stack->close_flow(fid);
      start_bg(src2);
    };
    sender.start(kBgFlowBytes);
  };
  for (auto* bg : bg_hosts) start_bg(*bed.host_by_name(bg->name()));

  // --- Run -------------------------------------------------------------------

  bed.run_for(config.warmup);
  bg_delivered_at_warmup = bg_delivered;
  bed.run_for(config.duration);

  result.background_mbps =
      static_cast<double>(bg_delivered - bg_delivered_at_warmup) * 8.0 /
      netsim::to_seconds(config.duration) / 1e6;
  if (scheduling_active) {
    result.interpreter_errors =
        worker_host.enclave->action_stats(sender_actions[0]).errors;
  }
  if (config.telemetry.enabled) {
    result.telemetry_json =
        telemetry::to_json(bed.controller().collect_telemetry());
  }
  return result;
}

}  // namespace eden::experiments
