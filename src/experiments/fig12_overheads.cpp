#include "experiments/fig12_overheads.h"

#include <chrono>
#include <cstring>

#include "apps/memcached_stage.h"
#include "core/enclave.h"
#include "functions/scheduling.h"
#include "lang/interpreter.h"
#include "util/stats.h"

namespace eden::experiments {

namespace {

using Clock = std::chrono::steady_clock;

// Stand-in for the per-packet work of the vanilla stack. We cannot run
// the paper's Windows kernel stack, so we emulate the dominant per-
// packet costs of a software TCP send path: segment the payload
// (user -> stack copy), compute the Internet checksum, stamp headers
// and hand off through the driver queue (stack -> NIC copy). Everything
// Eden adds is measured on top of this baseline.
struct VanillaPath {
  alignas(64) unsigned char user_buf[netsim::kMssBytes];
  alignas(64) unsigned char stack_buf[netsim::kMssBytes];
  alignas(64) unsigned char nic_buf[netsim::kMssBytes];
  std::uint64_t seq = 0;
  std::uint64_t sink = 0;

  VanillaPath() {
    for (std::size_t i = 0; i < sizeof user_buf; ++i) {
      user_buf[i] = static_cast<unsigned char>(i * 31 + 7);
    }
  }

  static std::uint16_t internet_checksum(const unsigned char* data,
                                         std::size_t len) {
    std::uint32_t sum = 0;
    for (std::size_t i = 0; i + 1 < len; i += 2) {
      sum += static_cast<std::uint32_t>(data[i]) << 8 |
             static_cast<std::uint32_t>(data[i + 1]);
    }
    while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
    return static_cast<std::uint16_t>(~sum);
  }

  inline void prepare(netsim::Packet& p) {
    // user -> stack segment copy + checksum (the kernel's copy+csum).
    std::memcpy(stack_buf, user_buf, sizeof stack_buf);
    sink += internet_checksum(stack_buf, sizeof stack_buf);

    p.src = 1;
    p.dst = 2;
    p.src_port = 10000;
    p.dst_port = 8000;
    p.protocol = netsim::Protocol::tcp;
    p.flow_id = 42;
    p.seq = seq;
    seq += netsim::kMssBytes;
    p.payload_bytes = netsim::kMssBytes;
    p.size_bytes = netsim::kMssBytes + netsim::kHeaderBytes;
    p.priority = 0;
    p.path_label = -1;
    p.rl_queue = -1;
    p.drop_mark = false;
    p.charge_bytes = 0;
  }

  inline void consume(netsim::Packet& p) {
    // stack -> driver DMA-staging copy plus header fold, so the compiler
    // cannot elide the work.
    std::memcpy(nic_buf, stack_buf, sizeof nic_buf);
    sink += nic_buf[1] + p.size_bytes + p.priority +
            static_cast<std::uint64_t>(p.seq);
  }
};

LayerCost summarize(util::Percentiles& samples) {
  LayerCost cost;
  cost.avg_ns = samples.mean();
  cost.p95_ns = samples.p95();
  return cost;
}

}  // namespace

Fig12Result run_fig12(const Fig12Config& config) {
  Fig12Result result;

  core::ClassRegistry registry;
  apps::MemcachedStage stage(registry);
  stage.create_rule("r1", {core::FieldPattern::exact("GET"),
                           core::FieldPattern::any()},
                    "GET");
  stage.create_rule("r1", {core::FieldPattern::exact("PUT"),
                           core::FieldPattern::any()},
                    "PUT");
  const core::MessageAttrs attrs = apps::MemcachedStage::get_attrs("key42");

  // Two enclaves: one with the native no-op twin (isolates match-action
  // + marshalling cost), one with the bytecode program (adds pure
  // interpretation).
  core::EnclaveConfig enclave_config;
  enclave_config.telemetry = config.telemetry;
  core::Enclave native_enclave("fig12.native", registry, enclave_config);
  core::Enclave eden_enclave("fig12.eden", registry, enclave_config);

  const functions::PiasFunction pias;
  const functions::SffFunction sff;
  const functions::NetworkFunction& fn =
      config.use_pias ? static_cast<const functions::NetworkFunction&>(pias)
                      : sff;

  const core::ActionId native_action = fn.install(native_enclave, true);
  const core::ActionId eden_action = fn.install(eden_enclave, false);
  const std::int64_t limits[] = {10 * 1024, 1024 * 1024};
  const std::int64_t prios[] = {7, 5};
  functions::push_priority_thresholds(native_enclave, native_action, limits,
                                      prios);
  functions::push_priority_thresholds(eden_enclave, eden_action, limits,
                                      prios);
  for (core::Enclave* enclave : {&native_enclave, &eden_enclave}) {
    const core::TableId table = enclave->create_table("sched");
    enclave->add_rule(table, core::ClassPattern("*"),
                      enclave == &native_enclave ? native_action
                                                 : eden_action);
  }

  // Classification happens per message; packets of the message carry the
  // result. We re-classify every kPacketsPerMessage packets.
  constexpr std::uint64_t kPacketsPerMessage = 16;

  enum class Layer { vanilla, api, enclave, interpreter };
  auto measure = [&](Layer layer) {
    VanillaPath path;
    util::Percentiles samples;
    netsim::PacketMeta available;
    available.msg_size = 64 * 1024;
    available.flow_size = 64 * 1024;
    core::Classification cls;
    netsim::Packet packet;

    const std::uint64_t total = config.warmup_packets + config.packets;
    std::uint64_t in_batch = 0;
    Clock::time_point batch_start{};
    for (std::uint64_t i = 0; i < total; ++i) {
      const bool measuring = i >= config.warmup_packets;
      if (measuring && in_batch == 0) batch_start = Clock::now();

      path.prepare(packet);
      if (layer != Layer::vanilla) {
        // The Eden API: per-message classification, per-packet stamping.
        if (i % kPacketsPerMessage == 0) {
          cls = stage.classify(attrs, available);
        }
        packet.classes = cls.classes;
        packet.meta = cls.meta;
        packet.meta.flow_size = available.flow_size;
      }
      if (layer == Layer::enclave) {
        native_enclave.process(packet);
      } else if (layer == Layer::interpreter) {
        eden_enclave.process(packet);
      }
      path.consume(packet);

      if (measuring && ++in_batch == config.batch) {
        const auto elapsed = Clock::now() - batch_start;
        samples.add(static_cast<double>(
                        std::chrono::duration_cast<std::chrono::nanoseconds>(
                            elapsed)
                            .count()) /
                    static_cast<double>(config.batch));
        in_batch = 0;
      }
    }
    return summarize(samples);
  };

  result.vanilla = measure(Layer::vanilla);
  result.api = measure(Layer::api);
  result.enclave = measure(Layer::enclave);
  result.interpreter = measure(Layer::interpreter);

  auto overhead = [](double with, double without) {
    return without > 0.0 ? (with - without) / without : 0.0;
  };
  result.api_overhead_avg = overhead(result.api.avg_ns, result.vanilla.avg_ns);
  result.api_overhead_p95 = overhead(result.api.p95_ns, result.vanilla.p95_ns);
  result.enclave_overhead_avg =
      overhead(result.enclave.avg_ns, result.vanilla.avg_ns);
  result.enclave_overhead_p95 =
      overhead(result.enclave.p95_ns, result.vanilla.p95_ns);
  result.interpreter_overhead_avg =
      overhead(result.interpreter.avg_ns, result.vanilla.avg_ns);
  result.interpreter_overhead_p95 =
      overhead(result.interpreter.p95_ns, result.vanilla.p95_ns);

  // Section 5.4 footprint: execute the program once against scratch
  // state and read the high-water marks.
  {
    const lang::CompiledProgram program = fn.compile();
    const lang::StateSchema schema =
        core::make_enclave_schema(fn.global_fields());
    lang::StateBlock pkt =
        lang::StateBlock::from_schema(schema, lang::Scope::packet);
    lang::StateBlock msg =
        lang::StateBlock::from_schema(schema, lang::Scope::message);
    lang::StateBlock glb =
        lang::StateBlock::from_schema(schema, lang::Scope::global);
    glb.arrays[0].stride = 2;
    glb.arrays[0].data = {10 * 1024, 7, 1024 * 1024, 5};
    lang::Interpreter interp;
    const lang::ExecResult r = interp.execute(program, &pkt, &msg, &glb);
    result.operand_stack_bytes = r.max_stack * 8ULL;
    result.locals_bytes = r.max_locals * 8ULL;
    result.bytecode_instructions = program.code.size();
  }
  if (config.telemetry.enabled) {
    // No controller here: the two standalone enclaves aggregate by hand.
    result.telemetry_json = telemetry::to_json(telemetry::aggregate(
        {native_enclave.telemetry_snapshot(), eden_enclave.telemetry_snapshot()}));
  }
  return result;
}

}  // namespace eden::experiments
