// Case study 2 (Figure 10): per-packet ECMP vs WCMP over the asymmetric
// topology of Figure 1, with the path choice made by an action function
// running in the sender's (NIC) enclave.
//
// Topology: H1 and H2 attached at 20 Gbps (the testbed's dual-port
// 10GbE NICs), two disjoint switch paths between them of 10 Gbps and
// 1 Gbps. The controller enumerates the paths, installs labels and
// pushes weighted path tables: equal weights model ECMP; capacity-
// proportional weights (10:1) model WCMP. Per-packet spraying across
// paths of different depth reorders TCP segments, so throughput lands
// below the 11 Gbps min-cut — the effect the paper reports.
#pragma once

#include <cstdint>
#include <string>

#include "core/enclave.h"
#include "netsim/sim_time.h"

namespace eden::experiments {

enum class LoadBalanceScheme { ecmp, wcmp };
enum class DataPlaneVariant { native, eden };

struct Fig10Config {
  LoadBalanceScheme scheme = LoadBalanceScheme::wcmp;
  DataPlaneVariant variant = DataPlaneVariant::eden;
  bool message_level = false;  // ablation: message-level WCMP (no reorder)
  int num_flows = 4;           // long-running TCP flows
  netsim::SimTime duration = netsim::kSecond;
  netsim::SimTime warmup = 100 * netsim::kMillisecond;
  std::uint64_t rng_seed = 1;
  // Per-packet enclave processing latency, modelling a slower NIC-
  // resident interpreter (ablation; 0 = instantaneous).
  netsim::SimTime enclave_delay = 0;
  core::TelemetryConfig telemetry;
};

struct Fig10Result {
  double throughput_mbps = 0.0;     // aggregate goodput at the receiver
  std::uint64_t fast_retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t ooo_segments = 0;   // receiver out-of-order arrivals
  std::uint64_t interpreted_packets = 0;  // enclave action executions
  std::string telemetry_json;  // set when config.telemetry.enabled
};

Fig10Result run_fig10(const Fig10Config& config);

std::string to_string(LoadBalanceScheme scheme);
std::string to_string(DataPlaneVariant variant);

}  // namespace eden::experiments
