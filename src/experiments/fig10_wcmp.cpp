#include "experiments/fig10_wcmp.h"

#include "experiments/testbed.h"
#include "functions/wcmp.h"

namespace eden::experiments {

std::string to_string(LoadBalanceScheme scheme) {
  return scheme == LoadBalanceScheme::ecmp ? "ECMP" : "WCMP";
}
std::string to_string(DataPlaneVariant variant) {
  return variant == DataPlaneVariant::native ? "native" : "EDEN";
}

Fig10Result run_fig10(const Fig10Config& config) {
  constexpr std::uint64_t kGbps = 1000ULL * 1000 * 1000;

  hoststack::HostStackConfig stack_config;
  stack_config.enclave_delay = config.enclave_delay;
  Testbed bed(stack_config);
  auto& h1 = bed.add_host("h1");
  auto& h2 = bed.add_host("h2");
  auto& a = bed.add_switch("a");   // H1-side switch
  auto& b = bed.add_switch("b");   // fast path
  auto& c = bed.add_switch("c");   // slow path
  auto& d = bed.add_switch("d");   // H2-side switch

  const netsim::SimTime delay = 2 * netsim::kMicrosecond;
  netsim::QueueConfig deep;  // host/core links
  deep.per_queue_bytes = 512 * 1024;
  bed.connect(h1, a, 20 * kGbps, delay, deep);
  bed.connect(a, b, 10 * kGbps, delay, deep);
  bed.connect(b, d, 10 * kGbps, delay, deep);
  bed.connect(a, c, 1 * kGbps, delay, deep);
  bed.connect(c, d, 1 * kGbps, delay, deep);
  bed.connect(d, h2, 20 * kGbps, delay, deep);

  bed.routing().install_all_paths();
  bed.routing().install_dest_routes();

  core::EnclaveConfig ec;
  ec.rng_seed = config.rng_seed;
  ec.telemetry = config.telemetry;
  bed.finalize(ec);
  TestHost& sender_host = *bed.host_by_name("h1");

  // Install the load-balancing function on the sender's enclave (the
  // programmable-NIC enclave of the paper's testbed).
  const functions::WcmpFunction wcmp;
  const functions::MessageWcmpFunction message_wcmp;
  const functions::NetworkFunction& fn =
      config.message_level
          ? static_cast<const functions::NetworkFunction&>(message_wcmp)
          : wcmp;
  const core::ActionId action = fn.install(
      *sender_host.enclave, config.variant == DataPlaneVariant::native);

  // Controller: weighted path table for h1 -> h2. WCMP uses capacity-
  // proportional weights (10:1 here); ECMP equalizes them.
  auto paths = core::Controller::weighted_paths(bed.routing(), h1.id(),
                                                h2.id());
  if (config.scheme == LoadBalanceScheme::ecmp) {
    const std::int64_t share =
        core::kWeightScale / static_cast<std::int64_t>(paths.size());
    for (auto& p : paths) p.weight = share;
    paths.back().weight +=
        core::kWeightScale -
        share * static_cast<std::int64_t>(paths.size());
  }
  functions::push_path_table(*sender_host.enclave, action,
                             {{h2.id(), paths}});

  const core::TableId table = sender_host.enclave->create_table("lb");
  sender_host.enclave->add_rule(table, core::ClassPattern("*"), action);

  // Long-running TCP flows h1 -> h2.
  TestHost& receiver_host = *bed.host_by_name("h2");
  std::uint64_t delivered = 0;
  std::uint64_t delivered_at_warmup = 0;
  std::uint64_t ooo = 0;
  std::vector<transport::TcpReceiver*> receivers;
  receiver_host.stack->listen(
      7000, [&](transport::TcpReceiver& r, const hoststack::FlowInfo&) {
        receivers.push_back(&r);
        r.on_deliver = [&delivered, last = std::uint64_t{0}](
                           std::uint64_t contiguous) mutable {
          delivered += contiguous - last;
          last = contiguous;
        };
      });

  std::vector<transport::TcpSender*> senders;
  for (int i = 0; i < config.num_flows; ++i) {
    transport::TcpSender& s = sender_host.stack->open_flow(h2.id(), 7000);
    s.start(1ULL << 40);  // effectively unbounded
    senders.push_back(&s);
  }

  bed.run_for(config.warmup);
  delivered_at_warmup = delivered;
  bed.run_for(config.duration);

  Fig10Result result;
  result.throughput_mbps =
      static_cast<double>(delivered - delivered_at_warmup) * 8.0 /
      netsim::to_seconds(config.duration) / 1e6;
  for (const transport::TcpSender* s : senders) {
    result.fast_retransmits += s->stats().fast_retransmits;
    result.timeouts += s->stats().timeouts;
  }
  for (const transport::TcpReceiver* r : receivers) {
    result.ooo_segments += r->ooo_segments();
  }
  result.interpreted_packets =
      sender_host.enclave->action_stats(action).executions;
  if (config.telemetry.enabled) {
    result.telemetry_json =
        telemetry::to_json(bed.controller().collect_telemetry());
  }
  return result;
}

}  // namespace eden::experiments
