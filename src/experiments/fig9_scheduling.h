// Case study 1 (Figure 9): flow completion times under PIAS and SFF
// scheduling, native vs Eden.
//
// One worker answers requests with response flows drawn from the
// web-search size distribution at ~70% load of the client's 10 Gbps
// link, while background sources keep bulk flows running. Three
// priority bands as in the paper: small (<10KB, highest), intermediate
// (10KB-1MB), background. Reported: average and 95th-percentile FCT of
// small and intermediate flows.
#pragma once

#include <cstdint>
#include <string>

#include "core/enclave.h"
#include "netsim/sim_time.h"
#include "util/stats.h"

namespace eden::experiments {

enum class SchedulingScheme { baseline, pias, sff };
enum class SchedulingVariant { native, eden, eden_ignore_output };

enum class WorkloadKind { web_search, data_mining };

struct Fig9Config {
  SchedulingScheme scheme = SchedulingScheme::baseline;
  SchedulingVariant variant = SchedulingVariant::eden;
  WorkloadKind workload = WorkloadKind::web_search;
  double load = 0.7;                  // of the client's access link
  int background_sources = 2;
  netsim::SimTime duration = 2 * netsim::kSecond;
  netsim::SimTime warmup = 200 * netsim::kMillisecond;
  std::uint64_t rng_seed = 1;
  std::int64_t small_limit = 10 * 1024;        // bytes
  std::int64_t intermediate_limit = 1024 * 1024;
  // Per-priority-queue switch buffer. The testbed's Arista 7050 shares a
  // deep dynamic buffer across ports; a few hundred KB per class is the
  // comparable static setting.
  std::uint32_t queue_bytes = 512 * 1024;
  // Enclave telemetry knobs; with `enabled` set the result carries a
  // deployment-wide telemetry JSON dump.
  core::TelemetryConfig telemetry;
};

struct Fig9Result {
  util::Percentiles small_fct_us;         // flows < small_limit
  util::Percentiles intermediate_fct_us;  // [small_limit, intermediate_limit)
  std::uint64_t completed_flows = 0;
  double background_mbps = 0.0;  // background goodput during measurement
  std::uint64_t interpreter_errors = 0;
  std::string telemetry_json;  // set when config.telemetry.enabled
};

Fig9Result run_fig9(const Fig9Config& config);

std::string to_string(SchedulingScheme scheme);
std::string to_string(SchedulingVariant variant);

}  // namespace eden::experiments
