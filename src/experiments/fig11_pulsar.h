// Case study 3 (Figure 11): Pulsar-style datacenter QoS.
//
// Two tenants issue 64KB IOs against a storage server behind a 1 Gbps
// link — one tenant READs, the other WRITEs. READ requests are tiny on
// the forward path, so the READ tenant floods the server's shared
// request queue and starves WRITEs ("simultaneous"). Pulsar's action
// function charges READ requests their *operation* size at the client
// enclave's rate-limited queues, restoring the tenants' guarantees
// ("rate-controlled").
#pragma once

#include <cstdint>
#include <string>

#include "core/enclave.h"
#include "netsim/sim_time.h"

namespace eden::experiments {

enum class PulsarMode { isolated, simultaneous, rate_controlled };

struct Fig11Config {
  PulsarMode mode = PulsarMode::simultaneous;
  bool use_native = false;          // native twin instead of bytecode
  std::int64_t io_bytes = 64 * 1024;
  int read_window = 64;             // READs are cheap to keep outstanding
  int write_window = 16;
  // Per-tenant bandwidth guarantee for the rate-controlled mode.
  std::uint64_t tenant_rate_bps = 480 * 1000 * 1000ULL;
  netsim::SimTime duration = 2 * netsim::kSecond;
  netsim::SimTime warmup = 250 * netsim::kMillisecond;
  std::uint64_t rng_seed = 1;
  core::TelemetryConfig telemetry;
};

struct Fig11Result {
  double read_mbps = 0.0;
  double write_mbps = 0.0;
  std::uint64_t rejected_requests = 0;
  // Aggregated across both simulations in `isolated` mode.
  std::string telemetry_json;  // set when config.telemetry.enabled
};

Fig11Result run_fig11(const Fig11Config& config);

std::string to_string(PulsarMode mode);

}  // namespace eden::experiments
