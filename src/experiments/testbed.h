// Shared experiment scaffolding: assembles hosts with enclaves + stacks
// on a topology, mirroring the paper's two testbeds (Section 4.3).
#pragma once

#include <memory>
#include <vector>

#include "core/controller.h"
#include "hoststack/host_stack.h"
#include "netsim/routing.h"

namespace eden::experiments {

// One simulated end host: node + enclave + Eden host stack.
struct TestHost {
  netsim::HostNode* node = nullptr;
  std::unique_ptr<core::Enclave> enclave;
  std::unique_ptr<hoststack::HostStack> stack;
};

// A network of Eden hosts with one class registry and controller.
class Testbed {
 public:
  explicit Testbed(hoststack::HostStackConfig stack_config = {})
      : stack_config_(std::move(stack_config)), controller_(registry_) {}

  // Adds a host (node only); call finalize() after wiring the topology
  // to create enclaves and stacks.
  netsim::HostNode& add_host(const std::string& name) {
    return network_.add_host(name);
  }
  netsim::SwitchNode& add_switch(const std::string& name) {
    return network_.add_switch(name);
  }
  void connect(netsim::Node& a, netsim::Node& b, std::uint64_t rate_bps,
               netsim::SimTime delay, netsim::QueueConfig qc = {}) {
    network_.connect(a, b, rate_bps, delay, qc);
  }

  // Creates an enclave + stack per host and registers them with the
  // controller. Must run after all connect() calls.
  void finalize(core::EnclaveConfig enclave_config = {});

  netsim::Network& network() { return network_; }
  core::Controller& controller() { return controller_; }
  core::ClassRegistry& registry() { return registry_; }
  netsim::Routing& routing() { return routing_; }

  TestHost& host(std::size_t i) { return hosts_[i]; }
  TestHost* host_by_name(const std::string& name);
  std::size_t host_count() const { return hosts_.size(); }

  void run_for(netsim::SimTime duration) {
    network_.scheduler().run_until(network_.now() + duration);
  }

 private:
  hoststack::HostStackConfig stack_config_;
  netsim::Network network_;
  core::ClassRegistry registry_;
  core::Controller controller_;
  netsim::Routing routing_{network_};
  std::vector<TestHost> hosts_;
};

}  // namespace eden::experiments
