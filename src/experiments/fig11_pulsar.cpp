#include "experiments/fig11_pulsar.h"

#include "experiments/testbed.h"
#include "functions/pulsar.h"
#include "storage/storage.h"

namespace eden::experiments {

std::string to_string(PulsarMode mode) {
  switch (mode) {
    case PulsarMode::isolated: return "isolated";
    case PulsarMode::simultaneous: return "simultaneous";
    case PulsarMode::rate_controlled: return "rate-controlled";
  }
  return "?";
}

namespace {
constexpr std::uint64_t kGbps = 1000ULL * 1000 * 1000;

void enable_pulsar(experiments::TestHost& client, std::int64_t tenant,
                   const Fig11Config& config) {
  const functions::PulsarFunction pulsar;
  const core::ActionId action =
      pulsar.install(*client.enclave, config.use_native);
  const int queue = client.stack->nic().create_queue(
      config.tenant_rate_bps, 128 * 1024);
  const std::pair<std::int64_t, std::int64_t> map[] = {{tenant, queue}};
  functions::push_queue_map(*client.enclave, action, map);
  const core::TableId table = client.enclave->create_table("qos");
  client.enclave->add_rule(table, core::ClassPattern("storage.ops.*"), action);
}

}  // namespace

Fig11Result run_fig11(const Fig11Config& config) {
  Fig11Result result;

  // `isolated` runs each tenant alone (two separate simulations).
  const bool run_reads = config.mode != PulsarMode::isolated;
  (void)run_reads;

  // Enclave snapshots survive the per-run testbeds so `isolated` mode
  // can aggregate across both simulations.
  std::vector<telemetry::EnclaveTelemetry> snapshots;

  auto run_once = [&config, &snapshots](bool with_reads,
                                        bool with_writes) -> Fig11Result {
    Testbed bed;
    auto& reader = bed.add_host("reader");
    auto& writer = bed.add_host("writer");
    auto& server = bed.add_host("server");
    auto& sw = bed.add_switch("tor");

    const netsim::SimTime delay = 5 * netsim::kMicrosecond;
    bed.connect(reader, sw, 10 * kGbps, delay);
    bed.connect(writer, sw, 10 * kGbps, delay);
    bed.connect(server, sw, 1 * kGbps, delay);  // the paper's 1 Gbps link
    bed.routing().install_dest_routes();

    core::EnclaveConfig ec;
    ec.rng_seed = config.rng_seed;
    ec.telemetry = config.telemetry;
    bed.finalize(ec);

    TestHost& reader_host = *bed.host_by_name("reader");
    TestHost& writer_host = *bed.host_by_name("writer");
    TestHost& server_host = *bed.host_by_name("server");

    if (config.mode == PulsarMode::rate_controlled) {
      enable_pulsar(reader_host, /*tenant=*/1, config);
      enable_pulsar(writer_host, /*tenant=*/2, config);
    }

    storage::StorageServer storage_server(bed.network(), *server_host.stack);

    storage::StorageClientConfig read_cfg;
    read_cfg.tenant = 1;
    read_cfg.kind = storage::kIoRead;
    read_cfg.io_bytes = config.io_bytes;
    read_cfg.window = config.read_window;
    read_cfg.server = server.id();
    storage::StorageClient read_client(bed.network(), *reader_host.stack,
                                       read_cfg);

    storage::StorageClientConfig write_cfg;
    write_cfg.tenant = 2;
    write_cfg.kind = storage::kIoWrite;
    write_cfg.io_bytes = config.io_bytes;
    write_cfg.window = config.write_window;
    write_cfg.server = server.id();
    storage::StorageClient write_client(bed.network(), *writer_host.stack,
                                        write_cfg);

    if (with_reads) read_client.start();
    if (with_writes) write_client.start();

    bed.run_for(config.warmup + config.duration);
    const netsim::SimTime from = config.warmup;
    const netsim::SimTime to = config.warmup + config.duration;

    Fig11Result r;
    r.read_mbps = read_client.throughput_mbps(from, to);
    r.write_mbps = write_client.throughput_mbps(from, to);
    r.rejected_requests = storage_server.rejected();
    if (config.telemetry.enabled) {
      for (const core::Enclave* e : bed.controller().enclaves()) {
        snapshots.push_back(e->telemetry_snapshot());
      }
    }
    return r;
  };

  if (config.mode == PulsarMode::isolated) {
    const Fig11Result reads = run_once(true, false);
    const Fig11Result writes = run_once(false, true);
    result.read_mbps = reads.read_mbps;
    result.write_mbps = writes.write_mbps;
    result.rejected_requests = reads.rejected_requests +
                               writes.rejected_requests;
  } else {
    result = run_once(true, true);
  }
  if (config.telemetry.enabled) {
    result.telemetry_json =
        telemetry::to_json(telemetry::aggregate(std::move(snapshots)));
  }
  return result;
}

}  // namespace eden::experiments
