#include "experiments/testbed.h"

namespace eden::experiments {

void Testbed::finalize(core::EnclaveConfig enclave_config) {
  for (netsim::HostNode* node : network_.hosts()) {
    TestHost th;
    th.node = node;
    th.enclave = std::make_unique<core::Enclave>(node->name() + ".enclave",
                                                 registry_, enclave_config);
    th.stack = std::make_unique<hoststack::HostStack>(network_, *node,
                                                      *th.enclave,
                                                      stack_config_);
    controller_.register_enclave(*th.enclave);
    hosts_.push_back(std::move(th));
  }
}

TestHost* Testbed::host_by_name(const std::string& name) {
  for (TestHost& th : hosts_) {
    if (th.node->name() == name) return &th;
  }
  return nullptr;
}

}  // namespace eden::experiments
