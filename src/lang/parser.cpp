#include "lang/parser.h"

#include <utility>

#include "lang/lexer.h"

namespace eden::lang {

ExprPtr make_int(std::int64_t value, SourceLoc loc) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::int_literal;
  e->loc = loc;
  e->int_value = value;
  return e;
}

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Program parse_program() {
    Program program;
    expect(TokenKind::kw_fun, "action functions start with 'fun'");
    expect(TokenKind::lparen, "'(' after 'fun'");
    program.params = parse_params(TokenKind::rparen);
    expect(TokenKind::rparen, "')' closing the parameter list");
    expect(TokenKind::arrow, "'->' after the parameter list");
    program.body = parse_block();
    expect(TokenKind::end_of_input, "end of program");
    return program;
  }

 private:
  const Token& peek(std::size_t ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
  bool check(TokenKind kind) const { return peek().kind == kind; }
  bool match(TokenKind kind) {
    if (!check(kind)) return false;
    advance();
    return true;
  }
  const Token& expect(TokenKind kind, const std::string& what) {
    if (!check(kind)) {
      throw LangError("expected " + what + ", found " +
                          std::string(token_kind_name(peek().kind)),
                      peek().loc);
    }
    return advance();
  }

  ExprPtr node(ExprKind kind, SourceLoc loc) {
    auto e = std::make_unique<Expr>();
    e->kind = kind;
    e->loc = loc;
    return e;
  }

  std::vector<Param> parse_params(TokenKind terminator) {
    std::vector<Param> params;
    if (check(terminator)) return params;
    while (true) {
      Param p;
      p.name = expect(TokenKind::identifier, "parameter name").text;
      if (match(TokenKind::colon)) {
        p.type_name = expect(TokenKind::identifier, "type name").text;
      }
      params.push_back(std::move(p));
      if (!match(TokenKind::comma)) break;
    }
    return params;
  }

  // block := expr (';' expr)*
  ExprPtr parse_block() {
    const SourceLoc loc = peek().loc;
    ExprPtr first = parse_expr();
    if (!check(TokenKind::semicolon)) return first;
    auto seq = node(ExprKind::sequence, loc);
    seq->children.push_back(std::move(first));
    while (match(TokenKind::semicolon)) {
      seq->children.push_back(parse_expr());
    }
    return seq;
  }

  // expr := let | if | while | assign
  ExprPtr parse_expr() {
    switch (peek().kind) {
      case TokenKind::kw_let: return parse_let();
      case TokenKind::kw_if: return parse_if();
      case TokenKind::kw_while: return parse_while();
      default: return parse_assign();
    }
  }

  ExprPtr parse_let() {
    const SourceLoc loc = advance().loc;  // consume 'let'
    const bool recursive = match(TokenKind::kw_rec);
    std::string name = expect(TokenKind::identifier, "binding name").text;

    if (check(TokenKind::lparen)) {
      // Local function definition: let [rec] f(a, b) = fbody in body
      advance();
      std::vector<Param> params = parse_params(TokenKind::rparen);
      expect(TokenKind::rparen, "')' closing the function parameters");
      expect(TokenKind::eq, "'=' in function definition");
      ExprPtr fbody = parse_expr();
      expect(TokenKind::kw_in, "'in' after function definition");
      ExprPtr body = parse_block();
      auto e = node(ExprKind::let_fun, loc);
      e->name = std::move(name);
      e->fun_params = std::move(params);
      e->is_recursive = recursive;
      e->children.push_back(std::move(fbody));
      e->children.push_back(std::move(body));
      return e;
    }

    if (recursive) {
      throw LangError("'let rec' requires a function definition", loc);
    }
    expect(TokenKind::eq, "'=' in let binding");
    ExprPtr value = parse_expr();
    expect(TokenKind::kw_in, "'in' after let binding");
    ExprPtr body = parse_block();
    auto e = node(ExprKind::let, loc);
    e->name = std::move(name);
    e->children.push_back(std::move(value));
    e->children.push_back(std::move(body));
    return e;
  }

  ExprPtr parse_if() {
    const SourceLoc loc = advance().loc;  // consume 'if'
    auto e = node(ExprKind::if_else, loc);
    e->children.push_back(parse_expr());  // condition
    expect(TokenKind::kw_then, "'then' after condition");
    e->children.push_back(parse_expr());  // then-branch
    if (check(TokenKind::kw_elif)) {
      // Desugar: elif ... == else (if ...), reusing this if parser.
      // Overwrite the kw_elif token view by recursing after consuming it.
      const SourceLoc elif_loc = peek().loc;
      advance();
      auto nested = node(ExprKind::if_else, elif_loc);
      nested->children.push_back(parse_expr());
      expect(TokenKind::kw_then, "'then' after condition");
      nested->children.push_back(parse_expr());
      nested->children.push_back(parse_elif_tail());
      e->children.push_back(std::move(nested));
    } else if (match(TokenKind::kw_else)) {
      e->children.push_back(parse_expr());
    } else {
      e->children.push_back(nullptr);  // missing else: value 0
    }
    return e;
  }

  // Continues a chain of elif/else after a then-branch. Returns the
  // else-expression (possibly another nested if) or null.
  ExprPtr parse_elif_tail() {
    if (check(TokenKind::kw_elif)) {
      const SourceLoc loc = peek().loc;
      advance();
      auto nested = node(ExprKind::if_else, loc);
      nested->children.push_back(parse_expr());
      expect(TokenKind::kw_then, "'then' after condition");
      nested->children.push_back(parse_expr());
      nested->children.push_back(parse_elif_tail());
      return nested;
    }
    if (match(TokenKind::kw_else)) return parse_expr();
    return nullptr;
  }

  ExprPtr parse_while() {
    const SourceLoc loc = advance().loc;  // consume 'while'
    auto e = node(ExprKind::while_loop, loc);
    e->children.push_back(parse_expr());
    expect(TokenKind::kw_do, "'do' after loop condition");
    e->children.push_back(parse_block());
    expect(TokenKind::kw_done, "'done' closing the loop body");
    return e;
  }

  ExprPtr parse_assign() {
    ExprPtr lhs = parse_or();
    if (!check(TokenKind::left_arrow)) return lhs;
    const SourceLoc loc = advance().loc;  // consume '<-'
    if (lhs->kind != ExprKind::path_read) {
      throw LangError("left side of '<-' must be a variable or state field",
                      loc);
    }
    ExprPtr value = parse_expr();
    auto e = node(ExprKind::assign, loc);
    e->path = std::move(lhs->path);
    e->children.push_back(std::move(value));
    return e;
  }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (check(TokenKind::kw_or)) {
      const SourceLoc loc = advance().loc;
      auto e = node(ExprKind::binary, loc);
      e->binary_op = BinaryOp::logical_or;
      e->children.push_back(std::move(lhs));
      e->children.push_back(parse_and());
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_cmp();
    while (check(TokenKind::kw_and)) {
      const SourceLoc loc = advance().loc;
      auto e = node(ExprKind::binary, loc);
      e->binary_op = BinaryOp::logical_and;
      e->children.push_back(std::move(lhs));
      e->children.push_back(parse_cmp());
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_cmp() {
    ExprPtr lhs = parse_add();
    BinaryOp op;
    switch (peek().kind) {
      case TokenKind::eq: op = BinaryOp::eq; break;
      case TokenKind::ne: op = BinaryOp::ne; break;
      case TokenKind::lt: op = BinaryOp::lt; break;
      case TokenKind::le: op = BinaryOp::le; break;
      case TokenKind::gt: op = BinaryOp::gt; break;
      case TokenKind::ge: op = BinaryOp::ge; break;
      default: return lhs;
    }
    const SourceLoc loc = advance().loc;
    auto e = node(ExprKind::binary, loc);
    e->binary_op = op;
    e->children.push_back(std::move(lhs));
    e->children.push_back(parse_add());
    return e;  // Comparisons do not chain (a < b < c is a syntax error).
  }

  ExprPtr parse_add() {
    ExprPtr lhs = parse_mul();
    while (check(TokenKind::plus) || check(TokenKind::minus)) {
      const BinaryOp op =
          peek().kind == TokenKind::plus ? BinaryOp::add : BinaryOp::sub;
      const SourceLoc loc = advance().loc;
      auto e = node(ExprKind::binary, loc);
      e->binary_op = op;
      e->children.push_back(std::move(lhs));
      e->children.push_back(parse_mul());
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_mul() {
    ExprPtr lhs = parse_unary();
    while (check(TokenKind::star) || check(TokenKind::slash) ||
           check(TokenKind::percent)) {
      BinaryOp op = BinaryOp::mul;
      if (peek().kind == TokenKind::slash) op = BinaryOp::div;
      if (peek().kind == TokenKind::percent) op = BinaryOp::mod;
      const SourceLoc loc = advance().loc;
      auto e = node(ExprKind::binary, loc);
      e->binary_op = op;
      e->children.push_back(std::move(lhs));
      e->children.push_back(parse_unary());
      lhs = std::move(e);
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    if (check(TokenKind::minus) || check(TokenKind::kw_not)) {
      const UnaryOp op = peek().kind == TokenKind::minus
                             ? UnaryOp::neg
                             : UnaryOp::logical_not;
      const SourceLoc loc = advance().loc;
      auto e = node(ExprKind::unary, loc);
      e->unary_op = op;
      e->children.push_back(parse_unary());
      return e;
    }
    return parse_postfix();
  }

  ExprPtr parse_postfix() {
    const Token& tok = peek();
    if (tok.kind == TokenKind::integer) {
      advance();
      return make_int(tok.int_value, tok.loc);
    }
    if (tok.kind == TokenKind::kw_true || tok.kind == TokenKind::kw_false) {
      const bool value = tok.kind == TokenKind::kw_true;
      advance();
      auto e = node(ExprKind::bool_literal, tok.loc);
      e->int_value = value ? 1 : 0;
      return e;
    }
    if (tok.kind == TokenKind::lparen) {
      advance();
      ExprPtr inner = parse_block();
      expect(TokenKind::rparen, "')'");
      return inner;
    }
    if (tok.kind == TokenKind::identifier) {
      return parse_path_or_call();
    }
    throw LangError("expected an expression, found " +
                        std::string(token_kind_name(tok.kind)),
                    tok.loc);
  }

  ExprPtr parse_path_or_call() {
    const Token root = advance();

    // Direct call: ident '(' args ')'
    if (check(TokenKind::lparen)) {
      advance();
      auto e = node(ExprKind::call, root.loc);
      e->name = root.text;
      if (!check(TokenKind::rparen)) {
        while (true) {
          e->children.push_back(parse_expr());
          if (!match(TokenKind::comma)) break;
        }
      }
      expect(TokenKind::rparen, "')' closing the argument list");
      return e;
    }

    Path path;
    path.root = root.text;
    path.loc = root.loc;
    while (true) {
      if (match(TokenKind::dot)) {
        PathElem elem;
        elem.field = expect(TokenKind::identifier, "field name").text;
        path.elems.push_back(std::move(elem));
      } else if (match(TokenKind::lbracket)) {
        PathElem elem;
        elem.index = parse_expr();
        expect(TokenKind::rbracket, "']' closing the index");
        path.elems.push_back(std::move(elem));
      } else {
        break;
      }
    }
    auto e = node(ExprKind::path_read, root.loc);
    e->path = std::move(path);
    return e;
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Program parse(std::string_view source) {
  Parser parser(lex(source));
  return parser.parse_program();
}

}  // namespace eden::lang
