#include "lang/bytecode.h"

#include "lang/source_loc.h"
#include "util/bytes.h"

namespace eden::lang {

std::string_view op_name(Op op) {
  switch (op) {
    case Op::push: return "push";
    case Op::pop: return "pop";
    case Op::dup: return "dup";
    case Op::load_local: return "load_local";
    case Op::store_local: return "store_local";
    case Op::load_state: return "load_state";
    case Op::store_state: return "store_state";
    case Op::array_load: return "array_load";
    case Op::array_store: return "array_store";
    case Op::array_len: return "array_len";
    case Op::add: return "add";
    case Op::sub: return "sub";
    case Op::mul: return "mul";
    case Op::div_: return "div";
    case Op::mod_: return "mod";
    case Op::neg: return "neg";
    case Op::cmp_eq: return "cmp_eq";
    case Op::cmp_ne: return "cmp_ne";
    case Op::cmp_lt: return "cmp_lt";
    case Op::cmp_le: return "cmp_le";
    case Op::cmp_gt: return "cmp_gt";
    case Op::cmp_ge: return "cmp_ge";
    case Op::logical_not: return "not";
    case Op::jmp: return "jmp";
    case Op::jz: return "jz";
    case Op::jnz: return "jnz";
    case Op::call: return "call";
    case Op::ret: return "ret";
    case Op::rand_below: return "rand_below";
    case Op::clock_ns: return "clock_ns";
    case Op::min2: return "min";
    case Op::max2: return "max";
    case Op::abs1: return "abs";
    case Op::halt: return "halt";
    case Op::add_imm: return "add_imm";
    case Op::mul_imm: return "mul_imm";
    case Op::tee_local: return "tee_local";
    case Op::load_local2: return "load_local2";
    case Op::load_state_push: return "load_state_push";
    case Op::cmp_eq_imm: return "cmp_eq_imm";
    case Op::cmp_ne_imm: return "cmp_ne_imm";
    case Op::cmp_lt_imm: return "cmp_lt_imm";
    case Op::cmp_le_imm: return "cmp_le_imm";
    case Op::cmp_gt_imm: return "cmp_gt_imm";
    case Op::cmp_ge_imm: return "cmp_ge_imm";
    case Op::cmp_eq_jz: return "cmp_eq_jz";
    case Op::cmp_ne_jz: return "cmp_ne_jz";
    case Op::cmp_lt_jz: return "cmp_lt_jz";
    case Op::cmp_le_jz: return "cmp_le_jz";
    case Op::cmp_gt_jz: return "cmp_gt_jz";
    case Op::cmp_ge_jz: return "cmp_ge_jz";
    case Op::cmp_eq_imm_jz: return "cmp_eq_imm_jz";
    case Op::cmp_ne_imm_jz: return "cmp_ne_imm_jz";
    case Op::cmp_lt_imm_jz: return "cmp_lt_imm_jz";
    case Op::cmp_le_imm_jz: return "cmp_le_imm_jz";
    case Op::cmp_gt_imm_jz: return "cmp_gt_imm_jz";
    case Op::cmp_ge_imm_jz: return "cmp_ge_imm_jz";
    case Op::push_jmp: return "push_jmp";
    case Op::inc_local: return "inc_local";
    case Op::store_local2: return "store_local2";
    case Op::array_load_off: return "array_load_off";
    case Op::array_load_mul: return "array_load_mul";
    case Op::array_load_rec: return "array_load_rec";
  }
  return "?";
}

std::string_view concurrency_mode_name(ConcurrencyMode mode) {
  switch (mode) {
    case ConcurrencyMode::parallel: return "parallel";
    case ConcurrencyMode::per_message: return "per_message";
    case ConcurrencyMode::serialized: return "serialized";
  }
  return "?";
}

namespace {

constexpr std::uint32_t kMagic = 0x43424445;  // "EDBC" little-endian
// Version 1: base opcode tier only (push..halt). Version 2: adds the
// fused superinstruction tier. Unoptimized programs keep emitting
// version 1 so pre-optimizer consumers still read them.
constexpr std::uint32_t kBaseVersion = 1;
constexpr std::uint32_t kFusedVersion = 2;

}  // namespace

std::vector<std::uint8_t> CompiledProgram::serialize() const {
  std::uint32_t version = kBaseVersion;
  for (const auto& instr : code) {
    if (is_fused_op(instr.op)) {
      version = kFusedVersion;
      break;
    }
  }
  util::ByteWriter w;
  w.u32(kMagic);
  w.u32(version);
  w.str(source_name);
  w.u8(static_cast<std::uint8_t>(concurrency));
  for (int s = 0; s < kNumScopes; ++s) {
    w.u64(usage.scalar_read[s]);
    w.u64(usage.scalar_write[s]);
    w.u64(usage.array_read[s]);
    w.u64(usage.array_write[s]);
  }
  w.u32(static_cast<std::uint32_t>(functions.size()));
  for (const auto& f : functions) {
    w.str(f.name);
    w.u32(f.addr);
    w.u32(f.nargs);
    w.u32(f.nlocals);
  }
  w.u32(static_cast<std::uint32_t>(code.size()));
  for (const auto& instr : code) {
    w.u8(static_cast<std::uint8_t>(instr.op));
    w.i32(instr.a);
    w.i64(instr.imm);
  }
  return w.take();
}

CompiledProgram CompiledProgram::deserialize(
    std::span<const std::uint8_t> bytes) {
  try {
    util::ByteReader r(bytes);
    if (r.u32() != kMagic) throw LangError("bad bytecode magic", SourceLoc{});
    const std::uint32_t version = r.u32();
    if (version != kBaseVersion && version != kFusedVersion) {
      throw LangError("unsupported bytecode version", SourceLoc{});
    }
    const std::uint8_t max_op = version == kBaseVersion
                                    ? static_cast<std::uint8_t>(Op::halt)
                                    : kMaxOpByte;
    CompiledProgram p;
    p.source_name = r.str();
    const std::uint8_t mode = r.u8();
    if (mode > static_cast<std::uint8_t>(ConcurrencyMode::serialized)) {
      throw LangError("invalid concurrency mode", SourceLoc{});
    }
    p.concurrency = static_cast<ConcurrencyMode>(mode);
    for (int s = 0; s < kNumScopes; ++s) {
      p.usage.scalar_read[s] = r.u64();
      p.usage.scalar_write[s] = r.u64();
      p.usage.array_read[s] = r.u64();
      p.usage.array_write[s] = r.u64();
    }
    const std::uint32_t nfuncs = r.u32();
    // A serialized FunctionInfo is at least 16 bytes (empty name + three
    // u32s); a count the remaining bytes cannot hold is corruption, and
    // must be rejected before reserve() turns it into a huge allocation.
    if (nfuncs > r.remaining() / 16) {
      throw LangError("function count exceeds bytecode stream", SourceLoc{});
    }
    p.functions.reserve(nfuncs);
    for (std::uint32_t i = 0; i < nfuncs; ++i) {
      FunctionInfo f;
      f.name = r.str();
      f.addr = r.u32();
      f.nargs = static_cast<std::uint16_t>(r.u32());
      f.nlocals = static_cast<std::uint16_t>(r.u32());
      p.functions.push_back(std::move(f));
    }
    const std::uint32_t ninstr = r.u32();
    // Same guard: a serialized Instr is exactly 13 bytes.
    if (ninstr > r.remaining() / 13) {
      throw LangError("instruction count exceeds bytecode stream", SourceLoc{});
    }
    p.code.reserve(ninstr);
    for (std::uint32_t i = 0; i < ninstr; ++i) {
      Instr instr;
      const std::uint8_t op = r.u8();
      if (op > max_op) {
        throw LangError("invalid opcode in bytecode stream", SourceLoc{});
      }
      instr.op = static_cast<Op>(op);
      instr.a = r.i32();
      instr.imm = r.i64();
      p.code.push_back(instr);
    }
    if (!r.exhausted()) {
      throw LangError("trailing bytes after bytecode stream", SourceLoc{});
    }
    return p;
  } catch (const util::ByteStreamError& e) {
    throw LangError(e.what(), SourceLoc{});
  }
}

}  // namespace eden::lang
