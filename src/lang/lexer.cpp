#include "lang/lexer.h"

#include <cctype>
#include <limits>
#include <unordered_map>

namespace eden::lang {

std::string_view token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::integer: return "integer";
    case TokenKind::identifier: return "identifier";
    case TokenKind::kw_fun: return "'fun'";
    case TokenKind::kw_let: return "'let'";
    case TokenKind::kw_rec: return "'rec'";
    case TokenKind::kw_in: return "'in'";
    case TokenKind::kw_if: return "'if'";
    case TokenKind::kw_then: return "'then'";
    case TokenKind::kw_elif: return "'elif'";
    case TokenKind::kw_else: return "'else'";
    case TokenKind::kw_while: return "'while'";
    case TokenKind::kw_do: return "'do'";
    case TokenKind::kw_done: return "'done'";
    case TokenKind::kw_true: return "'true'";
    case TokenKind::kw_false: return "'false'";
    case TokenKind::kw_not: return "'not'";
    case TokenKind::kw_and: return "'&&'";
    case TokenKind::kw_or: return "'||'";
    case TokenKind::arrow: return "'->'";
    case TokenKind::left_arrow: return "'<-'";
    case TokenKind::plus: return "'+'";
    case TokenKind::minus: return "'-'";
    case TokenKind::star: return "'*'";
    case TokenKind::slash: return "'/'";
    case TokenKind::percent: return "'%'";
    case TokenKind::eq: return "'='";
    case TokenKind::ne: return "'<>'";
    case TokenKind::lt: return "'<'";
    case TokenKind::le: return "'<='";
    case TokenKind::gt: return "'>'";
    case TokenKind::ge: return "'>='";
    case TokenKind::lparen: return "'('";
    case TokenKind::rparen: return "')'";
    case TokenKind::lbracket: return "'['";
    case TokenKind::rbracket: return "']'";
    case TokenKind::dot: return "'.'";
    case TokenKind::comma: return "','";
    case TokenKind::semicolon: return "';'";
    case TokenKind::colon: return "':'";
    case TokenKind::end_of_input: return "end of input";
  }
  return "?";
}

namespace {

const std::unordered_map<std::string_view, TokenKind>& keywords() {
  static const std::unordered_map<std::string_view, TokenKind> table = {
      {"fun", TokenKind::kw_fun},     {"let", TokenKind::kw_let},
      {"rec", TokenKind::kw_rec},     {"in", TokenKind::kw_in},
      {"if", TokenKind::kw_if},       {"then", TokenKind::kw_then},
      {"elif", TokenKind::kw_elif},   {"else", TokenKind::kw_else},
      {"while", TokenKind::kw_while}, {"do", TokenKind::kw_do},
      {"done", TokenKind::kw_done},   {"true", TokenKind::kw_true},
      {"false", TokenKind::kw_false}, {"not", TokenKind::kw_not},
      {"and", TokenKind::kw_and},     {"or", TokenKind::kw_or},
  };
  return table;
}

class Cursor {
 public:
  explicit Cursor(std::string_view src) : src_(src) {}

  bool at_end() const { return pos_ >= src_.size(); }
  char peek(std::size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char advance() {
    const char c = src_[pos_++];
    if (c == '\n') {
      ++loc_.line;
      loc_.column = 1;
    } else {
      ++loc_.column;
    }
    return c;
  }
  bool match(char expected) {
    if (at_end() || src_[pos_] != expected) return false;
    advance();
    return true;
  }
  SourceLoc loc() const { return loc_; }

 private:
  std::string_view src_;
  std::size_t pos_ = 0;
  SourceLoc loc_;
};

}  // namespace

std::vector<Token> lex(std::string_view source) {
  std::vector<Token> tokens;
  Cursor cur(source);

  auto push = [&](TokenKind kind, SourceLoc loc) {
    tokens.push_back(Token{kind, {}, 0, loc});
  };

  while (!cur.at_end()) {
    const SourceLoc loc = cur.loc();
    const char c = cur.advance();

    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') continue;

    // Line comment.
    if (c == '/' && cur.peek() == '/') {
      while (!cur.at_end() && cur.peek() != '\n') cur.advance();
      continue;
    }
    // Block comment "(* ... *)", nesting allowed (F# style).
    if (c == '(' && cur.peek() == '*') {
      cur.advance();
      int depth = 1;
      while (depth > 0) {
        if (cur.at_end()) throw LangError("unterminated comment", loc);
        const char d = cur.advance();
        if (d == '(' && cur.peek() == '*') {
          cur.advance();
          ++depth;
        } else if (d == '*' && cur.peek() == ')') {
          cur.advance();
          --depth;
        }
      }
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::int64_t value = c - '0';
      constexpr std::int64_t max = std::numeric_limits<std::int64_t>::max();
      while (std::isdigit(static_cast<unsigned char>(cur.peek())) ||
             cur.peek() == '_') {
        const char d = cur.advance();
        if (d == '_') continue;  // 1_000_000 readability separators
        const int digit = d - '0';
        if (value > (max - digit) / 10) {
          throw LangError("integer literal overflows 64 bits", loc);
        }
        value = value * 10 + digit;
      }
      // F# int64 literal suffix "L" is accepted and ignored.
      if (cur.peek() == 'L') cur.advance();
      Token tok{TokenKind::integer, {}, value, loc};
      tokens.push_back(std::move(tok));
      continue;
    }

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string name(1, c);
      while (std::isalnum(static_cast<unsigned char>(cur.peek())) ||
             cur.peek() == '_') {
        name.push_back(cur.advance());
      }
      const auto it = keywords().find(name);
      if (it != keywords().end()) {
        push(it->second, loc);
      } else {
        Token tok{TokenKind::identifier, std::move(name), 0, loc};
        tokens.push_back(std::move(tok));
      }
      continue;
    }

    switch (c) {
      case '+': push(TokenKind::plus, loc); break;
      case '*': push(TokenKind::star, loc); break;
      case '/': push(TokenKind::slash, loc); break;
      case '%': push(TokenKind::percent, loc); break;
      case '(': push(TokenKind::lparen, loc); break;
      case ')': push(TokenKind::rparen, loc); break;
      case '[': push(TokenKind::lbracket, loc); break;
      case ']': push(TokenKind::rbracket, loc); break;
      case ',': push(TokenKind::comma, loc); break;
      case ';': push(TokenKind::semicolon, loc); break;
      case ':': push(TokenKind::colon, loc); break;
      case '=':
        cur.match('=');  // "==" is accepted as a synonym for "="
        push(TokenKind::eq, loc);
        break;
      case '-':
        push(cur.match('>') ? TokenKind::arrow : TokenKind::minus, loc);
        break;
      case '<':
        if (cur.match('-')) {
          push(TokenKind::left_arrow, loc);
        } else if (cur.match('=')) {
          push(TokenKind::le, loc);
        } else if (cur.match('>')) {
          push(TokenKind::ne, loc);
        } else {
          push(TokenKind::lt, loc);
        }
        break;
      case '>':
        push(cur.match('=') ? TokenKind::ge : TokenKind::gt, loc);
        break;
      case '!':
        if (cur.match('=')) {
          push(TokenKind::ne, loc);  // "!=" synonym for "<>"
        } else {
          throw LangError("unexpected character '!'", loc);
        }
        break;
      case '&':
        if (cur.match('&')) {
          push(TokenKind::kw_and, loc);
        } else {
          throw LangError("unexpected character '&'", loc);
        }
        break;
      case '|':
        if (cur.match('|')) {
          push(TokenKind::kw_or, loc);
        } else {
          throw LangError("unexpected character '|'", loc);
        }
        break;
      case '.':
        // F# array indexing is written "xs.[i]"; accept the dot-bracket
        // spelling by treating ".[" as "[".
        if (cur.peek() == '[') {
          cur.advance();
          push(TokenKind::lbracket, loc);
        } else {
          push(TokenKind::dot, loc);
        }
        break;
      default:
        throw LangError(std::string("unexpected character '") + c + "'", loc);
    }
  }

  tokens.push_back(Token{TokenKind::end_of_input, {}, 0, cur.loc()});
  return tokens;
}

}  // namespace eden::lang
