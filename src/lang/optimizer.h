// Bytecode optimizer and install-time verifier (the middle stage of the
// compile -> optimize -> install -> execute pipeline).
//
// The compiler (compiler.cpp) emits a direct, unsurprising translation
// of the AST; this pass tightens it for the per-packet hot path:
//
//   * constant folding      push a; push b; add  ->  push a+b
//   * dead code elimination push k; pop          ->  (nothing)
//   * jump threading        jmp -> jmp -> L      ->  jmp L
//   * superinstruction      cmp_lt; jz L         ->  cmp_lt_jz L
//     fusion                push k; add          ->  add_imm k
//                           load_local a; load_local b -> load_local2
//
// Optimization is semantics-preserving for valid programs: the same
// ExecStatus, result value and state writes at every level. The only
// permitted divergence is that O1 may consume *fewer* resources (steps,
// operand stack), so a program that dies exactly at a resource limit
// under O0 may complete under O1 — the same relaxation the paper's
// tail-call optimization already performs. ExecResult::steps stays
// comparable across levels because every fused op is billed for the
// number of base instructions it replaced (kOpStepCost).
//
// verify_program moves the per-run validation of the interpreter's
// untrusted path to install time: once a program passes against the
// schema and limits it will run under, the interpreter may skip pc
// bounds, opcode range, state-scope and function-table checks on every
// dispatch (CompiledProgram::preverified).
#pragma once

#include <cstdint>

#include "lang/bytecode.h"
#include "lang/interpreter.h"
#include "lang/state_schema.h"

namespace eden::lang {

// What the optimizer did, for tooling (`edenc -O1`) and tests.
struct OptStats {
  std::size_t instructions_before = 0;
  std::size_t instructions_after = 0;
  std::size_t constants_folded = 0;
  std::size_t dead_eliminated = 0;
  std::size_t jumps_threaded = 0;
  std::size_t fused = 0;
};

// Returns the optimized program. At OptLevel::O0 this is the input,
// untouched. Never throws; a malformed input program comes out no more
// malformed than it went in (invalid branch targets and opcodes are
// left alone and still trap at run time).
CompiledProgram optimize(CompiledProgram program, OptLevel level,
                         OptStats* stats = nullptr);

// Static verification that `program` is safe to execute against state
// blocks shaped by `schema` under `limits` without the interpreter's
// per-dispatch structural checks: opcodes in range, branch targets and
// function indices valid, state operands within the schema, local slots
// within the frame limit, nargs <= nlocals for every function, and the
// code cannot run off the end. Throws LangError with a diagnostic on
// the first violation. On success the caller may set
// program.preverified = true.
void verify_program(const CompiledProgram& program, const StateSchema& schema,
                    const ExecLimits& limits);

}  // namespace eden::lang
