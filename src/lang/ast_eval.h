// Reference tree-walking evaluator for EAL.
//
// Executes the parsed AST directly against the same state blocks as the
// bytecode interpreter. It exists for two reasons:
//  * differential testing — the compiler+interpreter pipeline must agree
//    with this (much simpler) semantics on every program and input;
//  * controller-side dry runs — the paper notes that F# programs could
//    be run and debugged locally without invoking the enclave
//    (Section 6); this is that facility for EAL.
//
// Matches interpreter semantics exactly: 64-bit wrapping arithmetic,
// div/mod trapping on zero, bounds-checked arrays, by-value captures,
// assignment evaluating to 0, missing else = 0.
#pragma once

#include "lang/ast.h"
#include "lang/interpreter.h"
#include "lang/state_schema.h"
#include "util/rng.h"

namespace eden::lang {

struct AstEvalOptions {
  // Bound on evaluated AST nodes (0 = unlimited), mirroring max_steps.
  std::uint64_t max_nodes = 0;
  std::uint32_t max_call_depth = 128;
};

// Evaluates `program` against the schema-resolved state. Uses `rng` for
// rand() and `clock_ns` for clock(). Returns the same ExecStatus space
// as the interpreter (fuel_exhausted for the node bound).
ExecResult ast_eval(const Program& program, const StateSchema& schema,
                    StateBlock* packet, StateBlock* message,
                    StateBlock* global, util::Rng& rng,
                    std::int64_t clock_ns = 0,
                    const AstEvalOptions& options = {});

}  // namespace eden::lang
