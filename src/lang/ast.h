// Abstract syntax tree for the Eden Action Language.
//
// The paper retrieves the AST from F# code quotations; here the parser
// produces it directly. Nodes are owned through unique_ptr and are
// immutable after parsing.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lang/source_loc.h"

namespace eden::lang {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class BinaryOp : std::uint8_t {
  add, sub, mul, div, mod,
  eq, ne, lt, le, gt, ge,
  logical_and, logical_or,  // short-circuit
};

enum class UnaryOp : std::uint8_t { neg, logical_not };

// A dotted/indexed path such as:
//   msg.size
//   global.priorities[i].limit
// `root` names a function parameter (bound to a state scope) or a local
// variable; each element is a field selection or an index expression.
struct PathElem {
  std::string field;  // non-empty for ".field"
  ExprPtr index;      // non-null for "[expr]"
};

struct Path {
  std::string root;
  std::vector<PathElem> elems;
  SourceLoc loc;
};

enum class ExprKind : std::uint8_t {
  int_literal,
  bool_literal,
  path_read,   // read of a Path (variable, state field, array element)
  unary,
  binary,
  assign,      // path <- value
  let,         // let name = value in body
  let_fun,     // let [rec] f(params) = fbody in body
  if_else,     // if/then/elif/else (missing else means unit/0)
  sequence,    // e1; e2; ... ; en  (value of en)
  call,        // f(args) — local function or builtin
  while_loop,  // while cond do body done (value 0)
};

struct Param {
  std::string name;
  std::string type_name;  // optional annotation, e.g. "Packet"
};

struct Expr {
  ExprKind kind;
  SourceLoc loc;

  // int_literal / bool_literal
  std::int64_t int_value = 0;

  // path_read / assign target
  Path path;

  // unary / binary
  UnaryOp unary_op = UnaryOp::neg;
  BinaryOp binary_op = BinaryOp::add;

  // General-purpose children:
  //   unary:      children[0] = operand
  //   binary:     children[0], children[1]
  //   assign:     children[0] = value
  //   let:        children[0] = bound value, children[1] = body
  //   let_fun:    children[0] = function body, children[1] = body
  //   if_else:    children[0] = cond, children[1] = then,
  //               children[2] = else (may be null)
  //   sequence:   all children in order
  //   call:       children = arguments
  //   while_loop: children[0] = cond, children[1] = body
  std::vector<ExprPtr> children;

  // let / let_fun / call
  std::string name;
  // let_fun
  std::vector<Param> fun_params;
  bool is_recursive = false;
};

// The whole program: fun(params) -> body.
struct Program {
  std::vector<Param> params;
  ExprPtr body;
};

// Convenience constructors used by the parser and tests.
ExprPtr make_int(std::int64_t value, SourceLoc loc);

}  // namespace eden::lang
