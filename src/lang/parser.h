// Recursive-descent parser for the Eden Action Language.
#pragma once

#include <string_view>

#include "lang/ast.h"

namespace eden::lang {

// Parses a complete action function of the form
//   fun(packet : Packet, msg : Message, global : Global) -> <expr>
// Throws LangError on syntax errors.
Program parse(std::string_view source);

}  // namespace eden::lang
