// Bytecode disassembler, for debugging and for golden tests of the
// compiler's output.
#pragma once

#include <string>

#include "lang/bytecode.h"
#include "telemetry/profile.h"

namespace eden::lang {

// One instruction per line:
//   12  push        5
//   13  load_state  message.0
// Function entry points are annotated with the function name.
std::string disassemble(const CompiledProgram& program);

// Just the mnemonic + operands of program.code[pc], no index or
// newline (e.g. "load_state   message.0"). Shared by the plain and
// profile-annotated renderings and by the telemetry hot-spot tables.
std::string disassemble_instr(const CompiledProgram& program, std::size_t pc);

// Profile-annotated disassembly: every line carries the instruction's
// execution count, its share of all executed instructions, and — when
// cycle sampling ran — its share of the sampled ticks:
//   12  push         5              ;       4200  24.0%  18.3%
// Instructions that never executed show a "-" count column.
std::string disassemble(const CompiledProgram& program,
                        const telemetry::ProgramProfile& profile);

}  // namespace eden::lang
