// Bytecode disassembler, for debugging and for golden tests of the
// compiler's output.
#pragma once

#include <string>

#include "lang/bytecode.h"

namespace eden::lang {

// One instruction per line:
//   12  push        5
//   13  load_state  message.0
// Function entry points are annotated with the function name.
std::string disassemble(const CompiledProgram& program);

}  // namespace eden::lang
