#include "lang/ast_eval.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <memory>
#include <set>
#include <vector>

namespace eden::lang {

namespace {

// Internal trap signal; converted to ExecStatus at the boundary. Using
// an exception is fine here: ast_eval runs at the controller, never on
// the data path.
struct Trap {
  ExecStatus status;
};

struct FuncValue;

// A value is an integer, a compile-time array alias, or a function.
struct Value {
  enum class Kind { integer, array_ref, function } kind = Kind::integer;
  std::int64_t i = 0;
  FieldSlot field;             // array_ref
  std::string field_name;      // array_ref
  std::shared_ptr<FuncValue> func;
};

struct FuncValue {
  const Expr* definition = nullptr;  // the let_fun node
  // Names resolved at the definition site that are not value captures.
  std::map<std::string, Value> imports;
  // Names whose *values* are read in the caller's scope at each call
  // site (matching the compiler's by-value capture semantics).
  std::vector<std::string> captures;
};

bool is_builtin(std::string_view name) {
  return name == "len" || name == "rand" || name == "clock" ||
         name == "min" || name == "max" || name == "abs";
}

// Free-variable analysis identical to the compiler's.
void collect_free(const Expr* e, std::set<std::string>& bound,
                  std::vector<std::string>& order,
                  std::set<std::string>& seen) {
  if (e == nullptr) return;
  auto note = [&](const std::string& name) {
    if (bound.contains(name) || is_builtin(name)) return;
    if (seen.insert(name).second) order.push_back(name);
  };
  switch (e->kind) {
    case ExprKind::path_read:
    case ExprKind::assign:
      note(e->path.root);
      for (const auto& elem : e->path.elems) {
        collect_free(elem.index.get(), bound, order, seen);
      }
      for (const auto& child : e->children) {
        collect_free(child.get(), bound, order, seen);
      }
      return;
    case ExprKind::let: {
      collect_free(e->children[0].get(), bound, order, seen);
      const bool was = bound.contains(e->name);
      bound.insert(e->name);
      collect_free(e->children[1].get(), bound, order, seen);
      if (!was) bound.erase(e->name);
      return;
    }
    case ExprKind::let_fun: {
      std::set<std::string> inner = bound;
      if (e->is_recursive) inner.insert(e->name);
      for (const auto& p : e->fun_params) inner.insert(p.name);
      collect_free(e->children[0].get(), inner, order, seen);
      const bool was = bound.contains(e->name);
      bound.insert(e->name);
      collect_free(e->children[1].get(), bound, order, seen);
      if (!was) bound.erase(e->name);
      return;
    }
    case ExprKind::call:
      note(e->name);
      [[fallthrough]];
    default:
      for (const auto& child : e->children) {
        collect_free(child.get(), bound, order, seen);
      }
      return;
  }
}

inline std::int64_t wrap_add(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}
inline std::int64_t wrap_sub(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                   static_cast<std::uint64_t>(b));
}
inline std::int64_t wrap_mul(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                   static_cast<std::uint64_t>(b));
}
inline std::int64_t wrap_neg(std::int64_t a) {
  return static_cast<std::int64_t>(-static_cast<std::uint64_t>(a));
}

class Evaluator {
 public:
  Evaluator(const StateSchema& schema, StateBlock* packet,
            StateBlock* message, StateBlock* global, util::Rng& rng,
            std::int64_t clock_ns, const AstEvalOptions& options)
      : schema_(schema), rng_(rng), clock_ns_(clock_ns), options_(options) {
    blocks_[0] = packet;
    blocks_[1] = message;
    blocks_[2] = global;
  }

  ExecResult run(const Program& program) {
    ExecResult result;
    scopes_.emplace_back();  // root scope: the state parameters
    for (std::size_t i = 0; i < program.params.size(); ++i) {
      Value v;
      v.kind = Value::Kind::array_ref;  // reused to carry the scope tag
      // State params are modelled as a dedicated kind below; keep a
      // simple convention: field.scope identifies the scope, slot 0xffff
      // flags "whole scope".
      v.field.scope = resolve_param_scope(program.params[i], i);
      v.field.slot = 0xffff;
      scopes_.back()[program.params[i].name] = v;
    }
    try {
      result.value = eval(program.body.get());
      result.status = ExecStatus::ok;
    } catch (const Trap& trap) {
      result.status = trap.status;
    }
    result.steps = nodes_;
    result.max_depth = max_depth_;
    return result;
  }

 private:
  using Scope = std::map<std::string, Value>;

  static lang::Scope resolve_param_scope(const Param& p, std::size_t index) {
    if (!p.type_name.empty()) {
      std::string t = p.type_name;
      for (auto& c : t) c = static_cast<char>(std::tolower(c));
      if (t == "packet") return lang::Scope::packet;
      if (t == "message" || t == "msg") return lang::Scope::message;
      if (t == "global") return lang::Scope::global;
      throw LangError("unknown parameter type '" + p.type_name + "'",
                      SourceLoc{});
    }
    return static_cast<lang::Scope>(index);
  }

  bool is_state_param(const Value& v) const {
    return v.kind == Value::Kind::array_ref && v.field.slot == 0xffff;
  }

  Value* lookup(const std::string& name) {
    // Search the current function's scopes (from frame base upward),
    // then its imports, then the root scope.
    for (std::size_t i = scopes_.size(); i > frame_base_; --i) {
      auto it = scopes_[i - 1].find(name);
      if (it != scopes_[i - 1].end()) return &it->second;
    }
    if (!import_stack_.empty()) {
      auto it = import_stack_.back()->find(name);
      if (it != import_stack_.back()->end()) {
        // Imports are immutable bindings (array aliases, functions,
        // state params); handing out a mutable pointer is safe because
        // assignment to them is rejected during path resolution.
        return const_cast<Value*>(&it->second);
      }
    }
    auto it = scopes_.front().find(name);
    if (it != scopes_.front().end()) return &it->second;
    return nullptr;
  }

  void count_node() {
    ++nodes_;
    if (options_.max_nodes != 0 && nodes_ > options_.max_nodes) {
      throw Trap{ExecStatus::fuel_exhausted};
    }
  }

  StateBlock* block(lang::Scope scope) {
    StateBlock* b = blocks_[static_cast<int>(scope)];
    if (b == nullptr) throw Trap{ExecStatus::bad_state_slot};
    return b;
  }

  // --- State access helpers ---------------------------------------------

  struct ArrayAt {
    lang::Scope scope;
    std::uint16_t slot;
    std::uint16_t stride;
    std::string name;
  };

  // Resolves a path to either a scalar location, an array element (with
  // evaluated flat index) or an array length. Mirrors the compiler.
  enum class PathKind { local, state_scalar, array_elem, array_len };
  struct Resolved {
    PathKind kind;
    Value* local = nullptr;
    lang::Scope scope = lang::Scope::packet;
    std::uint16_t slot = 0;
    std::int64_t flat_index = 0;
  };

  Resolved resolve_path(const Path& path) {
    Value* root = lookup(path.root);
    if (root == nullptr) {
      throw LangError("unbound variable '" + path.root + "'", path.loc);
    }

    if (root->kind == Value::Kind::integer) {
      if (!path.elems.empty()) {
        throw LangError("'" + path.root + "' has no fields", path.loc);
      }
      Resolved r;
      r.kind = PathKind::local;
      r.local = root;
      return r;
    }
    if (root->kind == Value::Kind::function) {
      throw LangError("function '" + path.root + "' used as a value",
                      path.loc);
    }

    // Array alias or state parameter.
    ArrayAt arr;
    std::size_t first_elem = 0;
    if (is_state_param(*root)) {
      if (path.elems.empty() || path.elems[0].field.empty()) {
        throw LangError("state parameter '" + path.root +
                        "' must be followed by a field",
                        path.loc);
      }
      const std::string& field = path.elems[0].field;
      const auto slot = schema_.find(root->field.scope, field);
      if (!slot) {
        throw LangError("unknown field '" + field + "'", path.loc);
      }
      if (slot->kind == FieldKind::scalar) {
        if (path.elems.size() != 1) {
          throw LangError("scalar field '" + field + "' has no sub-fields",
                          path.loc);
        }
        Resolved r;
        r.kind = PathKind::state_scalar;
        r.scope = slot->scope;
        r.slot = slot->slot;
        return r;
      }
      arr = ArrayAt{slot->scope, slot->slot, slot->stride, field};
      first_elem = 1;
    } else {
      arr = ArrayAt{root->field.scope, root->field.slot, root->field.stride,
                    root->field_name};
    }

    const std::size_t remaining = path.elems.size() - first_elem;
    if (remaining == 1 && path.elems[first_elem].field == "length") {
      Resolved r;
      r.kind = PathKind::array_len;
      r.scope = arr.scope;
      r.slot = arr.slot;
      return r;
    }
    if (remaining == 0 || !path.elems[first_elem].index) {
      throw LangError("array '" + arr.name + "' must be indexed", path.loc);
    }
    std::int64_t index = eval(path.elems[first_elem].index.get());
    if (arr.stride > 1) {
      if (remaining != 2 || path.elems[first_elem + 1].field.empty()) {
        throw LangError("record array '" + arr.name +
                        "' must be accessed as [i].field",
                        path.loc);
      }
      const int offset = schema_.record_field_offset(
          arr.scope, arr.name, path.elems[first_elem + 1].field);
      if (offset < 0) {
        throw LangError("no record field '" +
                        path.elems[first_elem + 1].field + "'",
                        path.loc);
      }
      index = wrap_add(wrap_mul(index, arr.stride), offset);
    } else if (remaining != 1) {
      throw LangError("array '" + arr.name + "' elements are plain values",
                      path.loc);
    }
    Resolved r;
    r.kind = PathKind::array_elem;
    r.scope = arr.scope;
    r.slot = arr.slot;
    r.flat_index = index;
    return r;
  }

  std::int64_t& array_cell(lang::Scope scope, std::uint16_t slot,
                           std::int64_t flat_index) {
    StateBlock* b = block(scope);
    if (slot >= b->arrays.size()) throw Trap{ExecStatus::bad_state_slot};
    auto& data = b->arrays[slot].data;
    if (flat_index < 0 ||
        flat_index >= static_cast<std::int64_t>(data.size())) {
      throw Trap{ExecStatus::out_of_bounds};
    }
    return data[static_cast<std::size_t>(flat_index)];
  }

  std::int64_t& scalar_cell(lang::Scope scope, std::uint16_t slot) {
    StateBlock* b = block(scope);
    if (slot >= b->scalars.size()) throw Trap{ExecStatus::bad_state_slot};
    return b->scalars[slot];
  }

  // --- Expression evaluation ----------------------------------------------

  std::int64_t eval(const Expr* e) {
    count_node();
    switch (e->kind) {
      case ExprKind::int_literal:
      case ExprKind::bool_literal:
        return e->int_value;

      case ExprKind::path_read: {
        const Resolved r = resolve_path(e->path);
        switch (r.kind) {
          case PathKind::local: return r.local->i;
          case PathKind::state_scalar: return scalar_cell(r.scope, r.slot);
          case PathKind::array_elem:
            return array_cell(r.scope, r.slot, r.flat_index);
          case PathKind::array_len: {
            StateBlock* b = block(r.scope);
            if (r.slot >= b->arrays.size()) {
              throw Trap{ExecStatus::bad_state_slot};
            }
            return b->arrays[r.slot].element_count();
          }
        }
        return 0;
      }

      case ExprKind::unary: {
        const std::int64_t v = eval(e->children[0].get());
        return e->unary_op == UnaryOp::neg ? wrap_neg(v) : (v == 0 ? 1 : 0);
      }

      case ExprKind::binary:
        return eval_binary(*e);

      case ExprKind::assign: {
        const Resolved r = resolve_path(e->path);
        if (r.kind == PathKind::array_len) {
          throw LangError("cannot assign to .length", e->loc);
        }
        const std::int64_t v = eval(e->children[0].get());
        switch (r.kind) {
          case PathKind::local: r.local->i = v; break;
          case PathKind::state_scalar: scalar_cell(r.scope, r.slot) = v; break;
          case PathKind::array_elem:
            array_cell(r.scope, r.slot, r.flat_index) = v;
            break;
          case PathKind::array_len: break;
        }
        return 0;  // unit
      }

      case ExprKind::let: {
        // Array aliases bind statically, everything else by value.
        if (e->children[0]->kind == ExprKind::path_read) {
          if (auto alias = try_alias(e->children[0]->path)) {
            scopes_.emplace_back();
            scopes_.back()[e->name] = *alias;
            const std::int64_t v = eval(e->children[1].get());
            scopes_.pop_back();
            return v;
          }
        }
        Value bound;
        bound.kind = Value::Kind::integer;
        bound.i = eval(e->children[0].get());
        scopes_.emplace_back();
        scopes_.back()[e->name] = bound;
        const std::int64_t v = eval(e->children[1].get());
        scopes_.pop_back();
        return v;
      }

      case ExprKind::let_fun: {
        Value fn;
        fn.kind = Value::Kind::function;
        fn.func = make_func(*e);
        scopes_.emplace_back();
        scopes_.back()[e->name] = fn;
        const std::int64_t v = eval(e->children[1].get());
        scopes_.pop_back();
        return v;
      }

      case ExprKind::if_else: {
        if (eval(e->children[0].get()) != 0) {
          return eval(e->children[1].get());
        }
        return e->children[2] != nullptr ? eval(e->children[2].get()) : 0;
      }

      case ExprKind::sequence: {
        std::int64_t v = 0;
        for (const auto& child : e->children) v = eval(child.get());
        return v;
      }

      case ExprKind::call:
        return eval_call(*e);

      case ExprKind::while_loop: {
        while (eval(e->children[0].get()) != 0) {
          eval(e->children[1].get());
          count_node();  // one unit per iteration, like the jmp
        }
        return 0;
      }
    }
    return 0;
  }

  std::int64_t eval_binary(const Expr& e) {
    // Short-circuit first.
    if (e.binary_op == BinaryOp::logical_and) {
      if (eval(e.children[0].get()) == 0) return 0;
      return eval(e.children[1].get()) != 0 ? 1 : 0;
    }
    if (e.binary_op == BinaryOp::logical_or) {
      if (eval(e.children[0].get()) != 0) return 1;
      return eval(e.children[1].get()) != 0 ? 1 : 0;
    }
    const std::int64_t a = eval(e.children[0].get());
    const std::int64_t b = eval(e.children[1].get());
    switch (e.binary_op) {
      case BinaryOp::add: return wrap_add(a, b);
      case BinaryOp::sub: return wrap_sub(a, b);
      case BinaryOp::mul: return wrap_mul(a, b);
      case BinaryOp::div:
        if (b == 0) throw Trap{ExecStatus::div_by_zero};
        return b == -1 ? wrap_neg(a) : a / b;
      case BinaryOp::mod:
        if (b == 0) throw Trap{ExecStatus::div_by_zero};
        return b == -1 ? 0 : a % b;
      case BinaryOp::eq: return a == b;
      case BinaryOp::ne: return a != b;
      case BinaryOp::lt: return a < b;
      case BinaryOp::le: return a <= b;
      case BinaryOp::gt: return a > b;
      case BinaryOp::ge: return a >= b;
      case BinaryOp::logical_and:
      case BinaryOp::logical_or: break;
    }
    return 0;
  }

  std::optional<Value> try_alias(const Path& path) {
    if (path.elems.size() != 1 || path.elems[0].field.empty()) {
      return std::nullopt;
    }
    Value* root = lookup(path.root);
    if (root == nullptr || !is_state_param(*root)) return std::nullopt;
    const auto slot = schema_.find(root->field.scope, path.elems[0].field);
    if (!slot || slot->kind == FieldKind::scalar) return std::nullopt;
    Value v;
    v.kind = Value::Kind::array_ref;
    v.field = *slot;
    v.field_name = path.elems[0].field;
    return v;
  }

  std::shared_ptr<FuncValue> make_func(const Expr& def) {
    auto fn = std::make_shared<FuncValue>();
    fn->definition = &def;
    std::set<std::string> bound;
    if (def.is_recursive) bound.insert(def.name);
    for (const auto& p : def.fun_params) bound.insert(p.name);
    std::vector<std::string> order;
    std::set<std::string> seen;
    collect_free(def.children[0].get(), bound, order, seen);
    for (const auto& name : order) {
      Value* v = lookup(name);
      if (v == nullptr) {
        throw LangError("unbound variable '" + name + "' in function '" +
                        def.name + "'",
                        def.loc);
      }
      if (v->kind == Value::Kind::integer) {
        fn->captures.push_back(name);
      } else {
        fn->imports.emplace(name, *v);
      }
    }
    return fn;
  }

  std::int64_t eval_call(const Expr& e) {
    if (is_builtin(e.name)) return eval_builtin(e);
    Value* target = lookup(e.name);
    if (target == nullptr || target->kind != Value::Kind::function) {
      throw LangError("call to unknown function '" + e.name + "'", e.loc);
    }
    const std::shared_ptr<FuncValue> fn = target->func;
    const Expr& def = *fn->definition;
    if (e.children.size() != def.fun_params.size()) {
      throw LangError("function '" + e.name + "' arity mismatch", e.loc);
    }

    // Evaluate arguments and capture values in the caller's scope.
    Scope frame;
    for (std::size_t i = 0; i < e.children.size(); ++i) {
      Value v;
      v.kind = Value::Kind::integer;
      v.i = eval(e.children[i].get());
      frame[def.fun_params[i].name] = v;
    }
    for (const auto& cap : fn->captures) {
      Value* v = lookup(cap);
      if (v == nullptr || v->kind != Value::Kind::integer) {
        throw LangError("captured variable '" + cap + "' not visible here",
                        e.loc);
      }
      frame.emplace(cap, *v);
    }
    if (def.is_recursive) {
      Value self;
      self.kind = Value::Kind::function;
      self.func = fn;
      frame.emplace(def.name, self);
    }

    if (depth_ >= options_.max_call_depth) {
      throw Trap{ExecStatus::call_depth_exceeded};
    }
    ++depth_;
    if (depth_ > max_depth_) max_depth_ = depth_;

    const std::size_t saved_base = frame_base_;
    scopes_.push_back(std::move(frame));
    frame_base_ = scopes_.size() - 1;
    import_stack_.push_back(&fn->imports);

    const std::int64_t result = eval(def.children[0].get());

    import_stack_.pop_back();
    scopes_.pop_back();
    frame_base_ = saved_base;
    --depth_;
    return result;
  }

  std::int64_t eval_builtin(const Expr& e) {
    auto need = [&](std::size_t n) {
      if (e.children.size() != n) {
        throw LangError("builtin '" + e.name + "' arity mismatch", e.loc);
      }
    };
    if (e.name == "len") {
      need(1);
      if (e.children[0]->kind != ExprKind::path_read) {
        throw LangError("len() takes an array field", e.loc);
      }
      const Path& path = e.children[0]->path;
      // Whole-array resolution.
      if (auto alias = try_alias(path)) {
        StateBlock* b = block(alias->field.scope);
        if (alias->field.slot >= b->arrays.size()) {
          throw Trap{ExecStatus::bad_state_slot};
        }
        return b->arrays[alias->field.slot].element_count();
      }
      Value* root = lookup(path.root);
      if (root != nullptr && root->kind == Value::Kind::array_ref &&
          !is_state_param(*root) && path.elems.empty()) {
        StateBlock* b = block(root->field.scope);
        if (root->field.slot >= b->arrays.size()) {
          throw Trap{ExecStatus::bad_state_slot};
        }
        return b->arrays[root->field.slot].element_count();
      }
      throw LangError("len() takes an array field", e.loc);
    }
    if (e.name == "rand") {
      need(1);
      const std::int64_t n = eval(e.children[0].get());
      if (n <= 0) throw Trap{ExecStatus::bad_rand_bound};
      return static_cast<std::int64_t>(
          rng_.below(static_cast<std::uint64_t>(n)));
    }
    if (e.name == "clock") {
      need(0);
      return clock_ns_;
    }
    if (e.name == "min" || e.name == "max") {
      need(2);
      const std::int64_t a = eval(e.children[0].get());
      const std::int64_t b = eval(e.children[1].get());
      return e.name == "min" ? std::min(a, b) : std::max(a, b);
    }
    need(1);  // abs
    const std::int64_t v = eval(e.children[0].get());
    return v < 0 ? wrap_neg(v) : v;
  }

  const StateSchema& schema_;
  util::Rng& rng_;
  std::int64_t clock_ns_;
  AstEvalOptions options_;
  StateBlock* blocks_[kNumScopes];

  std::vector<Scope> scopes_;
  std::vector<const std::map<std::string, Value>*> import_stack_;
  std::size_t frame_base_ = 0;
  std::uint32_t depth_ = 0;
  std::uint32_t max_depth_ = 0;
  std::uint64_t nodes_ = 0;
};

}  // namespace

ExecResult ast_eval(const Program& program, const StateSchema& schema,
                    StateBlock* packet, StateBlock* message,
                    StateBlock* global, util::Rng& rng,
                    std::int64_t clock_ns, const AstEvalOptions& options) {
  Evaluator evaluator(schema, packet, message, global, rng, clock_ns,
                      options);
  return evaluator.run(program);
}

}  // namespace eden::lang
