// Token definitions for the Eden Action Language (EAL).
//
// EAL is the F# subset described in the paper (Section 3.4.2): basic
// arithmetic, assignments, function definitions and basic control flow.
// No objects, exceptions or floating point.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "lang/source_loc.h"

namespace eden::lang {

enum class TokenKind : std::uint8_t {
  // Literals / identifiers
  integer,
  identifier,
  // Keywords
  kw_fun,
  kw_let,
  kw_rec,
  kw_in,
  kw_if,
  kw_then,
  kw_elif,
  kw_else,
  kw_while,
  kw_do,
  kw_done,
  kw_true,
  kw_false,
  kw_not,
  kw_and,   // also spelled &&
  kw_or,    // also spelled ||
  // Punctuation / operators
  arrow,        // ->
  left_arrow,   // <-
  plus,
  minus,
  star,
  slash,
  percent,
  eq,           // =   (let-binding and equality, as in F#)
  ne,           // <>
  lt,
  le,
  gt,
  ge,
  lparen,
  rparen,
  lbracket,
  rbracket,
  dot,
  comma,
  semicolon,
  colon,
  end_of_input,
};

// Human-readable token-kind name for diagnostics.
std::string_view token_kind_name(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::end_of_input;
  std::string text;          // identifier spelling (empty otherwise)
  std::int64_t int_value = 0;  // for TokenKind::integer
  SourceLoc loc;
};

}  // namespace eden::lang
