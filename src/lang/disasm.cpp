#include "lang/disasm.h"

#include <cstdio>

namespace eden::lang {

std::string disassemble(const CompiledProgram& program) {
  std::string out;
  char buf[160];

  out += "; concurrency: ";
  out += concurrency_mode_name(program.concurrency);
  out += '\n';

  for (std::size_t i = 0; i < program.code.size(); ++i) {
    for (const auto& fn : program.functions) {
      if (fn.addr == i) {
        std::snprintf(buf, sizeof buf, "%s(nargs=%u, nlocals=%u):\n",
                      fn.name.c_str(), fn.nargs, fn.nlocals);
        out += buf;
      }
    }
    const Instr& instr = program.code[i];
    switch (instr.op) {
      case Op::push:
        std::snprintf(buf, sizeof buf, "%4zu  push         %lld\n", i,
                      static_cast<long long>(instr.imm));
        break;
      case Op::load_local:
      case Op::store_local:
        std::snprintf(buf, sizeof buf, "%4zu  %-12s local[%d]\n", i,
                      std::string(op_name(instr.op)).c_str(), instr.a);
        break;
      case Op::load_state:
      case Op::store_state:
      case Op::array_load:
      case Op::array_store:
      case Op::array_len:
        std::snprintf(buf, sizeof buf, "%4zu  %-12s %s.%u\n", i,
                      std::string(op_name(instr.op)).c_str(),
                      std::string(scope_name(operand_scope(instr.a))).c_str(),
                      operand_slot(instr.a));
        break;
      case Op::jmp:
      case Op::jz:
      case Op::jnz:
        std::snprintf(buf, sizeof buf, "%4zu  %-12s -> %d\n", i,
                      std::string(op_name(instr.op)).c_str(), instr.a);
        break;
      case Op::call:
        std::snprintf(
            buf, sizeof buf, "%4zu  call         %s\n", i,
            static_cast<std::size_t>(instr.a) < program.functions.size()
                ? program.functions[static_cast<std::size_t>(instr.a)]
                      .name.c_str()
                : "?");
        break;
      default:
        std::snprintf(buf, sizeof buf, "%4zu  %s\n", i,
                      std::string(op_name(instr.op)).c_str());
        break;
    }
    out += buf;
  }
  return out;
}

}  // namespace eden::lang
