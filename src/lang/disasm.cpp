#include "lang/disasm.h"

#include <cstdio>

namespace eden::lang {

std::string disassemble_instr(const CompiledProgram& program,
                              std::size_t pc) {
  char buf[160];
  const Instr& instr = program.code[pc];
  switch (instr.op) {
    case Op::push:
      std::snprintf(buf, sizeof buf, "push         %lld",
                    static_cast<long long>(instr.imm));
      break;
    case Op::load_local:
    case Op::store_local:
    case Op::tee_local:
      std::snprintf(buf, sizeof buf, "%-12s local[%d]",
                    std::string(op_name(instr.op)).c_str(), instr.a);
      break;
    case Op::load_local2:
      std::snprintf(buf, sizeof buf, "%-12s local[%d], local[%lld]",
                    std::string(op_name(instr.op)).c_str(), instr.a,
                    static_cast<long long>(instr.imm));
      break;
    case Op::load_state:
    case Op::store_state:
    case Op::array_load:
    case Op::array_store:
    case Op::array_len:
      std::snprintf(buf, sizeof buf, "%-12s %s.%u",
                    std::string(op_name(instr.op)).c_str(),
                    std::string(scope_name(operand_scope(instr.a))).c_str(),
                    operand_slot(instr.a));
      break;
    case Op::load_state_push:
      std::snprintf(buf, sizeof buf, "%-12s %s.%u, %lld",
                    std::string(op_name(instr.op)).c_str(),
                    std::string(scope_name(operand_scope(instr.a))).c_str(),
                    operand_slot(instr.a),
                    static_cast<long long>(instr.imm));
      break;
    case Op::jmp:
    case Op::jz:
    case Op::jnz:
    case Op::cmp_eq_jz:
    case Op::cmp_ne_jz:
    case Op::cmp_lt_jz:
    case Op::cmp_le_jz:
    case Op::cmp_gt_jz:
    case Op::cmp_ge_jz:
      std::snprintf(buf, sizeof buf, "%-12s -> %d",
                    std::string(op_name(instr.op)).c_str(), instr.a);
      break;
    case Op::cmp_eq_imm_jz:
    case Op::cmp_ne_imm_jz:
    case Op::cmp_lt_imm_jz:
    case Op::cmp_le_imm_jz:
    case Op::cmp_gt_imm_jz:
    case Op::cmp_ge_imm_jz:
    case Op::push_jmp:
      std::snprintf(buf, sizeof buf, "%-12s %lld -> %d",
                    std::string(op_name(instr.op)).c_str(),
                    static_cast<long long>(instr.imm), instr.a);
      break;
    case Op::inc_local:
      std::snprintf(buf, sizeof buf, "%-12s local[%d], %lld",
                    std::string(op_name(instr.op)).c_str(), instr.a,
                    static_cast<long long>(instr.imm));
      break;
    case Op::store_local2:
      std::snprintf(buf, sizeof buf, "%-12s local[%d], local[%lld]",
                    std::string(op_name(instr.op)).c_str(), instr.a,
                    static_cast<long long>(instr.imm));
      break;
    case Op::array_load_off:
    case Op::array_load_mul:
      std::snprintf(buf, sizeof buf, "%-14s %s.%u, %lld",
                    std::string(op_name(instr.op)).c_str(),
                    std::string(scope_name(operand_scope(instr.a))).c_str(),
                    operand_slot(instr.a),
                    static_cast<long long>(instr.imm));
      break;
    case Op::array_load_rec:
      std::snprintf(
          buf, sizeof buf, "%-14s %s.%u, *%llu+%llu",
          std::string(op_name(instr.op)).c_str(),
          std::string(scope_name(operand_scope(instr.a))).c_str(),
          operand_slot(instr.a),
          static_cast<unsigned long long>(
              static_cast<std::uint64_t>(instr.imm) >> 32),
          static_cast<unsigned long long>(
              static_cast<std::uint64_t>(instr.imm) & 0xffffffffull));
      break;
    case Op::call:
      std::snprintf(
          buf, sizeof buf, "call         %s",
          static_cast<std::size_t>(instr.a) < program.functions.size()
              ? program.functions[static_cast<std::size_t>(instr.a)]
                    .name.c_str()
              : "?");
      break;
    default:
      std::snprintf(buf, sizeof buf, "%s",
                    std::string(op_name(instr.op)).c_str());
      break;
  }
  return buf;
}

namespace {

void append_function_labels(std::string& out, const CompiledProgram& program,
                            std::size_t i) {
  char buf[160];
  for (const auto& fn : program.functions) {
    if (fn.addr == i) {
      std::snprintf(buf, sizeof buf, "%s(nargs=%u, nlocals=%u):\n",
                    fn.name.c_str(), fn.nargs, fn.nlocals);
      out += buf;
    }
  }
}

}  // namespace

std::string disassemble(const CompiledProgram& program) {
  std::string out;
  char buf[192];

  out += "; concurrency: ";
  out += concurrency_mode_name(program.concurrency);
  out += '\n';

  for (std::size_t i = 0; i < program.code.size(); ++i) {
    append_function_labels(out, program, i);
    std::snprintf(buf, sizeof buf, "%4zu  %s\n", i,
                  disassemble_instr(program, i).c_str());
    out += buf;
  }
  return out;
}

std::string disassemble(const CompiledProgram& program,
                        const telemetry::ProgramProfile& profile) {
  std::string out;
  char buf[224];

  const std::uint64_t total_count = profile.total_count();
  const std::uint64_t total_ticks = profile.total_ticks();
  std::snprintf(buf, sizeof buf,
                "; concurrency: %s\n"
                "; profile: %llu run%s, %llu instructions executed%s\n",
                std::string(concurrency_mode_name(program.concurrency))
                    .c_str(),
                static_cast<unsigned long long>(profile.runs),
                profile.runs == 1 ? "" : "s",
                static_cast<unsigned long long>(total_count),
                total_ticks > 0 ? ", cycle-sampled" : "");
  out += buf;

  for (std::size_t i = 0; i < program.code.size(); ++i) {
    append_function_labels(out, program, i);
    const std::uint64_t count =
        i < profile.counts.size() ? profile.counts[i] : 0;
    const std::uint64_t ticks =
        i < profile.ticks.size() ? profile.ticks[i] : 0;
    if (count == 0) {
      std::snprintf(buf, sizeof buf, "%4zu  %-30s ;          -\n", i,
                    disassemble_instr(program, i).c_str());
    } else if (total_ticks > 0) {
      std::snprintf(
          buf, sizeof buf, "%4zu  %-30s ;%11llu %5.1f%% %5.1f%%\n", i,
          disassemble_instr(program, i).c_str(),
          static_cast<unsigned long long>(count),
          100.0 * static_cast<double>(count) /
              static_cast<double>(total_count),
          100.0 * static_cast<double>(ticks) /
              static_cast<double>(total_ticks));
    } else {
      std::snprintf(
          buf, sizeof buf, "%4zu  %-30s ;%11llu %5.1f%%\n", i,
          disassemble_instr(program, i).c_str(),
          static_cast<unsigned long long>(count),
          100.0 * static_cast<double>(count) /
              static_cast<double>(total_count));
    }
    out += buf;
  }
  return out;
}

}  // namespace eden::lang
