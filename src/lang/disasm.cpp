#include "lang/disasm.h"

#include <cstdio>

namespace eden::lang {

std::string disassemble(const CompiledProgram& program) {
  std::string out;
  char buf[160];

  out += "; concurrency: ";
  out += concurrency_mode_name(program.concurrency);
  out += '\n';

  for (std::size_t i = 0; i < program.code.size(); ++i) {
    for (const auto& fn : program.functions) {
      if (fn.addr == i) {
        std::snprintf(buf, sizeof buf, "%s(nargs=%u, nlocals=%u):\n",
                      fn.name.c_str(), fn.nargs, fn.nlocals);
        out += buf;
      }
    }
    const Instr& instr = program.code[i];
    switch (instr.op) {
      case Op::push:
        std::snprintf(buf, sizeof buf, "%4zu  push         %lld\n", i,
                      static_cast<long long>(instr.imm));
        break;
      case Op::load_local:
      case Op::store_local:
      case Op::tee_local:
        std::snprintf(buf, sizeof buf, "%4zu  %-12s local[%d]\n", i,
                      std::string(op_name(instr.op)).c_str(), instr.a);
        break;
      case Op::load_local2:
        std::snprintf(buf, sizeof buf, "%4zu  %-12s local[%d], local[%lld]\n",
                      i, std::string(op_name(instr.op)).c_str(), instr.a,
                      static_cast<long long>(instr.imm));
        break;
      case Op::load_state:
      case Op::store_state:
      case Op::array_load:
      case Op::array_store:
      case Op::array_len:
        std::snprintf(buf, sizeof buf, "%4zu  %-12s %s.%u\n", i,
                      std::string(op_name(instr.op)).c_str(),
                      std::string(scope_name(operand_scope(instr.a))).c_str(),
                      operand_slot(instr.a));
        break;
      case Op::load_state_push:
        std::snprintf(buf, sizeof buf, "%4zu  %-12s %s.%u, %lld\n", i,
                      std::string(op_name(instr.op)).c_str(),
                      std::string(scope_name(operand_scope(instr.a))).c_str(),
                      operand_slot(instr.a),
                      static_cast<long long>(instr.imm));
        break;
      case Op::jmp:
      case Op::jz:
      case Op::jnz:
      case Op::cmp_eq_jz:
      case Op::cmp_ne_jz:
      case Op::cmp_lt_jz:
      case Op::cmp_le_jz:
      case Op::cmp_gt_jz:
      case Op::cmp_ge_jz:
        std::snprintf(buf, sizeof buf, "%4zu  %-12s -> %d\n", i,
                      std::string(op_name(instr.op)).c_str(), instr.a);
        break;
      case Op::cmp_eq_imm_jz:
      case Op::cmp_ne_imm_jz:
      case Op::cmp_lt_imm_jz:
      case Op::cmp_le_imm_jz:
      case Op::cmp_gt_imm_jz:
      case Op::cmp_ge_imm_jz:
      case Op::push_jmp:
        std::snprintf(buf, sizeof buf, "%4zu  %-12s %lld -> %d\n", i,
                      std::string(op_name(instr.op)).c_str(),
                      static_cast<long long>(instr.imm), instr.a);
        break;
      case Op::inc_local:
        std::snprintf(buf, sizeof buf, "%4zu  %-12s local[%d], %lld\n", i,
                      std::string(op_name(instr.op)).c_str(), instr.a,
                      static_cast<long long>(instr.imm));
        break;
      case Op::store_local2:
        std::snprintf(buf, sizeof buf, "%4zu  %-12s local[%d], local[%lld]\n",
                      i, std::string(op_name(instr.op)).c_str(), instr.a,
                      static_cast<long long>(instr.imm));
        break;
      case Op::array_load_off:
      case Op::array_load_mul:
        std::snprintf(buf, sizeof buf, "%4zu  %-14s %s.%u, %lld\n", i,
                      std::string(op_name(instr.op)).c_str(),
                      std::string(scope_name(operand_scope(instr.a))).c_str(),
                      operand_slot(instr.a),
                      static_cast<long long>(instr.imm));
        break;
      case Op::array_load_rec:
        std::snprintf(
            buf, sizeof buf, "%4zu  %-14s %s.%u, *%llu+%llu\n", i,
            std::string(op_name(instr.op)).c_str(),
            std::string(scope_name(operand_scope(instr.a))).c_str(),
            operand_slot(instr.a),
            static_cast<unsigned long long>(
                static_cast<std::uint64_t>(instr.imm) >> 32),
            static_cast<unsigned long long>(
                static_cast<std::uint64_t>(instr.imm) & 0xffffffffull));
        break;
      case Op::add_imm:
      case Op::mul_imm:
      case Op::cmp_eq_imm:
      case Op::cmp_ne_imm:
      case Op::cmp_lt_imm:
      case Op::cmp_le_imm:
      case Op::cmp_gt_imm:
      case Op::cmp_ge_imm:
        std::snprintf(buf, sizeof buf, "%4zu  %-12s %lld\n", i,
                      std::string(op_name(instr.op)).c_str(),
                      static_cast<long long>(instr.imm));
        break;
      case Op::call:
        std::snprintf(
            buf, sizeof buf, "%4zu  call         %s\n", i,
            static_cast<std::size_t>(instr.a) < program.functions.size()
                ? program.functions[static_cast<std::size_t>(instr.a)]
                      .name.c_str()
                : "?");
        break;
      default:
        std::snprintf(buf, sizeof buf, "%4zu  %s\n", i,
                      std::string(op_name(instr.op)).c_str());
        break;
    }
    out += buf;
  }
  return out;
}

}  // namespace eden::lang
