// Bytecode for the Eden enclave interpreter.
//
// The paper compiles action functions to bytecode executed by a
// stack-based interpreter "similar in spirit to the JVM" (Section 4.1),
// so the same program can run in the OS enclave and on a programmable
// NIC. CompiledProgram is that artifact: a flat instruction vector plus a
// function table, the derived concurrency mode, and the state-usage masks
// the runtime needs to marshal state in and out. It serializes to a
// portable byte stream (see serialize/deserialize) to model shipping
// programs from the controller to heterogeneous enclaves.
//
// The opcode set comes in two tiers. The base tier (push..halt) is what
// the compiler emits; its numbering is frozen by wire format version 1.
// The fused tier after `halt` holds superinstructions produced only by
// the optimizer (src/lang/optimizer.h): each one collapses a common
// 2- or 3-instruction sequence into a single dispatch. The second value
// in EDEN_OPCODE_LIST is the instruction's *step cost* — the number of
// base instructions it stands for — so ExecResult::steps keeps the same
// meaning at every optimization level (Fig. 12 overhead accounting).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "lang/state_schema.h"

namespace eden::lang {

// X(name, step_cost). Order is the wire encoding; append only.
#define EDEN_OPCODE_LIST(X)                                                  \
  /* Stack / constants */                                                    \
  X(push, 1)        /* push imm */                                           \
  X(pop, 1)         /* discard top */                                        \
  X(dup, 1)         /* duplicate top */                                      \
  /* Locals (frame-relative slot in `a`) */                                  \
  X(load_local, 1)                                                           \
  X(store_local, 1)                                                          \
  /* State scalars (`a` = scope << 16 | slot) */                             \
  X(load_state, 1)                                                           \
  X(store_state, 1)                                                          \
  /* State arrays (`a` = scope << 16 | slot) */                              \
  X(array_load, 1)  /* pops flat element index, pushes value */              \
  X(array_store, 1) /* pops value then flat element index, stores */         \
  X(array_len, 1)   /* pushes element count (records count as one) */       \
  /* Arithmetic (int64; div/mod trap on zero divisor) */                     \
  X(add, 1)                                                                  \
  X(sub, 1)                                                                  \
  X(mul, 1)                                                                  \
  X(div_, 1)                                                                 \
  X(mod_, 1)                                                                 \
  X(neg, 1)                                                                  \
  /* Comparisons / logic (produce 0 or 1) */                                 \
  X(cmp_eq, 1)                                                               \
  X(cmp_ne, 1)                                                               \
  X(cmp_lt, 1)                                                               \
  X(cmp_le, 1)                                                               \
  X(cmp_gt, 1)                                                               \
  X(cmp_ge, 1)                                                               \
  X(logical_not, 1)                                                          \
  /* Control flow (`a` = absolute instruction index) */                      \
  X(jmp, 1)                                                                  \
  X(jz, 1)  /* jump if popped value == 0 */                                  \
  X(jnz, 1)                                                                  \
  /* Functions (`a` = function table index) */                               \
  X(call, 1)                                                                 \
  X(ret, 1) /* pops return value, restores caller frame, pushes it */        \
  /* Built-ins */                                                            \
  X(rand_below, 1) /* pops n > 0, pushes uniform integer in [0, n) */        \
  X(clock_ns, 1)   /* pushes the runtime clock in nanoseconds */             \
  X(min2, 1)                                                                 \
  X(max2, 1)                                                                 \
  X(abs1, 1)                                                                 \
  X(halt, 1) /* ends the program; result = top of stack (0 if empty) */      \
  /* ---- Fused superinstructions (optimizer output only; wire v2) ---- */   \
  X(add_imm, 2)         /* push imm; add            tos += imm */            \
  X(mul_imm, 2)         /* push imm; mul            tos *= imm */            \
  X(tee_local, 2)       /* store_local a; load_local a  (tos kept) */        \
  X(load_local2, 2)     /* load_local a; load_local imm */                   \
  X(load_state_push, 2) /* load_state a; push imm */                         \
  X(cmp_eq_imm, 2)      /* push imm; cmp_eq         tos = tos == imm */      \
  X(cmp_ne_imm, 2)                                                           \
  X(cmp_lt_imm, 2)                                                           \
  X(cmp_le_imm, 2)                                                           \
  X(cmp_gt_imm, 2)                                                           \
  X(cmp_ge_imm, 2)                                                           \
  X(cmp_eq_jz, 2)       /* cmp_eq; jz a   pop b, pop x; if !(x==b) jump */   \
  X(cmp_ne_jz, 2)                                                            \
  X(cmp_lt_jz, 2)                                                            \
  X(cmp_le_jz, 2)                                                            \
  X(cmp_gt_jz, 2)                                                            \
  X(cmp_ge_jz, 2)                                                            \
  X(cmp_eq_imm_jz, 3)   /* push imm; cmp_eq; jz a   pop x; if !(x==imm) */   \
  X(cmp_ne_imm_jz, 3)                                                        \
  X(cmp_lt_imm_jz, 3)                                                        \
  X(cmp_le_imm_jz, 3)                                                        \
  X(cmp_gt_imm_jz, 3)                                                        \
  X(cmp_ge_imm_jz, 3)                                                        \
  X(push_jmp, 2)        /* push imm; jmp a */                                \
  X(inc_local, 3)       /* load_local a; add_imm k; store_local a */         \
  X(store_local2, 2)    /* store_local a; store_local imm */                 \
  X(array_load_off, 3)  /* add_imm k; array_load    idx = tos + k */         \
  X(array_load_mul, 3)  /* mul_imm s; array_load    idx = tos * s */         \
  X(array_load_rec, 5)  /* mul_imm s; add_imm k; array_load                  \
                           (imm = s << 32 | k)      idx = tos * s + k */

enum class Op : std::uint8_t {
#define EDEN_OP_ENUM(name, cost) name,
  EDEN_OPCODE_LIST(EDEN_OP_ENUM)
#undef EDEN_OP_ENUM
};

// Step cost per opcode: how many base instructions the op accounts for.
inline constexpr std::uint32_t kOpStepCost[] = {
#define EDEN_OP_COST(name, cost) cost,
    EDEN_OPCODE_LIST(EDEN_OP_COST)
#undef EDEN_OP_COST
};

inline constexpr std::size_t kNumOpcodes =
    sizeof(kOpStepCost) / sizeof(kOpStepCost[0]);
inline constexpr std::uint8_t kMaxOpByte =
    static_cast<std::uint8_t>(kNumOpcodes - 1);

inline constexpr std::uint32_t op_step_cost(Op op) {
  return kOpStepCost[static_cast<std::uint8_t>(op)];
}

// Ops after `halt` exist only in optimized programs (wire format v2).
inline constexpr bool is_fused_op(Op op) {
  return static_cast<std::uint8_t>(op) >
         static_cast<std::uint8_t>(Op::halt);
}

// Does `a` carry an absolute instruction index (branch target)?
inline constexpr bool is_branch_op(Op op) {
  switch (op) {
    case Op::jmp:
    case Op::jz:
    case Op::jnz:
    case Op::cmp_eq_jz:
    case Op::cmp_ne_jz:
    case Op::cmp_lt_jz:
    case Op::cmp_le_jz:
    case Op::cmp_gt_jz:
    case Op::cmp_ge_jz:
    case Op::cmp_eq_imm_jz:
    case Op::cmp_ne_imm_jz:
    case Op::cmp_lt_imm_jz:
    case Op::cmp_le_imm_jz:
    case Op::cmp_gt_imm_jz:
    case Op::cmp_ge_imm_jz:
    case Op::push_jmp:
      return true;
    default:
      return false;
  }
}

std::string_view op_name(Op op);

// Optimization level for the compile -> optimize -> install pipeline.
// O0 is the direct compiler output; O1 runs the peephole optimizer
// (constant folding, dead push/pop elimination, jump threading,
// superinstruction fusion). O1 never changes results for valid
// programs; it may use *fewer* resources (steps, stack), so resource
// traps that fire exactly at a limit under O0 can succeed under O1.
enum class OptLevel : std::uint8_t {
  O0 = 0,
  O1 = 1,
};

// Fixed-width instruction word. `a` carries slot/target/function operands;
// `imm` carries push constants. A fixed width costs a little space but
// keeps decode trivial — the paper makes the same simplicity trade-off.
// Fused ops use both fields, e.g. cmp_lt_imm_jz compares against `imm`
// and branches to `a`; load_local2 loads slots `a` then `imm`.
struct Instr {
  Op op = Op::halt;
  std::int32_t a = 0;
  std::int64_t imm = 0;
};

inline constexpr std::int32_t state_operand(Scope scope, std::uint16_t slot) {
  return (static_cast<std::int32_t>(scope) << 16) | slot;
}
inline constexpr Scope operand_scope(std::int32_t a) {
  return static_cast<Scope>((a >> 16) & 0xff);
}
inline constexpr std::uint16_t operand_slot(std::int32_t a) {
  return static_cast<std::uint16_t>(a & 0xffff);
}

struct FunctionInfo {
  std::string name;
  std::uint32_t addr = 0;    // entry instruction index
  std::uint16_t nargs = 0;   // explicit args + captured values
  std::uint16_t nlocals = 0; // total frame size including args
};

// Concurrency mode derived from the state access annotations
// (Section 3.4.4): writable global state fully serializes the function;
// writable message state serializes packets of the same message; a
// function that only writes packet state can run fully in parallel.
enum class ConcurrencyMode : std::uint8_t {
  parallel = 0,
  per_message = 1,
  serialized = 2,
};

std::string_view concurrency_mode_name(ConcurrencyMode mode);

// Which state slots a program touches, as bitmasks (bit i = slot i).
// The enclave runtime consults these to copy in only what the function
// reads and to write back only what it may have written.
struct StateUsage {
  std::uint64_t scalar_read[kNumScopes] = {0, 0, 0};
  std::uint64_t scalar_write[kNumScopes] = {0, 0, 0};
  std::uint64_t array_read[kNumScopes] = {0, 0, 0};
  std::uint64_t array_write[kNumScopes] = {0, 0, 0};

  bool writes_scope(Scope scope) const {
    const int s = static_cast<int>(scope);
    return scalar_write[s] != 0 || array_write[s] != 0;
  }
  bool touches_scope(Scope scope) const {
    const int s = static_cast<int>(scope);
    return scalar_read[s] != 0 || array_read[s] != 0 || writes_scope(scope);
  }
};

struct CompiledProgram {
  std::vector<Instr> code;
  std::vector<FunctionInfo> functions;  // functions[0] is the entry point
  ConcurrencyMode concurrency = ConcurrencyMode::parallel;
  StateUsage usage;
  std::string source_name;  // diagnostic label, not semantically meaningful

  // Set only after verify_program (optimizer.h) succeeded against the
  // schema and limits the program will run under; lets the interpreter
  // take the pre-verified fast path. Never serialized: a program
  // arriving over the wire must be re-verified by its installer.
  bool preverified = false;

  // Portable binary encoding (little-endian, "EDBC" magic + version).
  // Version 1 covers the base opcode tier; programs containing fused
  // superinstructions are written as version 2.
  std::vector<std::uint8_t> serialize() const;
  // Throws LangError on malformed input.
  static CompiledProgram deserialize(std::span<const std::uint8_t> bytes);
};

}  // namespace eden::lang
