// Bytecode for the Eden enclave interpreter.
//
// The paper compiles action functions to bytecode executed by a
// stack-based interpreter "similar in spirit to the JVM" (Section 4.1),
// so the same program can run in the OS enclave and on a programmable
// NIC. CompiledProgram is that artifact: a flat instruction vector plus a
// function table, the derived concurrency mode, and the state-usage masks
// the runtime needs to marshal state in and out. It serializes to a
// portable byte stream (see serialize/deserialize) to model shipping
// programs from the controller to heterogeneous enclaves.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "lang/state_schema.h"

namespace eden::lang {

enum class Op : std::uint8_t {
  // Stack / constants
  push,         // push imm
  pop,          // discard top
  dup,          // duplicate top
  // Locals (frame-relative slot in `a`)
  load_local,
  store_local,
  // State scalars (`a` = scope << 16 | slot)
  load_state,
  store_state,
  // State arrays (`a` = scope << 16 | slot)
  array_load,   // pops flat element index, pushes value
  array_store,  // pops value then flat element index, stores
  array_len,    // pushes element count (records count as one element)
  // Arithmetic (all operate on int64; div/mod trap on zero divisor)
  add, sub, mul, div_, mod_, neg,
  // Comparisons / logic (produce 0 or 1)
  cmp_eq, cmp_ne, cmp_lt, cmp_le, cmp_gt, cmp_ge, logical_not,
  // Control flow (`a` = absolute instruction index)
  jmp,
  jz,           // jump if popped value == 0
  jnz,
  // Functions (`a` = function table index)
  call,
  ret,          // pops return value, restores caller frame, pushes it
  // Built-ins
  rand_below,   // pops n > 0, pushes uniform integer in [0, n)
  clock_ns,     // pushes the runtime clock in nanoseconds
  min2, max2, abs1,
  halt,         // ends the program; result = top of stack (0 if empty)
};

std::string_view op_name(Op op);

// Fixed-width instruction word. `a` carries slot/target/function operands;
// `imm` carries push constants. A fixed width costs a little space but
// keeps decode trivial — the paper makes the same simplicity trade-off.
struct Instr {
  Op op = Op::halt;
  std::int32_t a = 0;
  std::int64_t imm = 0;
};

inline constexpr std::int32_t state_operand(Scope scope, std::uint16_t slot) {
  return (static_cast<std::int32_t>(scope) << 16) | slot;
}
inline constexpr Scope operand_scope(std::int32_t a) {
  return static_cast<Scope>((a >> 16) & 0xff);
}
inline constexpr std::uint16_t operand_slot(std::int32_t a) {
  return static_cast<std::uint16_t>(a & 0xffff);
}

struct FunctionInfo {
  std::string name;
  std::uint32_t addr = 0;    // entry instruction index
  std::uint16_t nargs = 0;   // explicit args + captured values
  std::uint16_t nlocals = 0; // total frame size including args
};

// Concurrency mode derived from the state access annotations
// (Section 3.4.4): writable global state fully serializes the function;
// writable message state serializes packets of the same message; a
// function that only writes packet state can run fully in parallel.
enum class ConcurrencyMode : std::uint8_t {
  parallel = 0,
  per_message = 1,
  serialized = 2,
};

std::string_view concurrency_mode_name(ConcurrencyMode mode);

// Which state slots a program touches, as bitmasks (bit i = slot i).
// The enclave runtime consults these to copy in only what the function
// reads and to write back only what it may have written.
struct StateUsage {
  std::uint64_t scalar_read[kNumScopes] = {0, 0, 0};
  std::uint64_t scalar_write[kNumScopes] = {0, 0, 0};
  std::uint64_t array_read[kNumScopes] = {0, 0, 0};
  std::uint64_t array_write[kNumScopes] = {0, 0, 0};

  bool writes_scope(Scope scope) const {
    const int s = static_cast<int>(scope);
    return scalar_write[s] != 0 || array_write[s] != 0;
  }
  bool touches_scope(Scope scope) const {
    const int s = static_cast<int>(scope);
    return scalar_read[s] != 0 || array_read[s] != 0 || writes_scope(scope);
  }
};

struct CompiledProgram {
  std::vector<Instr> code;
  std::vector<FunctionInfo> functions;  // functions[0] is the entry point
  ConcurrencyMode concurrency = ConcurrencyMode::parallel;
  StateUsage usage;
  std::string source_name;  // diagnostic label, not semantically meaningful

  // Portable binary encoding (little-endian, "EDBC" magic + version).
  std::vector<std::uint8_t> serialize() const;
  // Throws LangError on malformed input.
  static CompiledProgram deserialize(std::span<const std::uint8_t> bytes);
};

}  // namespace eden::lang
