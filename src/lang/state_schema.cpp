#include "lang/state_schema.h"

#include <stdexcept>

namespace eden::lang {

std::string_view scope_name(Scope scope) {
  switch (scope) {
    case Scope::packet: return "packet";
    case Scope::message: return "message";
    case Scope::global: return "global";
  }
  return "?";
}

StateSchema& StateSchema::add(Scope scope, FieldDef field) {
  const int s = static_cast<int>(scope);
  if (field.name.empty()) {
    throw std::invalid_argument("state field name must not be empty");
  }
  for (const auto& existing : fields_[s]) {
    if (existing.name == field.name) {
      throw std::invalid_argument("duplicate state field '" + field.name +
                                  "' in scope " +
                                  std::string(scope_name(scope)));
    }
  }
  if (field.kind == FieldKind::record_array && field.record_fields.empty()) {
    throw std::invalid_argument("record array '" + field.name +
                                "' needs at least one record field");
  }

  FieldSlot slot;
  slot.scope = scope;
  slot.kind = field.kind;
  slot.access = field.access;
  if (field.kind == FieldKind::scalar) {
    slot.slot = static_cast<std::uint16_t>(scalar_counts_[s]++);
    slot.stride = 1;
  } else {
    slot.slot = static_cast<std::uint16_t>(array_counts_[s]++);
    slot.stride = field.kind == FieldKind::record_array
                      ? static_cast<std::uint16_t>(field.record_fields.size())
                      : 1;
  }
  slots_[s].push_back(slot);
  fields_[s].push_back(std::move(field));
  return *this;
}

StateSchema& StateSchema::scalar(Scope scope, std::string name, Access access,
                                 std::string header_map,
                                 std::int64_t default_value) {
  FieldDef f;
  f.name = std::move(name);
  f.access = access;
  f.kind = FieldKind::scalar;
  f.header_map = std::move(header_map);
  f.default_value = default_value;
  return add(scope, std::move(f));
}

StateSchema& StateSchema::array(Scope scope, std::string name, Access access) {
  FieldDef f;
  f.name = std::move(name);
  f.access = access;
  f.kind = FieldKind::array;
  return add(scope, std::move(f));
}

StateSchema& StateSchema::record_array(Scope scope, std::string name,
                                       Access access,
                                       std::vector<std::string> record_fields) {
  FieldDef f;
  f.name = std::move(name);
  f.access = access;
  f.kind = FieldKind::record_array;
  f.record_fields = std::move(record_fields);
  return add(scope, std::move(f));
}

std::optional<FieldSlot> StateSchema::find(Scope scope,
                                           std::string_view name) const {
  const int s = static_cast<int>(scope);
  for (std::size_t i = 0; i < fields_[s].size(); ++i) {
    if (fields_[s][i].name == name) return slots_[s][i];
  }
  return std::nullopt;
}

const FieldDef* StateSchema::field_def(Scope scope,
                                       std::string_view name) const {
  const int s = static_cast<int>(scope);
  for (const auto& f : fields_[s]) {
    if (f.name == name) return &f;
  }
  return nullptr;
}

int StateSchema::record_field_offset(Scope scope, std::string_view array_name,
                                     std::string_view field) const {
  const FieldDef* def = field_def(scope, array_name);
  if (def == nullptr || def->kind != FieldKind::record_array) return -1;
  for (std::size_t i = 0; i < def->record_fields.size(); ++i) {
    if (def->record_fields[i] == field) return static_cast<int>(i);
  }
  return -1;
}

StateBlock StateBlock::from_schema(const StateSchema& schema, Scope scope) {
  StateBlock block;
  block.scalars.resize(schema.scalar_count(scope), 0);
  block.arrays.resize(schema.array_count(scope));
  for (const auto& f : schema.fields(scope)) {
    const auto slot = schema.find(scope, f.name);
    if (f.kind == FieldKind::scalar) {
      block.scalars[slot->slot] = f.default_value;
    } else {
      block.arrays[slot->slot].stride = slot->stride;
    }
  }
  return block;
}

}  // namespace eden::lang
