// Source positions and the error type shared by the EAL front end.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace eden::lang {

struct SourceLoc {
  std::uint32_t line = 1;    // 1-based
  std::uint32_t column = 1;  // 1-based

  std::string to_string() const {
    return std::to_string(line) + ":" + std::to_string(column);
  }
};

// Thrown by the lexer, parser and compiler (all of which run at the
// controller, never on the data path) on malformed programs.
class LangError : public std::runtime_error {
 public:
  LangError(const std::string& message, SourceLoc loc)
      : std::runtime_error(loc.to_string() + ": " + message), loc_(loc) {}

  SourceLoc loc() const { return loc_; }

 private:
  SourceLoc loc_;
};

}  // namespace eden::lang
