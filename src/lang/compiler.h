// Compiler from EAL abstract syntax to enclave bytecode.
//
// Mirrors the paper's Section 3.4.4: the hard part of compilation is
// resolving the function's state dependencies against the annotated
// schema — which fields it reads and writes, in which scope — and
// deriving from the access annotations the concurrency mode under which
// the enclave may run it. The translation of the AST itself is
// straightforward; tail recursion is compiled to a loop as in the paper.
#pragma once

#include <string_view>

#include "lang/ast.h"
#include "lang/bytecode.h"
#include "lang/state_schema.h"

namespace eden::lang {

struct CompileOptions {
  // Compile self tail calls to jumps (the paper's optimization). Exposed
  // so the ablation benchmark can measure its effect.
  bool tail_call_optimization = true;
  // O1 runs the post-compile bytecode optimizer (lang/optimizer.h).
  // Defaults to O0 here so the raw translation stays inspectable; the
  // enclave install path optimizes at its own (default O1) level.
  OptLevel opt_level = OptLevel::O0;
};

// Compiles a parsed program against a state schema. Throws LangError on
// any semantic error: unknown fields, writes to read-only state, unbound
// variables, arity mismatches, malformed array accesses.
CompiledProgram compile(const Program& program, const StateSchema& schema,
                        const CompileOptions& options = {},
                        std::string source_name = {});

// Convenience: parse + compile in one step.
CompiledProgram compile_source(std::string_view source,
                               const StateSchema& schema,
                               const CompileOptions& options = {},
                               std::string source_name = {});

}  // namespace eden::lang
