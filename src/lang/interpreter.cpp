#include "lang/interpreter.h"

#include <chrono>

namespace eden::lang {

std::string_view exec_status_name(ExecStatus status) {
  switch (status) {
    case ExecStatus::ok: return "ok";
    case ExecStatus::div_by_zero: return "div_by_zero";
    case ExecStatus::out_of_bounds: return "out_of_bounds";
    case ExecStatus::bad_state_slot: return "bad_state_slot";
    case ExecStatus::stack_overflow: return "stack_overflow";
    case ExecStatus::stack_underflow: return "stack_underflow";
    case ExecStatus::local_overflow: return "local_overflow";
    case ExecStatus::call_depth_exceeded: return "call_depth_exceeded";
    case ExecStatus::fuel_exhausted: return "fuel_exhausted";
    case ExecStatus::bad_rand_bound: return "bad_rand_bound";
    case ExecStatus::invalid_program: return "invalid_program";
  }
  return "?";
}

namespace {

std::int64_t default_clock(void*) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Wrapping arithmetic without signed-overflow UB.
inline std::int64_t wrap_add(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}
inline std::int64_t wrap_sub(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                   static_cast<std::uint64_t>(b));
}
inline std::int64_t wrap_mul(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                   static_cast<std::uint64_t>(b));
}
inline std::int64_t wrap_neg(std::int64_t a) {
  return static_cast<std::int64_t>(-static_cast<std::uint64_t>(a));
}

}  // namespace

Interpreter::Interpreter(ExecLimits limits, std::uint64_t rng_seed)
    : limits_(limits), rng_(rng_seed) {
  stack_.resize(limits_.max_operand_stack);
  locals_.resize(limits_.max_locals);
  frames_.reserve(limits_.max_call_depth);
}

ExecResult Interpreter::execute(const CompiledProgram& program,
                                StateBlock* packet, StateBlock* message,
                                StateBlock* global) {
  ExecResult result;
  if (program.functions.empty() || program.code.empty()) {
    result.status = ExecStatus::invalid_program;
    return result;
  }

  StateBlock* blocks[kNumScopes] = {packet, message, global};
  const Instr* code = program.code.data();
  const std::size_t code_size = program.code.size();

  std::uint32_t pc = program.functions[0].addr;
  std::uint32_t sp = 0;  // operand stack pointer (next free)
  std::uint32_t locals_size = program.functions[0].nlocals;
  if (locals_size > limits_.max_locals) {
    result.status = ExecStatus::local_overflow;
    return result;
  }
  for (std::uint32_t i = 0; i < locals_size; ++i) locals_[i] = 0;
  frames_.clear();

  result.max_locals = locals_size;
  const std::uint64_t max_steps = limits_.max_steps;

  auto fail = [&](ExecStatus status) {
    result.status = status;
    return result;
  };

#define EDEN_NEED(n)                                   \
  do {                                                 \
    if (sp < (n)) return fail(ExecStatus::stack_underflow); \
  } while (0)

  for (;;) {
    if (pc >= code_size) return fail(ExecStatus::invalid_program);
    if (max_steps != 0 && result.steps >= max_steps) {
      return fail(ExecStatus::fuel_exhausted);
    }
    ++result.steps;
    const Instr instr = code[pc++];

    switch (instr.op) {
      case Op::push:
        if (sp >= limits_.max_operand_stack) {
          return fail(ExecStatus::stack_overflow);
        }
        stack_[sp++] = instr.imm;
        if (sp > result.max_stack) result.max_stack = sp;
        break;

      case Op::pop:
        EDEN_NEED(1);
        --sp;
        break;

      case Op::dup:
        EDEN_NEED(1);
        if (sp >= limits_.max_operand_stack) {
          return fail(ExecStatus::stack_overflow);
        }
        stack_[sp] = stack_[sp - 1];
        ++sp;
        if (sp > result.max_stack) result.max_stack = sp;
        break;

      case Op::load_local: {
        const std::uint32_t base =
            frames_.empty() ? 0 : frames_.back().locals_base;
        const std::uint32_t slot = base + static_cast<std::uint32_t>(instr.a);
        if (slot >= locals_size) return fail(ExecStatus::invalid_program);
        if (sp >= limits_.max_operand_stack) {
          return fail(ExecStatus::stack_overflow);
        }
        stack_[sp++] = locals_[slot];
        if (sp > result.max_stack) result.max_stack = sp;
        break;
      }

      case Op::store_local: {
        EDEN_NEED(1);
        const std::uint32_t base =
            frames_.empty() ? 0 : frames_.back().locals_base;
        const std::uint32_t slot = base + static_cast<std::uint32_t>(instr.a);
        if (slot >= locals_size) return fail(ExecStatus::invalid_program);
        locals_[slot] = stack_[--sp];
        break;
      }

      case Op::load_state: {
        const auto scope_index =
            static_cast<std::uint32_t>((instr.a >> 16) & 0xff);
        if (scope_index >= kNumScopes) {
          return fail(ExecStatus::invalid_program);
        }
        StateBlock* block = blocks[scope_index];
        const std::uint16_t slot = operand_slot(instr.a);
        if (block == nullptr || slot >= block->scalars.size()) {
          return fail(ExecStatus::bad_state_slot);
        }
        if (sp >= limits_.max_operand_stack) {
          return fail(ExecStatus::stack_overflow);
        }
        stack_[sp++] = block->scalars[slot];
        if (sp > result.max_stack) result.max_stack = sp;
        break;
      }

      case Op::store_state: {
        EDEN_NEED(1);
        const auto scope_index =
            static_cast<std::uint32_t>((instr.a >> 16) & 0xff);
        if (scope_index >= kNumScopes) {
          return fail(ExecStatus::invalid_program);
        }
        StateBlock* block = blocks[scope_index];
        const std::uint16_t slot = operand_slot(instr.a);
        if (block == nullptr || slot >= block->scalars.size()) {
          return fail(ExecStatus::bad_state_slot);
        }
        block->scalars[slot] = stack_[--sp];
        break;
      }

      case Op::array_load: {
        EDEN_NEED(1);
        const auto scope_index =
            static_cast<std::uint32_t>((instr.a >> 16) & 0xff);
        if (scope_index >= kNumScopes) {
          return fail(ExecStatus::invalid_program);
        }
        StateBlock* block = blocks[scope_index];
        const std::uint16_t slot = operand_slot(instr.a);
        if (block == nullptr || slot >= block->arrays.size()) {
          return fail(ExecStatus::bad_state_slot);
        }
        const ArrayValue& arr = block->arrays[slot];
        const std::int64_t index = stack_[sp - 1];
        if (index < 0 ||
            index >= static_cast<std::int64_t>(arr.data.size())) {
          return fail(ExecStatus::out_of_bounds);
        }
        stack_[sp - 1] = arr.data[static_cast<std::size_t>(index)];
        break;
      }

      case Op::array_store: {
        EDEN_NEED(2);
        const auto scope_index =
            static_cast<std::uint32_t>((instr.a >> 16) & 0xff);
        if (scope_index >= kNumScopes) {
          return fail(ExecStatus::invalid_program);
        }
        StateBlock* block = blocks[scope_index];
        const std::uint16_t slot = operand_slot(instr.a);
        if (block == nullptr || slot >= block->arrays.size()) {
          return fail(ExecStatus::bad_state_slot);
        }
        ArrayValue& arr = block->arrays[slot];
        const std::int64_t value = stack_[--sp];
        const std::int64_t index = stack_[--sp];
        if (index < 0 ||
            index >= static_cast<std::int64_t>(arr.data.size())) {
          return fail(ExecStatus::out_of_bounds);
        }
        arr.data[static_cast<std::size_t>(index)] = value;
        break;
      }

      case Op::array_len: {
        const auto scope_index =
            static_cast<std::uint32_t>((instr.a >> 16) & 0xff);
        if (scope_index >= kNumScopes) {
          return fail(ExecStatus::invalid_program);
        }
        StateBlock* block = blocks[scope_index];
        const std::uint16_t slot = operand_slot(instr.a);
        if (block == nullptr || slot >= block->arrays.size()) {
          return fail(ExecStatus::bad_state_slot);
        }
        if (sp >= limits_.max_operand_stack) {
          return fail(ExecStatus::stack_overflow);
        }
        stack_[sp++] = block->arrays[slot].element_count();
        if (sp > result.max_stack) result.max_stack = sp;
        break;
      }

      case Op::add:
        EDEN_NEED(2);
        stack_[sp - 2] = wrap_add(stack_[sp - 2], stack_[sp - 1]);
        --sp;
        break;
      case Op::sub:
        EDEN_NEED(2);
        stack_[sp - 2] = wrap_sub(stack_[sp - 2], stack_[sp - 1]);
        --sp;
        break;
      case Op::mul:
        EDEN_NEED(2);
        stack_[sp - 2] = wrap_mul(stack_[sp - 2], stack_[sp - 1]);
        --sp;
        break;
      case Op::div_: {
        EDEN_NEED(2);
        const std::int64_t b = stack_[sp - 1];
        const std::int64_t a = stack_[sp - 2];
        if (b == 0) return fail(ExecStatus::div_by_zero);
        stack_[sp - 2] = (b == -1) ? wrap_neg(a) : a / b;
        --sp;
        break;
      }
      case Op::mod_: {
        EDEN_NEED(2);
        const std::int64_t b = stack_[sp - 1];
        const std::int64_t a = stack_[sp - 2];
        if (b == 0) return fail(ExecStatus::div_by_zero);
        stack_[sp - 2] = (b == -1) ? 0 : a % b;
        --sp;
        break;
      }
      case Op::neg:
        EDEN_NEED(1);
        stack_[sp - 1] = wrap_neg(stack_[sp - 1]);
        break;

      case Op::cmp_eq:
        EDEN_NEED(2);
        stack_[sp - 2] = stack_[sp - 2] == stack_[sp - 1] ? 1 : 0;
        --sp;
        break;
      case Op::cmp_ne:
        EDEN_NEED(2);
        stack_[sp - 2] = stack_[sp - 2] != stack_[sp - 1] ? 1 : 0;
        --sp;
        break;
      case Op::cmp_lt:
        EDEN_NEED(2);
        stack_[sp - 2] = stack_[sp - 2] < stack_[sp - 1] ? 1 : 0;
        --sp;
        break;
      case Op::cmp_le:
        EDEN_NEED(2);
        stack_[sp - 2] = stack_[sp - 2] <= stack_[sp - 1] ? 1 : 0;
        --sp;
        break;
      case Op::cmp_gt:
        EDEN_NEED(2);
        stack_[sp - 2] = stack_[sp - 2] > stack_[sp - 1] ? 1 : 0;
        --sp;
        break;
      case Op::cmp_ge:
        EDEN_NEED(2);
        stack_[sp - 2] = stack_[sp - 2] >= stack_[sp - 1] ? 1 : 0;
        --sp;
        break;
      case Op::logical_not:
        EDEN_NEED(1);
        stack_[sp - 1] = stack_[sp - 1] == 0 ? 1 : 0;
        break;

      case Op::jmp:
        pc = static_cast<std::uint32_t>(instr.a);
        break;
      case Op::jz:
        EDEN_NEED(1);
        if (stack_[--sp] == 0) pc = static_cast<std::uint32_t>(instr.a);
        break;
      case Op::jnz:
        EDEN_NEED(1);
        if (stack_[--sp] != 0) pc = static_cast<std::uint32_t>(instr.a);
        break;

      case Op::call: {
        const auto findex = static_cast<std::size_t>(instr.a);
        if (findex >= program.functions.size()) {
          return fail(ExecStatus::invalid_program);
        }
        const FunctionInfo& fn = program.functions[findex];
        EDEN_NEED(fn.nargs);
        if (frames_.size() >= limits_.max_call_depth) {
          return fail(ExecStatus::call_depth_exceeded);
        }
        const std::uint32_t base = locals_size;
        const std::uint32_t new_size = base + fn.nlocals;
        if (new_size > limits_.max_locals) {
          return fail(ExecStatus::local_overflow);
        }
        for (std::uint32_t i = 0; i < fn.nlocals; ++i) {
          locals_[base + i] = 0;
        }
        sp -= fn.nargs;
        for (std::uint32_t i = 0; i < fn.nargs; ++i) {
          locals_[base + i] = stack_[sp + i];
        }
        frames_.push_back(Frame{pc, base, locals_size});
        locals_size = new_size;
        if (locals_size > result.max_locals) result.max_locals = locals_size;
        if (frames_.size() > result.max_depth) {
          result.max_depth = static_cast<std::uint32_t>(frames_.size());
        }
        pc = fn.addr;
        break;
      }

      case Op::ret: {
        EDEN_NEED(1);
        if (frames_.empty()) return fail(ExecStatus::invalid_program);
        const Frame frame = frames_.back();
        frames_.pop_back();
        locals_size = frame.caller_locals_size;
        pc = frame.return_pc;
        // Return value stays on top of the operand stack.
        break;
      }

      case Op::rand_below: {
        EDEN_NEED(1);
        const std::int64_t n = stack_[sp - 1];
        if (n <= 0) return fail(ExecStatus::bad_rand_bound);
        stack_[sp - 1] = static_cast<std::int64_t>(
            rng_.below(static_cast<std::uint64_t>(n)));
        break;
      }

      case Op::clock_ns:
        if (sp >= limits_.max_operand_stack) {
          return fail(ExecStatus::stack_overflow);
        }
        stack_[sp++] = clock_fn_ != nullptr ? clock_fn_(clock_ctx_)
                                            : default_clock(nullptr);
        if (sp > result.max_stack) result.max_stack = sp;
        break;

      case Op::min2:
        EDEN_NEED(2);
        stack_[sp - 2] =
            stack_[sp - 2] < stack_[sp - 1] ? stack_[sp - 2] : stack_[sp - 1];
        --sp;
        break;
      case Op::max2:
        EDEN_NEED(2);
        stack_[sp - 2] =
            stack_[sp - 2] > stack_[sp - 1] ? stack_[sp - 2] : stack_[sp - 1];
        --sp;
        break;
      case Op::abs1:
        EDEN_NEED(1);
        if (stack_[sp - 1] < 0) stack_[sp - 1] = wrap_neg(stack_[sp - 1]);
        break;

      case Op::halt:
        result.value = sp > 0 ? stack_[sp - 1] : 0;
        result.status = ExecStatus::ok;
        return result;
    }
  }
#undef EDEN_NEED
}

}  // namespace eden::lang
