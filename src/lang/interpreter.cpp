#include "lang/interpreter.h"

#include <chrono>

#include "telemetry/metrics.h"  // now_ticks(): header-inline, no link dep

// Threaded (computed-goto) dispatch on GCC/Clang; portable switch
// fallback elsewhere or with -DEDEN_NO_COMPUTED_GOTO. Both paths share
// the same opcode bodies via the EDEN_CASE / EDEN_NEXT macros below, so
// they cannot drift apart semantically.
#if (defined(__GNUC__) || defined(__clang__)) && \
    !defined(EDEN_NO_COMPUTED_GOTO)
#define EDEN_THREADED 1
#else
#define EDEN_THREADED 0
#endif

namespace eden::lang {

std::string_view exec_status_name(ExecStatus status) {
  switch (status) {
    case ExecStatus::ok: return "ok";
    case ExecStatus::div_by_zero: return "div_by_zero";
    case ExecStatus::out_of_bounds: return "out_of_bounds";
    case ExecStatus::bad_state_slot: return "bad_state_slot";
    case ExecStatus::stack_overflow: return "stack_overflow";
    case ExecStatus::stack_underflow: return "stack_underflow";
    case ExecStatus::local_overflow: return "local_overflow";
    case ExecStatus::call_depth_exceeded: return "call_depth_exceeded";
    case ExecStatus::fuel_exhausted: return "fuel_exhausted";
    case ExecStatus::bad_rand_bound: return "bad_rand_bound";
    case ExecStatus::invalid_program: return "invalid_program";
  }
  return "?";
}

namespace {

std::int64_t default_clock(void*) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Wrapping arithmetic without signed-overflow UB.
inline std::int64_t wrap_add(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}
inline std::int64_t wrap_sub(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                   static_cast<std::uint64_t>(b));
}
inline std::int64_t wrap_mul(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                   static_cast<std::uint64_t>(b));
}
inline std::int64_t wrap_neg(std::int64_t a) {
  return static_cast<std::int64_t>(-static_cast<std::uint64_t>(a));
}

}  // namespace

Interpreter::Interpreter(ExecLimits limits, std::uint64_t rng_seed)
    : limits_(limits), rng_(rng_seed) {
  // One extra slot in front of the operand stack: the top-of-stack
  // register scheme below unconditionally flushes `tos` into
  // spill[sp - 1], which for sp == 0 lands in this scratch slot.
  stack_.resize(static_cast<std::size_t>(limits_.max_operand_stack) + 1);
  locals_.resize(limits_.max_locals);
  frames_.reserve(limits_.max_call_depth);
}

ExecResult Interpreter::execute(const CompiledProgram& program,
                                StateBlock* packet, StateBlock* message,
                                StateBlock* global) {
  if (profile_ != nullptr) {
    if (program.preverified) {
      return execute_impl<true, true>(program, packet, message, global);
    }
    return execute_impl<false, true>(program, packet, message, global);
  }
  if (program.preverified) {
    return execute_impl<true, false>(program, packet, message, global);
  }
  return execute_impl<false, false>(program, packet, message, global);
}

// Operand-stack representation: the stack holds `sp` elements; elements
// [0, sp-2] live in spill[0..sp-2] and the top element lives in the
// `tos` register. spill[j] for j >= sp-1 is stale. spill points one
// past a scratch slot so the branch-free flush spill[sp-1] = tos is
// in-bounds even at sp == 0.
//
// Trusted mode (program.preverified) skips only checks that
// verify_program establishes statically: per-dispatch pc bounds, opcode
// range, state-operand scope, function index and nargs <= nlocals. All
// data-dependent guards — operand-stack depth, locals bounds, array
// bounds, call depth, fuel, null state blocks — run in both modes.
//
// Profiled mode (profile_ set) bumps a per-pc execution count on every
// fetch and, every profile_cycle_every_ fetches, attributes the ticks
// elapsed since the previous sample to the pc observed now. It is a
// separate instantiation so the normal data path carries no profiling
// branches at all.
template <bool Trusted, bool Profiled>
ExecResult Interpreter::execute_impl(const CompiledProgram& program,
                                     StateBlock* packet, StateBlock* message,
                                     StateBlock* global) {
  ExecResult result;
  if (program.functions.empty() || program.code.empty()) {
    result.status = ExecStatus::invalid_program;
    return result;
  }

  StateBlock* blocks[kNumScopes] = {packet, message, global};
  const Instr* const code = program.code.data();
  const std::size_t code_size = program.code.size();
  const std::uint32_t stack_cap = limits_.max_operand_stack;
  std::int64_t* const spill = stack_.data() + 1;
  std::int64_t* const locals = locals_.data();

  std::uint32_t pc = program.functions[0].addr;
  std::uint32_t sp = 0;
  std::int64_t tos = 0;
  std::uint32_t base = 0;  // locals base of the current frame
  std::uint32_t locals_size = program.functions[0].nlocals;
  if (locals_size > limits_.max_locals) {
    result.status = ExecStatus::local_overflow;
    return result;
  }
  for (std::uint32_t i = 0; i < locals_size; ++i) locals[i] = 0;
  frames_.clear();

  result.max_locals = locals_size;
  const std::uint64_t max_steps = limits_.max_steps;
  std::uint64_t steps = 0;
  std::uint32_t max_stack = 0;
  Instr instr{};
  std::uint8_t opb = 0;

  // Profiling state kept in locals so the fetch hook is a raw-pointer
  // add; the arrays are sized to the full code once up front.
  std::uint64_t* prof_counts = nullptr;
  std::uint64_t* prof_ticks = nullptr;
  std::uint32_t prof_cycle_every = 0;
  std::uint32_t prof_countdown = 0;
  std::uint64_t prof_last_tick = 0;
  if constexpr (Profiled) {
    profile_->ensure(code_size);
    ++profile_->runs;
    prof_counts = profile_->counts.data();
    prof_ticks = profile_->ticks.data();
    prof_cycle_every = profile_cycle_every_;
    // The countdown persists across executions (so short programs still
    // sample); the tick base resets here so a sample's delta never
    // includes time spent between executions.
    prof_countdown = profile_countdown_ != 0 ? profile_countdown_
                                             : prof_cycle_every;
    if (prof_cycle_every != 0) prof_last_tick = telemetry::now_ticks();
  }

#define EDEN_FAIL(st)                 \
  do {                                \
    result.status = ExecStatus::st;   \
    goto exec_done;                   \
  } while (0)

#define EDEN_NEED(n)                                 \
  do {                                               \
    if (sp < (n)) EDEN_FAIL(stack_underflow);        \
  } while (0)

#define EDEN_PUSH(v)                                          \
  do {                                                        \
    if (sp >= stack_cap) EDEN_FAIL(stack_overflow);           \
    spill[static_cast<std::ptrdiff_t>(sp) - 1] = tos;         \
    tos = (v);                                                \
    ++sp;                                                     \
    if (sp > max_stack) max_stack = sp;                       \
  } while (0)

#define EDEN_DROP()                                           \
  do {                                                        \
    --sp;                                                     \
    tos = spill[static_cast<std::ptrdiff_t>(sp) - 1];         \
  } while (0)

#define EDEN_BINOP(expr)                                             \
  do {                                                               \
    EDEN_NEED(2);                                                    \
    const std::int64_t rhs = tos;                                    \
    const std::int64_t lhs = spill[static_cast<std::ptrdiff_t>(sp) - 2]; \
    tos = (expr);                                                    \
    --sp;                                                            \
  } while (0)

// Fetch order matches the original interpreter exactly: pc bounds, then
// fuel, then decode. Fused ops charge the step count of the sequence
// they replaced (kOpStepCost) so Fig. 12-style accounting is stable
// across optimization levels.
#define EDEN_FETCH()                                                      \
  do {                                                                    \
    if constexpr (!Trusted) {                                             \
      if (pc >= code_size) EDEN_FAIL(invalid_program);                    \
    }                                                                     \
    if (max_steps != 0 && steps >= max_steps) EDEN_FAIL(fuel_exhausted);  \
    if constexpr (Profiled) {                                             \
      ++prof_counts[pc];                                                  \
      if (prof_cycle_every != 0 && --prof_countdown == 0) {               \
        prof_countdown = prof_cycle_every;                                \
        const std::uint64_t prof_t = telemetry::now_ticks();              \
        prof_ticks[pc] += prof_t - prof_last_tick;                        \
        prof_last_tick = prof_t;                                          \
      }                                                                   \
    }                                                                     \
    instr = code[pc++];                                                   \
    opb = static_cast<std::uint8_t>(instr.op);                            \
    if constexpr (!Trusted) {                                             \
      if (opb >= kNumOpcodes) EDEN_FAIL(invalid_program);                 \
    }                                                                     \
    steps += kOpStepCost[opb];                                            \
  } while (0)

#if EDEN_THREADED
#define EDEN_CASE(name) L_##name:
#define EDEN_NEXT()                \
  do {                             \
    EDEN_FETCH();                  \
    goto* jump_table[opb];         \
  } while (0)

  static const void* const jump_table[] = {
#define EDEN_OP_LABEL(name, cost) &&L_##name,
      EDEN_OPCODE_LIST(EDEN_OP_LABEL)
#undef EDEN_OP_LABEL
  };
  static_assert(sizeof(jump_table) / sizeof(jump_table[0]) == kNumOpcodes);
  EDEN_NEXT();
#else
#define EDEN_CASE(name) case Op::name:
#define EDEN_NEXT() break

  for (;;) {
    EDEN_FETCH();
    switch (instr.op) {
#endif

      EDEN_CASE(push) {
        EDEN_PUSH(instr.imm);
      }
      EDEN_NEXT();

      EDEN_CASE(pop) {
        EDEN_NEED(1);
        EDEN_DROP();
      }
      EDEN_NEXT();

      EDEN_CASE(dup) {
        EDEN_NEED(1);
        EDEN_PUSH(tos);
      }
      EDEN_NEXT();

      EDEN_CASE(load_local) {
        const std::uint32_t slot = base + static_cast<std::uint32_t>(instr.a);
        if (slot >= locals_size) EDEN_FAIL(invalid_program);
        EDEN_PUSH(locals[slot]);
      }
      EDEN_NEXT();

      EDEN_CASE(store_local) {
        EDEN_NEED(1);
        const std::uint32_t slot = base + static_cast<std::uint32_t>(instr.a);
        if (slot >= locals_size) EDEN_FAIL(invalid_program);
        locals[slot] = tos;
        EDEN_DROP();
      }
      EDEN_NEXT();

      EDEN_CASE(load_state) {
        const auto scope_index =
            static_cast<std::uint32_t>((instr.a >> 16) & 0xff);
        if constexpr (!Trusted) {
          if (scope_index >= static_cast<std::uint32_t>(kNumScopes)) {
            EDEN_FAIL(invalid_program);
          }
        }
        StateBlock* block = blocks[scope_index];
        const std::uint16_t slot = operand_slot(instr.a);
        if (block == nullptr || slot >= block->scalars.size()) {
          EDEN_FAIL(bad_state_slot);
        }
        EDEN_PUSH(block->scalars[slot]);
      }
      EDEN_NEXT();

      EDEN_CASE(store_state) {
        EDEN_NEED(1);
        const auto scope_index =
            static_cast<std::uint32_t>((instr.a >> 16) & 0xff);
        if constexpr (!Trusted) {
          if (scope_index >= static_cast<std::uint32_t>(kNumScopes)) {
            EDEN_FAIL(invalid_program);
          }
        }
        StateBlock* block = blocks[scope_index];
        const std::uint16_t slot = operand_slot(instr.a);
        if (block == nullptr || slot >= block->scalars.size()) {
          EDEN_FAIL(bad_state_slot);
        }
        block->scalars[slot] = tos;
        EDEN_DROP();
      }
      EDEN_NEXT();

      EDEN_CASE(array_load) {
        EDEN_NEED(1);
        const auto scope_index =
            static_cast<std::uint32_t>((instr.a >> 16) & 0xff);
        if constexpr (!Trusted) {
          if (scope_index >= static_cast<std::uint32_t>(kNumScopes)) {
            EDEN_FAIL(invalid_program);
          }
        }
        StateBlock* block = blocks[scope_index];
        const std::uint16_t slot = operand_slot(instr.a);
        if (block == nullptr || slot >= block->arrays.size()) {
          EDEN_FAIL(bad_state_slot);
        }
        const ArrayValue& arr = block->arrays[slot];
        if (tos < 0 || tos >= static_cast<std::int64_t>(arr.data.size())) {
          EDEN_FAIL(out_of_bounds);
        }
        tos = arr.data[static_cast<std::size_t>(tos)];
      }
      EDEN_NEXT();

      EDEN_CASE(array_store) {
        EDEN_NEED(2);
        const auto scope_index =
            static_cast<std::uint32_t>((instr.a >> 16) & 0xff);
        if constexpr (!Trusted) {
          if (scope_index >= static_cast<std::uint32_t>(kNumScopes)) {
            EDEN_FAIL(invalid_program);
          }
        }
        StateBlock* block = blocks[scope_index];
        const std::uint16_t slot = operand_slot(instr.a);
        if (block == nullptr || slot >= block->arrays.size()) {
          EDEN_FAIL(bad_state_slot);
        }
        ArrayValue& arr = block->arrays[slot];
        const std::int64_t value = tos;
        const std::int64_t index =
            spill[static_cast<std::ptrdiff_t>(sp) - 2];
        sp -= 2;
        tos = spill[static_cast<std::ptrdiff_t>(sp) - 1];
        if (index < 0 ||
            index >= static_cast<std::int64_t>(arr.data.size())) {
          EDEN_FAIL(out_of_bounds);
        }
        arr.data[static_cast<std::size_t>(index)] = value;
      }
      EDEN_NEXT();

      EDEN_CASE(array_len) {
        const auto scope_index =
            static_cast<std::uint32_t>((instr.a >> 16) & 0xff);
        if constexpr (!Trusted) {
          if (scope_index >= static_cast<std::uint32_t>(kNumScopes)) {
            EDEN_FAIL(invalid_program);
          }
        }
        StateBlock* block = blocks[scope_index];
        const std::uint16_t slot = operand_slot(instr.a);
        if (block == nullptr || slot >= block->arrays.size()) {
          EDEN_FAIL(bad_state_slot);
        }
        EDEN_PUSH(block->arrays[slot].element_count());
      }
      EDEN_NEXT();

      EDEN_CASE(add) {
        EDEN_BINOP(wrap_add(lhs, rhs));
      }
      EDEN_NEXT();

      EDEN_CASE(sub) {
        EDEN_BINOP(wrap_sub(lhs, rhs));
      }
      EDEN_NEXT();

      EDEN_CASE(mul) {
        EDEN_BINOP(wrap_mul(lhs, rhs));
      }
      EDEN_NEXT();

      EDEN_CASE(div_) {
        EDEN_NEED(2);
        const std::int64_t rhs = tos;
        const std::int64_t lhs = spill[static_cast<std::ptrdiff_t>(sp) - 2];
        if (rhs == 0) EDEN_FAIL(div_by_zero);
        tos = (rhs == -1) ? wrap_neg(lhs) : lhs / rhs;
        --sp;
      }
      EDEN_NEXT();

      EDEN_CASE(mod_) {
        EDEN_NEED(2);
        const std::int64_t rhs = tos;
        const std::int64_t lhs = spill[static_cast<std::ptrdiff_t>(sp) - 2];
        if (rhs == 0) EDEN_FAIL(div_by_zero);
        tos = (rhs == -1) ? 0 : lhs % rhs;
        --sp;
      }
      EDEN_NEXT();

      EDEN_CASE(neg) {
        EDEN_NEED(1);
        tos = wrap_neg(tos);
      }
      EDEN_NEXT();

      EDEN_CASE(cmp_eq) {
        EDEN_BINOP(lhs == rhs ? 1 : 0);
      }
      EDEN_NEXT();

      EDEN_CASE(cmp_ne) {
        EDEN_BINOP(lhs != rhs ? 1 : 0);
      }
      EDEN_NEXT();

      EDEN_CASE(cmp_lt) {
        EDEN_BINOP(lhs < rhs ? 1 : 0);
      }
      EDEN_NEXT();

      EDEN_CASE(cmp_le) {
        EDEN_BINOP(lhs <= rhs ? 1 : 0);
      }
      EDEN_NEXT();

      EDEN_CASE(cmp_gt) {
        EDEN_BINOP(lhs > rhs ? 1 : 0);
      }
      EDEN_NEXT();

      EDEN_CASE(cmp_ge) {
        EDEN_BINOP(lhs >= rhs ? 1 : 0);
      }
      EDEN_NEXT();

      EDEN_CASE(logical_not) {
        EDEN_NEED(1);
        tos = tos == 0 ? 1 : 0;
      }
      EDEN_NEXT();

      EDEN_CASE(jmp) {
        pc = static_cast<std::uint32_t>(instr.a);
      }
      EDEN_NEXT();

      EDEN_CASE(jz) {
        EDEN_NEED(1);
        const std::int64_t v = tos;
        EDEN_DROP();
        if (v == 0) pc = static_cast<std::uint32_t>(instr.a);
      }
      EDEN_NEXT();

      EDEN_CASE(jnz) {
        EDEN_NEED(1);
        const std::int64_t v = tos;
        EDEN_DROP();
        if (v != 0) pc = static_cast<std::uint32_t>(instr.a);
      }
      EDEN_NEXT();

      EDEN_CASE(call) {
        const auto findex = static_cast<std::size_t>(instr.a);
        if constexpr (!Trusted) {
          if (findex >= program.functions.size()) {
            EDEN_FAIL(invalid_program);
          }
        }
        const FunctionInfo& fn = program.functions[findex];
        if constexpr (!Trusted) {
          // A deserialized program may lie about its frame layout; args
          // beyond nlocals would smash the next frame's slots.
          if (fn.nargs > fn.nlocals) EDEN_FAIL(invalid_program);
        }
        EDEN_NEED(fn.nargs);
        if (frames_.size() >= limits_.max_call_depth) {
          EDEN_FAIL(call_depth_exceeded);
        }
        const std::uint32_t fbase = locals_size;
        const std::uint32_t new_size = fbase + fn.nlocals;
        if (new_size > limits_.max_locals) EDEN_FAIL(local_overflow);
        spill[static_cast<std::ptrdiff_t>(sp) - 1] = tos;  // flush cache
        for (std::uint32_t i = 0; i < fn.nlocals; ++i) locals[fbase + i] = 0;
        sp -= fn.nargs;
        for (std::uint32_t i = 0; i < fn.nargs; ++i) {
          locals[fbase + i] = spill[sp + i];
        }
        tos = spill[static_cast<std::ptrdiff_t>(sp) - 1];
        frames_.push_back(Frame{pc, fbase, locals_size});
        base = fbase;
        locals_size = new_size;
        if (locals_size > result.max_locals) result.max_locals = locals_size;
        if (frames_.size() > result.max_depth) {
          result.max_depth = static_cast<std::uint32_t>(frames_.size());
        }
        pc = fn.addr;
      }
      EDEN_NEXT();

      EDEN_CASE(ret) {
        EDEN_NEED(1);
        if (frames_.empty()) EDEN_FAIL(invalid_program);
        const Frame frame = frames_.back();
        frames_.pop_back();
        locals_size = frame.caller_locals_size;
        base = frames_.empty() ? 0 : frames_.back().locals_base;
        pc = frame.return_pc;
        // Return value stays cached in tos.
      }
      EDEN_NEXT();

      EDEN_CASE(rand_below) {
        EDEN_NEED(1);
        if (tos <= 0) EDEN_FAIL(bad_rand_bound);
        tos = static_cast<std::int64_t>(
            rng_.below(static_cast<std::uint64_t>(tos)));
      }
      EDEN_NEXT();

      EDEN_CASE(clock_ns) {
        EDEN_PUSH(clock_fn_ != nullptr ? clock_fn_(clock_ctx_)
                                       : default_clock(nullptr));
      }
      EDEN_NEXT();

      EDEN_CASE(min2) {
        EDEN_BINOP(lhs < rhs ? lhs : rhs);
      }
      EDEN_NEXT();

      EDEN_CASE(max2) {
        EDEN_BINOP(lhs > rhs ? lhs : rhs);
      }
      EDEN_NEXT();

      EDEN_CASE(abs1) {
        EDEN_NEED(1);
        if (tos < 0) tos = wrap_neg(tos);
      }
      EDEN_NEXT();

      EDEN_CASE(halt) {
        result.value = sp > 0 ? tos : 0;
        result.status = ExecStatus::ok;
        goto exec_done;
      }
      EDEN_NEXT();

      // ---- Fused superinstructions (optimizer output) ----

      EDEN_CASE(add_imm) {
        EDEN_NEED(1);
        tos = wrap_add(tos, instr.imm);
      }
      EDEN_NEXT();

      EDEN_CASE(mul_imm) {
        EDEN_NEED(1);
        tos = wrap_mul(tos, instr.imm);
      }
      EDEN_NEXT();

      EDEN_CASE(tee_local) {
        EDEN_NEED(1);
        const std::uint32_t slot = base + static_cast<std::uint32_t>(instr.a);
        if (slot >= locals_size) EDEN_FAIL(invalid_program);
        locals[slot] = tos;
      }
      EDEN_NEXT();

      EDEN_CASE(load_local2) {
        const std::uint32_t first =
            base + static_cast<std::uint32_t>(instr.a);
        if (first >= locals_size) EDEN_FAIL(invalid_program);
        EDEN_PUSH(locals[first]);
        const std::uint32_t second =
            base + static_cast<std::uint32_t>(
                       static_cast<std::int32_t>(instr.imm));
        if (second >= locals_size) EDEN_FAIL(invalid_program);
        EDEN_PUSH(locals[second]);
      }
      EDEN_NEXT();

      EDEN_CASE(load_state_push) {
        const auto scope_index =
            static_cast<std::uint32_t>((instr.a >> 16) & 0xff);
        if constexpr (!Trusted) {
          if (scope_index >= static_cast<std::uint32_t>(kNumScopes)) {
            EDEN_FAIL(invalid_program);
          }
        }
        StateBlock* block = blocks[scope_index];
        const std::uint16_t slot = operand_slot(instr.a);
        if (block == nullptr || slot >= block->scalars.size()) {
          EDEN_FAIL(bad_state_slot);
        }
        EDEN_PUSH(block->scalars[slot]);
        EDEN_PUSH(instr.imm);
      }
      EDEN_NEXT();

#define EDEN_CMP_IMM(name, cmpop)                  \
  EDEN_CASE(name) {                                \
    EDEN_NEED(1);                                  \
    tos = (tos cmpop instr.imm) ? 1 : 0;           \
  }                                                \
  EDEN_NEXT();

      EDEN_CMP_IMM(cmp_eq_imm, ==)
      EDEN_CMP_IMM(cmp_ne_imm, !=)
      EDEN_CMP_IMM(cmp_lt_imm, <)
      EDEN_CMP_IMM(cmp_le_imm, <=)
      EDEN_CMP_IMM(cmp_gt_imm, >)
      EDEN_CMP_IMM(cmp_ge_imm, >=)
#undef EDEN_CMP_IMM

// cmp; jz — pops both operands, branches when the comparison is false.
#define EDEN_CMP_JZ(name, cmpop)                                         \
  EDEN_CASE(name) {                                                      \
    EDEN_NEED(2);                                                        \
    const std::int64_t rhs = tos;                                        \
    const std::int64_t lhs = spill[static_cast<std::ptrdiff_t>(sp) - 2]; \
    sp -= 2;                                                             \
    tos = spill[static_cast<std::ptrdiff_t>(sp) - 1];                    \
    if (!(lhs cmpop rhs)) pc = static_cast<std::uint32_t>(instr.a);      \
  }                                                                      \
  EDEN_NEXT();

      EDEN_CMP_JZ(cmp_eq_jz, ==)
      EDEN_CMP_JZ(cmp_ne_jz, !=)
      EDEN_CMP_JZ(cmp_lt_jz, <)
      EDEN_CMP_JZ(cmp_le_jz, <=)
      EDEN_CMP_JZ(cmp_gt_jz, >)
      EDEN_CMP_JZ(cmp_ge_jz, >=)
#undef EDEN_CMP_JZ

// push imm; cmp; jz — pops one operand, compares against the
// immediate, branches when false.
#define EDEN_CMP_IMM_JZ(name, cmpop)                                 \
  EDEN_CASE(name) {                                                  \
    EDEN_NEED(1);                                                    \
    const std::int64_t v = tos;                                      \
    EDEN_DROP();                                                     \
    if (!(v cmpop instr.imm)) pc = static_cast<std::uint32_t>(instr.a); \
  }                                                                  \
  EDEN_NEXT();

      EDEN_CMP_IMM_JZ(cmp_eq_imm_jz, ==)
      EDEN_CMP_IMM_JZ(cmp_ne_imm_jz, !=)
      EDEN_CMP_IMM_JZ(cmp_lt_imm_jz, <)
      EDEN_CMP_IMM_JZ(cmp_le_imm_jz, <=)
      EDEN_CMP_IMM_JZ(cmp_gt_imm_jz, >)
      EDEN_CMP_IMM_JZ(cmp_ge_imm_jz, >=)
#undef EDEN_CMP_IMM_JZ

      EDEN_CASE(push_jmp) {
        EDEN_PUSH(instr.imm);
        pc = static_cast<std::uint32_t>(instr.a);
      }
      EDEN_NEXT();

      EDEN_CASE(inc_local) {
        // load_local a; add_imm k; store_local a — the slot check covers
        // both ends of the source pair; the stack is never touched.
        const std::uint32_t slot = base + static_cast<std::uint32_t>(instr.a);
        if (slot >= locals_size) EDEN_FAIL(invalid_program);
        locals[slot] = wrap_add(locals[slot], instr.imm);
      }
      EDEN_NEXT();

      EDEN_CASE(store_local2) {
        EDEN_NEED(1);
        const std::uint32_t first =
            base + static_cast<std::uint32_t>(instr.a);
        if (first >= locals_size) EDEN_FAIL(invalid_program);
        locals[first] = tos;
        EDEN_DROP();
        EDEN_NEED(1);
        const std::uint32_t second =
            base + static_cast<std::uint32_t>(
                       static_cast<std::int32_t>(instr.imm));
        if (second >= locals_size) EDEN_FAIL(invalid_program);
        locals[second] = tos;
        EDEN_DROP();
      }
      EDEN_NEXT();

// Record-array loads with the index arithmetic folded in: the index on
// top of the stack is transformed exactly as the replaced add/mul
// sequence would (same wrapping), then bounds-checked as array_load.
#define EDEN_ARRAY_LOAD_IDX(name, idx_expr)                               \
  EDEN_CASE(name) {                                                      \
    EDEN_NEED(1);                                                        \
    const auto scope_index =                                             \
        static_cast<std::uint32_t>((instr.a >> 16) & 0xff);              \
    if constexpr (!Trusted) {                                            \
      if (scope_index >= static_cast<std::uint32_t>(kNumScopes)) {       \
        EDEN_FAIL(invalid_program);                                      \
      }                                                                  \
    }                                                                    \
    StateBlock* block = blocks[scope_index];                             \
    const std::uint16_t slot = operand_slot(instr.a);                    \
    if (block == nullptr || slot >= block->arrays.size()) {              \
      EDEN_FAIL(bad_state_slot);                                         \
    }                                                                    \
    const ArrayValue& arr = block->arrays[slot];                         \
    const std::int64_t idx = (idx_expr);                                 \
    if (idx < 0 || idx >= static_cast<std::int64_t>(arr.data.size())) {  \
      EDEN_FAIL(out_of_bounds);                                          \
    }                                                                    \
    tos = arr.data[static_cast<std::size_t>(idx)];                       \
  }                                                                      \
  EDEN_NEXT();

      EDEN_ARRAY_LOAD_IDX(array_load_off, wrap_add(tos, instr.imm))
      EDEN_ARRAY_LOAD_IDX(array_load_mul, wrap_mul(tos, instr.imm))
      EDEN_ARRAY_LOAD_IDX(
          array_load_rec,
          wrap_add(wrap_mul(tos, static_cast<std::int64_t>(
                                     static_cast<std::uint64_t>(instr.imm) >>
                                     32)),
                   static_cast<std::int64_t>(
                       static_cast<std::uint64_t>(instr.imm) &
                       0xffffffffull)))
#undef EDEN_ARRAY_LOAD_IDX

#if !EDEN_THREADED
      default:
        EDEN_FAIL(invalid_program);
    }
  }
#endif

exec_done:
  if constexpr (Profiled) {
    profile_countdown_ = prof_countdown;
  }
  result.steps = steps;
  result.max_stack = max_stack;
  return result;

#undef EDEN_CASE
#undef EDEN_NEXT
#undef EDEN_FETCH
#undef EDEN_BINOP
#undef EDEN_DROP
#undef EDEN_PUSH
#undef EDEN_NEED
#undef EDEN_FAIL
}

template ExecResult Interpreter::execute_impl<false, false>(
    const CompiledProgram&, StateBlock*, StateBlock*, StateBlock*);
template ExecResult Interpreter::execute_impl<true, false>(
    const CompiledProgram&, StateBlock*, StateBlock*, StateBlock*);
template ExecResult Interpreter::execute_impl<false, true>(
    const CompiledProgram&, StateBlock*, StateBlock*, StateBlock*);
template ExecResult Interpreter::execute_impl<true, true>(
    const CompiledProgram&, StateBlock*, StateBlock*, StateBlock*);

}  // namespace eden::lang
