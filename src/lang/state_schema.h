// State schemas: the EAL equivalent of the paper's type annotations
// (Figure 8). Every state variable an action function touches is declared
// with a *lifetime* (packet / message / global scope), an *access level*
// (read-only / read-write) and an optional *header mapping* that ties a
// packet-scope field to a concrete header field (e.g. the 802.1q priority
// code point).
//
// The compiler uses the schema to resolve `packet.size`-style paths to
// state slots, to reject writes to read-only fields, and to derive the
// program's concurrency mode (Section 3.4.4): read-write message state
// serializes packets of the same message; read-write global state
// serializes the whole action function.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace eden::lang {

enum class Scope : std::uint8_t { packet = 0, message = 1, global = 2 };
inline constexpr int kNumScopes = 3;

std::string_view scope_name(Scope scope);

enum class Access : std::uint8_t { read_only, read_write };

enum class FieldKind : std::uint8_t {
  scalar,        // one 64-bit integer
  array,         // array of 64-bit integers
  record_array,  // array of fixed records of 64-bit integers
};

struct FieldDef {
  std::string name;
  Access access = Access::read_only;
  FieldKind kind = FieldKind::scalar;
  // For record_array: ordered element field names; the record stride is
  // record_fields.size().
  std::vector<std::string> record_fields;
  // Optional mapping to a packet header field, e.g. "802.1q.pcp" or
  // "ipv4.total_length". Purely descriptive at this layer; the enclave
  // uses it when marshalling packets in and out of action functions.
  std::string header_map;
  std::int64_t default_value = 0;
  // Declares that writes to this global-scope array are disjoint by
  // message key: an execution for message key K only writes elements
  // it derives from K (e.g. indexed by K modulo the array length).
  // When every writable global field of a `serialized` action carries
  // this promise, the enclave degrades "fully serialized" to
  // "serialized per key stripe" — executions for different message
  // keys run concurrently (Section 3.4.4 refinement). Meaningless on
  // packet/message scope and on scalars (a scalar write can never be
  // key-disjoint), and ignored there.
  bool key_partitioned = false;
};

// Resolved location of a field, as used by the compiler.
struct FieldSlot {
  Scope scope = Scope::packet;
  FieldKind kind = FieldKind::scalar;
  Access access = Access::read_only;
  std::uint16_t slot = 0;    // index into scalars or arrays of the scope
  std::uint16_t stride = 1;  // record stride (1 for plain arrays)
};

class StateSchema {
 public:
  // Adds a field to a scope; returns *this for chaining. Throws
  // std::invalid_argument on duplicate names or empty record field lists.
  StateSchema& add(Scope scope, FieldDef field);

  // Convenience helpers for the common cases.
  StateSchema& scalar(Scope scope, std::string name, Access access,
                      std::string header_map = {},
                      std::int64_t default_value = 0);
  StateSchema& array(Scope scope, std::string name, Access access);
  StateSchema& record_array(Scope scope, std::string name, Access access,
                            std::vector<std::string> record_fields);

  const std::vector<FieldDef>& fields(Scope scope) const {
    return fields_[static_cast<int>(scope)];
  }

  // Looks up a field by name within a scope; nullopt if absent.
  std::optional<FieldSlot> find(Scope scope, std::string_view name) const;
  const FieldDef* field_def(Scope scope, std::string_view name) const;

  // Index of `field` within the record of a record_array; -1 if absent.
  int record_field_offset(Scope scope, std::string_view array_name,
                          std::string_view field) const;

  std::size_t scalar_count(Scope scope) const {
    return scalar_counts_[static_cast<int>(scope)];
  }
  std::size_t array_count(Scope scope) const {
    return array_counts_[static_cast<int>(scope)];
  }

 private:
  std::vector<FieldDef> fields_[kNumScopes];
  std::vector<FieldSlot> slots_[kNumScopes];  // parallel to fields_
  std::size_t scalar_counts_[kNumScopes] = {0, 0, 0};
  std::size_t array_counts_[kNumScopes] = {0, 0, 0};
};

// Runtime storage for one array field.
struct ArrayValue {
  std::uint16_t stride = 1;
  std::vector<std::int64_t> data;

  std::int64_t element_count() const {
    return stride == 0 ? 0
                       : static_cast<std::int64_t>(data.size() / stride);
  }
};

// Runtime storage for one scope of state (one packet's fields, one
// message's fields, or an action function's global block).
struct StateBlock {
  std::vector<std::int64_t> scalars;
  std::vector<ArrayValue> arrays;

  // Builds a block with every field at its schema default.
  static StateBlock from_schema(const StateSchema& schema, Scope scope);
};

}  // namespace eden::lang
