#include "lang/optimizer.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "lang/source_loc.h"

namespace eden::lang {

namespace {

// Wrapping arithmetic matching interpreter.cpp exactly: folding a
// computation must produce the same bits the interpreter would.
inline std::int64_t wrap_add(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}
inline std::int64_t wrap_sub(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                   static_cast<std::uint64_t>(b));
}
inline std::int64_t wrap_mul(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                   static_cast<std::uint64_t>(b));
}
inline std::int64_t wrap_neg(std::int64_t a) {
  return static_cast<std::int64_t>(-static_cast<std::uint64_t>(a));
}

inline bool is_cmp(Op op) { return op >= Op::cmp_eq && op <= Op::cmp_ge; }

// Ops that fuse a preceding push into an _imm superinstruction.
inline bool consumes_pushed_imm(Op op) {
  return op == Op::add || op == Op::sub || op == Op::mul || is_cmp(op);
}
inline bool is_cmp_imm(Op op) {
  return op >= Op::cmp_eq_imm && op <= Op::cmp_ge_imm;
}

// The three cmp families (plain / _imm / _jz / _imm_jz) list the six
// comparisons in the same order, so converting is index arithmetic.
inline Op cmp_offset(Op base_family, Op cmp, Op cmp_family) {
  return static_cast<Op>(static_cast<std::uint8_t>(base_family) +
                         (static_cast<std::uint8_t>(cmp) -
                          static_cast<std::uint8_t>(cmp_family)));
}
inline Op cmp_to_imm(Op cmp) {
  return cmp_offset(Op::cmp_eq_imm, cmp, Op::cmp_eq);
}
inline Op cmp_to_jz(Op cmp) {
  return cmp_offset(Op::cmp_eq_jz, cmp, Op::cmp_eq);
}
inline Op cmp_imm_to_imm_jz(Op cmp_imm) {
  return cmp_offset(Op::cmp_eq_imm_jz, cmp_imm, Op::cmp_eq_imm);
}

// Logical inverse, used to fuse `cmp; jnz` as an inverted `cmp_*_jz`.
inline Op invert_cmp(Op cmp) {
  switch (cmp) {
    case Op::cmp_eq: return Op::cmp_ne;
    case Op::cmp_ne: return Op::cmp_eq;
    case Op::cmp_lt: return Op::cmp_ge;
    case Op::cmp_le: return Op::cmp_gt;
    case Op::cmp_gt: return Op::cmp_le;
    case Op::cmp_ge: return Op::cmp_lt;
    default: return cmp;
  }
}

inline std::int64_t eval_cmp(Op cmp, std::int64_t a, std::int64_t b) {
  switch (cmp) {
    case Op::cmp_eq: return a == b ? 1 : 0;
    case Op::cmp_ne: return a != b ? 1 : 0;
    case Op::cmp_lt: return a < b ? 1 : 0;
    case Op::cmp_le: return a <= b ? 1 : 0;
    case Op::cmp_gt: return a > b ? 1 : 0;
    case Op::cmp_ge: return a >= b ? 1 : 0;
    default: return 0;
  }
}

// Instruction indices that control flow can enter other than by falling
// through: branch targets and function entries. Multi-instruction
// rewrites must not swallow one of these as a non-first instruction.
std::vector<char> compute_leaders(const CompiledProgram& p) {
  std::vector<char> lead(p.code.size(), 0);
  const std::size_t n = p.code.size();
  for (const auto& fn : p.functions) {
    if (fn.addr < n) lead[fn.addr] = 1;
  }
  for (const auto& instr : p.code) {
    if (is_branch_op(instr.op) && instr.a >= 0 &&
        static_cast<std::size_t>(instr.a) < n) {
      lead[static_cast<std::size_t>(instr.a)] = 1;
    }
  }
  return lead;
}

// Drops instructions marked in `removed` and forward-maps every branch
// target and function entry. A target pointing at a removed instruction
// moves to the next surviving one — removed instructions are always
// no-op windows, so that is where control would have ended up anyway.
// Targets already out of range are left untouched: they trapped with
// invalid_program before and, since the code only shrinks, still do.
void compact(CompiledProgram& p, const std::vector<char>& removed) {
  const std::size_t n = p.code.size();
  std::vector<std::uint32_t> forward(n + 1, 0);
  std::uint32_t kept = 0;
  for (std::size_t i = 0; i < n; ++i) {
    forward[i] = kept;
    if (!removed[i]) ++kept;
  }
  forward[n] = kept;
  if (kept == n) return;

  std::vector<Instr> out;
  out.reserve(kept);
  for (std::size_t i = 0; i < n; ++i) {
    if (!removed[i]) out.push_back(p.code[i]);
  }
  for (auto& instr : out) {
    if (is_branch_op(instr.op) && instr.a >= 0 &&
        static_cast<std::size_t>(instr.a) < n) {
      instr.a =
          static_cast<std::int32_t>(forward[static_cast<std::size_t>(instr.a)]);
    }
  }
  for (auto& fn : p.functions) {
    if (fn.addr < n) fn.addr = forward[fn.addr];
  }
  p.code = std::move(out);
}

// A local slot below every function's frame size is valid in every
// frame; dead load/store pairs on such slots can go without changing
// which programs trap with invalid_program.
std::uint32_t min_frame_size(const CompiledProgram& p) {
  std::uint32_t m = 0xffffffffu;
  for (const auto& fn : p.functions) {
    if (fn.nlocals < m) m = fn.nlocals;
  }
  return m;
}

// Tighter per-instruction bound: when every function's code is a
// contiguous range [addr, next addr) starting at 0, no branch leaves
// its range, and no range can fall through into the next (its last
// instruction is halt, ret or an unconditional jump), then an
// instruction in function f provably executes with locals_size ==
// f.nlocals — calls enter ranges at their start and return to the call
// site's range. Slots below f.nlocals are then trap-free even when
// another function has a smaller frame. Returns empty when the layout
// cannot be proven; callers fall back to min_frame_size.
std::vector<std::uint32_t> per_instr_frame_limit(const CompiledProgram& p) {
  const std::size_t n = p.code.size();
  std::vector<const FunctionInfo*> by_addr;
  by_addr.reserve(p.functions.size());
  for (const auto& fn : p.functions) by_addr.push_back(&fn);
  std::sort(by_addr.begin(), by_addr.end(),
            [](const FunctionInfo* x, const FunctionInfo* y) {
              return x->addr < y->addr;
            });
  if (by_addr.empty() || by_addr.front()->addr != 0) return {};
  for (std::size_t k = 0; k + 1 < by_addr.size(); ++k) {
    if (by_addr[k]->addr == by_addr[k + 1]->addr) return {};
  }

  std::vector<std::uint32_t> limit(n, 0);
  for (std::size_t k = 0; k < by_addr.size(); ++k) {
    const std::size_t lo = by_addr[k]->addr;
    const std::size_t hi =
        k + 1 < by_addr.size() ? by_addr[k + 1]->addr : n;
    if (lo >= n || hi > n) return {};
    for (std::size_t i = lo; i < hi; ++i) {
      const Instr& instr = p.code[i];
      if (is_branch_op(instr.op) &&
          (instr.a < static_cast<std::int64_t>(lo) ||
           instr.a >= static_cast<std::int64_t>(hi))) {
        return {};
      }
      limit[i] = by_addr[k]->nlocals;
    }
    const Op last = p.code[hi - 1].op;
    if (last != Op::halt && last != Op::ret && last != Op::jmp &&
        last != Op::push_jmp) {
      return {};
    }
  }
  return limit;
}

// Constant folding and dead-code elimination over physically adjacent
// instructions. Later rounds (after compaction) catch chains.
bool fold_constants(CompiledProgram& p, OptStats& st) {
  const std::vector<char> lead = compute_leaders(p);
  const std::size_t n = p.code.size();
  const std::uint32_t safe_locals = min_frame_size(p);
  const std::vector<std::uint32_t> frame_limit = per_instr_frame_limit(p);
  std::vector<char> removed(n, 0);
  bool changed = false;

  std::size_t i = 0;
  while (i < n) {
    Instr& a = p.code[i];

    // jmp to the next instruction is a no-op (target must be real so a
    // trapping out-of-range jmp is kept).
    if (a.op == Op::jmp && a.a == static_cast<std::int32_t>(i) + 1 &&
        static_cast<std::size_t>(a.a) < n) {
      removed[i] = 1;
      ++st.dead_eliminated;
      changed = true;
      ++i;
      continue;
    }
    // jz/jnz to the next instruction: both outcomes continue there, so
    // only the pop remains.
    if ((a.op == Op::jz || a.op == Op::jnz) &&
        a.a == static_cast<std::int32_t>(i) + 1 &&
        static_cast<std::size_t>(a.a) < n) {
      a.op = Op::pop;
      a.a = 0;
      ++st.dead_eliminated;
      changed = true;
      ++i;
      continue;
    }

    const std::size_t j = i + 1;
    if (j >= n || removed[j] || lead[j]) {
      ++i;
      continue;
    }
    Instr& b = p.code[j];

    // push k; pop  ->  nothing (push can only trap on stack overflow,
    // a resource limit O1 is allowed to relax).
    if (a.op == Op::push && b.op == Op::pop) {
      removed[i] = removed[j] = 1;
      st.dead_eliminated += 2;
      changed = true;
      i = j + 1;
      continue;
    }
    // load_local s; store_local s  ->  nothing, when s is provably
    // valid in the frame executing it (so no invalid_program trap is
    // being erased).
    if (a.op == Op::load_local && b.op == Op::store_local && a.a == b.a &&
        a.a >= 0 &&
        static_cast<std::uint32_t>(a.a) <
            (frame_limit.empty() ? safe_locals : frame_limit[i])) {
      removed[i] = removed[j] = 1;
      st.dead_eliminated += 2;
      changed = true;
      i = j + 1;
      continue;
    }
    // push k; unop  ->  push (unop k)
    if (a.op == Op::push &&
        (b.op == Op::neg || b.op == Op::logical_not || b.op == Op::abs1)) {
      if (b.op == Op::neg) {
        a.imm = wrap_neg(a.imm);
      } else if (b.op == Op::logical_not) {
        a.imm = a.imm == 0 ? 1 : 0;
      } else if (a.imm < 0) {
        a.imm = wrap_neg(a.imm);
      }
      removed[j] = 1;
      ++st.constants_folded;
      changed = true;
      i = j + 1;
      continue;
    }
    // push k; jz/jnz t  ->  jmp t or nothing: the branch is decided.
    if (a.op == Op::push && (b.op == Op::jz || b.op == Op::jnz)) {
      const bool taken = (b.op == Op::jz) == (a.imm == 0);
      if (taken) {
        a.op = Op::jmp;
        a.a = b.a;
        a.imm = 0;
        removed[j] = 1;
      } else {
        removed[i] = removed[j] = 1;
      }
      ++st.constants_folded;
      changed = true;
      i = j + 1;
      continue;
    }
    // push x; push y; binop  ->  push (x binop y)
    if (a.op == Op::push && b.op == Op::push) {
      const std::size_t k = j + 1;
      if (k < n && !removed[k] && !lead[k]) {
        const Op op3 = p.code[k].op;
        bool folded = true;
        std::int64_t v = 0;
        if (op3 == Op::add) {
          v = wrap_add(a.imm, b.imm);
        } else if (op3 == Op::sub) {
          v = wrap_sub(a.imm, b.imm);
        } else if (op3 == Op::mul) {
          v = wrap_mul(a.imm, b.imm);
        } else if (op3 == Op::div_ && b.imm != 0) {
          v = b.imm == -1 ? wrap_neg(a.imm) : a.imm / b.imm;
        } else if (op3 == Op::mod_ && b.imm != 0) {
          v = b.imm == -1 ? 0 : a.imm % b.imm;
        } else if (is_cmp(op3)) {
          v = eval_cmp(op3, a.imm, b.imm);
        } else if (op3 == Op::min2) {
          v = a.imm < b.imm ? a.imm : b.imm;
        } else if (op3 == Op::max2) {
          v = a.imm > b.imm ? a.imm : b.imm;
        } else {
          folded = false;  // div/mod by zero stay to trap at run time
        }
        if (folded) {
          a.imm = v;
          removed[j] = removed[k] = 1;
          ++st.constants_folded;
          changed = true;
          i = k + 1;
          continue;
        }
      }
    }
    ++i;
  }

  if (changed) compact(p, removed);
  return changed;
}

// Retargets branches whose destination is an unconditional jmp.
bool thread_jumps(CompiledProgram& p, OptStats& st) {
  const std::size_t n = p.code.size();
  bool changed = false;
  for (auto& instr : p.code) {
    if (!is_branch_op(instr.op)) continue;
    std::int32_t t = instr.a;
    int hops = 0;
    while (hops < 8 && t >= 0 && static_cast<std::size_t>(t) < n &&
           p.code[static_cast<std::size_t>(t)].op == Op::jmp &&
           p.code[static_cast<std::size_t>(t)].a != t) {
      t = p.code[static_cast<std::size_t>(t)].a;
      ++hops;
    }
    if (t != instr.a) {
      instr.a = t;
      ++st.jumps_threaded;
      changed = true;
    }
    // A jmp landing on ret or halt might as well *be* that instruction:
    // same effect, one dispatch fewer, and it cannot erase a trap (the
    // target would have executed immediately anyway).
    if (instr.op == Op::jmp && t >= 0 && static_cast<std::size_t>(t) < n) {
      const Op target = p.code[static_cast<std::size_t>(t)].op;
      if (target == Op::ret || target == Op::halt) {
        instr.op = target;
        instr.a = 0;
        ++st.jumps_threaded;
        changed = true;
      }
    }
  }
  return changed;
}

// Pairwise superinstruction fusion. Every fused form preserves the trap
// behavior of the sequence it replaces (same checks, same order); the
// only divergence is needing less operand-stack headroom, which is a
// resource relaxation. Repeated rounds build 3-wide fusions
// (push; cmp; jz  ->  cmp_imm; jz  ->  cmp_imm_jz).
bool fuse_pairs(CompiledProgram& p, OptStats& st) {
  const std::vector<char> lead = compute_leaders(p);
  const std::size_t n = p.code.size();
  std::vector<char> removed(n, 0);
  bool changed = false;

  std::size_t i = 0;
  while (i + 1 < n) {
    Instr& a = p.code[i];
    const std::size_t j = i + 1;
    if (removed[i] || removed[j] || lead[j]) {
      ++i;
      continue;
    }
    Instr& b = p.code[j];
    bool fused = true;

    // Triple window first: load_local s; add_imm k; store_local s ->
    // inc_local s, k. One slot check replaces three (same slot each
    // time); the value never transits the operand stack, which is the
    // usual resource relaxation.
    if (a.op == Op::load_local && j + 1 < n && !removed[j + 1] &&
        !lead[j + 1] && b.op == Op::add_imm &&
        p.code[j + 1].op == Op::store_local && p.code[j + 1].a == a.a) {
      a.op = Op::inc_local;
      a.imm = b.imm;
      removed[j] = removed[j + 1] = 1;
      ++st.fused;
      changed = true;
      i = j + 2;
      continue;
    }

    if (is_cmp_imm(a.op) && b.op == Op::jz) {
      a.op = cmp_imm_to_imm_jz(a.op);
      a.a = b.a;
    } else if (is_cmp_imm(a.op) && b.op == Op::jnz) {
      a.op = cmp_imm_to_imm_jz(
          cmp_to_imm(invert_cmp(cmp_offset(Op::cmp_eq, a.op, Op::cmp_eq_imm))));
      a.a = b.a;
    } else if (is_cmp(a.op) && b.op == Op::jz) {
      a.op = cmp_to_jz(a.op);
      a.a = b.a;
    } else if (is_cmp(a.op) && b.op == Op::jnz) {
      a.op = cmp_to_jz(invert_cmp(a.op));
      a.a = b.a;
    } else if (a.op == Op::push && b.op == Op::add) {
      a.op = Op::add_imm;
    } else if (a.op == Op::push && b.op == Op::sub) {
      a.op = Op::add_imm;
      a.imm = wrap_neg(a.imm);
    } else if (a.op == Op::push && b.op == Op::mul) {
      a.op = Op::mul_imm;
    } else if (a.op == Op::push && is_cmp(b.op)) {
      a.op = cmp_to_imm(b.op);
    } else if (a.op == Op::store_local && b.op == Op::load_local &&
               a.a == b.a) {
      a.op = Op::tee_local;
    } else if (a.op == Op::load_local && b.op == Op::load_local) {
      a.op = Op::load_local2;
      a.imm = b.a;
    } else if (a.op == Op::load_state && b.op == Op::push &&
               !(j + 1 < n && !lead[j + 1] &&
                 consumes_pushed_imm(p.code[j + 1].op))) {
      // Lookahead: if the instruction after the push would itself fuse
      // with it (push; add -> add_imm beats load_state_push; add), leave
      // the push for that stronger pair.
      a.op = Op::load_state_push;
      a.imm = b.imm;
    } else if (a.op == Op::push && b.op == Op::jmp) {
      a.op = Op::push_jmp;
      a.a = b.a;
    } else if (a.op == Op::store_local && b.op == Op::store_local) {
      a.op = Op::store_local2;
      a.imm = b.a;
    } else if (a.op == Op::add_imm && b.op == Op::array_load) {
      a.op = Op::array_load_off;
      a.a = b.a;
    } else if (a.op == Op::mul_imm && b.op == Op::array_load) {
      a.op = Op::array_load_mul;
      a.a = b.a;
    } else if (a.op == Op::mul_imm && b.op == Op::array_load_off &&
               a.imm >= 0 && a.imm < (std::int64_t{1} << 31) && b.imm >= 0 &&
               b.imm < (std::int64_t{1} << 31)) {
      // idx = tos * stride + offset, the record-field access shape.
      // Both halves must fit their 32-bit lanes so the interpreter's
      // unpack reproduces the original constants exactly; other values
      // stay unfused rather than change wrap behavior.
      a.op = Op::array_load_rec;
      a.imm = static_cast<std::int64_t>(
          (static_cast<std::uint64_t>(a.imm) << 32) |
          static_cast<std::uint64_t>(b.imm));
      a.a = b.a;
    } else {
      fused = false;
    }

    if (fused) {
      removed[j] = 1;
      ++st.fused;
      changed = true;
      i = j + 1;
    } else {
      ++i;
    }
  }

  if (changed) compact(p, removed);
  return changed;
}

}  // namespace

CompiledProgram optimize(CompiledProgram program, OptLevel level,
                         OptStats* stats) {
  OptStats local;
  local.instructions_before = program.code.size();
  local.instructions_after = program.code.size();
  if (level == OptLevel::O0 || program.code.empty()) {
    if (stats != nullptr) *stats = local;
    return program;
  }

  // Fold and thread to a fixpoint before fusing: fusion consumes the
  // push/cmp shapes folding matches on, so running it early would strand
  // foldable constants inside _imm superinstructions. Each structural
  // pass strictly shrinks the program (threading only rewrites
  // operands), so the cap is a safety net, not a tuning knob.
  for (int round = 0; round < 16; ++round) {
    bool changed = false;
    changed |= fold_constants(program, local);
    changed |= thread_jumps(program, local);
    if (!changed) changed = fuse_pairs(program, local);
    if (!changed) break;
  }

  local.instructions_after = program.code.size();
  if (stats != nullptr) *stats = local;
  program.preverified = false;  // structure changed; caller must re-verify
  return program;
}

void verify_program(const CompiledProgram& p, const StateSchema& schema,
                    const ExecLimits& limits) {
  auto err = [](const std::string& msg) {
    throw LangError("verify: " + msg, SourceLoc{});
  };

  if (p.functions.empty()) err("program has no functions");
  if (p.code.empty()) err("program has no code");
  const std::size_t n = p.code.size();

  for (const auto& fn : p.functions) {
    if (fn.addr >= n) err("function '" + fn.name + "' entry out of range");
    if (fn.nargs > fn.nlocals) {
      err("function '" + fn.name + "' declares more args than locals");
    }
  }
  if (p.functions[0].nlocals > limits.max_locals) {
    err("entry frame exceeds the locals limit");
  }

  for (std::size_t i = 0; i < n; ++i) {
    const Instr& instr = p.code[i];
    const auto opb = static_cast<std::uint8_t>(instr.op);
    if (opb >= kNumOpcodes) {
      err("invalid opcode at instruction " + std::to_string(i));
    }
    if (is_branch_op(instr.op)) {
      if (instr.a < 0 || static_cast<std::size_t>(instr.a) >= n) {
        err("branch target out of range at instruction " + std::to_string(i));
      }
      continue;
    }
    switch (instr.op) {
      case Op::call:
        if (instr.a < 0 ||
            static_cast<std::size_t>(instr.a) >= p.functions.size()) {
          err("bad function index at instruction " + std::to_string(i));
        }
        break;
      case Op::load_local:
      case Op::store_local:
      case Op::tee_local:
      case Op::load_local2:
      case Op::inc_local:
      case Op::store_local2:
        if (instr.a < 0 ||
            static_cast<std::uint32_t>(instr.a) >= limits.max_locals) {
          err("local slot exceeds limit at instruction " + std::to_string(i));
        }
        if ((instr.op == Op::load_local2 || instr.op == Op::store_local2) &&
            (instr.imm < 0 ||
             static_cast<std::uint64_t>(instr.imm) >= limits.max_locals)) {
          err("local slot exceeds limit at instruction " + std::to_string(i));
        }
        break;
      case Op::load_state:
      case Op::store_state:
      case Op::load_state_push: {
        const auto scope = static_cast<std::uint32_t>((instr.a >> 16) & 0xff);
        if (scope >= static_cast<std::uint32_t>(kNumScopes)) {
          err("bad state scope at instruction " + std::to_string(i));
        }
        if (operand_slot(instr.a) >=
            schema.scalar_count(static_cast<Scope>(scope))) {
          err("scalar slot outside schema at instruction " +
              std::to_string(i));
        }
        break;
      }
      case Op::array_load:
      case Op::array_store:
      case Op::array_len:
      case Op::array_load_off:
      case Op::array_load_mul:
      case Op::array_load_rec: {
        const auto scope = static_cast<std::uint32_t>((instr.a >> 16) & 0xff);
        if (scope >= static_cast<std::uint32_t>(kNumScopes)) {
          err("bad state scope at instruction " + std::to_string(i));
        }
        if (operand_slot(instr.a) >=
            schema.array_count(static_cast<Scope>(scope))) {
          err("array slot outside schema at instruction " + std::to_string(i));
        }
        break;
      }
      default:
        break;
    }
  }

  // The pre-verified dispatch path skips the per-instruction pc bounds
  // check, so control must never fall off the end: the last instruction
  // has to leave the machine (halt), jump to a verified target (jmp) or
  // return (ret). Everything else could fall through to pc == n, and a
  // call here would record pc == n as its return address.
  const Op last = p.code.back().op;
  if (last != Op::halt && last != Op::jmp && last != Op::ret &&
      last != Op::push_jmp) {
    err("control flow can run past the end of the code");
  }
}

}  // namespace eden::lang
