// The Eden enclave interpreter (Section 3.4.3 / 4.1).
//
// A stack-based virtual machine that executes compiled action functions
// against packet / message / global state blocks. Safety properties the
// paper relies on are enforced here at run time: every array access is
// bounds checked, operand stack, locals and call depth are bounded, and a
// faulty program terminates with an error status without touching state
// outside its own blocks. The data path never throws — execution reports
// an ExecStatus instead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "lang/bytecode.h"
#include "lang/state_schema.h"
#include "telemetry/profile.h"
#include "util/rng.h"

namespace eden::lang {

enum class ExecStatus : std::uint8_t {
  ok = 0,
  div_by_zero,
  out_of_bounds,        // array index outside the array
  bad_state_slot,       // program references a slot the state lacks
  stack_overflow,
  stack_underflow,
  local_overflow,
  call_depth_exceeded,
  fuel_exhausted,
  bad_rand_bound,       // rand(n) with n <= 0
  invalid_program,      // malformed bytecode (bad pc, bad function index)
};

// Number of ExecStatus values (for per-status breakdown tables).
inline constexpr std::size_t kNumExecStatus =
    static_cast<std::size_t>(ExecStatus::invalid_program) + 1;

std::string_view exec_status_name(ExecStatus status);

struct ExecLimits {
  std::uint32_t max_operand_stack = 256;  // entries (8 bytes each)
  std::uint32_t max_locals = 4096;
  std::uint32_t max_call_depth = 128;
  // 0 = unlimited. The paper deliberately does not cap the cycle budget
  // (Section 6); tests and cautious deployments can set one.
  std::uint64_t max_steps = 0;
};

struct ExecResult {
  ExecStatus status = ExecStatus::ok;
  std::int64_t value = 0;       // program result (top of stack at halt)
  std::uint64_t steps = 0;      // instructions executed
  std::uint32_t max_stack = 0;  // operand-stack high-water mark (entries)
  std::uint32_t max_locals = 0; // locals high-water mark (entries)
  std::uint32_t max_depth = 0;  // call-depth high-water mark

  bool ok() const { return status == ExecStatus::ok; }
};

// Clock source for the clock() builtin. The simulator injects virtual
// time; stand-alone use defaults to the process steady clock.
using ClockFn = std::int64_t (*)(void* ctx);

// One interpreter per thread of execution; scratch buffers are reused
// across runs so steady-state execution does not allocate.
class Interpreter {
 public:
  explicit Interpreter(ExecLimits limits = {}, std::uint64_t rng_seed = 1);

  void set_clock(ClockFn fn, void* ctx) {
    clock_fn_ = fn;
    clock_ctx_ = ctx;
  }
  void reseed(std::uint64_t seed) { rng_.reseed(seed); }

  // Opt-in hot-spot profiling: while `profile` is non-null, execution
  // switches to the profiled template instantiations (both dispatch
  // modes), which bump `profile->counts[pc]` on every fetch and
  // attribute sampled tick deltas to `profile->ticks[pc]` every
  // `cycle_sample_every` fetches (0 disables cycle sampling; counts are
  // always exact). The profile must outlive execution; the caller
  // serializes access if the same profile is shared across threads.
  void set_profile(telemetry::ProgramProfile* profile,
                   std::uint32_t cycle_sample_every = 64) {
    profile_ = profile;
    profile_cycle_every_ = cycle_sample_every;
    // Clamp rather than reset the running countdown: the enclave
    // re-attaches the profile on every batch, and a reset would starve
    // short programs of cycle samples forever.
    if (profile_countdown_ == 0 || profile_countdown_ > cycle_sample_every) {
      profile_countdown_ = cycle_sample_every;
    }
  }
  telemetry::ProgramProfile* profile() const { return profile_; }

  // Executes `program` against the given state blocks. Any of the blocks
  // may be null if the program does not touch that scope (checked via
  // program.usage); a program touching a null scope fails with
  // bad_state_slot.
  //
  // Dispatch is threaded (computed goto) on GCC/Clang with a portable
  // switch fallback (-DEDEN_NO_COMPUTED_GOTO forces the fallback), with
  // the top of the operand stack cached in a register. If
  // program.preverified is set (install-time verify_program passed
  // against this interpreter's limits and the blocks' schema), the
  // per-dispatch structural checks — pc bounds, opcode range, state
  // scope, function index — are skipped; all data-dependent safety
  // checks (array bounds, stack/locals/depth limits, fuel, null state
  // blocks) always stay on.
  ExecResult execute(const CompiledProgram& program, StateBlock* packet,
                     StateBlock* message, StateBlock* global);

  const ExecLimits& limits() const { return limits_; }

 private:
  template <bool Trusted, bool Profiled>
  ExecResult execute_impl(const CompiledProgram& program, StateBlock* packet,
                          StateBlock* message, StateBlock* global);

  ExecLimits limits_;
  util::Rng rng_;
  ClockFn clock_fn_ = nullptr;
  void* clock_ctx_ = nullptr;
  telemetry::ProgramProfile* profile_ = nullptr;
  std::uint32_t profile_cycle_every_ = 64;
  // Fetches left until the next cycle sample, carried across execute()
  // calls so programs shorter than the sampling period still accumulate
  // tick attributions over many runs.
  std::uint32_t profile_countdown_ = 64;

  // Reused scratch space.
  std::vector<std::int64_t> stack_;
  std::vector<std::int64_t> locals_;
  struct Frame {
    std::uint32_t return_pc;
    std::uint32_t locals_base;
    std::uint32_t caller_locals_size;
  };
  std::vector<Frame> frames_;
};

}  // namespace eden::lang
