#include "lang/compiler.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "lang/optimizer.h"
#include "lang/parser.h"

namespace eden::lang {

namespace {

// ---------------------------------------------------------------------
// Symbols

struct FuncDef;

struct Symbol {
  enum class Kind {
    int_local,   // frame slot holding an int64
    array_ref,   // compile-time alias of a state array field
    state_param, // packet / message / global parameter
    function,    // local function
  };
  Kind kind = Kind::int_local;
  int slot = 0;           // int_local: frame slot
  FieldSlot field;        // array_ref: aliased field
  std::string field_name; // array_ref: field name (for record offsets)
  Scope scope = Scope::packet;  // state_param
  FuncDef* func = nullptr;      // function
};

struct Capture {
  std::string name;  // resolved by name at each call site
};

struct FuncDef {
  std::string name;
  int table_index = 0;
  std::vector<std::string> explicit_params;
  std::vector<Capture> captures;  // int-valued captures become extra args
  // Names resolved at the definition site that are not value captures:
  // array aliases, state params and enclosing functions.
  std::map<std::string, Symbol, std::less<>> imports;
  const Expr* body = nullptr;
  bool is_recursive = false;
};

bool is_builtin(std::string_view name) {
  return name == "len" || name == "rand" || name == "clock" ||
         name == "min" || name == "max" || name == "abs";
}

// ---------------------------------------------------------------------
// Free-variable analysis (used to compute a nested function's captures).

void collect_free(const Expr* e, std::set<std::string>& bound,
                  std::vector<std::string>& order,
                  std::set<std::string>& seen) {
  if (e == nullptr) return;
  auto note = [&](const std::string& name) {
    if (bound.contains(name) || is_builtin(name)) return;
    if (seen.insert(name).second) order.push_back(name);
  };
  switch (e->kind) {
    case ExprKind::path_read:
      note(e->path.root);
      for (const auto& elem : e->path.elems) {
        collect_free(elem.index.get(), bound, order, seen);
      }
      return;
    case ExprKind::assign:
      note(e->path.root);
      for (const auto& elem : e->path.elems) {
        collect_free(elem.index.get(), bound, order, seen);
      }
      collect_free(e->children[0].get(), bound, order, seen);
      return;
    case ExprKind::let: {
      collect_free(e->children[0].get(), bound, order, seen);
      const bool was_bound = bound.contains(e->name);
      bound.insert(e->name);
      collect_free(e->children[1].get(), bound, order, seen);
      if (!was_bound) bound.erase(e->name);
      return;
    }
    case ExprKind::let_fun: {
      std::set<std::string> inner_bound = bound;
      if (e->is_recursive) inner_bound.insert(e->name);
      for (const auto& p : e->fun_params) inner_bound.insert(p.name);
      collect_free(e->children[0].get(), inner_bound, order, seen);
      const bool was_bound = bound.contains(e->name);
      bound.insert(e->name);
      collect_free(e->children[1].get(), bound, order, seen);
      if (!was_bound) bound.erase(e->name);
      return;
    }
    case ExprKind::call:
      note(e->name);
      for (const auto& child : e->children) {
        collect_free(child.get(), bound, order, seen);
      }
      return;
    default:
      for (const auto& child : e->children) {
        collect_free(child.get(), bound, order, seen);
      }
      return;
  }
}

// ---------------------------------------------------------------------
// Compiler

class Compiler {
 public:
  Compiler(const Program& program, const StateSchema& schema,
           const CompileOptions& options, std::string source_name)
      : program_(program), schema_(schema), options_(options) {
    out_.source_name = std::move(source_name);
  }

  CompiledProgram run() {
    bind_state_params();

    // Entry function.
    auto main_def = std::make_unique<FuncDef>();
    main_def->name = "main";
    main_def->table_index = 0;
    main_def->body = program_.body.get();
    out_.functions.push_back(FunctionInfo{"main", 0, 0, 0});
    defs_.push_back(std::move(main_def));

    // Compile main; nested definitions append to the queue.
    queue_.push_back(defs_.front().get());
    while (!queue_.empty()) {
      FuncDef* def = queue_.front();
      queue_.pop_front();
      compile_function(*def);
    }

    derive_concurrency();
    return std::move(out_);
  }

 private:
  // --- Scoped symbol table (per function being compiled) ---------------

  struct ScopeEntry {
    std::string name;
    Symbol symbol;
  };

  struct FuncCtx {
    FuncDef* def = nullptr;
    std::vector<ScopeEntry> symbols;  // stack; lookup scans backwards
    int next_slot = 0;
    int max_slot = 0;
  };

  void push_symbol(std::string name, Symbol symbol) {
    ctx_.symbols.push_back(ScopeEntry{std::move(name), std::move(symbol)});
  }

  const Symbol* lookup(std::string_view name) const {
    for (auto it = ctx_.symbols.rbegin(); it != ctx_.symbols.rend(); ++it) {
      if (it->name == name) return &it->symbol;
    }
    const auto imp = ctx_.def->imports.find(name);
    if (imp != ctx_.def->imports.end()) return &imp->second;
    return nullptr;
  }

  int alloc_slot() {
    const int slot = ctx_.next_slot++;
    ctx_.max_slot = std::max(ctx_.max_slot, ctx_.next_slot);
    return slot;
  }

  // --- State parameter binding -----------------------------------------

  void bind_state_params() {
    if (program_.params.size() > kNumScopes) {
      throw LangError("action functions take at most 3 parameters "
                      "(packet, message, global)",
                      SourceLoc{});
    }
    for (std::size_t i = 0; i < program_.params.size(); ++i) {
      const Param& p = program_.params[i];
      Scope scope = static_cast<Scope>(i);  // positional default
      if (!p.type_name.empty()) {
        std::string t = p.type_name;
        std::transform(t.begin(), t.end(), t.begin(),
                       [](unsigned char c) { return std::tolower(c); });
        if (t == "packet") {
          scope = Scope::packet;
        } else if (t == "message" || t == "msg") {
          scope = Scope::message;
        } else if (t == "global") {
          scope = Scope::global;
        } else {
          throw LangError("unknown parameter type '" + p.type_name +
                          "' (expected Packet, Message or Global)",
                          SourceLoc{});
        }
      }
      Symbol sym;
      sym.kind = Symbol::Kind::state_param;
      sym.scope = scope;
      state_params_.emplace_back(p.name, sym);
    }
  }

  // --- Emission helpers --------------------------------------------------

  int emit(Op op, std::int32_t a = 0, std::int64_t imm = 0) {
    out_.code.push_back(Instr{op, a, imm});
    return static_cast<int>(out_.code.size()) - 1;
  }

  void patch_target(int instr_index, int target) {
    out_.code[static_cast<std::size_t>(instr_index)].a = target;
  }

  int here() const { return static_cast<int>(out_.code.size()); }

  void note_scalar(Scope scope, std::uint16_t slot, bool write) {
    if (slot >= 64) {
      throw LangError("too many scalar state fields (max 64 per scope)",
                      SourceLoc{});
    }
    const int s = static_cast<int>(scope);
    (write ? out_.usage.scalar_write[s] : out_.usage.scalar_read[s]) |=
        std::uint64_t{1} << slot;
  }

  void note_array(Scope scope, std::uint16_t slot, bool write) {
    if (slot >= 64) {
      throw LangError("too many array state fields (max 64 per scope)",
                      SourceLoc{});
    }
    const int s = static_cast<int>(scope);
    (write ? out_.usage.array_write[s] : out_.usage.array_read[s]) |=
        std::uint64_t{1} << slot;
  }

  // --- Function compilation ----------------------------------------------

  void compile_function(FuncDef& def) {
    ctx_ = FuncCtx{};
    ctx_.def = &def;

    // Note: out_.functions may grow (and reallocate) while compiling the
    // body if it defines nested functions, so index rather than hold a
    // reference.
    const auto table_index = static_cast<std::size_t>(def.table_index);
    out_.functions[table_index].addr = static_cast<std::uint32_t>(here());

    if (def.table_index == 0) {
      // The entry function sees the state parameters directly.
      for (const auto& [name, sym] : state_params_) push_symbol(name, sym);
    } else {
      // Explicit parameters first, then value captures — this order must
      // match what call sites push.
      for (const auto& p : def.explicit_params) {
        Symbol sym;
        sym.kind = Symbol::Kind::int_local;
        sym.slot = alloc_slot();
        push_symbol(p, sym);
      }
      for (const auto& c : def.captures) {
        Symbol sym;
        sym.kind = Symbol::Kind::int_local;
        sym.slot = alloc_slot();
        push_symbol(c.name, sym);
      }
      if (def.is_recursive) {
        Symbol self;
        self.kind = Symbol::Kind::function;
        self.func = &def;
        push_symbol(def.name, self);
      }
    }

    compile_expr(def.body, /*want_value=*/true, /*tail=*/true);
    emit(def.table_index == 0 ? Op::halt : Op::ret);

    out_.functions[table_index].nargs = static_cast<std::uint16_t>(
        def.explicit_params.size() + def.captures.size());
    out_.functions[table_index].nlocals =
        static_cast<std::uint16_t>(ctx_.max_slot);
  }

  // --- Expression compilation ---------------------------------------------
  //
  // want_value: whether the expression must leave its value on the stack.
  // tail: whether the expression is in tail position of the current
  // function (enables self-tail-call elimination).

  void compile_expr(const Expr* e, bool want_value, bool tail) {
    assert(e != nullptr);
    switch (e->kind) {
      case ExprKind::int_literal:
      case ExprKind::bool_literal:
        if (want_value) emit(Op::push, 0, e->int_value);
        return;
      case ExprKind::path_read:
        compile_path_read(*e, want_value);
        return;
      case ExprKind::unary:
        compile_expr(e->children[0].get(), want_value, false);
        if (want_value) {
          emit(e->unary_op == UnaryOp::neg ? Op::neg : Op::logical_not);
        }
        return;
      case ExprKind::binary:
        compile_binary(*e, want_value);
        return;
      case ExprKind::assign:
        compile_assign(*e, want_value);
        return;
      case ExprKind::let:
        compile_let(*e, want_value, tail);
        return;
      case ExprKind::let_fun:
        compile_let_fun(*e, want_value, tail);
        return;
      case ExprKind::if_else:
        compile_if(*e, want_value, tail);
        return;
      case ExprKind::sequence:
        for (std::size_t i = 0; i + 1 < e->children.size(); ++i) {
          compile_expr(e->children[i].get(), false, false);
        }
        compile_expr(e->children.back().get(), want_value, tail);
        return;
      case ExprKind::call:
        compile_call(*e, want_value, tail);
        return;
      case ExprKind::while_loop:
        compile_while(*e, want_value);
        return;
    }
  }

  void compile_binary(const Expr& e, bool want_value) {
    const Expr* lhs = e.children[0].get();
    const Expr* rhs = e.children[1].get();

    // Short-circuit logic produces 0/1 without evaluating the right
    // operand when the left decides.
    if (e.binary_op == BinaryOp::logical_and ||
        e.binary_op == BinaryOp::logical_or) {
      const bool is_and = e.binary_op == BinaryOp::logical_and;
      compile_expr(lhs, true, false);
      const int jshort = emit(is_and ? Op::jz : Op::jnz);
      compile_expr(rhs, true, false);
      // Normalize the right operand to 0/1.
      emit(Op::push, 0, 0);
      emit(Op::cmp_ne);
      const int jend = emit(Op::jmp);
      patch_target(jshort, here());
      emit(Op::push, 0, is_and ? 0 : 1);
      patch_target(jend, here());
      if (!want_value) emit(Op::pop);
      return;
    }

    compile_expr(lhs, true, false);
    compile_expr(rhs, true, false);
    switch (e.binary_op) {
      case BinaryOp::add: emit(Op::add); break;
      case BinaryOp::sub: emit(Op::sub); break;
      case BinaryOp::mul: emit(Op::mul); break;
      case BinaryOp::div: emit(Op::div_); break;
      case BinaryOp::mod: emit(Op::mod_); break;
      case BinaryOp::eq: emit(Op::cmp_eq); break;
      case BinaryOp::ne: emit(Op::cmp_ne); break;
      case BinaryOp::lt: emit(Op::cmp_lt); break;
      case BinaryOp::le: emit(Op::cmp_le); break;
      case BinaryOp::gt: emit(Op::cmp_gt); break;
      case BinaryOp::ge: emit(Op::cmp_ge); break;
      case BinaryOp::logical_and:
      case BinaryOp::logical_or:
        assert(false);
        break;
    }
    if (!want_value) emit(Op::pop);
  }

  void compile_let(const Expr& e, bool want_value, bool tail) {
    const Expr* value = e.children[0].get();
    const Expr* body = e.children[1].get();

    // `let alias = global.some_array in ...` creates a compile-time
    // array alias rather than a runtime value.
    if (value->kind == ExprKind::path_read) {
      if (auto alias = try_array_alias(value->path)) {
        const std::size_t saved = ctx_.symbols.size();
        push_symbol(e.name, *alias);
        compile_expr(body, want_value, tail);
        ctx_.symbols.resize(saved);
        return;
      }
    }

    compile_expr(value, true, false);
    Symbol sym;
    sym.kind = Symbol::Kind::int_local;
    sym.slot = alloc_slot();
    emit(Op::store_local, sym.slot);
    const std::size_t saved = ctx_.symbols.size();
    push_symbol(e.name, sym);
    compile_expr(body, want_value, tail);
    ctx_.symbols.resize(saved);
  }

  // Returns an array_ref symbol if the path names a whole array field
  // (state array with no indexing), otherwise nullopt.
  std::optional<Symbol> try_array_alias(const Path& path) const {
    if (path.elems.size() != 1 || path.elems[0].field.empty()) {
      return std::nullopt;
    }
    const Symbol* root = lookup(path.root);
    if (root == nullptr || root->kind != Symbol::Kind::state_param) {
      return std::nullopt;
    }
    const auto slot = schema_.find(root->scope, path.elems[0].field);
    if (!slot || slot->kind == FieldKind::scalar) return std::nullopt;
    Symbol sym;
    sym.kind = Symbol::Kind::array_ref;
    sym.field = *slot;
    sym.field_name = path.elems[0].field;
    return sym;
  }

  void compile_let_fun(const Expr& e, bool want_value, bool tail) {
    auto def = std::make_unique<FuncDef>();
    def->name = e.name;
    def->table_index = static_cast<int>(out_.functions.size());
    def->is_recursive = e.is_recursive;
    for (const auto& p : e.fun_params) def->explicit_params.push_back(p.name);
    def->body = e.children[0].get();

    // Determine the free names of the function body and resolve each at
    // the definition site. Int locals become by-value captures (extra
    // call arguments); array aliases, state params and functions become
    // compile-time imports.
    std::set<std::string> bound;
    if (e.is_recursive) bound.insert(e.name);
    for (const auto& p : e.fun_params) bound.insert(p.name);
    std::vector<std::string> order;
    std::set<std::string> seen;
    collect_free(def->body, bound, order, seen);
    for (const auto& name : order) {
      const Symbol* sym = lookup(name);
      if (sym == nullptr) {
        throw LangError("unbound variable '" + name + "' in function '" +
                        e.name + "'",
                        e.loc);
      }
      switch (sym->kind) {
        case Symbol::Kind::int_local:
          def->captures.push_back(Capture{name});
          break;
        case Symbol::Kind::array_ref:
        case Symbol::Kind::state_param:
        case Symbol::Kind::function:
          def->imports.emplace(name, *sym);
          break;
      }
    }

    out_.functions.push_back(
        FunctionInfo{def->name, 0, 0, 0});  // patched when compiled
    queue_.push_back(def.get());

    Symbol sym;
    sym.kind = Symbol::Kind::function;
    sym.func = def.get();
    defs_.push_back(std::move(def));

    const std::size_t saved = ctx_.symbols.size();
    push_symbol(e.name, sym);
    compile_expr(e.children[1].get(), want_value, tail);
    ctx_.symbols.resize(saved);
  }

  void compile_if(const Expr& e, bool want_value, bool tail) {
    const Expr* cond = e.children[0].get();
    const Expr* then_branch = e.children[1].get();
    const Expr* else_branch = e.children[2].get();

    compile_expr(cond, true, false);
    const int jelse = emit(Op::jz);
    compile_expr(then_branch, want_value, tail);
    const int jend = emit(Op::jmp);
    patch_target(jelse, here());
    if (else_branch != nullptr) {
      compile_expr(else_branch, want_value, tail);
    } else if (want_value) {
      emit(Op::push, 0, 0);  // missing else evaluates to 0 (unit)
    }
    patch_target(jend, here());
  }

  void compile_while(const Expr& e, bool want_value) {
    const int loop_start = here();
    compile_expr(e.children[0].get(), true, false);
    const int jexit = emit(Op::jz);
    compile_expr(e.children[1].get(), false, false);
    emit(Op::jmp, loop_start);
    patch_target(jexit, here());
    if (want_value) emit(Op::push, 0, 0);
  }

  void compile_call(const Expr& e, bool want_value, bool tail) {
    if (is_builtin(e.name)) {
      compile_builtin(e, want_value);
      return;
    }
    const Symbol* sym = lookup(e.name);
    if (sym == nullptr || sym->kind != Symbol::Kind::function) {
      throw LangError("call to unknown function '" + e.name + "'", e.loc);
    }
    FuncDef& callee = *sym->func;
    if (e.children.size() != callee.explicit_params.size()) {
      throw LangError("function '" + e.name + "' expects " +
                          std::to_string(callee.explicit_params.size()) +
                          " argument(s), got " +
                          std::to_string(e.children.size()),
                      e.loc);
    }
    // Push explicit arguments, then captured values (resolved by name in
    // the calling scope).
    for (const auto& arg : e.children) {
      compile_expr(arg.get(), true, false);
    }
    for (const auto& cap : callee.captures) {
      const Symbol* cap_sym = lookup(cap.name);
      if (cap_sym == nullptr || cap_sym->kind != Symbol::Kind::int_local) {
        throw LangError("captured variable '" + cap.name +
                        "' is not visible at this call site",
                        e.loc);
      }
      emit(Op::load_local, cap_sym->slot);
    }

    const bool self_tail = tail && options_.tail_call_optimization &&
                           &callee == ctx_.def;
    if (self_tail) {
      // Tail recursion compiles to a loop: store the arguments back into
      // the parameter slots (in reverse, since they sit on the stack) and
      // jump to the function entry.
      const int nargs = static_cast<int>(callee.explicit_params.size() +
                                         callee.captures.size());
      for (int i = nargs - 1; i >= 0; --i) {
        emit(Op::store_local, i);
      }
      emit(Op::jmp,
           static_cast<std::int32_t>(
               out_.functions[static_cast<std::size_t>(callee.table_index)]
                   .addr));
      // The jump target is this function's own entry, which is already
      // final because we are inside its body.
      return;
    }

    emit(Op::call, callee.table_index);
    if (!want_value) emit(Op::pop);
  }

  void compile_builtin(const Expr& e, bool want_value) {
    auto need_args = [&](std::size_t n) {
      if (e.children.size() != n) {
        throw LangError("builtin '" + e.name + "' expects " +
                            std::to_string(n) + " argument(s)",
                        e.loc);
      }
    };
    if (e.name == "len") {
      need_args(1);
      const Expr* arg = e.children[0].get();
      if (arg->kind != ExprKind::path_read) {
        throw LangError("len() takes an array field", e.loc);
      }
      const ResolvedArray arr = resolve_array(arg->path);
      note_array(arr.scope, arr.slot, false);
      emit(Op::array_len, state_operand(arr.scope, arr.slot));
    } else if (e.name == "rand") {
      need_args(1);
      compile_expr(e.children[0].get(), true, false);
      emit(Op::rand_below);
    } else if (e.name == "clock") {
      need_args(0);
      emit(Op::clock_ns);
    } else if (e.name == "min" || e.name == "max") {
      need_args(2);
      compile_expr(e.children[0].get(), true, false);
      compile_expr(e.children[1].get(), true, false);
      emit(e.name == "min" ? Op::min2 : Op::max2);
    } else {  // abs
      need_args(1);
      compile_expr(e.children[0].get(), true, false);
      emit(Op::abs1);
    }
    if (!want_value) emit(Op::pop);
  }

  // --- Path compilation ----------------------------------------------------

  struct ResolvedArray {
    Scope scope = Scope::packet;
    std::uint16_t slot = 0;
    std::uint16_t stride = 1;
    Access access = Access::read_only;
    std::string field_name;  // for record field offsets
  };

  // Resolves a path that must name a whole array: either
  // `stateparam.field` or a bare array alias local.
  ResolvedArray resolve_array(const Path& path) const {
    const Symbol* root = lookup(path.root);
    if (root == nullptr) {
      throw LangError("unbound variable '" + path.root + "'", path.loc);
    }
    if (root->kind == Symbol::Kind::array_ref) {
      if (!path.elems.empty()) {
        throw LangError("unexpected path after array alias '" + path.root +
                        "'",
                        path.loc);
      }
      return ResolvedArray{root->field.scope, root->field.slot,
                           root->field.stride, root->field.access,
                           root->field_name};
    }
    if (root->kind == Symbol::Kind::state_param && path.elems.size() == 1 &&
        !path.elems[0].field.empty()) {
      const auto slot = schema_.find(root->scope, path.elems[0].field);
      if (!slot) {
        throw LangError("unknown " + std::string(scope_name(root->scope)) +
                        " field '" + path.elems[0].field + "'",
                        path.loc);
      }
      if (slot->kind == FieldKind::scalar) {
        throw LangError("field '" + path.elems[0].field +
                        "' is a scalar, not an array",
                        path.loc);
      }
      return ResolvedArray{slot->scope, slot->slot, slot->stride,
                           slot->access, path.elems[0].field};
    }
    throw LangError("expected an array field", path.loc);
  }

  // A fully resolved path access, ready for load or store emission.
  struct PathAccess {
    enum class Kind { local, state_scalar, state_array_elem, array_len };
    Kind kind = Kind::local;
    int local_slot = 0;
    Scope scope = Scope::packet;
    std::uint16_t slot = 0;
    Access access = Access::read_write;
    std::string description;
  };

  // Resolves `e.path` and, for array element accesses, emits the code
  // that computes the flat element index (leaving it on the stack).
  PathAccess resolve_and_emit_index(const Path& path) {
    const Symbol* root = lookup(path.root);
    if (root == nullptr) {
      throw LangError("unbound variable '" + path.root + "'", path.loc);
    }

    switch (root->kind) {
      case Symbol::Kind::int_local: {
        if (!path.elems.empty()) {
          throw LangError("'" + path.root +
                          "' is a plain value; it has no fields",
                          path.loc);
        }
        PathAccess acc;
        acc.kind = PathAccess::Kind::local;
        acc.local_slot = root->slot;
        acc.description = path.root;
        return acc;
      }
      case Symbol::Kind::function:
        throw LangError("function '" + path.root + "' used as a value",
                        path.loc);
      case Symbol::Kind::array_ref: {
        ResolvedArray arr{root->field.scope, root->field.slot,
                          root->field.stride, root->field.access,
                          root->field_name};
        return emit_array_access(arr, path, /*first_elem=*/0);
      }
      case Symbol::Kind::state_param: {
        if (path.elems.empty() || path.elems[0].field.empty()) {
          throw LangError("state parameter '" + path.root +
                          "' must be followed by a field name",
                          path.loc);
        }
        const std::string& field = path.elems[0].field;
        const auto slot = schema_.find(root->scope, field);
        if (!slot) {
          throw LangError("unknown " + std::string(scope_name(root->scope)) +
                          " field '" + field + "'",
                          path.loc);
        }
        if (slot->kind == FieldKind::scalar) {
          if (path.elems.size() != 1) {
            throw LangError("scalar field '" + field +
                            "' has no sub-fields",
                            path.loc);
          }
          PathAccess acc;
          acc.kind = PathAccess::Kind::state_scalar;
          acc.scope = slot->scope;
          acc.slot = slot->slot;
          acc.access = slot->access;
          acc.description = field;
          return acc;
        }
        ResolvedArray arr{slot->scope, slot->slot, slot->stride, slot->access,
                          field};
        return emit_array_access(arr, path, /*first_elem=*/1);
      }
    }
    throw LangError("internal: unhandled symbol kind", path.loc);
  }

  PathAccess emit_array_access(const ResolvedArray& arr, const Path& path,
                               std::size_t first_elem) {
    // Accepted shapes after the array itself:
    //   .length                      -> element count
    //   [i]                          -> element (plain arrays)
    //   [i].field                    -> record field (record arrays)
    const std::size_t remaining = path.elems.size() - first_elem;
    if (remaining == 1 && path.elems[first_elem].field == "length") {
      PathAccess acc;
      acc.kind = PathAccess::Kind::array_len;
      acc.scope = arr.scope;
      acc.slot = arr.slot;
      acc.access = arr.access;
      acc.description = arr.field_name;
      return acc;
    }
    if (remaining == 0) {
      throw LangError("array '" + arr.field_name +
                      "' must be indexed or measured with .length",
                      path.loc);
    }
    if (!path.elems[first_elem].index) {
      throw LangError("expected an index into array '" + arr.field_name + "'",
                      path.loc);
    }

    compile_expr(path.elems[first_elem].index.get(), true, false);

    int field_offset = -1;
    if (arr.stride > 1) {
      if (remaining != 2 || path.elems[first_elem + 1].field.empty()) {
        throw LangError("record array '" + arr.field_name +
                        "' elements must be accessed as [i].field",
                        path.loc);
      }
      field_offset = schema_.record_field_offset(
          arr.scope, arr.field_name, path.elems[first_elem + 1].field);
      if (field_offset < 0) {
        throw LangError("record array '" + arr.field_name +
                        "' has no field '" +
                        path.elems[first_elem + 1].field + "'",
                        path.loc);
      }
      emit(Op::push, 0, arr.stride);
      emit(Op::mul);
      if (field_offset > 0) {
        emit(Op::push, 0, field_offset);
        emit(Op::add);
      }
    } else {
      if (remaining != 1) {
        throw LangError("array '" + arr.field_name +
                        "' elements are plain values",
                        path.loc);
      }
    }

    PathAccess acc;
    acc.kind = PathAccess::Kind::state_array_elem;
    acc.scope = arr.scope;
    acc.slot = arr.slot;
    acc.access = arr.access;
    acc.description = arr.field_name;
    return acc;
  }

  void compile_path_read(const Expr& e, bool want_value) {
    PathAccess acc = resolve_and_emit_index(e.path);
    switch (acc.kind) {
      case PathAccess::Kind::local:
        emit(Op::load_local, acc.local_slot);
        break;
      case PathAccess::Kind::state_scalar:
        note_scalar(acc.scope, acc.slot, false);
        emit(Op::load_state, state_operand(acc.scope, acc.slot));
        break;
      case PathAccess::Kind::state_array_elem:
        note_array(acc.scope, acc.slot, false);
        emit(Op::array_load, state_operand(acc.scope, acc.slot));
        break;
      case PathAccess::Kind::array_len:
        note_array(acc.scope, acc.slot, false);
        emit(Op::array_len, state_operand(acc.scope, acc.slot));
        break;
    }
    if (!want_value) emit(Op::pop);
  }

  void compile_assign(const Expr& e, bool want_value) {
    PathAccess acc = resolve_and_emit_index(e.path);
    if (acc.kind == PathAccess::Kind::array_len) {
      throw LangError("cannot assign to .length", e.loc);
    }
    if (acc.kind != PathAccess::Kind::local &&
        acc.access != Access::read_write) {
      throw LangError("state field '" + acc.description +
                      "' is read-only for this function",
                      e.loc);
    }
    compile_expr(e.children[0].get(), true, false);
    switch (acc.kind) {
      case PathAccess::Kind::local:
        emit(Op::store_local, acc.local_slot);
        break;
      case PathAccess::Kind::state_scalar:
        note_scalar(acc.scope, acc.slot, true);
        emit(Op::store_state, state_operand(acc.scope, acc.slot));
        break;
      case PathAccess::Kind::state_array_elem:
        note_array(acc.scope, acc.slot, true);
        emit(Op::array_store, state_operand(acc.scope, acc.slot));
        break;
      case PathAccess::Kind::array_len:
        break;  // unreachable, rejected above
    }
    // Assignment evaluates to unit (0), like F#.
    if (want_value) emit(Op::push, 0, 0);
  }

  void derive_concurrency() {
    if (out_.usage.writes_scope(Scope::global)) {
      out_.concurrency = ConcurrencyMode::serialized;
    } else if (out_.usage.writes_scope(Scope::message)) {
      out_.concurrency = ConcurrencyMode::per_message;
    } else {
      out_.concurrency = ConcurrencyMode::parallel;
    }
  }

  const Program& program_;
  const StateSchema& schema_;
  const CompileOptions& options_;
  CompiledProgram out_;

  std::vector<std::pair<std::string, Symbol>> state_params_;
  std::vector<std::unique_ptr<FuncDef>> defs_;
  std::deque<FuncDef*> queue_;
  FuncCtx ctx_;
};

}  // namespace

CompiledProgram compile(const Program& program, const StateSchema& schema,
                        const CompileOptions& options,
                        std::string source_name) {
  Compiler compiler(program, schema, options, std::move(source_name));
  return optimize(compiler.run(), options.opt_level);
}

CompiledProgram compile_source(std::string_view source,
                               const StateSchema& schema,
                               const CompileOptions& options,
                               std::string source_name) {
  const Program program = parse(source);
  return compile(program, schema, options, std::move(source_name));
}

}  // namespace eden::lang
