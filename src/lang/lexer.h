// Lexer for the Eden Action Language.
#pragma once

#include <string_view>
#include <vector>

#include "lang/token.h"

namespace eden::lang {

// Tokenizes an entire EAL program. Throws LangError on invalid input
// (unknown characters, overflowing integer literals, unterminated
// comments). Comments run from "//" to end of line or are enclosed in
// F#-style "(* ... *)" blocks (nesting supported).
std::vector<Token> lex(std::string_view source);

}  // namespace eden::lang
