// eden-trace: message lifecycle tracing demo and exporter.
//
// Runs the Fig. 9 flow-scheduling workload with lifecycle span tracing
// enabled, then exports every recorded hop as Chrome trace_event JSON.
// Load the output in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing: each traced message is one track (tid = trace id),
// with slices for the timed hops (action execution, token-bucket waits)
// and instants for the rest (classification, enqueue/dequeue, NIC tx).
//
//   eden-trace --scheme=pias --ms=200 --sample=64 --out=TRACE_fig9.json
//
// The summary printed afterwards counts recorded hops per type and
// verifies that at least one message shows the full egress sequence
// stage -> host stack -> enclave -> NIC.
//
// Merge mode stitches span dumps from different processes — the
// controller's collect_spans_json output and agent-side get_spans
// dumps — into one Perfetto timeline. Trace and span ids come from one
// process-wide allocator, so events from different dumps that share a
// tid really are one operation:
//
//   eden-trace merge --out=MERGED.json controller.json agent0.json ...
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_args.h"
#include "experiments/fig9_scheduling.h"
#include "telemetry/json.h"
#include "telemetry/span.h"

namespace {

void usage() {
  std::printf(
      "eden-trace: run a fig9 workload with lifecycle tracing and export\n"
      "Chrome trace_event JSON for Perfetto / chrome://tracing.\n\n"
      "  --scheme=pias|sff|baseline  scheduling scheme (default pias)\n"
      "  --ms=N                      measured duration (default 100)\n"
      "  --sample=N                  trace 1 in N messages (default 64)\n"
      "  --out=PATH                  output file (default TRACE_fig9.json)\n"
      "  --quick                     short run (20 ms, sample 16)\n\n"
      "merge mode:\n"
      "  eden-trace merge [--out=MERGED.json] FILE...\n"
      "    merges span dumps (controller + agents) into one timeline\n");
}

// Re-emits a parsed Json tree. Numbers keep their source text in the
// parser, so 64-bit ids round-trip exactly.
void dump_json(const eden::telemetry::Json& j, std::string& out) {
  using Kind = eden::telemetry::Json::Kind;
  switch (j.kind) {
    case Kind::null: out += "null"; return;
    case Kind::boolean: out += j.boolean ? "true" : "false"; return;
    case Kind::number: out += j.text; return;
    case Kind::string:
      out += '"';
      for (const char c : j.text) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
      }
      out += '"';
      return;
    case Kind::array: {
      out += '[';
      for (std::size_t i = 0; i < j.items.size(); ++i) {
        if (i != 0) out += ',';
        dump_json(j.items[i], out);
      }
      out += ']';
      return;
    }
    case Kind::object: {
      out += '{';
      for (std::size_t i = 0; i < j.fields.size(); ++i) {
        if (i != 0) out += ',';
        out += '"';
        out += j.fields[i].first;
        out += "\":";
        dump_json(j.fields[i].second, out);
      }
      out += '}';
      return;
    }
  }
}

int run_merge(int argc, char** argv) {
  using namespace eden;

  const std::string out_path =
      bench::str_arg(argc, argv, "--out", "MERGED.json");
  std::vector<std::string> inputs;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) continue;
    inputs.push_back(arg);
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "eden-trace merge: no input files\n");
    return 1;
  }

  std::vector<telemetry::Json> events;
  for (const std::string& path : inputs) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "eden-trace merge: cannot read %s\n", path.c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    telemetry::Json root;
    try {
      root = telemetry::JsonParser(ss.str()).parse();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "eden-trace merge: %s: %s\n", path.c_str(),
                   e.what());
      return 1;
    }
    // Same contract as eden-stat's file mode: a dump from a newer
    // build gets a warning, never a crash or a silent misparse.
    const std::int64_t version =
        root.i64("schema_version", telemetry::kSpanSchemaVersion);
    if (version > telemetry::kSpanSchemaVersion) {
      std::fprintf(stderr,
                   "eden-trace merge: warning: %s has span schema_version "
                   "%lld, this build reads %d; newer fields are ignored\n",
                   path.c_str(), static_cast<long long>(version),
                   telemetry::kSpanSchemaVersion);
    }
    const telemetry::Json* trace_events = root.get("traceEvents");
    if (trace_events == nullptr ||
        trace_events->kind != telemetry::Json::Kind::array) {
      std::fprintf(stderr, "eden-trace merge: %s has no traceEvents array\n",
                   path.c_str());
      return 1;
    }
    std::printf("  %s: %zu events\n", path.c_str(),
                trace_events->items.size());
    for (const telemetry::Json& e : trace_events->items) {
      events.push_back(e);
    }
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const telemetry::Json& a, const telemetry::Json& b) {
                     return a.num("ts") < b.num("ts");
                   });

  // Causal-link audit: every non-zero parent should resolve to a span
  // somewhere in the merged set. Dangling links are possible (ring
  // wraparound sheds old events), so they warn rather than fail.
  std::set<std::int64_t> span_ids;
  std::set<std::int64_t> traces;
  std::size_t linked = 0;
  for (const telemetry::Json& e : events) {
    traces.insert(e.i64("tid"));
    if (const telemetry::Json* args = e.get("args")) {
      const std::int64_t span = args->i64("span");
      if (span != 0) span_ids.insert(span);
    }
  }
  std::size_t dangling = 0;
  for (const telemetry::Json& e : events) {
    const telemetry::Json* args = e.get("args");
    if (args == nullptr) continue;
    const std::int64_t parent = args->i64("parent");
    if (parent == 0) continue;
    ++linked;
    if (span_ids.count(parent) == 0) ++dangling;
  }

  std::string out = "{\"traceEvents\":[\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    dump_json(events[i], out);
    out += i + 1 < events.size() ? ",\n" : "\n";
  }
  out += "],\"displayTimeUnit\":\"ns\",\"schema_version\":";
  out += std::to_string(telemetry::kSpanSchemaVersion);
  out += "}\n";
  if (!bench::write_text_file(out_path, out)) {
    std::fprintf(stderr, "eden-trace merge: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }

  std::printf(
      "eden-trace merge: %zu events from %zu files, %zu traces, "
      "%zu parent links (%zu dangling)\n",
      events.size(), inputs.size(), traces.size(), linked, dangling);
  if (dangling > 0) {
    std::fprintf(stderr,
                 "eden-trace merge: warning: %zu parent links point at "
                 "spans outside the merged dumps (ring wraparound?)\n",
                 dangling);
  }
  std::printf("  wrote %s (open in https://ui.perfetto.dev)\n",
              out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eden;

  if (bench::has_flag(argc, argv, "--help")) {
    usage();
    return 0;
  }
  if (argc > 1 && std::string(argv[1]) == "merge") {
    return run_merge(argc, argv);
  }

  const bool quick = bench::has_flag(argc, argv, "--quick");
  const long ms = bench::int_arg(argc, argv, "--ms", quick ? 20 : 100);
  const long sample = bench::int_arg(argc, argv, "--sample", quick ? 16 : 64);
  const std::string scheme = bench::str_arg(argc, argv, "--scheme", "pias");
  const std::string out_path =
      bench::str_arg(argc, argv, "--out", "TRACE_fig9.json");

  experiments::Fig9Config cfg;
  cfg.scheme = scheme == "sff" ? experiments::SchedulingScheme::sff
               : scheme == "baseline"
                   ? experiments::SchedulingScheme::baseline
                   : experiments::SchedulingScheme::pias;
  cfg.variant = experiments::SchedulingVariant::eden;
  cfg.duration = static_cast<netsim::SimTime>(ms) * netsim::kMillisecond;
  cfg.warmup = 10 * netsim::kMillisecond;
  cfg.telemetry.span_sample_every = static_cast<std::uint32_t>(sample);

  telemetry::SpanCollector::instance().reset();
  const experiments::Fig9Result result = experiments::run_fig9(cfg);

  const std::vector<telemetry::SpanEvent> events =
      telemetry::SpanCollector::instance().snapshot();
  const std::string json = telemetry::to_trace_event_json(events);
  if (!bench::write_text_file(out_path, json)) {
    std::fprintf(stderr, "eden-trace: cannot write %s\n", out_path.c_str());
    return 1;
  }

  // --- Summary -----------------------------------------------------------

  std::map<telemetry::Hop, std::uint64_t> hop_counts;
  std::map<std::int64_t, std::set<telemetry::Hop>> per_trace;
  for (const telemetry::SpanEvent& e : events) {
    ++hop_counts[e.hop];
    per_trace[e.trace_id].insert(e.hop);
  }

  std::size_t full_sequences = 0;
  for (const auto& [id, hops] : per_trace) {
    const bool enclave_hop = hops.count(telemetry::Hop::enclave_match) > 0 ||
                             hops.count(telemetry::Hop::action_exec) > 0;
    if (hops.count(telemetry::Hop::stage_classify) > 0 &&
        hops.count(telemetry::Hop::host_enqueue) > 0 && enclave_hop &&
        hops.count(telemetry::Hop::nic_tx) > 0) {
      ++full_sequences;
    }
  }

  std::printf("eden-trace: %s, %ld ms measured, 1-in-%ld sampling\n",
              to_string(cfg.scheme).c_str(), ms, sample);
  std::printf("  completed flows:   %llu\n",
              static_cast<unsigned long long>(result.completed_flows));
  std::printf("  span events:       %zu (%zu traced messages)\n",
              events.size(), per_trace.size());
  for (const auto& [hop, count] : hop_counts) {
    std::printf("  %-16s %10llu\n", telemetry::hop_name(hop),
                static_cast<unsigned long long>(count));
  }
  std::printf("  full stage->host->enclave->nic sequences: %zu\n",
              full_sequences);
  std::printf("  wrote %s (open in https://ui.perfetto.dev)\n",
              out_path.c_str());

  if (events.empty() || full_sequences == 0) {
    std::fprintf(stderr,
                 "eden-trace: no complete lifecycle trace recorded\n");
    return 1;
  }
  return 0;
}
