// eden-trace: message lifecycle tracing demo and exporter.
//
// Runs the Fig. 9 flow-scheduling workload with lifecycle span tracing
// enabled, then exports every recorded hop as Chrome trace_event JSON.
// Load the output in Perfetto (https://ui.perfetto.dev) or
// chrome://tracing: each traced message is one track (tid = trace id),
// with slices for the timed hops (action execution, token-bucket waits)
// and instants for the rest (classification, enqueue/dequeue, NIC tx).
//
//   eden-trace --scheme=pias --ms=200 --sample=64 --out=TRACE_fig9.json
//
// The summary printed afterwards counts recorded hops per type and
// verifies that at least one message shows the full egress sequence
// stage -> host stack -> enclave -> NIC.
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_args.h"
#include "experiments/fig9_scheduling.h"
#include "telemetry/span.h"

namespace {

void usage() {
  std::printf(
      "eden-trace: run a fig9 workload with lifecycle tracing and export\n"
      "Chrome trace_event JSON for Perfetto / chrome://tracing.\n\n"
      "  --scheme=pias|sff|baseline  scheduling scheme (default pias)\n"
      "  --ms=N                      measured duration (default 100)\n"
      "  --sample=N                  trace 1 in N messages (default 64)\n"
      "  --out=PATH                  output file (default TRACE_fig9.json)\n"
      "  --quick                     short run (20 ms, sample 16)\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eden;

  if (bench::has_flag(argc, argv, "--help")) {
    usage();
    return 0;
  }

  const bool quick = bench::has_flag(argc, argv, "--quick");
  const long ms = bench::int_arg(argc, argv, "--ms", quick ? 20 : 100);
  const long sample = bench::int_arg(argc, argv, "--sample", quick ? 16 : 64);
  const std::string scheme = bench::str_arg(argc, argv, "--scheme", "pias");
  const std::string out_path =
      bench::str_arg(argc, argv, "--out", "TRACE_fig9.json");

  experiments::Fig9Config cfg;
  cfg.scheme = scheme == "sff" ? experiments::SchedulingScheme::sff
               : scheme == "baseline"
                   ? experiments::SchedulingScheme::baseline
                   : experiments::SchedulingScheme::pias;
  cfg.variant = experiments::SchedulingVariant::eden;
  cfg.duration = static_cast<netsim::SimTime>(ms) * netsim::kMillisecond;
  cfg.warmup = 10 * netsim::kMillisecond;
  cfg.telemetry.span_sample_every = static_cast<std::uint32_t>(sample);

  telemetry::SpanCollector::instance().reset();
  const experiments::Fig9Result result = experiments::run_fig9(cfg);

  const std::vector<telemetry::SpanEvent> events =
      telemetry::SpanCollector::instance().snapshot();
  const std::string json = telemetry::to_trace_event_json(events);
  if (!bench::write_text_file(out_path, json)) {
    std::fprintf(stderr, "eden-trace: cannot write %s\n", out_path.c_str());
    return 1;
  }

  // --- Summary -----------------------------------------------------------

  std::map<telemetry::Hop, std::uint64_t> hop_counts;
  std::map<std::int64_t, std::set<telemetry::Hop>> per_trace;
  for (const telemetry::SpanEvent& e : events) {
    ++hop_counts[e.hop];
    per_trace[e.trace_id].insert(e.hop);
  }

  std::size_t full_sequences = 0;
  for (const auto& [id, hops] : per_trace) {
    const bool enclave_hop = hops.count(telemetry::Hop::enclave_match) > 0 ||
                             hops.count(telemetry::Hop::action_exec) > 0;
    if (hops.count(telemetry::Hop::stage_classify) > 0 &&
        hops.count(telemetry::Hop::host_enqueue) > 0 && enclave_hop &&
        hops.count(telemetry::Hop::nic_tx) > 0) {
      ++full_sequences;
    }
  }

  std::printf("eden-trace: %s, %ld ms measured, 1-in-%ld sampling\n",
              to_string(cfg.scheme).c_str(), ms, sample);
  std::printf("  completed flows:   %llu\n",
              static_cast<unsigned long long>(result.completed_flows));
  std::printf("  span events:       %zu (%zu traced messages)\n",
              events.size(), per_trace.size());
  for (const auto& [hop, count] : hop_counts) {
    std::printf("  %-16s %10llu\n", telemetry::hop_name(hop),
                static_cast<unsigned long long>(count));
  }
  std::printf("  full stage->host->enclave->nic sequences: %zu\n",
              full_sequences);
  std::printf("  wrote %s (open in https://ui.perfetto.dev)\n",
              out_path.c_str());

  if (events.empty() || full_sequences == 0) {
    std::fprintf(stderr,
                 "eden-trace: no complete lifecycle trace recorded\n");
    return 1;
  }
  return 0;
}
