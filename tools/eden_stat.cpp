// eden-stat: pretty-prints a telemetry snapshot — either live from a
// canned testbed run, or re-rendered from a TELEMETRY_*.json file that
// a bench wrote earlier.
//
// Live mode spins up a two-host testbed (client -> switch -> server),
// classifies the client's traffic into named classes with enclave flow
// rules, runs PIAS over those classes plus a random ~3% dropper on the
// background class, drives TCP traffic for a while, then pulls the
// controller-side aggregate and renders it. File mode parses the JSON
// dump back into the same structures, so every rendering (tables,
// --prom, --json round-trip) works on saved snapshots too.
//
// Usage: eden-stat [TELEMETRY.json] [--ms=SIM_MS] [--sample=N]
//                  [--trace] [--json] [--prom]
//   TELEMETRY.json  render a saved bench snapshot instead of running
//   --ms=N      simulated milliseconds of traffic (default 200)
//   --sample=N  trace-ring sampling: record 1-in-N executions (default 16)
//   --trace     also print the sampled trace entries
//   --json      print the JSON dump instead of tables
//   --prom      print the Prometheus text exposition instead of tables
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_args.h"
#include "experiments/testbed.h"
#include "functions/scheduling.h"
#include "lang/compiler.h"
#include "telemetry/snapshot.h"
#include "util/table.h"

namespace {

using namespace eden;

constexpr std::uint16_t kResponsePort = 8000;
constexpr std::uint16_t kBackgroundPort = 8001;

// Drops ~3% of the class's packets at random — gives the dropped
// counters and the error-free trace something to show.
constexpr const char* kRandomDropSource = R"(
fun(p) -> if rand(100) < 3 then p.drop <- 1 else 0
)";

void install_functions(experiments::TestHost& client,
                       core::ClassRegistry& registry) {
  core::Enclave& enclave = *client.enclave;

  // Enclave-stage classification (Table 2, last row): port-based rules
  // binding the client's flows to named classes.
  core::FlowClassifierRule response;
  response.dst_port = kResponsePort;
  response.class_id = registry.intern("enclave.flows.response");
  enclave.add_flow_rule(response);
  core::FlowClassifierRule background;
  background.dst_port = kBackgroundPort;
  background.class_id = registry.intern("enclave.flows.background");
  enclave.add_flow_rule(background);

  const functions::PiasFunction pias;
  const core::ActionId sched = pias.install(enclave, /*use_native=*/false);
  const std::int64_t limits[] = {10 * 1024, 1024 * 1024};
  const std::int64_t prios[] = {7, 5};
  functions::push_priority_thresholds(enclave, sched, limits, prios);
  const core::TableId sched_table = enclave.create_table("sched");
  enclave.add_rule(sched_table, core::ClassPattern("enclave.flows.*"), sched);

  const lang::StateSchema schema = core::make_enclave_schema();
  const core::ActionId dropper = enclave.install_action(
      "rand_drop", lang::compile_source(kRandomDropSource, schema), {});
  const core::TableId drop_table = enclave.create_table("chaos");
  enclave.add_rule(drop_table, core::ClassPattern("enclave.flows.background"),
                   dropper);
}

// --- TELEMETRY_*.json loader -------------------------------------------
//
// Minimal recursive-descent JSON reader, tool-local on purpose: the
// input is machine-written by telemetry::to_json, so only the subset
// that emitter produces needs to parse. Numbers keep their source text
// so 64-bit counters round-trip without double precision loss.

struct Json {
  enum class Kind { null, boolean, number, string, array, object };
  Kind kind = Kind::null;
  bool boolean = false;
  std::string text;  // number source text or string value
  std::vector<Json> items;
  std::vector<std::pair<std::string, Json>> fields;

  const Json* get(const std::string& key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  std::uint64_t u64(const std::string& key, std::uint64_t dflt = 0) const {
    const Json* v = get(key);
    return v != nullptr && v->kind == Kind::number
               ? std::strtoull(v->text.c_str(), nullptr, 10)
               : dflt;
  }
  std::int64_t i64(const std::string& key, std::int64_t dflt = 0) const {
    const Json* v = get(key);
    return v != nullptr && v->kind == Kind::number
               ? std::strtoll(v->text.c_str(), nullptr, 10)
               : dflt;
  }
  double num(const std::string& key, double dflt = 0.0) const {
    const Json* v = get(key);
    return v != nullptr && v->kind == Kind::number
               ? std::strtod(v->text.c_str(), nullptr)
               : dflt;
  }
  std::string str(const std::string& key) const {
    const Json* v = get(key);
    return v != nullptr && v->kind == Kind::string ? v->text : std::string();
  }
  bool flag(const std::string& key) const {
    const Json* v = get(key);
    return v != nullptr && v->kind == Kind::boolean && v->boolean;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string text) : s_(std::move(text)) {}

  Json parse() {
    Json v = value();
    skip_ws();
    if (i_ != s_.size()) fail("trailing data");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) {
    throw std::runtime_error("JSON parse error at byte " +
                             std::to_string(i_) + ": " + what);
  }
  void skip_ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\t' ||
                              s_[i_] == '\n' || s_[i_] == '\r')) {
      ++i_;
    }
  }
  char peek() {
    skip_ws();
    if (i_ >= s_.size()) fail("unexpected end of input");
    return s_[i_];
  }
  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++i_;
  }

  std::string string_body() {
    expect('"');
    std::string out;
    while (true) {
      if (i_ >= s_.size()) fail("unterminated string");
      const char c = s_[i_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (i_ >= s_.size()) fail("unterminated escape");
      const char e = s_[i_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (i_ + 4 > s_.size()) fail("bad \\u escape");
          const unsigned long cp =
              std::strtoul(s_.substr(i_, 4).c_str(), nullptr, 16);
          i_ += 4;
          // The emitter only escapes control characters, so the code
          // point always fits one byte.
          out += static_cast<char>(cp & 0xff);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json value() {
    const char c = peek();
    Json v;
    if (c == '{') {
      v.kind = Json::Kind::object;
      ++i_;
      if (peek() == '}') {
        ++i_;
        return v;
      }
      while (true) {
        std::string key = string_body();
        expect(':');
        v.fields.emplace_back(std::move(key), value());
        const char n = peek();
        ++i_;
        if (n == '}') return v;
        if (n != ',') fail("expected , or }");
        skip_ws();
      }
    }
    if (c == '[') {
      v.kind = Json::Kind::array;
      ++i_;
      if (peek() == ']') {
        ++i_;
        return v;
      }
      while (true) {
        v.items.push_back(value());
        const char n = peek();
        ++i_;
        if (n == ']') return v;
        if (n != ',') fail("expected , or ]");
      }
    }
    if (c == '"') {
      v.kind = Json::Kind::string;
      v.text = string_body();
      return v;
    }
    if (c == 't' || c == 'f' || c == 'n') {
      const char* word = c == 't' ? "true" : c == 'f' ? "false" : "null";
      const std::size_t len = std::strlen(word);
      if (s_.compare(i_, len, word) != 0) fail("bad literal");
      i_ += len;
      v.kind = c == 'n' ? Json::Kind::null : Json::Kind::boolean;
      v.boolean = c == 't';
      return v;
    }
    // Number: keep the raw text.
    v.kind = Json::Kind::number;
    const std::size_t start = i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) != 0 ||
            s_[i_] == '-' || s_[i_] == '+' || s_[i_] == '.' ||
            s_[i_] == 'e' || s_[i_] == 'E')) {
      ++i_;
    }
    if (i_ == start) fail("expected value");
    v.text = s_.substr(start, i_ - start);
    return v;
  }

  std::string s_;
  std::size_t i_ = 0;
};

telemetry::HistogramSnapshot load_histogram(const Json& j) {
  telemetry::HistogramSnapshot h;
  h.count = j.u64("count");
  h.sum = j.u64("sum");
  if (const Json* buckets = j.get("buckets")) {
    for (const Json& pair : buckets->items) {
      if (pair.items.size() != 2) continue;
      const std::uint64_t upper =
          std::strtoull(pair.items[0].text.c_str(), nullptr, 10);
      for (std::size_t k = 0; k < telemetry::kHistogramBuckets; ++k) {
        if (telemetry::bucket_upper_bound(k) == upper) {
          h.counts[k] = std::strtoull(pair.items[1].text.c_str(), nullptr, 10);
          break;
        }
      }
    }
  }
  return h;
}

telemetry::ActionTelemetry load_action(const Json& j) {
  telemetry::ActionTelemetry a;
  a.name = j.str("name");
  a.native = j.flag("native");
  a.executions = j.u64("executions");
  a.errors = j.u64("errors");
  a.steps = j.u64("steps");
  if (const Json* errs = j.get("errors_by_status")) {
    for (const auto& [status, count] : errs->fields) {
      for (std::size_t i = 0; i < lang::kNumExecStatus; ++i) {
        if (status == lang::exec_status_name(static_cast<lang::ExecStatus>(i))) {
          a.errors_by_status[i] =
              std::strtoull(count.text.c_str(), nullptr, 10);
          break;
        }
      }
    }
  }
  if (const Json* lat = j.get("latency_ns")) {
    a.has_histograms = true;
    a.latency_ns = load_histogram(*lat);
    if (const Json* steps = j.get("steps_hist")) {
      a.steps_hist = load_histogram(*steps);
    }
  }
  if (const Json* prof = j.get("profile")) {
    a.has_profile = true;
    a.profile_runs = prof->u64("runs");
    a.profile_instructions = prof->u64("instructions");
    if (const Json* hot = prof->get("hotspots")) {
      for (const Json& hj : hot->items) {
        telemetry::HotSpot h;
        h.pc = static_cast<std::uint32_t>(hj.u64("pc"));
        h.count = hj.u64("count");
        h.ticks = hj.u64("ticks");
        h.count_pct = hj.num("count_pct");
        h.ticks_pct = hj.num("ticks_pct");
        h.text = hj.str("text");
        a.hotspots.push_back(std::move(h));
      }
    }
  }
  return a;
}

telemetry::TraceEntry load_trace_entry(const Json& j) {
  telemetry::TraceEntry t;
  t.ts_ns = j.i64("ts_ns");
  t.class_name = j.str("class");
  t.action = j.str("action");
  t.status = j.str("status");
  t.steps = j.u64("steps");
  if (const Json* m = j.get("meta")) {
    t.meta.msg_id = m->i64("msg_id");
    t.meta.msg_type = m->i64("msg_type");
    t.meta.msg_size = m->i64("msg_size");
    t.meta.tenant = m->i64("tenant");
    t.meta.key_hash = m->i64("key_hash");
    t.meta.flow_size = m->i64("flow_size");
    t.meta.app_priority = m->i64("app_priority");
    t.meta.trace_id = m->i64("trace_id");
  }
  return t;
}

// Rebuilds the aggregate from a saved dump. Only the per-enclave
// snapshots are read back; totals and cross-enclave merges are
// recomputed by aggregate(), the same path the live snapshot takes.
// Bench dumps may concatenate runs as {"run label": {...}, ...}; every
// object with an "enclaves" array contributes.
telemetry::AggregateTelemetry load_telemetry_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const Json root = JsonParser(buffer.str()).parse();

  std::vector<const Json*> dumps;
  if (root.get("enclaves") != nullptr) {
    dumps.push_back(&root);
  } else if (const Json* runs = root.get("runs")) {
    // bench::combine_telemetry_runs format:
    // {"runs":[{"label":...,"telemetry":{...}}, ...]}
    for (const Json& run : runs->items) {
      const Json* t = run.get("telemetry");
      if (t != nullptr && t->get("enclaves") != nullptr) dumps.push_back(t);
    }
  } else {
    for (const auto& [label, v] : root.fields) {
      if (v.get("enclaves") != nullptr) dumps.push_back(&v);
    }
  }
  if (dumps.empty()) {
    throw std::runtime_error(path + ": no \"enclaves\" array found");
  }

  std::vector<telemetry::EnclaveTelemetry> enclaves;
  for (const Json* dump : dumps) {
    for (const Json& ej : dump->get("enclaves")->items) {
      telemetry::EnclaveTelemetry e;
      e.enclave = ej.str("name");
      e.telemetry_enabled = ej.flag("telemetry_enabled");
      e.packets = ej.u64("packets");
      e.matched = ej.u64("matched");
      e.dropped_by_action = ej.u64("dropped_by_action");
      e.message_entries_created = ej.u64("message_entries_created");
      e.message_entries_evicted = ej.u64("message_entries_evicted");
      if (const Json* actions = ej.get("actions")) {
        for (const Json& aj : actions->items) {
          e.actions.push_back(load_action(aj));
        }
      }
      if (const Json* classes = ej.get("classes")) {
        for (const Json& cj : classes->items) {
          telemetry::ClassTelemetry c;
          c.name = cj.str("class");
          c.matched = cj.u64("matched");
          c.dropped = cj.u64("dropped");
          e.classes.push_back(std::move(c));
        }
      }
      e.trace_sampled = ej.u64("trace_sampled");
      e.trace_sample_every =
          static_cast<std::uint32_t>(ej.u64("trace_sample_every"));
      if (const Json* trace = ej.get("trace")) {
        for (const Json& tj : trace->items) {
          e.trace.push_back(load_trace_entry(tj));
        }
      }
      enclaves.push_back(std::move(e));
    }
  }
  return telemetry::aggregate(std::move(enclaves));
}

std::string error_breakdown(const telemetry::ActionTelemetry& a) {
  std::string out;
  for (std::size_t i = 0; i < a.errors_by_status.size(); ++i) {
    if (a.errors_by_status[i] == 0) continue;
    if (!out.empty()) out += " ";
    out += std::string(lang::exec_status_name(
               static_cast<lang::ExecStatus>(i))) +
           ":" + std::to_string(a.errors_by_status[i]);
  }
  return out.empty() ? "-" : out;
}

void print_tables(const telemetry::AggregateTelemetry& agg, bool with_trace) {
  util::TextTable enclaves;
  enclaves.add_row({"enclave", "packets", "matched", "dropped",
                    "msgs created", "msgs evicted"});
  for (const telemetry::EnclaveTelemetry& e : agg.enclaves) {
    enclaves.add_row({e.enclave, std::to_string(e.packets),
                      std::to_string(e.matched),
                      std::to_string(e.dropped_by_action),
                      std::to_string(e.message_entries_created),
                      std::to_string(e.message_entries_evicted)});
  }
  std::printf("Enclaves (aggregate: %llu packets, %llu matched, %llu "
              "dropped)\n",
              static_cast<unsigned long long>(agg.packets),
              static_cast<unsigned long long>(agg.matched),
              static_cast<unsigned long long>(agg.dropped_by_action));
  std::fputs(enclaves.render().c_str(), stdout);

  if (!agg.classes.empty()) {
    util::TextTable classes;
    classes.add_row({"class", "matched", "dropped"});
    for (const telemetry::ClassTelemetry& c : agg.classes) {
      classes.add_row({c.name, std::to_string(c.matched),
                       std::to_string(c.dropped)});
    }
    std::printf("\nClasses\n");
    std::fputs(classes.render().c_str(), stdout);
  }

  util::TextTable actions;
  actions.add_row({"action", "kind", "execs", "errors", "steps", "p50 ns",
                   "p95 ns", "p99 ns", "error breakdown"});
  for (const telemetry::ActionTelemetry& a : agg.actions) {
    const bool h = a.has_histograms && a.latency_ns.count > 0;
    actions.add_row({a.name, a.native ? "native" : "bytecode",
                     std::to_string(a.executions), std::to_string(a.errors),
                     std::to_string(a.steps),
                     h ? util::fmt(a.latency_ns.p50(), 0) : "-",
                     h ? util::fmt(a.latency_ns.p95(), 0) : "-",
                     h ? util::fmt(a.latency_ns.p99(), 0) : "-",
                     error_breakdown(a)});
  }
  std::printf("\nActions (latency percentiles over sampled executions)\n");
  std::fputs(actions.render().c_str(), stdout);

  bool any_profile = false;
  for (const telemetry::ActionTelemetry& a : agg.actions) {
    any_profile = any_profile || (a.has_profile && !a.hotspots.empty());
  }
  if (any_profile) {
    util::TextTable hot;
    hot.add_row({"action", "pc", "instruction", "count", "count %",
                 "cycles %"});
    for (const telemetry::ActionTelemetry& a : agg.actions) {
      if (!a.has_profile) continue;
      for (const telemetry::HotSpot& h : a.hotspots) {
        hot.add_row({a.name, std::to_string(h.pc), h.text,
                     std::to_string(h.count), util::fmt(h.count_pct, 1),
                     util::fmt(h.ticks_pct, 1)});
      }
    }
    std::printf("\nBytecode hot spots (top instructions per profiled "
                "action)\n");
    std::fputs(hot.render().c_str(), stdout);
  }

  if (with_trace) {
    for (const telemetry::EnclaveTelemetry& e : agg.enclaves) {
      if (e.trace.empty()) continue;
      util::TextTable trace;
      trace.add_row({"ts ns", "class", "action", "status", "steps",
                     "msg_id", "msg_size", "flow_size"});
      for (const telemetry::TraceEntry& t : e.trace) {
        trace.add_row({std::to_string(t.ts_ns), t.class_name, t.action,
                       t.status, std::to_string(t.steps),
                       std::to_string(t.meta.msg_id),
                       std::to_string(t.meta.msg_size),
                       std::to_string(t.meta.flow_size)});
      }
      std::printf("\nTrace %s (1-in-%u sampling, %llu sampled, showing "
                  "last %zu)\n",
                  e.enclave.c_str(), e.trace_sample_every,
                  static_cast<unsigned long long>(e.trace_sampled),
                  e.trace.size());
      std::fputs(trace.render().c_str(), stdout);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eden;

  const long sim_ms = bench::int_arg(argc, argv, "--ms", 200);
  const long sample = bench::int_arg(argc, argv, "--sample", 16);
  const bool as_json = bench::has_flag(argc, argv, "--json");
  const bool as_prom = bench::has_flag(argc, argv, "--prom");
  const bool with_trace = bench::has_flag(argc, argv, "--trace");

  std::string input_path;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-') input_path = argv[i];
  }
  if (!input_path.empty()) {
    // File mode: re-render a saved bench snapshot.
    try {
      const telemetry::AggregateTelemetry agg =
          load_telemetry_file(input_path);
      if (as_json) {
        std::fputs((telemetry::to_json(agg) + "\n").c_str(), stdout);
      } else if (as_prom) {
        std::fputs(telemetry::to_prometheus(agg).c_str(), stdout);
      } else {
        std::printf("eden-stat: snapshot loaded from %s (%zu enclave(s))\n\n",
                    input_path.c_str(), agg.enclaves.size());
        print_tables(agg, with_trace);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "eden-stat: %s\n", e.what());
      return 1;
    }
    return 0;
  }

  experiments::Testbed bed;
  auto& client = bed.add_host("client");
  auto& server = bed.add_host("server");
  auto& sw = bed.add_switch("tor");
  constexpr std::uint64_t kGbps = 1000ULL * 1000 * 1000;
  const netsim::SimTime delay = 5 * netsim::kMicrosecond;
  bed.connect(client, sw, 10 * kGbps, delay);
  bed.connect(server, sw, 10 * kGbps, delay);
  bed.routing().install_dest_routes();

  core::EnclaveConfig ec;
  ec.telemetry.enabled = true;
  // Display run: time every execution so the percentiles are exact.
  ec.telemetry.histogram_sample_every = 1;
  ec.telemetry.trace_sample_every =
      sample > 0 ? static_cast<std::uint32_t>(sample) : 0;
  // Profile the interpreted actions so the hot-spot table has rows.
  ec.telemetry.profile_actions = true;
  bed.finalize(ec);

  experiments::TestHost& client_host = *bed.host_by_name("client");
  experiments::TestHost& server_host = *bed.host_by_name("server");
  install_functions(client_host, bed.registry());

  for (const std::uint16_t port : {kResponsePort, kBackgroundPort}) {
    server_host.stack->listen(
        port, [](transport::TcpReceiver&, const hoststack::FlowInfo&) {});
  }
  for (int i = 0; i < 4; ++i) {
    client_host.stack->open_flow(server.id(), kResponsePort)
        .start(256 * 1024);
    client_host.stack->open_flow(server.id(), kBackgroundPort)
        .start(1024 * 1024);
  }

  bed.run_for(sim_ms * netsim::kMillisecond);

  const telemetry::AggregateTelemetry agg = bed.controller().collect_telemetry();
  if (as_json) {
    std::fputs((telemetry::to_json(agg) + "\n").c_str(), stdout);
  } else if (as_prom) {
    std::fputs(telemetry::to_prometheus(agg).c_str(), stdout);
  } else {
    std::printf("eden-stat: %ld ms of simulated traffic, 2 hosts, PIAS + "
                "random dropper\n\n",
                sim_ms);
    print_tables(agg, with_trace);
  }
  return 0;
}
