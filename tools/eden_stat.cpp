// eden-stat: pretty-prints a live telemetry snapshot from a canned
// testbed run.
//
// Spins up a two-host testbed (client -> switch -> server), classifies
// the client's traffic into named classes with enclave flow rules, runs
// PIAS over those classes plus a random ~3% dropper on the background
// class, drives TCP traffic for a while, then pulls the controller-side
// aggregate and renders it.
//
// Usage: eden-stat [--ms=SIM_MS] [--sample=N] [--trace] [--json] [--prom]
//   --ms=N      simulated milliseconds of traffic (default 200)
//   --sample=N  trace-ring sampling: record 1-in-N executions (default 16)
//   --trace     also print the sampled trace entries
//   --json      print the JSON dump instead of tables
//   --prom      print the Prometheus text exposition instead of tables
#include <cstdio>
#include <string>

#include "bench/bench_args.h"
#include "experiments/testbed.h"
#include "functions/scheduling.h"
#include "lang/compiler.h"
#include "telemetry/snapshot.h"
#include "util/table.h"

namespace {

using namespace eden;

constexpr std::uint16_t kResponsePort = 8000;
constexpr std::uint16_t kBackgroundPort = 8001;

// Drops ~3% of the class's packets at random — gives the dropped
// counters and the error-free trace something to show.
constexpr const char* kRandomDropSource = R"(
fun(p) -> if rand(100) < 3 then p.drop <- 1 else 0
)";

void install_functions(experiments::TestHost& client,
                       core::ClassRegistry& registry) {
  core::Enclave& enclave = *client.enclave;

  // Enclave-stage classification (Table 2, last row): port-based rules
  // binding the client's flows to named classes.
  core::FlowClassifierRule response;
  response.dst_port = kResponsePort;
  response.class_id = registry.intern("enclave.flows.response");
  enclave.add_flow_rule(response);
  core::FlowClassifierRule background;
  background.dst_port = kBackgroundPort;
  background.class_id = registry.intern("enclave.flows.background");
  enclave.add_flow_rule(background);

  const functions::PiasFunction pias;
  const core::ActionId sched = pias.install(enclave, /*use_native=*/false);
  const std::int64_t limits[] = {10 * 1024, 1024 * 1024};
  const std::int64_t prios[] = {7, 5};
  functions::push_priority_thresholds(enclave, sched, limits, prios);
  const core::TableId sched_table = enclave.create_table("sched");
  enclave.add_rule(sched_table, core::ClassPattern("enclave.flows.*"), sched);

  const lang::StateSchema schema = core::make_enclave_schema();
  const core::ActionId dropper = enclave.install_action(
      "rand_drop", lang::compile_source(kRandomDropSource, schema), {});
  const core::TableId drop_table = enclave.create_table("chaos");
  enclave.add_rule(drop_table, core::ClassPattern("enclave.flows.background"),
                   dropper);
}

std::string error_breakdown(const telemetry::ActionTelemetry& a) {
  std::string out;
  for (std::size_t i = 0; i < a.errors_by_status.size(); ++i) {
    if (a.errors_by_status[i] == 0) continue;
    if (!out.empty()) out += " ";
    out += std::string(lang::exec_status_name(
               static_cast<lang::ExecStatus>(i))) +
           ":" + std::to_string(a.errors_by_status[i]);
  }
  return out.empty() ? "-" : out;
}

void print_tables(const telemetry::AggregateTelemetry& agg, bool with_trace) {
  util::TextTable enclaves;
  enclaves.add_row({"enclave", "packets", "matched", "dropped",
                    "msgs created", "msgs evicted"});
  for (const telemetry::EnclaveTelemetry& e : agg.enclaves) {
    enclaves.add_row({e.enclave, std::to_string(e.packets),
                      std::to_string(e.matched),
                      std::to_string(e.dropped_by_action),
                      std::to_string(e.message_entries_created),
                      std::to_string(e.message_entries_evicted)});
  }
  std::printf("Enclaves (aggregate: %llu packets, %llu matched, %llu "
              "dropped)\n",
              static_cast<unsigned long long>(agg.packets),
              static_cast<unsigned long long>(agg.matched),
              static_cast<unsigned long long>(agg.dropped_by_action));
  std::fputs(enclaves.render().c_str(), stdout);

  if (!agg.classes.empty()) {
    util::TextTable classes;
    classes.add_row({"class", "matched", "dropped"});
    for (const telemetry::ClassTelemetry& c : agg.classes) {
      classes.add_row({c.name, std::to_string(c.matched),
                       std::to_string(c.dropped)});
    }
    std::printf("\nClasses\n");
    std::fputs(classes.render().c_str(), stdout);
  }

  util::TextTable actions;
  actions.add_row({"action", "kind", "execs", "errors", "steps", "p50 ns",
                   "p95 ns", "p99 ns", "error breakdown"});
  for (const telemetry::ActionTelemetry& a : agg.actions) {
    const bool h = a.has_histograms && a.latency_ns.count > 0;
    actions.add_row({a.name, a.native ? "native" : "bytecode",
                     std::to_string(a.executions), std::to_string(a.errors),
                     std::to_string(a.steps),
                     h ? util::fmt(a.latency_ns.p50(), 0) : "-",
                     h ? util::fmt(a.latency_ns.p95(), 0) : "-",
                     h ? util::fmt(a.latency_ns.p99(), 0) : "-",
                     error_breakdown(a)});
  }
  std::printf("\nActions (latency percentiles over sampled executions)\n");
  std::fputs(actions.render().c_str(), stdout);

  if (with_trace) {
    for (const telemetry::EnclaveTelemetry& e : agg.enclaves) {
      if (e.trace.empty()) continue;
      util::TextTable trace;
      trace.add_row({"ts ns", "class", "action", "status", "steps",
                     "msg_id", "msg_size", "flow_size"});
      for (const telemetry::TraceEntry& t : e.trace) {
        trace.add_row({std::to_string(t.ts_ns), t.class_name, t.action,
                       t.status, std::to_string(t.steps),
                       std::to_string(t.meta.msg_id),
                       std::to_string(t.meta.msg_size),
                       std::to_string(t.meta.flow_size)});
      }
      std::printf("\nTrace %s (1-in-%u sampling, %llu sampled, showing "
                  "last %zu)\n",
                  e.enclave.c_str(), e.trace_sample_every,
                  static_cast<unsigned long long>(e.trace_sampled),
                  e.trace.size());
      std::fputs(trace.render().c_str(), stdout);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eden;

  const long sim_ms = bench::int_arg(argc, argv, "--ms", 200);
  const long sample = bench::int_arg(argc, argv, "--sample", 16);
  const bool as_json = bench::has_flag(argc, argv, "--json");
  const bool as_prom = bench::has_flag(argc, argv, "--prom");
  const bool with_trace = bench::has_flag(argc, argv, "--trace");

  experiments::Testbed bed;
  auto& client = bed.add_host("client");
  auto& server = bed.add_host("server");
  auto& sw = bed.add_switch("tor");
  constexpr std::uint64_t kGbps = 1000ULL * 1000 * 1000;
  const netsim::SimTime delay = 5 * netsim::kMicrosecond;
  bed.connect(client, sw, 10 * kGbps, delay);
  bed.connect(server, sw, 10 * kGbps, delay);
  bed.routing().install_dest_routes();

  core::EnclaveConfig ec;
  ec.telemetry.enabled = true;
  // Display run: time every execution so the percentiles are exact.
  ec.telemetry.histogram_sample_every = 1;
  ec.telemetry.trace_sample_every =
      sample > 0 ? static_cast<std::uint32_t>(sample) : 0;
  bed.finalize(ec);

  experiments::TestHost& client_host = *bed.host_by_name("client");
  experiments::TestHost& server_host = *bed.host_by_name("server");
  install_functions(client_host, bed.registry());

  for (const std::uint16_t port : {kResponsePort, kBackgroundPort}) {
    server_host.stack->listen(
        port, [](transport::TcpReceiver&, const hoststack::FlowInfo&) {});
  }
  for (int i = 0; i < 4; ++i) {
    client_host.stack->open_flow(server.id(), kResponsePort)
        .start(256 * 1024);
    client_host.stack->open_flow(server.id(), kBackgroundPort)
        .start(1024 * 1024);
  }

  bed.run_for(sim_ms * netsim::kMillisecond);

  const telemetry::AggregateTelemetry agg = bed.controller().collect_telemetry();
  if (as_json) {
    std::fputs((telemetry::to_json(agg) + "\n").c_str(), stdout);
  } else if (as_prom) {
    std::fputs(telemetry::to_prometheus(agg).c_str(), stdout);
  } else {
    std::printf("eden-stat: %ld ms of simulated traffic, 2 hosts, PIAS + "
                "random dropper\n\n",
                sim_ms);
    print_tables(agg, with_trace);
  }
  return 0;
}
