// eden-stat: pretty-prints a telemetry snapshot — either live from a
// canned testbed run, or re-rendered from a TELEMETRY_*.json file that
// a bench wrote earlier.
//
// Live mode spins up a two-host testbed (client -> switch -> server),
// classifies the client's traffic into named classes with enclave flow
// rules, runs PIAS over those classes plus a random ~3% dropper on the
// background class, drives TCP traffic for a while, then pulls the
// controller-side aggregate and renders it. It also drives a
// control-plane session demo: a third "demo" enclave programmed over a
// FaultyTransport (drops, delays, duplicates, truncations), so the
// session table shows reconnects, resyncs and transaction commits
// riding over a lossy link. File mode parses the JSON dump back into
// the same structures, so every rendering (tables, --prom, --json
// round-trip) works on saved snapshots too.
//
// Watch mode (--watch) spins up an in-process agent farm
// (controlplane/farm.h) — N full controller->enclave session stacks —
// polls it with a TelemetryCollector over the streaming delta
// protocol, runs the health watchdog over the collected series, and
// renders a live fleet table once per poll cycle: per-agent reach /
// staleness, packet totals and rates, delta-protocol counters and
// health state.
//
// Usage: eden-stat [TELEMETRY.json] [--ms=SIM_MS] [--sample=N]
//                  [--trace] [--json] [--prom]
//        eden-stat --watch [--agents=N] [--rounds=N] [--chaos] [--prom]
//   TELEMETRY.json  render a saved bench snapshot instead of running
//   --ms=N      simulated milliseconds of traffic (default 200)
//   --sample=N  trace-ring sampling: record 1-in-N executions (default 16)
//   --trace     also print the sampled trace entries
//   --json      print the JSON dump instead of tables
//   --prom      print the Prometheus text exposition instead of tables
//   --watch     live fleet table over an in-process agent farm
//   --agents=N  farm size in watch mode (default 8)
//   --rounds=N  poll cycles in watch mode (default 10)
//   --chaos     wrap the farm's pipes in seeded FaultyTransports
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <unistd.h>

#include "bench/bench_args.h"
#include "controlplane/farm.h"
#include "controlplane/fault.h"
#include "controlplane/session.h"
#include "controlplane/transport.h"
#include "experiments/testbed.h"
#include "functions/scheduling.h"
#include "lang/compiler.h"
#include "telemetry/collector.h"
#include "telemetry/health.h"
#include "telemetry/json.h"
#include "telemetry/snapshot.h"
#include "util/table.h"

namespace {

using namespace eden;

constexpr std::uint16_t kResponsePort = 8000;
constexpr std::uint16_t kBackgroundPort = 8001;

// Drops ~3% of the class's packets at random — gives the dropped
// counters and the error-free trace something to show.
constexpr const char* kRandomDropSource = R"(
fun(p) -> if rand(100) < 3 then p.drop <- 1 else 0
)";

// The session demo's remote action: tags packets with the epoch the
// controller last committed.
constexpr const char* kEpochSource = R"(
fun(p, m, g) -> p.queue <- g.epoch
)";

void install_functions(experiments::TestHost& client,
                       core::ClassRegistry& registry) {
  core::Enclave& enclave = *client.enclave;

  // Enclave-stage classification (Table 2, last row): port-based rules
  // binding the client's flows to named classes.
  core::FlowClassifierRule response;
  response.dst_port = kResponsePort;
  response.class_id = registry.intern("enclave.flows.response");
  enclave.add_flow_rule(response);
  core::FlowClassifierRule background;
  background.dst_port = kBackgroundPort;
  background.class_id = registry.intern("enclave.flows.background");
  enclave.add_flow_rule(background);

  const functions::PiasFunction pias;
  const core::ActionId sched = pias.install(enclave, /*use_native=*/false);
  const std::int64_t limits[] = {10 * 1024, 1024 * 1024};
  const std::int64_t prios[] = {7, 5};
  functions::push_priority_thresholds(enclave, sched, limits, prios);
  const core::TableId sched_table = enclave.create_table("sched");
  enclave.add_rule(sched_table, core::ClassPattern("enclave.flows.*"), sched);

  const lang::StateSchema schema = core::make_enclave_schema();
  const core::ActionId dropper = enclave.install_action(
      "rand_drop", lang::compile_source(kRandomDropSource, schema), {});
  const core::TableId drop_table = enclave.create_table("chaos");
  enclave.add_rule(drop_table, core::ClassPattern("enclave.flows.background"),
                   dropper);
}

// --- TELEMETRY_*.json loader -------------------------------------------

// Rebuilds the aggregate from a saved dump using telemetry/json.h. Only
// the per-enclave snapshots and session entries are read back; totals
// and cross-enclave merges are recomputed by aggregate(), the same path
// the live snapshot takes. Bench dumps may concatenate runs as
// {"run label": {...}, ...}; every object with an "enclaves" array
// contributes.
telemetry::AggregateTelemetry load_telemetry_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const telemetry::Json root = telemetry::JsonParser(buffer.str()).parse();

  std::vector<const telemetry::Json*> dumps;
  if (root.get("enclaves") != nullptr) {
    dumps.push_back(&root);
  } else if (const telemetry::Json* runs = root.get("runs")) {
    // bench::combine_telemetry_runs format:
    // {"runs":[{"label":...,"telemetry":{...}}, ...]}
    for (const telemetry::Json& run : runs->items) {
      const telemetry::Json* t = run.get("telemetry");
      if (t != nullptr && t->get("enclaves") != nullptr) dumps.push_back(t);
    }
  } else {
    for (const auto& [label, v] : root.fields) {
      if (v.get("enclaves") != nullptr) dumps.push_back(&v);
    }
  }
  if (dumps.empty()) {
    throw std::runtime_error(path + ": no \"enclaves\" array found");
  }

  std::vector<telemetry::EnclaveTelemetry> enclaves;
  std::vector<telemetry::SessionTelemetry> sessions;
  for (const telemetry::Json* dump : dumps) {
    // Unversioned dumps are v1; anything newer than this binary is
    // rendered best-effort with a warning, never a crash.
    const auto version = dump->u64("schema_version", 1);
    if (version > static_cast<std::uint64_t>(
                      telemetry::kTelemetrySchemaVersion)) {
      std::fprintf(stderr,
                   "eden-stat: warning: %s has telemetry schema_version "
                   "%llu, newer than this build's %d; unknown fields will "
                   "be ignored\n",
                   path.c_str(), static_cast<unsigned long long>(version),
                   telemetry::kTelemetrySchemaVersion);
    }
    for (const telemetry::Json& ej : dump->get("enclaves")->items) {
      enclaves.push_back(telemetry::enclave_from_json(ej));
    }
    if (const telemetry::Json* sj = dump->get("sessions")) {
      for (const telemetry::Json& s : sj->items) {
        sessions.push_back(telemetry::session_from_json(s));
      }
    }
  }
  telemetry::AggregateTelemetry agg =
      telemetry::aggregate(std::move(enclaves));
  agg.sessions = std::move(sessions);
  return agg;
}

std::string error_breakdown(const telemetry::ActionTelemetry& a) {
  std::string out;
  for (std::size_t i = 0; i < a.errors_by_status.size(); ++i) {
    if (a.errors_by_status[i] == 0) continue;
    if (!out.empty()) out += " ";
    out += std::string(lang::exec_status_name(
               static_cast<lang::ExecStatus>(i))) +
           ":" + std::to_string(a.errors_by_status[i]);
  }
  return out.empty() ? "-" : out;
}

void print_sessions(const telemetry::AggregateTelemetry& agg) {
  if (agg.sessions.empty()) return;
  util::TextTable sessions;
  sessions.add_row({"session", "state", "connects", "teardowns", "resyncs",
                    "replay", "reqs", "ok", "err", "rtt p50", "rtt p95",
                    "rtt p99", "commits", "aborts", "restarts"});
  for (const telemetry::SessionTelemetry& s : agg.sessions) {
    const bool rtt = s.rtt_ns.count > 0;
    sessions.add_row(
        {s.name, s.ready ? "ready" : (s.connected ? "connecting" : "down"),
         std::to_string(s.connects), std::to_string(s.teardowns),
         std::to_string(s.resyncs), std::to_string(s.last_resync_commands),
         std::to_string(s.requests_sent), std::to_string(s.responses_ok),
         std::to_string(s.responses_error),
         rtt ? util::fmt(s.rtt_ns.p50(), 0) : "-",
         rtt ? util::fmt(s.rtt_ns.p95(), 0) : "-",
         rtt ? util::fmt(s.rtt_ns.p99(), 0) : "-",
         std::to_string(s.txns_committed), std::to_string(s.txns_aborted),
         std::to_string(s.agent_restarts_seen)});
  }
  std::printf("\nControl-plane sessions (rtt in virtual ns)\n");
  std::fputs(sessions.render().c_str(), stdout);
}

void print_tables(const telemetry::AggregateTelemetry& agg, bool with_trace) {
  util::TextTable enclaves;
  enclaves.add_row({"enclave", "packets", "matched", "dropped",
                    "msgs created", "msgs evicted"});
  for (const telemetry::EnclaveTelemetry& e : agg.enclaves) {
    enclaves.add_row({e.enclave, std::to_string(e.packets),
                      std::to_string(e.matched),
                      std::to_string(e.dropped_by_action),
                      std::to_string(e.message_entries_created),
                      std::to_string(e.message_entries_evicted)});
  }
  std::printf("Enclaves (aggregate: %llu packets, %llu matched, %llu "
              "dropped)\n",
              static_cast<unsigned long long>(agg.packets),
              static_cast<unsigned long long>(agg.matched),
              static_cast<unsigned long long>(agg.dropped_by_action));
  std::fputs(enclaves.render().c_str(), stdout);

  // Message state engine (eden_state_*): only enclaves that actually
  // ran a FlowStore carry the section, so the table appears exactly
  // when there is state to show — in live runs and re-rendered dumps
  // alike.
  bool any_state = false;
  for (const telemetry::EnclaveTelemetry& e : agg.enclaves) {
    any_state = any_state || e.state.present;
  }
  if (any_state) {
    util::TextTable state;
    state.add_row({"enclave", "live", "created", "expired", "evicted",
                   "resizes", "probe p50", "probe p99"});
    for (const telemetry::EnclaveTelemetry& e : agg.enclaves) {
      if (!e.state.present) continue;
      const bool probe = e.state.probe_len.count > 0;
      state.add_row({e.enclave, std::to_string(e.state.live),
                     std::to_string(e.state.created),
                     std::to_string(e.state.expired),
                     std::to_string(e.state.evicted),
                     std::to_string(e.state.resizes),
                     probe ? util::fmt(e.state.probe_len.p50(), 0) : "-",
                     probe ? util::fmt(e.state.probe_len.p99(), 0) : "-"});
    }
    std::printf("\nMessage state (sampled probe lengths in slot groups)\n");
    std::fputs(state.render().c_str(), stdout);
  }

  if (!agg.classes.empty()) {
    util::TextTable classes;
    classes.add_row({"class", "matched", "dropped"});
    for (const telemetry::ClassTelemetry& c : agg.classes) {
      classes.add_row({c.name, std::to_string(c.matched),
                       std::to_string(c.dropped)});
    }
    std::printf("\nClasses\n");
    std::fputs(classes.render().c_str(), stdout);
  }

  util::TextTable actions;
  actions.add_row({"action", "kind", "execs", "errors", "steps", "p50 ns",
                   "p95 ns", "p99 ns", "error breakdown"});
  for (const telemetry::ActionTelemetry& a : agg.actions) {
    const bool h = a.has_histograms && a.latency_ns.count > 0;
    actions.add_row({a.name, a.native ? "native" : "bytecode",
                     std::to_string(a.executions), std::to_string(a.errors),
                     std::to_string(a.steps),
                     h ? util::fmt(a.latency_ns.p50(), 0) : "-",
                     h ? util::fmt(a.latency_ns.p95(), 0) : "-",
                     h ? util::fmt(a.latency_ns.p99(), 0) : "-",
                     error_breakdown(a)});
  }
  std::printf("\nActions (latency percentiles over sampled executions)\n");
  std::fputs(actions.render().c_str(), stdout);

  print_sessions(agg);

  bool any_profile = false;
  for (const telemetry::ActionTelemetry& a : agg.actions) {
    any_profile = any_profile || (a.has_profile && !a.hotspots.empty());
  }
  if (any_profile) {
    util::TextTable hot;
    hot.add_row({"action", "pc", "instruction", "count", "count %",
                 "cycles %"});
    for (const telemetry::ActionTelemetry& a : agg.actions) {
      if (!a.has_profile) continue;
      for (const telemetry::HotSpot& h : a.hotspots) {
        hot.add_row({a.name, std::to_string(h.pc), h.text,
                     std::to_string(h.count), util::fmt(h.count_pct, 1),
                     util::fmt(h.ticks_pct, 1)});
      }
    }
    std::printf("\nBytecode hot spots (top instructions per profiled "
                "action)\n");
    std::fputs(hot.render().c_str(), stdout);
  }

  if (with_trace) {
    for (const telemetry::EnclaveTelemetry& e : agg.enclaves) {
      if (e.trace.empty()) continue;
      util::TextTable trace;
      trace.add_row({"ts ns", "class", "action", "status", "steps",
                     "msg_id", "msg_size", "flow_size"});
      for (const telemetry::TraceEntry& t : e.trace) {
        trace.add_row({std::to_string(t.ts_ns), t.class_name, t.action,
                       t.status, std::to_string(t.steps),
                       std::to_string(t.meta.msg_id),
                       std::to_string(t.meta.msg_size),
                       std::to_string(t.meta.flow_size)});
      }
      std::printf("\nTrace %s (1-in-%u sampling, %llu sampled, showing "
                  "last %zu)\n",
                  e.enclave.c_str(), e.trace_sample_every,
                  static_cast<unsigned long long>(e.trace_sampled),
                  e.trace.size());
      std::fputs(trace.render().c_str(), stdout);
    }
  }
}

// --- Control-plane session demo ----------------------------------------
//
// Programs a third enclave over an in-memory pipe wrapped in a
// FaultyTransport: ~5% of sends dropped, 10% delayed, 5% duplicated,
// 2% truncated. The session's journal + resync machinery rides over
// the chaos; twenty transactional epoch bumps later, the demo enclave
// has converged on the final committed state and the session table has
// real reconnect/resync/commit numbers to show.
struct SessionDemo {
  core::Enclave enclave;
  controlplane::PipePump pump;
  controlplane::EnclaveAgent agent{enclave};
  std::uint64_t vclock = 0;  // virtual nanoseconds
  std::unique_ptr<controlplane::EnclaveSession> session;

  explicit SessionDemo(core::ClassRegistry& registry)
      : enclave("demo", registry, [] {
          core::EnclaveConfig config;
          config.telemetry.enabled = true;
          return config;
        }()) {}

  void run() {
    controlplane::FaultProfile faults;
    faults.drop_prob = 0.05;
    faults.delay_prob = 0.10;
    faults.duplicate_prob = 0.05;
    faults.truncate_prob = 0.02;
    faults.seed = 7;

    controlplane::SessionConfig config;
    config.heartbeat_interval_ns = 5'000'000;
    config.liveness_timeout_ns = 20'000'000;
    config.request_timeout_ns = 25'000'000;
    config.backoff_initial_ns = 1'000'000;
    config.backoff_max_ns = 50'000'000;
    config.seed = 42;

    session = std::make_unique<controlplane::EnclaveSession>(
        "controller->demo",
        [this, faults]() -> std::unique_ptr<controlplane::Transport> {
          auto [near, far] = controlplane::make_pipe(pump, 64);
          agent.attach(std::move(far));
          return std::make_unique<controlplane::FaultyTransport>(
              std::move(near), pump, faults);
        },
        [this]() { return vclock; }, config);

    std::vector<lang::FieldDef> globals(1);
    globals[0].name = "epoch";
    globals[0].access = lang::Access::read_write;
    session->install_action(
        "epoch_tag",
        lang::compile_source(kEpochSource, core::make_enclave_schema(globals)),
        globals);
    session->create_table("demo");
    session->add_rule("demo", "enclave.flows.*", "epoch_tag");

    for (std::int64_t epoch = 1; epoch <= 20; ++epoch) {
      session->begin_txn();
      session->set_global_scalar("epoch_tag", "epoch", epoch);
      session->commit_txn();
      step_ms(2);
    }
    // Settle: let outstanding requests finish or the session resync.
    for (int i = 0; i < 500 && !(session->ready() && session->inflight() == 0);
         ++i) {
      step_ms(1);
    }
  }

  void step_ms(std::uint64_t ms) {
    for (std::uint64_t i = 0; i < ms; ++i) {
      vclock += 1'000'000;
      session->tick();
      pump.run(10'000);
    }
  }
};

// --- Watch mode ---------------------------------------------------------

// Watch hides the cursor on a TTY for the live refresh; an interrupted
// run must put it back or the shell is left garbled. The handler is
// async-signal-safe (one write(2), then the default disposition).
const char kWatchRestore[] = "\x1b[0m\x1b[?25h";

void watch_signal_handler(int sig) {
  ssize_t ignored =
      ::write(STDOUT_FILENO, kWatchRestore, sizeof kWatchRestore - 1);
  (void)ignored;
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

int run_watch(int argc, char** argv) {
  const long agents = bench::int_arg(argc, argv, "--agents", 8);
  const long rounds = bench::int_arg(argc, argv, "--rounds", 10);
  const bool chaos = bench::has_flag(argc, argv, "--chaos");
  const bool as_prom = bench::has_flag(argc, argv, "--prom");

  const bool tty = ::isatty(STDOUT_FILENO) == 1;
  if (tty) {
    struct sigaction sa = {};
    sa.sa_handler = watch_signal_handler;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
    std::fputs("\x1b[?25l", stdout);  // hide cursor during refresh
    std::fflush(stdout);
  }

  controlplane::FarmConfig farm_config;
  farm_config.agents = agents > 0 ? static_cast<std::size_t>(agents) : 1;
  farm_config.chaos = chaos;
  farm_config.seed = 11;
  controlplane::AgentFarm farm(farm_config);
  farm.install_program();
  if (!farm.converge()) {
    std::fprintf(stderr, "eden-stat: farm failed to converge\n");
    return 1;
  }

  std::uint64_t now_ns = 0;
  telemetry::TelemetryCollector collector({}, [&]() { return now_ns; });
  for (telemetry::CollectorSource& s : farm.sources()) {
    collector.add_source(std::move(s));
  }
  telemetry::HealthWatchdog watchdog;

  for (long round = 1; round <= rounds; ++round) {
    // Variable per-agent load plus a host gauge, so rates and the
    // watchdog have something to chew on.
    for (std::size_t i = 0; i < farm.size(); ++i) {
      farm.drive(i, 40 + (i * 37 + static_cast<std::size_t>(round) * 13) % 80);
      farm.set_host_series_value(
          i, "dataplane_ring_depth",
          static_cast<double>((i * 61 + static_cast<std::size_t>(round) * 7) %
                              128));
    }
    for (int k = 0; k < 40; ++k) farm.step_all();
    now_ns += 1'000'000'000;  // one poll cycle per virtual second
    const telemetry::AggregateTelemetry& agg = collector.poll();
    watchdog.evaluate(now_ns, collector);

    util::TextTable fleet;
    fleet.add_row({"agent", "health", "link", "packets", "pkts/s", "full",
                   "deltas", "rej", "bytes"});
    const auto& health = watchdog.agents();
    for (std::size_t i = 0; i < collector.source_count(); ++i) {
      const telemetry::AgentStatus& st = collector.status(i);
      const double pkts = collector.latest_value(i, "packets").value_or(0);
      const auto rate = collector.rate_per_sec(i, "packets");
      fleet.add_row(
          {st.name,
           i < health.size() ? telemetry::health_state_name(health[i].state)
                             : "?",
           st.stale ? "stale" : (st.reachable ? "up" : "down"),
           util::fmt(pkts, 0), rate ? util::fmt(*rate, 1) : "-",
           std::to_string(st.full_resyncs), std::to_string(st.deltas_applied),
           std::to_string(st.rejected_payloads),
           std::to_string(st.payload_bytes_total)});
    }
    std::printf("\neden-stat --watch: poll %ld/%ld  fleet=%s  agents=%zu  "
                "packets=%llu dropped=%llu\n",
                round, rounds, telemetry::health_state_name(
                                   watchdog.fleet_state()),
                collector.source_count(),
                static_cast<unsigned long long>(agg.packets),
                static_cast<unsigned long long>(agg.dropped_by_action));
    std::fputs(fleet.render().c_str(), stdout);
  }

  if (farm.driven_total() != collector.latest().packets) {
    std::printf("\nnote: collector sees %llu of %llu driven packets "
                "(in-flight polls catch up next cycle)\n",
                static_cast<unsigned long long>(collector.latest().packets),
                static_cast<unsigned long long>(farm.driven_total()));
  }
  if (!watchdog.events().empty()) {
    std::printf("\nHealth events\n%s\n", watchdog.events_json().c_str());
  }
  if (as_prom) {
    std::string prom;
    collector.append_prometheus(prom);
    watchdog.append_prometheus(prom);
    std::fputs(prom.c_str(), stdout);
  }
  if (tty) {
    std::fputs(kWatchRestore, stdout);
    std::fflush(stdout);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eden;

  const long sim_ms = bench::int_arg(argc, argv, "--ms", 200);
  const long sample = bench::int_arg(argc, argv, "--sample", 16);
  const bool as_json = bench::has_flag(argc, argv, "--json");
  const bool as_prom = bench::has_flag(argc, argv, "--prom");
  const bool with_trace = bench::has_flag(argc, argv, "--trace");

  if (bench::has_flag(argc, argv, "--watch")) return run_watch(argc, argv);

  std::string input_path;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-') input_path = argv[i];
  }
  if (!input_path.empty()) {
    // File mode: re-render a saved bench snapshot.
    try {
      const telemetry::AggregateTelemetry agg =
          load_telemetry_file(input_path);
      if (as_json) {
        std::fputs((telemetry::to_json(agg) + "\n").c_str(), stdout);
      } else if (as_prom) {
        std::fputs(telemetry::to_prometheus(agg).c_str(), stdout);
      } else {
        std::printf("eden-stat: snapshot loaded from %s (%zu enclave(s), "
                    "%zu session(s))\n\n",
                    input_path.c_str(), agg.enclaves.size(),
                    agg.sessions.size());
        print_tables(agg, with_trace);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "eden-stat: %s\n", e.what());
      return 1;
    }
    return 0;
  }

  experiments::Testbed bed;
  auto& client = bed.add_host("client");
  auto& server = bed.add_host("server");
  auto& sw = bed.add_switch("tor");
  constexpr std::uint64_t kGbps = 1000ULL * 1000 * 1000;
  const netsim::SimTime delay = 5 * netsim::kMicrosecond;
  bed.connect(client, sw, 10 * kGbps, delay);
  bed.connect(server, sw, 10 * kGbps, delay);
  bed.routing().install_dest_routes();

  core::EnclaveConfig ec;
  ec.telemetry.enabled = true;
  // Display run: time every execution so the percentiles are exact.
  ec.telemetry.histogram_sample_every = 1;
  ec.telemetry.trace_sample_every =
      sample > 0 ? static_cast<std::uint32_t>(sample) : 0;
  // Profile the interpreted actions so the hot-spot table has rows.
  ec.telemetry.profile_actions = true;
  bed.finalize(ec);

  experiments::TestHost& client_host = *bed.host_by_name("client");
  experiments::TestHost& server_host = *bed.host_by_name("server");
  install_functions(client_host, bed.registry());

  for (const std::uint16_t port : {kResponsePort, kBackgroundPort}) {
    server_host.stack->listen(
        port, [](transport::TcpReceiver&, const hoststack::FlowInfo&) {});
  }
  for (int i = 0; i < 4; ++i) {
    client_host.stack->open_flow(server.id(), kResponsePort)
        .start(256 * 1024);
    client_host.stack->open_flow(server.id(), kBackgroundPort)
        .start(1024 * 1024);
  }

  bed.run_for(sim_ms * netsim::kMillisecond);

  // Session demo: program a third enclave over a lossy control channel.
  SessionDemo demo(bed.registry());
  demo.run();
  bed.controller().register_remote(
      {"demo", [&]() { return demo.session->fetch_telemetry_json(demo.pump); },
       {}});

  std::vector<std::string> unreachable;
  telemetry::AggregateTelemetry agg =
      bed.controller().collect_telemetry(&unreachable);
  // The controller-side view of the demo session rides along with the
  // enclave snapshots, same as a real deployment's exporter would.
  agg.sessions.push_back(demo.session->telemetry());

  if (as_json) {
    std::fputs((telemetry::to_json(agg) + "\n").c_str(), stdout);
  } else if (as_prom) {
    std::fputs(telemetry::to_prometheus(agg).c_str(), stdout);
  } else {
    std::printf("eden-stat: %ld ms of simulated traffic, 2 hosts, PIAS + "
                "random dropper, session demo over a faulty link\n\n",
                sim_ms);
    for (const std::string& name : unreachable) {
      std::printf("warning: remote enclave %s unreachable; skipped\n\n",
                  name.c_str());
    }
    print_tables(agg, with_trace);
  }
  return 0;
}
